package wcle_test

import (
	"testing"

	"wcle"
)

func TestPublicQuickstart(t *testing.T) {
	g, err := wcle.NewRandomRegular(64, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := wcle.Elect(g, wcle.DefaultConfig(), wcle.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Leaders) > 1 {
		t.Fatalf("multiple leaders: %v", res.Leaders)
	}
	if res.Metrics.Messages == 0 {
		t.Fatal("no messages recorded")
	}
}

func TestPublicGraphBuilders(t *testing.T) {
	if _, err := wcle.NewClique(8, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := wcle.NewCycle(8, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := wcle.NewHypercube(3, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := wcle.NewTorus(3, 4, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := wcle.NewRandomRegular(16, 4, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := wcle.NewLowerBoundGraph(512, 1.0/196, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := wcle.NewDumbbell(16, 4, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := wcle.NewDumbbellCliques(8, 1); err != nil {
		t.Fatal(err)
	}
}

func TestPublicSpectral(t *testing.T) {
	g, err := wcle.NewClique(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := wcle.MixingTime(g, 1000)
	if err != nil || tm < 1 {
		t.Fatalf("MixingTime = %d, %v", tm, err)
	}
	tms, err := wcle.MixingTimeSampled(g, 1000, []int{0})
	if err != nil || tms != tm {
		t.Fatalf("sampled %d != exact %d (%v)", tms, tm, err)
	}
	lam, err := wcle.Lambda2(g)
	if err != nil || lam <= 0 || lam >= 1 {
		t.Fatalf("Lambda2 = %v, %v", lam, err)
	}
	lo, hi := wcle.CheegerBounds(lam)
	phi, err := wcle.Conductance(g)
	if err != nil {
		t.Fatal(err)
	}
	if phi < lo-1e-9 || phi > hi+1e-9 {
		t.Fatalf("phi %v outside Cheeger [%v, %v]", phi, lo, hi)
	}
	sweep, err := wcle.SweepConductance(g)
	if err != nil || sweep < phi-1e-9 {
		t.Fatalf("sweep %v below exact %v (%v)", sweep, phi, err)
	}
}

func TestPublicExplicit(t *testing.T) {
	g, err := wcle.NewClique(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := wcle.ElectExplicit(g, wcle.DefaultConfig(), wcle.Options{Seed: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Implicit == nil {
		t.Fatal("missing implicit result")
	}
	if len(res.Implicit.Leaders) == 1 {
		if !res.AllInformed {
			t.Fatal("explicit election should inform everyone")
		}
		if res.TotalMessages <= res.Implicit.Metrics.Messages {
			t.Fatal("broadcast messages not accounted")
		}
	}
}

func TestPublicBaselines(t *testing.T) {
	g, err := wcle.NewHypercube(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	fm, err := wcle.FloodMax(g, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fm.Leaders) != 1 {
		t.Fatalf("floodmax leaders = %v", fm.Leaders)
	}
	bt, err := wcle.BFSTree(g, 0, 1)
	if err != nil || !bt.Complete {
		t.Fatalf("bfs tree: %v, complete=%v", err, bt.Complete)
	}
	pp, err := wcle.PushPull(g, wcle.PushPullOptions{Rumor: 9, Seed: 1, Horizon: 64})
	if err != nil || !pp.AllInformed {
		t.Fatalf("push-pull: %v, informed=%d", err, pp.Informed)
	}
}

// TestPublicRun: the protocol-generic entry point runs elections and
// non-election protocols alike, and the election path agrees with the
// deprecated backend-native route at the same seed.
func TestPublicRun(t *testing.T) {
	g, err := wcle.NewRandomRegular(32, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Non-election protocol: no Election summary, per-node outputs filled.
	rep, err := wcle.Run("pushpull", g, wcle.ProtocolConfig{Rumor: 9, Horizon: 64}, wcle.AlgorithmOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Election != nil {
		t.Fatal("pushpull should not produce an election summary")
	}
	if len(rep.Result.Outputs) != g.N() || len(rep.Result.PerNodeMessages) != g.N() {
		t.Fatalf("report shape: %d outputs, %d counts", len(rep.Result.Outputs), len(rep.Result.PerNodeMessages))
	}
	for v, o := range rep.Result.Outputs {
		if len(o) != len(rep.Result.Slots) {
			t.Fatalf("node %d output %v does not match slots %v", v, o, rep.Result.Slots)
		}
	}
	// Default protocol is the paper's election backend.
	erep, err := wcle.Run("", g, wcle.ProtocolConfig{}, wcle.AlgorithmOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if erep.Election == nil {
		t.Fatal("election protocol should produce an election summary")
	}
	if erep.Result.Protocol != wcle.DefaultAlgorithm() {
		t.Fatalf("default protocol = %q", erep.Result.Protocol)
	}
	old, err := wcle.ElectWith("", g, wcle.AlgorithmConfig{}, wcle.AlgorithmOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if erep.Election.Success != old.Success || erep.Election.Rounds != old.Rounds ||
		erep.Election.Metrics.Messages != old.Metrics.Messages {
		t.Fatalf("Run vs ElectWith diverged: %+v vs %+v", erep.Election, old)
	}
	if _, err := wcle.Run("no-such-protocol", g, wcle.ProtocolConfig{}, wcle.AlgorithmOptions{}); err == nil {
		t.Fatal("unknown protocol should fail")
	}
}

func TestPublicRunMany(t *testing.T) {
	g, err := wcle.NewClique(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := wcle.RunMany("bfstree", g, wcle.ProtocolConfig{}, wcle.ProtocolBatchOptions{
		Trials: 4,
		Base:   wcle.ProtocolOptions{Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Trials != 4 {
		t.Fatalf("trials = %d", batch.Trials)
	}
	if len(wcle.Protocols()) < len(wcle.Algorithms())+3 {
		t.Fatalf("protocol registry %v missing substrates", wcle.Protocols())
	}
}

func TestPublicExperiments(t *testing.T) {
	ids := wcle.ExperimentIDs()
	if len(ids) != 23 {
		t.Fatalf("experiment ids = %v", ids)
	}
	tab, err := wcle.RunExperiment("E3", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("E3 produced no rows")
	}
	if _, err := wcle.RunExperiment("E99", 1, true); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

// ElectMany aggregates a deterministic batch: outcome counts are identical
// whatever the worker count, and a fault plane threads through the facade.
func TestElectManyDeterministicAcrossWorkers(t *testing.T) {
	g, err := wcle.NewRandomRegular(32, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *wcle.BatchResult {
		res, err := wcle.ElectMany(g, wcle.DefaultConfig(), wcle.BatchOptions{
			Base:    wcle.Options{Seed: 11, LeanMetrics: true},
			Trials:  4,
			Workers: workers,
			NewFault: func(int) wcle.FaultPlane {
				return wcle.ComposeFaults(&wcle.Drop{P: 0.02}, &wcle.Delay{Max: 1})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(3)
	if a.Trials != 4 || a.One+a.Zero+a.Multi != 4 {
		t.Fatalf("outcome counts inconsistent: %+v", a)
	}
	if a.One != b.One || a.Zero != b.Zero || a.Multi != b.Multi ||
		a.Messages != b.Messages || a.FaultDrops != b.FaultDrops || a.Delayed != b.Delayed {
		t.Fatalf("worker count changed batch results:\n1 worker  %+v\n3 workers %+v", a, b)
	}
	if a.FaultDrops == 0 && a.Delayed == 0 {
		t.Fatal("fault plane did not intervene (suspicious for 4 elections at 2% drop)")
	}
	if a.ElectionsPerSec <= 0 || len(a.Shards) == 0 {
		t.Fatalf("throughput/shard stats missing: %+v", a)
	}
}

// TestElectWithBackends drives every registered backend through the
// facade on one clique and cross-checks that Elect (the default route)
// matches ElectWith("gilbertrs18") exactly.
func TestElectWithBackends(t *testing.T) {
	g, err := wcle.NewClique(32, 1)
	if err != nil {
		t.Fatal(err)
	}
	algos := wcle.Algorithms()
	if len(algos) < 3 {
		t.Fatalf("registered backends = %v, want at least 3", algos)
	}
	for _, name := range algos {
		out, err := wcle.ElectWith(name, g, wcle.AlgorithmConfig{}, wcle.AlgorithmOptions{Seed: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Algorithm != name || len(out.Leaders) > 1 {
			t.Fatalf("%s: outcome %+v", name, out)
		}
	}
	res, err := wcle.Elect(g, wcle.DefaultConfig(), wcle.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	out, err := wcle.ElectWith(wcle.DefaultAlgorithm(), g, wcle.AlgorithmConfig{}, wcle.AlgorithmOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Leaders) != len(out.Leaders) || res.Metrics.Messages != out.Metrics.Messages {
		t.Fatalf("Elect and ElectWith(default) diverged: %+v vs %+v", res, out)
	}
	if _, err := wcle.ElectWith("paxos", g, wcle.AlgorithmConfig{}, wcle.AlgorithmOptions{Seed: 1}); err == nil {
		t.Fatal("unknown backend must error")
	}
}

// TestElectManyWithBackends runs a floodmax batch through the facade's
// generic batch path.
func TestElectManyWithBackends(t *testing.T) {
	g, err := wcle.NewClique(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := wcle.ElectManyWith("floodmax", g, wcle.AlgorithmConfig{}, wcle.AlgorithmBatchOptions{
		Base: wcle.AlgorithmOptions{Seed: 5}, Trials: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "floodmax" || res.One != 5 {
		t.Fatalf("floodmax batch: %+v", res)
	}
}
