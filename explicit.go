package wcle

import (
	"fmt"
)

// ExplicitResult reports an explicit election (Corollary 14): the implicit
// election followed by a push-pull broadcast of the leader's id.
type ExplicitResult struct {
	// Implicit is the election phase result.
	Implicit *Result
	// Broadcast is the dissemination phase result (nil if no leader was
	// elected, in which case nothing is broadcast).
	Broadcast *BroadcastResult
	// TotalMessages sums both phases (the Corollary 14 quantity
	// O(sqrt(n) log^{7/2} n tmix + n log n / phi)).
	TotalMessages int64
	// AllInformed reports whether every node learned the leader id.
	AllInformed bool
}

// errUnknownExperiment keeps the facade free of fmt imports spread around.
func errUnknownExperiment(id string) error {
	return fmt.Errorf("wcle: unknown experiment %q (known: %v)", id, ExperimentIDs())
}

// ElectExplicit runs the implicit election and then broadcasts the leader's
// id with push-pull gossip, per Corollary 14. The broadcast horizon is
// found by probing (a first pass to coverage, then a truncated pass whose
// message count is the cost to full coverage); pass horizon > 0 to fix it.
func ElectExplicit(g *Graph, cfg Config, opts Options, horizon int) (*ExplicitResult, error) {
	res, err := Elect(g, cfg, opts)
	if err != nil {
		return nil, err
	}
	out := &ExplicitResult{Implicit: res, TotalMessages: res.Metrics.Messages}
	if len(res.Leaders) == 0 {
		return out, nil
	}
	source := res.Leaders[0]
	rumor := res.LeaderIDs[0]
	if horizon <= 0 {
		probe, err := PushPull(g, PushPullOptions{Source: source, Rumor: rumor, Seed: opts.Seed + 1, Horizon: 40 * g.N()})
		if err != nil {
			return nil, err
		}
		horizon = probe.CompletionRound
		if horizon <= 0 {
			horizon = 40 * g.N()
		}
	}
	bc, err := PushPull(g, PushPullOptions{Source: source, Rumor: rumor, Seed: opts.Seed + 1, Horizon: horizon})
	if err != nil {
		return nil, err
	}
	out.Broadcast = bc
	out.TotalMessages += bc.Metrics.Messages
	out.AllInformed = bc.AllInformed
	return out, nil
}
