package wcle_test

// The observability spine's load-bearing contract: tracing is strictly
// observational. A run with a tracer attached must produce the
// byte-identical leader, rounds, message totals, and per-node send
// counts as the same seed without one — in the sim and over the wire
// (DESIGN.md section 10.1).

import (
	"reflect"
	"testing"

	"wcle"
	"wcle/internal/obs"
)

// TestTracerPreservesDeterminism runs the same elections with the tracer
// off and on (flight-ring sink) and demands identical results.
func TestTracerPreservesDeterminism(t *testing.T) {
	g, err := wcle.NewRandomRegular(64, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, protocol := range []string{wcle.DefaultAlgorithm(), "floodmax", "kpprt", "pushpull"} {
		t.Run(protocol, func(t *testing.T) {
			cfg := wcle.ProtocolConfig{Rumor: 7, Horizon: 200}
			plain, err := wcle.Run(protocol, g, cfg, wcle.AlgorithmOptions{Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			ring := obs.NewRing(0)
			tr := obs.New(ring, 0)
			traced, err := wcle.Run(protocol, g, cfg, wcle.AlgorithmOptions{Seed: 11, Tracer: tr})
			if err != nil {
				t.Fatal(err)
			}
			if tr.Emitted() == 0 {
				t.Fatal("the tracer saw nothing; the run was not actually traced")
			}

			p, q := plain.Result, traced.Result
			if p.Rounds != q.Rounds || p.Metrics.Messages != q.Metrics.Messages || p.Metrics.Bits != q.Metrics.Bits {
				t.Fatalf("traced run diverged: rounds %d vs %d, messages %d vs %d, bits %d vs %d",
					p.Rounds, q.Rounds, p.Metrics.Messages, q.Metrics.Messages, p.Metrics.Bits, q.Metrics.Bits)
			}
			if !reflect.DeepEqual(p.PerNodeMessages, q.PerNodeMessages) {
				t.Fatal("per-node send counts diverged with the tracer attached")
			}
			if !reflect.DeepEqual(p.Outputs, q.Outputs) {
				t.Fatal("per-node outputs diverged with the tracer attached")
			}
			if plain.Election != nil || traced.Election != nil {
				if plain.Election == nil || traced.Election == nil ||
					!reflect.DeepEqual(plain.Election.Leaders, traced.Election.Leaders) {
					t.Fatalf("leaders diverged: %+v vs %+v", plain.Election, traced.Election)
				}
			}
		})
	}
}
