package wcle

import (
	"math/rand"

	"wcle/internal/algo"
	"wcle/internal/baseline"
	"wcle/internal/broadcast"
	"wcle/internal/cluster"
	"wcle/internal/core"
	"wcle/internal/engine"
	"wcle/internal/experiments"
	"wcle/internal/graph"
	"wcle/internal/protocol"
	"wcle/internal/serve"
	"wcle/internal/sim"
	"wcle/internal/spectral"
)

// Re-exported types. The facade aliases the internal types so downstream
// code only imports this package.
type (
	// Graph is an immutable simple undirected graph with the paper's
	// (possibly asymmetric) port numbering.
	Graph = graph.Graph
	// LowerBoundGraph is the Section 4.1 clique-of-cliques construction.
	LowerBoundGraph = graph.LowerBound
	// DumbbellGraph is the Section 5 two-bridge construction.
	DumbbellGraph = graph.Dumbbell
	// Config parameterizes the election algorithm (constants c1/c2, message
	// mode, ablations, test hooks).
	Config = core.Config
	// Options are the per-run simulation knobs (seed, budget, observer).
	Options = core.RunOptions
	// Result summarizes one election run.
	Result = core.Result
	// ID is a protocol-level identity drawn from [1, n^4].
	ID = protocol.ID
	// Table is one experiment's rendered output.
	Table = experiments.Table
	// BroadcastResult reports a push-pull run.
	BroadcastResult = broadcast.Result
	// TreeResult reports a BFS spanning-tree construction.
	TreeResult = broadcast.TreeResult
	// FloodMaxResult reports the Omega(m)-class baseline.
	FloodMaxResult = baseline.FloodMaxResult

	// Protocol is the first-class contract every runtime layer runs: a
	// named per-node state machine with a declared output vector (see
	// internal/engine). Elections, broadcast, BFS trees, and aggregations
	// are all Protocols; Run executes any of them by registry name.
	Protocol = engine.Protocol
	// ProtocolConfig is the flat parameter set of the protocol registry
	// (each protocol reads only its own knobs).
	ProtocolConfig = engine.Config
	// ProtocolResult is the protocol-independent report of one run: the
	// per-node output matrix, per-node send counts, and run accounting.
	ProtocolResult = engine.Result
	// ProtocolOptions are the engine-level per-run knobs.
	ProtocolOptions = engine.Options
	// ProtocolBatchOptions parameterizes RunMany.
	ProtocolBatchOptions = engine.BatchOptions
	// ProtocolBatchResult aggregates a RunMany batch.
	ProtocolBatchResult = engine.BatchResult

	// FaultPlane is the delivery-plane adversary interface (see
	// internal/sim): Perfect, Drop, Delay, Crash, CrashSample, Partition,
	// Byzantine, or a Compose of them, all seed-deterministic.
	FaultPlane = sim.FaultPlane
	// Drop loses each send independently with probability P.
	Drop = sim.Drop
	// Delay adds a uniform extra delay in [0, Max] rounds to each send.
	Delay = sim.Delay
	// Crash stops nodes at explicitly scheduled rounds.
	Crash = sim.Crash
	// CrashSample crashes a sampled fraction of nodes at a given round.
	CrashSample = sim.CrashSample
	// Partition splits the graph into a seed-sampled minority/majority cut
	// and drops everything crossing it during rounds [From, To).
	Partition = sim.Partition
	// Byzantine is the active adversary: a sampled fraction (Frac) or
	// pinned set (Nodes) of nodes whose every send is mutated in transit —
	// equivocation, forgery, or bit corruption on the canonical wire
	// encoding, seed-deterministic like every other plane.
	Byzantine = sim.Byzantine
	// BatchOptions parameterizes ElectMany.
	BatchOptions = core.BatchOptions
	// BatchResult aggregates an ElectMany batch.
	BatchResult = core.BatchResult

	// Algorithm is a pluggable election backend (see internal/algo): the
	// registry ships gilbertrs18 (the paper), floodmax (the Omega(m)
	// baseline), and kpprt (the sublinear candidate-sampling election of
	// Kutten et al.).
	Algorithm = algo.Algorithm
	// AlgorithmConfig is the union of the backends' constructor knobs.
	AlgorithmConfig = algo.Config
	// AlgorithmOptions are the backend-independent per-run knobs.
	AlgorithmOptions = algo.Options
	// AlgorithmOutcome is the backend-independent election summary.
	AlgorithmOutcome = algo.Outcome
	// AlgorithmBatchOptions parameterizes ElectManyWith.
	AlgorithmBatchOptions = algo.BatchOptions
	// AlgorithmBatchResult aggregates an ElectManyWith batch.
	AlgorithmBatchResult = algo.BatchResult

	// GraphSpec names a graph family + parameters (or an explicit edge
	// list) for the service layer's registry.
	GraphSpec = serve.GraphSpec
	// ClusterJob describes one election for the wire-level cluster
	// runtime (internal/cluster): a graph spec, a backend, a seed, and
	// the backend's regime knobs.
	ClusterJob = cluster.JobSpec
	// ClusterResult is a merged cluster election outcome: the
	// backend-independent summary plus per-node send counts and
	// bytes-on-the-wire accounting.
	ClusterResult = cluster.Result
	// LocalCluster is an in-process cluster on loopback TCP — real wire
	// protocol, no separate processes (tests, experiments, examples). Its
	// Kill/Restart crash and rejoin individual shards for fault drills.
	LocalCluster = cluster.Local
	// ClusterSupervision is an active supervised cluster session: leader
	// leases, heartbeat failure detection, automatic re-election over the
	// surviving membership (see cluster.Coordinator.Supervise).
	ClusterSupervision = cluster.Supervision
	// ClusterSuperviseConfig parameterizes a supervision.
	ClusterSuperviseConfig = cluster.SuperviseConfig
	// ClusterReign is one completed election under supervision.
	ClusterReign = cluster.Reign
	// ClusterEvent is one supervision state change (lease/death/rejoin).
	ClusterEvent = cluster.Event
	// LocalClusterOptions tunes a StartLocalClusterWith session: legacy
	// coordinator-star barriers, compressed data frames.
	LocalClusterOptions = cluster.LocalOptions
	// FaultSpec is the wire form of a delivery-plane adversary.
	FaultSpec = serve.FaultSpec
	// GraphRegistry stores named graphs with memoized spectral profiles
	// behind a singleflight (see internal/serve).
	GraphRegistry = serve.Registry
	// ElectionServer is the electd HTTP service stack: registry +
	// bounded-queue scheduler + ops surface.
	ElectionServer = serve.Server
	// ServerOptions parameterizes NewElectionServer.
	ServerOptions = serve.Options
	// SpectralProfile is a graph's cached spectral characterization
	// (tmix, lambda_2, Cheeger conductance bounds).
	SpectralProfile = spectral.Profile
	// SpectralOptions bounds a profile computation.
	SpectralOptions = spectral.ProfileOptions
)

// ComposeFaults chains fault planes (drops combine, delays add, crashes
// union); nil and Perfect members are elided.
func ComposeFaults(planes ...FaultPlane) FaultPlane { return sim.Compose(planes...) }

// ElectMany runs many independent elections of cfg on g across a sharded
// worker pool and aggregates the outcomes (see core.RunMany).
//
// Deprecated: use RunMany for the protocol-generic batch, or
// ElectManyWith for other election backends. ElectMany remains as the
// core-native batch and keeps its exact behavior.
func ElectMany(g *Graph, cfg Config, opts BatchOptions) (*BatchResult, error) {
	return core.RunMany(g, cfg, opts)
}

// BuildGraph instantiates a GraphSpec (the registry does this once per
// registered name; this entry point is for ad-hoc use).
func BuildGraph(spec GraphSpec) (*Graph, error) { return spec.Build() }

// NewGraphRegistry returns an empty registry whose spectral profiles are
// computed at the given options (zero value = defaults).
func NewGraphRegistry(opts SpectralOptions) *GraphRegistry { return serve.NewRegistry(opts) }

// NewElectionServer builds the electd service stack (registry, bounded
// scheduler, ops metrics) without binding a listener; cmd/electd and
// embedders bring their own http.Server around Handler().
func NewElectionServer(opts ServerOptions) (*ElectionServer, error) { return serve.NewServer(opts) }

// Profile computes a graph's full spectral characterization — mixing time
// (exact on small graphs, sampled beyond SpectralOptions.ExactStartLimit),
// lambda_2, and the Cheeger conductance sandwich — in one call. The
// registry memoizes exactly this function per graph.
func Profile(g *Graph, opts SpectralOptions) (*SpectralProfile, error) {
	return spectral.ComputeProfile(g, opts)
}

// DefaultConfig returns the paper-faithful default parameters (c1=6, c2=2,
// natural log, CONGEST messages).
func DefaultConfig() Config { return core.DefaultConfig() }

// Algorithms lists the registered election backends (sorted).
func Algorithms() []string { return algo.Names() }

// Protocols lists every registered protocol (sorted): the election
// backends plus the dissemination substrates (pushpull, bfstree,
// aggregate). Any of these names runs through Run, RunMany, and a
// ClusterJob's Protocol field.
func Protocols() []string { return engine.Names() }

// DefaultAlgorithm is the backend Elect runs: the paper's algorithm.
func DefaultAlgorithm() string { return algo.DefaultName }

// RunReport is the outcome of one Run: the protocol-independent engine
// report, plus the election summary when the protocol is an election
// backend.
type RunReport struct {
	// Result is the engine-level report: per-node output vectors (labeled
	// by the protocol's slots), per-node send counts, and run accounting.
	Result *ProtocolResult
	// Election is the backend-independent election summary, non-nil
	// exactly when the protocol is a registered election backend.
	Election *AlgorithmOutcome
}

// Run executes any registered protocol by name ("" = the default election
// backend) on the in-process engine — elections, push-pull broadcast, BFS
// trees, and aggregations all run through this one entry point, under the
// same determinism contract: the same (protocol, graph, seed) produce
// identical outputs and per-node message counts on every delivery plane.
func Run(protocol string, g *Graph, cfg ProtocolConfig, opts AlgorithmOptions) (*RunReport, error) {
	if protocol == "" {
		protocol = algo.DefaultName
	}
	p, err := engine.New(protocol, cfg)
	if err != nil {
		return nil, err
	}
	inst, err := p.Init(g)
	if err != nil {
		return nil, err
	}
	res, err := engine.RunInstance(p, g, inst, engine.Options{
		Seed:          opts.Seed,
		Budget:        opts.Budget,
		MaxRounds:     opts.MaxRounds,
		Concurrent:    opts.Concurrent,
		LeanMetrics:   opts.LeanMetrics,
		DebugFrom:     opts.DebugFrom,
		CountSends:    true,
		Observer:      opts.Observer,
		Fault:         opts.Fault,
		FaultObserver: opts.FaultObserver,
		Tracer:        opts.Tracer,
	})
	if err != nil {
		return nil, err
	}
	rep := &RunReport{Result: res}
	if ep, ok := p.(algo.ElectionProtocol); ok {
		out, err := ep.Finish(inst, res, opts)
		if err != nil {
			return nil, err
		}
		rep.Election = out
	}
	return rep, nil
}

// RunMany runs many independent trials of the named protocol on g across
// a sharded worker pool, with the same seed-derivation contract as
// ElectMany (trial i runs at DeriveSeed(Base.Seed, i)).
func RunMany(protocol string, g *Graph, cfg ProtocolConfig, opts ProtocolBatchOptions) (*ProtocolBatchResult, error) {
	if protocol == "" {
		protocol = algo.DefaultName
	}
	p, err := engine.New(protocol, cfg)
	if err != nil {
		return nil, err
	}
	return engine.RunMany(p, g, opts)
}

// Elect runs the paper's implicit leader-election algorithm on g — the
// default backend of the algo registry.
//
// Deprecated: use Run(DefaultAlgorithm(), ...) (or ElectWith for the
// backend-native result without the engine report). Elect remains as a
// thin wrapper and keeps its exact behavior.
func Elect(g *Graph, cfg Config, opts Options) (*Result, error) {
	out, err := ElectWith(algo.GilbertRS18, g, AlgorithmConfig{Core: cfg}, AlgorithmOptions{
		Seed:          opts.Seed,
		Budget:        opts.Budget,
		MaxRounds:     opts.MaxRounds,
		Concurrent:    opts.Concurrent,
		LeanMetrics:   opts.LeanMetrics,
		DebugFrom:     opts.DebugFrom,
		Observer:      opts.Observer,
		Fault:         opts.Fault,
		FaultObserver: opts.FaultObserver,
		Tracer:        opts.Tracer,
	})
	if err != nil {
		return nil, err
	}
	return out.Detail.(*core.Result), nil
}

// ElectWith runs one election of the named backend ("" = the default) on
// g with the backend-native configuration union.
//
// Deprecated: use Run, which executes the same backends through the
// protocol-generic engine and additionally reports per-node outputs and
// send counts. ElectWith remains for callers needing AlgorithmConfig
// knobs the flat ProtocolConfig cannot express (custom core.Config test
// hooks).
func ElectWith(algorithm string, g *Graph, cfg AlgorithmConfig, opts AlgorithmOptions) (*AlgorithmOutcome, error) {
	a, err := algo.New(algorithm, cfg)
	if err != nil {
		return nil, err
	}
	return a.Run(g, opts)
}

// ElectManyWith runs many independent elections of the named backend on g
// across a sharded worker pool, with the same seed-derivation contract as
// ElectMany.
//
// Deprecated: use RunMany for the protocol-generic batch; ElectManyWith
// remains for election-shaped aggregation (leader/success tallies).
func ElectManyWith(algorithm string, g *Graph, cfg AlgorithmConfig, opts AlgorithmBatchOptions) (*AlgorithmBatchResult, error) {
	a, err := algo.New(algorithm, cfg)
	if err != nil {
		return nil, err
	}
	return algo.RunMany(g, a, opts)
}

// ElectCluster runs one election on a running wire-level cluster: it
// submits the job to the coordinator at the given address (see
// cmd/electnode) and blocks until the merged result. The determinism
// contract carries over the wire: the same ClusterJob elects the same
// leader with the same per-node message counts as the in-process sim.
func ElectCluster(coordinator string, job ClusterJob) (*ClusterResult, error) {
	return cluster.Submit(coordinator, job)
}

// StartLocalCluster assembles a shards-process-shaped cluster inside this
// process on loopback TCP. Close it when done.
func StartLocalCluster(shards int) (*LocalCluster, error) { return cluster.StartLocal(shards) }

// StartLocalClusterWith is StartLocalCluster with session options:
// LegacyBarrier selects the pre-piggyback coordinator star (what a
// mixed-version cluster negotiates down to), Compress enables flate
// compression of large data frames.
func StartLocalClusterWith(shards int, opt LocalClusterOptions) (*LocalCluster, error) {
	return cluster.StartLocalWith(shards, opt)
}

// FloodMax runs the Omega(m)-message flooding baseline (explicit election).
// horizon 0 means n rounds. ElectWith("floodmax", ...) is the registry
// route to the same algorithm with the full option set.
func FloodMax(g *Graph, seed int64, horizon int) (*FloodMaxResult, error) {
	return baseline.FloodMax(g, seed, horizon)
}

// PushPullOptions configures one PushPull run. The zero value spreads
// rumor 1 from node 0 for n rounds of push-pull at seed 0.
type PushPullOptions struct {
	// Source is the node that starts with the rumor.
	Source int
	// Rumor is the nonzero id being spread (0 defaults to 1) — e.g. the
	// elected leader's id in the Corollary 14 composition.
	Rumor ID
	// Seed drives the random neighbor choices deterministically.
	Seed int64
	// Horizon is the number of gossip rounds (0 defaults to n).
	Horizon int
	// PushOnly disables pull requests from uninformed nodes.
	PushOnly bool
}

// PushPull spreads a rumor with push-pull (or push-only) gossip. It is
// the "pushpull" registered protocol under a domain-shaped signature;
// Run(engine's "pushpull", ...) exposes the raw per-node report.
func PushPull(g *Graph, opts PushPullOptions) (*BroadcastResult, error) {
	rumor := opts.Rumor
	if rumor == 0 {
		rumor = 1
	}
	horizon := opts.Horizon
	if horizon == 0 {
		horizon = g.N()
	}
	return broadcast.PushPull(g, opts.Source, rumor, opts.Seed, horizon, opts.PushOnly)
}

// BFSTree builds a BFS spanning tree by flooding (Theta(m) messages).
func BFSTree(g *Graph, root int, seed int64) (*TreeResult, error) {
	return broadcast.BFSTree(g, root, seed)
}

// MixingTime returns the exact lazy-walk mixing time at the paper's
// accuracy 1/(2n), searching up to tmax steps.
func MixingTime(g *Graph, tmax int) (int, error) { return spectral.MixingTime(g, tmax) }

// MixingTimeSampled estimates tmix from the given start nodes (exact on
// vertex-transitive graphs).
func MixingTimeSampled(g *Graph, tmax int, starts []int) (int, error) {
	return spectral.MixingTimeSampled(g, spectral.DefaultEps(g.N()), tmax, starts)
}

// Lambda2 computes the second eigenvalue of the lazy walk operator.
func Lambda2(g *Graph) (float64, error) { return spectral.Lambda2(g, 20000, 1e-12) }

// CheegerBounds converts lambda2 into the conductance sandwich
// 1-lambda2 <= phi <= 2 sqrt(1-lambda2).
func CheegerBounds(lambda2 float64) (lo, hi float64) { return spectral.CheegerBounds(lambda2) }

// Conductance returns the exact conductance for tiny graphs (n <= 22).
func Conductance(g *Graph) (float64, error) { return spectral.ConductanceBrute(g) }

// SweepConductance returns a spectral sweep-cut upper bound on phi.
func SweepConductance(g *Graph) (float64, error) {
	phi, _, err := spectral.SweepCut(g, 20000, 1e-12)
	return phi, err
}

// NewClique returns K_n.
func NewClique(n int, seed int64) (*Graph, error) {
	return graph.Clique(n, rand.New(rand.NewSource(seed)))
}

// NewCycle returns the n-cycle.
func NewCycle(n int, seed int64) (*Graph, error) {
	return graph.Cycle(n, rand.New(rand.NewSource(seed)))
}

// NewHypercube returns the 2^dim-node hypercube.
func NewHypercube(dim int, seed int64) (*Graph, error) {
	return graph.Hypercube(dim, rand.New(rand.NewSource(seed)))
}

// NewTorus returns the rows x cols wraparound grid.
func NewTorus(rows, cols int, seed int64) (*Graph, error) {
	return graph.Torus2D(rows, cols, rand.New(rand.NewSource(seed)))
}

// NewRandomRegular returns a random simple connected d-regular graph
// (an expander w.h.p. for constant d >= 3).
func NewRandomRegular(n, d int, seed int64) (*Graph, error) {
	return graph.RandomRegular(n, d, rand.New(rand.NewSource(seed)))
}

// NewLowerBoundGraph builds the Section 4.1 graph with ~n nodes and
// conductance Theta(alpha), 1/n^2 < alpha < 1/144.
func NewLowerBoundGraph(n int, alpha float64, seed int64) (*LowerBoundGraph, error) {
	return graph.NewLowerBound(n, alpha, rand.New(rand.NewSource(seed)))
}

// NewDumbbell builds the Section 5 dumbbell from two random d-regular
// halves joined by two bridges.
func NewDumbbell(half, d int, seed int64) (*DumbbellGraph, error) {
	return graph.NewDumbbell(half, d, rand.New(rand.NewSource(seed)))
}

// NewDumbbellCliques builds the dumbbell from two cliques.
func NewDumbbellCliques(half int, seed int64) (*DumbbellGraph, error) {
	return graph.NewDumbbellCliques(half, rand.New(rand.NewSource(seed)))
}

// RunExperiment executes one of the reproduction experiments (E1..E18; see
// DESIGN.md) on the parallel harness and returns its table. quick shrinks
// sizes for smoke runs.
func RunExperiment(id string, seed int64, quick bool) (*Table, error) {
	if _, ok := experiments.Get(id); !ok {
		return nil, errUnknownExperiment(id)
	}
	return experiments.RunOne(experiments.SuiteConfig{Seed: seed, Quick: quick}, id)
}

// ExperimentIDs lists the available experiment ids.
func ExperimentIDs() []string { return experiments.IDs() }
