package wcle

import (
	"math/rand"

	"wcle/internal/algo"
	"wcle/internal/baseline"
	"wcle/internal/broadcast"
	"wcle/internal/cluster"
	"wcle/internal/core"
	"wcle/internal/experiments"
	"wcle/internal/graph"
	"wcle/internal/protocol"
	"wcle/internal/serve"
	"wcle/internal/sim"
	"wcle/internal/spectral"
)

// Re-exported types. The facade aliases the internal types so downstream
// code only imports this package.
type (
	// Graph is an immutable simple undirected graph with the paper's
	// (possibly asymmetric) port numbering.
	Graph = graph.Graph
	// LowerBoundGraph is the Section 4.1 clique-of-cliques construction.
	LowerBoundGraph = graph.LowerBound
	// DumbbellGraph is the Section 5 two-bridge construction.
	DumbbellGraph = graph.Dumbbell
	// Config parameterizes the election algorithm (constants c1/c2, message
	// mode, ablations, test hooks).
	Config = core.Config
	// Options are the per-run simulation knobs (seed, budget, observer).
	Options = core.RunOptions
	// Result summarizes one election run.
	Result = core.Result
	// ID is a protocol-level identity drawn from [1, n^4].
	ID = protocol.ID
	// Table is one experiment's rendered output.
	Table = experiments.Table
	// BroadcastResult reports a push-pull run.
	BroadcastResult = broadcast.Result
	// FloodMaxResult reports the Omega(m)-class baseline.
	FloodMaxResult = baseline.FloodMaxResult

	// FaultPlane is the delivery-plane adversary interface (see
	// internal/sim): Perfect, Drop, Delay, Crash, CrashSample, or a
	// Compose of them, all seed-deterministic.
	FaultPlane = sim.FaultPlane
	// Drop loses each send independently with probability P.
	Drop = sim.Drop
	// Delay adds a uniform extra delay in [0, Max] rounds to each send.
	Delay = sim.Delay
	// Crash stops nodes at explicitly scheduled rounds.
	Crash = sim.Crash
	// CrashSample crashes a sampled fraction of nodes at a given round.
	CrashSample = sim.CrashSample
	// Partition splits the graph into a seed-sampled minority/majority cut
	// and drops everything crossing it during rounds [From, To).
	Partition = sim.Partition
	// BatchOptions parameterizes ElectMany.
	BatchOptions = core.BatchOptions
	// BatchResult aggregates an ElectMany batch.
	BatchResult = core.BatchResult

	// Algorithm is a pluggable election backend (see internal/algo): the
	// registry ships gilbertrs18 (the paper), floodmax (the Omega(m)
	// baseline), and kpprt (the sublinear candidate-sampling election of
	// Kutten et al.).
	Algorithm = algo.Algorithm
	// AlgorithmConfig is the union of the backends' constructor knobs.
	AlgorithmConfig = algo.Config
	// AlgorithmOptions are the backend-independent per-run knobs.
	AlgorithmOptions = algo.Options
	// AlgorithmOutcome is the backend-independent election summary.
	AlgorithmOutcome = algo.Outcome
	// AlgorithmBatchOptions parameterizes ElectManyWith.
	AlgorithmBatchOptions = algo.BatchOptions
	// AlgorithmBatchResult aggregates an ElectManyWith batch.
	AlgorithmBatchResult = algo.BatchResult

	// GraphSpec names a graph family + parameters (or an explicit edge
	// list) for the service layer's registry.
	GraphSpec = serve.GraphSpec
	// ClusterJob describes one election for the wire-level cluster
	// runtime (internal/cluster): a graph spec, a backend, a seed, and
	// the backend's regime knobs.
	ClusterJob = cluster.JobSpec
	// ClusterResult is a merged cluster election outcome: the
	// backend-independent summary plus per-node send counts and
	// bytes-on-the-wire accounting.
	ClusterResult = cluster.Result
	// LocalCluster is an in-process cluster on loopback TCP — real wire
	// protocol, no separate processes (tests, experiments, examples). Its
	// Kill/Restart crash and rejoin individual shards for fault drills.
	LocalCluster = cluster.Local
	// ClusterSupervision is an active supervised cluster session: leader
	// leases, heartbeat failure detection, automatic re-election over the
	// surviving membership (see cluster.Coordinator.Supervise).
	ClusterSupervision = cluster.Supervision
	// ClusterSuperviseConfig parameterizes a supervision.
	ClusterSuperviseConfig = cluster.SuperviseConfig
	// ClusterReign is one completed election under supervision.
	ClusterReign = cluster.Reign
	// ClusterEvent is one supervision state change (lease/death/rejoin).
	ClusterEvent = cluster.Event
	// LocalClusterOptions tunes a StartLocalClusterWith session: legacy
	// coordinator-star barriers, compressed data frames.
	LocalClusterOptions = cluster.LocalOptions
	// FaultSpec is the wire form of a delivery-plane adversary.
	FaultSpec = serve.FaultSpec
	// GraphRegistry stores named graphs with memoized spectral profiles
	// behind a singleflight (see internal/serve).
	GraphRegistry = serve.Registry
	// ElectionServer is the electd HTTP service stack: registry +
	// bounded-queue scheduler + ops surface.
	ElectionServer = serve.Server
	// ServerOptions parameterizes NewElectionServer.
	ServerOptions = serve.Options
	// SpectralProfile is a graph's cached spectral characterization
	// (tmix, lambda_2, Cheeger conductance bounds).
	SpectralProfile = spectral.Profile
	// SpectralOptions bounds a profile computation.
	SpectralOptions = spectral.ProfileOptions
)

// ComposeFaults chains fault planes (drops combine, delays add, crashes
// union); nil and Perfect members are elided.
func ComposeFaults(planes ...FaultPlane) FaultPlane { return sim.Compose(planes...) }

// ElectMany runs many independent elections of cfg on g across a sharded
// worker pool and aggregates the outcomes (see core.RunMany).
func ElectMany(g *Graph, cfg Config, opts BatchOptions) (*BatchResult, error) {
	return core.RunMany(g, cfg, opts)
}

// BuildGraph instantiates a GraphSpec (the registry does this once per
// registered name; this entry point is for ad-hoc use).
func BuildGraph(spec GraphSpec) (*Graph, error) { return spec.Build() }

// NewGraphRegistry returns an empty registry whose spectral profiles are
// computed at the given options (zero value = defaults).
func NewGraphRegistry(opts SpectralOptions) *GraphRegistry { return serve.NewRegistry(opts) }

// NewElectionServer builds the electd service stack (registry, bounded
// scheduler, ops metrics) without binding a listener; cmd/electd and
// embedders bring their own http.Server around Handler().
func NewElectionServer(opts ServerOptions) (*ElectionServer, error) { return serve.NewServer(opts) }

// Profile computes a graph's full spectral characterization — mixing time
// (exact on small graphs, sampled beyond SpectralOptions.ExactStartLimit),
// lambda_2, and the Cheeger conductance sandwich — in one call. The
// registry memoizes exactly this function per graph.
func Profile(g *Graph, opts SpectralOptions) (*SpectralProfile, error) {
	return spectral.ComputeProfile(g, opts)
}

// DefaultConfig returns the paper-faithful default parameters (c1=6, c2=2,
// natural log, CONGEST messages).
func DefaultConfig() Config { return core.DefaultConfig() }

// Algorithms lists the registered election backends (sorted).
func Algorithms() []string { return algo.Names() }

// DefaultAlgorithm is the backend Elect runs: the paper's algorithm.
func DefaultAlgorithm() string { return algo.DefaultName }

// Elect runs the paper's implicit leader-election algorithm on g — the
// default backend of the algo registry; ElectWith selects the others.
func Elect(g *Graph, cfg Config, opts Options) (*Result, error) {
	a, err := algo.New(algo.GilbertRS18, algo.Config{Core: cfg})
	if err != nil {
		return nil, err
	}
	out, err := a.Run(g, algo.Options{
		Seed:          opts.Seed,
		Budget:        opts.Budget,
		MaxRounds:     opts.MaxRounds,
		Concurrent:    opts.Concurrent,
		LeanMetrics:   opts.LeanMetrics,
		DebugFrom:     opts.DebugFrom,
		Observer:      opts.Observer,
		Fault:         opts.Fault,
		FaultObserver: opts.FaultObserver,
	})
	if err != nil {
		return nil, err
	}
	return out.Detail.(*core.Result), nil
}

// ElectWith runs one election of the named backend ("" = the default) on
// g. All three shipped backends — gilbertrs18, floodmax, kpprt — accept
// the same backend-independent options (seed, budget, fault plane).
func ElectWith(algorithm string, g *Graph, cfg AlgorithmConfig, opts AlgorithmOptions) (*AlgorithmOutcome, error) {
	a, err := algo.New(algorithm, cfg)
	if err != nil {
		return nil, err
	}
	return a.Run(g, opts)
}

// ElectManyWith runs many independent elections of the named backend on g
// across a sharded worker pool, with the same seed-derivation contract as
// ElectMany.
func ElectManyWith(algorithm string, g *Graph, cfg AlgorithmConfig, opts AlgorithmBatchOptions) (*AlgorithmBatchResult, error) {
	a, err := algo.New(algorithm, cfg)
	if err != nil {
		return nil, err
	}
	return algo.RunMany(g, a, opts)
}

// ElectCluster runs one election on a running wire-level cluster: it
// submits the job to the coordinator at the given address (see
// cmd/electnode) and blocks until the merged result. The determinism
// contract carries over the wire: the same ClusterJob elects the same
// leader with the same per-node message counts as the in-process sim.
func ElectCluster(coordinator string, job ClusterJob) (*ClusterResult, error) {
	return cluster.Submit(coordinator, job)
}

// StartLocalCluster assembles a shards-process-shaped cluster inside this
// process on loopback TCP. Close it when done.
func StartLocalCluster(shards int) (*LocalCluster, error) { return cluster.StartLocal(shards) }

// StartLocalClusterWith is StartLocalCluster with session options:
// LegacyBarrier selects the pre-piggyback coordinator star (what a
// mixed-version cluster negotiates down to), Compress enables flate
// compression of large data frames.
func StartLocalClusterWith(shards int, opt LocalClusterOptions) (*LocalCluster, error) {
	return cluster.StartLocalWith(shards, opt)
}

// FloodMax runs the Omega(m)-message flooding baseline (explicit election).
// horizon 0 means n rounds. ElectWith("floodmax", ...) is the registry
// route to the same algorithm with the full option set.
func FloodMax(g *Graph, seed int64, horizon int) (*FloodMaxResult, error) {
	return baseline.FloodMax(g, seed, horizon)
}

// PushPull spreads a rumor with push-pull (or push-only) gossip for
// `horizon` rounds.
func PushPull(g *Graph, source int, rumor ID, seed int64, horizon int, pushOnly bool) (*BroadcastResult, error) {
	return broadcast.PushPull(g, source, rumor, seed, horizon, pushOnly)
}

// BFSTree builds a BFS spanning tree by flooding (Theta(m) messages).
func BFSTree(g *Graph, root int, seed int64) (*broadcast.TreeResult, error) {
	return broadcast.BFSTree(g, root, seed)
}

// MixingTime returns the exact lazy-walk mixing time at the paper's
// accuracy 1/(2n), searching up to tmax steps.
func MixingTime(g *Graph, tmax int) (int, error) { return spectral.MixingTime(g, tmax) }

// MixingTimeSampled estimates tmix from the given start nodes (exact on
// vertex-transitive graphs).
func MixingTimeSampled(g *Graph, tmax int, starts []int) (int, error) {
	return spectral.MixingTimeSampled(g, spectral.DefaultEps(g.N()), tmax, starts)
}

// Lambda2 computes the second eigenvalue of the lazy walk operator.
func Lambda2(g *Graph) (float64, error) { return spectral.Lambda2(g, 20000, 1e-12) }

// CheegerBounds converts lambda2 into the conductance sandwich
// 1-lambda2 <= phi <= 2 sqrt(1-lambda2).
func CheegerBounds(lambda2 float64) (lo, hi float64) { return spectral.CheegerBounds(lambda2) }

// Conductance returns the exact conductance for tiny graphs (n <= 22).
func Conductance(g *Graph) (float64, error) { return spectral.ConductanceBrute(g) }

// SweepConductance returns a spectral sweep-cut upper bound on phi.
func SweepConductance(g *Graph) (float64, error) {
	phi, _, err := spectral.SweepCut(g, 20000, 1e-12)
	return phi, err
}

// NewClique returns K_n.
func NewClique(n int, seed int64) (*Graph, error) {
	return graph.Clique(n, rand.New(rand.NewSource(seed)))
}

// NewCycle returns the n-cycle.
func NewCycle(n int, seed int64) (*Graph, error) {
	return graph.Cycle(n, rand.New(rand.NewSource(seed)))
}

// NewHypercube returns the 2^dim-node hypercube.
func NewHypercube(dim int, seed int64) (*Graph, error) {
	return graph.Hypercube(dim, rand.New(rand.NewSource(seed)))
}

// NewTorus returns the rows x cols wraparound grid.
func NewTorus(rows, cols int, seed int64) (*Graph, error) {
	return graph.Torus2D(rows, cols, rand.New(rand.NewSource(seed)))
}

// NewRandomRegular returns a random simple connected d-regular graph
// (an expander w.h.p. for constant d >= 3).
func NewRandomRegular(n, d int, seed int64) (*Graph, error) {
	return graph.RandomRegular(n, d, rand.New(rand.NewSource(seed)))
}

// NewLowerBoundGraph builds the Section 4.1 graph with ~n nodes and
// conductance Theta(alpha), 1/n^2 < alpha < 1/144.
func NewLowerBoundGraph(n int, alpha float64, seed int64) (*LowerBoundGraph, error) {
	return graph.NewLowerBound(n, alpha, rand.New(rand.NewSource(seed)))
}

// NewDumbbell builds the Section 5 dumbbell from two random d-regular
// halves joined by two bridges.
func NewDumbbell(half, d int, seed int64) (*DumbbellGraph, error) {
	return graph.NewDumbbell(half, d, rand.New(rand.NewSource(seed)))
}

// NewDumbbellCliques builds the dumbbell from two cliques.
func NewDumbbellCliques(half int, seed int64) (*DumbbellGraph, error) {
	return graph.NewDumbbellCliques(half, rand.New(rand.NewSource(seed)))
}

// RunExperiment executes one of the reproduction experiments (E1..E18; see
// DESIGN.md) on the parallel harness and returns its table. quick shrinks
// sizes for smoke runs.
func RunExperiment(id string, seed int64, quick bool) (*Table, error) {
	if _, ok := experiments.Get(id); !ok {
		return nil, errUnknownExperiment(id)
	}
	return experiments.RunOne(experiments.SuiteConfig{Seed: seed, Quick: quick}, id)
}

// ExperimentIDs lists the available experiment ids.
func ExperimentIDs() []string { return experiments.IDs() }
