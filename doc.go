// Package wcle (Well-Connected Leader Election) is a full reproduction of
//
//	"Leader Election in Well-Connected Graphs",
//	Seth Gilbert, Peter Robinson, Suman Sourav — PODC 2018
//	(arXiv:1901.00342)
//
// It implements the paper's randomized implicit leader-election algorithm at
// CONGEST message fidelity on a synchronous network simulator, every
// substrate the paper depends on (port-numbered graphs, lazy random walks
// and their spectral theory, push-pull rumor spreading, flooding baselines,
// the Section 4 lower-bound graph constructions), and an experiment suite
// that regenerates a measurement for every quantitative claim in the paper
// (Theorems 13/15/28, Lemmas 1-25, Corollaries 14/26/27, Figures 1-2).
//
// # Quick start
//
//	g, err := wcle.NewRandomRegular(256, 8, 1)   // an expander
//	if err != nil { ... }
//	res, err := wcle.Elect(g, wcle.DefaultConfig(), wcle.Options{Seed: 7})
//	if err != nil { ... }
//	fmt.Println(res.Success, res.Leaders, res.Metrics.Messages)
//
// The elected node raises its leader flag; with the implicit variant nobody
// else needs to learn its identity. ElectExplicit appends the Corollary 14
// push-pull broadcast so every node learns the leader id.
//
// # Algorithm backends
//
// Election protocols are pluggable backends behind one registry
// (internal/algo): gilbertrs18 (the paper's algorithm — what Elect runs),
// floodmax (the Omega(m) flooding baseline), and kpprt (the sublinear
// candidate-sampling election of Kutten et al.). ElectWith and
// ElectManyWith run any of them under the same options, seeds, and fault
// planes:
//
//	out, err := wcle.ElectWith("kpprt", g, wcle.AlgorithmConfig{},
//	    wcle.AlgorithmOptions{Seed: 7})
//
// # Packages
//
// The root package is a facade over the internal packages: internal/core
// (the paper's algorithm), internal/algo (the backend registry),
// internal/sim (the synchronous CONGEST engine), internal/graph (families
// and the lower-bound constructions), internal/spectral (mixing times and
// conductance), internal/protocol (CONGEST message plumbing),
// internal/broadcast, internal/baseline, internal/lowerbound,
// internal/serve (the electd service layer), and internal/experiments
// (the E1-E18 suite described in DESIGN.md, run on a parallel worker-pool
// harness and rendered into EXPERIMENTS.md by cmd/benchsuite). README.md
// has the CLI quickstart.
package wcle
