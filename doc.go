// Package wcle (Well-Connected Leader Election) is a full reproduction of
//
//	"Leader Election in Well-Connected Graphs",
//	Seth Gilbert, Peter Robinson, Suman Sourav — PODC 2018
//	(arXiv:1901.00342)
//
// It implements the paper's randomized implicit leader-election algorithm at
// CONGEST message fidelity on a synchronous network simulator, every
// substrate the paper depends on (port-numbered graphs, lazy random walks
// and their spectral theory, push-pull rumor spreading, flooding baselines,
// the Section 4 lower-bound graph constructions), and an experiment suite
// that regenerates a measurement for every quantitative claim in the paper
// (Theorems 13/15/28, Lemmas 1-25, Corollaries 14/26/27, Figures 1-2).
//
// # Quick start
//
//	g, err := wcle.NewRandomRegular(256, 8, 1)   // an expander
//	if err != nil { ... }
//	res, err := wcle.Elect(g, wcle.DefaultConfig(), wcle.Options{Seed: 7})
//	if err != nil { ... }
//	fmt.Println(res.Success, res.Leaders, res.Metrics.Messages)
//
// The elected node raises its leader flag; with the implicit variant nobody
// else needs to learn its identity. ElectExplicit appends the Corollary 14
// push-pull broadcast so every node learns the leader id.
//
// # Protocols and algorithm backends
//
// Every distributed algorithm in the repo — the four election backends
// (gilbertrs18, the paper's algorithm and what Elect runs;
// gilbertrs18-fixed, the known-tmix baseline; floodmax, the Omega(m)
// flooding baseline; kpprt, the sublinear candidate-sampling election of
// Kutten et al.) plus the dissemination substrates (pushpull, bfstree,
// aggregate) — is a registered protocol of the generic engine
// (internal/engine), runnable by name through one entry point:
//
//	rep, err := wcle.Run("pushpull", g,
//	    wcle.ProtocolConfig{Rumor: 9}, wcle.AlgorithmOptions{Seed: 7})
//	// rep.Result: per-node outputs, per-node send counts, rounds, metrics
//	// rep.Election: non-nil when the protocol is an election backend
//
// Protocols lists the registry; RunMany runs sharded batches. The same
// contract holds on every delivery plane: same (protocol, graph, seed)
// produce identical outputs and per-node message counts on the in-process
// sim and the wire-level TCP cluster, with and without fault planes —
// including the Byzantine plane, whose forged bytes replay identically on
// both (ProtocolConfig.Defend wraps any protocol in the committee-sampled
// validation defense).
// The election-shaped entry points (Elect, ElectWith, ElectMany,
// ElectManyWith) remain as deprecated thin wrappers:
//
//	out, err := wcle.ElectWith("kpprt", g, wcle.AlgorithmConfig{},
//	    wcle.AlgorithmOptions{Seed: 7})
//
// # Packages
//
// The root package is a facade over the internal packages: internal/core
// (the paper's algorithm), internal/engine (the generic protocol contract
// and registry), internal/algo (the election backend registry, adapted
// over the engine), internal/sim (the synchronous CONGEST engine),
// internal/graph (families and the lower-bound constructions),
// internal/spectral (mixing times and conductance), internal/protocol
// (CONGEST message plumbing), internal/broadcast, internal/baseline,
// internal/lowerbound, internal/serve (the electd service layer), and
// internal/experiments (the E1-E23 suite described in DESIGN.md, run on a
// parallel worker-pool harness and rendered into EXPERIMENTS.md by
// cmd/benchsuite). README.md has the CLI quickstart.
package wcle
