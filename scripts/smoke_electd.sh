#!/usr/bin/env bash
# End-to-end smoke of the electd daemon, as run by the CI smoke job:
# build it, start it on an ephemeral port, register a clique, submit a
# small election batch over HTTP, require a unique leader in every trial,
# require a spectral-cache hit on a second job, exercise the per-point
# "algorithm" field against the floodmax and kpprt backends (plus the
# per-backend /metrics counters), and exercise graceful SIGTERM shutdown.
# Needs only bash, curl, and grep.
set -euo pipefail

workdir="$(mktemp -d)"
bin="$workdir/electd"
addrfile="$workdir/electd.addr"
logfile="$workdir/electd.log"
pid=""

cleanup() {
  if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
    kill -KILL "$pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
  echo "smoke: FAIL: $*" >&2
  echo "--- electd log ---" >&2
  cat "$logfile" >&2 || true
  exit 1
}

# Extract "field":value from a one-object JSON response without jq.
json_field() { # json_field <json> <field>
  printf '%s' "$1" | tr -d ' \n' | grep -o "\"$2\":[^,}]*" | head -n1 | cut -d: -f2- | tr -d '"'
}

echo "smoke: building electd"
go build -o "$bin" ./cmd/electd

echo "smoke: starting daemon on an ephemeral port"
"$bin" -addr 127.0.0.1:0 -ready-file "$addrfile" -queue 8 >"$logfile" 2>&1 &
pid=$!

for _ in $(seq 1 100); do
  [ -s "$addrfile" ] && break
  kill -0 "$pid" 2>/dev/null || fail "daemon exited before binding"
  sleep 0.1
done
[ -s "$addrfile" ] || fail "daemon never wrote the ready file"
base="http://$(cat "$addrfile")"
echo "smoke: daemon at $base"

curl -fsS "$base/healthz" | grep -q '"ok"' || fail "healthz not ok"

echo "smoke: registering a 32-clique"
curl -fsS -X POST "$base/v1/graphs" \
  -d '{"name":"k32","spec":{"family":"clique","n":32}}' >/dev/null \
  || fail "graph registration"

submit() {
  curl -fsS -X POST "$base/v1/elections" \
    -d '{"seed":7,"points":[{"graph":"k32","trials":6}]}'
}

wait_done() { # wait_done <job-id>
  local status state
  for _ in $(seq 1 300); do
    status="$(curl -fsS "$base/v1/elections/$1")"
    state="$(json_field "$status" state)"
    case "$state" in
      done) printf '%s' "$status"; return 0 ;;
      failed) fail "job $1 failed: $status" ;;
    esac
    sleep 0.2
  done
  fail "job $1 did not finish"
}

echo "smoke: submitting an election batch"
resp="$(submit)" || fail "submission"
job="$(json_field "$resp" id)"
[ -n "$job" ] || fail "no job id in $resp"

status="$(wait_done "$job")"
echo "$status" | tr -d ' \n' | grep -q '"unique_leader":true' \
  || fail "no unique leader: $status"
echo "$status" | tr -d ' \n' | grep -q '"one":6' \
  || fail "expected 6/6 single-leader trials: $status"
echo "smoke: unique leader in all 6 trials"

echo "smoke: second job must hit the spectral cache"
resp="$(submit)" || fail "second submission"
wait_done "$(json_field "$resp" id)" >/dev/null
metrics="$(curl -fsS "$base/metrics")"
echo "$metrics" | grep -q '^electd_spectral_computes_total 1$' \
  || fail "profile recomputed: $(echo "$metrics" | grep electd_spectral)"
hits="$(echo "$metrics" | grep '^electd_spectral_cache_hits_total' | awk '{print $2}')"
[ "$hits" -ge 1 ] || fail "no cache hit observed: $metrics"
echo "smoke: cache hits=$hits computes=1"

echo "smoke: algorithm backends (floodmax, kpprt) via the per-point field"
submit_algo() { # submit_algo <algorithm>
  curl -fsS -X POST "$base/v1/elections" \
    -d "{\"seed\":7,\"points\":[{\"graph\":\"k32\",\"trials\":6,\"algorithm\":\"$1\"}]}"
}
for alg in floodmax kpprt; do
  resp="$(submit_algo "$alg")" || fail "$alg submission"
  status="$(wait_done "$(json_field "$resp" id)")"
  echo "$status" | tr -d ' \n' | grep -q '"unique_leader":true' \
    || fail "$alg: no unique leader: $status"
  echo "$status" | tr -d ' \n' | grep -q "\"algorithm\":\"$alg\"" \
    || fail "$alg: result does not echo the backend: $status"
  echo "smoke: $alg elected a unique leader in all 6 trials"
done

echo "smoke: unknown algorithms are rejected at submission"
code="$(curl -sS -o /dev/null -w '%{http_code}' -X POST "$base/v1/elections" \
  -d '{"seed":1,"points":[{"graph":"k32","trials":1,"algorithm":"paxos"}]}')"
[ "$code" = "400" ] || fail "unknown algorithm got HTTP $code, want 400"

metrics="$(curl -fsS "$base/metrics")"
for alg in gilbertrs18 floodmax kpprt; do
  echo "$metrics" | grep -q "^electd_elections_by_algorithm_total{algorithm=\"$alg\"}" \
    || fail "no per-backend counter for $alg: $(echo "$metrics" | grep electd_elections)"
done
echo "smoke: per-backend election counters present"

# The cluster wire counters are always exported (zero off-cluster), so
# dashboards can rely on their presence; electd ran in-process here.
for counter in electd_cluster_wire_frames_total electd_cluster_wire_bytes_total \
  electd_cluster_envelopes_total electd_cluster_barriers_total \
  electd_cluster_barrier_frames_total electd_cluster_compressed_frames_total \
  electd_cluster_raw_bytes_total electd_cluster_compressed_bytes_total; do
  echo "$metrics" | grep -q "^$counter " \
    || fail "missing cluster wire counter $counter: $(echo "$metrics" | grep electd_cluster)"
done
echo "smoke: cluster wire counters exported"

echo "smoke: graceful SIGTERM shutdown"
kill -TERM "$pid"
for _ in $(seq 1 100); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
  fail "daemon still alive after SIGTERM"
fi
wait "$pid" || fail "daemon exited non-zero"
grep -q "drained, bye" "$logfile" || fail "no graceful-drain log line"
pid=""

echo "smoke: PASS"
