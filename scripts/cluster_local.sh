#!/usr/bin/env bash
# cluster_local.sh — bring up an N-process election cluster on localhost
# and run one wire-level election per registered backend.
#
# Usage: scripts/cluster_local.sh [shards] [n] [graph]
#   shards  process count (default 3: one coordinator + two workers)
#   n       graph size (default 48)
#   graph   graph family (default clique)
#
# The script builds cmd/electnode, starts the coordinator in -serve mode
# on an ephemeral port, joins shards-1 workers, submits one election per
# backend (gilbertrs18, floodmax, kpprt), asserts exactly one leader per
# election — each with zero barrier control frames (the piggybacked
# barrier is the negotiated default) — and checks every process exits
# cleanly on shutdown.
#
# A compression pass then brings up a fresh -compress session and
# asserts a floodmax election actually crossed flate-compressed (with
# fewer compressed than raw bytes) and still elected one leader.
#
# Two fault passes follow: a -drop/-delay-max election whose outcome and
# message counts must match a 1-shard run of the same spec (the
# determinism contract under faults, at the process level), and a
# -supervise session where the leader's shard process is SIGKILLed
# mid-lease — the supervisor must print the death, re-elect, fold the
# restarted shard back in, and shut down with three reigns. Every wait
# has a timeout; a hang fails the script. This is also the CI cluster
# smoke job.
#
# An observability pass rides along: the first coordinator serves
# -debug-addr, whose /metrics, /healthz, /flightz, and /debug/pprof/
# must all answer with live data, and the supervised pass runs with
# -flight-dump, whose re-election must leave a non-empty NDJSON
# flight-recorder dump.
set -euo pipefail

SHARDS="${1:-3}"
N="${2:-48}"
GRAPH="${3:-clique}"
SEED="${CLUSTER_SEED:-7}"

workdir="$(mktemp -d)"
bin="$workdir/electnode"
ready="$workdir/coordinator.addr"
worker_pids=()
coord_pid=""

cleanup() {
    # Best-effort teardown for early exits; the happy path has already
    # waited for everything.
    [ -n "$coord_pid" ] && kill "$coord_pid" 2>/dev/null || true
    for pid in "${worker_pids[@]:-}"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "cluster_local: building electnode..."
go build -o "$bin" ./cmd/electnode

echo "cluster_local: starting coordinator (-serve, $SHARDS shards, debug endpoints)..."
"$bin" -listen 127.0.0.1:0 -shards "$SHARDS" -serve -ready-file "$ready" \
    -debug-addr 127.0.0.1:0 \
    2>"$workdir/coordinator.log" &
coord_pid=$!

for _ in $(seq 1 100); do
    [ -s "$ready" ] && break
    sleep 0.1
done
[ -s "$ready" ] || { echo "cluster_local: coordinator never wrote $ready" >&2; exit 1; }
addr="$(cat "$ready")"
echo "cluster_local: coordinator on $addr"

for shard in $(seq 1 $((SHARDS - 1))); do
    "$bin" -bootstrap "$addr" -shard "$shard" -listen 127.0.0.1:0 \
        2>"$workdir/worker$shard.log" &
    worker_pids+=($!)
    echo "cluster_local: worker shard $shard started (pid ${worker_pids[-1]})"
done

fail=0
for backend in gilbertrs18 floodmax kpprt; do
    echo "cluster_local: electing with $backend on $GRAPH n=$N seed=$SEED..."
    out="$("$bin" -submit "$addr" -graph "$GRAPH" -n "$N" -algo "$backend" -seed "$SEED")" || {
        echo "cluster_local: FAIL: $backend submission errored" >&2
        fail=1
        continue
    }
    # "outcome: leaders=[27] success=true ..." — exactly one leader index.
    leaders_list="$(printf '%s\n' "$out" | sed -n 's/^outcome: leaders=\[\([0-9 ]*\)\].*/\1/p')"
    leaders="$(printf '%s' "$leaders_list" | wc -w)"
    envelopes="$(printf '%s\n' "$out" | sed -n 's/^wire: .*envelopes=\([0-9]*\).*/\1/p')"
    barrier_frames="$(printf '%s\n' "$out" | sed -n 's/^wire: .*barrier_frames=\([0-9]*\).*/\1/p')"
    if [ "$leaders" != "1" ] || ! printf '%s\n' "$out" | grep -q 'success=true'; then
        echo "cluster_local: FAIL: $backend elected $leaders leader(s)" >&2
        printf '%s\n' "$out" >&2
        fail=1
    elif [ -z "$envelopes" ] || [ "$envelopes" -eq 0 ]; then
        echo "cluster_local: FAIL: $backend sent no envelopes over the wire" >&2
        printf '%s\n' "$out" >&2
        fail=1
    elif [ "$barrier_frames" != "0" ]; then
        echo "cluster_local: FAIL: $backend sent $barrier_frames barrier control frames; the piggybacked barrier should send none" >&2
        printf '%s\n' "$out" >&2
        fail=1
    else
        echo "cluster_local: OK: $backend elected exactly one leader ($envelopes envelopes, 0 barrier control frames)"
    fi
done

# ---- observability pass: electnode debug endpoints --------------------------

# The coordinator exposed -debug-addr; the elections above must show up
# in its /metrics, the flight recorder must hold trace events, and pprof
# must answer.
dbg="$(sed -n 's#.*debug endpoints on http://\([^ ]*\) .*#\1#p' "$workdir/coordinator.log" | head -n1)"
if [ -n "$dbg" ]; then
    nmetrics="$(curl -fsS "http://$dbg/metrics")"
    njobs="$(printf '%s\n' "$nmetrics" | awk '/^electnode_jobs_total /{print $2}')"
    nframes="$(printf '%s\n' "$nmetrics" | awk '/^electnode_wire_frames_total /{print $2}')"
    ntrace="$(printf '%s\n' "$nmetrics" | awk '/^electnode_trace_events_total /{print $2}')"
    if [ -z "$njobs" ] || [ "$njobs" -lt 3 ]; then
        echo "cluster_local: FAIL: /metrics shows $njobs jobs after 3 elections" >&2
        fail=1
    elif [ -z "$nframes" ] || [ "$nframes" -eq 0 ]; then
        echo "cluster_local: FAIL: /metrics shows no wire frames" >&2
        fail=1
    elif [ -z "$ntrace" ] || [ "$ntrace" -eq 0 ]; then
        echo "cluster_local: FAIL: /metrics shows no trace events (flight recorder dark)" >&2
        fail=1
    elif ! curl -fsS "http://$dbg/healthz" | grep -q ok; then
        echo "cluster_local: FAIL: /healthz did not answer ok" >&2
        fail=1
    elif ! curl -fsS "http://$dbg/debug/pprof/" | grep -qi profile; then
        echo "cluster_local: FAIL: /debug/pprof/ did not serve an index" >&2
        fail=1
    elif ! curl -fsS "http://$dbg/flightz" -o "$workdir/flightz.ndjson" \
        || ! head -n1 "$workdir/flightz.ndjson" | grep -q '"ts"'; then
        echo "cluster_local: FAIL: /flightz snapshot is empty" >&2
        fail=1
    else
        echo "cluster_local: OK: debug endpoints live ($njobs jobs, $nframes frames, $ntrace trace events)"
    fi
else
    echo "cluster_local: FAIL: coordinator never announced its debug address" >&2
    cat "$workdir/coordinator.log" >&2
    fail=1
fi

# ---- electd -cluster pass: wire counters through /metrics -------------------

# electd dispatching to this cluster must export the barrier counters:
# barriers accumulate, barrier control frames stay zero (piggybacked).
echo "cluster_local: electd -cluster pass: /metrics wire counters..."
electd_bin="$workdir/electd"
go build -o "$electd_bin" ./cmd/electd
eready="$workdir/electd.addr"
"$electd_bin" -addr 127.0.0.1:0 -cluster "$addr" -ready-file "$eready" \
    >"$workdir/electd.log" 2>&1 &
electd_pid=$!
for _ in $(seq 1 100); do
    [ -s "$eready" ] && break
    sleep 0.1
done
if [ -s "$eready" ]; then
    ebase="http://$(cat "$eready")"
    curl -fsS -X POST "$ebase/v1/graphs" \
        -d "{\"name\":\"g\",\"spec\":{\"family\":\"$GRAPH\",\"n\":$N}}" >/dev/null
    job="$(curl -fsS -X POST "$ebase/v1/elections" -d '{"seed":7,"points":[{"graph":"g","trials":2}]}' \
        | tr -d ' \n' | grep -o '"id":"[^"]*"' | head -n1 | cut -d'"' -f4)"
    for _ in $(seq 1 300); do
        state="$(curl -fsS "$ebase/v1/elections/$job" | tr -d ' \n' | grep -o '"state":"[^"]*"' | head -n1 | cut -d'"' -f4)"
        [ "$state" = "done" ] && break
        [ "$state" = "failed" ] && break
        sleep 0.2
    done
    emetrics="$(curl -fsS "$ebase/metrics")"
    ebarriers="$(printf '%s\n' "$emetrics" | awk '/^electd_cluster_barriers_total /{print $2}')"
    ebframes="$(printf '%s\n' "$emetrics" | awk '/^electd_cluster_barrier_frames_total /{print $2}')"
    if [ "$state" != "done" ]; then
        echo "cluster_local: FAIL: electd -cluster job ended in state '$state'" >&2
        cat "$workdir/electd.log" >&2
        fail=1
    elif [ -z "$ebarriers" ] || [ "$ebarriers" -eq 0 ]; then
        echo "cluster_local: FAIL: electd reported no cluster barriers" >&2
        printf '%s\n' "$emetrics" | grep electd_cluster >&2
        fail=1
    elif [ "$ebframes" != "0" ]; then
        echo "cluster_local: FAIL: electd reported $ebframes barrier control frames over $ebarriers barriers; piggybacked sessions send none" >&2
        fail=1
    else
        echo "cluster_local: OK: electd /metrics shows $ebarriers barriers and 0 barrier control frames"
    fi
else
    echo "cluster_local: FAIL: electd never wrote its ready file" >&2
    cat "$workdir/electd.log" >&2
    fail=1
fi
kill -TERM "$electd_pid" 2>/dev/null || true
wait "$electd_pid" 2>/dev/null || true

# ---- fault pass 1: drop/delay election, wire vs 1-shard parity --------------

# gilbertrs18 with idempotent retransmissions is the drop-resilient
# configuration (E15); the seed is pinned to one where the faulty
# election still succeeds — the parity check is seed-exact either way.
FAULT_SEED="${CLUSTER_FAULT_SEED:-3}"
fault_args=(-graph "$GRAPH" -n "$N" -algo gilbertrs18 -seed "$FAULT_SEED" -resend 2 -drop 0.05 -delay-max 2)
echo "cluster_local: fault pass: gilbertrs18 -resend 2 with -drop 0.05 -delay-max 2..."
if out_wire="$("$bin" -submit "$addr" "${fault_args[@]}")" \
    && out_ref="$("$bin" -listen 127.0.0.1:0 -shards 1 "${fault_args[@]}")"; then
    wire_outcome="$(printf '%s\n' "$out_wire" | grep '^outcome:')"
    ref_outcome="$(printf '%s\n' "$out_ref" | grep '^outcome:')"
    wire_msgs="$(printf '%s\n' "$out_wire" | grep '^messages=')"
    ref_msgs="$(printf '%s\n' "$out_ref" | grep '^messages=')"
    if [ "$wire_outcome" != "$ref_outcome" ] || [ "$wire_msgs" != "$ref_msgs" ]; then
        echo "cluster_local: FAIL: faulty run diverged between $SHARDS shards and 1 shard" >&2
        printf 'wire: %s | %s\nref:  %s | %s\n' "$wire_outcome" "$wire_msgs" "$ref_outcome" "$ref_msgs" >&2
        fail=1
    elif ! printf '%s\n' "$out_wire" | grep -q 'success=true'; then
        echo "cluster_local: FAIL: faulty election did not elect a unique leader" >&2
        printf '%s\n' "$out_wire" >&2
        fail=1
    else
        echo "cluster_local: OK: faulty election matched the 1-shard run ($wire_outcome)"
    fi
else
    echo "cluster_local: FAIL: faulty election errored" >&2
    fail=1
fi

echo "cluster_local: shutting down (SIGTERM to coordinator)..."
kill -TERM "$coord_pid"
if ! wait "$coord_pid"; then
    echo "cluster_local: FAIL: coordinator exited non-zero" >&2
    cat "$workdir/coordinator.log" >&2
    fail=1
fi
coord_pid=""
for i in "${!worker_pids[@]}"; do
    if ! wait "${worker_pids[$i]}"; then
        echo "cluster_local: FAIL: worker $((i + 1)) exited non-zero" >&2
        cat "$workdir/worker$((i + 1)).log" >&2
        fail=1
    fi
done
worker_pids=()

# ---- compression pass: -compress session, assert compressed frames ----------

echo "cluster_local: compression pass: fresh -compress session, floodmax..."
zready="$workdir/zcoordinator.addr"
"$bin" -listen 127.0.0.1:0 -shards "$SHARDS" -serve -compress -ready-file "$zready" \
    2>"$workdir/zcoordinator.log" &
coord_pid=$!
for _ in $(seq 1 100); do
    [ -s "$zready" ] && break
    sleep 0.1
done
[ -s "$zready" ] || { echo "cluster_local: -compress coordinator never wrote $zready" >&2; exit 1; }
zaddr="$(cat "$zready")"
for shard in $(seq 1 $((SHARDS - 1))); do
    "$bin" -bootstrap "$zaddr" -shard "$shard" -listen 127.0.0.1:0 \
        2>"$workdir/zworker$shard.log" &
    worker_pids+=($!)
done

# FloodMax floods every edge every round: the heaviest flushes, so the
# threshold-gated compressor must actually engage.
if zout="$("$bin" -submit "$zaddr" -graph "$GRAPH" -n "$N" -algo floodmax -seed "$SEED")"; then
    zframes="$(printf '%s\n' "$zout" | sed -n 's/^compression: compressed_frames=\([0-9]*\).*/\1/p')"
    zraw="$(printf '%s\n' "$zout" | sed -n 's/^compression: .*raw_bytes=\([0-9]*\).*/\1/p')"
    zbytes="$(printf '%s\n' "$zout" | sed -n 's/^compression: .*compressed_bytes=\([0-9]*\).*/\1/p')"
    zbarrier="$(printf '%s\n' "$zout" | sed -n 's/^wire: .*barrier_frames=\([0-9]*\).*/\1/p')"
    if ! printf '%s\n' "$zout" | grep -q 'success=true'; then
        echo "cluster_local: FAIL: compressed election did not elect a unique leader" >&2
        printf '%s\n' "$zout" >&2
        fail=1
    elif [ -z "$zframes" ] || [ "$zframes" -eq 0 ]; then
        echo "cluster_local: FAIL: -compress session sent no compressed frames" >&2
        printf '%s\n' "$zout" >&2
        fail=1
    elif [ "$zbytes" -ge "$zraw" ]; then
        echo "cluster_local: FAIL: compression grew the wire ($zraw raw -> $zbytes compressed)" >&2
        fail=1
    elif [ "$zbarrier" != "0" ]; then
        echo "cluster_local: FAIL: compressed session sent $zbarrier barrier control frames" >&2
        fail=1
    else
        echo "cluster_local: OK: compressed election held ($zframes compressed frames, $zraw -> $zbytes bytes)"
    fi
else
    echo "cluster_local: FAIL: compressed election errored" >&2
    fail=1
fi

kill -TERM "$coord_pid"
if ! wait "$coord_pid"; then
    echo "cluster_local: FAIL: -compress coordinator exited non-zero" >&2
    cat "$workdir/zcoordinator.log" >&2
    fail=1
fi
coord_pid=""
for i in "${!worker_pids[@]}"; do
    if ! wait "${worker_pids[$i]}"; then
        echo "cluster_local: FAIL: -compress worker $((i + 1)) exited non-zero" >&2
        cat "$workdir/zworker$((i + 1)).log" >&2
        fail=1
    fi
done
worker_pids=()

# ---- fault pass 2: supervised session, SIGKILL the leader's shard -----------

# await_line FILE PATTERN [TIMEOUT_S]: poll for a line; a hang is a failure.
await_line() {
    local file="$1" pat="$2" timeout="${3:-60}" i
    for i in $(seq 1 $((timeout * 10))); do
        grep -q "$pat" "$file" 2>/dev/null && return 0
        sleep 0.1
    done
    echo "cluster_local: FAIL: timed out (${timeout}s) waiting for '$pat'" >&2
    return 1
}

echo "cluster_local: supervised pass: -supervise with kpprt, killing the leader's shard..."
sready="$workdir/supervisor.addr"
slog="$workdir/supervisor.out"
flight_dump="$workdir/flight.ndjson"
"$bin" -listen 127.0.0.1:0 -shards "$SHARDS" -supervise -ready-file "$sready" \
    -graph "$GRAPH" -n "$N" -algo kpprt -seed "$SEED" \
    -flight-dump "$flight_dump" \
    >"$slog" 2>"$workdir/supervisor.log" &
coord_pid=$!
for _ in $(seq 1 100); do
    [ -s "$sready" ] && break
    sleep 0.1
done
[ -s "$sready" ] || { echo "cluster_local: supervisor never wrote $sready" >&2; exit 1; }
saddr="$(cat "$sready")"
for shard in $(seq 1 $((SHARDS - 1))); do
    "$bin" -bootstrap "$saddr" -shard "$shard" -listen 127.0.0.1:0 \
        2>"$workdir/sworker$shard.log" &
    worker_pids+=($!)
done

await_line "$slog" '^lease: epoch=1 '
# Kill the process hosting the leader (shard 0 is the coordinator and
# cannot die; fall back to shard 1).
victim="$(sed -n 's/^lease: epoch=1 .*shard=\([0-9]*\)$/\1/p' "$slog")"
[ "$victim" -ge 1 ] 2>/dev/null || victim=1
victim_pid="${worker_pids[$((victim - 1))]}"
echo "cluster_local: lease granted; SIGKILLing shard $victim (pid $victim_pid)..."
kill -9 "$victim_pid"
wait "$victim_pid" 2>/dev/null || true

await_line "$slog" '^death: .*shard='"$victim"
await_line "$slog" '^lease: epoch=2 '
# The death event must have dumped the flight recorder: a non-empty
# NDJSON file whose first line is a trace event.
flight_ok=0
for _ in $(seq 1 50); do
    [ -s "$flight_dump" ] && flight_ok=1 && break
    sleep 0.1
done
if [ "$flight_ok" != "1" ] || ! head -n1 "$flight_dump" | grep -q '"ts"'; then
    echo "cluster_local: FAIL: re-election did not produce a flight-recorder dump at $flight_dump" >&2
    fail=1
else
    echo "cluster_local: OK: re-election dumped the flight recorder ($(wc -l <"$flight_dump") events)"
fi
echo "cluster_local: death detected, epoch 2 lease granted; restarting shard $victim..."
"$bin" -bootstrap "$saddr" -shard "$victim" -listen 127.0.0.1:0 \
    2>"$workdir/sworker$victim.rejoin.log" &
worker_pids[$((victim - 1))]=$!
await_line "$slog" '^rejoin: .*shard='"$victim"
await_line "$slog" '^lease: epoch=3 '

echo "cluster_local: rejoin folded in; stopping the supervision (SIGTERM)..."
kill -TERM "$coord_pid"
if ! wait "$coord_pid"; then
    echo "cluster_local: FAIL: supervisor exited non-zero" >&2
    cat "$workdir/supervisor.log" >&2
    fail=1
fi
coord_pid=""
for i in "${!worker_pids[@]}"; do
    if ! wait "${worker_pids[$i]}"; then
        echo "cluster_local: FAIL: supervised worker $((i + 1)) exited non-zero" >&2
        fail=1
    fi
done
worker_pids=()
reigns="$(grep -c '^reign: ' "$slog" || true)"
if [ "$reigns" != "3" ]; then
    echo "cluster_local: FAIL: expected 3 reigns, supervisor reported $reigns" >&2
    cat "$slog" >&2
    fail=1
else
    echo "cluster_local: OK: supervised session survived a leader-shard kill and a rejoin (3 reigns)"
fi

if [ "$fail" -ne 0 ]; then
    echo "cluster_local: FAILED" >&2
    exit 1
fi
echo "cluster_local: all backends elected one leader; faulty and supervised passes held. PASS"
