#!/usr/bin/env bash
# cluster_local.sh — bring up an N-process election cluster on localhost
# and run one wire-level election per registered backend.
#
# Usage: scripts/cluster_local.sh [shards] [n] [graph]
#   shards  process count (default 3: one coordinator + two workers)
#   n       graph size (default 48)
#   graph   graph family (default clique)
#
# The script builds cmd/electnode, starts the coordinator in -serve mode
# on an ephemeral port, joins shards-1 workers, submits one election per
# backend (gilbertrs18, floodmax, kpprt), asserts exactly one leader per
# election, and checks every process exits cleanly on shutdown. This is
# also the CI cluster smoke job.
set -euo pipefail

SHARDS="${1:-3}"
N="${2:-48}"
GRAPH="${3:-clique}"
SEED="${CLUSTER_SEED:-7}"

workdir="$(mktemp -d)"
bin="$workdir/electnode"
ready="$workdir/coordinator.addr"
worker_pids=()
coord_pid=""

cleanup() {
    # Best-effort teardown for early exits; the happy path has already
    # waited for everything.
    [ -n "$coord_pid" ] && kill "$coord_pid" 2>/dev/null || true
    for pid in "${worker_pids[@]:-}"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "cluster_local: building electnode..."
go build -o "$bin" ./cmd/electnode

echo "cluster_local: starting coordinator (-serve, $SHARDS shards)..."
"$bin" -listen 127.0.0.1:0 -shards "$SHARDS" -serve -ready-file "$ready" \
    2>"$workdir/coordinator.log" &
coord_pid=$!

for _ in $(seq 1 100); do
    [ -s "$ready" ] && break
    sleep 0.1
done
[ -s "$ready" ] || { echo "cluster_local: coordinator never wrote $ready" >&2; exit 1; }
addr="$(cat "$ready")"
echo "cluster_local: coordinator on $addr"

for shard in $(seq 1 $((SHARDS - 1))); do
    "$bin" -bootstrap "$addr" -shard "$shard" -listen 127.0.0.1:0 \
        2>"$workdir/worker$shard.log" &
    worker_pids+=($!)
    echo "cluster_local: worker shard $shard started (pid ${worker_pids[-1]})"
done

fail=0
for backend in gilbertrs18 floodmax kpprt; do
    echo "cluster_local: electing with $backend on $GRAPH n=$N seed=$SEED..."
    out="$("$bin" -submit "$addr" -graph "$GRAPH" -n "$N" -algo "$backend" -seed "$SEED")" || {
        echo "cluster_local: FAIL: $backend submission errored" >&2
        fail=1
        continue
    }
    # "outcome: leaders=[27] success=true ..." — exactly one leader index.
    leaders_list="$(printf '%s\n' "$out" | sed -n 's/^outcome: leaders=\[\([0-9 ]*\)\].*/\1/p')"
    leaders="$(printf '%s' "$leaders_list" | wc -w)"
    envelopes="$(printf '%s\n' "$out" | sed -n 's/^wire: .*envelopes=\([0-9]*\).*/\1/p')"
    if [ "$leaders" != "1" ] || ! printf '%s\n' "$out" | grep -q 'success=true'; then
        echo "cluster_local: FAIL: $backend elected $leaders leader(s)" >&2
        printf '%s\n' "$out" >&2
        fail=1
    elif [ -z "$envelopes" ] || [ "$envelopes" -eq 0 ]; then
        echo "cluster_local: FAIL: $backend sent no envelopes over the wire" >&2
        printf '%s\n' "$out" >&2
        fail=1
    else
        echo "cluster_local: OK: $backend elected exactly one leader ($envelopes envelopes on the wire)"
    fi
done

echo "cluster_local: shutting down (SIGTERM to coordinator)..."
kill -TERM "$coord_pid"
if ! wait "$coord_pid"; then
    echo "cluster_local: FAIL: coordinator exited non-zero" >&2
    cat "$workdir/coordinator.log" >&2
    fail=1
fi
coord_pid=""
for i in "${!worker_pids[@]}"; do
    if ! wait "${worker_pids[$i]}"; then
        echo "cluster_local: FAIL: worker $((i + 1)) exited non-zero" >&2
        cat "$workdir/worker$((i + 1)).log" >&2
        fail=1
    fi
done
worker_pids=()

if [ "$fail" -ne 0 ]; then
    echo "cluster_local: FAILED" >&2
    exit 1
fi
echo "cluster_local: all backends elected one leader; clean shutdown. PASS"
