// Explicit election (Corollary 14): after the implicit election, the leader
// disseminates its id with push-pull gossip. This example shows the message
// split between the two phases and checks the corollary's claim that the
// election, not the broadcast, dominates the running time.
package main

import (
	"fmt"
	"log"

	"wcle"
)

func main() {
	g, err := wcle.NewHypercube(8, 1) // 256 nodes, tmix = O(log n log log n)
	if err != nil {
		log.Fatal(err)
	}

	res, err := wcle.ElectExplicit(g, wcle.DefaultConfig(), wcle.Options{Seed: 12}, 0)
	if err != nil {
		log.Fatal(err)
	}

	imp := res.Implicit
	fmt.Printf("graph: %s (n=%d, m=%d)\n\n", g.Name(), g.N(), g.M())
	if !imp.Success {
		fmt.Printf("implicit election failed (%d leaders); nothing to broadcast\n", len(imp.Leaders))
		return
	}
	fmt.Printf("phase 1 — implicit election:\n")
	fmt.Printf("   leader: node %d (id %d), elected at round %d\n",
		imp.Leaders[0], imp.LeaderIDs[0], imp.LeaderRound)
	fmt.Printf("   messages: %d\n\n", imp.Metrics.Messages)

	bc := res.Broadcast
	fmt.Printf("phase 2 — push-pull broadcast of the leader id:\n")
	fmt.Printf("   informed: %d/%d in %d rounds\n", bc.Informed, g.N(), bc.CompletionRound)
	fmt.Printf("   messages: %d\n\n", bc.Metrics.Messages)

	fmt.Printf("explicit total: %d messages, everyone informed: %v\n", res.TotalMessages, res.AllInformed)
	fmt.Printf("broadcast rounds (%d) << election rounds (%d): the election dominates, as Corollary 14 states.\n",
		bc.CompletionRound, imp.LeaderRound)

	// Contrast with the Omega(m)-class baseline.
	fm, err := wcle.FloodMax(g, 5, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFloodMax baseline (explicit, Omega(m) class): %d messages.\n", fm.Metrics.Messages)
	fmt.Println("At laptop sizes the polylog constants favor flooding; the paper's win is the growth exponent (see EXPERIMENTS.md E7).")
}
