// electd_client: run the election service in-process, then drive it over
// real HTTP exactly as a remote client would — register a graph, read its
// cached spectral profile (the cost predictor), submit a batch election
// job, and poll for the deterministic result.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"wcle"
)

func main() {
	// The service stack: graph registry + bounded job queue + ops surface.
	srv, err := wcle.NewElectionServer(wcle.ServerOptions{QueueCap: 8})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Println("electd serving on", base)

	// Register a 64-node random 8-regular expander under a name.
	post(base+"/v1/graphs", `{"name":"rr64","spec":{"family":"rr","n":64,"d":8,"seed":1}}`)

	// First GET computes the spectral profile (the expensive, memoized
	// part); the second is a cache hit. tmix and the Cheeger bounds tell
	// a client what an election will cost before submitting one.
	var info struct {
		Spectral struct {
			Tmix      int     `json:"tmix"`
			Lambda2   float64 `json:"lambda2"`
			CheegerLo float64 `json:"cheeger_lo"`
			CheegerHi float64 `json:"cheeger_hi"`
		} `json:"spectral"`
	}
	get(base+"/v1/graphs/rr64", &info)
	fmt.Printf("spectral profile: tmix=%d lambda2=%.4f phi in [%.4f, %.4f]\n",
		info.Spectral.Tmix, info.Spectral.Lambda2, info.Spectral.CheegerLo, info.Spectral.CheegerHi)

	// Submit a 10-trial batch, one point clean and one under a lossy
	// delivery plane with retransmission buying the losses back.
	var sub struct {
		ID       string `json:"id"`
		Location string `json:"location"`
	}
	postInto(base+"/v1/elections", `{
		"seed": 42,
		"points": [
			{"graph": "rr64", "trials": 10},
			{"graph": "rr64", "trials": 10, "resend": 2, "fault": {"drop": 0.05}}
		]
	}`, &sub)
	fmt.Println("submitted", sub.ID)

	// Poll until done. The "result" object is deterministic in
	// (registry, request): resubmitting this job yields identical bytes.
	var st struct {
		State  string `json:"state"`
		Result *struct {
			Points []struct {
				Graph        string `json:"graph"`
				One          int    `json:"one"`
				Trials       int    `json:"trials"`
				UniqueLeader bool   `json:"unique_leader"`
				Messages     int64  `json:"messages"`
				Summaries    map[string]struct {
					Mean float64 `json:"mean"`
					CILo float64 `json:"ci_lo"`
					CIHi float64 `json:"ci_hi"`
				} `json:"summaries"`
			} `json:"points"`
		} `json:"result"`
		Error string `json:"error"`
	}
	for {
		get(base+sub.Location, &st)
		if st.State == "done" || st.State == "failed" {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if st.State != "done" {
		log.Fatalf("job failed: %s", st.Error)
	}
	for _, p := range st.Result.Points {
		r := p.Summaries["rounds"]
		fmt.Printf("point %-6s unique leader %d/%d (all: %v), %d msgs, rounds mean %.1f [%.1f, %.1f]\n",
			p.Graph, p.One, p.Trials, p.UniqueLeader, p.Messages, r.Mean, r.CILo, r.CIHi)
	}

	// Graceful exit: drain in-flight work, then close the listener.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	_ = httpSrv.Shutdown(ctx)
}

func post(url, body string) {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: %s", url, resp.Status)
	}
}

func postInto(url, body string, out interface{}) {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func get(url string, out interface{}) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
