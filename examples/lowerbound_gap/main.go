// Lower-bound tour (Sections 4 and 5): build the clique-of-cliques graph
// G(n, alpha) of Figures 1-2, verify its conductance is Theta(alpha), watch
// a message-budgeted election fail, and reproduce the Theorem 28 dumbbell
// effect where the wrong n yields two leaders.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"wcle"
	"wcle/internal/core"
	"wcle/internal/graph"
	"wcle/internal/lowerbound"
)

func main() {
	alpha := 1.0 / 196
	lb, err := wcle.NewLowerBoundGraph(1024, alpha, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("G(n, alpha): n=%d m=%d cliques=%d of size %d, eps=%.3f (alpha=%.4g)\n",
		lb.N(), lb.M(), lb.NumCliques, lb.CliqueSize, lb.Epsilon, alpha)

	// Lemma 16: the cut around one clique certifies phi = Theta(alpha).
	inSet := make([]bool, lb.N())
	for _, v := range lb.Cliques[0] {
		inSet[v] = true
	}
	phi := graph.CutConductance(lb.Graph, inSet)
	fmt.Printf("clique-cut conductance: %.5f (phi/alpha = %.2f — Lemma 16's Theta(alpha))\n\n", phi, phi/alpha)

	// Lemma 18: discovering an inter-clique edge by port probing costs
	// Theta(1/alpha) messages.
	rng := rand.New(rand.NewSource(2))
	ports := lb.CliqueSize * (lb.CliqueSize - 1)
	var sum float64
	trials := 2000
	for i := 0; i < trials; i++ {
		sum += float64(lowerbound.ProbeFirstInterClique(ports, 4, rng))
	}
	fmt.Printf("Lemma 18 port probing: mean %.0f messages before the first inter-clique edge (1/alpha = %.0f)\n\n",
		sum/float64(trials), 1/alpha)

	// Theorem 15's regime: a budgeted election cannot succeed.
	tracker := lowerbound.NewCGTracker(lb)
	cfg := core.DefaultConfig()
	cfg.MaxWalkLen = 64
	res, err := core.Run(lb.Graph, cfg, core.RunOptions{Seed: 3, Budget: int64(8 / alpha), Observer: tracker})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("budgeted election (budget 8/alpha = %d messages):\n", int64(8/alpha))
	fmt.Printf("   leaders: %d, CG edges discovered: %d of %d super edges, Disj holds: %v\n\n",
		len(res.Leaders), tracker.CGEdges(), lb.Super.M(), tracker.DisjHolds())

	// Theorem 28: on a dumbbell of cliques, believing n = half elects one
	// leader per side.
	db, err := wcle.NewDumbbellCliques(24, 4)
	if err != nil {
		log.Fatal(err)
	}
	bridge := map[int]bool{
		db.Bridges[0].U: true, db.Bridges[0].V: true,
		db.Bridges[1].U: true, db.Bridges[1].V: true,
	}
	var contenders []int
	for v := 0; v < db.N(); v++ {
		if !bridge[v] {
			contenders = append(contenders, v)
		}
	}
	dcfg := core.DefaultConfig()
	dcfg.AssumedN = db.Half
	dcfg.DisableDistinctness = true
	dcfg.ForcedContenders = contenders
	bt := lowerbound.NewBridgeTracker(db)
	dres, err := core.Run(db.Graph, dcfg, core.RunOptions{Seed: 5, Observer: bt})
	if err != nil {
		log.Fatal(err)
	}
	sides := []int{0, 0}
	for _, l := range dres.Leaders {
		sides[db.SideOf[l]]++
	}
	fmt.Printf("Theorem 28 dumbbell (nodes believe n=%d, true n=%d):\n", db.Half, db.N())
	fmt.Printf("   leaders: %d (left %d, right %d), bridge crossings: %d\n",
		len(dres.Leaders), sides[0], sides[1], bt.Crossings)
	fmt.Println("   two leaders with zero crossings is Observation 31's indistinguishability made concrete.")
}
