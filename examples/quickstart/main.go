// Quickstart: elect a leader on a 256-node expander with the paper's
// algorithm and print what it cost in the CONGEST model.
package main

import (
	"fmt"
	"log"

	"wcle"
)

func main() {
	// Random 8-regular graphs are expanders w.h.p.: constant conductance,
	// O(log n) mixing time — the paper's "well-connected" sweet spot.
	g, err := wcle.NewRandomRegular(256, 8, 1)
	if err != nil {
		log.Fatal(err)
	}

	res, err := wcle.Elect(g, wcle.DefaultConfig(), wcle.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph: %s (n=%d, m=%d)\n", g.Name(), g.N(), g.M())
	fmt.Printf("contenders self-selected: %d (probability %.4f)\n",
		len(res.Contenders), res.ContenderProb)
	fmt.Printf("random walks per contender: %d, intersection threshold: %d, distinctness threshold: %d\n",
		res.Walks, res.InterThreshold, res.DistinctThreshold)

	if res.Success {
		fmt.Printf("\n=> node %d elected itself leader (id %d) at round %d\n",
			res.Leaders[0], res.LeaderIDs[0], res.LeaderRound)
	} else {
		fmt.Printf("\n=> election failed this run: %d leaders\n", len(res.Leaders))
	}
	fmt.Printf("   guess-and-double phases: %d\n", res.PhasesUsed)
	fmt.Printf("   CONGEST messages: %d (%.1f per edge; the paper's O(sqrt(n) polylog * tmix)\n"+
		"   grows slower than m as n grows — see examples/expander_scaling)\n",
		res.Metrics.Messages, float64(res.Metrics.Messages)/float64(g.M()))
	fmt.Printf("   message kinds: %v\n", res.Metrics.ByKind)
}
