// Expander scaling: measure how the algorithm's message cost grows with n
// on expanders and compare it to the Theorem 13 reference
// sqrt(n) ln^{7/2} n * tmix — a miniature of experiment E1.
package main

import (
	"fmt"
	"log"
	"math"

	"wcle"
)

func main() {
	fmt.Println("n      tmix  messages    msgs/ref   msgs/m")
	for _, n := range []int{64, 128, 256, 512} {
		g, err := wcle.NewRandomRegular(n, 8, 3)
		if err != nil {
			log.Fatal(err)
		}
		tmix, err := wcle.MixingTimeSampled(g, 1_000_000, []int{0, n / 2})
		if err != nil {
			log.Fatal(err)
		}
		res, err := wcle.Elect(g, wcle.DefaultConfig(), wcle.Options{Seed: int64(n)})
		if err != nil {
			log.Fatal(err)
		}
		ln := math.Log(float64(n))
		ref := math.Sqrt(float64(n)) * math.Pow(ln, 3.5) * float64(tmix)
		fmt.Printf("%-6d %-5d %-11d %-10.3f %.1f\n",
			n, tmix, res.Metrics.Messages,
			float64(res.Metrics.Messages)/ref,
			float64(res.Metrics.Messages)/float64(g.M()))
	}
	fmt.Println("\nA flat msgs/ref column is Theorem 13's shape: messages = O(sqrt(n) log^{7/2} n * tmix).")
}
