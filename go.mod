module wcle

go 1.24
