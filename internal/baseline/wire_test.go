package baseline

import (
	"math/rand"
	"reflect"
	"testing"

	"wcle/internal/protocol"
	"wcle/internal/wire"
)

// TestFloodMaxWireRoundTrip: randomized round-trip of the floodmax id
// message, including its bit accounting.
func TestFloodMaxWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		m := &idMsg{id: protocol.RandomID(rng.Uint64, 1024), bits: rng.Intn(4096)}
		buf, err := wire.AppendMessage(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := wire.DecodeMessage(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip: got %#v, want %#v", got, m)
		}
		for cut := 0; cut < len(buf); cut++ {
			if _, err := wire.DecodeMessage(buf[:cut]); err == nil {
				t.Fatalf("truncation to %d/%d decoded cleanly", cut, len(buf))
			}
		}
	}
}
