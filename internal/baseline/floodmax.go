package baseline

import (
	"fmt"

	"wcle/internal/engine"
	"wcle/internal/graph"
	"wcle/internal/obs"
	"wcle/internal/protocol"
	"wcle/internal/sim"
)

// idMsg carries a candidate id during flooding. The id is the payload: the
// anonymous model forbids reading sender identities off the envelope.
type idMsg struct {
	id   protocol.ID
	bits int
}

func (m *idMsg) Bits() int    { return m.bits }
func (m *idMsg) Kind() string { return "floodmax" }

var _ sim.Message = (*idMsg)(nil)

// floodNode runs FloodMax: every node draws a random id, repeatedly floods
// the largest id seen (once per improvement), and after the scheduled
// horizon the node still holding its own id as the maximum declares itself
// leader. With horizon >= diameter the true maximum wins everywhere, making
// this an explicit election: every node knows the leader's id.
type floodNode struct {
	sizing  protocol.Sizing
	horizon int

	initialized bool
	id          protocol.ID
	maxSeen     protocol.ID
	leader      bool
	done        bool
}

func (nd *floodNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	if nd.done {
		return nil
	}
	improved := false
	if !nd.initialized {
		nd.initialized = true
		nd.id = protocol.RandomID(ctx.Rand().Uint64, ctx.N())
		nd.maxSeen = nd.id
		improved = true
		ctx.WakeAt(nd.horizon)
	}
	for _, env := range inbox {
		m, ok := env.Payload.(*idMsg)
		if !ok {
			return fmt.Errorf("baseline: unexpected message kind %q", env.Payload.Kind())
		}
		if m.id > nd.maxSeen {
			nd.maxSeen = m.id
			improved = true
		}
	}
	if ctx.Round() >= nd.horizon {
		nd.leader = nd.maxSeen == nd.id
		nd.done = true
		return nil
	}
	if improved {
		for port := 0; port < ctx.Degree(); port++ {
			msg := &idMsg{id: nd.maxSeen, bits: nd.sizing.IDBits() + protocol.FlagBits}
			if err := ctx.Send(port, msg); err != nil {
				return err
			}
		}
	}
	return nil
}

// Output is the node's decision vector [leader(0/1), largest id seen].
// A node another shard hosts never steps, so its output stays [0, 0].
func (nd *floodNode) Output() []int64 {
	leader := int64(0)
	if nd.leader {
		leader = 1
	}
	return []int64{leader, int64(nd.maxSeen)}
}

// FloodMaxResult reports a FloodMax run.
type FloodMaxResult struct {
	// Leaders holds the node indices that declared leadership (exactly one
	// when the horizon covers the diameter and delivery is perfect).
	Leaders []int
	// LeaderID is the elected id (the global maximum).
	LeaderID protocol.ID
	// AllAgree reports whether every node's maxSeen converged to AgreeID.
	AllAgree bool
	// AgreeID is the value the agreement check compared against: the
	// global maximum id in process, the largest locally observed flood
	// value on a shard. The cluster merge requires every shard's AgreeID
	// to match — local agreement on different values is not agreement.
	AgreeID protocol.ID
	// Horizon is the resolved decision round.
	Horizon int
	Metrics sim.Metrics
}

// Config parameterizes a generalized FloodMax run. The zero value plus a
// seed is the classical setting: horizon n, perfect delivery.
type Config struct {
	// Seed drives all randomness (id draws) deterministically.
	Seed int64
	// Horizon is the number of rounds before nodes decide; 0 means n
	// (always >= diameter + 1).
	Horizon int
	// Budget, when positive, drops sends beyond the budget (sim semantics).
	Budget int64
	// MaxRounds overrides the round cap (0 = Horizon + 8).
	MaxRounds int
	// Concurrent selects the goroutine-based engine.
	Concurrent bool
	// LeanMetrics skips per-kind message accounting on the send hot path.
	LeanMetrics bool
	// DebugFrom stamps sender indices on envelopes (debugging only; the
	// regression tests assert the run is unchanged by it).
	DebugFrom bool
	// Observer taps every accepted send.
	Observer sim.Observer
	// Fault, when non-nil, is the run's delivery-plane adversary.
	Fault sim.FaultPlane
	// FaultObserver receives every fault event of the run.
	FaultObserver sim.FaultObserver
	// Remote, when non-nil, hosts this run's shard of a distributed
	// election (sim.Config.Remote; see internal/cluster).
	Remote sim.RemotePlane
	// Tracer, when non-nil, records the run's spans and instants
	// (sim.Config.Tracer); strictly observational.
	Tracer *obs.Tracer
}

// Instance is one run's worth of FloodMax node machines. It implements
// engine.Instance; Collect folds the post-run state into FloodMaxResult.
type Instance struct {
	nodes   []*floodNode
	horizon int
	lim     engine.Limits
}

// Build constructs the per-node machines of one FloodMax run on g. Only
// cfg.Horizon and cfg.MaxRounds matter at build time; the delivery-plane
// fields of cfg belong to the runner.
func Build(g *graph.Graph, cfg Config) (*Instance, error) {
	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = g.N()
	}
	maxRounds := cfg.MaxRounds
	if maxRounds == 0 {
		maxRounds = horizon + 8
	}
	sizing, err := protocol.NewSizing(g.N())
	if err != nil {
		return nil, err
	}
	nodes := make([]*floodNode, g.N())
	for v := range nodes {
		nodes[v] = &floodNode{sizing: sizing, horizon: horizon}
	}
	return &Instance{
		nodes:   nodes,
		horizon: horizon,
		lim:     engine.Limits{MaxMessageBits: sizing.CongestCap(), MaxRounds: maxRounds},
	}, nil
}

// Node implements engine.Instance.
func (i *Instance) Node(v int) engine.Node { return i.nodes[v] }

// Limits implements engine.Instance.
func (i *Instance) Limits() engine.Limits { return i.lim }

// Collect folds the instance's post-run state into the native result.
// sharded says the run hosted only part of the graph (sim.Config.Remote),
// which switches the agreement target to the shard-local one.
func (i *Instance) Collect(metrics sim.Metrics, sharded bool) *FloodMaxResult {
	nodes := i.nodes
	res := &FloodMaxResult{Metrics: metrics, AllAgree: true, Horizon: i.horizon}
	var max protocol.ID
	for _, nd := range nodes {
		if nd.id > max {
			max = nd.id
		}
	}
	res.LeaderID = max
	// The agreement target: the global maximum id in process, the largest
	// locally observed flood value on a shard (the global maximum lives on
	// another shard, but every hosted node converges to the same value).
	agree := max
	if sharded {
		agree = 0
		for _, nd := range nodes {
			if nd.id != 0 && nd.maxSeen > agree {
				agree = nd.maxSeen
			}
		}
	}
	res.AgreeID = agree
	for v, nd := range nodes {
		if sharded && nd.id == 0 {
			// A node another shard hosts: never stepped here, so its
			// state says nothing. The shard-local result covers only
			// local nodes; the cluster merge reassembles the whole.
			continue
		}
		if nd.leader {
			res.Leaders = append(res.Leaders, v)
		}
		if nd.maxSeen != agree {
			res.AllAgree = false
		}
	}
	return res
}

// Run executes FloodMax on g under the full delivery-plane option set.
func Run(g *graph.Graph, cfg Config) (*FloodMaxResult, error) {
	inst, err := Build(g, cfg)
	if err != nil {
		return nil, err
	}
	procs := make([]sim.Process, len(inst.nodes))
	for v, nd := range inst.nodes {
		procs[v] = nd
	}
	metrics, err := sim.Run(sim.Config{
		Graph:          g,
		Seed:           cfg.Seed,
		MaxMessageBits: inst.lim.MaxMessageBits,
		MaxRounds:      inst.lim.MaxRounds,
		MessageBudget:  cfg.Budget,
		Concurrent:     cfg.Concurrent,
		LeanMetrics:    cfg.LeanMetrics,
		DebugFrom:      cfg.DebugFrom,
		Observer:       cfg.Observer,
		Fault:          cfg.Fault,
		FaultObserver:  cfg.FaultObserver,
		Remote:         cfg.Remote,
		Tracer:         cfg.Tracer,
	}, procs)
	if err != nil {
		return nil, fmt.Errorf("baseline: floodmax failed: %w", err)
	}
	return inst.Collect(metrics, cfg.Remote != nil), nil
}

// FloodMax runs the baseline on g. horizon is the number of rounds before
// nodes decide; 0 means n (always >= diameter + 1).
func FloodMax(g *graph.Graph, seed int64, horizon int) (*FloodMaxResult, error) {
	return Run(g, Config{Seed: seed, Horizon: horizon})
}
