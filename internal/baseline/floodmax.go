// Package baseline implements the comparison algorithms the paper measures
// against: FloodMax-style explicit leader election, representative of the
// Omega(m)-message class of general-graph algorithms ([24]'s lower bound
// regime), against which Theorem 13's sublinear bound is contrasted on
// well-connected graphs.
package baseline

import (
	"fmt"

	"wcle/internal/graph"
	"wcle/internal/protocol"
	"wcle/internal/sim"
)

// idMsg carries a candidate id during flooding.
type idMsg struct {
	id   protocol.ID
	bits int
}

func (m *idMsg) Bits() int    { return m.bits }
func (m *idMsg) Kind() string { return "floodmax" }

var _ sim.Message = (*idMsg)(nil)

// floodNode runs FloodMax: every node draws a random id, repeatedly floods
// the largest id seen (once per improvement), and after the scheduled
// horizon the node still holding its own id as the maximum declares itself
// leader. With horizon >= diameter the true maximum wins everywhere, making
// this an explicit election: every node knows the leader's id.
type floodNode struct {
	sizing  protocol.Sizing
	horizon int

	initialized bool
	id          protocol.ID
	maxSeen     protocol.ID
	leader      bool
	done        bool
}

func (nd *floodNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	if nd.done {
		return nil
	}
	improved := false
	if !nd.initialized {
		nd.initialized = true
		nd.id = protocol.RandomID(ctx.Rand().Uint64, ctx.N())
		nd.maxSeen = nd.id
		improved = true
		ctx.WakeAt(nd.horizon)
	}
	for _, env := range inbox {
		m, ok := env.Payload.(*idMsg)
		if !ok {
			return fmt.Errorf("baseline: unexpected message kind %q", env.Payload.Kind())
		}
		if m.id > nd.maxSeen {
			nd.maxSeen = m.id
			improved = true
		}
	}
	if ctx.Round() >= nd.horizon {
		nd.leader = nd.maxSeen == nd.id
		nd.done = true
		return nil
	}
	if improved {
		for port := 0; port < ctx.Degree(); port++ {
			msg := &idMsg{id: nd.maxSeen, bits: nd.sizing.IDBits() + protocol.FlagBits}
			if err := ctx.Send(port, msg); err != nil {
				return err
			}
		}
	}
	return nil
}

// FloodMaxResult reports a FloodMax run.
type FloodMaxResult struct {
	// Leaders holds the node indices that declared leadership (exactly one
	// when the horizon covers the diameter).
	Leaders []int
	// LeaderID is the elected id (the global maximum).
	LeaderID protocol.ID
	// AllAgree reports whether every node's maxSeen converged to LeaderID.
	AllAgree bool
	Metrics  sim.Metrics
}

// FloodMax runs the baseline on g. horizon is the number of rounds before
// nodes decide; 0 means n (always >= diameter + 1).
func FloodMax(g *graph.Graph, seed int64, horizon int) (*FloodMaxResult, error) {
	if horizon <= 0 {
		horizon = g.N()
	}
	sizing, err := protocol.NewSizing(g.N())
	if err != nil {
		return nil, err
	}
	nodes := make([]*floodNode, g.N())
	procs := make([]sim.Process, g.N())
	for v := range nodes {
		nodes[v] = &floodNode{sizing: sizing, horizon: horizon}
		procs[v] = nodes[v]
	}
	metrics, err := sim.Run(sim.Config{
		Graph:          g,
		Seed:           seed,
		MaxMessageBits: sizing.CongestCap(),
		MaxRounds:      horizon + 8,
	}, procs)
	if err != nil {
		return nil, fmt.Errorf("baseline: floodmax failed: %w", err)
	}
	res := &FloodMaxResult{Metrics: metrics, AllAgree: true}
	var max protocol.ID
	for _, nd := range nodes {
		if nd.id > max {
			max = nd.id
		}
	}
	res.LeaderID = max
	for v, nd := range nodes {
		if nd.leader {
			res.Leaders = append(res.Leaders, v)
		}
		if nd.maxSeen != max {
			res.AllAgree = false
		}
	}
	return res, nil
}
