// Package baseline implements the comparison algorithms the paper measures
// against: FloodMax-style explicit leader election, representative of the
// Omega(m)-message class of general-graph algorithms ([24]'s lower bound
// regime), against which Theorem 13's sublinear bound is contrasted on
// well-connected graphs.
//
// FloodMax respects the anonymous port-numbered model of internal/sim:
// candidate identities are random protocol-level ids drawn from [1, n^4]
// that travel in message payloads, never sender indices read off the wire
// (Envelope.From stays -1 unless sim.Config.DebugFrom is set, and the
// regression tests here pin that toggling the debug flag cannot change a
// run). The package exposes two entry points: the historical FloodMax
// convenience wrapper, and the generalized Run that threads the full
// delivery-plane option set (faults, budgets, observers) so the algorithm
// can serve as a first-class backend in internal/algo.
package baseline
