package baseline

// Wire codec for the FloodMax id message, so floodmax elections can cross
// shard boundaries in the cluster runtime (internal/cluster).

import (
	"encoding/binary"
	"fmt"

	"wcle/internal/protocol"
	"wcle/internal/sim"
	"wcle/internal/wire"
)

// wireFloodMax is the floodmax message's wire id. Part of the wire format:
// never reuse.
const wireFloodMax = 4

func init() {
	wire.Register(wireFloodMax, wire.MsgCodec{
		Kind: "floodmax",
		Append: func(buf []byte, m sim.Message) ([]byte, error) {
			im, ok := m.(*idMsg)
			if !ok {
				return buf, fmt.Errorf("wire: floodmax codec got %T", m)
			}
			buf = binary.AppendUvarint(buf, uint64(im.id))
			buf = binary.AppendUvarint(buf, uint64(im.bits))
			return buf, nil
		},
		Decode: func(b []byte) (sim.Message, error) {
			id, b, err := wire.ReadUvarint(b)
			if err != nil {
				return nil, err
			}
			bits, b, err := wire.ReadBits(b)
			if err != nil {
				return nil, err
			}
			if len(b) != 0 {
				return nil, fmt.Errorf("%w: %d trailing bytes in floodmax message", wire.ErrCorrupt, len(b))
			}
			return &idMsg{id: protocol.ID(id), bits: bits}, nil
		},
	})
}
