package baseline

import (
	"math/rand"
	"testing"

	"wcle/internal/graph"
	"wcle/internal/sim"
)

func TestFloodMaxElectsExactlyOne(t *testing.T) {
	graphs := []func() (*graph.Graph, error){
		func() (*graph.Graph, error) { return graph.Clique(16, nil) },
		func() (*graph.Graph, error) { return graph.Cycle(20, nil) },
		func() (*graph.Graph, error) { return graph.Hypercube(5, nil) },
		func() (*graph.Graph, error) {
			return graph.RandomRegular(32, 4, rand.New(rand.NewSource(3)))
		},
	}
	for _, mk := range graphs {
		g, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 4; seed++ {
			res, err := FloodMax(g, seed, 0)
			if err != nil {
				t.Fatalf("%s: %v", g.Name(), err)
			}
			if len(res.Leaders) != 1 {
				t.Fatalf("%s seed %d: leaders = %v", g.Name(), seed, res.Leaders)
			}
			if !res.AllAgree {
				t.Fatalf("%s seed %d: nodes disagree on the maximum", g.Name(), seed)
			}
		}
	}
}

func TestFloodMaxMessageScaleIsOmegaM(t *testing.T) {
	// FloodMax sends at least one message per edge direction (the initial
	// wave) — the Omega(m) regime the paper's algorithm escapes.
	g, err := graph.Clique(24, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FloodMax(g, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Messages < int64(2*g.M()) {
		t.Fatalf("messages = %d, want >= 2m = %d", res.Metrics.Messages, 2*g.M())
	}
	// And not absurdly more than m * horizon.
	if res.Metrics.Messages > int64(2*g.M()*g.N()) {
		t.Fatalf("messages = %d suspiciously high", res.Metrics.Messages)
	}
}

func TestFloodMaxShortHorizonOnCycleDisagrees(t *testing.T) {
	// With a horizon far below the diameter the maximum cannot reach every
	// node: multiple nodes may still believe they lead.
	g, err := graph.Cycle(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FloodMax(g, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllAgree {
		t.Fatal("horizon 3 on a 64-cycle should not reach agreement")
	}
}

// TestFloodMaxAnonymityRegression pins the anonymous-model contract of
// PR 2: candidate ids travel in the payload, and the algorithm must never
// read sender identities off the envelope. Toggling sim.Config.DebugFrom
// changes Envelope.From from -1 to the true sender index; if any node
// logic consulted it, the two runs below would diverge.
func TestFloodMaxAnonymityRegression(t *testing.T) {
	g, err := graph.RandomRegular(48, 6, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 3; seed++ {
		anon, err := Run(g, Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		debug, err := Run(g, Config{Seed: seed, DebugFrom: true})
		if err != nil {
			t.Fatal(err)
		}
		if anon.LeaderID != debug.LeaderID || anon.Metrics.Messages != debug.Metrics.Messages ||
			anon.Metrics.FinalRound != debug.Metrics.FinalRound ||
			len(anon.Leaders) != len(debug.Leaders) {
			t.Fatalf("seed %d: DebugFrom changed the run: %+v vs %+v", seed, anon, debug)
		}
	}
}

// TestFloodMaxUnderDrops exercises the generalized entry point with a lossy
// delivery plane: losing flood improvements can break agreement, but never
// errors and never loses the message accounting.
func TestFloodMaxUnderDrops(t *testing.T) {
	g, err := graph.Clique(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Config{Seed: 5, Fault: &sim.Drop{P: 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.FaultDrops == 0 {
		t.Fatal("drop plane reported no drops")
	}
	if res.Metrics.Deliveries+res.Metrics.FaultDrops != res.Metrics.Messages {
		t.Fatalf("message conservation broken: %+v", res.Metrics)
	}
}

func TestFloodMaxDeterministic(t *testing.T) {
	g, err := graph.Hypercube(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := FloodMax(g, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FloodMax(g, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics.Messages != b.Metrics.Messages || a.LeaderID != b.LeaderID {
		t.Fatal("replay diverged")
	}
}
