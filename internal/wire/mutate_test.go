package wire_test

import (
	"bytes"
	"reflect"
	"testing"

	"wcle/internal/protocol"
	"wcle/internal/sim"
	"wcle/internal/wire"
)

// seedMessages builds one registered message per protocol-package codec
// for the mutation fuzzers.
func seedMessages(t interface{ Fatal(...interface{}) }) []sim.Message {
	c, err := protocol.NewCodec(128, protocol.ModeCongest)
	if err != nil {
		t.Fatal(err)
	}
	up, err := c.Up(42, 3, protocol.UpX1, []protocol.ID{7}, -2, 5)
	if err != nil {
		t.Fatal(err)
	}
	down, err := c.Down(41, 2, protocol.DownFinal, nil)
	if err != nil {
		t.Fatal(err)
	}
	return []sim.Message{c.Token(9, 1, 30, 4), up, down}
}

// FuzzByzantineMutate: the mutation codec is total. Whatever message the
// adversary starts from and whatever randomness drives it, MutateMessage
// never panics, and anything it delivers is a decodable, re-encodable
// message — the Byzantine plane can only inject payloads the wire codec
// itself accepts, never malformed state.
func FuzzByzantineMutate(f *testing.F) {
	for _, m := range seedMessages(f) {
		enc, err := wire.AppendMessage(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc, int64(1))
		f.Add(enc, int64(-7))
	}
	f.Add([]byte{}, int64(0))
	f.Add([]byte{14}, int64(3))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		// The byte op itself: total, length-preserving, id-preserving.
		mb := wire.MutateBytes(sim.NewRand(seed), data)
		if len(mb) != len(data) {
			t.Fatalf("MutateBytes changed length %d -> %d", len(data), len(mb))
		}
		if len(data) > 0 && mb[0] != data[0] {
			t.Fatalf("MutateBytes rewrote the wire id %d -> %d", data[0], mb[0])
		}
		m, err := wire.DecodeMessage(data)
		if err != nil {
			return
		}
		out, ok := wire.MutateMessage(sim.NewRand(seed), m)
		if !ok {
			if out != nil {
				t.Fatal("destroyed mutation returned a message")
			}
			return
		}
		if out == nil {
			return // untouched
		}
		enc, err := wire.AppendMessage(nil, out)
		if err != nil {
			t.Fatalf("delivered forgery does not re-encode: %v", err)
		}
		back, err := wire.DecodeMessage(enc)
		if err != nil {
			t.Fatalf("re-encoded forgery does not decode: %v", err)
		}
		if !reflect.DeepEqual(back, out) {
			t.Fatalf("forgery is not canonical: %#v -> %#v", out, back)
		}
	})
}

// TestMutateMessageDeterministic pins the parity-critical property: the
// same rng state and input message always produce the identical mutation
// decision and bytes, which is what makes same-seed Byzantine cluster
// runs byte-identical to the sim.
func TestMutateMessageDeterministic(t *testing.T) {
	for _, m := range seedMessages(t) {
		for seed := int64(0); seed < 16; seed++ {
			a, okA := wire.MutateMessage(sim.NewRand(seed), m)
			b, okB := wire.MutateMessage(sim.NewRand(seed), m)
			if okA != okB || !reflect.DeepEqual(a, b) {
				t.Fatalf("seed %d: mutation not deterministic: (%#v,%v) vs (%#v,%v)", seed, a, okA, b, okB)
			}
		}
	}
}

// TestMutateMessageMutates: over enough draws the codec must actually
// forge (deliver a message encoding differently from the original) and
// actually destroy — an adversary that never changes anything defends
// nothing worth testing.
func TestMutateMessageMutates(t *testing.T) {
	m := seedMessages(t)[0]
	orig, err := wire.AppendMessage(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRand(11)
	forged, destroyed := false, false
	for i := 0; i < 200 && !(forged && destroyed); i++ {
		out, ok := wire.MutateMessage(rng, m)
		if !ok {
			destroyed = true
			continue
		}
		if out == nil {
			continue
		}
		enc, err := wire.AppendMessage(nil, out)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, orig) {
			forged = true
		}
	}
	if !forged || !destroyed {
		t.Fatalf("200 mutation draws produced forged=%v destroyed=%v, want both", forged, destroyed)
	}
}

// TestMutateUnregisteredKindPassesThrough: a message type with no wire
// codec (a purely in-process payload) is passed through untouched — and
// the rng stream still advances, so planes stay deterministic whichever
// message kinds a protocol mixes.
func TestMutateUnregisteredKindPassesThrough(t *testing.T) {
	rng := sim.NewRand(5)
	before := rng.Int63()
	rng = sim.NewRand(5)
	out, ok := wire.MutateMessage(rng, unregisteredMsg{})
	if out != nil || !ok {
		t.Fatalf("unregistered kind should pass through untouched, got (%#v, %v)", out, ok)
	}
	if rng.Int63() == before {
		t.Fatal("mutation of an unregistered kind did not advance the rng stream")
	}
}

type unregisteredMsg struct{}

func (unregisteredMsg) Bits() int    { return 8 }
func (unregisteredMsg) Kind() string { return "mutate-test-unregistered" }
