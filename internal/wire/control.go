package wire

// Supervision control payloads: the lease/heartbeat/epoch-change frames of
// the cluster's failure-detection protocol. Like every codec in this
// package, the decoders are total — arbitrary bytes decode to an error,
// never a panic or an unbounded allocation — and valid values round-trip
// byte-for-byte (FuzzWireDecode and the conformance tests hold them to it).

import (
	"encoding/binary"
	"fmt"
)

// maxShards bounds the shard ids a control frame may claim. The cluster
// runtime tops out far below this; a larger claim is corruption.
const maxShards = 1 << 20

// Lease is the coordinator's announcement of a completed election: leader
// node `Leader` (an index into the current membership) hosted by shard
// `LeaderShard` reigns for epoch `Epoch`. Workers heartbeat every
// `HeartMillis` while the lease holds; the coordinator declares a shard
// dead after a TTL of missed beats (or a closed connection, whichever
// comes first).
type Lease struct {
	Epoch       uint64
	Leader      int
	LeaderShard int
	HeartMillis uint32
}

// AppendLease encodes one lease onto buf.
func AppendLease(buf []byte, l Lease) []byte {
	buf = binary.AppendUvarint(buf, l.Epoch)
	buf = binary.AppendUvarint(buf, uint64(l.Leader))
	buf = binary.AppendUvarint(buf, uint64(l.LeaderShard))
	return binary.AppendUvarint(buf, uint64(l.HeartMillis))
}

// DecodeLease parses one lease payload, consuming it entirely.
func DecodeLease(b []byte) (Lease, error) {
	var l Lease
	epoch, b, err := ReadUvarint(b)
	if err != nil {
		return l, err
	}
	leader, b, err := ReadUvarint(b)
	if err != nil {
		return l, err
	}
	shard, b, err := ReadUvarint(b)
	if err != nil {
		return l, err
	}
	heart, b, err := ReadUvarint(b)
	if err != nil {
		return l, err
	}
	if len(b) != 0 {
		return l, fmt.Errorf("%w: %d trailing bytes in lease", ErrCorrupt, len(b))
	}
	if leader > maxBits || shard > maxShards || heart > uint64(^uint32(0)) {
		return l, fmt.Errorf("%w: lease fields out of range", ErrCorrupt)
	}
	return Lease{Epoch: epoch, Leader: int(leader), LeaderShard: int(shard), HeartMillis: uint32(heart)}, nil
}

// Heartbeat is one worker's periodic liveness beat under an active lease.
type Heartbeat struct {
	Epoch uint64
	Shard int
	Seq   uint64
}

// AppendHeartbeat encodes one heartbeat onto buf.
func AppendHeartbeat(buf []byte, h Heartbeat) []byte {
	buf = binary.AppendUvarint(buf, h.Epoch)
	buf = binary.AppendUvarint(buf, uint64(h.Shard))
	return binary.AppendUvarint(buf, h.Seq)
}

// DecodeHeartbeat parses one heartbeat payload, consuming it entirely.
func DecodeHeartbeat(b []byte) (Heartbeat, error) {
	var h Heartbeat
	epoch, b, err := ReadUvarint(b)
	if err != nil {
		return h, err
	}
	shard, b, err := ReadUvarint(b)
	if err != nil {
		return h, err
	}
	seq, b, err := ReadUvarint(b)
	if err != nil {
		return h, err
	}
	if len(b) != 0 {
		return h, fmt.Errorf("%w: %d trailing bytes in heartbeat", ErrCorrupt, len(b))
	}
	if shard > maxShards {
		return h, fmt.Errorf("%w: heartbeat shard %d out of range", ErrCorrupt, shard)
	}
	return Heartbeat{Epoch: epoch, Shard: int(shard), Seq: seq}, nil
}

// EpochChange opens supervision epoch `Epoch`: it ends the previous lease
// (workers stop heartbeating and quiesce their links) and announces the
// new membership. Live[s] reports whether shard s participates in the new
// epoch; a rejoining shard is flagged live and named by Rejoin (-1 when
// nobody rejoins) with its dial address in RejoinAddr.
type EpochChange struct {
	Epoch      uint64
	Live       []bool
	Rejoin     int
	RejoinAddr string
}

// AppendEpochChange encodes one epoch change onto buf.
func AppendEpochChange(buf []byte, e EpochChange) []byte {
	buf = binary.AppendUvarint(buf, e.Epoch)
	buf = binary.AppendUvarint(buf, uint64(len(e.Live)))
	for _, up := range e.Live {
		bit := byte(0)
		if up {
			bit = 1
		}
		buf = append(buf, bit)
	}
	buf = binary.AppendVarint(buf, int64(e.Rejoin))
	buf = binary.AppendUvarint(buf, uint64(len(e.RejoinAddr)))
	return append(buf, e.RejoinAddr...)
}

// DecodeEpochChange parses one epoch-change payload, consuming it
// entirely.
func DecodeEpochChange(b []byte) (EpochChange, error) {
	var e EpochChange
	epoch, b, err := ReadUvarint(b)
	if err != nil {
		return e, err
	}
	cnt, b, err := ReadCount(b)
	if err != nil {
		return e, err
	}
	if cnt > maxShards {
		return e, fmt.Errorf("%w: epoch change claims %d shards", ErrCorrupt, cnt)
	}
	live := make([]bool, cnt)
	for i := range live {
		switch b[i] {
		case 0:
		case 1:
			live[i] = true
		default:
			return e, fmt.Errorf("%w: bad live flag %d", ErrCorrupt, b[i])
		}
	}
	b = b[cnt:]
	rejoin, b, err := ReadVarint(b)
	if err != nil {
		return e, err
	}
	if rejoin < -1 || rejoin > maxShards {
		return e, fmt.Errorf("%w: rejoin shard %d out of range", ErrCorrupt, rejoin)
	}
	addr, b, err := ReadBytes(b)
	if err != nil {
		return e, err
	}
	if len(b) != 0 {
		return e, fmt.Errorf("%w: %d trailing bytes in epoch change", ErrCorrupt, len(b))
	}
	return EpochChange{Epoch: epoch, Live: live, Rejoin: int(rejoin), RejoinAddr: string(addr)}, nil
}
