package wire_test

import (
	"reflect"
	"strings"
	"testing"

	_ "wcle/internal/algo" // registers every backend's message codecs
	"wcle/internal/protocol"
	"wcle/internal/sim"
	"wcle/internal/wire"
)

// TestAllBackendKindsRegistered pins the codec registry to the message
// kinds the shipped backends can put on an edge: a backend whose messages
// cannot cross a shard boundary is not cluster-capable.
func TestAllBackendKindsRegistered(t *testing.T) {
	want := []string{
		protocol.KindToken, protocol.KindUp, protocol.KindDown, // gilbertrs18
		"floodmax",                      // floodmax
		"kpprt-announce", "kpprt-reply", // kpprt
		"rumor", "pull", // pushpull
		"join",                                       // bfstree
		"agg-join", "agg-nack", "agg-up", "agg-down", // aggregate
	}
	kinds := strings.Join(wire.Kinds(), ",")
	for _, k := range want {
		if !strings.Contains(kinds, k) {
			t.Errorf("kind %q has no registered codec (registered: %s)", k, kinds)
		}
	}
}

// TestEnvelopeRoundTrip covers the envelope framing around a message.
func TestEnvelopeRoundTrip(t *testing.T) {
	c, err := protocol.NewCodec(64, protocol.ModeCongest)
	if err != nil {
		t.Fatal(err)
	}
	for _, from := range []int{-1, 0, 17} {
		e := wire.Envelope{Due: 12345, To: 63, Port: 5, From: from, Msg: c.Token(9, 2, 30, 4)}
		buf, err := wire.AppendEnvelope(nil, e)
		if err != nil {
			t.Fatal(err)
		}
		got, rest, err := wire.DecodeEnvelope(buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 {
			t.Fatalf("%d leftover bytes", len(rest))
		}
		if got.Due != e.Due || got.To != e.To || got.Port != e.Port || got.From != e.From {
			t.Fatalf("envelope fields: got %+v, want %+v", got, e)
		}
		if !reflect.DeepEqual(got.Msg, e.Msg) {
			t.Fatalf("payload: got %#v, want %#v", got.Msg, e.Msg)
		}
		for cut := 0; cut < len(buf); cut++ {
			if _, _, err := wire.DecodeEnvelope(buf[:cut]); err == nil {
				t.Fatalf("truncation to %d/%d decoded cleanly", cut, len(buf))
			}
		}
	}
}

// TestUnregisteredKind: a message type without a codec fails encode with a
// message naming the kind.
func TestUnregisteredKind(t *testing.T) {
	if _, err := wire.AppendMessage(nil, strangeMsg{}); err == nil || !strings.Contains(err.Error(), "strange") {
		t.Fatalf("expected an error naming the kind, got %v", err)
	}
}

type strangeMsg struct{}

func (strangeMsg) Bits() int    { return 1 }
func (strangeMsg) Kind() string { return "strange" }

var _ sim.Message = strangeMsg{}

// TestControlRoundTrip: the supervision control payloads round-trip
// exactly, and every truncation of a valid encoding is rejected.
func TestControlRoundTrip(t *testing.T) {
	leases := []wire.Lease{
		{},
		{Epoch: 1, Leader: 27, LeaderShard: 1, HeartMillis: 50},
		{Epoch: 1<<63 + 5, Leader: 1 << 20, LeaderShard: 255, HeartMillis: ^uint32(0)},
	}
	for _, l := range leases {
		buf := wire.AppendLease(nil, l)
		got, err := wire.DecodeLease(buf)
		if err != nil || got != l {
			t.Fatalf("lease round-trip: %+v -> %+v (%v)", l, got, err)
		}
		for cut := 0; cut < len(buf); cut++ {
			if _, err := wire.DecodeLease(buf[:cut]); err == nil {
				t.Fatalf("lease truncation to %d/%d decoded cleanly", cut, len(buf))
			}
		}
	}
	hearts := []wire.Heartbeat{{}, {Epoch: 9, Shard: 3, Seq: 1 << 40}}
	for _, h := range hearts {
		buf := wire.AppendHeartbeat(nil, h)
		got, err := wire.DecodeHeartbeat(buf)
		if err != nil || got != h {
			t.Fatalf("heartbeat round-trip: %+v -> %+v (%v)", h, got, err)
		}
		for cut := 0; cut < len(buf); cut++ {
			if _, err := wire.DecodeHeartbeat(buf[:cut]); err == nil {
				t.Fatalf("heartbeat truncation to %d/%d decoded cleanly", cut, len(buf))
			}
		}
	}
	epochs := []wire.EpochChange{
		{Rejoin: -1, Live: []bool{}},
		{Epoch: 4, Live: []bool{true, false, true}, Rejoin: 1, RejoinAddr: "127.0.0.1:7001"},
	}
	for _, e := range epochs {
		buf := wire.AppendEpochChange(nil, e)
		got, err := wire.DecodeEpochChange(buf)
		if err != nil || !reflect.DeepEqual(got, e) {
			t.Fatalf("epoch change round-trip: %+v -> %+v (%v)", e, got, err)
		}
		for cut := 0; cut < len(buf); cut++ {
			if _, err := wire.DecodeEpochChange(buf[:cut]); err == nil {
				t.Fatalf("epoch truncation to %d/%d decoded cleanly", cut, len(buf))
			}
		}
	}
	// A corrupted live flag and an oversized shard id are rejected.
	if _, err := wire.DecodeEpochChange([]byte{1, 1, 7, 0, 0}); err == nil {
		t.Fatal("bad live flag decoded cleanly")
	}
	if _, err := wire.DecodeLease(wire.AppendLease(nil, wire.Lease{LeaderShard: 1 << 30})); err == nil {
		t.Fatal("oversized leader shard decoded cleanly")
	}
}
