package wire_test

import (
	"reflect"
	"testing"

	"wcle/internal/protocol"
	"wcle/internal/wire"
)

// FuzzWireDecode: the decoders are total functions. Whatever bytes arrive
// on a cluster connection, decoding returns a message or an error — never
// a panic, never an allocation the input did not pay for.
func FuzzWireDecode(f *testing.F) {
	c, err := protocol.NewCodec(128, protocol.ModeCongest)
	if err != nil {
		f.Fatal(err)
	}
	up, err := c.Up(42, 3, protocol.UpX1, []protocol.ID{7}, -2, 5)
	if err != nil {
		f.Fatal(err)
	}
	down, err := c.Down(41, 2, protocol.DownFinal, nil)
	if err != nil {
		f.Fatal(err)
	}
	for _, m := range []interface {
		Bits() int
		Kind() string
	}{c.Token(9, 1, 30, 4), up, down} {
		env, err := wire.AppendEnvelope(nil, wire.Envelope{Due: 7, To: 3, Port: 1, From: -1, Msg: m})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(env)
		msg, err := wire.AppendMessage(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(msg)
	}
	f.Add(wire.AppendLease(nil, wire.Lease{Epoch: 3, Leader: 27, LeaderShard: 1, HeartMillis: 50}))
	f.Add(wire.AppendHeartbeat(nil, wire.Heartbeat{Epoch: 3, Shard: 2, Seq: 99}))
	f.Add(wire.AppendEpochChange(nil, wire.EpochChange{
		Epoch: 4, Live: []bool{true, false, true}, Rejoin: 1, RejoinAddr: "127.0.0.1:7001",
	}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Every entry point a peer's bytes reach: envelope framing (the
		// data-frame path), bare messages, and the supervision control
		// payloads. Valid control payloads must round-trip byte-for-byte
		// (they are part of the deterministic wire contract).
		if e, rest, err := wire.DecodeEnvelope(data); err == nil {
			if e.Msg == nil {
				t.Fatal("decoded envelope with nil message")
			}
			_ = e.Msg.Bits()
			_ = e.Msg.Kind()
			_ = rest
		}
		if m, err := wire.DecodeMessage(data); err == nil {
			_ = m.Bits()
			_ = m.Kind()
		}
		// Accepted control payloads must round-trip semantically: re-encoding
		// the decoded value and decoding again yields the same value. (Byte
		// identity is too strong — Uvarint tolerates non-canonical inputs.)
		if l, err := wire.DecodeLease(data); err == nil {
			if l2, err := wire.DecodeLease(wire.AppendLease(nil, l)); err != nil || l2 != l {
				t.Fatalf("lease round-trip: %+v -> %+v (%v)", l, l2, err)
			}
		}
		if h, err := wire.DecodeHeartbeat(data); err == nil {
			if h2, err := wire.DecodeHeartbeat(wire.AppendHeartbeat(nil, h)); err != nil || h2 != h {
				t.Fatalf("heartbeat round-trip: %+v -> %+v (%v)", h, h2, err)
			}
		}
		if e, err := wire.DecodeEpochChange(data); err == nil {
			e2, err := wire.DecodeEpochChange(wire.AppendEpochChange(nil, e))
			if err != nil || !reflect.DeepEqual(e2, e) {
				t.Fatalf("epoch change round-trip: %+v -> %+v (%v)", e, e2, err)
			}
		}
	})
}
