package wire_test

import (
	"encoding/binary"
	"reflect"
	"testing"

	// Linked for its wire registrations: the built-in protocol codecs and
	// the committee claim frame (id 14), so the fuzzers cover the
	// adversarial frame path too.
	_ "wcle/internal/engine"
	"wcle/internal/protocol"
	"wcle/internal/wire"
)

// FuzzWireDecode: the decoders are total functions. Whatever bytes arrive
// on a cluster connection, decoding returns a message or an error — never
// a panic, never an allocation the input did not pay for.
func FuzzWireDecode(f *testing.F) {
	c, err := protocol.NewCodec(128, protocol.ModeCongest)
	if err != nil {
		f.Fatal(err)
	}
	up, err := c.Up(42, 3, protocol.UpX1, []protocol.ID{7}, -2, 5)
	if err != nil {
		f.Fatal(err)
	}
	down, err := c.Down(41, 2, protocol.DownFinal, nil)
	if err != nil {
		f.Fatal(err)
	}
	for _, m := range []interface {
		Bits() int
		Kind() string
	}{c.Token(9, 1, 30, 4), up, down} {
		env, err := wire.AppendEnvelope(nil, wire.Envelope{Due: 7, To: 3, Port: 1, From: -1, Msg: m})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(env)
		msg, err := wire.AppendMessage(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(msg)
	}
	f.Add(wire.AppendLease(nil, wire.Lease{Epoch: 3, Leader: 27, LeaderShard: 1, HeartMillis: 50}))
	f.Add(wire.AppendHeartbeat(nil, wire.Heartbeat{Epoch: 3, Shard: 2, Seq: 99}))
	f.Add(wire.AppendEpochChange(nil, wire.EpochChange{
		Epoch: 4, Live: []bool{true, false, true}, Rejoin: 1, RejoinAddr: "127.0.0.1:7001",
	}))
	// Data-frame headers in all three chunk layouts, including the
	// piggybacked final chunk that carries the shard's next-event round.
	f.Add(wire.AppendDataHeader(nil, wire.DataHeader{Epoch: 2, Round: 9, Flag: wire.ChunkMore, Count: 4}))
	f.Add(wire.AppendDataHeader(nil, wire.DataHeader{Epoch: 2, Round: 9, Flag: wire.ChunkFinal, Count: 0}))
	f.Add(wire.AppendDataHeader(nil, wire.DataHeader{Epoch: 3, Round: 11, Flag: wire.ChunkFinalNext, Next: 14, Count: 2}))
	f.Add(wire.AppendDataHeader(nil, wire.DataHeader{Epoch: 3, Round: 11, Flag: wire.ChunkFinalNext, Next: -1, Count: 0}))
	if z, ok := wire.AppendCompressed(nil, make([]byte, 4096)); ok {
		f.Add(z)
	}
	// A committee claim frame (the Byzantine defense's physical message,
	// wire id 14) wrapping the token message — the adversarial frame path.
	tok, err := wire.AppendMessage(nil, c.Token(9, 1, 30, 4))
	if err != nil {
		f.Fatal(err)
	}
	claim := []byte{14, 5, 0, 3} // id, seq=5, idx=0, total=3
	claim = binary.AppendUvarint(claim, uint64(len(tok)))
	f.Add(append(claim, tok...))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Every entry point a peer's bytes reach: envelope framing (the
		// data-frame path), bare messages, and the supervision control
		// payloads. Valid control payloads must round-trip byte-for-byte
		// (they are part of the deterministic wire contract).
		if e, rest, err := wire.DecodeEnvelope(data); err == nil {
			if e.Msg == nil {
				t.Fatal("decoded envelope with nil message")
			}
			_ = e.Msg.Bits()
			_ = e.Msg.Kind()
			_ = rest
		}
		if m, err := wire.DecodeMessage(data); err == nil {
			_ = m.Bits()
			_ = m.Kind()
		}
		// Accepted control payloads must round-trip semantically: re-encoding
		// the decoded value and decoding again yields the same value. (Byte
		// identity is too strong — Uvarint tolerates non-canonical inputs.)
		if l, err := wire.DecodeLease(data); err == nil {
			if l2, err := wire.DecodeLease(wire.AppendLease(nil, l)); err != nil || l2 != l {
				t.Fatalf("lease round-trip: %+v -> %+v (%v)", l, l2, err)
			}
		}
		if h, err := wire.DecodeHeartbeat(data); err == nil {
			if h2, err := wire.DecodeHeartbeat(wire.AppendHeartbeat(nil, h)); err != nil || h2 != h {
				t.Fatalf("heartbeat round-trip: %+v -> %+v (%v)", h, h2, err)
			}
		}
		if e, err := wire.DecodeEpochChange(data); err == nil {
			e2, err := wire.DecodeEpochChange(wire.AppendEpochChange(nil, e))
			if err != nil || !reflect.DeepEqual(e2, e) {
				t.Fatalf("epoch change round-trip: %+v -> %+v (%v)", e, e2, err)
			}
		}
		// Data-frame headers: any accepted header re-encodes to a header
		// that decodes to the same value with the same remaining bytes.
		if h, rest, err := wire.DecodeDataHeader(data); err == nil {
			if h.Flag != wire.ChunkFinalNext && h.Next != -1 {
				t.Fatalf("non-piggybacked header decoded Next=%d, want the -1 sentinel: %+v", h.Next, h)
			}
			enc := wire.AppendDataHeader(nil, h)
			h2, rest2, err := wire.DecodeDataHeader(append(enc, rest...))
			if err != nil || h2 != h || len(rest2) != len(rest) {
				t.Fatalf("data header round-trip: %+v -> %+v (%v)", h, h2, err)
			}
		}
		// The compressed-frame decoder is total and bounded: it either
		// errors or yields exactly the raw length the header promised,
		// never more than the cap.
		if raw, err := wire.Decompress(data, 1<<16); err == nil {
			if len(raw) > 1<<16 {
				t.Fatalf("Decompress exceeded its cap: %d bytes", len(raw))
			}
			z, ok := wire.AppendCompressed(nil, raw)
			if ok {
				raw2, err := wire.Decompress(z, 1<<16)
				if err != nil || !reflect.DeepEqual(raw2, raw) {
					t.Fatalf("compress round-trip failed on %d bytes (%v)", len(raw), err)
				}
			}
		}
	})
}

// FuzzCompressRoundTrip drives AppendCompressed/Decompress from the raw
// side: every payload either declines compression or round-trips exactly.
func FuzzCompressRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("the same envelope header repeated, the same envelope header repeated"))
	f.Add(make([]byte, 2048))
	f.Fuzz(func(t *testing.T, raw []byte) {
		z, ok := wire.AppendCompressed(nil, raw)
		if !ok {
			if len(z) != 0 {
				t.Fatalf("declined compression but grew dst by %d bytes", len(z))
			}
			return
		}
		if len(z) >= len(raw) {
			t.Fatalf("kept a non-smaller encoding: %d -> %d bytes", len(raw), len(z))
		}
		got, err := wire.Decompress(z, len(raw))
		if err != nil {
			t.Fatalf("decompressing own output: %v", err)
		}
		if !reflect.DeepEqual(got, raw) {
			t.Fatalf("round trip changed %d bytes", len(raw))
		}
	})
}
