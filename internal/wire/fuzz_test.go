package wire_test

import (
	"testing"

	"wcle/internal/protocol"
	"wcle/internal/wire"
)

// FuzzWireDecode: the decoders are total functions. Whatever bytes arrive
// on a cluster connection, decoding returns a message or an error — never
// a panic, never an allocation the input did not pay for.
func FuzzWireDecode(f *testing.F) {
	c, err := protocol.NewCodec(128, protocol.ModeCongest)
	if err != nil {
		f.Fatal(err)
	}
	up, err := c.Up(42, 3, protocol.UpX1, []protocol.ID{7}, -2, 5)
	if err != nil {
		f.Fatal(err)
	}
	down, err := c.Down(41, 2, protocol.DownFinal, nil)
	if err != nil {
		f.Fatal(err)
	}
	for _, m := range []interface {
		Bits() int
		Kind() string
	}{c.Token(9, 1, 30, 4), up, down} {
		env, err := wire.AppendEnvelope(nil, wire.Envelope{Due: 7, To: 3, Port: 1, From: -1, Msg: m})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(env)
		msg, err := wire.AppendMessage(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(msg)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Both entry points a peer's bytes reach: envelope framing (the
		// data-frame path) and bare messages.
		if e, rest, err := wire.DecodeEnvelope(data); err == nil {
			if e.Msg == nil {
				t.Fatal("decoded envelope with nil message")
			}
			_ = e.Msg.Bits()
			_ = e.Msg.Kind()
			_ = rest
		}
		if m, err := wire.DecodeMessage(data); err == nil {
			_ = m.Bits()
			_ = m.Kind()
		}
	})
}
