package wire

// Data-frame codec: the header of the cluster's per-round envelope frames
// and the optional flate compression applied to large ones. These live in
// wire (not internal/cluster) so the decoders sit under the same totality
// contract — and the same fuzzer — as the message codecs: whatever bytes a
// peer sends, decoding returns a value or an error, never a panic or an
// allocation the input did not pay for.
//
// One data frame carries one chunk of one shard's per-(peer, round) flush:
//
//	[uvarint epoch][uvarint round][flag byte]
//	[flag == ChunkFinalNext: varint next][uvarint count][count envelopes]
//
// The flag byte is the chunking protocol: ChunkMore frames continue the
// round, a final frame ends it. ChunkFinalNext is the piggybacked barrier:
// the sender's next-event contribution rides the final chunk, so round
// advancement needs no separate control round-trip. ChunkFinal (no next)
// is the legacy layout, kept for mixed-version clusters whose barrier
// still runs the ready/advance star.

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Data-frame chunk flags. Part of the wire format: never reuse.
const (
	// ChunkMore: more chunks of this (peer, round) flush follow.
	ChunkMore = 0
	// ChunkFinal: the flush's last chunk, no piggybacked barrier (the
	// legacy ready/advance star carries round advancement).
	ChunkFinal = 1
	// ChunkFinalNext: the flush's last chunk, carrying the sender's
	// piggybacked next-event round.
	ChunkFinalNext = 2
)

// MaxDataBytes bounds the raw size a compressed data frame may claim, so
// a corrupt or hostile length cannot demand unbounded memory. It equals
// the cluster frame layer's own frame cap.
const MaxDataBytes = 64 << 20

// DataHeader is the decoded header of one data frame.
type DataHeader struct {
	// Epoch is the barrier iteration the frame belongs to.
	Epoch uint64
	// Round is the global event round being flushed.
	Round int
	// Flag is the chunking flag (ChunkMore/ChunkFinal/ChunkFinalNext).
	Flag byte
	// Next is the sender's barrier contribution — the minimum of its
	// pre-receive next pending event round and the earliest due round it
	// sent this round (-1 = nothing pending, nothing sent). Meaningful
	// only when Flag == ChunkFinalNext.
	Next int
	// Count is the number of envelopes in this chunk.
	Count int
}

// AppendDataHeader encodes a data-frame header onto buf. The envelopes
// follow it verbatim.
func AppendDataHeader(buf []byte, h DataHeader) []byte {
	buf = binary.AppendUvarint(buf, h.Epoch)
	buf = binary.AppendUvarint(buf, uint64(h.Round))
	buf = append(buf, h.Flag)
	if h.Flag == ChunkFinalNext {
		buf = binary.AppendVarint(buf, int64(h.Next))
	}
	return binary.AppendUvarint(buf, uint64(h.Count))
}

// DecodeDataHeader parses a data-frame header and returns it plus the
// remaining input (the envelope bytes). Count is validated against the
// remaining length before returning, so a corrupt count cannot drive an
// unpaid allocation downstream.
func DecodeDataHeader(b []byte) (DataHeader, []byte, error) {
	var h DataHeader
	const maxInt = int(^uint(0) >> 1)
	epoch, b, err := ReadUvarint(b)
	if err != nil {
		return h, nil, err
	}
	round, b, err := ReadUvarint(b)
	if err != nil {
		return h, nil, err
	}
	if round > uint64(maxInt) {
		return h, nil, fmt.Errorf("%w: data-frame round %d overflows int", ErrCorrupt, round)
	}
	if len(b) == 0 {
		return h, nil, fmt.Errorf("%w: data frame truncated at chunk flag", ErrCorrupt)
	}
	h.Flag = b[0]
	b = b[1:]
	if h.Flag > ChunkFinalNext {
		return h, nil, fmt.Errorf("%w: unknown chunk flag %d", ErrCorrupt, h.Flag)
	}
	h.Next = -1
	if h.Flag == ChunkFinalNext {
		next, rest, err := ReadVarint(b)
		if err != nil {
			return h, nil, err
		}
		if next < -1 || next > int64(maxInt) {
			return h, nil, fmt.Errorf("%w: piggybacked next round %d out of range", ErrCorrupt, next)
		}
		h.Next = int(next)
		b = rest
	}
	cnt, b, err := ReadCount(b)
	if err != nil {
		return h, nil, err
	}
	h.Epoch, h.Round, h.Count = epoch, int(round), cnt
	return h, b, nil
}

// Flate state is pooled: one election writes (and reads) thousands of
// frames, and a fresh flate.Writer is a ~650KB allocation.
var (
	flateWriters = sync.Pool{New: func() interface{} {
		w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
		return w
	}}
	flateReaders = sync.Pool{New: func() interface{} {
		return flate.NewReader(bytes.NewReader(nil))
	}}
)

// sliceWriter adapts an append target to io.Writer for the flate encoder.
type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// AppendCompressed appends the compressed form of raw — a uvarint raw
// length followed by a flate stream — onto dst. When the compressed form
// is not smaller than raw, it reports false and returns dst unchanged:
// the caller sends the raw frame instead, so compression can only ever
// shrink the wire.
func AppendCompressed(dst, raw []byte) ([]byte, bool) {
	base := len(dst)
	sw := &sliceWriter{b: binary.AppendUvarint(dst, uint64(len(raw)))}
	zw := flateWriters.Get().(*flate.Writer)
	zw.Reset(sw)
	_, werr := zw.Write(raw)
	cerr := zw.Close()
	flateWriters.Put(zw)
	if werr != nil || cerr != nil || len(sw.b)-base >= len(raw) {
		return sw.b[:base], false
	}
	return sw.b, true
}

// Decompress inverts AppendCompressed. The claimed raw length is bounded
// by maxRaw before any allocation, and the flate stream must decode to
// exactly that many bytes — a shorter or longer stream is corruption.
func Decompress(b []byte, maxRaw int) ([]byte, error) {
	rawLen, b, err := ReadUvarint(b)
	if err != nil {
		return nil, err
	}
	if rawLen > uint64(maxRaw) {
		return nil, fmt.Errorf("%w: compressed frame claims %d raw bytes (cap %d)", ErrCorrupt, rawLen, maxRaw)
	}
	zr := flateReaders.Get().(io.ReadCloser)
	defer flateReaders.Put(zr)
	if err := zr.(flate.Resetter).Reset(bytes.NewReader(b), nil); err != nil {
		return nil, fmt.Errorf("%w: flate reset: %v", ErrCorrupt, err)
	}
	out := make([]byte, int(rawLen))
	if _, err := io.ReadFull(zr, out); err != nil {
		return nil, fmt.Errorf("%w: flate stream: %v", ErrCorrupt, err)
	}
	var one [1]byte
	if n, err := zr.Read(one[:]); n != 0 || err != io.EOF {
		return nil, fmt.Errorf("%w: flate stream longer than its claimed %d bytes", ErrCorrupt, rawLen)
	}
	return out, nil
}
