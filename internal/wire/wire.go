// Package wire is the binary codec layer of the cluster runtime: it turns
// sim messages and delivery envelopes into length-prefixed frames that
// cross real TCP connections between electnode processes (internal/cluster)
// and back, byte-for-byte deterministically.
//
// The codec is a registry: every concrete sim.Message type that may cross a
// shard boundary registers a MsgCodec under a one-byte wire id, keyed by
// the message's Kind() string on the encode side. The protocol package
// registers the paper's token/up/down messages, the baseline package its
// FloodMax id message, and the algo package the kpprt announcement/reply —
// so a new backend makes itself cluster-capable by registering its message
// types here, with no change to the transport.
//
// Decoders are total functions: arbitrary bytes must decode to an error,
// never a panic or an unbounded allocation (FuzzWireDecode holds them to
// it). Every variable-length field is length-prefixed and validated
// against the remaining input before allocation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"wcle/internal/sim"
)

// ErrCorrupt is wrapped by every decode failure.
var ErrCorrupt = errors.New("wire: corrupt input")

// maxBits caps the decoded size claim of a single message: a message
// pretending to be larger than any CONGEST cap we would ever configure is
// corrupt, not big.
const maxBits = 1 << 30

// MsgCodec encodes and decodes one concrete sim.Message type.
type MsgCodec struct {
	// Kind is the message type's Kind() string, the encode-side key.
	Kind string
	// Append encodes m's payload (without the wire id) onto buf. It may
	// assume m is the registered concrete type.
	Append func(buf []byte, m sim.Message) ([]byte, error)
	// Decode parses one payload, consuming it entirely (trailing bytes
	// are corruption). It must be total: malformed input returns an
	// error, never panics.
	Decode func(payload []byte) (sim.Message, error)
}

var (
	regMu    sync.RWMutex
	byID     [256]*MsgCodec
	idByKind = map[string]byte{}
)

// Register binds a wire id to a message codec. Ids are part of the wire
// format: once assigned, an id must keep its meaning across versions.
// Double registration of an id or a kind panics (a build-time bug).
func Register(id byte, c MsgCodec) {
	if c.Kind == "" || c.Append == nil || c.Decode == nil {
		panic("wire: Register needs a kind, an appender, and a decoder")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if byID[id] != nil {
		panic(fmt.Sprintf("wire: id %d registered twice (%q, %q)", id, byID[id].Kind, c.Kind))
	}
	if _, dup := idByKind[c.Kind]; dup {
		panic(fmt.Sprintf("wire: kind %q registered twice", c.Kind))
	}
	cc := c
	byID[id] = &cc
	idByKind[c.Kind] = id
}

// Kinds lists the registered message kinds, sorted.
func Kinds() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(idByKind))
	for k := range idByKind {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// AppendMessage encodes m (wire id + payload) onto buf. Message types that
// never registered a codec cannot cross a shard boundary — the error names
// the kind so the fix (a wire registration) is obvious.
func AppendMessage(buf []byte, m sim.Message) ([]byte, error) {
	regMu.RLock()
	id, ok := idByKind[m.Kind()]
	var c *MsgCodec
	if ok {
		c = byID[id]
	}
	regMu.RUnlock()
	if c == nil {
		return buf, fmt.Errorf("wire: message kind %q has no registered codec (register it in wire to make the backend cluster-capable)", m.Kind())
	}
	buf = append(buf, id)
	return c.Append(buf, m)
}

// DecodeMessage parses one encoded message (wire id + payload). The whole
// input must be consumed: codecs reject trailing bytes.
func DecodeMessage(b []byte) (sim.Message, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("%w: empty message", ErrCorrupt)
	}
	id := b[0]
	regMu.RLock()
	c := byID[id]
	regMu.RUnlock()
	if c == nil {
		return nil, fmt.Errorf("%w: unknown message id %d", ErrCorrupt, id)
	}
	return c.Decode(b[1:])
}

// Envelope is one delivery crossing a shard boundary: the flattened form
// of a sim.Envelope plus its routing (destination node and due round).
type Envelope struct {
	Due  int
	To   int
	Port int
	From int // -1 unless the run stamps sender indices (sim.Config.DebugFrom)
	Msg  sim.Message
}

// AppendEnvelope encodes one envelope onto buf.
func AppendEnvelope(buf []byte, e Envelope) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(e.Due))
	buf = binary.AppendUvarint(buf, uint64(e.To))
	buf = binary.AppendUvarint(buf, uint64(e.Port))
	buf = binary.AppendVarint(buf, int64(e.From))
	inner, err := AppendMessage(nil, e.Msg)
	if err != nil {
		return buf, err
	}
	buf = binary.AppendUvarint(buf, uint64(len(inner)))
	return append(buf, inner...), nil
}

// DecodeEnvelope parses one envelope and returns it plus the remaining
// input.
func DecodeEnvelope(b []byte) (Envelope, []byte, error) {
	var e Envelope
	due, b, err := ReadUvarint(b)
	if err != nil {
		return e, nil, err
	}
	to, b, err := ReadUvarint(b)
	if err != nil {
		return e, nil, err
	}
	port, b, err := ReadUvarint(b)
	if err != nil {
		return e, nil, err
	}
	from, b, err := ReadVarint(b)
	if err != nil {
		return e, nil, err
	}
	const maxInt = int(^uint(0) >> 1)
	if due > uint64(maxInt) || to > uint64(maxInt) || port > uint64(maxInt) {
		return e, nil, fmt.Errorf("%w: envelope field overflows int", ErrCorrupt)
	}
	if from < -1 || from > int64(maxInt) {
		return e, nil, fmt.Errorf("%w: envelope sender %d out of range", ErrCorrupt, from)
	}
	inner, b, err := ReadBytes(b)
	if err != nil {
		return e, nil, err
	}
	m, err := DecodeMessage(inner)
	if err != nil {
		return e, nil, err
	}
	e = Envelope{Due: int(due), To: int(to), Port: int(port), From: int(from), Msg: m}
	return e, b, nil
}

// ReadUvarint decodes a uvarint from the front of b.
func ReadUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint", ErrCorrupt)
	}
	return v, b[n:], nil
}

// ReadVarint decodes a zigzag varint from the front of b.
func ReadVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad varint", ErrCorrupt)
	}
	return v, b[n:], nil
}

// ReadBytes decodes a length-prefixed byte slice from the front of b. The
// claimed length is validated against the remaining input before any
// allocation, so corrupt input cannot demand memory it did not pay for.
func ReadBytes(b []byte) ([]byte, []byte, error) {
	n, b, err := ReadUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(b)) {
		return nil, nil, fmt.Errorf("%w: %d-byte field in %d-byte input", ErrCorrupt, n, len(b))
	}
	return b[:n], b[n:], nil
}

// ReadBits decodes a message's bit-size field, bounding the claim.
func ReadBits(b []byte) (int, []byte, error) {
	v, rest, err := ReadUvarint(b)
	if err != nil {
		return 0, nil, err
	}
	if v > maxBits {
		return 0, nil, fmt.Errorf("%w: message claims %d bits", ErrCorrupt, v)
	}
	return int(v), rest, nil
}

// ReadCount decodes a length-prefix for a sequence whose elements take at
// least one byte each, so the count is validated against the remaining
// input before the caller allocates.
func ReadCount(b []byte) (int, []byte, error) {
	v, rest, err := ReadUvarint(b)
	if err != nil {
		return 0, nil, err
	}
	if v > uint64(len(rest)) {
		return 0, nil, fmt.Errorf("%w: %d elements in %d-byte input", ErrCorrupt, v, len(rest))
	}
	return int(v), rest, nil
}
