package wire

import "wcle/internal/sim"

// This file is the byte half of the Byzantine fault plane (sim.Byzantine):
// the mutation codec that turns a sim.Message into the forgery an
// adversarial sender actually transmits. Mutations run on the message's
// canonical wire encoding — the exact bytes a cluster frame would carry —
// so the in-process sim and the sharded TCP cluster forge identically, and
// a mutation that breaks the encoding is detected by the same total
// decoders that guard real frames: the message is destroyed (a fault
// drop), never a panic (FuzzByzantineMutate holds the codec to it).
//
// The codec reaches the sim through sim.RegisterMutator from init(), so
// sim never imports wire; any build that registers message codecs links
// the mutator in.

func init() {
	sim.RegisterMutator(MutateMessage)
}

// MutateBytes applies one adversarial mutation to an encoded message
// (wire id + payload), drawing all randomness from rng, and returns the
// mutated copy. The wire id byte is preserved — a forged id is just an
// instant decode failure, while keeping the kind valid lets forged
// payloads (spoofed ids, rounds, levels) reach protocol logic. Inputs
// with no payload bytes come back unchanged.
func MutateBytes(rng *sim.Rand, b []byte) []byte {
	out := append([]byte(nil), b...)
	if len(out) <= 1 {
		return out
	}
	body := out[1:]
	switch rng.Intn(3) {
	case 0:
		// Corrupt: flip 1–4 payload bits.
		for i, n := 0, 1+rng.Intn(4); i < n; i++ {
			body[rng.Intn(len(body))] ^= 1 << uint(rng.Intn(8))
		}
	case 1:
		// Forge: overwrite a random span with random bytes.
		start := rng.Intn(len(body))
		span := 1 + rng.Intn(len(body)-start)
		for i := start; i < start+span; i++ {
			body[i] = byte(rng.Intn(256))
		}
	default:
		// Spoof: nudge one byte by a small delta — varint-encoded ids and
		// rounds shift to nearby (often still-decodable) values, the
		// subtlest equivocation the codec produces.
		body[rng.Intn(len(body))] += byte(1 + rng.Intn(3))
	}
	return out
}

// MutateMessage is the sim.MutateFunc the Byzantine plane applies to every
// adversarial send: encode canonically, mutate bytes, decode totally.
// Following the sim.Mutator contract it returns (forgery, true) when the
// mutation still decodes, (nil, false) when it destroyed the message, and
// (nil, true) — untouched — for message kinds with no registered codec
// (pure in-process types that never cross a wire; one rng draw keeps the
// sender's stream advancing identically either way).
func MutateMessage(rng *sim.Rand, m sim.Message) (sim.Message, bool) {
	enc, err := AppendMessage(nil, m)
	if err != nil {
		rng.Int63()
		return nil, true
	}
	out, err := DecodeMessage(MutateBytes(rng, enc))
	if err != nil {
		return nil, false
	}
	return out, true
}
