package core

import (
	"math/rand"
	"testing"

	"wcle/internal/graph"
)

// TestTokenConservation is the strongest end-to-end invariant: every walk
// token a contender launches in its last phase must be registered as a
// proxy completion somewhere in the network — nothing lost in queues,
// batching, splitting, or tree resets.
func TestTokenConservation(t *testing.T) {
	graphs := []*graph.Graph{}
	if g, err := graph.Clique(24, nil); err == nil {
		graphs = append(graphs, g)
	} else {
		t.Fatal(err)
	}
	if g, err := graph.RandomRegular(48, 4, rand.New(rand.NewSource(4))); err == nil {
		graphs = append(graphs, g)
	} else {
		t.Fatal(err)
	}
	if g, err := graph.Hypercube(5, nil); err == nil {
		graphs = append(graphs, g)
	} else {
		t.Fatal(err)
	}
	for _, g := range graphs {
		for seed := int64(0); seed < 3; seed++ {
			res, err := Run(g, DefaultConfig(), RunOptions{Seed: seed})
			if err != nil {
				t.Fatalf("%s: %v", g.Name(), err)
			}
			for _, v := range res.Contenders {
				got := res.ProxyTotals[v]
				if got != res.Walks {
					t.Fatalf("%s seed %d: contender %d registered %d proxies, launched %d walks",
						g.Name(), seed, v, got, res.Walks)
				}
			}
		}
	}
}

// TestDistinctnessAccounting cross-checks the distinctness statistic the
// contenders aggregated in-protocol against the network-wide ground truth.
func TestDistinctnessAccounting(t *testing.T) {
	g, err := graph.RandomRegular(64, 6, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, DefaultConfig(), RunOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Every stopped contender reported dSum >= distT in-protocol; the
	// ground truth distinct count for its final phase must corroborate it.
	for _, v := range res.Stopped {
		if res.DistinctProxies[v] < res.DistinctThreshold {
			t.Fatalf("contender %d stopped with ground-truth distinct %d < threshold %d",
				v, res.DistinctProxies[v], res.DistinctThreshold)
		}
	}
	// Distinct proxies can never exceed total proxies.
	for v, p := range res.ProxyTotals {
		if res.DistinctProxies[v] > p {
			t.Fatalf("contender %d: distinct %d > total %d", v, res.DistinctProxies[v], p)
		}
	}
}

// TestConservationUnderBudget: with drops, conservation is allowed to fail
// (tokens vanish at the budget wall) but accounting must stay non-negative
// and bounded by the launch count.
func TestConservationUnderBudget(t *testing.T) {
	g, err := graph.Clique(24, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, DefaultConfig(), RunOptions{Seed: 5, Budget: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for v, p := range res.ProxyTotals {
		if p < 0 || p > res.Walks {
			t.Fatalf("contender %d: proxies %d outside [0, %d]", v, p, res.Walks)
		}
	}
}
