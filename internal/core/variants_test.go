package core

import (
	"errors"
	"math/rand"
	"testing"

	"wcle/internal/graph"
	"wcle/internal/sim"
)

// TestLogBase2 runs with base-2 logarithms: thresholds grow by 1/ln(2) ~
// 1.44x, more contenders, same safety invariant.
func TestLogBase2(t *testing.T) {
	g, err := graph.Clique(32, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.LogBase = 2
	pe, err := ResolveParams(32, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ResolveParams(32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p2.InterThreshold <= pe.InterThreshold || p2.Walks <= pe.Walks {
		t.Fatalf("base-2 thresholds should exceed base-e: %+v vs %+v", p2, pe)
	}
	res, err := Run(g, cfg, RunOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Leaders) > 1 {
		t.Fatalf("leaders = %v", res.Leaders)
	}
}

// TestTightScheduleStillSafe runs with a deliberately small TMult: stages
// may truncate information flow (more stale drops, possibly failed
// elections) but the at-most-one-leader invariant must survive.
func TestTightScheduleStillSafe(t *testing.T) {
	g, err := graph.RandomRegular(48, 4, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.TMult = 0.25 // far below the paper's (25/16) c1
	for seed := int64(0); seed < 4; seed++ {
		res, err := Run(g, cfg, RunOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Leaders) > 1 {
			t.Fatalf("seed %d: multiple leaders %v under tight schedule", seed, res.Leaders)
		}
	}
}

// TestMaxRoundsError surfaces the engine's round cap as a wrapped error.
func TestMaxRoundsError(t *testing.T) {
	g, err := graph.Clique(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(g, DefaultConfig(), RunOptions{Seed: 1, MaxRounds: 3})
	if !errors.Is(err, sim.ErrMaxRounds) {
		t.Fatalf("want ErrMaxRounds, got %v", err)
	}
}

// TestLargerC2MoreWalks: the walk count and distinctness threshold scale
// with c2, and the run still elects.
func TestLargerC2MoreWalks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.C2 = 4
	p4, err := ResolveParams(64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ResolveParams(64, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p4.Walks != 2*p2.Walks && p4.Walks != 2*p2.Walks-1 && p4.Walks != 2*p2.Walks+1 {
		t.Fatalf("walks should roughly double: %d vs %d", p4.Walks, p2.Walks)
	}
	if p4.DistinctThreshold <= p2.DistinctThreshold {
		t.Fatal("distinctness threshold should grow with c2")
	}
	g, err := graph.Clique(32, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, cfg, RunOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Leaders) > 1 {
		t.Fatalf("leaders = %v", res.Leaders)
	}
}

// TestSuppressedPlusFailedStillTerminate: a mix of cap failures and winner
// suppression must always leave the run quiescent (Run returned) with
// every contender classified.
func TestMixedOutcomesTerminate(t *testing.T) {
	g, err := graph.Barbell(10, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxWalkLen = 32 // barbell mixing exceeds this: failures expected
	res, err := Run(g, cfg, RunOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stopped)+len(res.Suppressed)+len(res.Failed) != len(res.Contenders) {
		t.Fatalf("unclassified contenders: %+v", res)
	}
	if len(res.Leaders) > 1 {
		t.Fatalf("leaders = %v", res.Leaders)
	}
}
