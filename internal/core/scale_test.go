package core

import (
	"math/rand"
	"testing"
	"time"

	"wcle/internal/graph"
)

// TestSmokeScale gauges runtime and message counts on an expander at
// increasing sizes (informational; run with -v).
func TestSmokeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke test skipped in -short mode")
	}
	for _, n := range []int{128, 256, 512} {
		g, err := graph.RandomRegular(n, 8, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		res, err := Run(g, DefaultConfig(), RunOptions{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("n=%d: %v, contenders=%d stopped=%d suppressed=%d failed=%d leaders=%d phases=%d tu* rounds=%d msgs=%d stale=%d",
			n, time.Since(start), len(res.Contenders), len(res.Stopped), len(res.Suppressed),
			len(res.Failed), len(res.Leaders), res.PhasesUsed, res.Rounds, res.Metrics.Messages, res.StaleDrops)
		if len(res.Leaders) > 1 {
			t.Fatalf("n=%d: multiple leaders %v", n, res.Leaders)
		}
	}
}
