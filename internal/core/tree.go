package core

import (
	"sort"

	"wcle/internal/protocol"
)

// tree is the per-(node, origin) view of one contender's walk tree for its
// current (or final) phase: the designated convergecast parent (the port of
// first token arrival; first-arrival times strictly decrease toward the
// origin, so these edges form a tree), the downcast children (every port
// tokens were forwarded to), the local proxy registration count, and the
// relay bookkeeping that implements filtering and late-child replication.
type tree struct {
	phase      int
	parentPort int // -1 at the origin (root)
	isRoot     bool
	final      bool // latched by the origin's FINAL flood
	proxyCount int  // walks of this origin that ended here, this phase

	children []int // sorted child ports

	// storedI2 is the proxy-role storage of the origin's I2 fragments
	// ("the I2 sets received", Algorithm 2 round 3). It persists across
	// phases.
	storedI2 protocol.TrackedSet

	// downX2 records ids relayed down this tree this phase, so that
	// children appearing later (walks still in flight) receive the full
	// prefix. finalDown/winnerDown replicate control floods the same way.
	downX2     protocol.TrackedSet
	finalDown  bool
	winnerDown bool
	winnerID   protocol.ID
}

func newTree(phase, parentPort int, isRoot bool) *tree {
	return &tree{
		phase:      phase,
		parentPort: parentPort,
		isRoot:     isRoot,
	}
}

// resetForPhase reuses the tree for a newer phase of the same origin
// (guess-and-double: the contender's previous proxies are discarded).
// storedI2 persists, matching the paper's proxies "storing" I2 sets.
func (tr *tree) resetForPhase(phase, parentPort int, isRoot bool) {
	tr.phase = phase
	tr.parentPort = parentPort
	tr.isRoot = isRoot
	tr.final = false
	tr.proxyCount = 0
	tr.children = tr.children[:0]
	tr.downX2.Reset()
	tr.finalDown = false
	tr.winnerDown = false
	tr.winnerID = 0
}

// addChild registers a downcast child port, keeping the list sorted.
// Returns false if the port was already a child.
func (tr *tree) addChild(port int) bool {
	i := sort.SearchInts(tr.children, port)
	if i < len(tr.children) && tr.children[i] == port {
		return false
	}
	tr.children = append(tr.children, 0)
	copy(tr.children[i+1:], tr.children[i:])
	tr.children[i] = port
	return true
}

// dOf maps a proxy registration count to its distinctness contribution:
// a proxy is distinct iff exactly one walk of the origin ended there.
func dOf(count int) int {
	if count == 1 {
		return 1
	}
	return 0
}
