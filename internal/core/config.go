// Package core implements the paper's contribution: randomized implicit
// leader election by guess-and-double random walks (Algorithms 1 and 2).
//
// Contenders self-select with probability c1 log n / n, launch
// c2 sqrt(n log n) lazy random-walk tokens per phase with doubling length
// guesses, and stop once the Intersection Property (adjacency, via shared
// proxies, to at least (3/4) c1 log n other contenders) and the Distinctness
// Property (at least (c2/2) sqrt(n log n) distinct proxies) hold. A stopped
// contender with the maximum id in its two-hop id neighborhood I4 and no
// winner sighting elects itself and floods a winner message over the proxy
// overlay.
//
// Realization notes (see DESIGN.md for the full discussion): information
// flows incrementally along the per-contender walk trees — convergecast
// fragments and additive delta corrections upward, id-set floods downward,
// with per-edge duplicate filtering — while all *decisions* follow the
// paper's staged schedule (phase p spans 6T rounds with
// T = Theta(tu log^2 n); the stop/winner check happens at start + 4T, i.e.
// after the paper's walk stage and three exchange rounds would have
// completed). Stopped contenders latch their proxies with a FINAL flood and
// keep exchanging through them, which realizes the paper's "current or
// final guess" proxy definition and closes the cross-iteration relay needs
// of Claims 9-10; both behaviors can be ablated.
package core

import (
	"fmt"
	"math"

	"wcle/internal/protocol"
)

// Config parameterizes an election run. The zero value is NOT valid; use
// DefaultConfig and override fields as needed.
type Config struct {
	// C1 scales the contender sampling rate c1 log(n)/n and the
	// intersection threshold (3/4) c1 log(n). The paper requires a
	// "sufficiently large constant"; the E14 ablation quantifies this.
	C1 float64

	// C2 scales the number of walks per contender, c2 sqrt(n log n), and
	// the distinctness threshold (c2/2) sqrt(n log n). The paper wants
	// c2 >= 2.
	C2 float64

	// LogBase is the base of "log" in every formula above (the paper's
	// asymptotics hide it; the constants don't). Default e.
	LogBase float64

	// Mode selects CONGEST (O(log n)-bit) or the Lemma 12 large
	// (O(log^3 n)-bit) message regime.
	Mode protocol.Mode

	// TMult scales the stage length T = ceil(TMult * tu * ceil(log2 n)^2).
	// 0 means the paper's constant (25/16) * C1. The event-driven engine
	// skips idle rounds, so a generous T costs wall-clock nothing.
	TMult float64

	// MaxWalkLen caps the guess-and-double walk length; a contender whose
	// next guess would exceed it gives up (declares non-leader). 0 means
	// 4n, which is far beyond c3*tmix for every well-connected family.
	MaxWalkLen int

	// FixedWalkLen, when positive, switches to the known-mixing-time
	// baseline of Kutten et al. [25]: a single phase with tu = FixedWalkLen
	// and an unconditional stop after it.
	FixedWalkLen int

	// DisableInactiveExchange reproduces the paper-literal behavior where
	// stopped contenders no longer relay fresh adjacency information
	// (ablation E14a; can yield multiple leaders).
	DisableInactiveExchange bool

	// DisableDistinctness drops the Distinctness Property from the stop
	// rule (ablation E14b).
	DisableDistinctness bool

	// DisablePiggyback stops stamping winner ids on outgoing messages
	// (ablation; the paper's "appends it to all future messages").
	DisablePiggyback bool

	// Resend retransmits each idempotent protocol message (downcast floods
	// and delta-free convergecast fragments) up to Resend extra times per
	// edge — redundancy against lossy delivery (a sim.Drop fault plane).
	// 0 (the default) sends every message exactly once. Retransmissions
	// respect the CONGEST discipline and count toward message complexity.
	Resend int

	// AssumedN, when positive, makes every node believe the network has
	// AssumedN nodes instead of the true size. The paper's Theorem 28
	// experiment (Section 5) runs the algorithm on a dumbbell graph with
	// AssumedN set to one half's size: both halves elect, demonstrating
	// that knowledge of n is critical.
	AssumedN int

	// ForcedContenders, when non-nil, pins the contender set to exactly
	// these node indices instead of sampling (test hook).
	ForcedContenders []int

	// ForcedIDs, when non-nil, pins protocol ids per node index (test
	// hook); unlisted nodes draw randomly.
	ForcedIDs map[int]protocol.ID
}

// DefaultConfig returns the configuration used throughout the experiments.
func DefaultConfig() Config {
	return Config{C1: 6, C2: 2, LogBase: math.E, Mode: protocol.ModeCongest}
}

// Params are the resolved algorithm parameters for an n-node network,
// exposed for reporting and for the contender-concentration experiment.
type Params struct {
	ContenderProb     float64
	Walks             int
	InterThreshold    int
	DistinctThreshold int
	LogN              float64
	MaxWalkLen        int
}

// ResolveParams reports the parameters the algorithm would use on an n-node
// network under cfg.
func ResolveParams(n int, cfg Config) (Params, error) {
	rt, err := newRuntime(n, n, cfg)
	if err != nil {
		return Params{}, err
	}
	return Params{
		ContenderProb:     rt.pCont,
		Walks:             rt.walks,
		InterThreshold:    rt.interT,
		DistinctThreshold: rt.distT,
		LogN:              rt.logN,
		MaxWalkLen:        rt.cfg.MaxWalkLen,
	}, nil
}

// runtime holds the resolved, shared, immutable parameters of one run.
type runtime struct {
	cfg    Config
	n      int
	codec  *protocol.Codec
	sched  *schedule
	logN   float64 // log_base(n)
	walks  int     // c2 sqrt(n log n)
	pCont  float64 // contender probability
	interT int     // intersection threshold (other contenders)
	distT  int     // distinctness threshold (distinct proxies)
	forced map[int]bool
}

// newRuntime resolves parameters for a network the nodes BELIEVE has n
// nodes; actualN is the real node count of the graph (differing only in the
// Theorem 28 experiments driven by Config.AssumedN).
func newRuntime(n, actualN int, cfg Config) (*runtime, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: need n >= 2, got %d", n)
	}
	if actualN < n {
		actualN = n
	}
	if cfg.C1 <= 0 || cfg.C2 <= 0 {
		return nil, fmt.Errorf("core: C1 and C2 must be positive (got %v, %v); start from DefaultConfig", cfg.C1, cfg.C2)
	}
	if cfg.LogBase <= 1 {
		return nil, fmt.Errorf("core: LogBase must exceed 1, got %v", cfg.LogBase)
	}
	codec, err := protocol.NewCodec(n, cfg.Mode)
	if err != nil {
		return nil, err
	}
	logN := math.Log(float64(n)) / math.Log(cfg.LogBase)
	if cfg.MaxWalkLen == 0 {
		cfg.MaxWalkLen = 4 * n
	}
	if cfg.TMult == 0 {
		cfg.TMult = 25.0 / 16.0 * cfg.C1
	}
	rt := &runtime{
		cfg:    cfg,
		n:      n,
		codec:  codec,
		logN:   logN,
		walks:  int(math.Ceil(cfg.C2 * math.Sqrt(float64(n)*logN))),
		pCont:  math.Min(1, cfg.C1*logN/float64(n)),
		interT: int(math.Ceil(0.75 * cfg.C1 * logN)),
		distT:  int(math.Ceil(0.5 * cfg.C2 * math.Sqrt(float64(n)*logN))),
	}
	rt.sched, err = newSchedule(n, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.ForcedContenders != nil {
		rt.forced = make(map[int]bool, len(cfg.ForcedContenders))
		for _, v := range cfg.ForcedContenders {
			if v < 0 || v >= actualN {
				return nil, fmt.Errorf("core: forced contender %d out of range", v)
			}
			rt.forced[v] = true
		}
	}
	return rt, nil
}
