package core

import (
	"math/rand"
	"testing"

	"wcle/internal/graph"
	"wcle/internal/protocol"
	"wcle/internal/spectral"
)

func clique(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := graph.Clique(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func expander(t *testing.T, n, d int, seed int64) *graph.Graph {
	t.Helper()
	g, err := graph.RandomRegular(n, d, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// lowThreshold returns a config with interT == 1, suitable for small forced
// contender sets: ceil(0.75 * 0.3 * ln n) = 1 for n <= ~80.
func lowThreshold() Config {
	cfg := DefaultConfig()
	cfg.C1 = 0.3
	return cfg
}

func TestForcedTwoContendersMaxIDWins(t *testing.T) {
	g := clique(t, 16)
	cfg := lowThreshold()
	cfg.ForcedContenders = []int{3, 9}
	cfg.ForcedIDs = map[int]protocol.ID{3: 100, 9: 200}
	res, err := Run(g, cfg, RunOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Leaders) != 1 || res.Leaders[0] != 9 {
		t.Fatalf("leaders = %v, want [9] (the max id)", res.Leaders)
	}
	if res.LeaderIDs[0] != 200 {
		t.Fatalf("leader id = %d, want 200", res.LeaderIDs[0])
	}
	if !res.Success {
		t.Fatal("Success should be true")
	}
	if len(res.Contenders) != 2 {
		t.Fatalf("contenders = %v", res.Contenders)
	}
}

func TestForcedContendersAcrossSeeds(t *testing.T) {
	// The max-id forced contender must win regardless of the seed (walk
	// randomness must not change the outcome, only the cost).
	g := expander(t, 32, 4, 11)
	for seed := int64(0); seed < 8; seed++ {
		cfg := lowThreshold()
		cfg.ForcedContenders = []int{1, 7, 20}
		cfg.ForcedIDs = map[int]protocol.ID{1: 10, 7: 30, 20: 20}
		res, err := Run(g, cfg, RunOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Leaders) != 1 || res.Leaders[0] != 7 {
			t.Fatalf("seed %d: leaders = %v, want [7]", seed, res.Leaders)
		}
	}
}

func TestSingleContenderCannotSatisfyIntersection(t *testing.T) {
	// With one contender, the Intersection Property (adjacency to >= 3/4 c1
	// log n OTHER contenders) is unsatisfiable: the contender must exhaust
	// its guesses and fail. This is the algorithm's documented behavior
	// outside Lemma 1's w.h.p. regime.
	g := clique(t, 16)
	cfg := DefaultConfig()
	cfg.ForcedContenders = []int{4}
	cfg.MaxWalkLen = 8 // keep the run short
	res, err := Run(g, cfg, RunOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Leaders) != 0 {
		t.Fatalf("leaders = %v, want none", res.Leaders)
	}
	if len(res.Failed) != 1 || res.Failed[0] != 4 {
		t.Fatalf("failed = %v, want [4]", res.Failed)
	}
	if res.Success {
		t.Fatal("Success must be false")
	}
}

func TestNoContenders(t *testing.T) {
	g := clique(t, 8)
	cfg := DefaultConfig()
	cfg.ForcedContenders = []int{} // non-nil empty: nobody runs
	res, err := Run(g, cfg, RunOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Leaders) != 0 || len(res.Contenders) != 0 {
		t.Fatalf("unexpected activity: %+v", res)
	}
	if res.Metrics.Messages != 0 {
		t.Fatalf("messages = %d, want 0", res.Metrics.Messages)
	}
}

// TestAtMostOneLeaderInvariant is the central safety test: across seeds and
// families, the algorithm may fail to elect (zero leaders) but must never
// elect two.
func TestAtMostOneLeaderInvariant(t *testing.T) {
	graphs := []*graph.Graph{
		clique(t, 24),
		expander(t, 64, 6, 3),
	}
	if hc, err := graph.Hypercube(5, nil); err == nil {
		graphs = append(graphs, hc)
	} else {
		t.Fatal(err)
	}
	for _, g := range graphs {
		for seed := int64(0); seed < 6; seed++ {
			res, err := Run(g, DefaultConfig(), RunOptions{Seed: seed})
			if err != nil {
				t.Fatalf("%s seed %d: %v", g.Name(), seed, err)
			}
			if len(res.Leaders) > 1 {
				t.Fatalf("%s seed %d: MULTIPLE LEADERS %v", g.Name(), seed, res.Leaders)
			}
		}
	}
}

func TestUniqueLeaderSuccessRate(t *testing.T) {
	// Lemma 11: exactly one leader w.h.p. At n=64 with default constants
	// the guarantee is asymptotic; we require a generous 80% success over
	// 10 seeds (empirically it is ~100%).
	g := expander(t, 64, 6, 9)
	wins := 0
	trials := 10
	for seed := int64(0); seed < int64(trials); seed++ {
		res, err := Run(g, DefaultConfig(), RunOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Success {
			wins++
		}
	}
	if wins < trials*8/10 {
		t.Fatalf("success rate %d/%d below 80%%", wins, trials)
	}
}

func TestDeterministicReplay(t *testing.T) {
	g := expander(t, 48, 4, 21)
	r1, err := Run(g, DefaultConfig(), RunOptions{Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(g, DefaultConfig(), RunOptions{Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Metrics.Messages != r2.Metrics.Messages || r1.Rounds != r2.Rounds {
		t.Fatalf("replay diverged: %d/%d vs %d/%d msgs/rounds",
			r1.Metrics.Messages, r1.Rounds, r2.Metrics.Messages, r2.Rounds)
	}
	if len(r1.Leaders) != len(r2.Leaders) || (len(r1.Leaders) == 1 && r1.Leaders[0] != r2.Leaders[0]) {
		t.Fatalf("leaders diverged: %v vs %v", r1.Leaders, r2.Leaders)
	}
}

func TestConcurrentEngineEquivalence(t *testing.T) {
	g := expander(t, 48, 4, 22)
	seq, err := Run(g, DefaultConfig(), RunOptions{Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(g, DefaultConfig(), RunOptions{Seed: 44, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Metrics.Messages != par.Metrics.Messages || seq.Rounds != par.Rounds {
		t.Fatalf("engines diverge: %d/%d vs %d/%d",
			seq.Metrics.Messages, seq.Rounds, par.Metrics.Messages, par.Rounds)
	}
	if len(seq.Leaders) != len(par.Leaders) || (len(seq.Leaders) == 1 && seq.Leaders[0] != par.Leaders[0]) {
		t.Fatalf("leaders diverge: %v vs %v", seq.Leaders, par.Leaders)
	}
}

func TestKnownTmixBaseline(t *testing.T) {
	// The [25]-style baseline: one phase of length c3 * tmix, unconditional
	// stop. On a clique tmix is tiny.
	g := clique(t, 64)
	tmix, err := spectral.MixingTime(g, 1000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.FixedWalkLen = 2 * tmix
	res, err := Run(g, cfg, RunOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.PhasesUsed != 1 {
		t.Fatalf("phases = %d, want 1", res.PhasesUsed)
	}
	if len(res.Leaders) != 1 {
		t.Fatalf("leaders = %v, want one", res.Leaders)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("failed = %v, want none (unconditional stop)", res.Failed)
	}
}

func TestGuessDoubleTracksMixing(t *testing.T) {
	// Lemma 3/6: the final guess settles at O(tmix). We check the final tu
	// of every stopped contender is within [1, 32*tmix] on an expander (the
	// constant band is generous; the shape is what matters).
	g := expander(t, 128, 8, 5)
	tmix, err := spectral.MixingTimeSampled(g, spectral.DefaultEps(g.N()), 100000, []int{0, 7, 99})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, DefaultConfig(), RunOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stopped) == 0 {
		t.Fatal("no contender stopped")
	}
	for _, v := range res.Stopped {
		tu := res.FinalTu[v]
		if tu < 1 || tu > 32*tmix {
			t.Fatalf("contender %d final tu %d outside [1, 32*tmix=%d]", v, tu, 32*tmix)
		}
	}
}

func TestLargeMessageModeUsesFewerMessages(t *testing.T) {
	// Lemma 12: with O(log^3 n) message sizes the count drops (id sets are
	// not chunked).
	g := expander(t, 64, 6, 13)
	congest, err := Run(g, DefaultConfig(), RunOptions{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	cfgL := DefaultConfig()
	cfgL.Mode = protocol.ModeLarge
	large, err := Run(g, cfgL, RunOptions{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if large.Metrics.Messages >= congest.Metrics.Messages {
		t.Fatalf("large mode %d messages >= congest %d", large.Metrics.Messages, congest.Metrics.Messages)
	}
	if !large.Success || !congest.Success {
		t.Fatalf("both modes should elect: large=%v congest=%v", large.Success, congest.Success)
	}
}

func TestBudgetedRunCannotElect(t *testing.T) {
	// With a trivial budget no information flows: nobody should elect.
	g := clique(t, 32)
	res, err := Run(g, DefaultConfig(), RunOptions{Seed: 3, Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Dropped == 0 {
		t.Fatal("expected dropped messages under budget")
	}
	if len(res.Leaders) != 0 {
		t.Fatalf("leaders = %v under a 10-message budget", res.Leaders)
	}
}

func TestAblationsRun(t *testing.T) {
	g := expander(t, 48, 4, 17)
	for _, mod := range []func(*Config){
		func(c *Config) { c.DisableDistinctness = true },
		func(c *Config) { c.DisableInactiveExchange = true },
		func(c *Config) { c.DisablePiggyback = true },
	} {
		cfg := DefaultConfig()
		mod(&cfg)
		res, err := Run(g, cfg, RunOptions{Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Contenders) == 0 {
			t.Fatal("no contenders sampled")
		}
	}
}

func TestContenderAccounting(t *testing.T) {
	g := expander(t, 64, 6, 31)
	res, err := Run(g, DefaultConfig(), RunOptions{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	// Every contender is exactly one of stopped / suppressed / failed.
	classified := len(res.Stopped) + len(res.Suppressed) + len(res.Failed)
	if classified != len(res.Contenders) {
		t.Fatalf("classification mismatch: %d+%d+%d != %d contenders",
			len(res.Stopped), len(res.Suppressed), len(res.Failed), len(res.Contenders))
	}
	// Every contender has a final tu.
	for _, v := range res.Contenders {
		if res.FinalTu[v] < 1 {
			t.Fatalf("contender %d missing final tu", v)
		}
	}
	// Leaders must be stopped contenders.
	for _, l := range res.Leaders {
		found := false
		for _, s := range res.Stopped {
			if s == l {
				found = true
			}
		}
		if !found {
			t.Fatalf("leader %d not among stopped", l)
		}
	}
	// Parameter reporting sanity.
	if res.Walks < 1 || res.InterThreshold < 1 || res.DistinctThreshold < 1 {
		t.Fatalf("thresholds missing: %+v", res)
	}
}

func TestMessageKindsPresent(t *testing.T) {
	g := clique(t, 24)
	res, err := Run(g, DefaultConfig(), RunOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{protocol.KindToken, protocol.KindUp, protocol.KindDown} {
		if res.Metrics.ByKind[kind] == 0 {
			t.Fatalf("no %q messages recorded: %v", kind, res.Metrics.ByKind)
		}
	}
	if res.Metrics.Bits <= res.Metrics.Messages {
		t.Fatal("bit accounting looks wrong")
	}
}

func TestRunValidation(t *testing.T) {
	g := clique(t, 8)
	if _, err := Run(g, Config{}, RunOptions{}); err == nil {
		t.Fatal("zero config must be rejected")
	}
}
