package core

import (
	"fmt"

	"wcle/internal/engine"
	"wcle/internal/graph"
	"wcle/internal/obs"
	"wcle/internal/protocol"
	"wcle/internal/sim"
)

// RunOptions are the simulation-level knobs of one election run.
type RunOptions struct {
	// Seed drives all randomness (node ids, contender coins, walks).
	Seed int64
	// Budget, when positive, drops messages beyond the budget (the
	// lower-bound experiments of Section 4).
	Budget int64
	// Concurrent selects the goroutine-based engine.
	Concurrent bool
	// Observer taps every accepted send.
	Observer sim.Observer
	// LeanMetrics skips per-kind message accounting on the simulator's
	// send hot path (Result.Metrics.ByKind stays empty). Bulk experiment
	// trials enable it; use a trace.KindCounter observer when per-kind
	// counts are still wanted.
	LeanMetrics bool
	// MaxRounds overrides the default round cap (0 = derived from the
	// schedule).
	MaxRounds int
	// Fault, when non-nil, is the run's adversary (drops, delays, crashes;
	// see sim.FaultPlane). nil means perfect delivery.
	Fault sim.FaultPlane
	// FaultObserver, when non-nil, receives every fault event of the run.
	FaultObserver sim.FaultObserver
	// DebugFrom stamps sender indices on delivered envelopes
	// (sim.Config.DebugFrom). Debugging only: the model is anonymous, and
	// the algotest conformance suite asserts runs are unchanged by it.
	DebugFrom bool
	// Remote, when non-nil, hosts this run's shard of a distributed
	// election (sim.Config.Remote; see internal/cluster).
	Remote sim.RemotePlane
	// Tracer, when non-nil, records the run's spans and instants
	// (sim.Config.Tracer); strictly observational.
	Tracer *obs.Tracer
}

// Result summarizes one election run.
type Result struct {
	// Leaders lists node indices with the leader flag raised. Success
	// means exactly one.
	Leaders   []int
	LeaderIDs []protocol.ID
	Success   bool

	// Contenders lists the self-selected candidate nodes; Stopped those
	// that satisfied both properties, Suppressed those that quit after a
	// winner sighting, Failed those that hit the walk-length cap.
	Contenders []int
	Stopped    []int
	Suppressed []int
	Failed     []int

	// FinalTu maps contender node index -> last walk-length guess.
	FinalTu map[int]int
	// PhasesUsed is the highest phase index any contender reached, plus 1.
	PhasesUsed int

	// LeaderRound is the round of the (first) self-election, -1 if none.
	LeaderRound int
	// Rounds is the simulated round at which all activity ceased.
	Rounds int

	Metrics    sim.Metrics
	StaleDrops int64

	// ProxyTotals maps contender node index -> total walk completions
	// registered network-wide for that contender's last phase. In an
	// unbudgeted run every launched token eventually completes, so this
	// equals Walks for every contender whose last phase ran fully (the
	// conservation invariant; see TestTokenConservation).
	ProxyTotals map[int]int
	// DistinctProxies maps contender node index -> nodes where exactly one
	// of its walks ended (the Distinctness Property's quantity).
	DistinctProxies map[int]int

	// Resolved parameters, for reporting.
	Walks             int
	InterThreshold    int
	DistinctThreshold int
	ContenderProb     float64
}

// Instance is one run's worth of per-node election machines. It implements
// engine.Instance, so the generic engine (and through it the cluster
// runtime) can drive the paper's algorithm like any other protocol; Collect
// folds the machines' final state into the native Result afterwards.
type Instance struct {
	rt    *runtime
	nodes []*node
}

// Build constructs the per-node machines of one election on g under cfg.
func Build(g *graph.Graph, cfg Config) (*Instance, error) {
	believedN := g.N()
	if cfg.AssumedN > 0 {
		believedN = cfg.AssumedN
	}
	rt, err := newRuntime(believedN, g.N(), cfg)
	if err != nil {
		return nil, err
	}
	nodes := make([]*node, g.N())
	for v := 0; v < g.N(); v++ {
		nodes[v] = newNode(rt, v, g.Degree(v))
	}
	return &Instance{rt: rt, nodes: nodes}, nil
}

// Node implements engine.Instance.
func (i *Instance) Node(v int) engine.Node { return i.nodes[v] }

// Limits implements engine.Instance: the CONGEST cap of the resolved codec
// and the schedule-derived default round cap.
func (i *Instance) Limits() engine.Limits {
	last := i.rt.sched.numPhases() - 1
	return engine.Limits{
		MaxMessageBits: i.rt.codec.Cap(),
		MaxRounds:      i.rt.sched.ends[last] + 2*i.rt.sched.stage[last] + 1000,
	}
}

// Collect folds the instance's post-run node state into the native Result.
func (i *Instance) Collect(metrics sim.Metrics) *Result {
	return collect(i.nodes, metrics, i.rt)
}

// Run executes one election of the paper's algorithm (or the known-tmix
// baseline when cfg.FixedWalkLen is set) on g.
func Run(g *graph.Graph, cfg Config, opts RunOptions) (*Result, error) {
	inst, err := Build(g, cfg)
	if err != nil {
		return nil, err
	}
	procs := make([]sim.Process, len(inst.nodes))
	for v, nd := range inst.nodes {
		procs[v] = nd
	}
	lim := inst.Limits()
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = lim.MaxRounds
	}
	simCfg := sim.Config{
		Graph:          g,
		Seed:           opts.Seed,
		MaxRounds:      maxRounds,
		MaxMessageBits: lim.MaxMessageBits,
		MessageBudget:  opts.Budget,
		Concurrent:     opts.Concurrent,
		LeanMetrics:    opts.LeanMetrics,
		DebugFrom:      opts.DebugFrom,
		Fault:          opts.Fault,
		Observer:       opts.Observer,
		FaultObserver:  opts.FaultObserver,
		Remote:         opts.Remote,
		Tracer:         opts.Tracer,
	}
	metrics, err := sim.Run(simCfg, procs)
	if err != nil {
		return nil, fmt.Errorf("core: election run failed: %w", err)
	}
	return inst.Collect(metrics), nil
}

func collect(nodes []*node, metrics sim.Metrics, rt *runtime) *Result {
	res := &Result{
		FinalTu:           make(map[int]int),
		LeaderRound:       -1,
		Rounds:            metrics.FinalRound,
		Metrics:           metrics,
		Walks:             rt.walks,
		InterThreshold:    rt.interT,
		DistinctThreshold: rt.distT,
		ContenderProb:     rt.pCont,
		ProxyTotals:       make(map[int]int),
		DistinctProxies:   make(map[int]int),
	}
	// Network-wide proxy accounting per contender, keyed by protocol id.
	idToIdx := make(map[protocol.ID]int)
	phaseOf := make(map[protocol.ID]int)
	for _, nd := range nodes {
		if nd.contender {
			idToIdx[nd.id] = nd.idx
			phaseOf[nd.id] = nd.phase
		}
	}
	for _, nd := range nodes {
		for i, origin := range nd.origins {
			tr := nd.treev[i]
			idx, ok := idToIdx[origin]
			if !ok || tr.phase != phaseOf[origin] || tr.proxyCount == 0 {
				continue
			}
			res.ProxyTotals[idx] += tr.proxyCount
			if tr.proxyCount == 1 {
				res.DistinctProxies[idx]++
			}
		}
	}
	for _, nd := range nodes {
		res.StaleDrops += nd.staleDrops
		if !nd.contender {
			continue
		}
		res.Contenders = append(res.Contenders, nd.idx)
		if nd.phase+1 > res.PhasesUsed {
			res.PhasesUsed = nd.phase + 1
		}
		if nd.phase >= 0 {
			res.FinalTu[nd.idx] = rt.sched.tus[nd.phase]
		}
		if nd.stopped {
			res.Stopped = append(res.Stopped, nd.idx)
		}
		if nd.suppressed {
			res.Suppressed = append(res.Suppressed, nd.idx)
		}
		if nd.failed {
			res.Failed = append(res.Failed, nd.idx)
		}
		if nd.leader {
			res.Leaders = append(res.Leaders, nd.idx)
			res.LeaderIDs = append(res.LeaderIDs, nd.id)
			if res.LeaderRound == -1 || nd.leadRound < res.LeaderRound {
				res.LeaderRound = nd.leadRound
			}
		}
	}
	res.Success = len(res.Leaders) == 1
	return res
}
