package core

import (
	"strings"
	"testing"

	"wcle/internal/graph"
	"wcle/internal/sim"
)

// A shared stateful fault plane across concurrent trials would race;
// RunMany must refuse it and point at NewFault.
func TestRunManyRejectsSharedFault(t *testing.T) {
	g, err := graph.Clique(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunMany(g, DefaultConfig(), BatchOptions{
		Base:   RunOptions{Seed: 1, Fault: &sim.Drop{P: 0.1}},
		Trials: 2,
	})
	if err == nil || !strings.Contains(err.Error(), "NewFault") {
		t.Fatalf("shared Base.Fault not rejected: %v", err)
	}
	// The same plane through NewFault (fresh instance per trial) is fine.
	res, err := RunMany(g, DefaultConfig(), BatchOptions{
		Base:     RunOptions{Seed: 1, LeanMetrics: true},
		Trials:   2,
		NewFault: func(int) sim.FaultPlane { return &sim.Drop{P: 0.1} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 2 || res.One+res.Zero+res.Multi != 2 {
		t.Fatalf("batch outcome inconsistent: %+v", res)
	}
}
