package core

import (
	"strings"
	"testing"

	"wcle/internal/graph"
	"wcle/internal/sim"
)

// A shared stateful fault plane across concurrent trials would race;
// RunMany must refuse it and point at NewFault.
func TestRunManyRejectsSharedFault(t *testing.T) {
	g, err := graph.Clique(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunMany(g, DefaultConfig(), BatchOptions{
		Base:   RunOptions{Seed: 1, Fault: &sim.Drop{P: 0.1}},
		Trials: 2,
	})
	if err == nil || !strings.Contains(err.Error(), "NewFault") {
		t.Fatalf("shared Base.Fault not rejected: %v", err)
	}
	// The same plane through NewFault (fresh instance per trial) is fine.
	res, err := RunMany(g, DefaultConfig(), BatchOptions{
		Base:     RunOptions{Seed: 1, LeanMetrics: true},
		Trials:   2,
		NewFault: func(int) sim.FaultPlane { return &sim.Drop{P: 0.1} },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 2 || res.One+res.Zero+res.Multi != 2 {
		t.Fatalf("batch outcome inconsistent: %+v", res)
	}
}

// CollectTrials must expose per-trial vectors that are consistent with the
// batch totals and independent of the worker count.
func TestRunManyCollectTrials(t *testing.T) {
	g, err := graph.Clique(12, nil)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *BatchResult {
		res, err := RunMany(g, DefaultConfig(), BatchOptions{
			Base:          RunOptions{Seed: 7, LeanMetrics: true},
			Trials:        6,
			Workers:       workers,
			CollectTrials: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run(3)
	if len(res.TrialOutcomes) != 6 || len(res.TrialRounds) != 6 ||
		len(res.TrialMessages) != 6 || len(res.TrialContenders) != 6 {
		t.Fatalf("per-trial vectors not collected: %+v", res)
	}
	var msgs, rounds int64
	var one, zero, multi, cont int
	for i := range res.TrialOutcomes {
		switch res.TrialOutcomes[i] {
		case 0:
			zero++
		case 1:
			one++
		default:
			multi++
		}
		msgs += res.TrialMessages[i]
		rounds += int64(res.TrialRounds[i])
		cont += int(res.TrialContenders[i])
	}
	if one != res.One || zero != res.Zero || multi != res.Multi {
		t.Fatalf("outcome vector disagrees with totals: %+v", res)
	}
	if msgs != res.Messages || rounds != res.Rounds || cont != res.Contenders {
		t.Fatalf("per-trial sums disagree with totals: %+v", res)
	}
	// Sharding must not change what each trial saw.
	other := run(1)
	for i := range res.TrialOutcomes {
		if res.TrialOutcomes[i] != other.TrialOutcomes[i] ||
			res.TrialRounds[i] != other.TrialRounds[i] ||
			res.TrialMessages[i] != other.TrialMessages[i] {
			t.Fatalf("trial %d differs across worker counts", i)
		}
	}
	// Off by default.
	if plain, err := RunMany(g, DefaultConfig(), BatchOptions{
		Base: RunOptions{Seed: 7, LeanMetrics: true}, Trials: 2,
	}); err != nil || plain.TrialOutcomes != nil {
		t.Fatalf("per-trial vectors should be nil without CollectTrials (%v)", err)
	}
}
