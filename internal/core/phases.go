package core

import (
	"wcle/internal/sim"
)

// PhaseObserver attributes every message of a run to the guess-and-double
// phase whose schedule window it was sent in, split by message kind. It
// shows where the algorithm's cost concentrates (the last phase dominates:
// a geometric series, which is why guess-and-double only costs a constant
// factor over knowing tmix).
type PhaseObserver struct {
	sched *schedule
	// Messages[p] counts messages sent during phase p's window.
	Messages []int64
	// Kinds[p] splits phase p's messages by kind.
	Kinds []map[string]int64
	// Bits[p] sums message sizes per phase.
	Bits []int64
}

var _ sim.Observer = (*PhaseObserver)(nil)

// NewPhaseObserver builds an observer for runs of the given network size
// and configuration (the schedule is derived exactly as the nodes derive
// it).
func NewPhaseObserver(n int, cfg Config) (*PhaseObserver, error) {
	rt, err := newRuntime(n, n, cfg)
	if err != nil {
		return nil, err
	}
	p := rt.sched.numPhases()
	o := &PhaseObserver{
		sched:    rt.sched,
		Messages: make([]int64, p),
		Kinds:    make([]map[string]int64, p),
		Bits:     make([]int64, p),
	}
	for i := range o.Kinds {
		o.Kinds[i] = make(map[string]int64)
	}
	return o, nil
}

// OnSend implements sim.Observer.
func (o *PhaseObserver) OnSend(round int, from, fromPort, to, toPort int, m sim.Message) {
	p := o.sched.phaseAt(round)
	o.Messages[p]++
	o.Bits[p] += int64(m.Bits())
	o.Kinds[p][m.Kind()]++
}

// UsedPhases returns the highest phase index with any traffic, plus one.
func (o *PhaseObserver) UsedPhases() int {
	for p := len(o.Messages) - 1; p >= 0; p-- {
		if o.Messages[p] > 0 {
			return p + 1
		}
	}
	return 0
}

// Total returns the total message count across phases.
func (o *PhaseObserver) Total() int64 {
	var t int64
	for _, c := range o.Messages {
		t += c
	}
	return t
}
