package core

import (
	"testing"

	"wcle/internal/protocol"
)

func testSchedule(t *testing.T, n int, cfg Config) *schedule {
	t.Helper()
	s, err := newSchedule(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestScheduleDoubling(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxWalkLen = 16
	cfg.TMult = 2
	s := testSchedule(t, 64, cfg)
	if s.numPhases() != 5 { // tu = 1,2,4,8,16
		t.Fatalf("phases = %d, want 5", s.numPhases())
	}
	for p := 0; p < s.numPhases(); p++ {
		if s.tus[p] != 1<<p {
			t.Fatalf("tu[%d] = %d", p, s.tus[p])
		}
		if s.decides[p] != s.starts[p]+4*s.stage[p] {
			t.Fatal("decide must be start + 4T")
		}
		if s.ends[p] != s.starts[p]+6*s.stage[p] {
			t.Fatal("end must be start + 6T")
		}
		if p > 0 && s.starts[p] != s.ends[p-1] {
			t.Fatal("phases must be contiguous")
		}
		if s.stage[p] <= s.tus[p] {
			t.Fatalf("stage %d must exceed the walk length %d", s.stage[p], s.tus[p])
		}
	}
}

func TestScheduleFixedMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FixedWalkLen = 12
	s := testSchedule(t, 64, cfg)
	if s.numPhases() != 1 || s.tus[0] != 12 {
		t.Fatalf("fixed mode schedule wrong: %+v", s)
	}
}

func TestSchedulePhaseAt(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxWalkLen = 8
	cfg.TMult = 1
	s := testSchedule(t, 16, cfg)
	for p := 0; p < s.numPhases(); p++ {
		if got := s.phaseAt(s.starts[p]); got != p {
			t.Fatalf("phaseAt(start[%d]) = %d", p, got)
		}
		if got := s.phaseAt(s.ends[p] - 1); got != p {
			t.Fatalf("phaseAt(end[%d]-1) = %d", p, got)
		}
	}
	if got := s.phaseAt(s.ends[s.numPhases()-1] + 10_000); got != s.numPhases()-1 {
		t.Fatalf("phaseAt beyond schedule = %d", got)
	}
	if got := s.phaseAt(0); got != 0 {
		t.Fatalf("phaseAt(0) = %d", got)
	}
}

func TestRuntimeThresholds(t *testing.T) {
	cfg := DefaultConfig()
	rt, err := newRuntime(1024, 1024, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// ln(1024) ~ 6.93: pCont ~ 6*6.93/1024, interT = ceil(0.75*6*6.93) = 32,
	// walks = ceil(2*sqrt(1024*6.93)) = ceil(168.5) = 169, distT = 85.
	if rt.interT != 32 {
		t.Fatalf("interT = %d, want 32", rt.interT)
	}
	if rt.walks != 169 {
		t.Fatalf("walks = %d, want 169", rt.walks)
	}
	if rt.distT != 85 {
		t.Fatalf("distT = %d, want 85", rt.distT)
	}
	if rt.pCont <= 0 || rt.pCont >= 1 {
		t.Fatalf("pCont = %v", rt.pCont)
	}
	if rt.cfg.TMult != 25.0/16.0*cfg.C1 {
		t.Fatalf("default TMult = %v", rt.cfg.TMult)
	}
	if rt.cfg.MaxWalkLen != 4096 {
		t.Fatalf("default MaxWalkLen = %d", rt.cfg.MaxWalkLen)
	}
}

func TestRuntimeValidation(t *testing.T) {
	if _, err := newRuntime(1, 1, DefaultConfig()); err == nil {
		t.Fatal("n=1 should fail")
	}
	if _, err := newRuntime(16, 16, Config{}); err == nil {
		t.Fatal("zero config should fail (C1=0)")
	}
	cfg := DefaultConfig()
	cfg.LogBase = 1
	if _, err := newRuntime(16, 16, cfg); err == nil {
		t.Fatal("LogBase <= 1 should fail")
	}
	cfg = DefaultConfig()
	cfg.ForcedContenders = []int{99}
	if _, err := newRuntime(16, 16, cfg); err == nil {
		t.Fatal("out-of-range forced contender should fail")
	}
	cfg = DefaultConfig()
	cfg.Mode = protocol.Mode(42)
	if _, err := newRuntime(16, 16, cfg); err == nil {
		t.Fatal("bad mode should fail")
	}
}
