package core

import (
	"testing"

	"wcle/internal/graph"
)

// TestSmokeClique is the first end-to-end sanity check: a small clique with
// default parameters must elect exactly one leader.
func TestSmokeClique(t *testing.T) {
	g, err := graph.Clique(32, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, DefaultConfig(), RunOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("contenders=%d stopped=%d failed=%d leaders=%d phases=%d rounds=%d msgs=%d byKind=%v",
		len(res.Contenders), len(res.Stopped), len(res.Failed), len(res.Leaders),
		res.PhasesUsed, res.Rounds, res.Metrics.Messages, res.Metrics.ByKind)
	if len(res.Leaders) != 1 {
		t.Fatalf("leaders = %v, want exactly one", res.Leaders)
	}
}
