package core

import (
	"math/rand"
	"testing"

	"wcle/internal/graph"
)

// TestSoakNeverTwoLeaders is a wider sweep of the safety invariant: many
// seeds across heterogeneous topologies, including poorly connected ones
// where elections legitimately fail — but never split.
func TestSoakNeverTwoLeaders(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	type tc struct {
		name string
		mk   func(seed int64) (*graph.Graph, error)
		cfg  func() Config
	}
	cases := []tc{
		{
			name: "clique-20",
			mk:   func(int64) (*graph.Graph, error) { return graph.Clique(20, nil) },
			cfg:  DefaultConfig,
		},
		{
			name: "rr4-40",
			mk: func(seed int64) (*graph.Graph, error) {
				return graph.RandomRegular(40, 4, rand.New(rand.NewSource(seed)))
			},
			cfg: DefaultConfig,
		},
		{
			name: "torus-6x6",
			mk:   func(int64) (*graph.Graph, error) { return graph.Torus2D(6, 6, nil) },
			cfg:  DefaultConfig,
		},
		{
			name: "barbell-8-capped",
			mk:   func(seed int64) (*graph.Graph, error) { return graph.Barbell(8, rand.New(rand.NewSource(seed))) },
			cfg: func() Config {
				c := DefaultConfig()
				c.MaxWalkLen = 16 // cap below the barbell's mixing: failures expected, splits forbidden
				return c
			},
		},
		{
			name: "cycle-24",
			mk:   func(int64) (*graph.Graph, error) { return graph.Cycle(24, nil) },
			cfg: func() Config {
				c := DefaultConfig()
				c.MaxWalkLen = 64
				return c
			},
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var elected int
			for seed := int64(0); seed < 8; seed++ {
				g, err := c.mk(seed)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(g, c.cfg(), RunOptions{Seed: seed * 31})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if len(res.Leaders) > 1 {
					t.Fatalf("seed %d: SPLIT — leaders %v", seed, res.Leaders)
				}
				if res.Success {
					elected++
				}
			}
			t.Logf("%s: %d/8 elections succeeded (failures allowed, splits not)", c.name, elected)
		})
	}
}
