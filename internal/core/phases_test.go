package core

import (
	"math/rand"
	"testing"

	"wcle/internal/graph"
)

func TestPhaseObserverAccounting(t *testing.T) {
	g, err := graph.RandomRegular(48, 4, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	obs, err := NewPhaseObserver(g.N(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, cfg, RunOptions{Seed: 3, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if obs.Total() != res.Metrics.Messages {
		t.Fatalf("phase totals %d != metrics %d", obs.Total(), res.Metrics.Messages)
	}
	if obs.UsedPhases() < res.PhasesUsed {
		t.Fatalf("used phases %d < contender phases %d", obs.UsedPhases(), res.PhasesUsed)
	}
	// Per-kind splits add up per phase.
	for p := range obs.Messages {
		var sum int64
		for _, c := range obs.Kinds[p] {
			sum += c
		}
		if sum != obs.Messages[p] {
			t.Fatalf("phase %d kind split %d != %d", p, sum, obs.Messages[p])
		}
		if obs.Messages[p] > 0 && obs.Bits[p] <= 0 {
			t.Fatalf("phase %d has messages but no bits", p)
		}
	}
	// The geometric-series shape: the last active phase should carry a
	// large share of the traffic (at least as much as the first).
	last := obs.UsedPhases() - 1
	if last > 0 && obs.Messages[last] < obs.Messages[0] {
		t.Logf("note: last phase %d lighter than phase 0 (%d vs %d) — acceptable but unusual",
			last, obs.Messages[last], obs.Messages[0])
	}
}

func TestPhaseObserverValidation(t *testing.T) {
	if _, err := NewPhaseObserver(1, DefaultConfig()); err == nil {
		t.Fatal("n=1 should fail")
	}
	if _, err := NewPhaseObserver(16, Config{}); err == nil {
		t.Fatal("zero config should fail")
	}
}

func TestPhaseObserverEmptyRun(t *testing.T) {
	g, err := graph.Clique(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ForcedContenders = []int{}
	obs, err := NewPhaseObserver(g.N(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, cfg, RunOptions{Seed: 1, Observer: obs}); err != nil {
		t.Fatal(err)
	}
	if obs.Total() != 0 || obs.UsedPhases() != 0 {
		t.Fatalf("empty run recorded traffic: %d/%d", obs.Total(), obs.UsedPhases())
	}
}
