package core

import (
	"testing"

	"wcle/internal/graph"
	"wcle/internal/spectral"
)

// TestTorusElection exercises the algorithm on a slowly mixing but still
// tractable family (tmix = Theta(n)): guess-and-double must track the much
// larger mixing time and still elect exactly one leader.
func TestTorusElection(t *testing.T) {
	if testing.Short() {
		t.Skip("torus elections take seconds; skipped in -short mode")
	}
	for _, side := range []int{8, 12} {
		g, err := graph.Torus2D(side, side, nil)
		if err != nil {
			t.Fatal(err)
		}
		tmix, err := spectral.MixingTimeSampled(g, spectral.DefaultEps(g.N()), 1_000_000, []int{0})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(g, DefaultConfig(), RunOptions{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Leaders) > 1 {
			t.Fatalf("torus %dx%d: multiple leaders %v", side, side, res.Leaders)
		}
		// Guess-and-double must not run past O(tmix): the largest final
		// guess stays within a generous constant of the measured tmix.
		for _, v := range res.Stopped {
			if res.FinalTu[v] > 16*tmix {
				t.Fatalf("torus %dx%d: final tu %d >> tmix %d", side, side, res.FinalTu[v], tmix)
			}
		}
		if len(res.Stopped) == 0 {
			t.Fatalf("torus %dx%d: nobody stopped (tmix=%d)", side, side, tmix)
		}
	}
}
