package core

import (
	"fmt"
	"slices"
	"sort"

	"wcle/internal/protocol"
	"wcle/internal/sim"
)

// node is the per-node process. Every node relays tokens and tree traffic;
// contender nodes additionally run the guess-and-double phase logic.
type node struct {
	rt  *runtime
	idx int

	initialized bool
	id          protocol.ID
	contender   bool

	holder *protocol.Holder
	outbox *protocol.Outbox
	pool   *protocol.MsgPool

	// Walk trees, one per known origin, as parallel slices sorted by
	// origin id (binary-search lookup; the map this replaces dominated the
	// step hot path).
	origins []protocol.ID
	treev   []*tree

	// Scratch buffers for assembling id fragments handed to the outbox
	// (which copies); one per call-graph level so nested use never aliases.
	scrRoot  []protocol.ID // rootConsumeX1's fresh ids
	scrRelay []protocol.ID // relayDownX2's fresh ids
	scrStore []protocol.ID // storeI2's fresh ids
	scrI3    []protocol.ID // registerProxy's I3 snapshot
	scrChild []protocol.ID // noteChild's sorted down-flood prefix
	scrOne   [1]protocol.ID

	winSeen      protocol.ID
	winProxyDone bool // "the first time a proxy receives a winner message"
	winRootDone  bool // "the first time a contender receives a winner message"

	// Contender state.
	active     bool
	stopped    bool // satisfied both properties
	suppressed bool // saw a winner while active; gave up
	failed     bool // hit the walk-length cap
	leader     bool
	phase      int
	awaitStart int // round of the next phase start (-1 when none)

	dSum, pSum int
	i2         protocol.FastSet
	i2max      protocol.ID
	i4max      protocol.ID

	stopRound, leadRound int
	staleDrops           int64
}

var _ sim.Process = (*node)(nil)

// Output is the node's election decision vector [leader(0/1),
// contender(0/1), drawn id (0 when not a contender)] — the engine-level
// view of the state Collect folds into the richer native Result.
func (nd *node) Output() []int64 {
	leader, contender := int64(0), int64(0)
	if nd.leader {
		leader = 1
	}
	if nd.contender {
		contender = 1
	}
	return []int64{leader, contender, int64(nd.id)}
}

func newNode(rt *runtime, idx, degree int) *node {
	pool := &protocol.MsgPool{}
	ob := protocol.NewOutbox(rt.codec, degree)
	ob.Pool = pool
	ob.Resend = rt.cfg.Resend
	return &node{
		rt:         rt,
		idx:        idx,
		holder:     protocol.NewHolder(),
		outbox:     ob,
		pool:       pool,
		phase:      -1,
		awaitStart: -1,
		stopRound:  -1,
		leadRound:  -1,
	}
}

// tree returns the walk tree for origin, or nil. Closure-free binary
// search: this lookup runs once per delivered message.
func (nd *node) tree(origin protocol.ID) *tree {
	v := nd.origins
	lo, hi := 0, len(v)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v[mid] < origin {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(v) && v[lo] == origin {
		return nd.treev[lo]
	}
	return nil
}

// Step implements sim.Process.
func (nd *node) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	if !nd.initialized {
		nd.initRound0(ctx)
	}
	for _, env := range inbox {
		if err := nd.handle(ctx, env); err != nil {
			return err
		}
		// The message is fully consumed (handlers copy what they keep);
		// recycle it for this node's own sends.
		nd.pool.Put(env.Payload)
	}
	nd.boundaryActions(ctx)
	nd.stepTokens(ctx)
	win := nd.winSeen
	if nd.rt.cfg.DisablePiggyback {
		win = 0
	}
	if err := nd.outbox.Flush(ctx, win); err != nil {
		return err
	}
	if !nd.holder.Empty() || nd.outbox.Pending() > 0 {
		ctx.WakeAt(ctx.Round() + 1)
	}
	return nil
}

// initRound0 draws the protocol id and the contender coin (Algorithm 1).
func (nd *node) initRound0(ctx *sim.Context) {
	nd.initialized = true
	if forced, ok := nd.rt.cfg.ForcedIDs[nd.idx]; ok {
		nd.id = forced
	} else {
		nd.id = protocol.RandomID(ctx.Rand().Uint64, nd.rt.n)
	}
	if nd.rt.forced != nil {
		nd.contender = nd.rt.forced[nd.idx]
	} else {
		nd.contender = ctx.Rand().Float64() < nd.rt.pCont
	}
	if nd.contender {
		nd.active = true
		nd.beginPhase(ctx, 0)
	}
}

// beginPhase starts walk phase p: fresh accumulators, a fresh root tree,
// and the full batch of walk tokens (Algorithm 2 line 1).
func (nd *node) beginPhase(ctx *sim.Context, p int) {
	nd.phase = p
	nd.awaitStart = -1
	nd.dSum, nd.pSum = 0, 0
	nd.i2.Reset()
	nd.i2.Add(nd.id)
	nd.i2max = nd.id
	nd.i4max = 0
	tr := nd.tree(nd.id)
	if tr == nil {
		tr = newTree(p, -1, true)
		nd.insertTree(nd.id, tr)
	} else {
		tr.resetForPhase(p, -1, true)
	}
	// The root's own id is part of its I2 from the start; record it so
	// every (possibly late) child receives it.
	tr.downX2.Add(nd.id)
	nd.holder.Add(nd.id, p, nd.rt.sched.tus[p], nd.rt.walks)
	ctx.WakeAt(nd.rt.sched.decides[p])
}

func (nd *node) insertTree(origin protocol.ID, tr *tree) {
	i := sort.Search(len(nd.origins), func(i int) bool { return nd.origins[i] >= origin })
	nd.origins = append(nd.origins, 0)
	copy(nd.origins[i+1:], nd.origins[i:])
	nd.origins[i] = origin
	nd.treev = append(nd.treev, nil)
	copy(nd.treev[i+1:], nd.treev[i:])
	nd.treev[i] = tr
}

// alive reports whether a tree participates in the current protocol state:
// either it belongs to the current global phase or it was latched FINAL.
func (nd *node) alive(tr *tree, round int) bool {
	if tr == nil {
		return false
	}
	return tr.final || tr.phase == nd.rt.sched.phaseAt(round)
}

// treeFor locates (or creates / phase-resets) the tree for an arriving
// token. Returns nil for stale tokens of superseded phases.
func (nd *node) treeFor(origin protocol.ID, phase, arrivalPort int) *tree {
	tr := nd.tree(origin)
	if tr == nil {
		tr = newTree(phase, arrivalPort, false)
		nd.insertTree(origin, tr)
		return tr
	}
	switch {
	case tr.phase == phase:
		return tr
	case tr.phase < phase:
		tr.resetForPhase(phase, arrivalPort, false)
		return tr
	default:
		return nil
	}
}

func (nd *node) handle(ctx *sim.Context, env sim.Envelope) error {
	switch m := env.Payload.(type) {
	case *protocol.TokenMsg:
		nd.noteWin(ctx, m.Win)
		nd.onToken(ctx, env.Port, m)
	case *protocol.UpMsg:
		nd.noteWin(ctx, m.Win)
		nd.onUp(ctx, m)
	case *protocol.DownMsg:
		nd.noteWin(ctx, m.Win)
		nd.onDown(ctx, m)
	default:
		return fmt.Errorf("core: unexpected message kind %q", env.Payload.Kind())
	}
	return nil
}

// noteWin latches the first winner sighting (explicit or piggybacked). An
// active contender that learns of a winner can never win itself: it stops
// initiating phases and latches its current proxies FINAL so the remaining
// active contenders still count it toward their intersection threshold.
func (nd *node) noteWin(ctx *sim.Context, win protocol.ID) {
	if win == 0 || nd.winSeen != 0 {
		return
	}
	nd.winSeen = win
	if nd.contender && nd.active && !nd.leader {
		nd.active = false
		nd.suppressed = true
		nd.awaitStart = -1
		nd.sendFinalOwnTree(ctx)
	}
}

func (nd *node) sendFinalOwnTree(ctx *sim.Context) {
	tr := nd.tree(nd.id)
	if tr == nil || !tr.isRoot {
		return
	}
	tr.final = true
	if tr.finalDown {
		return
	}
	tr.finalDown = true
	for _, port := range tr.children {
		nd.outbox.PushDown(port, nd.id, tr.phase, protocol.DownFinal, nil)
	}
}

func (nd *node) onToken(ctx *sim.Context, port int, m *protocol.TokenMsg) {
	tr := nd.treeFor(m.Origin, m.Phase, port)
	if tr == nil {
		nd.staleDrops++
		return
	}
	if m.Remaining == 0 {
		nd.registerProxy(ctx, m.Origin, tr, m.Count)
		return
	}
	nd.holder.Add(m.Origin, m.Phase, m.Remaining, m.Count)
}

// registerProxy accounts count walk completions of origin at this node,
// pushing the distinctness/proxy-count delta corrections upward, and on the
// first registration announces mutual adjacency with every other contender
// proxied here plus the current I3 snapshot (Algorithm 2 rounds 1 and 3,
// realized incrementally).
func (nd *node) registerProxy(ctx *sim.Context, origin protocol.ID, tr *tree, count int) {
	if count <= 0 {
		return
	}
	was := tr.proxyCount
	tr.proxyCount += count
	dDelta := dOf(tr.proxyCount) - dOf(was)
	pDelta := 0
	if was == 0 {
		pDelta = 1
	}
	if dDelta != 0 || pDelta != 0 {
		nd.pushUpX1(ctx, origin, tr, nil, dDelta, pDelta)
	}
	if was != 0 {
		return
	}
	round := ctx.Round()
	// Mutual I1 announcements with co-proxied contenders.
	i3 := nd.scrI3[:0]
	for i, other := range nd.origins {
		if other == origin {
			continue
		}
		otr := nd.treev[i]
		if otr.proxyCount == 0 || !nd.alive(otr, round) {
			continue
		}
		nd.scrOne[0] = other
		nd.pushUpX1(ctx, origin, tr, nd.scrOne[:1], 0, 0)
		nd.scrOne[0] = origin
		nd.pushUpX1(ctx, other, otr, nd.scrOne[:1], 0, 0)
		i3 = append(i3, otr.storedI2.List...)
	}
	// I3 snapshot: everything this node has stored from I2 floods.
	i3 = append(i3, tr.storedI2.List...)
	if len(i3) > 0 {
		slices.Sort(i3)
		nd.pushUpX3(ctx, origin, tr, i3)
	}
	nd.scrI3 = i3[:0]
}

// pushUpX1 routes exchange-round-1 data one hop toward the origin, or
// consumes it at the root.
func (nd *node) pushUpX1(ctx *sim.Context, origin protocol.ID, tr *tree, ids []protocol.ID, dDelta, pDelta int) {
	if tr.isRoot {
		nd.rootConsumeX1(ctx, ids, dDelta, pDelta)
		return
	}
	nd.outbox.PushUp(tr.parentPort, origin, tr.phase, protocol.UpX1, ids, dDelta, pDelta)
}

func (nd *node) pushUpX3(ctx *sim.Context, origin protocol.ID, tr *tree, ids []protocol.ID) {
	if tr.isRoot {
		for _, id := range ids {
			if id > nd.i4max {
				nd.i4max = id
			}
		}
		return
	}
	nd.outbox.PushUp(tr.parentPort, origin, tr.phase, protocol.UpX3, ids, 0, 0)
}

// rootConsumeX1 folds exchange-round-1 data into the contender's
// accumulators; newly learned adjacent ids flow down the tree as I2
// fragments (exchange round 2). The DisableInactiveExchange ablation
// freezes this once the contender stopped (the paper-literal reading).
func (nd *node) rootConsumeX1(ctx *sim.Context, ids []protocol.ID, dDelta, pDelta int) {
	if nd.rt.cfg.DisableInactiveExchange && !nd.active {
		return
	}
	nd.dSum += dDelta
	nd.pSum += pDelta
	if len(ids) == 0 {
		return
	}
	tr := nd.tree(nd.id)
	fresh := nd.scrRoot[:0]
	for _, id := range ids {
		if nd.i2.Add(id) {
			if id > nd.i2max {
				nd.i2max = id
			}
			fresh = append(fresh, id)
		}
	}
	if len(fresh) > 0 && tr != nil && tr.isRoot {
		nd.relayDownX2(ctx, nd.id, tr, fresh)
	}
	nd.scrRoot = fresh[:0]
}

// relayDownX2 floods I2 id fragments down a tree, records them for
// late-arriving children, and — when this node is itself a proxy of the
// origin — stores them (triggering I3 pushes on every proxied tree).
func (nd *node) relayDownX2(ctx *sim.Context, origin protocol.ID, tr *tree, ids []protocol.ID) {
	fresh := nd.scrRelay[:0]
	for _, id := range ids {
		if tr.downX2.Add(id) {
			fresh = append(fresh, id)
		}
	}
	if len(fresh) == 0 {
		nd.scrRelay = fresh
		return
	}
	for _, port := range tr.children {
		nd.outbox.PushDown(port, origin, tr.phase, protocol.DownX2, fresh)
	}
	if tr.proxyCount > 0 {
		nd.storeI2(ctx, tr, fresh)
	}
	nd.scrRelay = fresh[:0]
}

// storeI2 adds ids to the proxy-role storage for tr's origin and pushes the
// new ids up every alive proxied tree as I3 data (exchange round 3,
// realized incrementally).
func (nd *node) storeI2(ctx *sim.Context, tr *tree, ids []protocol.ID) {
	fresh := nd.scrStore[:0]
	for _, id := range ids {
		if tr.storedI2.Add(id) {
			fresh = append(fresh, id)
		}
	}
	if len(fresh) == 0 {
		nd.scrStore = fresh
		return
	}
	round := ctx.Round()
	for i, origin := range nd.origins {
		otr := nd.treev[i]
		if otr.proxyCount == 0 || !nd.alive(otr, round) {
			continue
		}
		nd.pushUpX3(ctx, origin, otr, fresh)
	}
	nd.scrStore = fresh[:0]
}

func (nd *node) onUp(ctx *sim.Context, m *protocol.UpMsg) {
	tr := nd.tree(m.Origin)
	if tr == nil || tr.phase != m.Phase {
		nd.staleDrops++
		return
	}
	switch m.Stage {
	case protocol.UpX1:
		nd.pushUpX1(ctx, m.Origin, tr, m.IDs, m.DDelta, m.PDelta)
	case protocol.UpX3:
		nd.pushUpX3(ctx, m.Origin, tr, m.IDs)
	case protocol.UpWinner:
		var winID protocol.ID
		if len(m.IDs) > 0 {
			winID = m.IDs[0]
		}
		nd.noteWin(ctx, winID)
		if tr.isRoot {
			nd.rootWinnerReceipt(ctx, winID)
			return
		}
		nd.outbox.PushUp(tr.parentPort, m.Origin, tr.phase, protocol.UpWinner, m.IDs, 0, 0)
	default:
		nd.staleDrops++
	}
}

// rootWinnerReceipt implements Algorithm 2 line 7: the first time a
// contender receives a winner message it forwards it to all its proxies.
func (nd *node) rootWinnerReceipt(ctx *sim.Context, winID protocol.ID) {
	if nd.winRootDone || winID == 0 {
		return
	}
	nd.winRootDone = true
	tr := nd.tree(nd.id)
	if tr == nil || !tr.isRoot {
		return
	}
	nd.floodWinnerDown(ctx, nd.id, tr, winID)
}

func (nd *node) floodWinnerDown(ctx *sim.Context, origin protocol.ID, tr *tree, winID protocol.ID) {
	if tr.winnerDown {
		return
	}
	tr.winnerDown = true
	tr.winnerID = winID
	for _, port := range tr.children {
		nd.scrOne[0] = winID
		nd.outbox.PushDown(port, origin, tr.phase, protocol.DownWinner, nd.scrOne[:1])
	}
}

func (nd *node) onDown(ctx *sim.Context, m *protocol.DownMsg) {
	tr := nd.tree(m.Origin)
	if tr == nil || tr.phase != m.Phase {
		nd.staleDrops++
		return
	}
	switch m.Op {
	case protocol.DownX2:
		nd.relayDownX2(ctx, m.Origin, tr, m.IDs)
	case protocol.DownFinal:
		tr.final = true
		if !tr.finalDown {
			tr.finalDown = true
			for _, port := range tr.children {
				nd.outbox.PushDown(port, m.Origin, tr.phase, protocol.DownFinal, nil)
			}
		}
	case protocol.DownWinner:
		var winID protocol.ID
		if len(m.IDs) > 0 {
			winID = m.IDs[0]
		}
		nd.noteWin(ctx, winID)
		nd.floodWinnerDown(ctx, m.Origin, tr, winID)
		nd.proxyWinnerReceipt(ctx, winID)
	default:
		nd.staleDrops++
	}
}

// proxyWinnerReceipt implements Algorithm 2 line 6: the first time a proxy
// receives a winner message it relays it to all contenders it proxies for.
func (nd *node) proxyWinnerReceipt(ctx *sim.Context, winID protocol.ID) {
	if nd.winProxyDone || winID == 0 {
		return
	}
	round := ctx.Round()
	isProxy := false
	for _, tr := range nd.treev {
		if tr.proxyCount > 0 && nd.alive(tr, round) {
			isProxy = true
			break
		}
	}
	if !isProxy {
		return
	}
	nd.winProxyDone = true
	for i, origin := range nd.origins {
		tr := nd.treev[i]
		if tr.proxyCount == 0 || !nd.alive(tr, round) {
			continue
		}
		if tr.isRoot {
			nd.rootWinnerReceipt(ctx, winID)
			continue
		}
		nd.scrOne[0] = winID
		nd.outbox.PushUp(tr.parentPort, origin, tr.phase, protocol.UpWinner, nd.scrOne[:1], 0, 0)
	}
}

// stepTokens advances resting walk tokens by one lazy step, recording tree
// children for forwarded batches and registering completions as proxies.
func (nd *node) stepTokens(ctx *sim.Context) {
	if nd.holder.Empty() {
		return
	}
	nd.holder.Step(ctx.Degree(), ctx.Rand(),
		func(port int, origin protocol.ID, phase, remaining, count int) {
			tr := nd.tree(origin)
			if tr == nil || tr.phase != phase {
				nd.staleDrops++
				return
			}
			nd.noteChild(ctx, origin, tr, port)
			nd.outbox.PushToken(port, origin, phase, remaining, count)
		},
		func(origin protocol.ID, phase, count int) {
			tr := nd.tree(origin)
			if tr == nil || tr.phase != phase {
				nd.staleDrops++
				return
			}
			nd.registerProxy(ctx, origin, tr, count)
		})
}

// noteChild records a downcast child and replicates the down-flood prefix
// (I2 ids, FINAL, winner) that the new child would otherwise miss.
func (nd *node) noteChild(ctx *sim.Context, origin protocol.ID, tr *tree, port int) {
	if !tr.addChild(port) {
		return
	}
	if tr.downX2.Len() > 0 {
		ids := append(nd.scrChild[:0], tr.downX2.List...)
		slices.Sort(ids)
		nd.outbox.PushDown(port, origin, tr.phase, protocol.DownX2, ids)
		nd.scrChild = ids[:0]
	}
	if tr.finalDown {
		nd.outbox.PushDown(port, origin, tr.phase, protocol.DownFinal, nil)
	}
	if tr.winnerDown {
		nd.scrOne[0] = tr.winnerID
		nd.outbox.PushDown(port, origin, tr.phase, protocol.DownWinner, nd.scrOne[:1])
	}
}

// boundaryActions runs the contender's scheduled transitions: phase starts
// and the stop/winner decision at start + 4T.
func (nd *node) boundaryActions(ctx *sim.Context) {
	if !nd.contender || !nd.active {
		return
	}
	round := ctx.Round()
	if nd.awaitStart >= 0 && round >= nd.awaitStart {
		next := nd.phase + 1
		nd.beginPhase(ctx, next)
		return
	}
	if nd.phase >= 0 && round == nd.rt.sched.decides[nd.phase] {
		nd.evaluate(ctx)
	}
}

// evaluate is Algorithm 2 lines 4-5 and 8-9: test the Intersection and
// Distinctness properties; stop and possibly elect, or double the guess.
func (nd *node) evaluate(ctx *sim.Context) {
	adjacency := nd.i2.Len() - 1 // i2 includes the own id
	interOK := adjacency >= nd.rt.interT
	distinctOK := nd.dSum >= nd.rt.distT || nd.rt.cfg.DisableDistinctness
	unconditional := nd.rt.cfg.FixedWalkLen > 0
	if unconditional || (interOK && distinctOK) {
		nd.stopped = true
		nd.active = false
		nd.stopRound = ctx.Round()
		nd.sendFinalOwnTree(ctx)
		if nd.winSeen == 0 && nd.idIsMax() {
			nd.leader = true
			nd.leadRound = ctx.Round()
			nd.winSeen = nd.id
			if tr := nd.tree(nd.id); tr != nil && tr.isRoot {
				nd.floodWinnerDown(ctx, nd.id, tr, nd.id)
			}
			// The leader may itself proxy other contenders; notify them
			// directly (it has "received" its own winner message).
			nd.proxyWinnerReceipt(ctx, nd.id)
		}
		return
	}
	next := nd.phase + 1
	if next >= nd.rt.sched.numPhases() {
		nd.failed = true
		nd.active = false
		return
	}
	nd.awaitStart = nd.rt.sched.starts[next]
	ctx.WakeAt(nd.awaitStart)
}

// idIsMax reports whether this contender's id is the maximum over its
// two-hop id neighborhood I4 (we also fold in I2, a subset of the eventual
// I4, which only strengthens the check). Only the maxima matter, so both
// sets are tracked as running maxima.
func (nd *node) idIsMax() bool {
	return nd.i4max <= nd.id && nd.i2max <= nd.id
}
