package core

import (
	"math/rand"
	"testing"

	"wcle/internal/graph"
	"wcle/internal/protocol"
	"wcle/internal/sim"
)

// congestAuditor asserts the CONGEST discipline over an entire run: at most
// one message per (round, sender, port), and every message within the bit
// cap for the declared mode.
type congestAuditor struct {
	cap       int
	seen      map[[3]int]struct{}
	violation string
}

func (a *congestAuditor) OnSend(round int, from, fromPort, to, toPort int, m sim.Message) {
	key := [3]int{round, from, fromPort}
	if _, dup := a.seen[key]; dup {
		a.violation = "duplicate send on a port within one round"
		return
	}
	a.seen[key] = struct{}{}
	if m.Bits() > a.cap {
		a.violation = "message exceeds bit cap"
	}
	if m.Bits() <= 0 {
		a.violation = "message with non-positive size"
	}
}

func TestCongestDisciplineFullRun(t *testing.T) {
	g, err := graph.RandomRegular(64, 6, rand.New(rand.NewSource(14)))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []protocol.Mode{protocol.ModeCongest, protocol.ModeLarge} {
		codec, err := protocol.NewCodec(g.N(), mode)
		if err != nil {
			t.Fatal(err)
		}
		auditor := &congestAuditor{cap: codec.Cap(), seen: make(map[[3]int]struct{})}
		cfg := DefaultConfig()
		cfg.Mode = mode
		res, err := Run(g, cfg, RunOptions{Seed: 6, Observer: auditor})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if auditor.violation != "" {
			t.Fatalf("mode %v: CONGEST violation: %s", mode, auditor.violation)
		}
		if int64(len(auditor.seen)) != res.Metrics.Messages {
			t.Fatalf("mode %v: audited %d sends, metrics %d", mode, len(auditor.seen), res.Metrics.Messages)
		}
	}
}

// TestBitAccountingScalesWithMode: large mode messages carry more bits each
// but fewer total messages; total information moved should be comparable.
func TestBitAccountingScalesWithMode(t *testing.T) {
	g, err := graph.Clique(32, nil)
	if err != nil {
		t.Fatal(err)
	}
	run := func(mode protocol.Mode) *Result {
		cfg := DefaultConfig()
		cfg.Mode = mode
		res, err := Run(g, cfg, RunOptions{Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	congest := run(protocol.ModeCongest)
	large := run(protocol.ModeLarge)
	avgC := float64(congest.Metrics.Bits) / float64(congest.Metrics.Messages)
	avgL := float64(large.Metrics.Bits) / float64(large.Metrics.Messages)
	if avgL <= avgC {
		t.Fatalf("large-mode messages should be bigger on average: %v vs %v", avgL, avgC)
	}
	if large.Metrics.Messages >= congest.Metrics.Messages {
		t.Fatalf("large mode should use fewer messages: %d vs %d",
			large.Metrics.Messages, congest.Metrics.Messages)
	}
}
