package core

import (
	"fmt"
	"math/bits"
)

// schedule is the global phase timetable every node derives from n and the
// configuration (nodes know n, so all clocks agree). Phase p uses walk
// length tu(p) = 2^p, spans 6T(p) rounds with T(p) = ceil(TMult * tu(p) *
// L^2), L = ceil(log2 n): the paper's walk stage (T), three exchange stages
// (3T), and the 2T winner-propagation wait (Algorithm 2 line 8). Decisions
// happen at start + 4T. In FixedWalkLen mode there is exactly one phase.
type schedule struct {
	tus     []int // walk length per phase
	starts  []int // start round per phase
	stage   []int // T per phase
	decides []int // decision round per phase (start + 4T)
	ends    []int // end round per phase   (start + 6T)
}

func newSchedule(n int, cfg Config) (*schedule, error) {
	l := bits.Len(uint(n - 1))
	tmul := cfg.TMult
	stageLen := func(tu int) int {
		t := int(tmul * float64(tu) * float64(l*l))
		if t < tu+1 {
			t = tu + 1 // T must at least cover the walk itself
		}
		return t
	}
	s := &schedule{}
	add := func(tu, start int) int {
		t := stageLen(tu)
		s.tus = append(s.tus, tu)
		s.starts = append(s.starts, start)
		s.stage = append(s.stage, t)
		s.decides = append(s.decides, start+4*t)
		s.ends = append(s.ends, start+6*t)
		return start + 6*t
	}
	if cfg.FixedWalkLen > 0 {
		add(cfg.FixedWalkLen, 0)
		return s, nil
	}
	if cfg.MaxWalkLen < 1 {
		return nil, fmt.Errorf("core: MaxWalkLen must be positive, got %d", cfg.MaxWalkLen)
	}
	start := 0
	for tu := 1; tu <= cfg.MaxWalkLen; tu *= 2 {
		start = add(tu, start)
	}
	return s, nil
}

// numPhases returns the number of scheduled phases.
func (s *schedule) numPhases() int { return len(s.tus) }

// phaseAt returns the phase index containing the given round (the last
// phase for rounds beyond the schedule).
func (s *schedule) phaseAt(round int) int {
	lo, hi := 0, len(s.starts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.starts[mid] <= round {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
