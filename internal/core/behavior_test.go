package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wcle/internal/graph"
	"wcle/internal/protocol"
	"wcle/internal/sim"
)

// TestWinnerSuppressionAcrossPhases forces a scenario where the max-id
// contender satisfies the properties one phase after a smaller-id
// contender: the smaller one elects first (it stops first and sees no
// competitor), and the later one must be suppressed by the winner message
// (Claim 10's mechanism).
func TestWinnerSuppressionAcrossPhases(t *testing.T) {
	// A barbell makes one side mix internally long before information
	// reaches the other side, staggering the stop rounds.
	g, err := graph.Barbell(12, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := lowThreshold() // interT = 1
	cfg.ForcedContenders = []int{0, 1, 12, 13}
	cfg.ForcedIDs = map[int]protocol.ID{0: 10, 1: 20, 12: 900, 13: 800}
	cfg.MaxWalkLen = 512
	for seed := int64(0); seed < 5; seed++ {
		res, err := Run(g, cfg, RunOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Leaders) > 1 {
			t.Fatalf("seed %d: multiple leaders %v", seed, res.Leaders)
		}
	}
}

// TestSuppressedContenderStillCountsForOthers checks the FINAL-latch
// design: a contender that quits after a winner sighting must remain
// visible through its final proxies so remaining actives can still satisfy
// the intersection property.
func TestSuppressedContenderStillCountsForOthers(t *testing.T) {
	g, err := graph.Clique(24, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, DefaultConfig(), RunOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Everyone classified; in particular suppressed contenders exist in
	// most clique runs and nobody is left unclassified/looping.
	if len(res.Stopped)+len(res.Suppressed)+len(res.Failed) != len(res.Contenders) {
		t.Fatalf("unclassified contenders: %+v", res)
	}
}

// TestAssumedNSmallerThanGraph verifies the Theorem 28 hook: believed n
// changes thresholds and id ranges but the run still executes cleanly on
// the larger real graph.
func TestAssumedNSmallerThanGraph(t *testing.T) {
	g, err := graph.Clique(32, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.AssumedN = 16
	res, err := Run(g, cfg, RunOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p16, err := ResolveParams(16, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.InterThreshold != p16.InterThreshold || res.Walks != p16.Walks {
		t.Fatalf("assumed-n parameters not applied: %+v vs %+v", res.InterThreshold, p16.InterThreshold)
	}
	if len(res.Leaders) > 2 {
		t.Fatalf("leaders = %v", res.Leaders)
	}
}

// TestResolveParams sanity-checks the exported parameter resolution.
func TestResolveParams(t *testing.T) {
	p, err := ResolveParams(256, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.ContenderProb <= 0 || p.ContenderProb > 1 {
		t.Fatalf("prob = %v", p.ContenderProb)
	}
	if p.Walks <= 0 || p.InterThreshold <= 0 || p.DistinctThreshold <= 0 || p.MaxWalkLen != 1024 {
		t.Fatalf("params = %+v", p)
	}
	if _, err := ResolveParams(1, DefaultConfig()); err == nil {
		t.Fatal("n=1 should fail")
	}
}

// TestTinyNetworks exercises the smallest legal networks end to end.
func TestTinyNetworks(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		g, err := graph.Clique(n, nil)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.MaxWalkLen = 8
		res, err := Run(g, cfg, RunOptions{Seed: int64(n)})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(res.Leaders) > 1 {
			t.Fatalf("n=%d: leaders %v", n, res.Leaders)
		}
	}
}

// TestPropertyNeverTwoLeaders is the safety property under randomized
// configurations: across random seeds, sizes, and degrees, no run elects
// two leaders with the default clarifications enabled.
func TestPropertyNeverTwoLeaders(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	prop := func(seedRaw int64, nRaw, dRaw uint8) bool {
		n := 16 + int(nRaw)%48
		d := 4 + int(dRaw)%3
		if n*d%2 != 0 {
			n++
		}
		g, err := graph.RandomRegular(n, d, rand.New(rand.NewSource(seedRaw)))
		if err != nil {
			return false
		}
		cfg := DefaultConfig()
		cfg.MaxWalkLen = 64 // bound runtime; failures are acceptable, dual leaders are not
		res, err := Run(g, cfg, RunOptions{Seed: seedRaw ^ 0x5a5a})
		if err != nil {
			return false
		}
		return len(res.Leaders) <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestStageScheduleRespected: no up/down message should be processed for a
// tree of a *newer* phase than the sender knew — stale drops exist but must
// be a tiny fraction of traffic with the default schedule.
func TestStaleDropsAreRare(t *testing.T) {
	g, err := graph.RandomRegular(64, 6, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, DefaultConfig(), RunOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Messages == 0 {
		t.Fatal("no traffic")
	}
	frac := float64(res.StaleDrops) / float64(res.Metrics.Messages)
	if frac > 0.02 {
		t.Fatalf("stale drops %.3f%% of traffic — schedule too tight", 100*frac)
	}
}

// TestBudgetObserverConsistency: with a budget, the observer must see
// exactly the accepted messages (drops invisible).
type countObs struct{ n int64 }

func (c *countObs) OnSend(round int, from, fromPort, to, toPort int, m sim.Message) { c.n++ }

func TestBudgetObserverConsistency(t *testing.T) {
	g, err := graph.Clique(24, nil)
	if err != nil {
		t.Fatal(err)
	}
	obs := &countObs{}
	res, err := Run(g, DefaultConfig(), RunOptions{Seed: 5, Budget: 500, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Messages != 500 {
		t.Fatalf("messages = %d, want exactly the budget", res.Metrics.Messages)
	}
	if obs.n != res.Metrics.Messages {
		t.Fatalf("observer saw %d, metrics %d", obs.n, res.Metrics.Messages)
	}
	if res.Metrics.Dropped == 0 {
		t.Fatal("expected drops")
	}
}

// TestForcedIDCollision: two contenders forced to the same id must not
// panic or elect two leaders (the w.h.p. uniqueness footnote made hostile).
func TestForcedIDCollision(t *testing.T) {
	g, err := graph.Clique(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lowThreshold()
	cfg.ForcedContenders = []int{2, 7}
	cfg.ForcedIDs = map[int]protocol.ID{2: 500, 7: 500}
	res, err := Run(g, cfg, RunOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// With colliding ids the walk trees merge; the outcome may be 0, 1 or
	// even 2 flags, but the run must terminate cleanly. Document by bound.
	if len(res.Leaders) > 2 {
		t.Fatalf("leaders = %v", res.Leaders)
	}
}

// TestFixedModeSkipsGuessing: FixedWalkLen must produce exactly one phase
// and never mark contenders failed.
func TestFixedModeSkipsGuessing(t *testing.T) {
	g, err := graph.Hypercube(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.FixedWalkLen = 20
	res, err := Run(g, cfg, RunOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.PhasesUsed > 1 {
		t.Fatalf("phases = %d", res.PhasesUsed)
	}
	for _, v := range res.Contenders {
		if res.FinalTu[v] != 20 {
			t.Fatalf("contender %d tu = %d, want 20", v, res.FinalTu[v])
		}
	}
	if len(res.Failed) != 0 {
		t.Fatal("fixed mode cannot fail the stop rule")
	}
}
