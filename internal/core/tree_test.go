package core

import (
	"testing"

	"wcle/internal/protocol"
)

func TestTreeAddChildSortedAndDeduped(t *testing.T) {
	tr := newTree(1, 3, false)
	if !tr.addChild(5) || !tr.addChild(2) || !tr.addChild(9) {
		t.Fatal("fresh children rejected")
	}
	if tr.addChild(5) {
		t.Fatal("duplicate child accepted")
	}
	want := []int{2, 5, 9}
	if len(tr.children) != len(want) {
		t.Fatalf("children = %v", tr.children)
	}
	for i, p := range want {
		if tr.children[i] != p {
			t.Fatalf("children not sorted: %v", tr.children)
		}
	}
}

func TestTreeResetForPhase(t *testing.T) {
	tr := newTree(1, 3, false)
	tr.addChild(4)
	tr.proxyCount = 7
	tr.final = true
	tr.finalDown = true
	tr.winnerDown = true
	tr.winnerID = 42
	tr.storedI2.Add(protocol.ID(8))
	tr.downX2.Add(protocol.ID(9))

	tr.resetForPhase(2, 6, false)
	if tr.phase != 2 || tr.parentPort != 6 || tr.isRoot {
		t.Fatalf("reset basics wrong: %+v", tr)
	}
	if tr.final || tr.finalDown || tr.winnerDown || tr.winnerID != 0 {
		t.Fatal("control latches must clear on phase reset")
	}
	if tr.proxyCount != 0 || len(tr.children) != 0 {
		t.Fatal("per-phase registration state must clear")
	}
	if tr.downX2.Len() != 0 {
		t.Fatal("down-flood record must clear (new phase, new tree)")
	}
	// storedI2 persists across phases per the paper's "I2 sets received".
	if !tr.storedI2.Has(protocol.ID(8)) {
		t.Fatal("storedI2 must persist across phases")
	}
}

func TestDOf(t *testing.T) {
	// A proxy is distinct iff exactly one walk ended there.
	cases := map[int]int{0: 0, 1: 1, 2: 0, 5: 0}
	for count, want := range cases {
		if got := dOf(count); got != want {
			t.Fatalf("dOf(%d) = %d, want %d", count, got, want)
		}
	}
}

func TestTrackedSet(t *testing.T) {
	var s protocol.TrackedSet
	for _, id := range []protocol.ID{5, 1, 9, 3} {
		if !s.Add(id) {
			t.Fatalf("fresh id %d rejected", id)
		}
	}
	if s.Add(5) {
		t.Fatal("duplicate id accepted")
	}
	if s.Len() != 4 || len(s.List) != 4 {
		t.Fatalf("set = %v (len %d)", s.List, s.Len())
	}
	// The list preserves insertion order (deterministic iteration).
	want := []protocol.ID{5, 1, 9, 3}
	for i := range want {
		if s.List[i] != want[i] {
			t.Fatalf("list = %v, want %v", s.List, want)
		}
		if !s.Has(want[i]) {
			t.Fatalf("Has(%d) = false", want[i])
		}
	}
	if s.Has(7) {
		t.Fatal("absent id must not be a member")
	}
	s.Reset()
	if s.Len() != 0 || len(s.List) != 0 || s.Has(5) {
		t.Fatal("Reset must empty the set")
	}
}

func TestFastSetGrowth(t *testing.T) {
	var s protocol.FastSet
	for id := protocol.ID(1); id <= 1000; id++ {
		if !s.Add(id) {
			t.Fatalf("fresh id %d rejected", id)
		}
		if s.Add(id) {
			t.Fatalf("duplicate id %d accepted", id)
		}
	}
	if s.Len() != 1000 {
		t.Fatalf("len = %d, want 1000", s.Len())
	}
	for id := protocol.ID(1); id <= 1000; id++ {
		if !s.Has(id) {
			t.Fatalf("lost id %d after growth", id)
		}
	}
	if s.Has(1001) {
		t.Fatal("absent id reported present")
	}
}
