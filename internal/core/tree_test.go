package core

import (
	"testing"

	"wcle/internal/protocol"
)

func TestTreeAddChildSortedAndDeduped(t *testing.T) {
	tr := newTree(1, 3, false)
	if !tr.addChild(5) || !tr.addChild(2) || !tr.addChild(9) {
		t.Fatal("fresh children rejected")
	}
	if tr.addChild(5) {
		t.Fatal("duplicate child accepted")
	}
	want := []int{2, 5, 9}
	if len(tr.children) != len(want) {
		t.Fatalf("children = %v", tr.children)
	}
	for i, p := range want {
		if tr.children[i] != p {
			t.Fatalf("children not sorted: %v", tr.children)
		}
	}
}

func TestTreeResetForPhase(t *testing.T) {
	tr := newTree(1, 3, false)
	tr.addChild(4)
	tr.proxyCount = 7
	tr.final = true
	tr.finalDown = true
	tr.winnerDown = true
	tr.winnerID = 42
	tr.storedI2[protocol.ID(8)] = struct{}{}
	tr.downX2[protocol.ID(9)] = struct{}{}

	tr.resetForPhase(2, 6, false)
	if tr.phase != 2 || tr.parentPort != 6 || tr.isRoot {
		t.Fatalf("reset basics wrong: %+v", tr)
	}
	if tr.final || tr.finalDown || tr.winnerDown || tr.winnerID != 0 {
		t.Fatal("control latches must clear on phase reset")
	}
	if tr.proxyCount != 0 || len(tr.children) != 0 || len(tr.childSet) != 0 {
		t.Fatal("per-phase registration state must clear")
	}
	if len(tr.downX2) != 0 {
		t.Fatal("down-flood record must clear (new phase, new tree)")
	}
	// storedI2 persists across phases per the paper's "I2 sets received".
	if _, ok := tr.storedI2[protocol.ID(8)]; !ok {
		t.Fatal("storedI2 must persist across phases")
	}
}

func TestDOf(t *testing.T) {
	// A proxy is distinct iff exactly one walk ended there.
	cases := map[int]int{0: 0, 1: 1, 2: 0, 5: 0}
	for count, want := range cases {
		if got := dOf(count); got != want {
			t.Fatalf("dOf(%d) = %d, want %d", count, got, want)
		}
	}
}

func TestSortedIDs(t *testing.T) {
	set := map[protocol.ID]struct{}{5: {}, 1: {}, 9: {}, 3: {}}
	got := sortedIDs(set)
	want := []protocol.ID{1, 3, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("sortedIDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sortedIDs = %v, want %v", got, want)
		}
	}
	if len(sortedIDs(nil)) != 0 {
		t.Fatal("nil set should give empty slice")
	}
}
