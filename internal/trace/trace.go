package trace

import (
	"fmt"
	"io"

	"wcle/internal/sim"
)

// Event is one recorded send.
type Event struct {
	Round    int
	From, To int
	Kind     string
	Bits     int
}

// Recorder captures up to Cap events (0 means DefaultCap) and always keeps
// aggregate counts.
type Recorder struct {
	Cap     int
	Events  []Event
	Total   int64
	Skipped int64
}

// DefaultCap bounds recorded events if Recorder.Cap is unset.
const DefaultCap = 100_000

var _ sim.Observer = (*Recorder)(nil)

// OnSend implements sim.Observer.
func (r *Recorder) OnSend(round int, from, fromPort, to, toPort int, m sim.Message) {
	r.Total++
	if len(r.Events) >= effectiveCap(r.Cap) {
		r.Skipped++
		return
	}
	r.Events = append(r.Events, Event{Round: round, From: from, To: to, Kind: m.Kind(), Bits: m.Bits()})
}

// effectiveCap resolves a Cap field to the bound actually enforced
// (0 means DefaultCap), so skip messages report the real limit.
func effectiveCap(c int) int {
	if c == 0 {
		return DefaultCap
	}
	return c
}

// Dump writes the recorded events as text, one per line.
func (r *Recorder) Dump(w io.Writer) error {
	for _, e := range r.Events {
		if _, err := fmt.Fprintf(w, "round=%d %d->%d kind=%s bits=%d\n", e.Round, e.From, e.To, e.Kind, e.Bits); err != nil {
			return err
		}
	}
	if r.Skipped > 0 {
		if _, err := fmt.Fprintf(w, "... %d further events not recorded (cap %d)\n", r.Skipped, effectiveCap(r.Cap)); err != nil {
			return err
		}
	}
	return nil
}

// RoundCounter tallies messages per round (sparse).
type RoundCounter struct {
	Counts map[int]int64
}

var _ sim.Observer = (*RoundCounter)(nil)

// OnSend implements sim.Observer.
func (rc *RoundCounter) OnSend(round int, from, fromPort, to, toPort int, m sim.Message) {
	if rc.Counts == nil {
		rc.Counts = make(map[int]int64)
	}
	rc.Counts[round]++
}

// UpTo sums the messages sent in rounds <= r.
func (rc *RoundCounter) UpTo(r int) int64 {
	var s int64
	for round, c := range rc.Counts {
		if round <= r {
			s += c
		}
	}
	return s
}

// KindCounter tallies accepted sends per message kind. It is the opt-in
// replacement for sim.Metrics.ByKind when a run uses Config.LeanMetrics:
// attach it as the observer only when per-kind counts are actually wanted,
// keeping the simulator's send path free of map writes otherwise.
type KindCounter struct {
	Counts map[string]int64
}

var _ sim.Observer = (*KindCounter)(nil)

// OnSend implements sim.Observer.
func (kc *KindCounter) OnSend(round int, from, fromPort, to, toPort int, m sim.Message) {
	if kc.Counts == nil {
		kc.Counts = make(map[string]int64)
	}
	kc.Counts[m.Kind()]++
}

// FaultLog records the fault plane's interventions: up to Cap events
// (0 means DefaultCap) plus always-on aggregate counts per kind. Attach it
// via Config.FaultObserver (or core.RunOptions.FaultObserver) to make a
// faulty run's drops, delays, crashes, and mutations observable.
type FaultLog struct {
	Cap     int
	Events  []sim.FaultEvent
	Skipped int64

	Drops     int64
	Delays    int64
	Crashes   int64
	Mutations int64
}

var _ sim.FaultObserver = (*FaultLog)(nil)

// OnFault implements sim.FaultObserver.
func (l *FaultLog) OnFault(ev sim.FaultEvent) {
	switch ev.Kind {
	case sim.FaultDrop:
		l.Drops++
	case sim.FaultDelay:
		l.Delays++
	case sim.FaultCrash:
		l.Crashes++
	case sim.FaultMutate:
		l.Mutations++
	}
	if len(l.Events) >= effectiveCap(l.Cap) {
		l.Skipped++
		return
	}
	l.Events = append(l.Events, ev)
}

// Dump writes the recorded fault events as text, one per line.
func (l *FaultLog) Dump(w io.Writer) error {
	for _, e := range l.Events {
		if _, err := fmt.Fprintf(w, "round=%d fault=%s node=%d from=%d delay=%d\n",
			e.Round, e.Kind, e.Node, e.From, e.Delay); err != nil {
			return err
		}
	}
	if l.Skipped > 0 {
		if _, err := fmt.Fprintf(w, "... %d further fault events not recorded (cap %d)\n", l.Skipped, effectiveCap(l.Cap)); err != nil {
			return err
		}
	}
	return nil
}

// Multi fans one observer stream out to several observers.
type Multi []sim.Observer

var _ sim.Observer = (Multi)(nil)

// OnSend implements sim.Observer.
func (m Multi) OnSend(round int, from, fromPort, to, toPort int, msg sim.Message) {
	for _, o := range m {
		o.OnSend(round, from, fromPort, to, toPort, msg)
	}
}
