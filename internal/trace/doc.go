// Package trace provides the opt-in observers of a simulation run — the
// debugging and reporting instruments that stay out of the engine's hot
// path until a caller attaches them:
//
//   - Recorder, a bounded event recorder of accepted sends (round,
//     endpoints, kind, bits) for post-mortem inspection;
//   - RoundCounter, a per-round message counter used to split a run's
//     cost into its schedule stages;
//   - KindCounter, the per-kind tally that replaces the engine's
//     Metrics.ByKind accounting when sim.Config.LeanMetrics removes it
//     from the send path;
//   - FaultLog, the fault-event counterpart (drops, delays, crashes)
//     fed by sim.Config.FaultObserver;
//   - Multi, an observer multiplexer for attaching several at once.
//
// Observers see sends the fault plane later loses — the sender paid for
// them, and message complexity counts them.
package trace
