package trace

import (
	"strings"
	"testing"

	"wcle/internal/graph"
	"wcle/internal/sim"
)

type msg struct{ kind string }

func (m msg) Bits() int    { return 4 }
func (m msg) Kind() string { return m.kind }

func TestRecorder(t *testing.T) {
	r := &Recorder{Cap: 2}
	r.OnSend(1, 0, 0, 1, 0, msg{"a"})
	r.OnSend(2, 1, 0, 0, 0, msg{"b"})
	r.OnSend(3, 0, 0, 1, 0, msg{"c"})
	if r.Total != 3 || len(r.Events) != 2 || r.Skipped != 1 {
		t.Fatalf("recorder state: %+v", r)
	}
	var sb strings.Builder
	if err := r.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "kind=a") || !strings.Contains(out, "further events") {
		t.Fatalf("dump output: %q", out)
	}
}

func TestRoundCounter(t *testing.T) {
	rc := &RoundCounter{}
	rc.OnSend(1, 0, 0, 1, 0, msg{"a"})
	rc.OnSend(1, 1, 0, 0, 0, msg{"a"})
	rc.OnSend(5, 0, 0, 1, 0, msg{"a"})
	if rc.UpTo(1) != 2 || rc.UpTo(4) != 2 || rc.UpTo(5) != 3 {
		t.Fatalf("counts: %v", rc.Counts)
	}
}

func TestMultiObserver(t *testing.T) {
	r := &Recorder{}
	rc := &RoundCounter{}
	m := Multi{r, rc}
	m.OnSend(2, 0, 0, 1, 0, msg{"x"})
	if r.Total != 1 || rc.UpTo(2) != 1 {
		t.Fatal("multi observer did not fan out")
	}
}

// End-to-end: the recorder attached to a real run sees exactly the metric
// count.
type chatty struct{ n int }

func (c *chatty) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	if ctx.Round() == 0 && ctx.Node() == 0 {
		for p := 0; p < ctx.Degree(); p++ {
			if err := ctx.Send(p, msg{"hello"}); err != nil {
				return err
			}
		}
	}
	return nil
}

func TestRecorderEndToEnd(t *testing.T) {
	g, err := graph.Clique(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := &Recorder{}
	procs := make([]sim.Process, g.N())
	for i := range procs {
		procs[i] = &chatty{}
	}
	metrics, err := sim.Run(sim.Config{Graph: g, Seed: 1, Observer: r}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total != metrics.Messages {
		t.Fatalf("recorder %d != metrics %d", r.Total, metrics.Messages)
	}
}

func TestKindCounter(t *testing.T) {
	kc := &KindCounter{}
	kc.OnSend(0, 0, 0, 1, 0, msg{"a"})
	kc.OnSend(1, 1, 0, 0, 0, msg{"a"})
	kc.OnSend(2, 0, 0, 1, 0, msg{"b"})
	if kc.Counts["a"] != 2 || kc.Counts["b"] != 1 {
		t.Fatalf("counts: %v", kc.Counts)
	}
}

// A lean run with a KindCounter observer reproduces exactly the per-kind
// accounting the simulator would have kept itself.
func TestKindCounterMatchesLeanRun(t *testing.T) {
	g, err := graph.Clique(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() []sim.Process {
		procs := make([]sim.Process, g.N())
		for i := range procs {
			procs[i] = &chatty{}
		}
		return procs
	}
	full, err := sim.Run(sim.Config{Graph: g, Seed: 1}, mk())
	if err != nil {
		t.Fatal(err)
	}
	kc := &KindCounter{}
	lean, err := sim.Run(sim.Config{Graph: g, Seed: 1, LeanMetrics: true, Observer: kc}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if len(lean.ByKind) != 0 {
		t.Fatalf("lean run kept ByKind: %v", lean.ByKind)
	}
	if kc.Counts["hello"] != full.ByKind["hello"] || kc.Counts["hello"] != lean.Messages {
		t.Fatalf("kind counter %v vs full %v", kc.Counts, full.ByKind)
	}
}

func TestFaultLogRecordsAndCaps(t *testing.T) {
	l := &FaultLog{Cap: 2}
	l.OnFault(sim.FaultEvent{Round: 1, Kind: sim.FaultDrop, Node: 3, From: 0})
	l.OnFault(sim.FaultEvent{Round: 2, Kind: sim.FaultDelay, Node: 4, From: 1, Delay: 2})
	l.OnFault(sim.FaultEvent{Round: 3, Kind: sim.FaultCrash, Node: 5, From: -1})
	if l.Drops != 1 || l.Delays != 1 || l.Crashes != 1 {
		t.Fatalf("counts wrong: %+v", l)
	}
	if len(l.Events) != 2 || l.Skipped != 1 {
		t.Fatalf("cap not applied: %d events, %d skipped", len(l.Events), l.Skipped)
	}
	var sb strings.Builder
	if err := l.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"fault=drop", "fault=delay", "further fault events"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestDumpReportsEffectiveCap(t *testing.T) {
	// With Cap unset the enforced bound is DefaultCap; the skip line must
	// report that bound, not the literal zero.
	r := &Recorder{}
	r.Skipped = 3 // as if DefaultCap had been exceeded
	var sb strings.Builder
	if err := r.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(cap 100000)") {
		t.Fatalf("recorder dump should report the effective cap, got:\n%s", sb.String())
	}

	l := &FaultLog{Skipped: 2}
	sb.Reset()
	if err := l.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(cap 100000)") {
		t.Fatalf("fault log dump should report the effective cap, got:\n%s", sb.String())
	}

	// An explicit cap still prints as itself.
	e := &Recorder{Cap: 7, Skipped: 1}
	sb.Reset()
	if err := e.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(cap 7)") {
		t.Fatalf("explicit cap should print verbatim, got:\n%s", sb.String())
	}
}
