package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeBasic(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if !almostEq(s.Std, math.Sqrt(2.5), 1e-12) {
		t.Fatalf("std = %v, want sqrt(2.5)", s.Std)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if s.Std != 0 || s.Mean != 7 || s.Median != 7 {
		t.Fatalf("unexpected summary: %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", c.q, err)
		}
		if !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 4 || xs[3] != 2 {
		t.Fatalf("Quantile mutated its input: %v", xs)
	}
}

func TestQuantileRange(t *testing.T) {
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Fatal("expected error for q < 0")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Fatal("expected error for q > 1")
	}
}

func TestBinomialCI(t *testing.T) {
	lo, hi, err := BinomialCI(50, 100, 1.96)
	if err != nil {
		t.Fatalf("BinomialCI: %v", err)
	}
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("interval [%v,%v] should straddle 0.5", lo, hi)
	}
	if lo < 0.38 || hi > 0.62 {
		t.Fatalf("interval [%v,%v] too wide for n=100", lo, hi)
	}
	// Degenerate edges stay inside [0,1].
	lo, hi, err = BinomialCI(0, 10, 1.96)
	if err != nil || lo != 0 || hi <= 0 {
		t.Fatalf("BinomialCI(0,10): lo=%v hi=%v err=%v", lo, hi, err)
	}
	if _, _, err := BinomialCI(5, 0, 1.96); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, _, err := BinomialCI(11, 10, 1.96); err == nil {
		t.Fatal("expected error for k>n")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 3 + 2x
	f, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatalf("LinearFit: %v", err)
	}
	if !almostEq(f.Slope, 2, 1e-12) || !almostEq(f.Intercept, 3, 1e-12) || !almostEq(f.R2, 1, 1e-12) {
		t.Fatalf("fit = %+v", f)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit(nil, nil); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
	if _, err := LinearFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := LinearFit([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("expected degenerate fit error")
	}
}

func TestLogLogFitRecoversExponent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 0, 20)
	ys := make([]float64, 0, 20)
	for i := 1; i <= 20; i++ {
		x := float64(i * 10)
		// y = 3 * x^1.5 with a little multiplicative noise
		noise := 1 + 0.01*(rng.Float64()-0.5)
		xs = append(xs, x)
		ys = append(ys, 3*math.Pow(x, 1.5)*noise)
	}
	f, err := LogLogFit(xs, ys)
	if err != nil {
		t.Fatalf("LogLogFit: %v", err)
	}
	if !almostEq(f.Slope, 1.5, 0.02) {
		t.Fatalf("slope = %v, want ~1.5", f.Slope)
	}
	if f.R2 < 0.999 {
		t.Fatalf("R2 = %v, want ~1", f.R2)
	}
}

func TestLogLogFitRejectsNonPositive(t *testing.T) {
	if _, err := LogLogFit([]float64{1, 0}, []float64{1, 1}); err == nil {
		t.Fatal("expected error for x = 0")
	}
	if _, err := LogLogFit([]float64{1, 2}, []float64{1, -1}); err == nil {
		t.Fatal("expected error for y < 0")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4})
	if err != nil || !almostEq(g, 2, 1e-12) {
		t.Fatalf("GeoMean = %v, err = %v", g, err)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Fatal("expected error for non-positive input")
	}
	if _, err := GeoMean(nil); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestRatio01(t *testing.T) {
	if Ratio01(1, 2) != 0.5 {
		t.Fatal("Ratio01(1,2) != 0.5")
	}
	if Ratio01(1, 0) != 0 {
		t.Fatal("Ratio01(_,0) should be 0")
	}
}

// Property: mean is between min and max; std is non-negative.
func TestSummaryInvariants(t *testing.T) {
	prop := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.Std >= 0 &&
			s.Min <= s.Median && s.Median <= s.Max
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotone(t *testing.T) {
	prop := func(raw []float64, q1, q2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		f := func(q float64) float64 { return math.Mod(math.Abs(q), 1.0) }
		a, b := f(q1), f(q2)
		if a > b {
			a, b = b, a
		}
		qa, err1 := Quantile(xs, a)
		qb, err2 := Quantile(xs, b)
		return err1 == nil && err2 == nil && qa <= qb+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanCI(t *testing.T) {
	lo, hi, err := MeanCI([]float64{10, 10, 10, 10}, 1.96)
	if err != nil || lo != 10 || hi != 10 {
		t.Fatalf("constant sample CI = [%v,%v], err %v", lo, hi, err)
	}
	lo, hi, err = MeanCI([]float64{0, 10}, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < 5 && 5 < hi) {
		t.Fatalf("CI [%v,%v] should straddle the mean", lo, hi)
	}
	if _, _, err := MeanCI(nil, 1.96); err == nil {
		t.Fatal("empty sample should error")
	}
}

func TestAggregate(t *testing.T) {
	a, err := Aggregate([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.N != 5 || a.Mean != 3 || a.Median != 3 || a.Min != 1 || a.Max != 5 {
		t.Fatalf("Aggregate = %+v", a)
	}
	if !(a.CILo < a.Mean && a.Mean < a.CIHi) {
		t.Fatalf("CI [%v,%v] must straddle the mean", a.CILo, a.CIHi)
	}
	if _, err := Aggregate(nil); err == nil {
		t.Fatal("empty sample should error")
	}
	one, err := Aggregate([]float64{7})
	if err != nil || one.CILo != 7 || one.CIHi != 7 || one.Std != 0 {
		t.Fatalf("single sample: %+v, %v", one, err)
	}
}

func TestQuantiles(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	got, err := Quantiles(xs, 0, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("Quantiles = %v", got)
	}
	if xs[0] != 5 {
		t.Fatal("input slice was modified")
	}
	// Each entry must agree with the single-quantile function.
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		single, err := Quantile(xs, q)
		if err != nil {
			t.Fatal(err)
		}
		multi, err := Quantiles(xs, q)
		if err != nil {
			t.Fatal(err)
		}
		if multi[0] != single {
			t.Fatalf("Quantiles(%v) = %v, Quantile = %v", q, multi[0], single)
		}
	}
	if _, err := Quantiles(nil, 0.5); err == nil {
		t.Fatal("empty sample should error")
	}
	if _, err := Quantiles(xs, 1.5); err == nil {
		t.Fatal("out-of-range quantile should error")
	}
}
