// Package stats provides the small statistics toolkit used by the
// experiment harness: summary statistics, quantiles, binomial confidence
// intervals, and ordinary-least-squares fits on log-log data for estimating
// scaling exponents.
//
// The package is deliberately dependency-free (stdlib math only) and works
// on float64 slices. All functions treat empty input as an error rather
// than silently returning zeros, so experiment code cannot mistake a
// missing series for a measured one.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic is requested over no samples.
var ErrEmpty = errors.New("stats: empty sample")

// Summary holds the standard descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics for xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	med, err := Quantile(xs, 0.5)
	if err != nil {
		return Summary{}, err
	}
	s.Median = med
	return s, nil
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. The input slice is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	qs, err := Quantiles(xs, q)
	if err != nil {
		return 0, err
	}
	return qs[0], nil
}

// quantileSorted interpolates the q-th quantile of an already-sorted
// sample (the shared core of Quantile and Quantiles).
func quantileSorted(sorted []float64, q float64) float64 {
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantiles returns the requested quantiles of xs, sorting the sample
// once (unlike repeated Quantile calls). The input slice is not modified.
// It is the helper behind latency summaries (p50/p99) in the ops surfaces.
func Quantiles(xs []float64, qs ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	for _, q := range qs {
		if q < 0 || q > 1 {
			return nil, fmt.Errorf("stats: quantile %v out of range [0,1]", q)
		}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out, nil
}

// BinomialCI returns a Wilson score confidence interval for the success
// probability of a binomial sample with k successes out of n trials at the
// given z value (z = 1.96 for ~95%).
func BinomialCI(k, n int, z float64) (lo, hi float64, err error) {
	if n <= 0 {
		return 0, 0, ErrEmpty
	}
	if k < 0 || k > n {
		return 0, 0, fmt.Errorf("stats: successes %d out of range [0,%d]", k, n)
	}
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi, nil
}

// MeanCI returns a normal-approximation confidence interval for the mean of
// xs at the given z value (z = 1.96 for ~95%): mean +/- z * std / sqrt(n).
// A single sample yields the degenerate interval [x, x].
func MeanCI(xs []float64, z float64) (lo, hi float64, err error) {
	s, err := Summarize(xs)
	if err != nil {
		return 0, 0, err
	}
	half := z * s.Std / math.Sqrt(float64(s.N))
	return s.Mean - half, s.Mean + half, nil
}

// Agg is the streaming-aggregation record the experiment harness keeps per
// (point, metric): the descriptive statistics of the trial samples plus a
// 95% confidence interval on the mean.
type Agg struct {
	N      int
	Mean   float64
	Std    float64
	Median float64
	Min    float64
	Max    float64
	CILo   float64
	CIHi   float64
}

// Aggregate computes an Agg over xs (95% normal CI on the mean).
func Aggregate(xs []float64) (Agg, error) {
	s, err := Summarize(xs)
	if err != nil {
		return Agg{}, err
	}
	lo, hi, err := MeanCI(xs, 1.96)
	if err != nil {
		return Agg{}, err
	}
	return Agg{N: s.N, Mean: s.Mean, Std: s.Std, Median: s.Median,
		Min: s.Min, Max: s.Max, CILo: lo, CIHi: hi}, nil
}

// Fit is the result of an ordinary-least-squares line fit y = a + b*x.
type Fit struct {
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination
}

// LinearFit fits y = a + b*x by least squares.
func LinearFit(xs, ys []float64) (Fit, error) {
	if len(xs) == 0 {
		return Fit{}, ErrEmpty
	}
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return Fit{}, errors.New("stats: need at least two points to fit a line")
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, errors.New("stats: degenerate fit (all x equal)")
	}
	b := sxy / sxx
	a := my - b*mx
	f := Fit{Intercept: a, Slope: b, R2: 1}
	if syy > 0 {
		var ssRes float64
		for i := range xs {
			r := ys[i] - (a + b*xs[i])
			ssRes += r * r
		}
		f.R2 = 1 - ssRes/syy
	}
	return f, nil
}

// LogLogFit fits log(y) = a + b*log(x), i.e. y ~ C * x^b, and returns the
// exponent b (Slope) and R^2 of the fit in log space. All inputs must be
// strictly positive.
func LogLogFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	lx := make([]float64, 0, len(xs))
	ly := make([]float64, 0, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return Fit{}, fmt.Errorf("stats: log-log fit requires positive data, got (%v,%v)", xs[i], ys[i])
		}
		lx = append(lx, math.Log(xs[i]))
		ly = append(ly, math.Log(ys[i]))
	}
	return LinearFit(lx, ly)
}

// GeoMean returns the geometric mean of strictly positive samples.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geometric mean requires positive data, got %v", x)
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// Ratio01 returns k/n as a float64, guarding against n == 0.
func Ratio01(k, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(k) / float64(n)
}
