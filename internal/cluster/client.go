package cluster

// Client side: submit elections to a running cluster's coordinator over
// TCP. cmd/electnode -submit, electd's cluster mode, and the wcle facade's
// ElectCluster all go through here.

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"wcle/internal/algo"
	"wcle/internal/serve"
)

// Client is one connection to a coordinator, good for any number of
// sequential submissions. Safe for concurrent use; submissions serialize
// on the connection (the coordinator serializes jobs anyway).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	w    *bufio.Writer
}

// Dial connects to a coordinator.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("cluster: dialing coordinator %s: %w", addr, err)
	}
	return &Client{conn: conn, w: bufio.NewWriter(conn)}, nil
}

// Elect submits one election and blocks until the merged result.
func (c *Client) Elect(spec JobSpec) (*Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeJSONFrame(c.w, frameSubmit, spec); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	f, err := readFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("cluster: awaiting outcome: %w", err)
	}
	if f.typ != frameOutcome {
		return nil, fmt.Errorf("cluster: expected outcome, got %s", frameName(f.typ))
	}
	var out outcomeMsg
	if err := decodeJSON(f, &out); err != nil {
		return nil, err
	}
	if out.Err != "" {
		return nil, fmt.Errorf("cluster: %s", out.Err)
	}
	if out.Result == nil {
		return nil, fmt.Errorf("cluster: coordinator answered with neither result nor error")
	}
	return out.Result, nil
}

// Close releases the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// RunElection implements electd's serve.ClusterElector: one election on
// the cluster, returning the merged backend-independent outcome.
func (c *Client) RunElection(spec serve.GraphSpec, algorithm string, seed int64, resend, assumedN int) (*algo.Outcome, error) {
	res, err := c.Elect(JobSpec{
		Graph:     spec,
		Algorithm: algorithm,
		Seed:      seed,
		Resend:    resend,
		AssumedN:  assumedN,
	})
	if err != nil {
		return nil, err
	}
	return &res.Outcome, nil
}

// Submit is the one-shot convenience: dial, elect, close.
func Submit(addr string, spec JobSpec) (*Result, error) {
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.Elect(spec)
}

// Local is an in-process cluster on loopback TCP: a coordinator plus
// shards-1 worker goroutines, each speaking the real wire protocol.
// Tests, experiments (E19), and examples use it to get wire-level
// elections without spawning processes.
type Local struct {
	Coord   *Coordinator
	workers []*Worker
	done    chan error
}

// StartLocal assembles a shards-process-shaped cluster inside this
// process, on 127.0.0.1 ephemeral ports.
func StartLocal(shards int) (*Local, error) {
	coord, err := NewCoordinator(CoordinatorConfig{Listen: "127.0.0.1:0", Shards: shards})
	if err != nil {
		return nil, err
	}
	l := &Local{Coord: coord, done: make(chan error, shards)}
	for i := 1; i < shards; i++ {
		w, err := NewWorker(WorkerConfig{Bootstrap: coord.Addr(), Shard: i, Listen: "127.0.0.1:0"})
		if err != nil {
			l.Close()
			return nil, err
		}
		l.workers = append(l.workers, w)
		go func() { l.done <- w.Run() }()
	}
	return l, nil
}

// Elect runs one election on the local cluster.
func (l *Local) Elect(spec JobSpec) (*Result, error) { return l.Coord.Elect(spec) }

// Close shuts the cluster down and waits for the workers to exit.
func (l *Local) Close() error {
	l.Coord.Shutdown()
	var firstErr error
	for range l.workers {
		select {
		case err := <-l.done:
			if err != nil && firstErr == nil {
				firstErr = err
			}
		case <-time.After(10 * time.Second):
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: worker did not exit within 10s of shutdown")
			}
		}
	}
	return firstErr
}
