package cluster

// Client side: submit elections to a running cluster's coordinator over
// TCP. cmd/electnode -submit, electd's cluster mode, and the wcle facade's
// ElectCluster all go through here.

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"wcle/internal/algo"
	"wcle/internal/obs"
	"wcle/internal/serve"
)

// Client is one connection to a coordinator, good for any number of
// sequential submissions. Safe for concurrent use; submissions serialize
// on the connection (the coordinator serializes jobs anyway).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	w    *bufio.Writer
}

// Dial connects to a coordinator.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("cluster: dialing coordinator %s: %w", addr, err)
	}
	return &Client{conn: conn, w: bufio.NewWriter(conn)}, nil
}

// Elect submits one election and blocks until the merged result.
func (c *Client) Elect(spec JobSpec) (*Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeJSONFrame(c.w, frameSubmit, spec); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	f, err := readFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("cluster: awaiting outcome: %w", err)
	}
	if f.typ != frameOutcome {
		return nil, fmt.Errorf("cluster: expected outcome, got %s", frameName(f.typ))
	}
	var out outcomeMsg
	if err := decodeJSON(f, &out); err != nil {
		return nil, err
	}
	if out.Err != "" {
		return nil, fmt.Errorf("cluster: %s", out.Err)
	}
	if out.Result == nil {
		return nil, fmt.Errorf("cluster: coordinator answered with neither result nor error")
	}
	return out.Result, nil
}

// Run is Elect under its protocol-generic name: with spec.Protocol set,
// the job runs any registered engine protocol across the shards.
func (c *Client) Run(spec JobSpec) (*Result, error) { return c.Elect(spec) }

// Close releases the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// RunElection implements electd's serve.ClusterElector: one election on
// the cluster, returning the merged backend-independent outcome plus the
// wire traffic it cost (electd exports it through /metrics). The fault
// spec rides along — every plane it can express is shard-safe, so the
// outcome stays seed-deterministic on the wire.
func (c *Client) RunElection(spec serve.GraphSpec, algorithm string, seed int64, resend, assumedN int, fault serve.FaultSpec) (*algo.Outcome, serve.ClusterWire, error) {
	res, err := c.Elect(JobSpec{
		Graph:     spec,
		Algorithm: algorithm,
		Seed:      seed,
		Resend:    resend,
		AssumedN:  assumedN,
		Fault:     fault,
	})
	if err != nil {
		return nil, serve.ClusterWire{}, err
	}
	w := res.Wire
	return &res.Outcome, serve.ClusterWire{
		Frames:           w.Frames,
		Bytes:            w.Bytes,
		Envelopes:        w.Envelopes,
		Barriers:         w.Barriers,
		BarrierFrames:    w.BarrierFrames,
		CompressedFrames: w.CompressedFrames,
		RawBytes:         w.RawBytes,
		CompressedBytes:  w.CompressedBytes,
	}, nil
}

// Submit is the one-shot convenience: dial, elect, close.
func Submit(addr string, spec JobSpec) (*Result, error) {
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.Elect(spec)
}

// Local is an in-process cluster on loopback TCP: a coordinator plus
// shards-1 worker goroutines, each speaking the real wire protocol.
// Tests, experiments (E19, E20), and examples use it to get wire-level
// elections — and process-shaped crashes via Kill/Restart — without
// spawning processes.
type Local struct {
	Coord *Coordinator

	traceSink obs.Sink // forwarded to restarted workers too

	mu      sync.Mutex
	workers map[int]*localWorker
}

// localWorker is one worker goroutine standing in for a shard process.
type localWorker struct {
	w    *Worker
	done chan error
}

// LocalOptions tunes a StartLocalWith cluster.
type LocalOptions struct {
	// LegacyBarrier forces the frameReady/frameAdvance coordinator star
	// instead of piggybacked round advancement.
	LegacyBarrier bool
	// Compress enables threshold-gated flate compression of data frames.
	Compress bool
	// NoByzantine negotiates the Byzantine fault-injection capability off;
	// the session then refuses adversarial job specs.
	NoByzantine bool
	// TraceSink, when non-nil, receives every trace event of every shard
	// (coordinator and workers share it; sinks are concurrency-safe).
	TraceSink obs.Sink
}

// StartLocal assembles a shards-process-shaped cluster inside this
// process, on 127.0.0.1 ephemeral ports.
func StartLocal(shards int) (*Local, error) {
	return StartLocalWith(shards, LocalOptions{})
}

// StartLocalWith is StartLocal with session options.
func StartLocalWith(shards int, opt LocalOptions) (*Local, error) {
	coord, err := NewCoordinator(CoordinatorConfig{
		Listen:        "127.0.0.1:0",
		Shards:        shards,
		LegacyBarrier: opt.LegacyBarrier,
		Compress:      opt.Compress,
		NoByzantine:   opt.NoByzantine,
		TraceSink:     opt.TraceSink,
	})
	if err != nil {
		return nil, err
	}
	l := &Local{Coord: coord, traceSink: opt.TraceSink, workers: map[int]*localWorker{}}
	for i := 1; i < shards; i++ {
		if err := l.startWorker(i); err != nil {
			l.Close()
			return nil, err
		}
	}
	return l, nil
}

func (l *Local) startWorker(shard int) error {
	w, err := NewWorker(WorkerConfig{Bootstrap: l.Coord.Addr(), Shard: shard, Listen: "127.0.0.1:0", TraceSink: l.traceSink})
	if err != nil {
		return err
	}
	lw := &localWorker{w: w, done: make(chan error, 1)}
	l.mu.Lock()
	l.workers[shard] = lw
	l.mu.Unlock()
	go func() { lw.done <- w.Run() }()
	return nil
}

// Elect runs one election on the local cluster.
func (l *Local) Elect(spec JobSpec) (*Result, error) { return l.Coord.Elect(spec) }

// Run is Elect under its protocol-generic name (see Coordinator.Run).
func (l *Local) Run(spec JobSpec) (*Result, error) { return l.Coord.Elect(spec) }

// TraceEvents merges every shard's flight-recorder snapshot (coordinator
// plus all running workers) into one timeline ordered by wall-clock start
// — the whole-cluster trace an E19-style run leaves behind without any
// sink configured up front.
func (l *Local) TraceEvents() []obs.Ev {
	evs := l.Coord.Flight().Snapshot()
	l.mu.Lock()
	for _, lw := range l.workers {
		evs = append(evs, lw.w.Flight().Snapshot()...)
	}
	l.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
	return evs
}

// Kill crashes one worker shard the way a dying process would: every
// connection and its listener close abruptly, mid-frame if one is in
// flight. It waits for the worker goroutine to exit. For fault tests;
// only meaningful under supervision (an unsupervised session breaks).
func (l *Local) Kill(shard int) error {
	l.mu.Lock()
	lw := l.workers[shard]
	delete(l.workers, shard)
	l.mu.Unlock()
	if lw == nil {
		return fmt.Errorf("cluster: no running worker for shard %d", shard)
	}
	lw.w.Kill()
	select {
	case <-lw.done:
		return nil
	case <-time.After(30 * time.Second):
		return fmt.Errorf("cluster: shard %d did not exit within 30s of Kill", shard)
	}
}

// Restart brings a killed shard back: a fresh worker joins through the
// bootstrap address and rejoins the supervised session at the next epoch
// boundary.
func (l *Local) Restart(shard int) error {
	l.mu.Lock()
	running := l.workers[shard] != nil
	l.mu.Unlock()
	if running {
		return fmt.Errorf("cluster: shard %d is still running", shard)
	}
	return l.startWorker(shard)
}

// Close shuts the cluster down and waits for the workers to exit.
func (l *Local) Close() error {
	l.Coord.Shutdown()
	l.mu.Lock()
	workers := make([]*localWorker, 0, len(l.workers))
	for _, lw := range l.workers {
		workers = append(workers, lw)
	}
	l.workers = map[int]*localWorker{}
	l.mu.Unlock()
	var firstErr error
	for _, lw := range workers {
		select {
		case err := <-lw.done:
			if err != nil && firstErr == nil {
				firstErr = err
			}
		case <-time.After(10 * time.Second):
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: worker did not exit within 10s of shutdown")
			}
		}
	}
	return firstErr
}
