package cluster

import (
	"strings"
	"testing"
	"time"

	"wcle/internal/algo"
	"wcle/internal/graph"
	"wcle/internal/serve"
	"wcle/internal/sim"
)

// superviseEvents starts a supervision that forwards every event into a
// buffered channel.
func superviseEvents(t *testing.T, c *Coordinator, spec JobSpec) (*Supervision, chan Event) {
	t.Helper()
	events := make(chan Event, 64)
	sup, err := c.Supervise(SuperviseConfig{
		Spec:    spec,
		OnEvent: func(ev Event) { events <- ev },
	})
	if err != nil {
		t.Fatal(err)
	}
	return sup, events
}

// awaitEvent blocks for the next event of the wanted kind, failing the
// test on timeout. Events of other kinds are reported and skipped.
func awaitEvent(t *testing.T, events chan Event, kind EventKind) Event {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case ev := <-events:
			t.Logf("supervision event: %+v", ev)
			if ev.Kind == kind {
				return ev
			}
		case <-deadline:
			t.Fatalf("no %s event within 30s", kind)
		}
	}
}

// TestSupervisionReelectsAfterCrash is the tentpole scenario: kill the
// shard hosting the leader mid-lease and the supervisor must detect the
// death, quiesce the survivors, shrink the membership, and elect exactly
// one new leader — then fold the shard back in when it rejoins.
func TestSupervisionReelectsAfterCrash(t *testing.T) {
	local, err := StartLocal(3)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	spec := JobSpec{Graph: serve.GraphSpec{Family: "clique", N: 12, Seed: 3}, Algorithm: algo.KPPRT, Seed: 9}
	sup, events := superviseEvents(t, local.Coord, spec)

	lease1 := awaitEvent(t, events, EventLease)
	if lease1.Epoch != 1 {
		t.Fatalf("first lease at epoch %d, want 1", lease1.Epoch)
	}
	// Epoch 1 must satisfy the keystone contract: same leader as the
	// in-process sim at the same seed.
	want, _ := electInProcess(t, spec)
	reigns := sup.Reigns()
	if len(reigns) != 1 {
		t.Fatalf("expected 1 reign after the first lease, got %d", len(reigns))
	}
	assertOutcomesMatch(t, want, &reigns[0].Result.Outcome)
	if reigns[0].Leader != want.Leaders[0] {
		t.Fatalf("reign leader %d, in-process leader %d", reigns[0].Leader, want.Leaders[0])
	}

	// Kill the leader's shard (or shard 1 when the coordinator hosts the
	// leader — the coordinator cannot die, but any membership change must
	// still trigger a re-election).
	victim := lease1.LeaderShard
	if victim == 0 {
		victim = 1
	}
	if err := local.Kill(victim); err != nil {
		t.Fatal(err)
	}
	death := awaitEvent(t, events, EventDeath)
	if death.Shard != victim {
		t.Fatalf("declared shard %d dead, killed %d", death.Shard, victim)
	}
	lease2 := awaitEvent(t, events, EventLease)
	if lease2.Epoch <= 1 {
		t.Fatalf("re-election did not advance the epoch: %d", lease2.Epoch)
	}
	reigns = sup.Reigns()
	second := reigns[len(reigns)-1]
	if len(second.Result.Outcome.Leaders) != 1 {
		t.Fatalf("re-election produced %d leaders", len(second.Result.Outcome.Leaders))
	}
	if second.LeaderShard == victim {
		t.Fatalf("new leader hosted on the dead shard %d", victim)
	}
	lo, hi := shardLo(12, 3, victim), shardLo(12, 3, victim+1)
	for _, m := range second.Members {
		if m >= lo && m < hi {
			t.Fatalf("membership %v still contains node %d of dead shard %d", second.Members, m, victim)
		}
	}
	// The survivor reign is itself deterministic: it must equal an
	// in-process election over the induced survivor subgraph at the
	// derived epoch seed.
	g0, err := spec.Graph.Build()
	if err != nil {
		t.Fatal(err)
	}
	gi, err := graph.Induced(g0, second.Members)
	if err != nil {
		t.Fatal(err)
	}
	a, err := spec.backend()
	if err != nil {
		t.Fatal(err)
	}
	if second.Attempts != 1 || second.Seed != sim.DeriveSeed(spec.Seed, second.Epoch) {
		t.Fatalf("deterministic backend needed %d attempts, reign seed %d", second.Attempts, second.Seed)
	}
	ref, err := a.Run(gi, algo.Options{Seed: second.Seed})
	if err != nil {
		t.Fatal(err)
	}
	assertOutcomesMatch(t, ref, &second.Result.Outcome)

	// Bring the shard back: the supervisor folds it in and re-elects over
	// the full graph again.
	if err := local.Restart(victim); err != nil {
		t.Fatal(err)
	}
	rejoin := awaitEvent(t, events, EventRejoin)
	if rejoin.Shard != victim {
		t.Fatalf("rejoin event for shard %d, restarted %d", rejoin.Shard, victim)
	}
	lease3 := awaitEvent(t, events, EventLease)
	if lease3.Epoch <= lease2.Epoch {
		t.Fatalf("rejoin did not advance the epoch: %d after %d", lease3.Epoch, lease2.Epoch)
	}
	reigns = sup.Reigns()
	third := reigns[len(reigns)-1]
	if third.Members != nil {
		t.Fatalf("post-rejoin reign should span the full graph, got members %v", third.Members)
	}
	if len(third.Result.Outcome.Leaders) != 1 {
		t.Fatalf("post-rejoin election produced %d leaders", len(third.Result.Outcome.Leaders))
	}

	sup.Stop()
	if _, err := sup.Wait(); err != nil {
		t.Fatalf("supervision ended with error: %v", err)
	}
	// The quiesced session stays usable for ad-hoc elections.
	res, err := local.Elect(spec)
	if err != nil {
		t.Fatalf("post-supervision election: %v", err)
	}
	assertOutcomesMatch(t, want, &res.Outcome)
}

// TestSupervisionGatesAdHocElections: while a supervision owns the
// session, Elect refuses; after Stop it serves again.
func TestSupervisionGatesAdHocElections(t *testing.T) {
	local, err := StartLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	spec := JobSpec{Graph: serve.GraphSpec{Family: "clique", N: 8, Seed: 1}, Algorithm: algo.KPPRT, Seed: 4}
	sup, events := superviseEvents(t, local.Coord, spec)
	awaitEvent(t, events, EventLease)
	if _, err := local.Elect(spec); err == nil || !strings.Contains(err.Error(), "supervision") {
		t.Fatalf("ad-hoc election under supervision should be refused, got %v", err)
	}
	if _, err := local.Coord.Supervise(SuperviseConfig{Spec: spec}); err == nil {
		t.Fatal("second concurrent supervision accepted")
	}
	sup.Stop()
	if _, err := sup.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := local.Elect(spec); err != nil {
		t.Fatalf("session unusable after supervision stopped: %v", err)
	}
}
