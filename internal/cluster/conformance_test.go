package cluster

// The cluster transport as an algotest conformance target: the whole
// cross-backend invariant battery (one-leader, replay determinism,
// DebugFrom anonymity, message conservation) runs over loopback TCP, on a
// 3-shard cluster, for every registered backend. Excluded from -short:
// each assertion is a full wire-level election.

import (
	"reflect"
	"testing"

	"wcle/internal/algo"
	"wcle/internal/algo/algotest"
	"wcle/internal/core"
	"wcle/internal/graph"
	"wcle/internal/serve"
)

// explicitSpec converts a built conformance graph into an explicit-edge
// GraphSpec. The cluster rebuilds the graph from the edge list with the
// spec's seed, deterministically — all shards and all replays see the
// identical port numbering, which is what the conformance invariants
// quantify over.
func explicitSpec(g *graph.Graph) serve.GraphSpec {
	edges := make([][2]int, 0, g.M())
	for _, e := range g.Edges() {
		edges = append(edges, [2]int{e.U, e.V})
	}
	return serve.GraphSpec{Family: "explicit", N: g.N(), Edges: edges, Seed: 1}
}

// clusterSpec maps the conformance-relevant backend knobs onto a JobSpec.
func clusterSpec(name string, cfg algo.Config, g *graph.Graph, opts algo.Options) JobSpec {
	spec := JobSpec{
		Graph:     explicitSpec(g),
		Algorithm: name,
		Seed:      opts.Seed,
		DebugFrom: opts.DebugFrom,
		MaxRounds: opts.MaxRounds,
		Resend:    cfg.Core.Resend,
		AssumedN:  cfg.Core.AssumedN,
		Horizon:   cfg.Horizon,
		Hops:      cfg.Sublinear.Hops,
		Window:    cfg.Sublinear.Window,
	}
	if !reflect.DeepEqual(cfg.Core, core.Config{}) {
		spec.C1 = cfg.Core.C1
		spec.C2 = cfg.Core.C2
		spec.MaxWalkLen = cfg.Core.MaxWalkLen
	}
	return spec
}

// clusterRunner adapts a Local cluster to the algotest Runner contract.
func clusterRunner(local *Local) algotest.Runner {
	return func(name string, cfg algo.Config, g *graph.Graph, opts algo.Options) (*algo.Outcome, error) {
		res, err := local.Elect(clusterSpec(name, cfg, g, opts))
		if err != nil {
			return nil, err
		}
		return &res.Outcome, nil
	}
}

// clusterFaultRunner is the FaultRunner analogue: the adversary ships in
// the JobSpec and every shard rebuilds it locally, sender-keyed.
func clusterFaultRunner(local *Local) algotest.FaultRunner {
	return func(name string, cfg algo.Config, g *graph.Graph, opts algo.Options, fault serve.FaultSpec) (*algo.Outcome, error) {
		spec := clusterSpec(name, cfg, g, opts)
		spec.Fault = fault
		res, err := local.Elect(spec)
		if err != nil {
			return nil, err
		}
		return &res.Outcome, nil
	}
}

func startConformanceCluster(t *testing.T) *Local {
	return startConformanceClusterWith(t, LocalOptions{})
}

func startConformanceClusterWith(t *testing.T, opt LocalOptions) *Local {
	t.Helper()
	if testing.Short() {
		t.Skip("runs full elections over loopback TCP; skipped in -short mode")
	}
	local, err := StartLocalWith(3, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := local.Close(); err != nil {
			t.Errorf("cluster shutdown: %v", err)
		}
	})
	return local
}

// lowerCompressionThreshold makes conformance-sized elections cross the
// compression gate so frameDataZ actually carries the battery.
func lowerCompressionThreshold(t *testing.T) {
	t.Helper()
	old := compressMinBytes
	compressMinBytes = 32
	t.Cleanup(func() { compressMinBytes = old })
}

// Per-graph configurations mirror the in-process conformance suite
// (internal/algo/conformance_test.go): regime knobs for poorly connected
// graphs, not special cases.

func TestClusterConformanceGilbertRS18(t *testing.T) {
	local := startConformanceCluster(t)
	algotest.ConformanceOn(t, algo.GilbertRS18, func(name string, g *graph.Graph) algo.Config {
		cfg := core.DefaultConfig()
		switch name {
		case "cycle12":
			cfg.C1 = 3
			cfg.MaxWalkLen = 1024
		case "torus4x4":
			cfg.MaxWalkLen = 1024
		}
		return algo.Config{Core: cfg}
	}, []int64{0, 1}, clusterRunner(local))
}

func TestClusterConformanceFloodMax(t *testing.T) {
	local := startConformanceCluster(t)
	algotest.ConformanceOn(t, algo.FloodMax, func(name string, g *graph.Graph) algo.Config {
		return algo.Config{}
	}, []int64{0, 1}, clusterRunner(local))
}

func TestClusterConformanceKPPRT(t *testing.T) {
	local := startConformanceCluster(t)
	algotest.ConformanceOn(t, algo.KPPRT, func(name string, g *graph.Graph) algo.Config {
		var sub algo.SublinearConfig
		switch name {
		case "cycle12":
			sub.Hops, sub.Window = 300, 2000
		case "torus4x4":
			sub.Hops = 100
		}
		return algo.Config{Sublinear: sub}
	}, []int64{0, 1}, clusterRunner(local))
}

// The fault-parity suite is the keystone contract extended to faulty
// runs: for every battery adversary, a cluster election over real TCP
// must be byte-identical — leaders, rounds, message counts, and the
// adversary's own drop/delay counters — to the in-process sim at the
// same seed. Shard-safe sender-keyed fault randomness is what makes
// this hold; these tests are the CI enforcement of that design.

func faultCfg(name string, g *graph.Graph) algo.Config { return algo.Config{} }

// explicitFaultRunner is the parity reference: the in-process sim over
// the same explicit-edge rebuild the cluster performs, so both sides see
// the identical port numbering.
func explicitFaultRunner(name string, cfg algo.Config, g *graph.Graph, opts algo.Options, fault serve.FaultSpec) (*algo.Outcome, error) {
	ge, err := explicitSpec(g).Build()
	if err != nil {
		return nil, err
	}
	return algotest.InProcessFaultRunner(name, cfg, ge, opts, fault)
}

func TestClusterFaultParityGilbertRS18(t *testing.T) {
	local := startConformanceCluster(t)
	algotest.FaultParityOn(t, algo.GilbertRS18, func(name string, g *graph.Graph) algo.Config {
		return algo.Config{Core: core.DefaultConfig()}
	}, []int64{1}, explicitFaultRunner, clusterFaultRunner(local))
}

func TestClusterFaultParityFloodMax(t *testing.T) {
	local := startConformanceCluster(t)
	algotest.FaultParityOn(t, algo.FloodMax, faultCfg, []int64{1},
		explicitFaultRunner, clusterFaultRunner(local))
}

func TestClusterFaultParityKPPRT(t *testing.T) {
	local := startConformanceCluster(t)
	algotest.FaultParityOn(t, algo.KPPRT, faultCfg, []int64{1},
		explicitFaultRunner, clusterFaultRunner(local))
}

// Compressed-session battery: the same conformance + fault-parity
// invariants with flate-compressed data frames, proving the codec is
// transparent to the determinism contract (not just to a happy-path
// election).

func TestClusterConformanceCompressed(t *testing.T) {
	lowerCompressionThreshold(t)
	local := startConformanceClusterWith(t, LocalOptions{Compress: true})
	algotest.ConformanceOn(t, algo.FloodMax, func(name string, g *graph.Graph) algo.Config {
		return algo.Config{}
	}, []int64{0, 1}, clusterRunner(local))
}

func TestClusterFaultParityCompressed(t *testing.T) {
	lowerCompressionThreshold(t)
	local := startConformanceClusterWith(t, LocalOptions{Compress: true})
	algotest.FaultParityOn(t, algo.FloodMax, faultCfg, []int64{1},
		explicitFaultRunner, clusterFaultRunner(local))
}

// Legacy-star battery: mixed-version clusters fall back to the
// frameReady/frameAdvance path; parity must hold there too.

func TestClusterFaultParityLegacyBarrier(t *testing.T) {
	local := startConformanceClusterWith(t, LocalOptions{LegacyBarrier: true})
	algotest.FaultParityOn(t, algo.FloodMax, faultCfg, []int64{1},
		explicitFaultRunner, clusterFaultRunner(local))
}

// Byzantine parity battery: the acceptance contract of the active
// adversary. Mutation runs at dispatch on the sender-hosting shard with
// sender-keyed randomness, so the forged bytes themselves cross the TCP
// links — a same-seed cluster run must be byte-identical to the
// in-process sim, forgery for forgery, with and without the committee
// defense.

func TestClusterByzantineParityFloodMax(t *testing.T) {
	local := startConformanceCluster(t)
	algotest.ByzantineParityOn(t, algo.FloodMax, faultCfg, []int64{1},
		explicitFaultRunner, clusterFaultRunner(local))
}

func TestClusterByzantineParityKPPRT(t *testing.T) {
	local := startConformanceCluster(t)
	algotest.ByzantineParityOn(t, algo.KPPRT, faultCfg, []int64{1},
		explicitFaultRunner, clusterFaultRunner(local))
}

// TestClusterByzantineConformance runs the full in-process Byzantine
// invariant battery (outcome discipline, honest pinned leaders, replay,
// anonymity) with the cluster as the delivery plane.
func TestClusterByzantineConformance(t *testing.T) {
	local := startConformanceCluster(t)
	algotest.ByzantineConformanceOn(t, algo.FloodMax, faultCfg, []int64{1}, clusterFaultRunner(local))
}

// TestClusterRejectsByzantineWhenNegotiatedOff: a session that negotiated
// the capability off (one old binary is enough in the wild; NoByzantine
// forces it here) must refuse adversarial specs outright instead of
// running them inconsistently.
func TestClusterRejectsByzantineWhenNegotiatedOff(t *testing.T) {
	local := startConformanceClusterWith(t, LocalOptions{NoByzantine: true})
	spec := JobSpec{
		Graph:     serve.GraphSpec{Family: "clique", N: 12, Seed: 1},
		Algorithm: algo.FloodMax,
		Seed:      1,
		Fault:     serve.FaultSpec{Byz: 0.2},
	}
	if _, err := local.Elect(spec); err == nil {
		t.Fatal("session without the byzantine capability accepted a byzantine job")
	}
	// The same session still runs omission-plane jobs: the capability
	// gates mutation, not faults in general.
	spec.Fault = serve.FaultSpec{Drop: 0.05}
	res, err := local.Elect(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Metrics.Mutated != 0 {
		t.Fatalf("omission-only job reported %d mutations", res.Outcome.Metrics.Mutated)
	}
}
