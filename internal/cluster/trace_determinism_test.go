package cluster

import (
	"reflect"
	"testing"

	"wcle/internal/obs"
	"wcle/internal/serve"
)

// TestClusterTracerPreservesDeterminism is the wire-plane half of the
// observability contract (DESIGN.md section 10.1): attaching an extra
// trace sink to every shard must not perturb the election. A cluster
// run with an external TraceSink produces the identical leader, rounds,
// message totals, and per-node send counts as the same spec on a
// flight-ring-only cluster — and the sink actually sees the run.
func TestClusterTracerPreservesDeterminism(t *testing.T) {
	spec := JobSpec{
		Graph: serve.GraphSpec{Family: "rr", N: 24, D: 6, Seed: 7},
		Seed:  41,
	}

	plainCluster, err := StartLocal(3)
	if err != nil {
		t.Fatal(err)
	}
	defer plainCluster.Close()
	plain, err := plainCluster.Elect(spec)
	if err != nil {
		t.Fatalf("flight-ring-only cluster elect: %v", err)
	}

	sink := obs.NewRing(0)
	tracedCluster, err := StartLocalWith(3, LocalOptions{TraceSink: sink})
	if err != nil {
		t.Fatal(err)
	}
	defer tracedCluster.Close()
	traced, err := tracedCluster.Elect(spec)
	if err != nil {
		t.Fatalf("traced cluster elect: %v", err)
	}

	if len(sink.Snapshot()) == 0 {
		t.Fatal("the external trace sink saw nothing; the cluster run was not actually traced")
	}
	if len(tracedCluster.TraceEvents()) == 0 {
		t.Fatal("TraceEvents is empty on the traced cluster")
	}

	assertOutcomesMatch(t, &plain.Outcome, &traced.Outcome)
	if !reflect.DeepEqual(plain.PerNodeMessages, traced.PerNodeMessages) {
		t.Fatalf("per-node send counts diverged with a trace sink attached:\n  plain:  %v\n  traced: %v",
			plain.PerNodeMessages, traced.PerNodeMessages)
	}
}
