// Package cluster is the wire-level runtime: it runs the registered
// election backends over real TCP between electnode processes, one process
// per shard of the graph.
//
// Every process hosts a contiguous slice of the graph's nodes and runs the
// ordinary sim engine over the full graph structure (built deterministically
// from the job's GraphSpec), stepping only its own nodes. Edges whose
// endpoints live in the same shard short-circuit through the in-memory
// transport; cross-shard edges travel as length-prefixed binary envelopes
// (internal/wire) over one TCP connection per process pair. A
// coordinator-led round barrier preserves the synchronous-round semantics:
// after each stepped round every shard flushes its cross-shard traffic to
// every peer, reports its earliest pending event round to the coordinator,
// and adopts the agreed global minimum — so the cluster skips idle rounds
// exactly like the single-process scheduler, and a run's outcome is
// byte-identical to the in-process sim for the same seed (the keystone
// invariant, enforced by TestClusterMatchesInProcessSim).
//
// Topology and session flow:
//
//   - shard 0 is the coordinator: it listens, admits the other shards
//     (hello → peer directory → pairwise dials → up), and owns job
//     control (start/result) plus the barrier's advance decision;
//   - workers join via the coordinator's bootstrap address, listen for
//     their higher-numbered peers, and dial their lower-numbered ones;
//   - clients (cmd/electnode -submit, electd's cluster mode, the wcle
//     facade's ElectCluster) dial the coordinator and submit JobSpecs;
//     the coordinator fans the job out, runs its own shard, merges the
//     per-shard partial outcomes, and answers.
//
// The barrier handshake is deliberately split into a peer-to-peer flush
// (data frames carry an epoch, so every shard can verify it is in the same
// iteration) and a coordinator round-trip (ready/advance): decentralizing
// the advance decision later only means replacing the second half.
//
// Fault planes ride along on cluster runs: every plane the wire spec can
// express (drop, delay, crash, partition, and their compositions) keys
// its randomness per sending node, so each shard reproduces exactly the
// fate stream of the senders it hosts and a faulty cluster run stays
// byte-identical to the in-process sim at the same seed (the fault-parity
// suite in conformance_test.go enforces this per backend). Message
// budgets remain rejected: a budget consumes one stream ordered by the
// global send sequence, which a sharded run does not reproduce (see
// sim.RemotePlane and sim.ShardAware).
//
// Sessions can also run supervised (Coordinator.Supervise): the election
// winner holds a lease, workers heartbeat, and the supervisor answers
// shard death — detected through connection errors or heartbeat silence —
// with an epoch bump, a marker-exchange quiesce of the survivors, and a
// re-election over the induced survivor subgraph. Crashed shards that
// dial back in are folded in the same way. See supervisor.go.
package cluster
