package cluster

// The generalized keystone contract, enforced over real TCP: any
// registered engine protocol — the dissemination substrates and the
// elections run through the generic path — must produce byte-identical
// output matrices, per-node send counts, and fault counters on a 3-shard
// loopback cluster and the in-process sim at the same seed, on the
// perfect plane and under every battery adversary. Excluded from -short:
// each cell is a full wire-level run.

import (
	"fmt"
	"testing"

	"wcle/internal/algo"
	"wcle/internal/algo/algotest"
	"wcle/internal/engine"
	"wcle/internal/graph"
	"wcle/internal/serve"
)

// clusterProtocolRunner ships the protocol job over the wire and returns
// the merged engine report.
func clusterProtocolRunner(local *Local) algotest.ProtocolRunner {
	return func(name string, cfg engine.Config, g *graph.Graph, seed int64, debugFrom bool, fault serve.FaultSpec) (*engine.Result, error) {
		res, err := local.Run(JobSpec{
			Graph:     explicitSpec(g),
			Protocol:  name,
			Engine:    cfg,
			Seed:      seed,
			DebugFrom: debugFrom,
			Fault:     fault,
		})
		if err != nil {
			return nil, err
		}
		if res.Engine == nil {
			return nil, fmt.Errorf("cluster: protocol job came back without an engine report")
		}
		return res.Engine, nil
	}
}

// explicitProtocolRunner is the parity reference: the in-process sim over
// the same explicit-edge rebuild the cluster performs, so both sides see
// the identical port numbering.
func explicitProtocolRunner(name string, cfg engine.Config, g *graph.Graph, seed int64, debugFrom bool, fault serve.FaultSpec) (*engine.Result, error) {
	ge, err := explicitSpec(g).Build()
	if err != nil {
		return nil, err
	}
	return algotest.InProcessProtocolRunner(name, cfg, ge, seed, debugFrom, fault)
}

func zeroEngineCfg(string, *graph.Graph) engine.Config { return engine.Config{} }

func TestClusterProtocolParityPushPull(t *testing.T) {
	local := startConformanceCluster(t)
	algotest.ProtocolParityOn(t, engine.PushPull, zeroEngineCfg, []int64{1},
		explicitProtocolRunner, clusterProtocolRunner(local))
}

func TestClusterProtocolParityBFSTree(t *testing.T) {
	local := startConformanceCluster(t)
	algotest.ProtocolParityOn(t, engine.BFSTree, zeroEngineCfg, []int64{1},
		explicitProtocolRunner, clusterProtocolRunner(local))
}

func TestClusterProtocolParityAggregate(t *testing.T) {
	local := startConformanceCluster(t)
	algotest.ProtocolParityOn(t, engine.Aggregate, func(string, *graph.Graph) engine.Config {
		return engine.Config{Op: "sum"}
	}, []int64{1}, explicitProtocolRunner, clusterProtocolRunner(local))
}

// TestClusterProtocolParityElection runs an election backend through the
// protocol-generic path: the cluster never learns it is an election, yet
// the engine report must still match the sim cell for cell.
func TestClusterProtocolParityElection(t *testing.T) {
	local := startConformanceCluster(t)
	algotest.ProtocolParityOn(t, algo.GilbertRS18, zeroEngineCfg, []int64{1},
		explicitProtocolRunner, clusterProtocolRunner(local))
}

// Byzantine parity through the engine path: the forged bytes themselves
// cross the wire, undefended and under the committee defense. The
// defended variant is the acceptance test for the whole adversarial
// plane: claim frames, quorum decisions, and the vouch fast path must
// replay byte-identically over TCP at the same seed.

func TestClusterByzantineProtocolParityPushPull(t *testing.T) {
	local := startConformanceCluster(t)
	algotest.ByzantineProtocolParityOn(t, engine.PushPull, zeroEngineCfg, []int64{1},
		explicitProtocolRunner, clusterProtocolRunner(local))
}

func TestClusterByzantineProtocolParityDefended(t *testing.T) {
	local := startConformanceCluster(t)
	algotest.ByzantineProtocolParityOn(t, engine.PushPull, func(string, *graph.Graph) engine.Config {
		// The defense stretches every logical round into ~Copies physical
		// rounds, so the defended run needs a scaled horizon.
		return engine.Config{Defend: true, Horizon: 400}
	}, []int64{1}, explicitProtocolRunner, clusterProtocolRunner(local))
}
