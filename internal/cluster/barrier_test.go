package cluster

// Barrier-mode tests: the keystone determinism contract must hold — and
// the wire counters must tell the truth — in every negotiated session
// mode: piggybacked advancement (the default), the legacy ready/advance
// star (mixed-version fallback), and both with compression.

import (
	"fmt"
	"testing"

	"wcle/internal/algo"
	"wcle/internal/serve"
)

// TestBarrierModesKeystone runs the same seeds through every session
// mode and the in-process sim: identical leaders and per-node message
// counts everywhere, zero barrier control frames when piggybacked, and
// real savings when compressed.
func TestBarrierModesKeystone(t *testing.T) {
	// Force compression onto small elections so the compressed modes
	// actually exercise frameDataZ.
	oldMin := compressMinBytes
	compressMinBytes = 32
	defer func() { compressMinBytes = oldMin }()

	modes := []struct {
		name string
		opt  LocalOptions
	}{
		{"piggyback", LocalOptions{}},
		{"legacy", LocalOptions{LegacyBarrier: true}},
		{"piggyback-compressed", LocalOptions{Compress: true}},
		{"legacy-compressed", LocalOptions{LegacyBarrier: true, Compress: true}},
	}
	spec := JobSpec{Graph: serve.GraphSpec{Family: "clique", N: 18, Seed: 5}, Seed: 41}
	for _, backend := range algo.Names() {
		spec.Algorithm = backend
		want, wantCounts := electInProcess(t, spec)
		for _, mode := range modes {
			t.Run(fmt.Sprintf("%s/%s", backend, mode.name), func(t *testing.T) {
				local, err := StartLocalWith(3, mode.opt)
				if err != nil {
					t.Fatal(err)
				}
				defer local.Close()
				got, err := local.Elect(spec)
				if err != nil {
					t.Fatalf("cluster elect: %v", err)
				}
				assertOutcomesMatch(t, want, &got.Outcome)
				for v := range wantCounts {
					if got.PerNodeMessages[v] != wantCounts[v] {
						t.Fatalf("node %d sent %d on the cluster, %d in process", v, got.PerNodeMessages[v], wantCounts[v])
					}
				}
				w := got.Wire
				if mode.opt.LegacyBarrier {
					// The star costs 2(k-1) control frames per global
					// barrier: one ready per worker, one advance back.
					if globals := w.Barriers / 3; w.BarrierFrames != globals*4 {
						t.Errorf("legacy star sent %d control frames over %d global barriers, want %d",
							w.BarrierFrames, globals, globals*4)
					}
				} else if w.BarrierFrames != 0 {
					t.Errorf("piggybacked session sent %d barrier control frames, want 0", w.BarrierFrames)
				}
				if mode.opt.Compress {
					if w.CompressedFrames == 0 {
						t.Errorf("compressed session sent no compressed frames (wire %+v)", w)
					}
					if w.CompressedBytes >= w.RawBytes {
						t.Errorf("compression grew the wire: %d raw -> %d compressed", w.RawBytes, w.CompressedBytes)
					}
				} else if w.CompressedFrames != 0 || w.RawBytes != 0 || w.CompressedBytes != 0 {
					t.Errorf("uncompressed session reported compression counters: %+v", w)
				}
			})
		}
	}
}

// TestBarrierModesFaultParity: the keystone holds under a fault plane in
// every mode — drops/delays/crashes are sender-keyed, so piggybacked
// contributions still account for every in-flight envelope.
func TestBarrierModesFaultParity(t *testing.T) {
	oldMin := compressMinBytes
	compressMinBytes = 32
	defer func() { compressMinBytes = oldMin }()

	fault := serve.FaultSpec{Drop: 0.12, DelayMax: 3, CrashFrac: 0.1, CrashRound: 2}
	spec := JobSpec{
		Graph:     serve.GraphSpec{Family: "clique", N: 18, Seed: 5},
		Algorithm: algo.FloodMax,
		Seed:      17,
		Resend:    2,
		Fault:     fault,
	}
	g, err := spec.Graph.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := spec.backend()
	if err != nil {
		t.Fatal(err)
	}
	counter := &nodeCounter{counts: make([]int64, g.N())}
	want, err := a.Run(g, algo.Options{Seed: spec.Seed, Fault: fault.Plane(), Observer: counter})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		opt  LocalOptions
	}{
		{"piggyback", LocalOptions{}},
		{"legacy", LocalOptions{LegacyBarrier: true}},
		{"piggyback-compressed", LocalOptions{Compress: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			local, err := StartLocalWith(3, mode.opt)
			if err != nil {
				t.Fatal(err)
			}
			defer local.Close()
			got, err := local.Elect(spec)
			if err != nil {
				t.Fatal(err)
			}
			assertOutcomesMatch(t, want, &got.Outcome)
			if got.Outcome.Metrics.FaultDrops != want.Metrics.FaultDrops {
				t.Errorf("fault drops %d, want %d", got.Outcome.Metrics.FaultDrops, want.Metrics.FaultDrops)
			}
			for v := range counter.counts {
				if got.PerNodeMessages[v] != counter.counts[v] {
					t.Fatalf("node %d sent %d on the cluster, %d in process", v, got.PerNodeMessages[v], counter.counts[v])
				}
			}
		})
	}
}

// TestFrameQueueDeque pins the queue's deque semantics: FIFO order,
// pushFront landing ahead of queued frames, and head-slot reuse instead
// of a fresh allocation per pushFront.
func TestFrameQueueDeque(t *testing.T) {
	q := newFrameQueue()
	mk := func(i int) frame { return frame{typ: frameData, payload: []byte{byte(i)}} }
	for i := 0; i < 5; i++ {
		q.push(mk(i))
	}
	f, ok, err := q.tryNext()
	if err != nil || !ok || f.payload[0] != 0 {
		t.Fatalf("tryNext = %v %v %v, want frame 0", f, ok, err)
	}
	// Returning a frame after a pop must reuse the popped slot (no shift,
	// no fresh backing array) and come back out first.
	q.pushFront(mk(99))
	for _, wantB := range []byte{99, 1, 2, 3, 4} {
		f, ok, err := q.tryNext()
		if err != nil || !ok || f.payload[0] != wantB {
			t.Fatalf("tryNext = %v %v %v, want frame %d", f, ok, err, wantB)
		}
	}
	if _, ok, err := q.tryNext(); ok || err != nil {
		t.Fatalf("drained queue returned ok=%v err=%v", ok, err)
	}
	// Drained queue rewinds, so the backing array keeps being reused.
	if q.head != 0 || len(q.frames) != 0 {
		t.Fatalf("drained queue left head=%d len=%d", q.head, len(q.frames))
	}
	// pushFront on an empty queue still works (degenerates to push).
	q.pushFront(mk(7))
	if f, ok, _ := q.tryNext(); !ok || f.payload[0] != 7 {
		t.Fatalf("pushFront on empty queue lost the frame (%v %v)", f, ok)
	}
}

// TestFrameQueuePushFrontNoAlloc: re-queueing after a pop is
// allocation-free (the satellite fix for the old copy-everything
// pushFront).
func TestFrameQueuePushFrontNoAlloc(t *testing.T) {
	q := newFrameQueue()
	f := frame{typ: frameData}
	for i := 0; i < 64; i++ {
		q.push(f)
	}
	allocs := testing.AllocsPerRun(100, func() {
		g, ok, err := q.tryNext()
		if !ok || err != nil {
			t.Fatal("queue unexpectedly empty")
		}
		q.pushFront(g)
	})
	if allocs != 0 {
		t.Fatalf("pop+pushFront allocated %.1f times per run, want 0", allocs)
	}
}
