package cluster

// Job layer: what one election looks like on the wire (JobSpec), how one
// shard executes its slice of it (runShard), and how the coordinator folds
// the per-shard partial outcomes back into one algo.Outcome (merge).

import (
	"fmt"
	"sort"

	"wcle/internal/algo"
	"wcle/internal/baseline"
	"wcle/internal/core"
	"wcle/internal/engine"
	"wcle/internal/graph"
	"wcle/internal/obs"
	"wcle/internal/protocol"
	"wcle/internal/serve"
	"wcle/internal/sim"
)

// JobSpec describes one election for the cluster to run. Every shard
// rebuilds the graph from the spec (deterministic in the spec), so only
// parameters cross the wire, never adjacency.
type JobSpec struct {
	// Graph is the election's graph (family + parameters or an explicit
	// edge list; see serve.GraphSpec).
	Graph serve.GraphSpec `json:"graph"`
	// Algorithm names the election backend ("" = the registry default).
	Algorithm string `json:"algorithm,omitempty"`
	// Protocol, when set, runs the named engine-registry protocol instead
	// of the election path — push-pull broadcast, a BFS tree, an
	// aggregation, or any election by name. The merged Result then carries
	// Engine (the reassembled protocol-level report); Outcome holds only
	// the summed metrics. Engine parameterizes the protocol.
	Protocol string        `json:"protocol,omitempty"`
	Engine   engine.Config `json:"engine,omitempty"`
	// Seed drives all randomness of the run deterministically: the same
	// seed elects the same leader as the in-process sim.
	Seed int64 `json:"seed"`
	// Resend, AssumedN, C1, C2 and MaxWalkLen parameterize the
	// gilbertrs18 backend (core.Config fields of the same names; zero
	// keeps the default).
	Resend     int     `json:"resend,omitempty"`
	AssumedN   int     `json:"assumed_n,omitempty"`
	C1         float64 `json:"c1,omitempty"`
	C2         float64 `json:"c2,omitempty"`
	MaxWalkLen int     `json:"max_walk_len,omitempty"`
	// FixedTu pins the single-phase walk length of the gilbertrs18-fixed
	// backend (core.Config.FixedWalkLen; 0 keeps that backend's 4n
	// default).
	FixedTu int `json:"fixed_tu,omitempty"`
	// Horizon parameterizes floodmax; Hops and Window parameterize kpprt.
	Horizon int `json:"horizon,omitempty"`
	Hops    int `json:"hops,omitempty"`
	Window  int `json:"window,omitempty"`
	// MaxRounds overrides the backend's round cap (0 = backend default).
	MaxRounds int `json:"max_rounds,omitempty"`
	// Fault is the delivery-plane adversary applied to the run. Every
	// plane the spec can express is shard-safe (sender-keyed randomness),
	// so a faulty cluster run stays byte-identical to the in-process sim
	// at the same seed.
	Fault serve.FaultSpec `json:"fault,omitempty"`
	// Members, when non-empty, restricts the election to the induced
	// subgraph over these original node indices (strictly ascending),
	// renumbered 0..len(Members)-1. Node i is hosted by the shard that
	// owned Members[i] in the full graph; shards left with no members sit
	// the job out. This is how re-elections run after a shard dies: the
	// survivors elect over what remains.
	Members []int `json:"members,omitempty"`
	// DebugFrom stamps sender indices on delivered envelopes (debugging
	// only; outcomes must not depend on it).
	DebugFrom bool `json:"debug_from,omitempty"`
}

// owners resolves the spec's node->shard table and the election graph.
// With no member list this is the full graph under the contiguous
// balanced assignment; with one, the induced subgraph with each member
// kept on its original owner.
func (s JobSpec) owners(g0 *graph.Graph, shards int) (*graph.Graph, []int, error) {
	if len(s.Members) == 0 {
		return g0, contiguousOwners(g0.N(), shards), nil
	}
	g, err := graph.Induced(g0, s.Members)
	if err != nil {
		return nil, nil, err
	}
	owner := make([]int, len(s.Members))
	for i, m := range s.Members {
		owner[i] = ownerOf(g0.N(), shards, m)
	}
	return g, owner, nil
}

// liveShards reports which shards host at least one node of the job.
// Shard 0 is always live: it is the job's barrier coordinator even when
// it hosts nothing.
func liveShards(owner []int, shards int) []bool {
	live := make([]bool, shards)
	live[0] = true
	for _, s := range owner {
		live[s] = true
	}
	return live
}

// backend builds the configured algorithm instance for the spec.
func (s JobSpec) backend() (algo.Algorithm, error) {
	cfg := core.DefaultConfig()
	cfg.Resend = s.Resend
	cfg.AssumedN = s.AssumedN
	if s.C1 > 0 {
		cfg.C1 = s.C1
	}
	if s.C2 > 0 {
		cfg.C2 = s.C2
	}
	if s.MaxWalkLen > 0 {
		cfg.MaxWalkLen = s.MaxWalkLen
	}
	if s.FixedTu > 0 {
		cfg.FixedWalkLen = s.FixedTu
	}
	acfg := algo.Config{Core: cfg, Horizon: s.Horizon}
	acfg.Sublinear.Hops = s.Hops
	acfg.Sublinear.Window = s.Window
	return algo.New(s.Algorithm, acfg)
}

// runner resolves the spec's execution path before any wire activity
// starts: the generic engine path when Protocol is set, the election
// backend otherwise. Both return the engine-level report (per-node send
// counts, and on the engine path the output matrix); the election path
// additionally returns the Outcome. Resolving before the plane exists
// keeps a bad spec from ever touching the barrier.
func (s JobSpec) runner() (func(g *graph.Graph, pl *plane, tr *obs.Tracer) (*algo.Outcome, *engine.Result, error), error) {
	if s.Protocol != "" {
		p, err := engine.New(s.Protocol, s.Engine)
		if err != nil {
			return nil, err
		}
		return func(g *graph.Graph, pl *plane, tr *obs.Tracer) (*algo.Outcome, *engine.Result, error) {
			res, err := engine.Run(p, g, engine.Options{
				Seed:       s.Seed,
				MaxRounds:  s.MaxRounds,
				DebugFrom:  s.DebugFrom,
				CountSends: true,
				Fault:      s.Fault.Plane(),
				Remote:     pl,
				Tracer:     tr,
			})
			return nil, res, err
		}, nil
	}
	a, err := s.backend()
	if err != nil {
		return nil, err
	}
	return func(g *graph.Graph, pl *plane, tr *obs.Tracer) (*algo.Outcome, *engine.Result, error) {
		opts := algo.Options{
			Seed:      s.Seed,
			MaxRounds: s.MaxRounds,
			DebugFrom: s.DebugFrom,
			Fault:     s.Fault.Plane(),
			Remote:    pl,
			Tracer:    tr,
		}
		var counter *nodeCounter
		if algo.Protocol(a) == nil {
			// A backend registered outside the engine contract yields no
			// report; tap its sends the old way so per-node accounting
			// survives.
			counter = &nodeCounter{counts: make([]int64, g.N())}
			opts.Observer = counter
		}
		out, eres, err := algo.RunWithReport(a, g, opts)
		if err == nil && eres == nil {
			eres = &engine.Result{PerNodeMessages: counter.counts}
		}
		return out, eres, err
	}, nil
}

// Result is a merged cluster election outcome.
type Result struct {
	// Outcome is the backend-independent summary, field-compatible with
	// an in-process run of the same (graph, algorithm, seed): identical
	// leaders, leader ids, contenders, rounds, and summed message/bit/
	// delivery accounting. Metrics.BusyRounds is the maximum over shards
	// (each shard only observes its own busy rounds); Detail is nil (the
	// backends' native results live on the shards).
	Outcome algo.Outcome `json:"outcome"`
	// Engine is the reassembled protocol-level report: the full Outputs
	// matrix (each shard contributes its hosted rows), the protocol name
	// and slot labels, and the summed metrics. Present whenever the job
	// ran through the engine path (JobSpec.Protocol set); nil on the
	// election path, whose report is Outcome.
	Engine *engine.Result `json:"engine,omitempty"`
	// PerNodeMessages[v] counts the sends of node v, assembled from the
	// owning shards — the per-node accounting the determinism contract
	// is stated in terms of.
	PerNodeMessages []int64 `json:"per_node_messages"`
	// Wire is the summed wire traffic of all shards.
	Wire WireStats `json:"wire"`
	// Shards is the cluster size; N the graph size.
	Shards int `json:"shards"`
	N      int `json:"n"`
}

// partialResult is one shard's contribution, as it crosses the wire.
type partialResult struct {
	Shard int    `json:"shard"`
	JobID int64  `json:"job_id"`
	Err   string `json:"err,omitempty"`

	Algorithm string `json:"algorithm,omitempty"`
	Explicit  bool   `json:"explicit,omitempty"`
	// Protocol, Slots and Outputs are the engine-path fields: the shard's
	// hosted rows of the output matrix (Outputs[i] is node Lo+i's decision
	// vector). Empty on the election path.
	Protocol string    `json:"protocol,omitempty"`
	Slots    []string  `json:"slots,omitempty"`
	Outputs  [][]int64 `json:"outputs,omitempty"`
	// AgreeID is floodmax's shard-local agreement value (0 for other
	// backends): the merge requires every shard to have agreed on the
	// same value, or the election is not explicit.
	AgreeID     uint64      `json:"agree_id,omitempty"`
	Leaders     []int       `json:"leaders,omitempty"`
	LeaderIDs   []uint64    `json:"leader_ids,omitempty"`
	Contenders  int         `json:"contenders"`
	LeaderRound int         `json:"leader_round"`
	Rounds      int         `json:"rounds"`
	Metrics     sim.Metrics `json:"metrics"`

	// Lo is the shard's first node; NodeMessages[i] counts the sends of
	// node Lo+i.
	Lo           int     `json:"lo"`
	NodeMessages []int64 `json:"node_messages"`

	Wire WireStats `json:"wire"`
}

// nodeCounter tallies per-node sends through the observer tap.
type nodeCounter struct {
	counts []int64
}

func (c *nodeCounter) OnSend(round, from, fromPort, to, toPort int, m sim.Message) {
	c.counts[from]++
}

// runShard executes one shard's slice of a job. It always returns a
// partialResult; failures ride in its Err field so the coordinator can
// merge errors like outcomes. links is indexed by shard id (nil at own);
// ft carries the session's negotiated features into the plane; tr (nil ok)
// records the shard's job span and the run's round spans.
func runShard(links []*link, shard, shards int, jobID int64, spec JobSpec, ft feats, tr *obs.Tracer) partialResult {
	pr := partialResult{Shard: shard, JobID: jobID, LeaderRound: -1}
	if spec.Fault.Byzantine() && !ft.Byzantine {
		// The coordinator gates this too; a shard double-checks so a
		// mixed-version session can never half-run an adversarial job.
		pr.Err = "cluster: byzantine fault spec on a session without the byzantine capability"
		return pr
	}
	g0, err := spec.Graph.Build()
	if err != nil {
		pr.Err = err.Error()
		return pr
	}
	if g0.N() < shards {
		pr.Err = fmt.Sprintf("cluster: %d-node graph cannot be split across %d shards", g0.N(), shards)
		return pr
	}
	g, owner, err := spec.owners(g0, shards)
	if err != nil {
		pr.Err = err.Error()
		return pr
	}
	run, err := spec.runner()
	if err != nil {
		pr.Err = err.Error()
		return pr
	}
	// Shards with no members sit the job out: their links carry no data
	// frames this job, so mask them off the barrier.
	live := liveShards(owner, shards)
	jobLinks := make([]*link, len(links))
	for s, l := range links {
		if s < len(live) && live[s] {
			jobLinks[s] = l
		}
	}
	pl := newPlane(jobLinks, shard, shards, owner, ft, tr)
	jobName := spec.Algorithm
	if spec.Protocol != "" {
		jobName = spec.Protocol
	}
	if jobName == "" {
		jobName = "default"
	}
	jobSp := tr.Start("job", jobName, -1)
	jobSp.Arg("job_id", jobID)
	jobSp.Arg("seed", spec.Seed)
	jobSp.Arg("nodes", int64(g.N()))
	out, eres, err := run(g, pl, tr)
	jobSp.Arg("envelopes", pl.stats.Envelopes)
	jobSp.Arg("barriers", pl.stats.Barriers)
	jobSp.End()
	pr.Wire = pl.stats
	// A shard's nodes stay contiguous after induced renumbering (members
	// are ascending and original ranges are contiguous), so Lo + a slice
	// still describes them.
	lo, hi := 0, 0
	for v, s := range owner {
		if s != shard {
			continue
		}
		if hi == 0 {
			lo = v
		}
		hi = v + 1
	}
	pr.Lo = lo
	if eres != nil && len(eres.PerNodeMessages) >= hi {
		pr.NodeMessages = eres.PerNodeMessages[lo:hi]
	} else {
		pr.NodeMessages = make([]int64, hi-lo)
	}
	if err != nil {
		// The run died mid-barrier (a step error, a broken link, the
		// round cap): peers may be blocked on our next frame, so the
		// session is broken — say so on every link before reporting.
		_ = pl.abort(err)
		pr.Err = err.Error()
		return pr
	}
	if spec.Protocol != "" {
		// Engine path: the shard reports its hosted rows of the output
		// matrix and the protocol-level accounting; there is no Outcome.
		pr.Algorithm = eres.Protocol
		pr.Protocol = eres.Protocol
		pr.Slots = eres.Slots
		pr.Outputs = eres.Outputs[lo:hi]
		pr.Rounds = eres.Rounds
		pr.Metrics = eres.Metrics
		return pr
	}
	pr.Algorithm = out.Algorithm
	pr.Explicit = out.Explicit
	if fm, ok := out.Detail.(*baseline.FloodMaxResult); ok {
		pr.AgreeID = uint64(fm.AgreeID)
	}
	pr.Leaders = out.Leaders
	for _, id := range out.LeaderIDs {
		pr.LeaderIDs = append(pr.LeaderIDs, uint64(id))
	}
	pr.Contenders = out.Contenders
	pr.LeaderRound = out.LeaderRound
	pr.Rounds = out.Rounds
	pr.Metrics = out.Metrics
	return pr
}

// merge folds the per-shard partials into one Result. Shards are expected
// in shard order (the coordinator collects them that way); leaders stay
// sorted because shards own contiguous ascending node ranges.
func merge(n, shards int, parts []partialResult) (*Result, error) {
	var firstErr error
	for _, p := range parts {
		if p.Err != "" && firstErr == nil {
			firstErr = fmt.Errorf("cluster: shard %d: %s", p.Shard, p.Err)
		}
	}
	res := &Result{Shards: shards, N: n, PerNodeMessages: make([]int64, n)}
	out := &res.Outcome
	out.LeaderRound = -1
	out.Explicit = true
	out.Metrics.ByKind = make(map[string]int64)
	var agreeID uint64
	for _, p := range parts {
		res.Wire.add(p.Wire)
		for i, c := range p.NodeMessages {
			if v := p.Lo + i; v < n {
				res.PerNodeMessages[v] = c
			}
		}
		if p.Err != "" {
			continue
		}
		if p.Protocol != "" {
			// Engine path: reassemble the output matrix from the shards'
			// hosted rows.
			if res.Engine == nil {
				res.Engine = &engine.Result{
					Protocol: p.Protocol,
					Slots:    p.Slots,
					Outputs:  make([][]int64, n),
				}
			}
			for i, o := range p.Outputs {
				if v := p.Lo + i; v < n {
					res.Engine.Outputs[v] = o
				}
			}
		}
		if out.Algorithm == "" {
			out.Algorithm = p.Algorithm
		}
		out.Leaders = append(out.Leaders, p.Leaders...)
		for _, id := range p.LeaderIDs {
			out.LeaderIDs = append(out.LeaderIDs, protocol.ID(id))
		}
		out.Contenders += p.Contenders
		out.Explicit = out.Explicit && p.Explicit
		if p.AgreeID != 0 {
			// Shards must have agreed on the same value: per-shard
			// agreement on different flood maxima (a horizon too short
			// for global convergence) is not an explicit election.
			if agreeID != 0 && p.AgreeID != agreeID {
				out.Explicit = false
			}
			agreeID = p.AgreeID
		}
		if p.LeaderRound >= 0 && (out.LeaderRound < 0 || p.LeaderRound < out.LeaderRound) {
			out.LeaderRound = p.LeaderRound
		}
		if p.Rounds > out.Rounds {
			out.Rounds = p.Rounds
		}
		m := p.Metrics
		out.Metrics.Messages += m.Messages
		out.Metrics.Bits += m.Bits
		out.Metrics.Dropped += m.Dropped
		out.Metrics.FaultDrops += m.FaultDrops
		out.Metrics.Delayed += m.Delayed
		out.Metrics.Mutated += m.Mutated
		out.Metrics.Deliveries += m.Deliveries
		if m.BusyRounds > out.Metrics.BusyRounds {
			out.Metrics.BusyRounds = m.BusyRounds
		}
		if m.FinalRound > out.Metrics.FinalRound {
			out.Metrics.FinalRound = m.FinalRound
		}
		for k, v := range m.ByKind {
			out.Metrics.ByKind[k] += v
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if !sort.IntsAreSorted(out.Leaders) {
		// Shards report in order and own ascending ranges; unsorted
		// leaders mean a shard lied about its range.
		return nil, fmt.Errorf("cluster: merged leader list %v is not sorted", out.Leaders)
	}
	out.Success = len(out.Leaders) == 1
	if res.Engine != nil {
		res.Engine.PerNodeMessages = res.PerNodeMessages
		res.Engine.Rounds = out.Rounds
		res.Engine.Metrics = out.Metrics
	}
	return res, nil
}
