package cluster

// Frame layer: everything crossing a cluster connection is a
// [u32 big-endian length][type byte][payload] frame. Control frames carry
// JSON (rare, debuggable); the per-round barrier frames (data, ready,
// advance) are binary (hot path).

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// proto is the cluster wire-protocol version, checked at every hello.
const proto = 1

// Frame types. Part of the wire format: never reuse.
const (
	frameHello    = 0x01 // JSON helloMsg: joiner → listener, first frame of every peer conn
	framePeers    = 0x02 // JSON peersMsg: coordinator → worker, the shard directory
	frameUp       = 0x03 // JSON upMsg: worker → coordinator, pairwise setup complete
	frameStart    = 0x04 // JSON startMsg: coordinator → worker, run this job
	frameResult   = 0x05 // JSON partialResult: worker → coordinator
	frameShutdown = 0x06 // JSON shutdownMsg: coordinator → worker, session over
	frameSubmit   = 0x07 // JSON JobSpec: client → coordinator
	frameOutcome  = 0x08 // JSON outcomeMsg: coordinator → client
	frameAbort    = 0x09 // JSON abortMsg: any → any, the session is broken
	frameData     = 0x10 // binary: epoch, round, count, envelopes
	frameReady    = 0x11 // binary: epoch, varint localNext
	frameAdvance  = 0x12 // binary: epoch, varint globalNext
	frameLease    = 0x13 // binary wire.Lease: coordinator → worker, leader elected, start heartbeating
	frameHeart    = 0x14 // binary wire.Heartbeat: worker → coordinator, periodic under a lease
	frameEpoch    = 0x15 // binary wire.EpochChange: coordinator → worker (membership change) and worker ↔ worker (link drain marker)
	frameEpochAck = 0x16 // binary: uvarint epoch; worker → coordinator, quiesced and drained
	frameDataZ    = 0x17 // binary: [uvarint rawLen][flate stream] of a frameData payload
)

// maxFrame bounds a frame's declared size so a corrupt or hostile length
// prefix cannot demand unbounded memory.
const maxFrame = 64 << 20

// frame is one decoded frame.
type frame struct {
	typ     byte
	payload []byte
}

// helloMsg is the first frame of every shard-to-shard connection.
type helloMsg struct {
	Proto int `json:"proto"`
	// Shard is the dialing shard's id.
	Shard int `json:"shard"`
	// Addr is the dialer's own listen address (join hellos only; workers
	// need it in the peer directory so higher shards can dial them).
	Addr string `json:"addr,omitempty"`
	// Piggyback, Compress, and Byzantine advertise capabilities (join
	// hellos to the coordinator only). omitempty keeps the frame
	// byte-identical for binaries that predate the fields — an old worker
	// naturally advertises none, and the session negotiates down to the
	// legacy ready/advance barrier, raw frames, and omission-only fault
	// planes.
	Piggyback bool `json:"piggyback,omitempty"`
	Compress  bool `json:"compress,omitempty"`
	Byzantine bool `json:"byzantine,omitempty"`
}

// peersMsg is the coordinator's shard directory: Addrs[i] is shard i's
// listen address. Live[i], when present, reports whether shard i is
// currently part of the session (nil means everyone is; a rejoining
// worker only wires up to live peers). Piggyback and Compress are the
// negotiated session features: the AND of every member's advertised
// capabilities with the coordinator's configuration, fixed for the
// session's lifetime (a rejoiner must still support them; admission
// enforces that).
type peersMsg struct {
	Addrs     []string `json:"addrs"`
	Live      []bool   `json:"live,omitempty"`
	Piggyback bool     `json:"piggyback,omitempty"`
	Compress  bool     `json:"compress,omitempty"`
	Byzantine bool     `json:"byzantine,omitempty"`
}

// feats are the negotiated per-session features, as announced in the
// setup peersMsg.
type feats struct {
	// Piggyback: round advancement rides the final data chunk of every
	// flush (wire.ChunkFinalNext) instead of the ready/advance star.
	Piggyback bool
	// Compress: data frames above the size threshold cross as flate
	// streams (frameDataZ).
	Compress bool
	// Byzantine: every member mutates adversarial sends at dispatch (the
	// sim.Byzantine frame-mutation path), so jobs carrying a byzantine
	// fault spec are admissible. A session that negotiated it off rejects
	// such jobs instead of running them inconsistently.
	Byzantine bool
}

// upMsg signals a worker finished its pairwise link setup.
type upMsg struct {
	Shard int `json:"shard"`
}

// startMsg dispatches one job to a shard.
type startMsg struct {
	JobID int64   `json:"job_id"`
	Spec  JobSpec `json:"spec"`
}

// shutdownMsg ends the session; workers exit cleanly.
type shutdownMsg struct{}

// abortMsg declares the session broken (a shard failed mid-barrier).
type abortMsg struct {
	Shard int    `json:"shard"`
	Msg   string `json:"msg"`
}

// outcomeMsg answers a client submission.
type outcomeMsg struct {
	Result *Result `json:"result,omitempty"`
	Err    string  `json:"err,omitempty"`
}

// writeFrame writes one frame to w.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	if len(payload)+1 > maxFrame {
		return fmt.Errorf("cluster: %d-byte frame exceeds the %d-byte cap", len(payload)+1, maxFrame)
	}
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame from r.
func readFrame(r io.Reader) (frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size == 0 || size > maxFrame {
		return frame{}, fmt.Errorf("cluster: frame length %d out of (0, %d]", size, maxFrame)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return frame{}, err
	}
	return frame{typ: body[0], payload: body[1:]}, nil
}

// writeJSONFrame marshals v as a JSON control frame.
func writeJSONFrame(w io.Writer, typ byte, v interface{}) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeFrame(w, typ, payload)
}

// decodeJSON unmarshals a control frame's payload.
func decodeJSON(f frame, v interface{}) error {
	if err := json.Unmarshal(f.payload, v); err != nil {
		return fmt.Errorf("cluster: corrupt frame type 0x%02x: %w", f.typ, err)
	}
	return nil
}

// frameName renders a frame type for error messages.
func frameName(typ byte) string {
	switch typ {
	case frameHello:
		return "hello"
	case framePeers:
		return "peers"
	case frameUp:
		return "up"
	case frameStart:
		return "start"
	case frameResult:
		return "result"
	case frameShutdown:
		return "shutdown"
	case frameSubmit:
		return "submit"
	case frameOutcome:
		return "outcome"
	case frameAbort:
		return "abort"
	case frameData:
		return "data"
	case frameReady:
		return "ready"
	case frameAdvance:
		return "advance"
	case frameLease:
		return "lease"
	case frameHeart:
		return "heart"
	case frameEpoch:
		return "epoch"
	case frameEpochAck:
		return "epoch-ack"
	case frameDataZ:
		return "data-z"
	default:
		return fmt.Sprintf("0x%02x", typ)
	}
}
