package cluster

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"wcle/internal/algo"
	"wcle/internal/engine"
	"wcle/internal/serve"
)

// TestChaosSoak hammers a supervised session with a random kill/restart
// schedule: worker shards die abruptly (connections severed mid-frame)
// and come back at arbitrary moments. The supervisor must hold the line
// the whole way — every reign it grants has exactly one leader — and the
// whole apparatus must tear down without leaking a goroutine.
// TestChaosByzantineJobs is the Byzantine-plane chaos pass: a rapid
// sequence of adversarial jobs — sampled and pinned adversary sets,
// composed with omission planes, defended and undefended, the election
// and the engine path — over one 3-shard loopback session, each job
// immediately replayed and required to reproduce byte-identically. This
// deliberately runs in -short: it is the -race coverage of the mutation
// path (per-sender rng streams, the claim codec, the merge) over real
// TCP, cheap enough for every CI run.
func TestChaosByzantineJobs(t *testing.T) {
	before := runtime.NumGoroutine()
	local, err := StartLocal(3)
	if err != nil {
		t.Fatal(err)
	}
	g := serve.GraphSpec{Family: "clique", N: 12, Seed: 3}
	jobs := []struct {
		name    string
		spec    JobSpec
		mutates bool
	}{
		{"floodmax-byz", JobSpec{Graph: g, Algorithm: algo.FloodMax, Seed: 1,
			Fault: serve.FaultSpec{Byz: 0.25}}, true},
		{"kpprt-pinned+drop", JobSpec{Graph: g, Algorithm: algo.KPPRT, Seed: 2,
			Fault: serve.FaultSpec{ByzNodes: []int{2, 7}, Drop: 0.05}}, true},
		{"pushpull-byz", JobSpec{Graph: g, Protocol: engine.PushPull,
			Engine: engine.Config{Rumor: 5, Horizon: 60}, Seed: 3,
			Fault: serve.FaultSpec{Byz: 0.25}}, true},
		{"pushpull-defended", JobSpec{Graph: g, Protocol: engine.PushPull,
			Engine: engine.Config{Rumor: 5, Horizon: 300, Defend: true}, Seed: 4,
			Fault: serve.FaultSpec{ByzNodes: []int{5}}}, true},
		{"floodmax-clean", JobSpec{Graph: g, Algorithm: algo.FloodMax, Seed: 5}, false},
	}
	for _, j := range jobs {
		first, err := local.Elect(j.spec)
		if err != nil {
			t.Fatalf("%s: %v", j.name, err)
		}
		if got := first.Outcome.Metrics.Mutated > 0; got != j.mutates {
			t.Fatalf("%s: mutated=%d, want mutations=%v", j.name, first.Outcome.Metrics.Mutated, j.mutates)
		}
		replay, err := local.Elect(j.spec)
		if err != nil {
			t.Fatalf("%s replay: %v", j.name, err)
		}
		if !reflect.DeepEqual(first, replay) {
			t.Fatalf("%s: byzantine job not replay-deterministic over TCP:\n%+v\n%+v", j.name, first, replay)
		}
	}
	if err := local.Close(); err != nil {
		t.Fatalf("cluster shutdown: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before the pass, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized kill/restart soak over loopback TCP; skipped in -short mode")
	}
	before := runtime.NumGoroutine()

	local, err := StartLocal(3)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Graph: serve.GraphSpec{Family: "clique", N: 12, Seed: 3}, Algorithm: algo.KPPRT, Seed: 5}
	sup, events := superviseEvents(t, local.Coord, spec)
	awaitEvent(t, events, EventLease)

	// Fixed-seed schedule: which worker dies, and how deep into the
	// steady lease state the kill lands.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 4; i++ {
		victim := 1 + rng.Intn(2)
		time.Sleep(time.Duration(rng.Intn(80)) * time.Millisecond)
		if err := local.Kill(victim); err != nil {
			t.Fatalf("cycle %d: killing shard %d: %v", i, victim, err)
		}
		awaitEvent(t, events, EventDeath)
		awaitEvent(t, events, EventLease)

		time.Sleep(time.Duration(rng.Intn(80)) * time.Millisecond)
		if err := local.Restart(victim); err != nil {
			t.Fatalf("cycle %d: restarting shard %d: %v", i, victim, err)
		}
		awaitEvent(t, events, EventRejoin)
		awaitEvent(t, events, EventLease)
	}

	sup.Stop()
	reigns, err := sup.Wait()
	if err != nil {
		t.Fatalf("supervision ended with error: %v", err)
	}
	// 1 initial + 2 per cycle (post-death, post-rejoin).
	if want := 1 + 2*4; len(reigns) != want {
		t.Fatalf("got %d reigns, want %d", len(reigns), want)
	}
	for _, r := range reigns {
		if len(r.Result.Outcome.Leaders) != 1 {
			t.Fatalf("epoch %d elected %d leaders", r.Epoch, len(r.Result.Outcome.Leaders))
		}
		if r.Epoch > 1 && r.RecoverWall <= 0 {
			t.Fatalf("epoch %d has no recovery wall time", r.Epoch)
		}
	}
	if err := local.Close(); err != nil {
		t.Fatalf("cluster shutdown: %v", err)
	}

	// Everything the soak spun up — workers, monitors, heartbeats, accept
	// loops — must be gone. Allow a moment for exits to land.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before the soak, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(100 * time.Millisecond)
	}
}
