package cluster

// A worker: one non-coordinator shard process. It joins through the
// coordinator's bootstrap address, wires up its pairwise peer links, and
// then runs jobs until told to shut down. Under supervision it also
// heartbeats while a lease holds, quiesces its links at epoch changes,
// and accepts replacement connections from shards rejoining after a
// crash (the listener stays open for the whole session).

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"wcle/internal/obs"
	"wcle/internal/wire"
)

// defaultHeartEvery is the heartbeat period when a lease does not name
// one.
const defaultHeartEvery = 50 * time.Millisecond

// rejoinWait bounds how long an epoch change waits for a rejoining
// shard's replacement connection to arrive.
const rejoinWait = 15 * time.Second

// WorkerConfig parameterizes NewWorker.
type WorkerConfig struct {
	// Bootstrap is the coordinator's address.
	Bootstrap string
	// Shard is this process's shard id (1 <= Shard < cluster size; the
	// coordinator is shard 0).
	Shard int
	// Listen is this worker's own listen address, for higher-numbered
	// shards to dial (port 0 picks an ephemeral port).
	Listen string
	// DialTimeout bounds each connection attempt (0 = 10s).
	DialTimeout time.Duration
	// TraceSink, when non-nil, additionally receives every trace event
	// this shard records (the always-on flight recorder gets them
	// regardless).
	TraceSink obs.Sink
	// FlightCap bounds the flight recorder (0 = obs.DefaultFlightCap).
	FlightCap int
}

// Worker is one joined shard process.
type Worker struct {
	cfg   WorkerConfig
	ln    net.Listener
	link0 *link
	// flight is the shard's always-on flight recorder; tracer tees every
	// event into it (plus cfg.TraceSink when set).
	flight *obs.Ring
	tracer *obs.Tracer
	// ft holds the session features negotiated by the coordinator, as
	// announced in the setup directory (owned by the run goroutine).
	ft feats

	// parked holds replacement peer connections accepted while the main
	// loop was elsewhere; the epoch-change handler claims them.
	pmu    sync.Mutex
	parked map[int]*link
	pnote  chan struct{}

	// conns registers every connection ever opened so Kill can sever the
	// process from the cluster abruptly (simulating a crash).
	cmu    sync.Mutex
	conns  []net.Conn
	killed bool

	// heartbeater state (owned by the run goroutine).
	heartStop chan struct{}
	heartDone chan struct{}

	// stats accumulates per-job accounting for the ops surface.
	statsMu sync.Mutex
	stats   SessionStats
}

// SessionStats aggregates one cluster member's job accounting across its
// session: what it put on the wire and what the fault planes did to its
// shard's traffic. Served by electnode's /metrics.
type SessionStats struct {
	// Jobs counts completed job attempts (failed ones included);
	// JobErrors counts the failed ones.
	Jobs      int64
	JobErrors int64
	// Wire sums this member's shard-local wire traffic.
	Wire WireStats
	// Messages/FaultDrops/Delayed/Mutated sum the shard-local sim
	// accounting of every job.
	Messages   int64
	FaultDrops int64
	Delayed    int64
	Mutated    int64
	// BusyRounds sums the busy (stepped) rounds across jobs.
	BusyRounds int64
}

// addJob folds one finished shard run into the session stats.
func (s *SessionStats) addJob(pr partialResult) {
	s.Jobs++
	if pr.Err != "" {
		s.JobErrors++
	}
	s.Wire.add(pr.Wire)
	s.Messages += pr.Metrics.Messages
	s.FaultDrops += pr.Metrics.FaultDrops
	s.Delayed += pr.Metrics.Delayed
	s.Mutated += pr.Metrics.Mutated
	s.BusyRounds += pr.Metrics.BusyRounds
}

// Stats returns a copy of the worker's accumulated session stats.
func (w *Worker) Stats() SessionStats {
	w.statsMu.Lock()
	defer w.statsMu.Unlock()
	return w.stats
}

// NewWorker binds the worker's listener and joins the cluster through the
// bootstrap address. The returned worker holds a live connection to the
// coordinator; Run drives it.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Shard < 1 {
		return nil, fmt.Errorf("cluster: worker shard id must be >= 1, got %d (shard 0 is the coordinator)", cfg.Shard)
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialTimeout("tcp", cfg.Bootstrap, cfg.DialTimeout)
	if err != nil {
		_ = ln.Close()
		return nil, fmt.Errorf("cluster: joining %s: %w", cfg.Bootstrap, err)
	}
	if err := writeJSONFrame(conn, frameHello, helloMsg{Proto: proto, Shard: cfg.Shard, Addr: advertiseAddr(ln, cfg.Listen), Piggyback: true, Compress: true, Byzantine: true}); err != nil {
		_ = conn.Close()
		_ = ln.Close()
		return nil, err
	}
	flight := obs.NewRing(cfg.FlightCap)
	w := &Worker{
		cfg:    cfg,
		ln:     ln,
		flight: flight,
		tracer: obs.New(obs.Tee(flight, cfg.TraceSink), cfg.Shard),
		parked: map[int]*link{},
		pnote:  make(chan struct{}),
	}
	w.link0 = w.track(0, conn)
	go w.acceptLoop()
	return w, nil
}

// track wraps a connection in a link and registers it for Kill.
func (w *Worker) track(peer int, conn net.Conn) *link {
	w.cmu.Lock()
	w.conns = append(w.conns, conn)
	killed := w.killed
	w.cmu.Unlock()
	if killed {
		_ = conn.Close()
	}
	return newLink(peer, conn)
}

// Kill severs the worker from the cluster abruptly — every connection and
// the listener close at once, exactly what peers observe when the process
// dies. The Run loop exits with an error shortly after. For crash tests;
// a clean exit goes through the coordinator's shutdown.
func (w *Worker) Kill() {
	w.cmu.Lock()
	w.killed = true
	conns := append([]net.Conn(nil), w.conns...)
	w.cmu.Unlock()
	_ = w.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
}

// advertiseAddr is the address peers should dial: the listener's bound
// address, which resolves the ephemeral port of a ":0" listen spec.
func advertiseAddr(ln net.Listener, spec string) string {
	addr := ln.Addr().String()
	// A wildcard listen ("[::]:7001") is undialable as written; keep the
	// port but let peers use the bootstrap-visible host from the spec if
	// it named one.
	if host, _, err := net.SplitHostPort(spec); err == nil && host != "" {
		if _, port, err := net.SplitHostPort(addr); err == nil {
			return net.JoinHostPort(host, port)
		}
	}
	return addr
}

// Addr returns the worker's bound listen address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// Flight returns the worker's always-on flight recorder: the last trace
// events this shard produced, ready to dump on crash or SIGQUIT.
func (w *Worker) Flight() *obs.Ring { return w.flight }

// Tracer returns the worker's tracer (never nil: the flight recorder is
// always attached).
func (w *Worker) Tracer() *obs.Tracer { return w.tracer }

// acceptLoop admits inbound peer connections for the whole session. Each
// accepted hello is parked; setup and the epoch-change handler claim
// parked links when they expect them. Higher-numbered shards dial this
// listener — at first assembly and again whenever they rejoin after a
// crash.
func (w *Worker) acceptLoop() {
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			return
		}
		go w.admitPeer(conn)
	}
}

// admitPeer validates one inbound hello and parks the link.
func (w *Worker) admitPeer(conn net.Conn) {
	_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	f, err := readFrame(conn)
	if err != nil {
		_ = conn.Close()
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	var h helloMsg
	if f.typ != frameHello || decodeJSON(f, &h) != nil {
		_ = conn.Close()
		return
	}
	if h.Proto != proto || h.Shard <= w.cfg.Shard {
		_ = conn.Close()
		return
	}
	l := w.track(h.Shard, conn)
	w.pmu.Lock()
	if old := w.parked[h.Shard]; old != nil {
		old.close()
	}
	w.parked[h.Shard] = l
	note := w.pnote
	w.pnote = make(chan struct{})
	w.pmu.Unlock()
	close(note)
}

// takeParked claims the parked link of one peer, waiting up to timeout
// for it to arrive.
func (w *Worker) takeParked(peer int, timeout time.Duration) (*link, error) {
	deadline := time.Now().Add(timeout)
	for {
		w.pmu.Lock()
		if l := w.parked[peer]; l != nil {
			delete(w.parked, peer)
			w.pmu.Unlock()
			return l, nil
		}
		note := w.pnote
		w.pmu.Unlock()
		wait := time.Until(deadline)
		if wait <= 0 {
			return nil, fmt.Errorf("cluster: shard %d never connected to shard %d within %v", peer, w.cfg.Shard, timeout)
		}
		t := time.NewTimer(wait)
		select {
		case <-note:
			t.Stop()
		case <-t.C:
		}
	}
}

// Run completes the pairwise link setup and serves jobs until the
// coordinator shuts the session down (nil) or the session breaks (error).
func (w *Worker) Run() error {
	links, err := w.setup()
	defer func() {
		w.stopHeartbeat()
		for _, l := range links {
			if l != nil {
				l.close()
			}
		}
		if w.link0 != nil && links == nil {
			w.link0.close()
		}
		w.pmu.Lock()
		for _, l := range w.parked {
			l.close()
		}
		w.parked = map[int]*link{}
		w.pmu.Unlock()
		_ = w.ln.Close()
	}()
	if err != nil {
		return err
	}
	shards := len(links)
	for {
		// Idle between jobs is normal (a -serve cluster may not see a
		// submission for hours); only a dead connection ends the wait.
		f, err := w.link0.nextWait()
		if err != nil {
			return err
		}
		switch f.typ {
		case frameStart:
			var st startMsg
			if err := decodeJSON(f, &st); err != nil {
				return err
			}
			pr := runShard(links, w.cfg.Shard, shards, st.JobID, st.Spec, w.ft, w.tracer)
			w.statsMu.Lock()
			w.stats.addJob(pr)
			w.statsMu.Unlock()
			if err := w.link0.writeJSON(frameResult, pr); err != nil {
				return err
			}
			if err := w.link0.flush(); err != nil {
				return err
			}
			// A failed job (a dead peer mid-barrier, a round cap) does not
			// end the worker: the coordinator decides whether the session
			// recovers (an epoch change) or breaks.
		case frameLease:
			l, err := wire.DecodeLease(f.payload)
			if err != nil {
				return err
			}
			w.startHeartbeat(l)
		case frameEpoch:
			ec, err := wire.DecodeEpochChange(f.payload)
			if err != nil {
				return err
			}
			if err := w.epochChange(links, ec); err != nil {
				return err
			}
		case frameShutdown:
			return nil
		case frameData, frameDataZ, frameReady, frameAdvance, frameAbort:
			// Stale leftovers of a job that died mid-barrier; the next
			// epoch change (or shutdown) follows.
		default:
			return fmt.Errorf("cluster: worker expected start, lease, epoch, or shutdown, got %s", frameName(f.typ))
		}
	}
}

// startHeartbeat begins beating under a fresh lease, replacing any
// previous beater.
func (w *Worker) startHeartbeat(lease wire.Lease) {
	w.stopHeartbeat()
	every := time.Duration(lease.HeartMillis) * time.Millisecond
	if every <= 0 {
		every = defaultHeartEvery
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	w.heartStop, w.heartDone = stop, done
	go func() {
		defer close(done)
		t := time.NewTicker(every)
		defer t.Stop()
		var seq uint64
		var buf []byte
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				seq++
				buf = wire.AppendHeartbeat(buf[:0], wire.Heartbeat{Epoch: lease.Epoch, Shard: w.cfg.Shard, Seq: seq})
				if w.link0.writeFlush(frameHeart, buf) != nil {
					// A dead coordinator link ends the session through the
					// main loop's read; nothing to do here.
					return
				}
			}
		}
	}()
}

// stopHeartbeat stops the beater and waits for it, so no heart frame can
// trail onto the wire after the epoch ack.
func (w *Worker) stopHeartbeat() {
	if w.heartStop == nil {
		return
	}
	close(w.heartStop)
	<-w.heartDone
	w.heartStop, w.heartDone = nil, nil
}

// epochChange quiesces this worker for a new supervision epoch: stop
// heartbeating, drop links to dead peers, exchange drain markers with the
// surviving ones (flushing any stale frames of an aborted job), wire up a
// rejoining peer, and ack to the coordinator. After the ack this worker's
// links are clean: the next job's barrier frames are the next bytes.
func (w *Worker) epochChange(links []*link, ec wire.EpochChange) error {
	w.stopHeartbeat()
	if len(ec.Live) != len(links) {
		return fmt.Errorf("cluster: epoch %d names %d shards, session has %d", ec.Epoch, len(ec.Live), len(links))
	}
	// Drop dead peers first: their queues may hold stale frames nobody
	// will read.
	for p := 1; p < len(links); p++ {
		if p == w.cfg.Shard || ec.Live[p] || links[p] == nil {
			continue
		}
		links[p].close()
		links[p] = nil
	}
	// Marker exchange with surviving peers (the rejoiner's link is fresh
	// on both sides — nothing stale to drain). Write-all-then-read-all,
	// like the barrier: reader goroutines keep every write unblocked.
	var marker []byte
	marker = binary.AppendUvarint(marker, ec.Epoch)
	for p := 1; p < len(links); p++ {
		if p == w.cfg.Shard || p == ec.Rejoin || links[p] == nil || !ec.Live[p] {
			continue
		}
		if err := links[p].writeFlush(frameEpochAck, marker); err != nil {
			// The peer died under us; the coordinator will announce it
			// next epoch.
			links[p].close()
			links[p] = nil
		}
	}
	for p := 1; p < len(links); p++ {
		if p == w.cfg.Shard || p == ec.Rejoin || links[p] == nil || !ec.Live[p] {
			continue
		}
		if err := drainUntilEpoch(links[p], ec.Epoch); err != nil {
			links[p].close()
			links[p] = nil
		}
	}
	// Wire up a rejoining peer: lower ids get dialed by us, higher ids
	// dial our listener (the same dial-lower/accept-higher rule as
	// assembly).
	if r := ec.Rejoin; r >= 0 && r != w.cfg.Shard && r < len(links) {
		if links[r] != nil {
			links[r].close()
			links[r] = nil
		}
		if r < w.cfg.Shard && r >= 1 {
			conn, err := net.DialTimeout("tcp", ec.RejoinAddr, w.cfg.DialTimeout)
			if err == nil {
				if err := writeJSONFrame(conn, frameHello, helloMsg{Proto: proto, Shard: w.cfg.Shard}); err == nil {
					links[r] = w.track(r, conn)
				} else {
					_ = conn.Close()
				}
			}
			// A failed dial leaves the link down; the next epoch change
			// will retry or declare the rejoiner dead again.
		} else if r > w.cfg.Shard {
			if l, err := w.takeParked(r, rejoinWait); err == nil {
				links[r] = l
			}
		}
	}
	return w.link0.writeFlush(frameEpochAck, marker)
}

// drainUntilEpoch consumes stale frames from one peer link until the
// epoch marker arrives.
func drainUntilEpoch(l *link, epoch uint64) error {
	for {
		f, err := l.next()
		if err != nil {
			return err
		}
		switch f.typ {
		case frameEpochAck:
			e, rest, err := wire.ReadUvarint(f.payload)
			if err != nil || len(rest) != 0 {
				return fmt.Errorf("cluster: corrupt epoch marker from shard %d", l.peer)
			}
			if e == epoch {
				return nil
			}
			// An older epoch's marker: keep draining.
		case frameData, frameDataZ, frameReady, frameAdvance, frameAbort, frameHeart:
			// Stale leftovers of the aborted job.
		default:
			return fmt.Errorf("cluster: unexpected %s from shard %d while draining epoch %d", frameName(f.typ), l.peer, epoch)
		}
	}
}

// setup consumes the peer directory and establishes the pairwise links:
// dial every lower-numbered live worker, accept every higher-numbered
// one. The listener stays open afterwards — crashed peers rejoin through
// it mid-session.
func (w *Worker) setup() ([]*link, error) {
	// The directory arrives only once every shard has joined — and a
	// human starting workers by hand may take minutes between them.
	f, err := w.link0.nextWait()
	if err != nil {
		return nil, err
	}
	if f.typ != framePeers {
		return nil, fmt.Errorf("cluster: expected peers from the coordinator, got %s", frameName(f.typ))
	}
	var peers peersMsg
	if err := decodeJSON(f, &peers); err != nil {
		return nil, err
	}
	w.ft = feats{Piggyback: peers.Piggyback, Compress: peers.Compress, Byzantine: peers.Byzantine}
	shards := len(peers.Addrs)
	if w.cfg.Shard >= shards {
		return nil, fmt.Errorf("cluster: shard id %d outside the %d-shard directory", w.cfg.Shard, shards)
	}
	if peers.Live != nil && len(peers.Live) != shards {
		return nil, fmt.Errorf("cluster: live vector names %d shards, directory %d", len(peers.Live), shards)
	}
	live := func(p int) bool { return peers.Live == nil || peers.Live[p] }
	links := make([]*link, shards)
	links[0] = w.link0
	for p := 1; p < w.cfg.Shard; p++ {
		if !live(p) {
			continue
		}
		conn, err := net.DialTimeout("tcp", peers.Addrs[p], w.cfg.DialTimeout)
		if err != nil {
			return links, fmt.Errorf("cluster: dialing shard %d at %s: %w", p, peers.Addrs[p], err)
		}
		if err := writeJSONFrame(conn, frameHello, helloMsg{Proto: proto, Shard: w.cfg.Shard}); err != nil {
			_ = conn.Close()
			return links, err
		}
		links[p] = w.track(p, conn)
	}
	for p := w.cfg.Shard + 1; p < shards; p++ {
		if !live(p) {
			continue
		}
		l, err := w.takeParked(p, 60*time.Second)
		if err != nil {
			return links, err
		}
		links[p] = l
	}
	if err := w.link0.writeJSON(frameUp, upMsg{Shard: w.cfg.Shard}); err != nil {
		return links, err
	}
	if err := w.link0.flush(); err != nil {
		return links, err
	}
	return links, nil
}
