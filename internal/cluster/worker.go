package cluster

// A worker: one non-coordinator shard process. It joins through the
// coordinator's bootstrap address, wires up its pairwise peer links, and
// then runs jobs until told to shut down.

import (
	"fmt"
	"net"
	"time"
)

// WorkerConfig parameterizes NewWorker.
type WorkerConfig struct {
	// Bootstrap is the coordinator's address.
	Bootstrap string
	// Shard is this process's shard id (1 <= Shard < cluster size; the
	// coordinator is shard 0).
	Shard int
	// Listen is this worker's own listen address, for higher-numbered
	// shards to dial (port 0 picks an ephemeral port).
	Listen string
	// DialTimeout bounds each connection attempt (0 = 10s).
	DialTimeout time.Duration
}

// Worker is one joined shard process.
type Worker struct {
	cfg   WorkerConfig
	ln    net.Listener
	link0 *link
}

// NewWorker binds the worker's listener and joins the cluster through the
// bootstrap address. The returned worker holds a live connection to the
// coordinator; Run drives it.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Shard < 1 {
		return nil, fmt.Errorf("cluster: worker shard id must be >= 1, got %d (shard 0 is the coordinator)", cfg.Shard)
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialTimeout("tcp", cfg.Bootstrap, cfg.DialTimeout)
	if err != nil {
		_ = ln.Close()
		return nil, fmt.Errorf("cluster: joining %s: %w", cfg.Bootstrap, err)
	}
	if err := writeJSONFrame(conn, frameHello, helloMsg{Proto: proto, Shard: cfg.Shard, Addr: advertiseAddr(ln, cfg.Listen)}); err != nil {
		_ = conn.Close()
		_ = ln.Close()
		return nil, err
	}
	return &Worker{cfg: cfg, ln: ln, link0: newLink(0, conn)}, nil
}

// advertiseAddr is the address peers should dial: the listener's bound
// address, which resolves the ephemeral port of a ":0" listen spec.
func advertiseAddr(ln net.Listener, spec string) string {
	addr := ln.Addr().String()
	// A wildcard listen ("[::]:7001") is undialable as written; keep the
	// port but let peers use the bootstrap-visible host from the spec if
	// it named one.
	if host, _, err := net.SplitHostPort(spec); err == nil && host != "" {
		if _, port, err := net.SplitHostPort(addr); err == nil {
			return net.JoinHostPort(host, port)
		}
	}
	return addr
}

// Addr returns the worker's bound listen address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// Run completes the pairwise link setup and serves jobs until the
// coordinator shuts the session down (nil) or the session breaks (error).
func (w *Worker) Run() error {
	links, err := w.setup()
	defer func() {
		for _, l := range links {
			if l != nil {
				l.close()
			}
		}
		if w.link0 != nil && links == nil {
			w.link0.close()
		}
		_ = w.ln.Close()
	}()
	if err != nil {
		return err
	}
	shards := len(links)
	for {
		// Idle between jobs is normal (a -serve cluster may not see a
		// submission for hours); only a dead connection ends the wait.
		f, err := w.link0.nextWait()
		if err != nil {
			return err
		}
		switch f.typ {
		case frameStart:
			var st startMsg
			if err := decodeJSON(f, &st); err != nil {
				return err
			}
			pr := runShard(links, w.cfg.Shard, shards, st.JobID, st.Spec)
			if err := w.link0.writeJSON(frameResult, pr); err != nil {
				return err
			}
			if err := w.link0.flush(); err != nil {
				return err
			}
			if pr.Err != "" {
				return fmt.Errorf("cluster: job %d failed on shard %d: %s", st.JobID, w.cfg.Shard, pr.Err)
			}
		case frameShutdown:
			return nil
		case frameAbort:
			var a abortMsg
			_ = decodeJSON(f, &a)
			return fmt.Errorf("cluster: shard %d aborted the session: %s", a.Shard, a.Msg)
		default:
			return fmt.Errorf("cluster: worker expected start or shutdown, got %s", frameName(f.typ))
		}
	}
}

// setup consumes the peer directory and establishes the pairwise links:
// dial every lower-numbered worker, accept every higher-numbered one.
func (w *Worker) setup() ([]*link, error) {
	// The directory arrives only once every shard has joined — and a
	// human starting workers by hand may take minutes between them.
	f, err := w.link0.nextWait()
	if err != nil {
		return nil, err
	}
	if f.typ != framePeers {
		return nil, fmt.Errorf("cluster: expected peers from the coordinator, got %s", frameName(f.typ))
	}
	var peers peersMsg
	if err := decodeJSON(f, &peers); err != nil {
		return nil, err
	}
	shards := len(peers.Addrs)
	if w.cfg.Shard >= shards {
		return nil, fmt.Errorf("cluster: shard id %d outside the %d-shard directory", w.cfg.Shard, shards)
	}
	links := make([]*link, shards)
	links[0] = w.link0
	for p := 1; p < w.cfg.Shard; p++ {
		conn, err := net.DialTimeout("tcp", peers.Addrs[p], w.cfg.DialTimeout)
		if err != nil {
			return links, fmt.Errorf("cluster: dialing shard %d at %s: %w", p, peers.Addrs[p], err)
		}
		if err := writeJSONFrame(conn, frameHello, helloMsg{Proto: proto, Shard: w.cfg.Shard}); err != nil {
			_ = conn.Close()
			return links, err
		}
		links[p] = newLink(p, conn)
	}
	for need := shards - 1 - w.cfg.Shard; need > 0; need-- {
		conn, err := w.ln.Accept()
		if err != nil {
			return links, err
		}
		_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		f, err := readFrame(conn)
		if err != nil {
			_ = conn.Close()
			return links, err
		}
		_ = conn.SetReadDeadline(time.Time{})
		var h helloMsg
		if f.typ != frameHello {
			_ = conn.Close()
			return links, fmt.Errorf("cluster: shard %d expected a peer hello, got %s", w.cfg.Shard, frameName(f.typ))
		}
		if err := decodeJSON(f, &h); err != nil {
			_ = conn.Close()
			return links, err
		}
		if h.Proto != proto || h.Shard <= w.cfg.Shard || h.Shard >= shards || links[h.Shard] != nil {
			_ = conn.Close()
			return links, fmt.Errorf("cluster: bad peer hello from shard %d (proto %d)", h.Shard, h.Proto)
		}
		links[h.Shard] = newLink(h.Shard, conn)
	}
	// All pairwise links are up; no one dials this listener anymore.
	_ = w.ln.Close()
	if err := w.link0.writeJSON(frameUp, upMsg{Shard: w.cfg.Shard}); err != nil {
		return links, err
	}
	if err := w.link0.flush(); err != nil {
		return links, err
	}
	return links, nil
}
