package cluster

// The shard plane: internal/sim's RemotePlane implemented over the link
// layer. One instance lives for one election on one shard.
//
// Per barrier iteration (one global event round), each shard:
//
//  1. writes one or more data frames to every peer — the epoch, the
//     round, and every envelope queued for that peer this round — with
//     its barrier contribution (the minimum of its pre-receive next
//     pending event round and the earliest due round it sent) riding the
//     final chunk, and then
//  2. reads every peer's frames in whatever order they arrive, injecting
//     their envelopes into the local transport and folding their
//     piggybacked contributions into the global minimum.
//
// Every shard therefore computes the same global next-event round from
// the same k contributions, with no second network phase: the old
// frameReady/frameAdvance star through shard 0 survives only as the
// negotiated fallback for mixed-version clusters (feats.Piggyback off).
//
// Write-all-then-read-all is deadlock-free because every link's reader
// goroutine keeps draining the connection into an unbounded queue: a
// peer's pending writes can always make progress even while that peer is
// itself mid-write. The any-order receive makes it fast: one shared
// ready channel is attached to every link's queue, so the plane consumes
// whichever peer's frames land first instead of blocking on a fixed peer
// order. A peer that already finished this barrier may race ahead and
// queue next-epoch frames; the receive loop stops consuming a link at
// its final chunk, leaving those for the next iteration.

import (
	"encoding/binary"
	"fmt"
	"time"

	"wcle/internal/obs"
	"wcle/internal/sim"
	"wcle/internal/wire"
)

// WireStats counts what one election put on the wire. Per-shard stats
// count this shard's sends; the merged Result sums them, so the totals
// are the whole cluster's traffic (every frame is counted once, by its
// sender).
type WireStats struct {
	// Frames and Bytes count every frame this shard sent, barrier
	// control included. Bytes includes the 5-byte frame headers and
	// reflects what actually crossed the wire (compressed sizes for
	// compressed frames).
	Frames int64 `json:"frames"`
	Bytes  int64 `json:"bytes"`
	// Envelopes counts cross-shard protocol messages (the wire-level
	// realization of the paper's message complexity).
	Envelopes int64 `json:"envelopes"`
	// Barriers counts round-barrier iterations (identical on every
	// shard of a run).
	Barriers int64 `json:"barriers"`
	// BarrierFrames counts the ready/advance control frames this shard
	// sent — the legacy coordinator star's second network phase. Zero
	// under piggybacked advancement: that is the whole point.
	BarrierFrames int64 `json:"barrier_frames,omitempty"`
	// CompressedFrames counts data frames sent compressed; RawBytes and
	// CompressedBytes are their payload sizes before and after flate.
	CompressedFrames int64 `json:"compressed_frames,omitempty"`
	RawBytes         int64 `json:"raw_bytes,omitempty"`
	CompressedBytes  int64 `json:"compressed_bytes,omitempty"`
}

func (s *WireStats) add(o WireStats) {
	s.Frames += o.Frames
	s.Bytes += o.Bytes
	s.Envelopes += o.Envelopes
	s.Barriers += o.Barriers
	s.BarrierFrames += o.BarrierFrames
	s.CompressedFrames += o.CompressedFrames
	s.RawBytes += o.RawBytes
	s.CompressedBytes += o.CompressedBytes
}

// countFrame accounts one sent frame of the given payload length.
func (s *WireStats) countFrame(payloadLen int) {
	s.Frames++
	s.Bytes += int64(payloadLen) + 5 // length prefix + type byte
}

// shardLo returns the first node of a shard under the contiguous balanced
// partition: shard i of k owns [i*n/k, (i+1)*n/k).
func shardLo(n, shards, shard int) int { return shard * n / shards }

// ownerOf returns the shard hosting node v.
func ownerOf(n, shards, v int) int {
	// Start from the inverse map and correct for integer rounding.
	s := v * shards / n
	for s+1 < shards && shardLo(n, shards, s+1) <= v {
		s++
	}
	for s > 0 && shardLo(n, shards, s) > v {
		s--
	}
	return s
}

// dataChunkBytes bounds one data frame's envelope payload: a
// message-heavy round (floodmax on a large clique can queue tens of
// millions of bytes for one peer) crosses as a sequence of chunked
// frames, each far below the frame layer's 64MB cap. A variable so tests
// can force multi-chunk rounds on small elections.
var dataChunkBytes = 4 << 20

// compressMinBytes gates compression: below it, a frame ships raw even
// in a compressed session — tiny frames (empty flush markers,
// barrier-only rounds) cost more to deflate than to send. A variable so
// tests can force compression on small elections.
var compressMinBytes = 1 << 10

// chunk is one data frame's worth of encoded envelopes.
type chunk struct {
	buf []byte
	cnt int
}

// plane is the per-election RemotePlane of one shard.
type plane struct {
	shard, shards int
	owner         []int   // node index -> hosting shard id
	links         []*link // by shard id; links[shard] == nil
	ft            feats

	epoch   uint64
	out     [][]chunk     // per-peer encoded envelopes, pending this round
	buf     []byte        // reusable data-frame assembly buffer
	zbuf    []byte        // reusable compressed-frame assembly buffer
	sentMin int           // min due round sent this barrier (-1 = none)
	ready   chan struct{} // shared any-order receive notification
	done    []bool        // per-link: final chunk received this barrier

	stats   WireStats
	aborted bool
	tr      *obs.Tracer // nil ok: wire-flush/drain spans per barrier
}

// newPlane builds the shard plane for a graph whose node i is hosted by
// shard owner[i]. contiguousOwners builds the full-membership default;
// re-elections after membership loss pass the survivors' owner table.
func newPlane(links []*link, shard, shards int, owner []int, ft feats, tr *obs.Tracer) *plane {
	return &plane{
		shard:   shard,
		shards:  shards,
		owner:   owner,
		links:   links,
		ft:      ft,
		out:     make([][]chunk, shards),
		sentMin: -1,
		ready:   make(chan struct{}, 1),
		done:    make([]bool, shards),
		tr:      tr,
	}
}

// contiguousOwners is the default node->shard assignment: shard i of k
// owns the contiguous balanced range [i*n/k, (i+1)*n/k).
func contiguousOwners(n, shards int) []int {
	owner := make([]int, n)
	for v := range owner {
		owner[v] = ownerOf(n, shards, v)
	}
	return owner
}

var _ sim.RemotePlane = (*plane)(nil)

// Local reports whether this shard hosts node v.
func (p *plane) Local(v int) bool {
	return v >= 0 && v < len(p.owner) && p.owner[v] == p.shard
}

// Send queues one cross-shard envelope for the owner of `to`; it goes on
// the wire at the end-of-round Barrier.
func (p *plane) Send(round, due, to int, env sim.Envelope) error {
	owner := p.owner[to]
	if owner == p.shard {
		return fmt.Errorf("cluster: remote send to node %d, which shard %d hosts itself", to, p.shard)
	}
	chunks := p.out[owner]
	if len(chunks) == 0 || len(chunks[len(chunks)-1].buf) >= dataChunkBytes {
		chunks = append(chunks, chunk{})
	}
	c := &chunks[len(chunks)-1]
	buf, err := wire.AppendEnvelope(c.buf, wire.Envelope{
		Due: due, To: to, Port: env.Port, From: env.From, Msg: env.Payload,
	})
	if err != nil {
		return err
	}
	c.buf = buf
	c.cnt++
	p.out[owner] = chunks
	if p.sentMin < 0 || due < p.sentMin {
		p.sentMin = due
	}
	p.stats.Envelopes++
	return nil
}

// Barrier exchanges the round's cross-shard traffic with every peer and
// agrees on the global next event round. localNext is the shard's
// pre-receive earliest pending event round (-1 = quiescent); this
// shard's contribution folds in the earliest due round it sent, so
// in-flight envelopes are accounted for by their sender and the
// piggybacked minimum equals what the old post-receive handshake
// computed.
func (p *plane) Barrier(round, localNext int, inject func(due, to int, env sim.Envelope) error) (int, error) {
	p.epoch++
	p.stats.Barriers++
	contribution := localNext
	if p.sentMin >= 0 && (contribution < 0 || p.sentMin < contribution) {
		contribution = p.sentMin
	}
	p.sentMin = -1
	framesBefore := p.stats.Frames
	flushSp := p.tr.Start("cluster", "wire-flush", int64(round))
	err := p.writeRound(round, contribution)
	flushSp.Arg("frames", p.stats.Frames-framesBefore)
	flushSp.End()
	if err != nil {
		return 0, p.abort(err)
	}
	drainSp := p.tr.Start("cluster", "drain", int64(round))
	peersNext, injMin, err := p.recvAll(round, inject)
	drainSp.End()
	if err != nil {
		return 0, p.abort(err)
	}
	if p.ft.Piggyback {
		global := contribution
		if peersNext >= 0 && (global < 0 || peersNext < global) {
			global = peersNext
		}
		return global, nil
	}
	// Legacy star: report the post-receive local next — the pre-receive
	// value folded with the earliest injected due, exactly what the old
	// flush-then-advance runner computed — so the wire bytes stay
	// byte-identical for old binaries.
	post := localNext
	if injMin >= 0 && (post < 0 || injMin < post) {
		post = injMin
	}
	return p.advance(post)
}

// writeRound sends the round's queued envelopes to every peer as chunked
// data frames. In a piggyback session the final chunk carries
// contribution; a compressed session deflates chunks above the size
// threshold.
func (p *plane) writeRound(round, contribution int) error {
	for peer, l := range p.links {
		if l == nil {
			continue
		}
		chunks := p.out[peer]
		if len(chunks) == 0 {
			chunks = append(chunks, chunk{}) // the empty flush marker
		}
		for ci := range chunks {
			hdr := wire.DataHeader{
				Epoch: p.epoch,
				Round: round,
				Flag:  wire.ChunkMore,
				Count: chunks[ci].cnt,
			}
			if ci == len(chunks)-1 {
				if p.ft.Piggyback {
					hdr.Flag = wire.ChunkFinalNext
					hdr.Next = contribution
				} else {
					hdr.Flag = wire.ChunkFinal
				}
			}
			p.buf = wire.AppendDataHeader(p.buf[:0], hdr)
			p.buf = append(p.buf, chunks[ci].buf...)
			typ, payload := byte(frameData), p.buf
			if p.ft.Compress && len(p.buf) >= compressMinBytes {
				if z, ok := wire.AppendCompressed(p.zbuf[:0], p.buf); ok {
					p.zbuf = z
					typ, payload = frameDataZ, z
					p.stats.CompressedFrames++
					p.stats.RawBytes += int64(len(p.buf))
					p.stats.CompressedBytes += int64(len(z))
				}
			}
			if err := l.write(typ, payload); err != nil {
				return err
			}
			p.stats.countFrame(len(payload))
		}
		if err := l.flush(); err != nil {
			return err
		}
		// Keep the first chunk's buffer for reuse; drop the rest.
		chunks[0].buf = chunks[0].buf[:0]
		chunks[0].cnt = 0
		p.out[peer] = chunks[:1]
	}
	return nil
}

// recvAll consumes every peer's data frames for the current epoch, in
// whatever order they arrive. It returns the minimum piggybacked peer
// contribution (-1 = all quiescent or legacy session) and the minimum
// injected due round (-1 = nothing injected; the legacy star needs it).
func (p *plane) recvAll(round int, inject func(due, to int, env sim.Envelope) error) (int, int, error) {
	peersNext, injMin := -1, -1
	remaining := 0
	timeout := defaultFrameTimeout
	for s, l := range p.links {
		if l == nil {
			continue
		}
		p.done[s] = false
		remaining++
		timeout = l.timeout
		l.q.attach(p.ready)
	}
	defer func() {
		for _, l := range p.links {
			if l != nil {
				l.q.detach()
			}
		}
	}()
	if remaining == 0 {
		return -1, -1, nil
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for remaining > 0 {
		progress := false
		for s, l := range p.links {
			if l == nil || p.done[s] {
				continue
			}
			// Drain this link's queued frames, stopping at its final
			// chunk: anything after it belongs to the next barrier
			// iteration (a piggybacked peer races ahead).
			for !p.done[s] {
				f, ok, err := l.q.tryNext()
				if err != nil {
					return 0, 0, err
				}
				if !ok {
					break
				}
				progress = true
				final, next, err := p.handleData(l, f, round, inject, &injMin)
				if err != nil {
					return 0, 0, err
				}
				if final {
					p.done[s] = true
					remaining--
					if next >= 0 && (peersNext < 0 || next < peersNext) {
						peersNext = next
					}
				}
			}
		}
		if remaining == 0 {
			break
		}
		if progress {
			// Match the per-frame timeout discipline of the blocking
			// drain this replaces: silence is only fatal when nothing at
			// all arrives for a whole window.
			if !deadline.Stop() {
				<-deadline.C
			}
			deadline.Reset(timeout)
			continue
		}
		// Safe against dropped signals: a push happens-before its
		// signal, and a retained token forces one more full rescan.
		select {
		case <-p.ready:
		case <-deadline.C:
			return 0, 0, fmt.Errorf("cluster: no data frame within %v (peer hung or dead)", timeout)
		}
	}
	return peersNext, injMin, nil
}

// handleData decodes one data frame, injects its envelopes, and reports
// whether it was the peer's final chunk and (piggyback sessions) the
// peer's barrier contribution.
func (p *plane) handleData(l *link, f frame, round int, inject func(due, to int, env sim.Envelope) error, injMin *int) (bool, int, error) {
	b := f.payload
	switch f.typ {
	case frameData:
	case frameDataZ:
		raw, err := wire.Decompress(b, maxFrame)
		if err != nil {
			return false, 0, fmt.Errorf("cluster: compressed data frame from shard %d: %w", l.peer, err)
		}
		b = raw
	case frameAbort:
		var a abortMsg
		_ = decodeJSON(f, &a)
		return false, 0, fmt.Errorf("cluster: shard %d aborted: %s", a.Shard, a.Msg)
	case frameEpoch, frameEpochAck:
		// A supervisor is tearing this job down. The frame belongs to
		// the epoch-change handler, not the barrier: put it back and die.
		l.q.pushFront(f)
		return false, 0, fmt.Errorf("cluster: epoch change interrupted the job (frame from shard %d)", l.peer)
	default:
		return false, 0, fmt.Errorf("cluster: expected data from shard %d, got %s", l.peer, frameName(f.typ))
	}
	h, b, err := wire.DecodeDataHeader(b)
	if err != nil {
		return false, 0, fmt.Errorf("cluster: data frame from shard %d: %w", l.peer, err)
	}
	if h.Epoch != p.epoch {
		return false, 0, fmt.Errorf("cluster: shard %d at barrier epoch %d, expected %d", l.peer, h.Epoch, p.epoch)
	}
	if h.Round != round {
		return false, 0, fmt.Errorf("cluster: shard %d flushed round %d, expected %d", l.peer, h.Round, round)
	}
	switch h.Flag {
	case wire.ChunkMore:
	case wire.ChunkFinalNext:
		if !p.ft.Piggyback {
			return false, 0, fmt.Errorf("cluster: shard %d piggybacked a barrier in a legacy session", l.peer)
		}
	case wire.ChunkFinal:
		if p.ft.Piggyback {
			return false, 0, fmt.Errorf("cluster: shard %d sent a legacy final chunk in a piggyback session", l.peer)
		}
	}
	for i := 0; i < h.Count; i++ {
		e, rest, err := wire.DecodeEnvelope(b)
		if err != nil {
			return false, 0, fmt.Errorf("cluster: envelope %d/%d from shard %d: %w", i+1, h.Count, l.peer, err)
		}
		b = rest
		if *injMin < 0 || e.Due < *injMin {
			*injMin = e.Due
		}
		if err := inject(e.Due, e.To, sim.Envelope{Port: e.Port, From: e.From, Payload: e.Msg}); err != nil {
			return false, 0, err
		}
	}
	if len(b) != 0 {
		return false, 0, fmt.Errorf("cluster: %d trailing bytes in data frame from shard %d", len(b), l.peer)
	}
	return h.Flag != wire.ChunkMore, h.Next, nil
}

// advance runs the legacy barrier star: report this shard's post-receive
// next event round to shard 0 and adopt the broadcast global minimum.
func (p *plane) advance(localNext int) (int, error) {
	if p.shard == 0 {
		return p.advanceCoordinator(localNext)
	}
	p.buf = binary.AppendUvarint(p.buf[:0], p.epoch)
	p.buf = binary.AppendVarint(p.buf, int64(localNext))
	l := p.links[0]
	if err := l.write(frameReady, p.buf); err != nil {
		return 0, p.abort(err)
	}
	if err := l.flush(); err != nil {
		return 0, p.abort(err)
	}
	p.stats.countFrame(len(p.buf))
	p.stats.BarrierFrames++
	f, err := l.next()
	if err != nil {
		return 0, p.abort(err)
	}
	switch f.typ {
	case frameAdvance:
	case frameAbort:
		var a abortMsg
		_ = decodeJSON(f, &a)
		return 0, p.abort(fmt.Errorf("cluster: shard %d aborted: %s", a.Shard, a.Msg))
	case frameEpoch, frameEpochAck:
		l.q.pushFront(f)
		return 0, p.abort(fmt.Errorf("cluster: epoch change interrupted the job"))
	default:
		return 0, p.abort(fmt.Errorf("cluster: expected advance, got %s", frameName(f.typ)))
	}
	epoch, next, err := decodeEpochNext(f.payload)
	if err != nil {
		return 0, p.abort(err)
	}
	if epoch != p.epoch {
		return 0, p.abort(fmt.Errorf("cluster: advance for epoch %d, expected %d", epoch, p.epoch))
	}
	return next, nil
}

// advanceCoordinator collects every worker's ready, decides the global
// minimum next event round, and broadcasts it.
func (p *plane) advanceCoordinator(localNext int) (int, error) {
	global := localNext
	for _, l := range p.links {
		if l == nil {
			continue
		}
		f, err := l.next()
		if err != nil {
			return 0, p.abort(err)
		}
		switch f.typ {
		case frameReady:
		case frameAbort:
			var a abortMsg
			_ = decodeJSON(f, &a)
			return 0, p.abort(fmt.Errorf("cluster: shard %d aborted: %s", a.Shard, a.Msg))
		default:
			return 0, p.abort(fmt.Errorf("cluster: expected ready from shard %d, got %s", l.peer, frameName(f.typ)))
		}
		epoch, theirs, err := decodeEpochNext(f.payload)
		if err != nil {
			return 0, p.abort(err)
		}
		if epoch != p.epoch {
			return 0, p.abort(fmt.Errorf("cluster: shard %d ready for epoch %d, expected %d", l.peer, epoch, p.epoch))
		}
		if theirs >= 0 && (global < 0 || theirs < global) {
			global = theirs
		}
	}
	for _, l := range p.links {
		if l == nil {
			continue
		}
		p.buf = binary.AppendUvarint(p.buf[:0], p.epoch)
		p.buf = binary.AppendVarint(p.buf, int64(global))
		if err := l.write(frameAdvance, p.buf); err != nil {
			return 0, p.abort(err)
		}
		if err := l.flush(); err != nil {
			return 0, p.abort(err)
		}
		p.stats.countFrame(len(p.buf))
		p.stats.BarrierFrames++
	}
	return global, nil
}

// decodeEpochNext parses a ready/advance payload.
func decodeEpochNext(b []byte) (uint64, int, error) {
	epoch, b, err := wire.ReadUvarint(b)
	if err != nil {
		return 0, 0, err
	}
	next, b, err := wire.ReadVarint(b)
	if err != nil {
		return 0, 0, err
	}
	if len(b) != 0 {
		return 0, 0, fmt.Errorf("cluster: %d trailing bytes in barrier frame", len(b))
	}
	if next < -1 || next > int64(int(^uint(0)>>1)) {
		return 0, 0, fmt.Errorf("cluster: barrier next round %d out of range", next)
	}
	return epoch, int(next), nil
}

// abort marks the session broken, tells every peer, and returns err.
func (p *plane) abort(err error) error {
	if p.aborted {
		return err
	}
	p.aborted = true
	for _, l := range p.links {
		if l == nil {
			continue
		}
		_ = l.writeJSON(frameAbort, abortMsg{Shard: p.shard, Msg: err.Error()})
		_ = l.flush()
	}
	return err
}
