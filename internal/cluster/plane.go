package cluster

// The shard plane: internal/sim's RemotePlane implemented over the link
// layer. One instance lives for one election on one shard.
//
// Per barrier iteration (one global event round), each shard:
//
//  1. writes one data frame to every peer — the epoch, the round, and
//     every envelope queued for that peer this round — and only then
//  2. reads the matching data frame from every peer, injecting its
//     envelopes into the local transport;
//  3. reports its earliest pending event round to the coordinator
//     (ready) and adopts the broadcast global minimum (advance).
//
// Write-all-then-read-all is deadlock-free because every link's reader
// goroutine keeps draining the connection into an unbounded queue: a
// peer's pending writes can always make progress even while that peer is
// itself mid-write.

import (
	"encoding/binary"
	"fmt"

	"wcle/internal/sim"
	"wcle/internal/wire"
)

// WireStats counts what one election put on the wire. Per-shard stats
// count this shard's sends; the merged Result sums them, so the totals
// are the whole cluster's traffic (every frame is counted once, by its
// sender).
type WireStats struct {
	// Frames and Bytes count every frame this shard sent, barrier
	// control included. Bytes includes the 5-byte frame headers.
	Frames int64 `json:"frames"`
	Bytes  int64 `json:"bytes"`
	// Envelopes counts cross-shard protocol messages (the wire-level
	// realization of the paper's message complexity).
	Envelopes int64 `json:"envelopes"`
	// Barriers counts round-barrier iterations (identical on every
	// shard of a run).
	Barriers int64 `json:"barriers"`
}

func (s *WireStats) add(o WireStats) {
	s.Frames += o.Frames
	s.Bytes += o.Bytes
	s.Envelopes += o.Envelopes
	s.Barriers += o.Barriers
}

// countFrame accounts one sent frame of the given payload length.
func (s *WireStats) countFrame(payloadLen int) {
	s.Frames++
	s.Bytes += int64(payloadLen) + 5 // length prefix + type byte
}

// shardLo returns the first node of a shard under the contiguous balanced
// partition: shard i of k owns [i*n/k, (i+1)*n/k).
func shardLo(n, shards, shard int) int { return shard * n / shards }

// ownerOf returns the shard hosting node v.
func ownerOf(n, shards, v int) int {
	// Start from the inverse map and correct for integer rounding.
	s := v * shards / n
	for s+1 < shards && shardLo(n, shards, s+1) <= v {
		s++
	}
	for s > 0 && shardLo(n, shards, s) > v {
		s--
	}
	return s
}

// dataChunkBytes bounds one data frame's envelope payload: a
// message-heavy round (floodmax on a large clique can queue tens of
// millions of bytes for one peer) crosses as a sequence of chunked
// frames, each far below the frame layer's 64MB cap. A variable so tests
// can force multi-chunk rounds on small elections.
var dataChunkBytes = 4 << 20

// chunk is one data frame's worth of encoded envelopes.
type chunk struct {
	buf []byte
	cnt int
}

// plane is the per-election RemotePlane of one shard.
type plane struct {
	shard, shards int
	owner         []int   // node index -> hosting shard id
	links         []*link // by shard id; links[shard] == nil

	epoch uint64
	out   [][]chunk // per-peer encoded envelopes, pending this round
	buf   []byte    // reusable data-frame assembly buffer

	stats   WireStats
	aborted bool
}

// newPlane builds the shard plane for a graph whose node i is hosted by
// shard owner[i]. contiguousOwners builds the full-membership default;
// re-elections after membership loss pass the survivors' owner table.
func newPlane(links []*link, shard, shards int, owner []int) *plane {
	return &plane{
		shard:  shard,
		shards: shards,
		owner:  owner,
		links:  links,
		out:    make([][]chunk, shards),
	}
}

// contiguousOwners is the default node->shard assignment: shard i of k
// owns the contiguous balanced range [i*n/k, (i+1)*n/k).
func contiguousOwners(n, shards int) []int {
	owner := make([]int, n)
	for v := range owner {
		owner[v] = ownerOf(n, shards, v)
	}
	return owner
}

var _ sim.RemotePlane = (*plane)(nil)

// Local reports whether this shard hosts node v.
func (p *plane) Local(v int) bool {
	return v >= 0 && v < len(p.owner) && p.owner[v] == p.shard
}

// Send queues one cross-shard envelope for the owner of `to`; it goes on
// the wire at the end-of-round Flush.
func (p *plane) Send(round, due, to int, env sim.Envelope) error {
	owner := p.owner[to]
	if owner == p.shard {
		return fmt.Errorf("cluster: remote send to node %d, which shard %d hosts itself", to, p.shard)
	}
	chunks := p.out[owner]
	if len(chunks) == 0 || len(chunks[len(chunks)-1].buf) >= dataChunkBytes {
		chunks = append(chunks, chunk{})
	}
	c := &chunks[len(chunks)-1]
	buf, err := wire.AppendEnvelope(c.buf, wire.Envelope{
		Due: due, To: to, Port: env.Port, From: env.From, Msg: env.Payload,
	})
	if err != nil {
		return err
	}
	c.buf = buf
	c.cnt++
	p.out[owner] = chunks
	p.stats.Envelopes++
	return nil
}

// Flush exchanges the round's cross-shard traffic with every peer. A
// peer's traffic crosses as one or more chunked data frames (the last one
// flagged final), so no single round can outgrow the frame cap.
func (p *plane) Flush(round int, inject func(due, to int, env sim.Envelope) error) error {
	p.epoch++
	p.stats.Barriers++
	for peer, l := range p.links {
		if l == nil {
			continue
		}
		chunks := p.out[peer]
		if len(chunks) == 0 {
			chunks = append(chunks, chunk{}) // the empty flush marker
		}
		for ci := range chunks {
			final := byte(0)
			if ci == len(chunks)-1 {
				final = 1
			}
			p.buf = binary.AppendUvarint(p.buf[:0], p.epoch)
			p.buf = binary.AppendUvarint(p.buf, uint64(round))
			p.buf = append(p.buf, final)
			p.buf = binary.AppendUvarint(p.buf, uint64(chunks[ci].cnt))
			p.buf = append(p.buf, chunks[ci].buf...)
			if err := l.write(frameData, p.buf); err != nil {
				return p.abort(err)
			}
			p.stats.countFrame(len(p.buf))
		}
		if err := l.flush(); err != nil {
			return p.abort(err)
		}
		// Keep the first chunk's buffer for reuse; drop the rest.
		chunks[0].buf = chunks[0].buf[:0]
		chunks[0].cnt = 0
		p.out[peer] = chunks[:1]
	}
	for _, l := range p.links {
		if l == nil {
			continue
		}
		if err := p.recvData(l, round, inject); err != nil {
			return p.abort(err)
		}
	}
	return nil
}

// recvData consumes one peer's data frames for the current epoch, up to
// and including the final chunk.
func (p *plane) recvData(l *link, round int, inject func(due, to int, env sim.Envelope) error) error {
	for {
		f, err := l.next()
		if err != nil {
			return err
		}
		switch f.typ {
		case frameData:
		case frameAbort:
			var a abortMsg
			_ = decodeJSON(f, &a)
			return fmt.Errorf("cluster: shard %d aborted: %s", a.Shard, a.Msg)
		case frameEpoch, frameEpochAck:
			// A supervisor is tearing this job down. The frame belongs to
			// the epoch-change handler, not the barrier: put it back and die.
			l.q.pushFront(f)
			return fmt.Errorf("cluster: epoch change interrupted the job (frame from shard %d)", l.peer)
		default:
			return fmt.Errorf("cluster: expected data from shard %d, got %s", l.peer, frameName(f.typ))
		}
		b := f.payload
		epoch, b, err := wire.ReadUvarint(b)
		if err != nil {
			return err
		}
		if epoch != p.epoch {
			return fmt.Errorf("cluster: shard %d at barrier epoch %d, expected %d", l.peer, epoch, p.epoch)
		}
		r, b, err := wire.ReadUvarint(b)
		if err != nil {
			return err
		}
		if int(r) != round {
			return fmt.Errorf("cluster: shard %d flushed round %d, expected %d", l.peer, r, round)
		}
		if len(b) == 0 {
			return fmt.Errorf("cluster: data frame from shard %d truncated at final flag", l.peer)
		}
		final := b[0]
		b = b[1:]
		if final > 1 {
			return fmt.Errorf("cluster: bad final flag %d from shard %d", final, l.peer)
		}
		cnt, b, err := wire.ReadCount(b)
		if err != nil {
			return err
		}
		for i := 0; i < cnt; i++ {
			e, rest, err := wire.DecodeEnvelope(b)
			if err != nil {
				return fmt.Errorf("cluster: envelope %d/%d from shard %d: %w", i+1, cnt, l.peer, err)
			}
			b = rest
			if err := inject(e.Due, e.To, sim.Envelope{Port: e.Port, From: e.From, Payload: e.Msg}); err != nil {
				return err
			}
		}
		if len(b) != 0 {
			return fmt.Errorf("cluster: %d trailing bytes in data frame from shard %d", len(b), l.peer)
		}
		if final == 1 {
			return nil
		}
	}
}

// Advance reports this shard's next event round and adopts the global one.
func (p *plane) Advance(round, localNext int) (int, error) {
	if p.shard == 0 {
		return p.advanceCoordinator(localNext)
	}
	p.buf = binary.AppendUvarint(p.buf[:0], p.epoch)
	p.buf = binary.AppendVarint(p.buf, int64(localNext))
	l := p.links[0]
	if err := l.write(frameReady, p.buf); err != nil {
		return 0, p.abort(err)
	}
	if err := l.flush(); err != nil {
		return 0, p.abort(err)
	}
	p.stats.countFrame(len(p.buf))
	f, err := l.next()
	if err != nil {
		return 0, p.abort(err)
	}
	switch f.typ {
	case frameAdvance:
	case frameAbort:
		var a abortMsg
		_ = decodeJSON(f, &a)
		return 0, p.abort(fmt.Errorf("cluster: shard %d aborted: %s", a.Shard, a.Msg))
	case frameEpoch, frameEpochAck:
		l.q.pushFront(f)
		return 0, p.abort(fmt.Errorf("cluster: epoch change interrupted the job"))
	default:
		return 0, p.abort(fmt.Errorf("cluster: expected advance, got %s", frameName(f.typ)))
	}
	epoch, next, err := decodeEpochNext(f.payload)
	if err != nil {
		return 0, p.abort(err)
	}
	if epoch != p.epoch {
		return 0, p.abort(fmt.Errorf("cluster: advance for epoch %d, expected %d", epoch, p.epoch))
	}
	return next, nil
}

// advanceCoordinator collects every worker's ready, decides the global
// minimum next event round, and broadcasts it.
func (p *plane) advanceCoordinator(localNext int) (int, error) {
	global := localNext
	for _, l := range p.links {
		if l == nil {
			continue
		}
		f, err := l.next()
		if err != nil {
			return 0, p.abort(err)
		}
		switch f.typ {
		case frameReady:
		case frameAbort:
			var a abortMsg
			_ = decodeJSON(f, &a)
			return 0, p.abort(fmt.Errorf("cluster: shard %d aborted: %s", a.Shard, a.Msg))
		default:
			return 0, p.abort(fmt.Errorf("cluster: expected ready from shard %d, got %s", l.peer, frameName(f.typ)))
		}
		epoch, theirs, err := decodeEpochNext(f.payload)
		if err != nil {
			return 0, p.abort(err)
		}
		if epoch != p.epoch {
			return 0, p.abort(fmt.Errorf("cluster: shard %d ready for epoch %d, expected %d", l.peer, epoch, p.epoch))
		}
		if theirs >= 0 && (global < 0 || theirs < global) {
			global = theirs
		}
	}
	for _, l := range p.links {
		if l == nil {
			continue
		}
		p.buf = binary.AppendUvarint(p.buf[:0], p.epoch)
		p.buf = binary.AppendVarint(p.buf, int64(global))
		if err := l.write(frameAdvance, p.buf); err != nil {
			return 0, p.abort(err)
		}
		if err := l.flush(); err != nil {
			return 0, p.abort(err)
		}
		p.stats.countFrame(len(p.buf))
	}
	return global, nil
}

// decodeEpochNext parses a ready/advance payload.
func decodeEpochNext(b []byte) (uint64, int, error) {
	epoch, b, err := wire.ReadUvarint(b)
	if err != nil {
		return 0, 0, err
	}
	next, b, err := wire.ReadVarint(b)
	if err != nil {
		return 0, 0, err
	}
	if len(b) != 0 {
		return 0, 0, fmt.Errorf("cluster: %d trailing bytes in barrier frame", len(b))
	}
	if next < -1 || next > int64(int(^uint(0)>>1)) {
		return 0, 0, fmt.Errorf("cluster: barrier next round %d out of range", next)
	}
	return epoch, int(next), nil
}

// abort marks the session broken, tells every peer, and returns err.
func (p *plane) abort(err error) error {
	if p.aborted {
		return err
	}
	p.aborted = true
	for _, l := range p.links {
		if l == nil {
			continue
		}
		_ = l.writeJSON(frameAbort, abortMsg{Shard: p.shard, Msg: err.Error()})
		_ = l.flush()
	}
	return err
}
