package cluster

// Link layer: one TCP connection per process pair, all per-edge traffic
// between the pair multiplexed onto it. A dedicated reader goroutine
// drains the connection into an unbounded in-memory queue, so a shard can
// finish writing its whole round to every peer before reading anything —
// without the classic both-sides-blocked-writing deadlock that bounded
// socket buffers would otherwise produce on message-heavy rounds.

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// defaultFrameTimeout bounds how long a link waits for the next frame
// before declaring the peer hung. Elections block on barrier frames for
// at most one round of peer compute, so minutes of silence mean a dead
// peer, not a slow one.
const defaultFrameTimeout = 2 * time.Minute

// errInterrupted reports that a blocking queue read was interrupted by
// interrupt() rather than ended by a frame or a connection error.
var errInterrupted = errors.New("cluster: queue read interrupted")

// frameQueue is the unbounded receive queue of one link: a slice-backed
// deque (head index instead of re-slicing-with-copy) so both pop and
// pushFront are O(1) amortized.
type frameQueue struct {
	mu     sync.Mutex
	frames []frame
	head   int // frames[head:] are the queued frames, oldest first
	err    error
	intr   bool
	notify chan struct{}
	// watch, when attached, receives the same edge notifications as
	// notify. It is the any-order receive hook: one plane attaches a
	// single shared channel to every link's queue, then blocks on that
	// one channel until *some* peer has a frame ready.
	watch chan<- struct{}
}

func newFrameQueue() *frameQueue {
	return &frameQueue{notify: make(chan struct{}, 1)}
}

// signalLocked wakes blocked readers. Caller holds q.mu: watch is
// attached and detached under the lock, so reading it here without the
// lock would race with a plane switching its any-order subscription.
func (q *frameQueue) signalLocked() {
	select {
	case q.notify <- struct{}{}:
	default:
	}
	if q.watch != nil {
		select {
		case q.watch <- struct{}{}:
		default:
		}
	}
}

// attach registers a shared ready channel to be signalled alongside
// notify. If frames are already queued (or the link already failed), the
// channel is signalled immediately so an attacher never misses an edge
// that fired before it arrived.
func (q *frameQueue) attach(ch chan<- struct{}) {
	q.mu.Lock()
	q.watch = ch
	pending := len(q.frames) > q.head || q.err != nil
	q.mu.Unlock()
	if pending {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// detach removes the shared ready channel.
func (q *frameQueue) detach() {
	q.mu.Lock()
	q.watch = nil
	q.mu.Unlock()
}

func (q *frameQueue) push(f frame) {
	q.mu.Lock()
	q.frames = append(q.frames, f)
	q.signalLocked()
	q.mu.Unlock()
}

// pushFront returns a frame to the head of the queue, for consumers that
// popped a frame addressed to a later protocol phase (a plane reading an
// epoch marker mid-job leaves it for the epoch-change handler).
func (q *frameQueue) pushFront(f frame) {
	q.mu.Lock()
	if q.head > 0 {
		// Reuse the popped slot in front of the head: O(1), no shift.
		q.head--
		q.frames[q.head] = f
	} else {
		q.frames = append(q.frames, frame{})
		copy(q.frames[1:], q.frames)
		q.frames[0] = f
	}
	q.signalLocked()
	q.mu.Unlock()
}

// popLocked removes and returns the oldest frame. Caller holds q.mu and
// has checked the queue is non-empty.
func (q *frameQueue) popLocked() frame {
	f := q.frames[q.head]
	q.frames[q.head] = frame{}
	q.head++
	if q.head == len(q.frames) {
		// Drained: rewind to reuse the backing array's full capacity.
		q.frames = q.frames[:0]
		q.head = 0
	}
	return f
}

// clearInterrupt discards a pending interrupt that no reader consumed (a
// monitor that had already exited when it was interrupted).
func (q *frameQueue) clearInterrupt() {
	q.mu.Lock()
	q.intr = false
	q.mu.Unlock()
}

// interrupt makes the queue's current (or next) blocking read return
// errInterrupted without consuming any frame. One-shot: the flag clears
// on delivery.
func (q *frameQueue) interrupt() {
	q.mu.Lock()
	q.intr = true
	q.signalLocked()
	q.mu.Unlock()
}

func (q *frameQueue) fail(err error) {
	q.mu.Lock()
	if q.err == nil {
		q.err = err
	}
	q.signalLocked()
	q.mu.Unlock()
}

// next pops the oldest frame, blocking up to timeout (forever when
// timeout <= 0). Buffered frames are drained before a connection error is
// reported.
func (q *frameQueue) next(timeout time.Duration) (frame, error) {
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	for {
		q.mu.Lock()
		if q.intr {
			// Interruption outranks buffered frames: the interrupter wants
			// the reader gone now, with the queue's contents intact for
			// the next consumer.
			q.intr = false
			q.mu.Unlock()
			return frame{}, errInterrupted
		}
		if len(q.frames) > q.head {
			f := q.popLocked()
			q.mu.Unlock()
			return f, nil
		}
		err := q.err
		q.mu.Unlock()
		if err != nil {
			return frame{}, err
		}
		select {
		case <-q.notify:
		case <-deadline:
			return frame{}, fmt.Errorf("cluster: no frame within %v (peer hung or dead)", timeout)
		}
	}
}

// tryNext pops the oldest frame without blocking. It reports ok=false
// when the queue is empty; buffered frames are drained before a
// connection error is reported. Unlike next, it ignores the interrupt
// flag: interrupts target blocking lease monitors, which never run
// concurrently with a job's barrier loop.
func (q *frameQueue) tryNext() (frame, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.frames) > q.head {
		return q.popLocked(), true, nil
	}
	return frame{}, false, q.err
}

// link is one established peer connection.
type link struct {
	peer int    // the peer's shard id
	addr string // the peer's announced listen address (join links only)
	conn net.Conn
	wmu  sync.Mutex // serializes writers (a heartbeater vs. the main loop)
	w    *bufio.Writer
	q    *frameQueue

	timeout time.Duration
}

// newLink wraps an established connection and starts its reader.
func newLink(peer int, conn net.Conn) *link {
	l := &link{
		peer:    peer,
		conn:    conn,
		w:       bufio.NewWriterSize(conn, 64<<10),
		q:       newFrameQueue(),
		timeout: defaultFrameTimeout,
	}
	go l.readLoop()
	return l
}

func (l *link) readLoop() {
	for {
		f, err := readFrame(l.conn)
		if err != nil {
			l.q.fail(fmt.Errorf("cluster: link to shard %d: %w", l.peer, err))
			return
		}
		l.q.push(f)
	}
}

// write buffers one frame; call flush to put it on the wire. Writes are
// mutex-serialized per call: concurrent writers (a heartbeater next to
// the main loop) interleave whole frames, never corrupt one.
func (l *link) write(typ byte, payload []byte) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if err := writeFrame(l.w, typ, payload); err != nil {
		return fmt.Errorf("cluster: writing %s to shard %d: %w", frameName(typ), l.peer, err)
	}
	return nil
}

// writeJSON buffers one JSON control frame.
func (l *link) writeJSON(typ byte, v interface{}) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if err := writeJSONFrame(l.w, typ, v); err != nil {
		return fmt.Errorf("cluster: writing %s to shard %d: %w", frameName(typ), l.peer, err)
	}
	return nil
}

func (l *link) flush() error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("cluster: flushing to shard %d: %w", l.peer, err)
	}
	return nil
}

// writeFlush puts one frame on the wire atomically with respect to other
// writers: the frame cannot be separated from its flush by an interleaved
// write.
func (l *link) writeFlush(typ byte, payload []byte) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	if err := writeFrame(l.w, typ, payload); err != nil {
		return fmt.Errorf("cluster: writing %s to shard %d: %w", frameName(typ), l.peer, err)
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("cluster: flushing to shard %d: %w", l.peer, err)
	}
	return nil
}

// failed reports the link's connection error, if its reader has died.
// Unlike next, it does not drain buffered frames first: a broken link is
// broken even with frames still queued.
func (l *link) failed() error {
	l.q.mu.Lock()
	defer l.q.mu.Unlock()
	return l.q.err
}

// next returns the oldest unread frame from this peer. The timeout is
// calibrated for mid-job waits, where a peer is at most one round of
// compute away: minutes of silence mean a dead peer.
func (l *link) next() (frame, error) { return l.q.next(l.timeout) }

// nextWait returns the oldest unread frame, waiting indefinitely. For the
// phases where silence is normal: a worker idling between jobs, a shard
// waiting out a slow human-paced cluster assembly. Connection errors
// still end the wait.
func (l *link) nextWait() (frame, error) { return l.q.next(0) }

// expectJSON reads the next frame, requires the given type, and decodes
// its JSON payload into v. An abort frame is surfaced as the peer's error.
func (l *link) expectJSON(typ byte, v interface{}) error {
	f, err := l.next()
	if err != nil {
		return err
	}
	if f.typ == frameAbort && typ != frameAbort {
		var a abortMsg
		_ = decodeJSON(f, &a)
		return fmt.Errorf("cluster: shard %d aborted: %s", a.Shard, a.Msg)
	}
	if f.typ != typ {
		return fmt.Errorf("cluster: expected %s from shard %d, got %s", frameName(typ), l.peer, frameName(f.typ))
	}
	return decodeJSON(f, v)
}

func (l *link) close() {
	l.wmu.Lock()
	_ = l.w.Flush()
	l.wmu.Unlock()
	_ = l.conn.Close()
}
