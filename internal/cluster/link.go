package cluster

// Link layer: one TCP connection per process pair, all per-edge traffic
// between the pair multiplexed onto it. A dedicated reader goroutine
// drains the connection into an unbounded in-memory queue, so a shard can
// finish writing its whole round to every peer before reading anything —
// without the classic both-sides-blocked-writing deadlock that bounded
// socket buffers would otherwise produce on message-heavy rounds.

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"
)

// defaultFrameTimeout bounds how long a link waits for the next frame
// before declaring the peer hung. Elections block on barrier frames for
// at most one round of peer compute, so minutes of silence mean a dead
// peer, not a slow one.
const defaultFrameTimeout = 2 * time.Minute

// frameQueue is the unbounded receive queue of one link.
type frameQueue struct {
	mu     sync.Mutex
	frames []frame
	err    error
	notify chan struct{}
}

func newFrameQueue() *frameQueue {
	return &frameQueue{notify: make(chan struct{}, 1)}
}

func (q *frameQueue) push(f frame) {
	q.mu.Lock()
	q.frames = append(q.frames, f)
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

func (q *frameQueue) fail(err error) {
	q.mu.Lock()
	if q.err == nil {
		q.err = err
	}
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

// next pops the oldest frame, blocking up to timeout (forever when
// timeout <= 0). Buffered frames are drained before a connection error is
// reported.
func (q *frameQueue) next(timeout time.Duration) (frame, error) {
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	for {
		q.mu.Lock()
		if len(q.frames) > 0 {
			f := q.frames[0]
			q.frames[0] = frame{}
			q.frames = q.frames[1:]
			q.mu.Unlock()
			return f, nil
		}
		err := q.err
		q.mu.Unlock()
		if err != nil {
			return frame{}, err
		}
		select {
		case <-q.notify:
		case <-deadline:
			return frame{}, fmt.Errorf("cluster: no frame within %v (peer hung or dead)", timeout)
		}
	}
}

// link is one established peer connection.
type link struct {
	peer int    // the peer's shard id
	addr string // the peer's announced listen address (join links only)
	conn net.Conn
	w    *bufio.Writer
	q    *frameQueue

	timeout time.Duration
}

// newLink wraps an established connection and starts its reader.
func newLink(peer int, conn net.Conn) *link {
	l := &link{
		peer:    peer,
		conn:    conn,
		w:       bufio.NewWriterSize(conn, 64<<10),
		q:       newFrameQueue(),
		timeout: defaultFrameTimeout,
	}
	go l.readLoop()
	return l
}

func (l *link) readLoop() {
	for {
		f, err := readFrame(l.conn)
		if err != nil {
			l.q.fail(fmt.Errorf("cluster: link to shard %d: %w", l.peer, err))
			return
		}
		l.q.push(f)
	}
}

// write buffers one frame; call flush to put it on the wire.
func (l *link) write(typ byte, payload []byte) error {
	if err := writeFrame(l.w, typ, payload); err != nil {
		return fmt.Errorf("cluster: writing %s to shard %d: %w", frameName(typ), l.peer, err)
	}
	return nil
}

// writeJSON buffers one JSON control frame.
func (l *link) writeJSON(typ byte, v interface{}) error {
	if err := writeJSONFrame(l.w, typ, v); err != nil {
		return fmt.Errorf("cluster: writing %s to shard %d: %w", frameName(typ), l.peer, err)
	}
	return nil
}

func (l *link) flush() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("cluster: flushing to shard %d: %w", l.peer, err)
	}
	return nil
}

// next returns the oldest unread frame from this peer. The timeout is
// calibrated for mid-job waits, where a peer is at most one round of
// compute away: minutes of silence mean a dead peer.
func (l *link) next() (frame, error) { return l.q.next(l.timeout) }

// nextWait returns the oldest unread frame, waiting indefinitely. For the
// phases where silence is normal: a worker idling between jobs, a shard
// waiting out a slow human-paced cluster assembly. Connection errors
// still end the wait.
func (l *link) nextWait() (frame, error) { return l.q.next(0) }

// expectJSON reads the next frame, requires the given type, and decodes
// its JSON payload into v. An abort frame is surfaced as the peer's error.
func (l *link) expectJSON(typ byte, v interface{}) error {
	f, err := l.next()
	if err != nil {
		return err
	}
	if f.typ == frameAbort && typ != frameAbort {
		var a abortMsg
		_ = decodeJSON(f, &a)
		return fmt.Errorf("cluster: shard %d aborted: %s", a.Shard, a.Msg)
	}
	if f.typ != typ {
		return fmt.Errorf("cluster: expected %s from shard %d, got %s", frameName(typ), l.peer, frameName(f.typ))
	}
	return decodeJSON(f, v)
}

func (l *link) close() {
	_ = l.w.Flush()
	_ = l.conn.Close()
}
