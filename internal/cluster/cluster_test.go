package cluster

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"wcle/internal/algo"
	"wcle/internal/serve"
)

// electInProcess runs the reference in-process election for a spec, with
// the same per-node send accounting the cluster collects.
func electInProcess(t *testing.T, spec JobSpec) (*algo.Outcome, []int64) {
	t.Helper()
	g, err := spec.Graph.Build()
	if err != nil {
		t.Fatalf("building %+v: %v", spec.Graph, err)
	}
	a, err := spec.backend()
	if err != nil {
		t.Fatal(err)
	}
	counter := &nodeCounter{counts: make([]int64, g.N())}
	out, err := a.Run(g, algo.Options{Seed: spec.Seed, DebugFrom: spec.DebugFrom, Observer: counter})
	if err != nil {
		t.Fatalf("in-process %s: %v", a.Name(), err)
	}
	return out, counter.counts
}

// TestClusterMatchesInProcessSim is the keystone invariant of the cluster
// runtime: for the same seed, an election over a 3-shard TCP cluster
// produces the identical leader and identical per-node message counts as
// the in-process sim, for every registered backend. The wire is just
// another delivery plane.
func TestClusterMatchesInProcessSim(t *testing.T) {
	graphs := []serve.GraphSpec{
		{Family: "clique", N: 18, Seed: 5},
		{Family: "rr", N: 24, D: 6, Seed: 7},
	}
	local, err := StartLocal(3)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := local.Close(); err != nil {
			t.Errorf("cluster shutdown: %v", err)
		}
	}()
	for _, gs := range graphs {
		for _, backend := range algo.Names() {
			t.Run(fmt.Sprintf("%s-%d/%s", gs.Family, gs.N, backend), func(t *testing.T) {
				spec := JobSpec{Graph: gs, Algorithm: backend, Seed: 41}
				want, wantCounts := electInProcess(t, spec)
				got, err := local.Elect(spec)
				if err != nil {
					t.Fatalf("cluster elect: %v", err)
				}
				assertOutcomesMatch(t, want, &got.Outcome)
				if got.Shards != 3 {
					t.Errorf("result reports %d shards, want 3", got.Shards)
				}
				if len(got.PerNodeMessages) != len(wantCounts) {
					t.Fatalf("per-node counts for %d nodes, want %d", len(got.PerNodeMessages), len(wantCounts))
				}
				for v := range wantCounts {
					if got.PerNodeMessages[v] != wantCounts[v] {
						t.Fatalf("node %d sent %d messages on the cluster, %d in process",
							v, got.PerNodeMessages[v], wantCounts[v])
					}
				}
				if got.Wire.Barriers == 0 || got.Wire.Frames == 0 || got.Wire.Bytes == 0 {
					t.Errorf("wire stats empty: %+v (did the election actually cross the wire?)", got.Wire)
				}
			})
		}
	}
}

// assertOutcomesMatch compares the backend-independent outcome fields that
// must be identical between delivery planes.
func assertOutcomesMatch(t *testing.T, want, got *algo.Outcome) {
	t.Helper()
	if got.Algorithm != want.Algorithm {
		t.Errorf("algorithm %q, want %q", got.Algorithm, want.Algorithm)
	}
	if fmt.Sprint(got.Leaders) != fmt.Sprint(want.Leaders) {
		t.Errorf("leaders %v, want %v", got.Leaders, want.Leaders)
	}
	if fmt.Sprint(got.LeaderIDs) != fmt.Sprint(want.LeaderIDs) {
		t.Errorf("leader ids %v, want %v", got.LeaderIDs, want.LeaderIDs)
	}
	if got.Success != want.Success {
		t.Errorf("success %v, want %v", got.Success, want.Success)
	}
	if got.Explicit != want.Explicit {
		t.Errorf("explicit %v, want %v", got.Explicit, want.Explicit)
	}
	if got.Contenders != want.Contenders {
		t.Errorf("contenders %d, want %d", got.Contenders, want.Contenders)
	}
	if got.LeaderRound != want.LeaderRound {
		t.Errorf("leader round %d, want %d", got.LeaderRound, want.LeaderRound)
	}
	if got.Rounds != want.Rounds {
		t.Errorf("rounds %d, want %d", got.Rounds, want.Rounds)
	}
	if got.Metrics.Messages != want.Metrics.Messages {
		t.Errorf("messages %d, want %d", got.Metrics.Messages, want.Metrics.Messages)
	}
	if got.Metrics.Bits != want.Metrics.Bits {
		t.Errorf("bits %d, want %d", got.Metrics.Bits, want.Metrics.Bits)
	}
	if got.Metrics.Deliveries != want.Metrics.Deliveries {
		t.Errorf("deliveries %d, want %d", got.Metrics.Deliveries, want.Metrics.Deliveries)
	}
	if got.Metrics.FinalRound != want.Metrics.FinalRound {
		t.Errorf("final round %d, want %d", got.Metrics.FinalRound, want.Metrics.FinalRound)
	}
	for k, v := range want.Metrics.ByKind {
		if got.Metrics.ByKind[k] != v {
			t.Errorf("messages of kind %q: %d, want %d", k, got.Metrics.ByKind[k], v)
		}
	}
}

// TestClusterSessionServesManyJobs reuses one session across jobs and
// checks a repeated seed replays identically.
func TestClusterSessionServesManyJobs(t *testing.T) {
	local, err := StartLocal(3)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	spec := JobSpec{Graph: serve.GraphSpec{Family: "clique", N: 12, Seed: 3}, Algorithm: algo.KPPRT, Seed: 9}
	first, err := local.Elect(spec)
	if err != nil {
		t.Fatal(err)
	}
	other := spec
	other.Seed = 10
	if _, err := local.Elect(other); err != nil {
		t.Fatalf("second job: %v", err)
	}
	replay, err := local.Elect(spec)
	if err != nil {
		t.Fatalf("replay job: %v", err)
	}
	assertOutcomesMatch(t, &first.Outcome, &replay.Outcome)
	for v := range first.PerNodeMessages {
		if first.PerNodeMessages[v] != replay.PerNodeMessages[v] {
			t.Fatalf("node %d: replay sent %d, first run %d", v, replay.PerNodeMessages[v], first.PerNodeMessages[v])
		}
	}
}

// TestClusterRejectsBadJobs: validation failures fail the job, not the
// session, and name what the caller got wrong.
func TestClusterRejectsBadJobs(t *testing.T) {
	local, err := StartLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	good := JobSpec{Graph: serve.GraphSpec{Family: "clique", N: 8, Seed: 1}, Seed: 4}

	_, err = local.Elect(JobSpec{Graph: good.Graph, Algorithm: "bogus", Seed: 4})
	if err == nil || !strings.Contains(err.Error(), "bogus") || !strings.Contains(err.Error(), algo.KPPRT) {
		t.Fatalf("unknown algorithm error should name it and list the registry; got %v", err)
	}
	if _, err := local.Elect(JobSpec{Graph: serve.GraphSpec{Family: "nope"}, Seed: 4}); err == nil {
		t.Fatal("bad graph family accepted")
	}
	if _, err := local.Elect(JobSpec{Graph: serve.GraphSpec{Family: "clique", N: 1, Seed: 1}, Seed: 4}); err == nil {
		t.Fatal("1-node graph split across 2 shards accepted")
	}
	if _, err := local.Elect(good); err != nil {
		t.Fatalf("session should survive rejected jobs: %v", err)
	}
}

// TestClusterOverTCPClient covers the submit/outcome client path.
func TestClusterOverTCPClient(t *testing.T) {
	local, err := StartLocal(3)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	spec := JobSpec{Graph: serve.GraphSpec{Family: "clique", N: 15, Seed: 2}, Algorithm: algo.FloodMax, Seed: 6}
	want, _ := electInProcess(t, spec)
	got, err := Submit(local.Coord.Addr(), spec)
	if err != nil {
		t.Fatal(err)
	}
	assertOutcomesMatch(t, want, &got.Outcome)
	if !got.Outcome.Explicit {
		t.Error("floodmax under perfect delivery should merge as an explicit election")
	}
}

// TestOwnerOf pins the contiguous balanced partition: ranges tile [0, n)
// and the inverse map agrees.
func TestOwnerOf(t *testing.T) {
	for _, n := range []int{2, 3, 7, 16, 100, 101} {
		for shards := 1; shards <= 7 && shards <= n; shards++ {
			total := 0
			for s := 0; s < shards; s++ {
				lo, hi := shardLo(n, shards, s), shardLo(n, shards, s+1)
				if hi < lo {
					t.Fatalf("n=%d shards=%d shard %d: range [%d,%d)", n, shards, s, lo, hi)
				}
				total += hi - lo
				for v := lo; v < hi; v++ {
					if got := ownerOf(n, shards, v); got != s {
						t.Fatalf("n=%d shards=%d: node %d owned by %d, expected %d", n, shards, v, got, s)
					}
				}
			}
			if total != n {
				t.Fatalf("n=%d shards=%d: ranges cover %d nodes", n, shards, total)
			}
		}
	}
}

// TestStrayJoinAfterAssembly: a duplicate hello to an assembled
// coordinator (an operator re-running a worker, a port probe) must be
// refused without judging the session — and never double-close the ready
// channel (which used to panic the whole coordinator).
func TestStrayJoinAfterAssembly(t *testing.T) {
	local, err := StartLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	spec := JobSpec{Graph: serve.GraphSpec{Family: "clique", N: 8, Seed: 1}, Seed: 4}
	if _, err := local.Elect(spec); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", local.Coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeJSONFrame(conn, frameHello, helloMsg{Proto: proto, Shard: 1, Addr: "127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	}
	// The stray conn gets dropped...
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := readFrame(conn); err == nil {
		t.Fatal("stray join was answered instead of refused")
	}
	// ...and the session keeps serving.
	if _, err := local.Elect(spec); err != nil {
		t.Fatalf("session broken by a stray join: %v", err)
	}
}

// TestDataFrameChunking forces every round's traffic through tiny data
// chunks: a message-heavy round must cross as a frame sequence (never
// outgrowing the frame cap) and still satisfy the determinism contract.
func TestDataFrameChunking(t *testing.T) {
	old := dataChunkBytes
	dataChunkBytes = 64
	defer func() { dataChunkBytes = old }()
	local, err := StartLocal(3)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	spec := JobSpec{Graph: serve.GraphSpec{Family: "clique", N: 18, Seed: 5}, Algorithm: algo.FloodMax, Seed: 41}
	want, wantCounts := electInProcess(t, spec)
	got, err := local.Elect(spec)
	if err != nil {
		t.Fatal(err)
	}
	assertOutcomesMatch(t, want, &got.Outcome)
	for v := range wantCounts {
		if got.PerNodeMessages[v] != wantCounts[v] {
			t.Fatalf("node %d sent %d on the cluster, %d in process", v, got.PerNodeMessages[v], wantCounts[v])
		}
	}
	// Merged Barriers sums the per-shard counters (3 per global round
	// here), and an unchunked barrier costs shards*(shards-1) = 6 data
	// frames — i.e. Barriers*2 after merging. More means chunking split
	// the heavy rounds. (The legacy star's control frames no longer pad
	// the count: advancement is piggybacked.)
	globalFloor := got.Wire.Barriers * 2
	if got.Wire.Frames <= globalFloor {
		t.Fatalf("expected chunked rounds to multiply frames (%d frames, floor %d)",
			got.Wire.Frames, globalFloor)
	}
	if got.Wire.BarrierFrames != 0 {
		t.Fatalf("piggybacked session sent %d barrier control frames, want 0", got.Wire.BarrierFrames)
	}
}
