package cluster

// The coordinator: shard 0 of the cluster. It admits the other shards,
// publishes the peer directory, owns job control (start/result/merge) and
// answers client submissions.

import (
	"fmt"
	"net"
	"sync"
	"time"

	"wcle/internal/algo"
	"wcle/internal/obs"
)

// CoordinatorConfig parameterizes NewCoordinator.
type CoordinatorConfig struct {
	// Listen is the bootstrap address workers join through (and clients
	// submit to). Port 0 picks an ephemeral port (Addr reports it).
	Listen string
	// Shards is the total shard count, coordinator included (>= 1).
	Shards int
	// ReadyTimeout bounds how long Elect waits for the cluster to
	// assemble (0 = 60s).
	ReadyTimeout time.Duration
	// LegacyBarrier forces the frameReady/frameAdvance coordinator star
	// even when every worker supports piggybacked round advancement —
	// for wire-compat testing and old-vs-new measurement (E21).
	LegacyBarrier bool
	// Compress enables flate compression of data frames above the size
	// threshold, if every worker supports it. Off by default: it trades
	// coordinator/worker CPU for wire bytes, which only pays off on
	// message-heavy workloads or thin links.
	Compress bool
	// NoByzantine negotiates the Byzantine fault-injection capability off
	// even when every worker advertises it — for wire-compat testing and
	// for sessions that must refuse adversarial job specs outright. On by
	// default (subject to the usual AND with worker capabilities): jobs
	// carrying a byzantine fault spec mutate adversarial sends at dispatch
	// exactly as the in-process sim does.
	NoByzantine bool
	// TraceSink, when non-nil, additionally receives every trace event the
	// coordinator's shard records (the always-on flight recorder gets them
	// regardless). Tracing is strictly observational: a traced election is
	// byte-identical to an untraced one at the same seed.
	TraceSink obs.Sink
	// FlightCap bounds the flight recorder (0 = obs.DefaultFlightCap).
	FlightCap int
}

// Coordinator is shard 0: the bootstrap listener, the barrier's decider,
// and the merge point for job results.
type Coordinator struct {
	cfg CoordinatorConfig
	ln  net.Listener

	// flight is the always-on bounded flight recorder of shard 0; tracer
	// tees every event into it (plus cfg.TraceSink when set).
	flight *obs.Ring
	tracer *obs.Tracer

	mu       sync.Mutex
	links    []*link // by shard id; [0] stays nil
	caps     []feats // capabilities each shard advertised in its hello
	ft       feats   // negotiated session features (fixed at assembly)
	joined   int
	setupErr error
	closed   bool

	ready     chan struct{} // closed once every worker reported up
	readyOnce sync.Once     // guards every close of ready

	jobMu  sync.Mutex
	jobID  int64
	broken error // a failed job breaks the session — unless a supervisor recovers it

	// supervising marks the session as owned by a Supervision: ad-hoc
	// Elect calls are refused (their frames would interleave with lease
	// traffic) and crashed shards may rejoin through rejoinCh.
	supervising bool
	rejoinCh    chan rejoinReq

	// stats accumulates shard 0's per-job accounting for the ops surface.
	statsMu sync.Mutex
	stats   SessionStats

	shutdownOnce sync.Once
}

// Stats returns a copy of the coordinator's accumulated session stats
// (shard 0's own traffic, not the cluster total).
func (c *Coordinator) Stats() SessionStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.stats
}

// rejoinReq is one crashed shard announcing itself back to an active
// supervision.
type rejoinReq struct {
	shard int
	addr  string
	link  *link
}

// NewCoordinator binds the bootstrap listener and starts admitting
// workers. It returns immediately; Elect blocks until the cluster is
// assembled.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("cluster: coordinator needs >= 1 shards, got %d", cfg.Shards)
	}
	if cfg.ReadyTimeout == 0 {
		cfg.ReadyTimeout = 60 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	flight := obs.NewRing(cfg.FlightCap)
	c := &Coordinator{
		cfg:      cfg,
		ln:       ln,
		flight:   flight,
		tracer:   obs.New(obs.Tee(flight, cfg.TraceSink), 0),
		links:    make([]*link, cfg.Shards),
		caps:     make([]feats, cfg.Shards),
		ft:       feats{Piggyback: !cfg.LegacyBarrier, Compress: cfg.Compress, Byzantine: !cfg.NoByzantine},
		ready:    make(chan struct{}),
		rejoinCh: make(chan rejoinReq, cfg.Shards),
	}
	if cfg.Shards == 1 {
		c.closeReady() // a single-shard cluster is trivially assembled
	}
	go c.acceptLoop()
	return c, nil
}

// Addr returns the bound bootstrap address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Flight returns the coordinator's always-on flight recorder: the last
// trace events shard 0 produced, ready to dump on crash or re-election.
func (c *Coordinator) Flight() *obs.Ring { return c.flight }

// Tracer returns the coordinator's tracer (never nil: the flight
// recorder is always attached).
func (c *Coordinator) Tracer() *obs.Tracer { return c.tracer }

// acceptLoop admits workers (hello) and clients (submit) until the
// listener closes.
func (c *Coordinator) acceptLoop() {
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		go c.admit(conn)
	}
}

// admit routes one inbound connection by its first frame.
func (c *Coordinator) admit(conn net.Conn) {
	_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	f, err := readFrame(conn)
	if err != nil {
		_ = conn.Close()
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	switch f.typ {
	case frameHello:
		c.admitWorker(conn, f)
	case frameSubmit:
		c.serveClient(conn, f)
	default:
		_ = conn.Close()
	}
}

// admitWorker registers a joining shard; the last join triggers the
// directory broadcast and the up collection.
func (c *Coordinator) admitWorker(conn net.Conn, f frame) {
	var h helloMsg
	if err := decodeJSON(f, &h); err != nil {
		_ = conn.Close()
		return
	}
	c.mu.Lock()
	if c.joined == c.cfg.Shards-1 || c.setupErr != nil {
		// The cluster already assembled. Under supervision a crashed
		// shard may rejoin: park the connection for the supervisor, which
		// folds it in at the next epoch boundary. Anything else (an
		// operator re-running a worker, a port probe) is refused — and
		// setup failures are never re-judged.
		supervising := c.supervising && c.setupErr == nil
		dead := h.Shard >= 1 && h.Shard < c.cfg.Shards &&
			(c.links[h.Shard] == nil || c.links[h.Shard].failed() != nil)
		ft := c.ft
		c.mu.Unlock()
		// A rejoiner must support the session's negotiated features: they
		// are fixed for the session's lifetime, and a binary that cannot
		// speak them would corrupt the first barrier it joins.
		capable := (!ft.Piggyback || h.Piggyback) && (!ft.Compress || h.Compress) && (!ft.Byzantine || h.Byzantine)
		if supervising && dead && h.Proto == proto && h.Addr != "" && capable {
			l := newLink(h.Shard, conn)
			l.addr = h.Addr
			select {
			case c.rejoinCh <- rejoinReq{shard: h.Shard, addr: h.Addr, link: l}:
			default:
				l.close() // rejoin queue full: try again later
			}
			return
		}
		_ = conn.Close()
		return
	}
	switch {
	case h.Proto != proto:
		c.failSetupLocked(fmt.Errorf("cluster: shard %d speaks protocol %d, want %d", h.Shard, h.Proto, proto))
	case h.Shard < 1 || h.Shard >= c.cfg.Shards:
		c.failSetupLocked(fmt.Errorf("cluster: joining shard id %d out of [1, %d)", h.Shard, c.cfg.Shards))
	case c.links[h.Shard] != nil:
		c.failSetupLocked(fmt.Errorf("cluster: shard %d joined twice", h.Shard))
	case h.Addr == "":
		c.failSetupLocked(fmt.Errorf("cluster: shard %d joined without a listen address", h.Shard))
	default:
		l := newLink(h.Shard, conn)
		l.addr = h.Addr
		c.links[h.Shard] = l
		c.caps[h.Shard] = feats{Piggyback: h.Piggyback, Compress: h.Compress, Byzantine: h.Byzantine}
		c.joined++
		if c.joined == c.cfg.Shards-1 {
			links := append([]*link(nil), c.links...)
			c.mu.Unlock()
			c.finishSetup(links)
			return
		}
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	_ = conn.Close()
}

// closeReady unblocks Elect exactly once, however many paths race to it.
func (c *Coordinator) closeReady() {
	c.readyOnce.Do(func() { close(c.ready) })
}

// failSetupLocked records the first setup failure and unblocks Elect.
func (c *Coordinator) failSetupLocked(err error) {
	if c.setupErr == nil {
		c.setupErr = err
		c.closeReady()
	}
}

// finishSetup negotiates the session features, broadcasts the peer
// directory, and waits for every worker's pairwise links to come up.
func (c *Coordinator) finishSetup(links []*link) {
	// The session runs the AND of what the configuration wants and what
	// every member can speak: one old binary in the cluster downgrades
	// everyone to the legacy star (and raw frames), keeping mixed-version
	// clusters byte-compatible.
	c.mu.Lock()
	ft := c.ft
	for shard := 1; shard < c.cfg.Shards; shard++ {
		ft.Piggyback = ft.Piggyback && c.caps[shard].Piggyback
		ft.Compress = ft.Compress && c.caps[shard].Compress
		ft.Byzantine = ft.Byzantine && c.caps[shard].Byzantine
	}
	c.ft = ft
	c.mu.Unlock()
	addrs := make([]string, c.cfg.Shards)
	addrs[0] = c.Addr()
	for shard := 1; shard < c.cfg.Shards; shard++ {
		addrs[shard] = links[shard].addr
	}
	var err error
	for shard := 1; shard < c.cfg.Shards && err == nil; shard++ {
		l := links[shard]
		if e := l.writeJSON(framePeers, peersMsg{Addrs: addrs, Piggyback: ft.Piggyback, Compress: ft.Compress, Byzantine: ft.Byzantine}); e != nil {
			err = e
		} else if e := l.flush(); e != nil {
			err = e
		}
	}
	for shard := 1; shard < c.cfg.Shards && err == nil; shard++ {
		var up upMsg
		if e := links[shard].expectJSON(frameUp, &up); e != nil {
			err = e
		} else if up.Shard != shard {
			err = fmt.Errorf("cluster: shard %d reported up as shard %d", shard, up.Shard)
		}
	}
	c.mu.Lock()
	if err != nil {
		c.failSetupLocked(err)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	c.closeReady()
}

// serveClient answers submit frames on one client connection until it
// closes.
func (c *Coordinator) serveClient(conn net.Conn, first frame) {
	defer conn.Close()
	f := first
	for {
		if f.typ != frameSubmit {
			return
		}
		var spec JobSpec
		if err := decodeJSON(f, &spec); err != nil {
			_ = writeJSONFrame(conn, frameOutcome, outcomeMsg{Err: err.Error()})
			return
		}
		res, err := c.Elect(spec)
		out := outcomeMsg{Result: res}
		if err != nil {
			out = outcomeMsg{Err: err.Error()}
		}
		if err := writeJSONFrame(conn, frameOutcome, out); err != nil {
			return
		}
		var rerr error
		if f, rerr = readFrame(conn); rerr != nil {
			return
		}
	}
}

// Elect runs one election across the cluster and returns the merged
// result. Jobs are serialized: the barrier owns every link while a job
// runs. The same seed elects the same leader as the in-process sim —
// fault planes included, since every FaultSpec plane is shard-safe.
func (c *Coordinator) Elect(spec JobSpec) (*Result, error) {
	c.mu.Lock()
	supervising := c.supervising
	c.mu.Unlock()
	if supervising {
		return nil, fmt.Errorf("cluster: session is under supervision; ad-hoc elections would interleave with lease traffic")
	}
	return c.elect(spec)
}

// Run is Elect under its protocol-generic name: with spec.Protocol set,
// the cluster runs any registered engine protocol and the merged Result
// carries the reassembled Engine report.
func (c *Coordinator) Run(spec JobSpec) (*Result, error) { return c.Elect(spec) }

// elect is the supervisor-accessible election path (no supervising gate).
func (c *Coordinator) elect(spec JobSpec) (*Result, error) {
	select {
	case <-c.ready:
	case <-time.After(c.cfg.ReadyTimeout):
		c.mu.Lock()
		joined := c.joined
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: only %d of %d shards joined within %v", joined+1, c.cfg.Shards, c.cfg.ReadyTimeout)
	}
	c.mu.Lock()
	err := c.setupErr
	closed := c.closed
	links := append([]*link(nil), c.links...)
	ft := c.ft
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if closed {
		return nil, fmt.Errorf("cluster: coordinator is shut down")
	}

	c.jobMu.Lock()
	defer c.jobMu.Unlock()
	if c.broken != nil {
		return nil, fmt.Errorf("cluster: session broken by an earlier job: %w", c.broken)
	}
	// Validate before touching the workers: a bad spec must fail the job,
	// not the session.
	if spec.Algorithm != "" && !algo.Known(spec.Algorithm) {
		return nil, fmt.Errorf("cluster: unknown algorithm %q (known: %v)", spec.Algorithm, algo.Names())
	}
	if err := spec.Fault.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	// A session that negotiated the Byzantine capability off (an old binary
	// in the cluster, or NoByzantine) must refuse adversarial specs: a
	// member that cannot mutate sends would silently diverge from the sim.
	if spec.Fault.Byzantine() && !ft.Byzantine {
		return nil, fmt.Errorf("cluster: job carries a byzantine fault spec but the session negotiated that capability off")
	}
	g0, err := spec.Graph.Build()
	if err != nil {
		return nil, fmt.Errorf("cluster: graph spec: %w", err)
	}
	if g0.N() < c.cfg.Shards {
		return nil, fmt.Errorf("cluster: %d-node graph cannot be split across %d shards", g0.N(), c.cfg.Shards)
	}
	g, owner, err := spec.owners(g0, c.cfg.Shards)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	live := liveShards(owner, c.cfg.Shards)
	for shard := 1; shard < c.cfg.Shards; shard++ {
		if live[shard] && links[shard] == nil {
			return nil, fmt.Errorf("cluster: job needs shard %d, which is not part of the session", shard)
		}
	}

	c.jobID++
	start := startMsg{JobID: c.jobID, Spec: spec}
	for shard := 1; shard < c.cfg.Shards; shard++ {
		if !live[shard] {
			continue
		}
		l := links[shard]
		if err := l.writeJSON(frameStart, start); err != nil {
			c.broken = err
			return nil, err
		}
		if err := l.flush(); err != nil {
			c.broken = err
			return nil, err
		}
	}

	parts := make([]partialResult, 0, c.cfg.Shards)
	own := runShard(links, 0, c.cfg.Shards, c.jobID, spec, ft, c.tracer)
	c.statsMu.Lock()
	c.stats.addJob(own)
	c.statsMu.Unlock()
	parts = append(parts, own)
	for shard := 1; shard < c.cfg.Shards; shard++ {
		if !live[shard] {
			continue
		}
		pr, err := collectResult(links[shard], c.jobID)
		if err != nil {
			c.broken = err
			return nil, err
		}
		parts = append(parts, pr)
	}
	res, err := merge(g.N(), c.cfg.Shards, parts)
	if err != nil {
		// A failed job leaves barrier state (aborts, half-flushed
		// rounds) on the links; nothing after it can trust them — until a
		// supervisor quiesces the session into a new epoch.
		c.broken = err
		return nil, err
	}
	return res, nil
}

// collectResult reads one shard's result frame, skimming leftover barrier
// frames of a run that died mid-round.
func collectResult(l *link, jobID int64) (partialResult, error) {
	for {
		f, err := l.next()
		if err != nil {
			return partialResult{}, err
		}
		switch f.typ {
		case frameResult:
			var pr partialResult
			if err := decodeJSON(f, &pr); err != nil {
				return partialResult{}, err
			}
			if pr.JobID != jobID {
				return partialResult{}, fmt.Errorf("cluster: shard %d answered job %d, expected %d", l.peer, pr.JobID, jobID)
			}
			return pr, nil
		case frameData, frameDataZ, frameReady, frameAbort, frameHeart:
			// Leftovers of a broken barrier (or a straggling heartbeat);
			// the result frame follows.
		default:
			return partialResult{}, fmt.Errorf("cluster: expected result from shard %d, got %s", l.peer, frameName(f.typ))
		}
	}
}

// Shutdown ends the session: workers get a shutdown frame and exit, the
// listener closes. Idempotent.
func (c *Coordinator) Shutdown() {
	c.shutdownOnce.Do(func() {
		c.jobMu.Lock()
		defer c.jobMu.Unlock()
		c.mu.Lock()
		c.closed = true
		links := append([]*link(nil), c.links...)
		c.mu.Unlock()
		for _, l := range links {
			if l == nil {
				continue
			}
			_ = l.writeJSON(frameShutdown, shutdownMsg{})
			_ = l.flush()
			l.close()
		}
		_ = c.ln.Close()
	})
}
