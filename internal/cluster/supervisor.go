package cluster

// The supervisor: leader leases with coordinator-side failure detection.
//
// A Supervision owns the session. It elects over the current membership,
// grants the leader a lease (workers heartbeat while it holds), and
// watches every worker link. When a shard dies — its TCP connection
// drops, or its heartbeats stop for a TTL — the supervisor bumps the
// epoch, quiesces every surviving link (an epoch-marker exchange drains
// whatever the aborted job left in flight), shrinks the membership to
// the survivors' nodes, and re-elects over the induced subgraph. A
// crashed shard that dials back in is folded in the same way: epoch
// bump, quiesce, re-election over the grown membership.
//
// Epoch 1 runs with the spec's seed verbatim, so a supervised first
// election stays byte-identical to the in-process sim (the keystone
// determinism contract). Later epochs (and retried attempts) derive
// their seed from (epoch, attempt), so every reign is still reproducible
// — Reign.Seed records the seed that won.
//
// A completed election may still fail: the probabilistic backend elects
// zero (or, rarely, several) leaders with small probability. The
// supervisor retries such elections at deterministically derived seeds,
// a bounded number of times per epoch, before declaring the failure
// fatal.
//
// Supervision assumes the graph's survivor-induced subgraphs stay
// connected (cliques, dense random graphs). A disconnected remainder
// elects one leader per component every attempt, which the supervisor
// reports as a fatal multi-leader outcome once the attempts run out.

import (
	"fmt"
	"sync"
	"time"

	"wcle/internal/sim"
	"wcle/internal/wire"
)

// defaultLeaseTTL is how long a silent worker stays presumed-live. Dead
// processes are caught immediately through the connection error; the TTL
// only backstops hung-but-connected peers, so it is generous.
const defaultLeaseTTL = 5 * time.Second

// electAttempts bounds how many times one epoch retries a
// completed-but-failed election (zero or several leaders) before the
// supervisor declares it fatal. Each attempt's seed is derived
// deterministically, so a supervised run is still a pure function of the
// spec seed and the membership history.
const electAttempts = 3

// epochSeed is the seed of one election attempt. The keystone attempt —
// epoch 1, first try — uses the spec seed verbatim so a supervised first
// election stays byte-identical to the in-process sim; everything else
// derives from (epoch, attempt).
func epochSeed(master int64, epoch uint64, attempt int) int64 {
	if epoch == 1 && attempt == 0 {
		return master
	}
	return sim.DeriveSeed(master, epoch|uint64(attempt)<<32)
}

// EventKind tags a supervision event.
type EventKind string

const (
	// EventLease: an election completed and the leader's lease began.
	EventLease EventKind = "lease"
	// EventDeath: a worker shard was declared dead.
	EventDeath EventKind = "death"
	// EventRejoin: a crashed shard reconnected and was folded back in.
	EventRejoin EventKind = "rejoin"
)

// Event is one supervision state change, delivered to OnEvent in order.
type Event struct {
	Kind  EventKind
	Epoch uint64
	// Shard is the affected shard (death/rejoin).
	Shard int
	// Leader is the elected leader as an original node index of the full
	// graph; LeaderShard hosts it (lease events).
	Leader      int
	LeaderShard int
	// Err is the observed cause of a death, when there was one.
	Err error
}

// Reign is one completed election under supervision: who led, over which
// membership, and how long the election took.
type Reign struct {
	// Epoch numbers the reign (1 = the initial election).
	Epoch uint64
	// Leader is the leader as an original node index of the full graph;
	// LeaderShard hosts it.
	Leader      int
	LeaderShard int
	// Members is the membership the election ran over (original node
	// indices; nil = the full graph).
	Members []int
	// Result is the merged election result (leader indices inside it are
	// renumbered to the induced subgraph; Leader above is the original).
	Result *Result
	// Seed is the election seed of the successful attempt; Attempts counts
	// the elections the epoch ran (>1 when failed elections were retried).
	Seed     int64
	Attempts int
	// ElectWall is the election's own wall time; RecoverWall additionally
	// includes the quiesce that preceded it (zero for epoch 1). The
	// difference is the price of draining the broken epoch.
	ElectWall   time.Duration
	RecoverWall time.Duration
}

// SuperviseConfig parameterizes Coordinator.Supervise.
type SuperviseConfig struct {
	// Spec is the election to run and re-run. Members must be empty: the
	// supervisor owns the membership.
	Spec JobSpec
	// HeartEvery is the worker heartbeat period (0 = 50ms).
	HeartEvery time.Duration
	// TTL declares a worker dead after this much silence (0 = 5s). Abrupt
	// process death is detected through the connection error long before.
	TTL time.Duration
	// OnEvent, when set, observes every lease/death/rejoin synchronously
	// from the supervisor goroutine. Must not call back into the
	// supervision.
	OnEvent func(Event)
}

// Supervision is an active supervised session.
type Supervision struct {
	c   *Coordinator
	cfg SuperviseConfig
	n0  int // full-graph node count

	stopCh   chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	mu     sync.Mutex
	reigns []Reign
	err    error
}

// Supervise starts supervising the session: elect, lease, monitor,
// re-elect on membership changes, until Stop or a fatal error. Ad-hoc
// Elect calls are refused while the supervision runs.
func (c *Coordinator) Supervise(cfg SuperviseConfig) (*Supervision, error) {
	if cfg.HeartEvery <= 0 {
		cfg.HeartEvery = defaultHeartEvery
	}
	if cfg.TTL <= 0 {
		cfg.TTL = defaultLeaseTTL
	}
	if len(cfg.Spec.Members) != 0 {
		return nil, fmt.Errorf("cluster: supervision owns the member list; supervise a full-graph spec")
	}
	if err := cfg.Spec.Fault.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	g0, err := cfg.Spec.Graph.Build()
	if err != nil {
		return nil, fmt.Errorf("cluster: graph spec: %w", err)
	}
	if g0.N() < c.cfg.Shards {
		return nil, fmt.Errorf("cluster: %d-node graph cannot be split across %d shards", g0.N(), c.cfg.Shards)
	}
	c.mu.Lock()
	switch {
	case c.closed:
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: coordinator is shut down")
	case c.supervising:
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: session is already under supervision")
	}
	c.supervising = true
	c.mu.Unlock()
	s := &Supervision{
		c:      c,
		cfg:    cfg,
		n0:     g0.N(),
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
	}
	go s.run()
	return s, nil
}

// Stop ends the supervision after the current activity settles. The
// session quiesces into a fresh epoch on the way out, so it stays usable
// for ad-hoc elections afterwards. Idempotent.
func (s *Supervision) Stop() {
	s.stopOnce.Do(func() { close(s.stopCh) })
}

// Wait blocks until the supervision ends and returns every completed
// reign in order, plus the fatal error if one ended it (nil after Stop).
func (s *Supervision) Wait() ([]Reign, error) {
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Reign(nil), s.reigns...), s.err
}

// Reigns snapshots the completed reigns so far.
func (s *Supervision) Reigns() []Reign {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Reign(nil), s.reigns...)
}

func (s *Supervision) finish(err error) {
	s.mu.Lock()
	s.err = err
	s.mu.Unlock()
}

func (s *Supervision) emit(ev Event) {
	if tr := s.c.tracer; tr.Enabled() {
		args := map[string]int64{"epoch": int64(ev.Epoch)}
		switch ev.Kind {
		case EventLease:
			args["leader"] = int64(ev.Leader)
			args["leader_shard"] = int64(ev.LeaderShard)
		default:
			args["shard"] = int64(ev.Shard)
		}
		tr.Instant("epoch", string(ev.Kind), -1, args)
	}
	if s.cfg.OnEvent != nil {
		s.cfg.OnEvent(ev)
	}
}

// leaseEvent is what ends one monitoring phase.
type leaseEvent struct {
	kind  EventKind // EventDeath or EventRejoin; "" for stop
	shard int
	err   error
	req   rejoinReq
}

// run is the supervisor loop. One iteration = quiesce (except epoch 1),
// elect, lease, monitor until a trigger.
func (s *Supervision) run() {
	defer close(s.done)
	defer func() {
		s.c.mu.Lock()
		s.c.supervising = false
		s.c.mu.Unlock()
	}()
	c := s.c
	shards := c.cfg.Shards
	live := make([]bool, shards)
	for i := range live {
		live[i] = true
	}
	epoch := uint64(1)
	var members []int       // nil = full graph
	var triggerAt time.Time // when the membership change that led here was observed

	for {
		select {
		case <-s.stopCh:
			s.finish(nil)
			return
		default:
		}
		if c.isClosed() {
			s.finish(fmt.Errorf("cluster: coordinator shut down during supervision"))
			return
		}

		// Elect over the current membership, retrying completed-but-failed
		// elections at derived seeds (see epochSeed).
		spec := s.cfg.Spec
		spec.Members = members
		t0 := time.Now()
		electSp := c.tracer.Start("epoch", "elect", -1)
		electSp.Arg("epoch", int64(epoch))
		electSp.Arg("members", int64(len(members)))
		var res *Result
		var err error
		attempts := 0
		for attempts < electAttempts {
			spec.Seed = epochSeed(s.cfg.Spec.Seed, epoch, attempts)
			res, err = c.elect(spec)
			attempts++
			if err != nil || len(res.Outcome.Leaders) == 1 {
				break
			}
		}
		electSp.Arg("attempts", int64(attempts))
		electSp.End()
		electWall := time.Since(t0)
		if err != nil {
			dead := s.deadShards(live)
			if len(dead) == 0 {
				s.finish(fmt.Errorf("cluster: epoch %d election failed: %w", epoch, err))
				return
			}
			// A shard died under the election. Declare it, quiesce the
			// wreckage, and retry over the survivors.
			if triggerAt.IsZero() {
				triggerAt = t0
			}
			epoch, members = s.retire(epoch, live, &members, dead, nil)
			continue
		}
		if len(res.Outcome.Leaders) != 1 {
			s.finish(fmt.Errorf("cluster: epoch %d elected %d leaders %v in %d attempts (membership no longer connected?)",
				epoch, len(res.Outcome.Leaders), res.Outcome.Leaders, attempts))
			return
		}
		leader := res.Outcome.Leaders[0]
		if members != nil {
			leader = members[leader]
		}
		leaderShard := ownerOf(s.n0, shards, leader)
		recoverWall := electWall
		if !triggerAt.IsZero() {
			recoverWall = time.Since(triggerAt)
		}
		triggerAt = time.Time{}
		reign := Reign{
			Epoch: epoch, Leader: leader, LeaderShard: leaderShard,
			Members: append([]int(nil), members...), Result: res,
			Seed: spec.Seed, Attempts: attempts,
			ElectWall: electWall, RecoverWall: recoverWall,
		}
		s.mu.Lock()
		s.reigns = append(s.reigns, reign)
		s.mu.Unlock()
		s.emit(Event{Kind: EventLease, Epoch: epoch, Leader: leader, LeaderShard: leaderShard})

		// Grant the lease: workers heartbeat until the next epoch change.
		leasePayload := wire.AppendLease(nil, wire.Lease{
			Epoch: epoch, Leader: res.Outcome.Leaders[0], LeaderShard: leaderShard,
			HeartMillis: uint32(s.cfg.HeartEvery / time.Millisecond),
		})
		var dead []deadShard
		for p := 1; p < shards; p++ {
			if !live[p] {
				continue
			}
			l := c.linkOf(p)
			if l == nil {
				continue
			}
			if err := l.writeFlush(frameLease, leasePayload); err != nil {
				dead = append(dead, deadShard{p, err})
			}
		}
		if len(dead) > 0 {
			triggerAt = time.Now()
			epoch, members = s.retire(epoch, live, &members, dead, nil)
			continue
		}

		// Monitor the lease until something changes the membership.
		trigger, extra := s.monitorLease(live)
		switch trigger.kind {
		case "":
			// Stop: quiesce into a fresh epoch so heartbeats cease and the
			// session stays usable.
			epoch++
			s.quiesce(epoch, live, nil)
			c.recoverSession()
			s.finish(nil)
			return
		case EventDeath:
			triggerAt = time.Now()
			dead := append([]deadShard{{trigger.shard, trigger.err}}, extra...)
			epoch, members = s.retire(epoch, live, &members, dead, nil)
		case EventRejoin:
			triggerAt = time.Now()
			r := trigger.req
			if live[r.shard] && c.linkOf(r.shard) != nil && c.linkOf(r.shard).failed() == nil {
				// Spurious: the shard is alive and wired. Drop the extra
				// connection; still quiesce into a fresh epoch (the
				// monitors are down and any deaths in extra must land).
				r.link.close()
				epoch, members = s.retire(epoch, live, &members, extra, nil)
			} else {
				epoch, members = s.retire(epoch, live, &members, extra, &r)
				s.emit(Event{Kind: EventRejoin, Epoch: epoch, Shard: r.shard})
			}
		}
	}
}

// deadShard is one shard to declare dead, with the observed cause.
type deadShard struct {
	shard int
	err   error
}

// retire applies a membership change: mark deaths, fold in a rejoiner,
// bump the epoch, and quiesce every surviving link — repeating if the
// quiesce itself uncovers more deaths. Returns the new epoch and member
// list.
func (s *Supervision) retire(epoch uint64, live []bool, members *[]int, dead []deadShard, rj *rejoinReq) (uint64, []int) {
	c := s.c
	for {
		for _, d := range dead {
			if !live[d.shard] {
				continue
			}
			live[d.shard] = false
			c.dropLink(d.shard)
			s.emit(Event{Kind: EventDeath, Epoch: epoch, Shard: d.shard, Err: d.err})
		}
		if rj != nil {
			live[rj.shard] = true
		}
		epoch++
		*members = membersOf(s.n0, len(live), live)
		newDead := s.quiesce(epoch, live, rj)
		rj = nil
		if len(newDead) == 0 {
			break
		}
		dead = newDead
	}
	c.recoverSession()
	return epoch, *members
}

// monitorLease watches every live worker link until a death, a rejoin
// request, or Stop. It returns the trigger plus any additional deaths
// observed while retiring the monitors. On return no monitor goroutine
// is left and no link queue holds a pending interrupt.
func (s *Supervision) monitorLease(live []bool) (leaseEvent, []deadShard) {
	c := s.c
	type exit struct {
		shard int
		err   error // nil: interrupted
	}
	events := make(chan exit, len(live))
	running := 0
	for p := 1; p < len(live); p++ {
		if !live[p] {
			continue
		}
		l := c.linkOf(p)
		if l == nil {
			continue
		}
		running++
		go func(p int, l *link) {
			for {
				f, err := l.q.next(s.cfg.TTL)
				if err == errInterrupted {
					events <- exit{p, nil}
					return
				}
				if err != nil {
					events <- exit{p, err}
					return
				}
				if f.typ != frameHeart {
					events <- exit{p, fmt.Errorf("cluster: unexpected %s from shard %d under lease", frameName(f.typ), p)}
					return
				}
			}
		}(p, l)
	}

	var trigger leaseEvent
	select {
	case <-s.stopCh:
		trigger = leaseEvent{kind: ""}
	case r := <-c.rejoinCh:
		trigger = leaseEvent{kind: EventRejoin, shard: r.shard, req: r}
	case e := <-events:
		running--
		trigger = leaseEvent{kind: EventDeath, shard: e.shard, err: e.err}
	}

	// Retire the remaining monitors. Interrupting a queue whose monitor
	// already exited leaves a stale flag; cleared below once every monitor
	// is accounted for.
	for p := 1; p < len(live); p++ {
		if l := c.linkOf(p); live[p] && l != nil {
			l.q.interrupt()
		}
	}
	var extra []deadShard
	for running > 0 {
		e := <-events
		running--
		if e.err != nil && e.shard != trigger.shard {
			extra = append(extra, deadShard{e.shard, e.err})
		}
	}
	for p := 1; p < len(live); p++ {
		if l := c.linkOf(p); live[p] && l != nil {
			l.q.clearInterrupt()
		}
	}
	return trigger, extra
}

// quiesce moves every surviving link into the given epoch: broadcast the
// epoch change, hand a rejoiner the peer directory, and collect every
// survivor's ack (draining whatever the dying epoch left queued). It
// returns the shards that failed to quiesce — dead, for the caller to
// retire next.
func (s *Supervision) quiesce(epoch uint64, live []bool, rj *rejoinReq) (dead []deadShard) {
	c := s.c
	quiesceSp := c.tracer.Start("epoch", "quiesce", -1)
	quiesceSp.Arg("epoch", int64(epoch))
	defer func() {
		quiesceSp.Arg("dead", int64(len(dead)))
		quiesceSp.End()
	}()
	shards := len(live)
	rejoin := -1
	var rejoinAddr string
	if rj != nil {
		rejoin, rejoinAddr = rj.shard, rj.addr
	}
	payload := wire.AppendEpochChange(nil, wire.EpochChange{
		Epoch: epoch, Live: append([]bool(nil), live...), Rejoin: rejoin, RejoinAddr: rejoinAddr,
	})
	deadSet := map[int]error{}
	for p := 1; p < shards; p++ {
		if !live[p] || p == rejoin {
			continue
		}
		l := c.linkOf(p)
		if l == nil {
			deadSet[p] = fmt.Errorf("cluster: shard %d has no link", p)
			continue
		}
		if err := l.writeFlush(frameEpoch, payload); err != nil {
			deadSet[p] = err
		}
	}
	// The rejoiner gets the peer directory instead (its link is fresh;
	// nothing to drain) — before the ack collection, because survivors
	// below the rejoiner wait for its dial during their own epoch change.
	if rj != nil {
		c.installLink(rj.shard, rj.link)
		addrs := c.directory(rj.shard, rj.addr)
		c.mu.Lock()
		ft := c.ft
		c.mu.Unlock()
		if err := rj.link.writeJSON(framePeers, peersMsg{Addrs: addrs, Live: append([]bool(nil), live...), Piggyback: ft.Piggyback, Compress: ft.Compress}); err != nil {
			deadSet[rj.shard] = err
		} else if err := rj.link.flush(); err != nil {
			deadSet[rj.shard] = err
		}
	}
	for p := 1; p < shards; p++ {
		if !live[p] || p == rejoin || deadSet[p] != nil {
			continue
		}
		if err := collectEpochAck(c.linkOf(p), epoch); err != nil {
			deadSet[p] = err
		}
	}
	if rj != nil && deadSet[rj.shard] == nil {
		// The rejoiner reports up once its pairwise links are rebuilt.
		var up upMsg
		if err := rj.link.expectJSON(frameUp, &up); err != nil {
			deadSet[rj.shard] = err
		} else if up.Shard != rj.shard {
			deadSet[rj.shard] = fmt.Errorf("cluster: rejoiner %d reported up as shard %d", rj.shard, up.Shard)
		}
	}
	for p := 1; p < shards; p++ {
		if err, ok := deadSet[p]; ok {
			dead = append(dead, deadShard{p, err})
		}
	}
	return dead
}

// collectEpochAck reads one worker's epoch ack, skimming stale frames of
// the epoch being drained.
func collectEpochAck(l *link, epoch uint64) error {
	for {
		f, err := l.next()
		if err != nil {
			return err
		}
		switch f.typ {
		case frameEpochAck:
			e, rest, err := wire.ReadUvarint(f.payload)
			if err != nil || len(rest) != 0 {
				return fmt.Errorf("cluster: corrupt epoch ack from shard %d", l.peer)
			}
			if e == epoch {
				return nil
			}
			// An older epoch's ack: keep draining.
		case frameData, frameDataZ, frameReady, frameResult, frameAbort, frameHeart:
			// Leftovers of the dying epoch.
		default:
			return fmt.Errorf("cluster: unexpected %s from shard %d while quiescing epoch %d", frameName(f.typ), l.peer, epoch)
		}
	}
}

// deadShards scans the live set for links that have failed (or vanished).
func (s *Supervision) deadShards(live []bool) []deadShard {
	var dead []deadShard
	for p := 1; p < len(live); p++ {
		if !live[p] {
			continue
		}
		l := s.c.linkOf(p)
		if l == nil {
			dead = append(dead, deadShard{p, fmt.Errorf("cluster: shard %d has no link", p)})
		} else if err := l.failed(); err != nil {
			dead = append(dead, deadShard{p, err})
		}
	}
	return dead
}

// membersOf lists the original node indices owned by the live shards
// (nil when every shard is live: the full graph).
func membersOf(n0, shards int, live []bool) []int {
	all := true
	for _, v := range live {
		all = all && v
	}
	if all {
		return nil
	}
	var m []int
	for sh := 0; sh < shards; sh++ {
		if !live[sh] {
			continue
		}
		for v := shardLo(n0, shards, sh); v < shardLo(n0, shards, sh+1); v++ {
			m = append(m, v)
		}
	}
	return m
}

// Coordinator link-table helpers, shared with the supervisor.

func (c *Coordinator) linkOf(p int) *link {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.links[p]
}

func (c *Coordinator) installLink(p int, l *link) {
	c.mu.Lock()
	old := c.links[p]
	c.links[p] = l
	c.mu.Unlock()
	if old != nil && old != l {
		old.close()
	}
}

func (c *Coordinator) dropLink(p int) {
	c.mu.Lock()
	old := c.links[p]
	c.links[p] = nil
	c.mu.Unlock()
	if old != nil {
		old.close()
	}
}

// directory rebuilds the shard address table for a rejoiner, substituting
// the rejoiner's own announced address (its old link is gone).
func (c *Coordinator) directory(rejoin int, rejoinAddr string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	addrs := make([]string, c.cfg.Shards)
	addrs[0] = c.ln.Addr().String()
	for p := 1; p < c.cfg.Shards; p++ {
		if p == rejoin {
			addrs[p] = rejoinAddr
		} else if c.links[p] != nil {
			addrs[p] = c.links[p].addr
		}
	}
	return addrs
}

// recoverSession clears the broken-session latch after a quiesce: the
// links are drained, so the next job can trust them again.
func (c *Coordinator) recoverSession() {
	c.jobMu.Lock()
	c.broken = nil
	c.jobMu.Unlock()
}

func (c *Coordinator) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}
