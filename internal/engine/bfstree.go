package engine

import (
	"fmt"

	"wcle/internal/graph"
	"wcle/internal/protocol"
	"wcle/internal/sim"
)

type joinMsg struct {
	bits int
}

func (m *joinMsg) Bits() int    { return m.bits }
func (m *joinMsg) Kind() string { return "join" }

var _ sim.Message = (*joinMsg)(nil)

// bfsNode builds a BFS spanning tree by flooding: the first JOIN received
// fixes the parent port; the node then floods JOIN on all other ports.
type bfsNode struct {
	isRoot     bool
	started    bool
	joined     bool
	parentPort int
	depth      int
}

func (nd *bfsNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	flood := func(skip int) error {
		for port := 0; port < ctx.Degree(); port++ {
			if port == skip {
				continue
			}
			if err := ctx.Send(port, &joinMsg{bits: protocol.FlagBits}); err != nil {
				return err
			}
		}
		return nil
	}
	if nd.isRoot && !nd.started {
		nd.started = true
		nd.joined = true
		nd.parentPort = -1
		return flood(-1)
	}
	for _, env := range inbox {
		if _, ok := env.Payload.(*joinMsg); !ok {
			return fmt.Errorf("engine: bfstree: unexpected message kind %q", env.Payload.Kind())
		}
		if !nd.joined {
			nd.joined = true
			nd.parentPort = env.Port
			nd.depth = ctx.Round()
			return flood(env.Port)
		}
	}
	return nil
}

// Output is [joined(0/1), parent port (-1 root, meaningless when not
// joined), BFS depth]. Ports instead of node ids: nodes are anonymous, so
// resolving a port to a neighbor index is the caller's graph-side job
// (broadcast.BFSTree does it to build TreeResult.Parent).
func (nd *bfsNode) Output() []int64 {
	joined := int64(0)
	if nd.joined {
		joined = 1
	}
	return []int64{joined, int64(nd.parentPort), int64(nd.depth)}
}

// bfsTreeProto is the registered BFS spanning-tree protocol.
type bfsTreeProto struct {
	root int
}

func newBFSTree(cfg Config) (Protocol, error) {
	return &bfsTreeProto{root: cfg.Root}, nil
}

func (p *bfsTreeProto) Name() string    { return BFSTree }
func (p *bfsTreeProto) Slots() []string { return []string{"joined", "parent_port", "depth"} }

func (p *bfsTreeProto) Init(g *graph.Graph) (Instance, error) {
	if p.root < 0 || p.root >= g.N() {
		return nil, fmt.Errorf("engine: bfstree: root %d out of range", p.root)
	}
	sizing, err := protocol.NewSizing(g.N())
	if err != nil {
		return nil, err
	}
	nodes := make([]*bfsNode, g.N())
	for v := range nodes {
		nodes[v] = &bfsNode{isRoot: v == p.root}
	}
	return &bfsInstance{
		nodes: nodes,
		lim:   Limits{MaxMessageBits: sizing.CongestCap(), MaxRounds: g.N() + 8},
	}, nil
}

type bfsInstance struct {
	nodes []*bfsNode
	lim   Limits
}

func (i *bfsInstance) Node(v int) Node { return i.nodes[v] }
func (i *bfsInstance) Limits() Limits  { return i.lim }
