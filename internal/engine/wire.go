package engine

// Wire codecs for the engine's built-in protocol messages, so pushpull,
// bfstree, and aggregate runs can cross shard boundaries in the cluster
// runtime exactly like the election backends.

import (
	"encoding/binary"
	"fmt"

	"wcle/internal/protocol"
	"wcle/internal/sim"
	"wcle/internal/wire"
)

// Wire ids of the engine messages. Part of the wire format: never reuse.
const (
	wireRumor   = 7
	wirePull    = 8
	wireJoin    = 9
	wireAggJoin = 10
	wireAggNack = 11
	wireAggUp   = 12
	wireAggDown = 13
)

// flagOnly builds a codec for a message that carries nothing but its bit
// size (pull requests, joins, nacks), reconstructed by make.
func flagOnly(kind string, cast func(m sim.Message) (int, bool), make func(bits int) sim.Message) wire.MsgCodec {
	return wire.MsgCodec{
		Kind: kind,
		Append: func(buf []byte, m sim.Message) ([]byte, error) {
			bits, ok := cast(m)
			if !ok {
				return buf, fmt.Errorf("wire: %s codec got %T", kind, m)
			}
			return binary.AppendUvarint(buf, uint64(bits)), nil
		},
		Decode: func(b []byte) (sim.Message, error) {
			bits, b, err := wire.ReadBits(b)
			if err != nil {
				return nil, err
			}
			if len(b) != 0 {
				return nil, fmt.Errorf("%w: %d trailing bytes in %s message", wire.ErrCorrupt, len(b), kind)
			}
			return make(bits), nil
		},
	}
}

// aggValue builds the codec for an aggregate message that carries a value
// (the convergecast total going up, the final result going down).
func aggValue(kind string) wire.MsgCodec {
	return wire.MsgCodec{
		Kind: kind,
		Append: func(buf []byte, m sim.Message) ([]byte, error) {
			am, ok := m.(*aggMsg)
			if !ok || am.kind != kind {
				return buf, fmt.Errorf("wire: %s codec got %T", kind, m)
			}
			buf = binary.AppendVarint(buf, am.value)
			return binary.AppendUvarint(buf, uint64(am.bits)), nil
		},
		Decode: func(b []byte) (sim.Message, error) {
			value, b, err := wire.ReadVarint(b)
			if err != nil {
				return nil, err
			}
			bits, b, err := wire.ReadBits(b)
			if err != nil {
				return nil, err
			}
			if len(b) != 0 {
				return nil, fmt.Errorf("%w: %d trailing bytes in %s message", wire.ErrCorrupt, len(b), kind)
			}
			return &aggMsg{kind: kind, value: value, bits: bits}, nil
		},
	}
}

func init() {
	wire.Register(wireRumor, wire.MsgCodec{
		Kind: kindRumor,
		Append: func(buf []byte, m sim.Message) ([]byte, error) {
			gm, ok := m.(*gossipMsg)
			if !ok || gm.rumor == 0 {
				return buf, fmt.Errorf("wire: rumor codec got %T", m)
			}
			buf = binary.AppendUvarint(buf, uint64(gm.rumor))
			return binary.AppendUvarint(buf, uint64(gm.bits)), nil
		},
		Decode: func(b []byte) (sim.Message, error) {
			rumor, b, err := wire.ReadUvarint(b)
			if err != nil {
				return nil, err
			}
			if rumor == 0 {
				return nil, fmt.Errorf("%w: rumor message with zero rumor", wire.ErrCorrupt)
			}
			bits, b, err := wire.ReadBits(b)
			if err != nil {
				return nil, err
			}
			if len(b) != 0 {
				return nil, fmt.Errorf("%w: %d trailing bytes in rumor message", wire.ErrCorrupt, len(b))
			}
			return &gossipMsg{rumor: protocol.ID(rumor), bits: bits}, nil
		},
	})
	wire.Register(wirePull, flagOnly(kindPull,
		func(m sim.Message) (int, bool) {
			gm, ok := m.(*gossipMsg)
			if !ok || gm.rumor != 0 {
				return 0, false
			}
			return gm.bits, true
		},
		func(bits int) sim.Message { return &gossipMsg{bits: bits} },
	))
	wire.Register(wireJoin, flagOnly("join",
		func(m sim.Message) (int, bool) {
			jm, ok := m.(*joinMsg)
			if !ok {
				return 0, false
			}
			return jm.bits, true
		},
		func(bits int) sim.Message { return &joinMsg{bits: bits} },
	))
	for _, c := range []struct {
		id   byte
		kind string
	}{{wireAggJoin, kindJoin}, {wireAggNack, kindNack}} {
		kind := c.kind
		wire.Register(c.id, flagOnly(kind,
			func(m sim.Message) (int, bool) {
				am, ok := m.(*aggMsg)
				if !ok || am.kind != kind {
					return 0, false
				}
				return am.bits, true
			},
			func(bits int) sim.Message { return &aggMsg{kind: kind, bits: bits} },
		))
	}
	wire.Register(wireAggUp, aggValue(kindUp))
	wire.Register(wireAggDown, aggValue(kindDown))
}
