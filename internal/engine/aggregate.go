package engine

import (
	"fmt"

	"wcle/internal/graph"
	"wcle/internal/protocol"
	"wcle/internal/sim"
)

// Aggregate message kinds. JOIN grows the spanning tree, NACK declines a
// JOIN (the receiver is already attached elsewhere), AGG convergecasts the
// combined subtree value to the parent, DOWN broadcasts the final result
// back down the tree.
const (
	kindJoin = "agg-join"
	kindNack = "agg-nack"
	kindUp   = "agg-up"
	kindDown = "agg-down"
)

type aggMsg struct {
	kind  string
	value int64
	bits  int
}

func (m *aggMsg) Bits() int    { return m.bits }
func (m *aggMsg) Kind() string { return m.kind }

var _ sim.Message = (*aggMsg)(nil)

// aggNode aggregates a random per-node value over a flooded spanning tree.
// The invariant that keeps it CONGEST-legal and deterministic: every JOIN a
// node sends receives exactly one response on that port — a NACK if the
// receiver is (or simultaneously became) attached elsewhere, or an AGG once
// the receiver, having attached through this port, resolves its whole
// subtree. A node whose pending JOIN count hits zero knows its subtree
// total exactly. Parent choice among same-round JOINs is the lowest port,
// so it is independent of inbox order.
type aggNode struct {
	sizing     protocol.Sizing
	isRoot     bool
	valueRange int // values are uniform in [1, valueRange]
	sum        bool

	started    bool
	value      int64
	joined     bool
	parentPort int
	pending    int // JOINs sent and not yet answered
	childPorts []int
	acc        int64 // combined values of resolved child subtrees
	sentUp     bool
	done       bool
	result     int64
}

func (nd *aggNode) combine(a, b int64) int64 {
	if nd.sum {
		return a + b
	}
	if b > a {
		return b
	}
	return a
}

func (nd *aggNode) valueBits() int {
	return protocol.FlagBits + nd.sizing.IDBits() + nd.sizing.CountBits()
}

func (nd *aggNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	if !nd.started {
		nd.started = true
		nd.value = int64(ctx.Rand().Intn(nd.valueRange)) + 1
		nd.parentPort = -1
		if nd.isRoot {
			nd.joined = true
			for port := 0; port < ctx.Degree(); port++ {
				if err := ctx.Send(port, &aggMsg{kind: kindJoin, bits: protocol.FlagBits}); err != nil {
					return err
				}
				nd.pending++
			}
			if nd.pending == 0 { // isolated root
				nd.done = true
				nd.result = nd.value
			}
			return nil
		}
	}
	var joinPorts []int
	for _, env := range inbox {
		m, ok := env.Payload.(*aggMsg)
		if !ok {
			return fmt.Errorf("engine: aggregate: unexpected message kind %q", env.Payload.Kind())
		}
		switch m.kind {
		case kindJoin:
			joinPorts = append(joinPorts, env.Port)
		case kindNack:
			nd.pending--
		case kindUp:
			nd.acc = nd.combine(nd.acc, m.value)
			nd.childPorts = append(nd.childPorts, env.Port)
			nd.pending--
		case kindDown:
			if !nd.done {
				nd.done = true
				nd.result = m.value
				for _, port := range nd.childPorts {
					if err := ctx.Send(port, &aggMsg{kind: kindDown, value: m.value, bits: nd.valueBits()}); err != nil {
						return err
					}
				}
			}
		default:
			return fmt.Errorf("engine: aggregate: unexpected agg kind %q", m.kind)
		}
	}
	if len(joinPorts) > 0 {
		if nd.joined {
			// Already attached: decline every join.
			for _, port := range joinPorts {
				if err := ctx.Send(port, &aggMsg{kind: kindNack, bits: protocol.FlagBits}); err != nil {
					return err
				}
			}
		} else {
			// Attach through the lowest joining port; decline the rest and
			// grow the tree through every port that has not contacted us.
			nd.joined = true
			nd.parentPort = joinPorts[0]
			offered := make(map[int]bool, len(joinPorts))
			for _, port := range joinPorts {
				if port < nd.parentPort {
					nd.parentPort = port
				}
				offered[port] = true
			}
			for _, port := range joinPorts {
				if port == nd.parentPort {
					continue
				}
				if err := ctx.Send(port, &aggMsg{kind: kindNack, bits: protocol.FlagBits}); err != nil {
					return err
				}
			}
			for port := 0; port < ctx.Degree(); port++ {
				if port == nd.parentPort || offered[port] {
					continue
				}
				if err := ctx.Send(port, &aggMsg{kind: kindJoin, bits: protocol.FlagBits}); err != nil {
					return err
				}
				nd.pending++
			}
		}
	}
	if nd.joined && nd.pending == 0 && !nd.sentUp && !nd.done {
		total := nd.combine(nd.value, nd.acc)
		if nd.isRoot {
			nd.done = true
			nd.result = total
			for _, port := range nd.childPorts {
				if err := ctx.Send(port, &aggMsg{kind: kindDown, value: total, bits: nd.valueBits()}); err != nil {
					return err
				}
			}
		} else {
			nd.sentUp = true
			if err := ctx.Send(nd.parentPort, &aggMsg{kind: kindUp, value: total, bits: nd.valueBits()}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Output is [drawn value, aggregate result (0 if the run never completed
// at this node)].
func (nd *aggNode) Output() []int64 {
	return []int64{nd.value, nd.result}
}

// aggregateProto is the registered tree-aggregation protocol.
type aggregateProto struct {
	root int
	op   string
}

func newAggregate(cfg Config) (Protocol, error) {
	op := cfg.Op
	if op == "" {
		op = "max"
	}
	if op != "max" && op != "sum" {
		return nil, fmt.Errorf("engine: aggregate: unknown op %q (want max or sum)", op)
	}
	return &aggregateProto{root: cfg.Root, op: op}, nil
}

func (p *aggregateProto) Name() string    { return Aggregate }
func (p *aggregateProto) Slots() []string { return []string{"value", "result"} }

func (p *aggregateProto) Init(g *graph.Graph) (Instance, error) {
	if p.root < 0 || p.root >= g.N() {
		return nil, fmt.Errorf("engine: aggregate: root %d out of range", p.root)
	}
	sizing, err := protocol.NewSizing(g.N())
	if err != nil {
		return nil, err
	}
	n := g.N()
	nodes := make([]*aggNode, n)
	for v := range nodes {
		nodes[v] = &aggNode{
			sizing:     sizing,
			isRoot:     v == p.root,
			valueRange: n * n,
			sum:        p.op == "sum",
		}
	}
	return &aggInstance{
		nodes: nodes,
		// Join wave + convergecast + broadcast-down is <= 3 diameters plus
		// per-hop fault-delay slack.
		lim: Limits{MaxMessageBits: sizing.CongestCap(), MaxRounds: 4*n + 64},
	}, nil
}

type aggInstance struct {
	nodes []*aggNode
	lim   Limits
}

func (i *aggInstance) Node(v int) Node { return i.nodes[v] }
func (i *aggInstance) Limits() Limits  { return i.lim }
