package engine_test

import (
	"testing"

	"wcle/internal/engine"
	"wcle/internal/graph"
)

func mustRun(t *testing.T, name string, cfg engine.Config, g *graph.Graph, seed int64) *engine.Result {
	t.Helper()
	p, err := engine.New(name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(p, g, engine.Options{Seed: seed, CountSends: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRegistryHasBuiltinsAndElections(t *testing.T) {
	// The engine's own substrates plus the election backends internal/algo
	// registers at init (imported transitively through algotest here).
	for _, name := range []string{
		engine.PushPull, engine.BFSTree, engine.Aggregate,
		"gilbertrs18", "gilbertrs18-fixed", "floodmax", "kpprt",
	} {
		if !engine.Known(name) {
			t.Fatalf("registry is missing %q (has %v)", name, engine.Names())
		}
	}
}

func TestNewUnknownProtocol(t *testing.T) {
	if _, err := engine.New("no-such-protocol", engine.Config{}); err == nil {
		t.Fatal("unknown protocol should fail")
	}
}

// TestAggregate checks the tree aggregation end to end: every node must
// converge on the true aggregate of the drawn values (column 0 of the
// output matrix holds each node's value, column 1 its result).
func TestAggregate(t *testing.T) {
	graphs := map[string]func() (*graph.Graph, error){
		"clique16": func() (*graph.Graph, error) { return graph.Clique(16, nil) },
		"cycle12":  func() (*graph.Graph, error) { return graph.Cycle(12, nil) },
		"torus4x4": func() (*graph.Graph, error) { return graph.Torus2D(4, 4, nil) },
	}
	for gname, build := range graphs {
		for _, op := range []string{"max", "sum"} {
			t.Run(gname+"/"+op, func(t *testing.T) {
				g, err := build()
				if err != nil {
					t.Fatal(err)
				}
				res := mustRun(t, engine.Aggregate, engine.Config{Op: op}, g, 7)
				var want int64
				for _, o := range res.Outputs {
					if o[0] <= 0 {
						t.Fatalf("node drew non-positive value %d", o[0])
					}
					if op == "sum" {
						want += o[0]
					} else if o[0] > want {
						want = o[0]
					}
				}
				for v, o := range res.Outputs {
					if o[1] != want {
						t.Fatalf("node %d reports %s=%d, want %d", v, op, o[1], want)
					}
				}
			})
		}
	}
}

func TestAggregateRejectsBadOp(t *testing.T) {
	if _, err := engine.New(engine.Aggregate, engine.Config{Op: "median"}); err == nil {
		t.Fatal("unsupported op should fail")
	}
}

// TestBFSTreeDepthsMatchBFS cross-checks the protocol's depths against the
// graph-side BFS distances.
func TestBFSTreeDepthsMatchBFS(t *testing.T) {
	g, err := graph.Hypercube(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, engine.BFSTree, engine.Config{Root: 3}, g, 1)
	dist := graph.BFSDist(g, 3)
	for v, o := range res.Outputs {
		if o[0] != 1 {
			t.Fatalf("node %d did not join", v)
		}
		if int(o[2]) != dist[v] {
			t.Fatalf("node %d depth %d != BFS distance %d", v, o[2], dist[v])
		}
	}
}

// TestPushPullSourceBookkeeping pins the source's output row: informed
// from round zero.
func TestPushPullSourceBookkeeping(t *testing.T) {
	g, err := graph.Clique(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, engine.PushPull, engine.Config{Source: 2, Rumor: 9, Horizon: 40}, g, 5)
	if res.Outputs[2][0] != 1 || res.Outputs[2][1] != 0 {
		t.Fatalf("source row = %v, want [1 0]", res.Outputs[2])
	}
}
