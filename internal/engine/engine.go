// Package engine is the protocol substrate every runtime layer runs on:
// a first-class Protocol contract (per-node state machine + declared
// output vector) over the synchronous CONGEST simulator of internal/sim,
// plus a named registry mirroring internal/algo.
//
// A Protocol is the static description of a distributed algorithm: a name,
// the labels of the per-node decision vector it produces, and an Init that
// instantiates per-node state machines for one graph. The engine runs any
// Protocol on any delivery plane — the in-process sim, the sharded TCP
// cluster runtime (via sim.RemotePlane), and every fault-plane adversary —
// under one determinism contract: the same (protocol, graph, seed) produce
// identical outputs, metrics, and per-node message counts wherever they
// run. Leader election is one protocol here; push-pull broadcast, BFS
// spanning trees, and tree aggregation (this package's built-ins) are
// others, and internal/algo registers the election backends so the whole
// registry is runnable by the cluster, the conformance battery, and the
// experiment harness without protocol-specific plumbing.
package engine

import (
	"errors"
	"fmt"

	"wcle/internal/graph"
	"wcle/internal/obs"
	"wcle/internal/sim"
)

// Node is the per-node state machine of a running protocol instance. Step
// is the sim.Process contract (invoked at any round the node is awake);
// Output is the node's decision vector at quiescence, with one entry per
// Protocol.Slots label. Output must be pure: reading it cannot change
// subsequent behavior.
type Node interface {
	Step(ctx *sim.Context, inbox []sim.Envelope) error
	Output() []int64
}

// Instance is one run's worth of per-node machines plus the run limits the
// protocol derived from the graph. Instances are single-use: Run consumes
// one, and protocol adapters may type-assert it afterwards to read richer
// native state (internal/algo does, to build election outcomes).
type Instance interface {
	// Node returns the machine for node v.
	Node(v int) Node
	// Limits reports the instance's message-size cap and default round cap.
	Limits() Limits
}

// Limits bounds one protocol run.
type Limits struct {
	// MaxMessageBits is the per-message bit cap (the model regime the
	// protocol declared for this graph size).
	MaxMessageBits int
	// MaxRounds is the default round cap; Options.MaxRounds overrides it.
	MaxRounds int
}

// Protocol is one distributed algorithm runnable on every delivery plane.
// Implementations must be cheap, immutable configuration holders, safe for
// concurrent use; all per-run state lives in the Instance.
type Protocol interface {
	// Name is the protocol's registry name.
	Name() string
	// Slots labels the entries of every node's Output vector.
	Slots() []string
	// Init builds the per-node machines for one run on g.
	Init(g *graph.Graph) (Instance, error)
}

// Options are the protocol-independent knobs of one run. They are the
// engine-level superset of algo.Options: every layer (sim, cluster,
// algotest, experiments) maps onto the same sim.Config the same way, so a
// fault plane or a budget means the same thing whichever protocol runs.
type Options struct {
	// Seed drives all randomness of the run deterministically.
	Seed int64
	// Budget, when positive, drops sends beyond the budget (counted in
	// Metrics.Dropped).
	Budget int64
	// MaxRounds overrides the instance's default round cap (0 = default).
	MaxRounds int
	// Concurrent selects the goroutine-per-awake-node engine.
	Concurrent bool
	// LeanMetrics skips per-kind message accounting on the send hot path.
	LeanMetrics bool
	// DebugFrom stamps sender indices on delivered envelopes (debugging
	// only; the conformance battery asserts outcomes never depend on it).
	DebugFrom bool
	// CountSends tallies per-node send counts into Result.PerNodeMessages.
	// Opt-in: the counter taps every send, and bulk in-process runs don't
	// want the overhead. The cluster runtime always enables it — per-node
	// counts are what the keystone invariant is stated in terms of.
	CountSends bool
	// Observer taps every accepted send.
	Observer sim.Observer
	// Fault, when non-nil, is the run's delivery-plane adversary.
	Fault sim.FaultPlane
	// FaultObserver receives every fault event of the run.
	FaultObserver sim.FaultObserver
	// Remote, when non-nil, hosts this run's shard of a distributed run
	// (sim.Config.Remote): only locally hosted nodes step, and only their
	// outputs are collected.
	Remote sim.RemotePlane
	// Tracer, when non-nil, records the run's spans and instants
	// (sim.Config.Tracer). Strictly observational: a traced run is
	// byte-identical to an untraced one at the same seed.
	Tracer *obs.Tracer
}

// Result is the protocol-independent report of one run.
type Result struct {
	// Protocol is the registry name of the protocol that produced this.
	Protocol string `json:"protocol"`
	// Slots labels the entries of each output vector.
	Slots []string `json:"slots,omitempty"`
	// Outputs[v] is node v's decision vector. On a sharded run only
	// locally hosted nodes are filled; the rest stay nil (the cluster
	// merge reassembles the whole).
	Outputs [][]int64 `json:"outputs,omitempty"`
	// PerNodeMessages[v] counts node v's accepted sends; nil unless
	// Options.CountSends was set.
	PerNodeMessages []int64 `json:"per_node_messages,omitempty"`
	// Rounds is the simulated round at which all activity ceased.
	Rounds int `json:"rounds"`
	// Metrics is the sim-level cost accounting of the run.
	Metrics sim.Metrics `json:"metrics"`
}

// TraceSummarizer is an optional Instance extension: at end of run,
// RunInstance emits the returned (name, args) as one instant event in
// category "engine" when a tracer is attached. Implementations must keep
// the summary observational — reading it cannot change protocol behavior.
type TraceSummarizer interface {
	TraceSummary() (name string, args map[string]int64)
}

// SendCounter tallies per-node accepted sends through the observer tap.
// The cluster runtime's per-node message accounting and Result.
// PerNodeMessages both come from here.
type SendCounter struct {
	Counts []int64
}

// OnSend implements sim.Observer.
func (c *SendCounter) OnSend(round, from, fromPort, to, toPort int, m sim.Message) {
	c.Counts[from]++
}

// teeObserver fans one send event out to two observers.
type teeObserver struct {
	a, b sim.Observer
}

func (t teeObserver) OnSend(round, from, fromPort, to, toPort int, m sim.Message) {
	t.a.OnSend(round, from, fromPort, to, toPort, m)
	t.b.OnSend(round, from, fromPort, to, toPort, m)
}

// Run executes one run of p on g: Init plus RunInstance.
func Run(p Protocol, g *graph.Graph, opts Options) (*Result, error) {
	inst, err := p.Init(g)
	if err != nil {
		return nil, err
	}
	return RunInstance(p, g, inst, opts)
}

// RunInstance executes an already-initialized instance of p on g. Callers
// that need the instance's native state afterwards (the election adapters
// of internal/algo) initialize it themselves and keep the reference.
func RunInstance(p Protocol, g *graph.Graph, inst Instance, opts Options) (*Result, error) {
	if g == nil {
		return nil, errors.New("engine: graph is required")
	}
	if inst == nil {
		return nil, fmt.Errorf("engine: %s: nil instance", p.Name())
	}
	lim := inst.Limits()
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = lim.MaxRounds
	}
	n := g.N()
	nodes := make([]Node, n)
	procs := make([]sim.Process, n)
	for v := 0; v < n; v++ {
		nodes[v] = inst.Node(v)
		procs[v] = nodes[v]
	}
	observer := opts.Observer
	var counter *SendCounter
	if opts.CountSends {
		counter = &SendCounter{Counts: make([]int64, n)}
		if observer != nil {
			observer = teeObserver{a: counter, b: observer}
		} else {
			observer = counter
		}
	}
	metrics, err := sim.Run(sim.Config{
		Graph:          g,
		Seed:           opts.Seed,
		MaxRounds:      maxRounds,
		MaxMessageBits: lim.MaxMessageBits,
		MessageBudget:  opts.Budget,
		Concurrent:     opts.Concurrent,
		LeanMetrics:    opts.LeanMetrics,
		DebugFrom:      opts.DebugFrom,
		Observer:       observer,
		Fault:          opts.Fault,
		FaultObserver:  opts.FaultObserver,
		Remote:         opts.Remote,
		Tracer:         opts.Tracer,
	}, procs)
	if err != nil {
		return nil, fmt.Errorf("engine: %s run failed: %w", p.Name(), err)
	}
	// Instances may fold protocol-internal counters into the trace (the
	// committee validator reports its claim-validation traffic).
	if ts, ok := inst.(TraceSummarizer); ok && opts.Tracer.Enabled() {
		name, args := ts.TraceSummary()
		opts.Tracer.Instant("engine", name, -1, args)
	}
	res := &Result{
		Protocol: p.Name(),
		Slots:    p.Slots(),
		Outputs:  make([][]int64, n),
		Rounds:   metrics.FinalRound,
		Metrics:  metrics,
	}
	for v := 0; v < n; v++ {
		if opts.Remote != nil && !opts.Remote.Local(v) {
			continue
		}
		res.Outputs[v] = nodes[v].Output()
	}
	if counter != nil {
		res.PerNodeMessages = counter.Counts
	}
	return res, nil
}
