package engine

// Committee-sampled validation: the Byzantine defense any registered
// protocol can opt into (Config.Defend). WithCommittee wraps a Protocol so
// every logical send of the inner protocol is transmitted as Copies
// repeated claim frames carrying the message's canonical wire encoding,
// and a receiver only delivers a claim once Quorum byte-identical copies
// arrived on the port — an unconfirmed claim is rejected. Because the
// Byzantine plane (sim.Byzantine) mutates each physical frame with fresh
// per-send randomness, an adversary's copies almost never agree: its
// forgeries and equivocations fail the cross-check, while honest traffic
// passes untouched. Repetition models the cheapest message-level
// authentication the anonymous port-numbered model supports — a receiver
// cannot verify identities (there are none), but it can verify
// consistency.
//
// The committee part is the byzcoin-shaped fast path: each node samples a
// committee of ⌈√deg⌉ of its ports from its private randomness. Once a
// payload digest has been quorum-confirmed on Quorum distinct committee
// ports, the node treats the digest as vouched and delivers further
// copies of it on first receipt, without waiting for a per-port quorum —
// broadcast-heavy protocols (floodmax flooding one max id everywhere) pay
// the full repetition cost only until their committee has attested the
// value.
//
// The wrapper is itself a Protocol, so the defense runs on every delivery
// plane — in-process, concurrent, and the sharded cluster — and claims are
// ordinary wire-registered messages (id 14), which is what keeps defended
// cluster runs byte-identical to defended sim runs.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"wcle/internal/graph"
	"wcle/internal/sim"
	"wcle/internal/wire"
)

// wireClaim is the claim frame's wire id. Part of the wire format: never
// reuse.
const wireClaim = 14

// kindClaim is the claim frame's Kind() string.
const kindClaim = "claim"

// claimHeaderBits is the accounting overhead a claim frame adds on top of
// its carried payload bytes (seq, copy index, copy count).
const claimHeaderBits = 64

// CommitteeConfig parameterizes the defense.
type CommitteeConfig struct {
	// Copies is how many physical frames carry each logical send
	// (default 3), at one frame per port per round.
	Copies int
	// Quorum is how many byte-identical copies a receiver needs before it
	// delivers a claim (default 2). Must not exceed Copies.
	Quorum int
}

// withDefaults resolves the zero value.
func (c CommitteeConfig) withDefaults() (CommitteeConfig, error) {
	if c.Copies == 0 {
		c.Copies = 3
	}
	if c.Quorum == 0 {
		c.Quorum = 2
	}
	if c.Copies < 1 || c.Copies > 255 {
		return c, fmt.Errorf("engine: committee copies %d out of range [1,255]", c.Copies)
	}
	if c.Quorum < 1 || c.Quorum > c.Copies {
		return c, fmt.Errorf("engine: committee quorum %d out of range [1,copies=%d]", c.Quorum, c.Copies)
	}
	return c, nil
}

// WithCommittee wraps a protocol in committee-sampled validation. The
// wrapped protocol keeps the inner output contract (same Slots, same
// Output vectors on honest runs) under the name "<inner>+committee".
func WithCommittee(inner Protocol, cfg CommitteeConfig) (Protocol, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &committeeProto{inner: inner, cfg: cfg}, nil
}

type committeeProto struct {
	inner Protocol
	cfg   CommitteeConfig
}

// Name implements Protocol.
func (p *committeeProto) Name() string { return p.inner.Name() + "+committee" }

// Slots implements Protocol: the defense is transparent to the decision
// vector.
func (p *committeeProto) Slots() []string { return p.inner.Slots() }

// Init implements Protocol.
func (p *committeeProto) Init(g *graph.Graph) (Instance, error) {
	inner, err := p.inner.Init(g)
	if err != nil {
		return nil, err
	}
	lim := inner.Limits()
	n := g.N()
	inst := &committeeInstance{
		nodes: make([]*committeeNode, n),
		// A claim's encoded payload can exceed the inner Bits() slightly
		// (wire framing: kind byte, length prefixes, the bits field), and
		// the header rides on top — double-plus-slack bounds both.
		lim: Limits{
			MaxMessageBits: lim.MaxMessageBits*2 + 256,
			// Each logical round costs up to Copies physical rounds per
			// port queue, plus delivery and drain slack.
			MaxRounds: lim.MaxRounds * (p.cfg.Copies + 2),
		},
	}
	for v := 0; v < n; v++ {
		inst.nodes[v] = &committeeNode{
			cfg:   p.cfg,
			inner: inner.Node(v),
			deg:   g.Degree(v),
		}
	}
	return inst, nil
}

type committeeInstance struct {
	nodes []*committeeNode
	lim   Limits
}

// Node implements Instance.
func (i *committeeInstance) Node(v int) Node { return i.nodes[v] }

// Limits implements Instance.
func (i *committeeInstance) Limits() Limits { return i.lim }

// TraceSummary implements TraceSummarizer: the defense's claim-validation
// totals across all nodes, folded into the trace at end of run. Purely
// observational — the counters are written on paths whose control flow is
// unchanged by their existence.
func (i *committeeInstance) TraceSummary() (string, map[string]int64) {
	var delivered, rejected, unconfirmed int64
	for _, n := range i.nodes {
		delivered += n.delivered
		rejected += n.rejected
		for _, b := range n.recv {
			if !b.done {
				unconfirmed++
			}
		}
	}
	return "committee", map[string]int64{
		"delivered":   delivered,
		"rejected":    rejected,
		"unconfirmed": unconfirmed,
	}
}

// claimMsg is the physical frame of the defense: one of Total copies of a
// logical send, carrying the inner message's canonical wire encoding.
type claimMsg struct {
	Seq   uint64 // sender-local logical send counter on this port
	Idx   uint8  // copy index in [0, Total)
	Total uint8  // copies the sender emits for this Seq
	Body  []byte // wire.AppendMessage encoding of the inner message
}

// Bits implements sim.Message.
func (c *claimMsg) Bits() int { return claimHeaderBits + 8*len(c.Body) }

// Kind implements sim.Message.
func (c *claimMsg) Kind() string { return kindClaim }

func init() {
	wire.Register(wireClaim, wire.MsgCodec{
		Kind: kindClaim,
		Append: func(buf []byte, m sim.Message) ([]byte, error) {
			c, ok := m.(*claimMsg)
			if !ok {
				return buf, fmt.Errorf("wire: claim codec got %T", m)
			}
			buf = binary.AppendUvarint(buf, c.Seq)
			buf = append(buf, c.Idx, c.Total)
			buf = binary.AppendUvarint(buf, uint64(len(c.Body)))
			return append(buf, c.Body...), nil
		},
		Decode: func(b []byte) (sim.Message, error) {
			seq, b, err := wire.ReadUvarint(b)
			if err != nil {
				return nil, err
			}
			if len(b) < 2 {
				return nil, fmt.Errorf("%w: truncated claim header", wire.ErrCorrupt)
			}
			idx, total := b[0], b[1]
			body, b, err := wire.ReadBytes(b[2:])
			if err != nil {
				return nil, err
			}
			if len(b) != 0 {
				return nil, fmt.Errorf("%w: %d trailing bytes in claim message", wire.ErrCorrupt, len(b))
			}
			// The body stays opaque here: it is cross-checked bytes-first
			// and only decoded as an inner message once a quorum confirms
			// it. Copy it out of the frame buffer.
			return &claimMsg{Seq: seq, Idx: idx, Total: total, Body: append([]byte(nil), body...)}, nil
		},
	})
}

// digest is the payload fingerprint claims are cross-checked by.
func digestOf(body []byte) uint64 {
	h := fnv.New64a()
	h.Write(body)
	return h.Sum64()
}

// portSeq keys one logical send at the receiver.
type portSeq struct {
	port int
	seq  uint64
}

// claimBucket accumulates the copies of one logical send.
type claimBucket struct {
	counts map[uint64]int    // digest -> copies seen
	bodies map[uint64][]byte // digest -> first body seen
	from   int               // sender stamp of the first copy (DebugFrom)
	done   bool              // delivered or rejected for good
}

// delivery is a confirmed claim waiting to enter the inner inbox.
type delivery struct {
	port int
	seq  uint64
	from int
	msg  sim.Message
}

// committeeNode wraps one inner state machine.
type committeeNode struct {
	cfg   CommitteeConfig
	inner Node
	deg   int

	started   bool
	firstStep bool
	committee map[int]struct{} // sampled validation ports

	seq  []uint64        // next outgoing logical seq per port
	outq [][]sim.Message // pending physical frames per port, FIFO

	innerWakes []int // pending inner wake rounds, ascending

	recv    map[portSeq]*claimBucket
	vouched map[uint64]map[int]struct{} // digest -> confirming committee ports
	ready   []delivery                  // confirmed, not yet handed to inner

	// Observational validation counters (see TraceSummary).
	delivered int64 // claims confirmed and handed to the inner protocol
	rejected  int64 // confirmed claims whose body failed decode, and bad frames
}

// start samples the committee on first step. Drawing from the node's
// private stream keeps the sample deterministic per (seed, node) on every
// plane.
func (n *committeeNode) start(ctx *sim.Context) {
	n.started = true
	n.firstStep = true
	n.seq = make([]uint64, n.deg)
	n.outq = make([][]sim.Message, n.deg)
	n.recv = make(map[portSeq]*claimBucket)
	n.vouched = make(map[uint64]map[int]struct{})
	k := int(math.Ceil(math.Sqrt(float64(n.deg))))
	if k < n.cfg.Quorum {
		k = n.cfg.Quorum
	}
	if k > n.deg {
		k = n.deg
	}
	n.committee = make(map[int]struct{}, k)
	for _, p := range ctx.Rand().Perm(n.deg)[:k] {
		n.committee[p] = struct{}{}
	}
}

// ingest files one received frame and confirms its claim when the quorum
// (or the vouch fast path) is met. Frames that are not claims, claim
// headers inconsistent with the run's configuration, and confirmed bodies
// that no longer decode are rejected — exactly the unconfirmed-claim
// rejection the defense exists for.
func (n *committeeNode) ingest(env sim.Envelope) {
	c, ok := env.Payload.(*claimMsg)
	if !ok || int(c.Total) != n.cfg.Copies || int(c.Idx) >= n.cfg.Copies {
		n.rejected++
		return
	}
	key := portSeq{port: env.Port, seq: c.Seq}
	b := n.recv[key]
	if b == nil {
		b = &claimBucket{
			counts: make(map[uint64]int, 1),
			bodies: make(map[uint64][]byte, 1),
			from:   env.From,
		}
		n.recv[key] = b
	}
	d := digestOf(c.Body)
	b.counts[d]++
	if _, seen := b.bodies[d]; !seen {
		b.bodies[d] = c.Body
	}
	confirmed := b.counts[d] >= n.cfg.Quorum
	if confirmed {
		// Quorum on a committee port attests the digest; Quorum committee
		// attestations vouch it globally for this node.
		if _, on := n.committee[env.Port]; on {
			set := n.vouched[d]
			if set == nil {
				set = make(map[int]struct{}, n.cfg.Quorum)
				n.vouched[d] = set
			}
			set[env.Port] = struct{}{}
		}
	} else {
		// Vouch fast path: a committee-attested digest delivers on first
		// receipt.
		confirmed = len(n.vouched[d]) >= n.cfg.Quorum
	}
	if !confirmed || b.done {
		return
	}
	b.done = true
	msg, err := wire.DecodeMessage(c.Body)
	if err != nil {
		n.rejected++
		return // a quorum of identical garbage still fails total decode
	}
	n.delivered++
	n.ready = append(n.ready, delivery{port: env.Port, seq: c.Seq, from: b.from, msg: msg})
}

// collect pops at most one confirmed delivery per port (lowest seq first),
// preserving the sim's one-envelope-per-port-per-round inbox shape for the
// inner protocol.
func (n *committeeNode) collect() []sim.Envelope {
	if len(n.ready) == 0 {
		return nil
	}
	sort.Slice(n.ready, func(i, j int) bool {
		if n.ready[i].port != n.ready[j].port {
			return n.ready[i].port < n.ready[j].port
		}
		return n.ready[i].seq < n.ready[j].seq
	})
	var inbox []sim.Envelope
	var rest []delivery
	lastPort := -1
	for _, del := range n.ready {
		if del.port == lastPort {
			rest = append(rest, del)
			continue
		}
		lastPort = del.port
		inbox = append(inbox, sim.Envelope{Port: del.port, From: del.from, Payload: del.msg})
	}
	n.ready = rest
	return inbox
}

// popInnerWakes reports whether an inner wake was due at round and drops
// every due entry.
func (n *committeeNode) popInnerWakes(round int) bool {
	due := false
	keep := n.innerWakes[:0]
	for _, w := range n.innerWakes {
		if w <= round {
			due = true
			continue
		}
		keep = append(keep, w)
	}
	n.innerWakes = keep
	return due
}

// Step implements sim.Process (via Node).
func (n *committeeNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	if !n.started {
		n.start(ctx)
	}
	for _, env := range inbox {
		n.ingest(env)
	}
	innerInbox := n.collect()
	round := ctx.Round()
	if n.popInnerWakes(round) || len(innerInbox) > 0 || n.firstStep {
		n.firstStep = false
		restore := ctx.Capture(
			func(port int, m sim.Message) error { return n.captureSend(port, m) },
			func(r int) { n.innerWakes = append(n.innerWakes, r) },
		)
		err := n.inner.Step(ctx, innerInbox)
		restore()
		if err != nil {
			return err
		}
	}
	pendingOut := false
	for port, q := range n.outq {
		if len(q) == 0 {
			continue
		}
		if err := ctx.Send(port, q[0]); err != nil {
			return err
		}
		q[0] = nil
		n.outq[port] = q[1:]
		if len(n.outq[port]) > 0 {
			pendingOut = true
		}
	}
	if pendingOut || len(n.ready) > 0 {
		ctx.WakeAt(round + 1)
	}
	if len(n.innerWakes) > 0 {
		min := n.innerWakes[0]
		for _, w := range n.innerWakes[1:] {
			if w < min {
				min = w
			}
		}
		ctx.WakeAt(min)
	}
	return nil
}

// captureSend turns one logical inner send into Copies queued claim
// frames. Copies share the Body slice (claims never mutate it); each is a
// distinct Message value, so an active adversary forges each physical
// frame independently — which is exactly what the receive quorum catches.
func (n *committeeNode) captureSend(port int, m sim.Message) error {
	body, err := wire.AppendMessage(nil, m)
	if err != nil {
		return fmt.Errorf("engine: committee defense needs a wire codec for %q: %w", m.Kind(), err)
	}
	s := n.seq[port]
	n.seq[port]++
	for i := 0; i < n.cfg.Copies; i++ {
		n.outq[port] = append(n.outq[port], &claimMsg{
			Seq:   s,
			Idx:   uint8(i),
			Total: uint8(n.cfg.Copies),
			Body:  body,
		})
	}
	return nil
}

// Output implements Node.
func (n *committeeNode) Output() []int64 { return n.inner.Output() }
