package engine

import (
	"fmt"
	"sort"

	"wcle/internal/graph"
	"wcle/internal/protocol"
	"wcle/internal/sim"
)

// gossipKind labels gossip messages.
const (
	kindRumor = "rumor"
	kindPull  = "pull"
)

type gossipMsg struct {
	rumor protocol.ID // 0 for a pull request
	bits  int
}

func (m *gossipMsg) Bits() int { return m.bits }
func (m *gossipMsg) Kind() string {
	if m.rumor != 0 {
		return kindRumor
	}
	return kindPull
}

var _ sim.Message = (*gossipMsg)(nil)

// gossipNode runs synchronous push-pull: every round each node contacts one
// uniformly random neighbor — informed nodes push the rumor, uninformed
// nodes send a pull request (answered with the rumor in the next round).
// In push-only mode uninformed nodes stay silent.
type gossipNode struct {
	sizing   protocol.Sizing
	horizon  int
	pushOnly bool

	informed   bool
	rumor      protocol.ID
	informedAt int
	replyPorts map[int]struct{}
}

func (nd *gossipNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	round := ctx.Round()
	for _, env := range inbox {
		m, ok := env.Payload.(*gossipMsg)
		if !ok {
			return fmt.Errorf("engine: pushpull: unexpected message kind %q", env.Payload.Kind())
		}
		if m.rumor != 0 {
			if !nd.informed {
				nd.informed = true
				nd.rumor = m.rumor
				nd.informedAt = round
			}
		} else if nd.informed {
			if nd.replyPorts == nil {
				nd.replyPorts = make(map[int]struct{})
			}
			nd.replyPorts[env.Port] = struct{}{}
		}
	}
	if round >= nd.horizon {
		return nil
	}
	sent := make(map[int]struct{}, 2)
	if nd.informed {
		// Answer pending pull requests, in port order: map-order iteration
		// would reorder sends between replays, and fault planes are
		// sequence-sensitive (a delay lands on the k-th send of a round).
		ports := make([]int, 0, len(nd.replyPorts))
		for port := range nd.replyPorts {
			ports = append(ports, port)
		}
		sort.Ints(ports)
		for _, port := range ports {
			if _, dup := sent[port]; dup {
				continue
			}
			sent[port] = struct{}{}
			if err := ctx.Send(port, nd.rumorMsg()); err != nil {
				return err
			}
		}
		nd.replyPorts = nil
		// Push to one random neighbor.
		port := ctx.Rand().Intn(ctx.Degree())
		if _, dup := sent[port]; !dup {
			if err := ctx.Send(port, nd.rumorMsg()); err != nil {
				return err
			}
		}
	} else if !nd.pushOnly {
		port := ctx.Rand().Intn(ctx.Degree())
		msg := &gossipMsg{bits: protocol.FlagBits}
		if err := ctx.Send(port, msg); err != nil {
			return err
		}
	}
	ctx.WakeAt(round + 1)
	return nil
}

func (nd *gossipNode) rumorMsg() *gossipMsg {
	return &gossipMsg{rumor: nd.rumor, bits: nd.sizing.IDBits() + protocol.FlagBits}
}

// Output is [informed(0/1), round the rumor arrived (0 for the source,
// meaningless when uninformed), the rumor id actually held]. The rumor
// slot is the integrity witness: under an active adversary a node can be
// "informed" by a forged rumor, and only the held id tells the two apart.
func (nd *gossipNode) Output() []int64 {
	informed := int64(0)
	if nd.informed {
		informed = 1
	}
	return []int64{informed, int64(nd.informedAt), int64(nd.rumor)}
}

// pushPullProto is the registered push-pull rumor-spreading protocol.
type pushPullProto struct {
	source   int
	rumor    protocol.ID
	horizon  int
	pushOnly bool
}

func newPushPull(cfg Config) (Protocol, error) {
	rumor := protocol.ID(cfg.Rumor)
	if rumor == 0 {
		rumor = 1
	}
	return &pushPullProto{
		source:   cfg.Source,
		rumor:    rumor,
		horizon:  cfg.Horizon,
		pushOnly: cfg.PushOnly,
	}, nil
}

func (p *pushPullProto) Name() string    { return PushPull }
func (p *pushPullProto) Slots() []string { return []string{"informed", "informed_at", "rumor"} }

func (p *pushPullProto) Init(g *graph.Graph) (Instance, error) {
	if p.source < 0 || p.source >= g.N() {
		return nil, fmt.Errorf("engine: pushpull: source %d out of range", p.source)
	}
	if p.rumor == 0 {
		return nil, fmt.Errorf("engine: pushpull: rumor id must be nonzero")
	}
	horizon := p.horizon
	if horizon <= 0 {
		horizon = g.N()
	}
	sizing, err := protocol.NewSizing(g.N())
	if err != nil {
		return nil, err
	}
	nodes := make([]*gossipNode, g.N())
	for v := range nodes {
		nodes[v] = &gossipNode{sizing: sizing, horizon: horizon, pushOnly: p.pushOnly}
	}
	nodes[p.source].informed = true
	nodes[p.source].rumor = p.rumor
	return &gossipInstance{
		nodes: nodes,
		lim:   Limits{MaxMessageBits: sizing.CongestCap(), MaxRounds: horizon + 8},
	}, nil
}

type gossipInstance struct {
	nodes []*gossipNode
	lim   Limits
}

func (i *gossipInstance) Node(v int) Node { return i.nodes[v] }
func (i *gossipInstance) Limits() Limits  { return i.lim }
