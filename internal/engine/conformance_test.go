package engine_test

// Every protocol in the engine registry — the dissemination substrates and
// the election backends internal/algo registers — goes through the
// protocol-generic conformance battery: well-formed output matrices,
// seed-replay determinism, DebugFrom anonymity, conservation on the
// perfect plane, and fault-plane accounting. This is the in-process half
// of the generalized keystone contract; internal/cluster runs the same
// battery (plus cross-plane parity) over loopback TCP.

import (
	"testing"

	"wcle/internal/algo/algotest"
	"wcle/internal/engine"
	"wcle/internal/graph"
)

// protoCfg supplies per-graph regime knobs, mirroring the election
// conformance suite: poorly connected graphs legitimately need wider
// sampling parameters, and the fixed-walk baseline needs a walk long
// enough to mix on them.
func protoCfg(protocol string) func(graphName string, g *graph.Graph) engine.Config {
	return func(graphName string, g *graph.Graph) engine.Config {
		var cfg engine.Config
		switch protocol {
		case "gilbertrs18":
			switch graphName {
			case "cycle12":
				cfg.C1 = 3
				cfg.MaxWalkLen = 1024
			case "torus4x4":
				cfg.MaxWalkLen = 1024
			}
		case "gilbertrs18-fixed":
			switch graphName {
			case "cycle12", "torus4x4":
				cfg.FixedTu = 2048
			}
		case "kpprt":
			switch graphName {
			case "cycle12":
				cfg.Hops, cfg.Window = 300, 2000
			case "torus4x4":
				cfg.Hops = 100
			}
		}
		return cfg
	}
}

func TestProtocolConformance(t *testing.T) {
	for _, name := range engine.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			algotest.ProtocolConformance(t, name, protoCfg(name), []int64{0, 1})
		})
	}
}

func TestProtocolFaultConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("full fault battery across every registered protocol; skipped in -short mode")
	}
	for _, name := range engine.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			algotest.ProtocolFaultConformanceOn(t, name, protoCfg(name), []int64{0, 1},
				algotest.InProcessProtocolRunner)
		})
	}
}
