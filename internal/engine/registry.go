package engine

import (
	"fmt"
	"sort"
	"sync"
)

// Built-in substrate protocol names. internal/algo registers the election
// backends under their algo registry names on top of these.
const (
	// PushPull is push-pull rumor spreading (Karp et al., the Corollary 14
	// dissemination substrate).
	PushPull = "pushpull"
	// BFSTree is flooding BFS spanning-tree construction (the Corollary 27
	// comparator).
	BFSTree = "bfstree"
	// Aggregate is spanning-tree max/sum aggregation: BFS joins, a
	// convergecast of the combined value, and a broadcast of the result.
	Aggregate = "aggregate"
)

// Config is the flat, wire-friendly parameter set a registry builder
// consumes. One struct covers every registered protocol (each reads the
// fields it understands and ignores the rest) so the cluster JobSpec, the
// HTTP API, and the CLI can all carry protocol parameters without
// per-protocol plumbing. The zero value means "defaults" for every
// protocol.
type Config struct {
	// Source is the originating node of a dissemination protocol
	// (pushpull rumor source).
	Source int `json:"source,omitempty"`
	// Rumor is the nonzero value pushpull spreads (default 1).
	Rumor uint64 `json:"rumor,omitempty"`
	// Horizon caps rumor-spreading rounds (pushpull; also the floodmax
	// election horizon). 0 = protocol default.
	Horizon int `json:"horizon,omitempty"`
	// PushOnly disables the pull half of pushpull.
	PushOnly bool `json:"push_only,omitempty"`
	// Root is the tree root of bfstree and aggregate.
	Root int `json:"root,omitempty"`
	// Op selects the aggregate combiner: "max" (default) or "sum".
	Op string `json:"op,omitempty"`

	// Election knobs, consumed by the backends internal/algo registers.
	Resend     int     `json:"resend,omitempty"`
	AssumedN   int     `json:"assumed_n,omitempty"`
	C1         float64 `json:"c1,omitempty"`
	C2         float64 `json:"c2,omitempty"`
	MaxWalkLen int     `json:"max_walk_len,omitempty"`
	// FixedTu forces the known-mixing-time single-phase baseline's walk
	// length (gilbertrs18-fixed; 0 derives 4n from the graph).
	FixedTu int `json:"fixed_tu,omitempty"`
	Hops    int `json:"hops,omitempty"`
	Window  int `json:"window,omitempty"`

	// Defend wraps the built protocol in committee-sampled validation
	// (see WithCommittee): every logical send travels as repeated claim
	// frames and receivers reject claims without a byte-identical quorum —
	// the Byzantine defense, available to every registered protocol.
	Defend bool `json:"defend,omitempty"`
	// DefendCopies and DefendQuorum tune the defense (0 = defaults: 3
	// copies, quorum 2).
	DefendCopies int `json:"defend_copies,omitempty"`
	DefendQuorum int `json:"defend_quorum,omitempty"`
}

// Builder constructs a configured protocol.
type Builder func(cfg Config) (Protocol, error)

var (
	regMu    sync.RWMutex
	builders = map[string]Builder{
		PushPull:  newPushPull,
		BFSTree:   newBFSTree,
		Aggregate: newAggregate,
	}
)

// Register adds (or replaces) a named protocol builder. internal/algo
// registers the election backends from its init.
func Register(name string, b Builder) {
	if name == "" || b == nil {
		panic("engine: Register requires a name and a builder")
	}
	regMu.Lock()
	defer regMu.Unlock()
	builders[name] = b
}

// Known reports whether name is registered.
func Known(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := builders[name]
	return ok
}

// Names lists the registered protocols, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(builders))
	for name := range builders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// New builds the named protocol with cfg, wrapping it in the committee
// defense when cfg.Defend is set — so every caller that carries a Config
// (the cluster JobSpec, electd, the CLI) gets the defense without
// per-protocol plumbing.
func New(name string, cfg Config) (Protocol, error) {
	regMu.RLock()
	b, ok := builders[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown protocol %q (known: %v)", name, Names())
	}
	p, err := b(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Defend {
		return WithCommittee(p, CommitteeConfig{Copies: cfg.DefendCopies, Quorum: cfg.DefendQuorum})
	}
	return p, nil
}
