package engine_test

import (
	"reflect"
	"testing"

	"wcle/internal/engine"
	"wcle/internal/graph"
	"wcle/internal/sim"
)

// defended builds a committee-wrapped protocol through the registry path
// (engine.New with Config.Defend), the same path the cluster JobSpec and
// electd take.
func defended(t *testing.T, name string, cfg engine.Config) engine.Protocol {
	t.Helper()
	cfg.Defend = true
	p, err := engine.New(name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCommitteeNameAndSlots(t *testing.T) {
	p := defended(t, engine.PushPull, engine.Config{})
	if p.Name() != "pushpull+committee" {
		t.Fatalf("wrapped name = %q", p.Name())
	}
	inner, err := engine.New(engine.PushPull, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Slots(), inner.Slots()) {
		t.Fatalf("defense changed the output contract: %v vs %v", p.Slots(), inner.Slots())
	}
}

func TestCommitteeConfigValidated(t *testing.T) {
	if _, err := engine.New(engine.PushPull, engine.Config{
		Defend: true, DefendCopies: 2, DefendQuorum: 3,
	}); err == nil {
		t.Fatal("quorum > copies should fail")
	}
	if _, err := engine.WithCommittee(nil, engine.CommitteeConfig{Copies: 300}); err == nil {
		t.Fatal("copies > 255 should fail (the copy count crosses the wire as one byte)")
	}
}

// TestCommitteeTransparentWithoutAdversary: on a fault-free plane the
// defense must not change what the protocol computes — every node still
// gets informed, slots are the inner slots — only the message bill and
// the round count grow.
func TestCommitteeTransparentWithoutAdversary(t *testing.T) {
	g, err := graph.Clique(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engine.Config{Source: 3, Rumor: 9, Horizon: 300}
	res, err := engine.Run(defended(t, engine.PushPull, cfg), g, engine.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v, o := range res.Outputs {
		if o[0] != 1 {
			t.Fatalf("node %d not informed under the defense on a perfect plane", v)
		}
	}
}

// TestCommitteeBFSTreeJoinsEveryone: a structural protocol (bfstree)
// survives the wrapper too — the captured-send path must preserve join
// semantics, not just gossip.
func TestCommitteeBFSTreeJoinsEveryone(t *testing.T) {
	g, err := graph.Torus2D(4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(defended(t, engine.BFSTree, engine.Config{Root: 5}), g, engine.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v, o := range res.Outputs {
		if o[0] != 1 {
			t.Fatalf("node %d did not join the defended BFS tree", v)
		}
	}
}

// TestCommitteeDefendsAgainstByzantine is the defense's reason to exist:
// under an active adversary mutating every adversarial send, a defended
// pushpull from an honest source still informs every honest node — the
// quorum cross-check rejects the forgeries (adversarial copies almost
// never agree byte-for-byte) while honest repetition passes.
func TestCommitteeDefendsAgainstByzantine(t *testing.T) {
	g, err := graph.Clique(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	adversaries := []int{1, 6, 11}
	byz := &sim.Byzantine{Nodes: adversaries}
	cfg := engine.Config{Source: 3, Rumor: 9, Horizon: 400}
	res, err := engine.Run(defended(t, engine.PushPull, cfg), g, engine.Options{Seed: 8, Fault: byz})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Mutated == 0 {
		t.Fatal("adversary mutated nothing; the run defended against no attack")
	}
	bad := map[int]bool{}
	for _, v := range adversaries {
		bad[v] = true
	}
	for v, o := range res.Outputs {
		if !bad[v] && o[0] != 1 {
			t.Fatalf("honest node %d not informed under the defense (outputs %v)", v, o)
		}
	}
}

// TestCommitteeDeterministicAcrossEngines: a defended Byzantine run is
// still one deterministic function of the seed, identical under the
// sequential and the concurrent engine — the contract every plane in this
// repo is held to.
func TestCommitteeDeterministicAcrossEngines(t *testing.T) {
	g, err := graph.Torus2D(4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	run := func(concurrent bool) *engine.Result {
		t.Helper()
		res, err := engine.Run(
			defended(t, engine.PushPull, engine.Config{Source: 0, Rumor: 5, Horizon: 400}),
			g,
			engine.Options{
				Seed:       11,
				Concurrent: concurrent,
				CountSends: true,
				Fault:      &sim.Byzantine{Frac: 0.2},
			})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, rerun, conc := run(false), run(false), run(true)
	if !reflect.DeepEqual(seq, rerun) {
		t.Fatalf("defended byzantine run not replay-deterministic:\n%+v\n%+v", seq, rerun)
	}
	if !reflect.DeepEqual(seq, conc) {
		t.Fatalf("sequential and concurrent engines diverge under the defense:\n%+v\n%+v", seq, conc)
	}
}

// TestUndefendedPushPullStillRuns pins the contrast the E23 tournament
// renders: without the defense the same adversary's forged rumors reach
// protocol logic (mutations deliver), and the run still terminates
// deterministically — corruption, not crash.
func TestUndefendedPushPullStillRuns(t *testing.T) {
	g, err := graph.Clique(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := engine.New(engine.PushPull, engine.Config{Source: 3, Rumor: 9, Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Run(p, g, engine.Options{Seed: 8, Fault: &sim.Byzantine{Frac: 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Mutated == 0 {
		t.Fatal("expected mutations on the undefended run")
	}
	res2, err := engine.Run(p, g, engine.Options{Seed: 8, Fault: &sim.Byzantine{Frac: 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Fatal("undefended byzantine run not replay-deterministic")
	}
}
