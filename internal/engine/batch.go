package engine

import (
	"errors"
	"time"

	"wcle/internal/graph"
	"wcle/internal/sim"
)

// BatchOptions parameterizes RunMany: many independent runs of one
// protocol on one graph, sharded across a worker pool. It mirrors
// algo.BatchOptions — including the seed-derivation contract (trial i runs
// at sim.DeriveSeed(Base.Seed, i)) — so switching a batch between
// protocols never changes which seeds its trials see.
type BatchOptions struct {
	// Base is the per-run option template; Base.Seed is the master seed.
	// Base.Concurrent is ignored: batch runs always use the sequential
	// engine (one goroutine per shard; see sim.MultiRunner).
	Base Options
	// Trials is the number of runs.
	Trials int
	// Workers is the shard count (0 = runtime.NumCPU()).
	Workers int
	// NewFault, when non-nil, builds trial i's fault plane. Faulty batches
	// must use it: fault planes are stateful per run, so a single
	// Base.Fault instance would be shared across concurrent trials and
	// RunMany rejects it.
	NewFault func(trial int) sim.FaultPlane
	// CollectTrials retains the per-trial vectors in the result.
	CollectTrials bool
}

// BatchResult aggregates a protocol RunMany batch.
type BatchResult struct {
	// Protocol is the registry name of the protocol that ran the batch.
	Protocol string
	Trials   int

	// Totals across trials.
	Messages   int64
	Bits       int64
	FaultDrops int64
	Delayed    int64
	Rounds     int64

	// Wall-clock of the whole batch and the resulting throughput.
	Elapsed    time.Duration
	RunsPerSec float64

	// Shards is the per-shard aggregation from the worker pool.
	Shards []sim.ShardStats

	// Per-trial vectors, indexed by trial; populated only when
	// BatchOptions.CollectTrials is set.
	TrialRounds   []int32
	TrialMessages []int64
}

// RunMany executes opts.Trials independent runs of p on g across a sharded
// worker pool. Everything except the wall-clock fields of the result is
// deterministic in (p, g, opts.Base.Seed, opts.Trials).
func RunMany(p Protocol, g *graph.Graph, opts BatchOptions) (*BatchResult, error) {
	if opts.Trials <= 0 {
		return &BatchResult{Protocol: p.Name()}, nil
	}
	if opts.Base.Fault != nil && opts.NewFault == nil {
		// Fault planes are stateful per run; one instance shared across
		// shard goroutines would race and break batch determinism.
		return nil, errors.New("engine: BatchOptions.Base.Fault would be shared across concurrent trials; supply NewFault instead")
	}
	rounds := make([]int32, opts.Trials)
	mr := &sim.MultiRunner{Workers: opts.Workers}
	start := time.Now()
	metrics, shards, err := mr.RunBatch(opts.Trials, func(i int) (sim.Metrics, error) {
		o := opts.Base
		o.Seed = sim.DeriveSeed(opts.Base.Seed, uint64(i))
		o.Concurrent = false
		if opts.NewFault != nil {
			o.Fault = opts.NewFault(i)
		}
		res, err := Run(p, g, o)
		if err != nil {
			return sim.Metrics{}, err
		}
		rounds[i] = int32(res.Rounds)
		return res.Metrics, nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	out := &BatchResult{
		Protocol: p.Name(),
		Trials:   opts.Trials,
		Elapsed:  elapsed,
		Shards:   shards,
	}
	if s := elapsed.Seconds(); s > 0 {
		out.RunsPerSec = float64(opts.Trials) / s
	}
	for i, m := range metrics {
		out.Messages += m.Messages
		out.Bits += m.Bits
		out.FaultDrops += m.FaultDrops
		out.Delayed += m.Delayed
		out.Rounds += int64(rounds[i])
	}
	if opts.CollectTrials {
		out.TrialRounds = rounds
		out.TrialMessages = make([]int64, opts.Trials)
		for i, m := range metrics {
			out.TrialMessages[i] = m.Messages
		}
	}
	return out, nil
}
