package algo

import (
	"fmt"
	"math"
	"math/bits"

	"wcle/internal/engine"
	"wcle/internal/graph"
	"wcle/internal/protocol"
	"wcle/internal/sim"
)

// This file implements the kpprt backend: a KPPRT-style sublinear
// randomized election (Kutten, Pandurangan, Peleg, Robinson, Trehan,
// "Sublinear Bounds for Randomized Leader Election") adapted to the
// anonymous port-numbered CONGEST model of internal/sim.
//
// The protocol in three moves:
//
//  1. Candidate sampling. Every node independently becomes a candidate
//     with probability min(1, C1 ln n / n) and draws a random id from
//     [1, n^4] — Theta(log n) candidates w.h.p., at least one with
//     probability 1 - n^-C1.
//  2. Referee committees. Each candidate announces its id to a committee
//     of r = ceil(C2 sqrt(n ln n)) referees. On a complete graph the
//     committee is r distinct uniformly random neighbors (one hop, the
//     KPPRT setting). On other graphs referees are sampled by lazy random
//     walks of a fixed length (Hops rounds), which land near-uniformly
//     once Hops reaches the graph's mixing time — the well-connected
//     regime; the diameter-two scenario of Chatterjee–Pandurangan–
//     Robinson corresponds to two-hop sampling. Announcements record
//     their return ports so replies can retrace the path.
//  3. Referee verdicts. At the decision round a referee answers every
//     recorded announcement: "win" iff the announced id equals the
//     maximum it has seen, "lose" otherwise (late announcements are
//     answered "lose" immediately). A candidate elects itself iff every
//     one of its r announcements came back "win".
//
// Why exactly one leader: any two candidates' committees share a referee
// w.h.p. (r^2/n = C2^2 ln n, the birthday bound), and a shared referee
// answers "win" to at most one of them — so at most one candidate can
// collect all wins, and the globally maximal candidate always does (no
// referee ever sees a larger id). Message complexity is
// Theta(log n · sqrt(n log n)) = O(sqrt(n) log^{3/2} n) announcements
// plus as many replies on the complete graph; walk-sampled referees
// multiply this by the walk length.
//
// Model notes. Requiring all r replies makes the election fail-safe under
// message loss: a dropped verdict suppresses a candidate, it never
// promotes one. Walk-sampled referees are stationary-distribution
// (degree-proportional) samples, exactly like the paper's walk machinery;
// on regular graphs that is uniform. Multi-hop announcements carry their
// return path, so their size is O(log n) only while Hops is O(1) — the
// honest accounting for the general-graph mode sets the per-message cap
// to CongestCap + Hops*ceil(log2 n) bits.

// SublinearConfig parameterizes the kpprt backend. The zero value is the
// defaults.
type SublinearConfig struct {
	// C1 scales the candidate probability min(1, C1 ln n / n). 0 means 2
	// (zero candidates with probability ~n^-2).
	C1 float64
	// C2 scales the committee size ceil(C2 sqrt(n ln n)). 0 means 2.
	C2 float64
	// Hops is the referee-sampling lazy-walk length in rounds. 0 means
	// auto: direct one-hop sampling on complete graphs, 8*ceil(log2 n)
	// (the expander/mixing regime) otherwise. Poorly connected graphs
	// need an explicit Hops of order their mixing time.
	Hops int
	// Window is the referees' decision round. 0 means auto: Hops plus a
	// launch-and-congestion slack derived from the committee size.
	Window int
}

// constants resolves the sampling constants, applying the defaults.
func (c SublinearConfig) constants() (c1, c2 float64) {
	c1, c2 = c.C1, c.C2
	if c1 <= 0 {
		c1 = 2
	}
	if c2 <= 0 {
		c2 = 2
	}
	return c1, c2
}

// Message kinds of the kpprt backend.
const (
	kindAnnounce = "kpprt-announce"
	kindReply    = "kpprt-reply"
)

// kAnnounce is a candidate announcement in flight: the candidate's id,
// the remaining lazy-walk rounds, and the return ports recorded so far
// (most recent last). Forwarding reuses the object: after delivery only
// the receiving node holds a reference.
type kAnnounce struct {
	id     protocol.ID
	rounds int // lazy-walk rounds remaining
	path   []int32
	bits   int
}

func (m *kAnnounce) Bits() int    { return m.bits }
func (m *kAnnounce) Kind() string { return kindAnnounce }

// kReply is a referee verdict retracing an announcement's return path.
type kReply struct {
	win  bool
	path []int32
	bits int
}

func (m *kReply) Bits() int    { return m.bits }
func (m *kReply) Kind() string { return kindReply }

// heldWalk is an announcement resting at a node mid-walk.
type heldWalk struct {
	id         protocol.ID
	roundsLeft int
	path       []int32
}

// refereeRecord is one on-time announcement awaiting a verdict.
type refereeRecord struct {
	id   protocol.ID
	path []int32
}

// kNode is the per-node process of the kpprt backend.
type kNode struct {
	p *kParams

	initialized bool
	candidate   bool
	id          protocol.ID

	// Candidate state.
	launched  int // committee size actually launched
	wins      int
	losses    int
	leader    bool
	leadRound int
	decided   bool

	// Walk-forwarding state.
	holds []heldWalk

	// Referee state.
	records  []refereeRecord
	maxSeen  protocol.ID
	verdicts bool // verdicts sent (window passed)

	// Per-port outgoing queues serializing sends to one per port per
	// round (the CONGEST discipline); flushed front-first each round.
	outq    [][]sim.Message
	pending int
}

// kParams is the shared immutable parameter block of one run.
type kParams struct {
	n         int
	sizing    protocol.Sizing
	prob      float64 // candidate probability
	committee int     // r
	hops      int     // walk rounds (0 = direct one-hop sampling)
	window    int     // referee decision round
	deadline  int     // candidate give-up round
	portBits  int
}

// resolveParams computes the run parameters for g under cfg.
func resolveParams(g *graph.Graph, cfg SublinearConfig) (*kParams, error) {
	n := g.N()
	sizing, err := protocol.NewSizing(n)
	if err != nil {
		return nil, err
	}
	c1, c2 := cfg.constants()
	ln := math.Log(float64(n))
	r := int(math.Ceil(c2 * math.Sqrt(float64(n)*ln)))
	if r < 1 {
		r = 1
	}
	complete := true
	for v := 0; v < n; v++ {
		if g.Degree(v) != n-1 {
			complete = false
			break
		}
	}
	hops := cfg.Hops
	if hops == 0 && !complete {
		hops = 8 * bits.Len(uint(n-1))
	}
	window := cfg.Window
	if window == 0 {
		if hops == 0 {
			// Direct sampling: announcements land in round 1; a small
			// constant absorbs committee launches wider than the degree.
			window = 8
		} else {
			// Walks take exactly hops rounds plus queuing; the slack
			// covers committee launch serialization and congestion.
			window = 2*hops + r + 16
		}
	}
	return &kParams{
		n:         n,
		sizing:    sizing,
		prob:      math.Min(1, c1*ln/float64(n)),
		committee: r,
		hops:      hops,
		window:    window,
		deadline:  2*window + 4,
		portBits:  sizing.L,
	}, nil
}

// maxMessageBits is the per-message cap of a kpprt run: the CONGEST cap
// plus the recorded return path (Hops port numbers; one for direct mode).
func (p *kParams) maxMessageBits() int {
	pathHops := p.hops
	if pathHops == 0 {
		pathHops = 1
	}
	return p.sizing.CongestCap() + pathHops*p.portBits
}

func (p *kParams) announceBits(pathLen int) int {
	return p.sizing.IDBits() + p.sizing.CountBits() + pathLen*p.portBits + protocol.FlagBits
}

func (p *kParams) replyBits(pathLen int) int {
	return protocol.FlagBits + pathLen*p.portBits
}

// enqueue schedules a message on a port, respecting one send per port per
// round.
func (nd *kNode) enqueue(port int, m sim.Message) {
	nd.outq[port] = append(nd.outq[port], m)
	nd.pending++
}

// flush sends the front of every non-empty port queue and re-wakes if
// anything is left.
func (nd *kNode) flush(ctx *sim.Context) error {
	if nd.pending == 0 {
		return nil
	}
	for port := range nd.outq {
		q := nd.outq[port]
		if len(q) == 0 {
			continue
		}
		if err := ctx.Send(port, q[0]); err != nil {
			return err
		}
		copy(q, q[1:])
		nd.outq[port] = q[:len(q)-1]
		nd.pending--
	}
	if nd.pending > 0 {
		ctx.WakeAt(ctx.Round() + 1)
	}
	return nil
}

// land records an announcement arriving at its referee.
func (nd *kNode) land(ctx *sim.Context, id protocol.ID, path []int32) {
	if ctx.Round() >= nd.p.window || nd.verdicts {
		// Late: the verdict round has passed; answer "lose" immediately
		// so a shared referee can still never hand out two wins.
		nd.reply(ctx, false, path)
		return
	}
	nd.records = append(nd.records, refereeRecord{id: id, path: path})
	if id > nd.maxSeen {
		nd.maxSeen = id
	}
	ctx.WakeAt(nd.p.window)
}

// reply routes a verdict back along an announcement's recorded path. An
// empty path means the candidate is this node (a walk that never moved).
// A recorded port outside this node's degree cannot come from an honest
// walk (every hop records the port it arrived on); it is a forgery, and
// the verdict it claims to route is discarded rather than trusted.
func (nd *kNode) reply(ctx *sim.Context, win bool, path []int32) {
	if len(path) == 0 {
		nd.verdict(ctx, win)
		return
	}
	port := int(path[len(path)-1])
	if port < 0 || port >= len(nd.outq) {
		return
	}
	rest := path[:len(path)-1]
	nd.enqueue(port, &kReply{win: win, path: rest, bits: nd.p.replyBits(len(rest))})
}

// verdict counts one of this candidate's committee answers.
func (nd *kNode) verdict(ctx *sim.Context, win bool) {
	if !nd.candidate || nd.decided {
		return
	}
	if win {
		nd.wins++
	} else {
		nd.losses++
	}
	if nd.losses > 0 {
		nd.decided = true // a rival out-ranked us at a shared referee
		return
	}
	if nd.wins == nd.launched {
		nd.leader = true
		nd.leadRound = ctx.Round()
		nd.decided = true
	}
}

// stepWalk advances one held announcement by one lazy round: stay with
// probability 1/2, otherwise move through a uniformly random port. A walk
// with no rounds left lands here.
func (nd *kNode) stepWalk(ctx *sim.Context, w heldWalk) {
	if w.roundsLeft <= 0 {
		nd.land(ctx, w.id, w.path)
		return
	}
	w.roundsLeft--
	if ctx.Rand().Intn(2) == 0 { // lazy: stay
		if w.roundsLeft == 0 {
			nd.land(ctx, w.id, w.path)
			return
		}
		nd.holds = append(nd.holds, w)
		ctx.WakeAt(ctx.Round() + 1)
		return
	}
	port := ctx.Rand().Intn(ctx.Degree())
	nd.enqueue(port, &kAnnounce{id: w.id, rounds: w.roundsLeft, path: w.path,
		bits: nd.p.announceBits(len(w.path))})
}

func (nd *kNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	if !nd.initialized {
		nd.initialized = true
		nd.outq = make([][]sim.Message, ctx.Degree())
		if ctx.Rand().Float64() < nd.p.prob {
			nd.candidate = true
			nd.id = protocol.RandomID(ctx.Rand().Uint64, nd.p.n)
			nd.launch(ctx)
			ctx.WakeAt(nd.p.deadline)
		}
	}

	// Deliveries first, in port order (the inbox is sorted).
	for _, env := range inbox {
		switch m := env.Payload.(type) {
		case *kAnnounce:
			// An honest announcement never carries more remaining rounds
			// than a walk starts with, nor a path longer than the hops it
			// could have taken; anything else is a forgery and is dropped
			// (continuing it would walk — and bill — forever).
			if m.rounds < 0 || m.rounds > nd.p.hops || len(m.path) > nd.p.hops {
				continue
			}
			// Record the way back, then continue the walk from here.
			m.path = append(m.path, int32(env.Port))
			nd.stepWalk(ctx, heldWalk{id: m.id, roundsLeft: m.rounds, path: m.path})
		case *kReply:
			if len(m.path) == 0 {
				nd.verdict(ctx, m.win)
			} else {
				nd.reply(ctx, m.win, m.path)
			}
		default:
			return fmt.Errorf("algo: kpprt got unexpected message kind %q", env.Payload.Kind())
		}
	}

	// Advance walks resting here.
	if len(nd.holds) > 0 {
		holds := nd.holds
		nd.holds = nil
		for _, w := range holds {
			nd.stepWalk(ctx, w)
		}
	}

	// Referee verdicts at the window round.
	if !nd.verdicts && ctx.Round() >= nd.p.window && len(nd.records) > 0 {
		nd.verdicts = true
		for _, rec := range nd.records {
			nd.reply(ctx, rec.id == nd.maxSeen, rec.path)
		}
		nd.records = nil
	}

	// Candidate give-up deadline: missing verdicts suppress, never elect.
	if nd.candidate && !nd.decided && ctx.Round() >= nd.p.deadline {
		nd.decided = true
	}

	return nd.flush(ctx)
}

// launch creates the candidate's committee announcements. On a complete
// graph (direct mode) the committee is committee-many distinct random
// neighbors; otherwise each announcement is an independent lazy walk of
// hops rounds starting here.
func (nd *kNode) launch(ctx *sim.Context) {
	r := nd.p.committee
	if nd.p.hops == 0 {
		deg := ctx.Degree()
		if r > deg {
			r = deg
		}
		nd.launched = r
		// Partial Fisher–Yates: r distinct ports, order seed-determined.
		ports := make([]int, deg)
		for i := range ports {
			ports[i] = i
		}
		for i := 0; i < r; i++ {
			j := i + ctx.Rand().Intn(deg-i)
			ports[i], ports[j] = ports[j], ports[i]
			nd.enqueue(ports[i], &kAnnounce{id: nd.id, path: nil,
				bits: nd.p.announceBits(0)})
		}
		return
	}
	nd.launched = r
	for i := 0; i < r; i++ {
		nd.holds = append(nd.holds, heldWalk{id: nd.id, roundsLeft: nd.p.hops})
	}
	ctx.WakeAt(ctx.Round() + 1)
}

// Output is the node's decision vector [leader(0/1), candidate(0/1),
// drawn id (0 when not a candidate)].
func (nd *kNode) Output() []int64 {
	leader, candidate := int64(0), int64(0)
	if nd.leader {
		leader = 1
	}
	if nd.candidate {
		candidate = 1
	}
	return []int64{leader, candidate, int64(nd.id)}
}

// SublinearResult is the kpprt backend's native result.
type SublinearResult struct {
	// Candidates lists the self-sampled candidate node indices.
	Candidates []int
	// Leaders lists candidates that collected a full committee of wins.
	Leaders   []int
	LeaderIDs []protocol.ID
	// Committee is the resolved committee size r; Hops and Window the
	// resolved sampling walk length and referee decision round.
	Committee, Hops, Window int
	Metrics                 sim.Metrics
}

// sublinear is the registered kpprt backend, an ElectionProtocol.
type sublinear struct {
	cfg SublinearConfig
}

func newSublinear(cfg Config) (Algorithm, error) {
	return adapter{sublinear{cfg: cfg.Sublinear}}, nil
}

func (a sublinear) Name() string { return KPPRT }

// Slots labels the engine-level output vector of kpprt nodes.
func (a sublinear) Slots() []string { return []string{"leader", "candidate", "id"} }

// kInstance is one kpprt run's per-node machines (engine.Instance).
type kInstance struct {
	p     *kParams
	nodes []*kNode
}

func (i *kInstance) Node(v int) engine.Node { return i.nodes[v] }

func (i *kInstance) Limits() engine.Limits {
	return engine.Limits{
		MaxMessageBits: i.p.maxMessageBits(),
		// Everything quiesces well before this; generous caps cost the
		// event-driven engine nothing.
		MaxRounds: 4*i.p.deadline + 1000,
	}
}

// Init implements engine.Protocol.
func (a sublinear) Init(g *graph.Graph) (engine.Instance, error) {
	p, err := resolveParams(g, a.cfg)
	if err != nil {
		return nil, err
	}
	nodes := make([]*kNode, g.N())
	for v := range nodes {
		nodes[v] = &kNode{p: p}
	}
	return &kInstance{p: p, nodes: nodes}, nil
}

// Finish implements ElectionProtocol.
func (a sublinear) Finish(inst engine.Instance, eres *engine.Result, opts Options) (*Outcome, error) {
	ki, ok := inst.(*kInstance)
	if !ok {
		return nil, fmt.Errorf("algo: kpprt: unexpected instance type %T", inst)
	}
	p, metrics := ki.p, eres.Metrics
	res := &SublinearResult{Committee: p.committee, Hops: p.hops, Window: p.window, Metrics: metrics}
	out := &Outcome{Algorithm: KPPRT, LeaderRound: -1, Rounds: metrics.FinalRound, Metrics: metrics, Detail: res}
	for v, nd := range ki.nodes {
		if !nd.candidate {
			continue
		}
		res.Candidates = append(res.Candidates, v)
		if nd.leader {
			res.Leaders = append(res.Leaders, v)
			res.LeaderIDs = append(res.LeaderIDs, nd.id)
			if out.LeaderRound == -1 || nd.leadRound < out.LeaderRound {
				out.LeaderRound = nd.leadRound
			}
		}
	}
	out.Leaders = res.Leaders
	out.LeaderIDs = res.LeaderIDs
	out.Contenders = len(res.Candidates)
	out.Success = len(res.Leaders) == 1
	return out, nil
}
