package algo

import (
	"fmt"

	"wcle/internal/core"
	"wcle/internal/engine"
	"wcle/internal/graph"
)

// This file is the bridge between the election-backend contract
// (Algorithm) and the generic protocol substrate (engine.Protocol). Every
// built-in backend is written as an ElectionProtocol; Algorithm is a thin
// adapter over it, and the same protocols are registered in the engine
// registry so protocol-generic layers (the cluster runtime, the protocol
// conformance battery, cmd/electsim -protocol) can run elections without
// knowing they are elections.

// ElectionProtocol is an engine.Protocol that can fold a finished run into
// an election Outcome. Finish receives the same instance Init produced
// (type-assert it to reach backend-native state) and the engine-level
// result of the run.
type ElectionProtocol interface {
	engine.Protocol
	Finish(inst engine.Instance, res *engine.Result, opts Options) (*Outcome, error)
}

// adapter makes an ElectionProtocol satisfy Algorithm.
type adapter struct {
	p ElectionProtocol
}

func (a adapter) Name() string { return a.p.Name() }

func (a adapter) Run(g *graph.Graph, opts Options) (*Outcome, error) {
	out, _, err := runElection(a.p, g, opts, false)
	return out, err
}

// engineOptions maps the election option set onto the engine's.
func engineOptions(opts Options, countSends bool) engine.Options {
	return engine.Options{
		Seed:          opts.Seed,
		Budget:        opts.Budget,
		MaxRounds:     opts.MaxRounds,
		Concurrent:    opts.Concurrent,
		LeanMetrics:   opts.LeanMetrics,
		DebugFrom:     opts.DebugFrom,
		CountSends:    countSends,
		Observer:      opts.Observer,
		Fault:         opts.Fault,
		FaultObserver: opts.FaultObserver,
		Remote:        opts.Remote,
		Tracer:        opts.Tracer,
	}
}

// runElection is the one shared election path: Init, the generic engine
// run, Finish.
func runElection(p ElectionProtocol, g *graph.Graph, opts Options, countSends bool) (*Outcome, *engine.Result, error) {
	inst, err := p.Init(g)
	if err != nil {
		return nil, nil, err
	}
	res, err := engine.RunInstance(p, g, inst, engineOptions(opts, countSends))
	if err != nil {
		return nil, nil, err
	}
	out, err := p.Finish(inst, res, opts)
	if err != nil {
		return nil, nil, err
	}
	return out, res, nil
}

// RunWithReport runs a on g and also returns the engine-level report with
// per-node send counts — the cluster runtime's path, where the keystone
// invariant is stated in per-node message counts. Algorithms that are not
// adapters over an ElectionProtocol still run, with a nil report.
func RunWithReport(a Algorithm, g *graph.Graph, opts Options) (*Outcome, *engine.Result, error) {
	if ad, ok := a.(adapter); ok {
		return runElection(ad.p, g, opts, true)
	}
	out, err := a.Run(g, opts)
	return out, nil, err
}

// Protocol unwraps a to its ElectionProtocol when a is one of this
// package's adapters (nil otherwise). The engine registry is fed through
// this: an election registered there IS the backend, not a copy.
func Protocol(a Algorithm) ElectionProtocol {
	if ad, ok := a.(adapter); ok {
		return ad.p
	}
	return nil
}

// configFromEngine maps the engine registry's flat parameter set onto the
// backend constructor Config, mirroring the cluster JobSpec mapping: zero
// election knobs keep backend defaults.
func configFromEngine(e engine.Config) Config {
	cfg := Config{Horizon: e.Horizon}
	if e.Resend > 0 || e.AssumedN > 0 || e.C1 > 0 || e.C2 > 0 || e.MaxWalkLen > 0 || e.FixedTu > 0 {
		cc := core.DefaultConfig()
		cc.Resend = e.Resend
		cc.AssumedN = e.AssumedN
		if e.C1 > 0 {
			cc.C1 = e.C1
		}
		if e.C2 > 0 {
			cc.C2 = e.C2
		}
		if e.MaxWalkLen > 0 {
			cc.MaxWalkLen = e.MaxWalkLen
		}
		if e.FixedTu > 0 {
			cc.FixedWalkLen = e.FixedTu
		}
		cfg.Core = cc
	}
	cfg.Sublinear = SublinearConfig{C1: e.C1, C2: e.C2, Hops: e.Hops, Window: e.Window}
	return cfg
}

// electionBuilder adapts a backend name into an engine registry builder.
func electionBuilder(name string) engine.Builder {
	return func(ecfg engine.Config) (engine.Protocol, error) {
		a, err := New(name, configFromEngine(ecfg))
		if err != nil {
			return nil, err
		}
		p := Protocol(a)
		if p == nil {
			return nil, fmt.Errorf("algo: backend %q is not an engine protocol", name)
		}
		return p, nil
	}
}

func init() {
	// Election backends join the generic protocol registry alongside the
	// engine's own substrates.
	for _, name := range []string{GilbertRS18, GilbertRS18Fixed, FloodMax, KPPRT} {
		engine.Register(name, electionBuilder(name))
	}
}
