package algo

import (
	"fmt"
	"sort"
	"sync"

	"wcle/internal/core"
)

// Registry names of the built-in backends.
const (
	// GilbertRS18 is the paper's guess-and-double random-walk election.
	GilbertRS18 = "gilbertrs18"
	// FloodMax is the Omega(m)-message flooding baseline.
	FloodMax = "floodmax"
	// KPPRT is the sublinear candidate-sampling + referee-committee
	// election of Kutten et al.
	KPPRT = "kpprt"
	// GilbertRS18Fixed is the known-mixing-time single-phase baseline of
	// Kutten et al. [25]: the paper's machinery with FixedWalkLen pinned
	// (caller-supplied, or 4n by default) instead of guess-and-double.
	GilbertRS18Fixed = "gilbertrs18-fixed"
)

// DefaultName is the backend used when a caller names none.
const DefaultName = GilbertRS18

// Config is the union of the built-in backends' constructor knobs. A
// backend reads only its own section and ignores the rest, so one Config
// can parameterize a whole comparison sweep.
type Config struct {
	// Core parameterizes the gilbertrs18 backend. The (entirely) zero
	// value means core.DefaultConfig(); any non-zero field makes the
	// value be used as-is — callers overriding, say, Resend must start
	// from core.DefaultConfig, exactly as with core.Run.
	Core core.Config
	// Horizon is the floodmax decision round (0 = n).
	Horizon int
	// Sublinear parameterizes the kpprt backend (zero value = defaults).
	Sublinear SublinearConfig
}

// Builder constructs a configured instance of one backend.
type Builder func(cfg Config) (Algorithm, error)

var (
	regMu    sync.RWMutex
	builders = map[string]Builder{
		GilbertRS18:      newGilbertRS18,
		GilbertRS18Fixed: newGilbertRS18Fixed,
		FloodMax:         newFloodMax,
		KPPRT:            newSublinear,
	}
)

// Register adds (or replaces) a backend builder under name. The built-in
// names are registered at init; future protocols (async model, population
// protocols) plug in here.
func Register(name string, b Builder) {
	if name == "" || b == nil {
		panic("algo: Register needs a name and a builder")
	}
	regMu.Lock()
	defer regMu.Unlock()
	builders[name] = b
}

// Known reports whether name is a registered backend.
func Known(name string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := builders[name]
	return ok
}

// Names lists the registered backends, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(builders))
	for name := range builders {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Resolve normalizes a backend name: empty means DefaultName.
func Resolve(name string) string {
	if name == "" {
		return DefaultName
	}
	return name
}

// New builds a configured instance of the named backend ("" = default).
func New(name string, cfg Config) (Algorithm, error) {
	name = Resolve(name)
	regMu.RLock()
	b, ok := builders[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("algo: unknown algorithm %q (known: %v)", name, Names())
	}
	return b(cfg)
}
