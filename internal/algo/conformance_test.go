package algo_test

import (
	"testing"

	"wcle/internal/algo"
	"wcle/internal/algo/algotest"
	"wcle/internal/core"
	"wcle/internal/graph"
)

// The cross-backend conformance suite: every registered backend must
// elect exactly one leader, replay deterministically, ignore DebugFrom
// (anonymity), and conserve messages on the cycle/torus/expander/clique
// battery. Per-graph configuration reflects each protocol's documented
// regime knobs, not special-casing: GilbertRS18 needs a walk-length cap
// above the graph's mixing time, KPPRT needs referee-sampling walks of
// mixing length (and a window wide enough for the cycle's congestion).

func TestConformanceGilbertRS18(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full elections on four graphs; skipped in -short mode")
	}
	algotest.Conformance(t, algo.GilbertRS18, func(name string, g *graph.Graph) algo.Config {
		cfg := core.DefaultConfig()
		switch name {
		case "cycle12":
			// At n=12 the default C1=6 makes the intersection threshold
			// (3/4 C1 ln n = 12) exceed the 11 other nodes — unsatisfiable;
			// and the 12-cycle mixes in Theta(n^2) rounds, beyond the
			// default 4n walk-length cap.
			cfg.C1 = 3
			cfg.MaxWalkLen = 1024
		case "torus4x4":
			cfg.MaxWalkLen = 1024
		}
		return algo.Config{Core: cfg}
	}, []int64{0, 1, 2})
}

func TestConformanceFloodMax(t *testing.T) {
	algotest.Conformance(t, algo.FloodMax, func(name string, g *graph.Graph) algo.Config {
		return algo.Config{}
	}, []int64{0, 1, 2})
}

func TestConformanceKPPRT(t *testing.T) {
	algotest.Conformance(t, algo.KPPRT, func(name string, g *graph.Graph) algo.Config {
		var sub algo.SublinearConfig
		switch name {
		case "cycle12":
			// tmix of the 12-cycle's lazy walk is Theta(n^2); the wide
			// window absorbs the congestion of routing every committee
			// through two directed edges per cut.
			sub.Hops, sub.Window = 300, 2000
		case "torus4x4":
			sub.Hops = 100 // tmix is Theta(side^2)
		}
		return algo.Config{Sublinear: sub}
	}, []int64{0, 1, 2})
}

// The fault battery: the same backends under delivery-plane adversaries
// (drop, delay, crash, partition, composed). Elections may fail under
// faults; what must hold is determinism, anonymity, and the accounting
// identity (sends = deliveries + fault drops). The well-connected graphs
// need no regime knobs.

func defaultCfg(name string, g *graph.Graph) algo.Config { return algo.Config{} }

func TestFaultConformanceGilbertRS18(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full elections under five adversaries; skipped in -short mode")
	}
	algotest.FaultConformance(t, algo.GilbertRS18, func(name string, g *graph.Graph) algo.Config {
		return algo.Config{Core: core.DefaultConfig()}
	}, []int64{0, 1, 2})
}

func TestFaultConformanceFloodMax(t *testing.T) {
	algotest.FaultConformance(t, algo.FloodMax, defaultCfg, []int64{0, 1, 2})
}

func TestFaultConformanceKPPRT(t *testing.T) {
	algotest.FaultConformance(t, algo.KPPRT, defaultCfg, []int64{0, 1, 2})
}

// The Byzantine battery: the same backends under an active adversary
// whose every send is mutated in transit (sampled, pinned, and composed
// with drops). Elections may abort; what must hold is outcome discipline,
// honest leadership on pinned cases, determinism, anonymity, and the
// mutation-extended accounting identity.

func TestByzantineConformanceGilbertRS18(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full elections under three adversaries; skipped in -short mode")
	}
	algotest.ByzantineConformance(t, algo.GilbertRS18, func(name string, g *graph.Graph) algo.Config {
		return algo.Config{Core: core.DefaultConfig()}
	}, []int64{0, 1, 2})
}

func TestByzantineConformanceFloodMax(t *testing.T) {
	algotest.ByzantineConformance(t, algo.FloodMax, defaultCfg, []int64{0, 1, 2})
}

func TestByzantineConformanceKPPRT(t *testing.T) {
	algotest.ByzantineConformance(t, algo.KPPRT, defaultCfg, []int64{0, 1, 2})
}
