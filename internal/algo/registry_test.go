package algo_test

import (
	"math/rand"
	"reflect"
	"testing"

	"wcle/internal/algo"
	"wcle/internal/core"
	"wcle/internal/graph"
	"wcle/internal/sim"
)

func TestRegistryNames(t *testing.T) {
	names := algo.Names()
	want := []string{algo.FloodMax, algo.GilbertRS18, algo.KPPRT}
	for _, w := range want {
		if !algo.Known(w) {
			t.Fatalf("backend %q not registered", w)
		}
	}
	if len(names) < len(want) {
		t.Fatalf("Names() = %v, want at least %v", names, want)
	}
	if algo.Resolve("") != algo.DefaultName {
		t.Fatal("empty name must resolve to the default backend")
	}
	if _, err := algo.New("no-such-algorithm", algo.Config{}); err == nil {
		t.Fatal("unknown backend must error")
	}
	for _, name := range want {
		a, err := algo.New(name, algo.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, a.Name())
		}
	}
}

// TestGilbertPartialConfigErrsLoudly pins the config contract: only an
// entirely zero Core section defaults; a partial one (here FixedWalkLen
// without C1/C2) must fail core's validation instead of silently running
// the default algorithm with the knob dropped.
func TestGilbertPartialConfigErrsLoudly(t *testing.T) {
	g, err := graph.Clique(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := algo.New(algo.GilbertRS18, algo.Config{Core: core.Config{FixedWalkLen: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(g, algo.Options{Seed: 1}); err == nil {
		t.Fatal("partial Core config must error, not silently default")
	}
}

// TestGilbertBackendMatchesCore pins the adapter: running the paper's
// algorithm through the registry must reproduce core.Run exactly.
func TestGilbertBackendMatchesCore(t *testing.T) {
	g, err := graph.RandomRegular(48, 8, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	a, err := algo.New(algo.GilbertRS18, algo.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 3; seed++ {
		out, err := a.Run(g, algo.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Run(g, core.DefaultConfig(), core.RunOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(out.Leaders, want.Leaders) ||
			out.Rounds != want.Rounds ||
			out.Metrics.Messages != want.Metrics.Messages ||
			out.Metrics.Bits != want.Metrics.Bits {
			t.Fatalf("seed %d: backend diverged from core.Run: %+v vs %+v", seed, out, want)
		}
		if _, ok := out.Detail.(*core.Result); !ok {
			t.Fatalf("Detail is %T, want *core.Result", out.Detail)
		}
	}
}

// TestBatchMatchesCoreRunMany pins the generic batch runner against
// core.RunMany for the default backend: same seeds, same aggregation,
// field for field.
func TestBatchMatchesCoreRunMany(t *testing.T) {
	g, err := graph.RandomRegular(48, 8, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	a, err := algo.New(algo.GilbertRS18, algo.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := algo.RunMany(g, a, algo.BatchOptions{
		Base: algo.Options{Seed: 42, LeanMetrics: true}, Trials: 6, Workers: 3, CollectTrials: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.RunMany(g, core.DefaultConfig(), core.BatchOptions{
		Base: core.RunOptions{Seed: 42, LeanMetrics: true}, Trials: 6, Workers: 3, CollectTrials: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.One != want.One || got.Zero != want.Zero || got.Multi != want.Multi ||
		got.Messages != want.Messages || got.Bits != want.Bits ||
		got.Rounds != want.Rounds || got.Contenders != want.Contenders ||
		!reflect.DeepEqual(got.TrialMessages, want.TrialMessages) ||
		!reflect.DeepEqual(got.TrialRounds, want.TrialRounds) ||
		!reflect.DeepEqual(got.TrialOutcomes, want.TrialOutcomes) {
		t.Fatalf("batch diverged:\n algo: %+v\n core: %+v", got, want)
	}
}

// TestBatchWorkerCountInvariance: a batch's deterministic fields cannot
// depend on the shard count, whatever the backend.
func TestBatchWorkerCountInvariance(t *testing.T) {
	g, err := graph.Clique(32, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{algo.FloodMax, algo.KPPRT} {
		a, err := algo.New(name, algo.Config{})
		if err != nil {
			t.Fatal(err)
		}
		one, err := algo.RunMany(g, a, algo.BatchOptions{
			Base: algo.Options{Seed: 9}, Trials: 8, Workers: 1, CollectTrials: true})
		if err != nil {
			t.Fatal(err)
		}
		four, err := algo.RunMany(g, a, algo.BatchOptions{
			Base: algo.Options{Seed: 9}, Trials: 8, Workers: 4, CollectTrials: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(one.TrialMessages, four.TrialMessages) ||
			!reflect.DeepEqual(one.TrialOutcomes, four.TrialOutcomes) ||
			one.One != four.One {
			t.Fatalf("%s: worker count changed the batch", name)
		}
	}
}

// TestBatchRejectsSharedFault mirrors core.RunMany's guard: a stateful
// fault plane shared across shards is a determinism bug.
func TestBatchRejectsSharedFault(t *testing.T) {
	g, err := graph.Clique(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	a, err := algo.New(algo.FloodMax, algo.Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = algo.RunMany(g, a, algo.BatchOptions{
		Base: algo.Options{Seed: 1, Fault: &sim.Drop{P: 0.1}}, Trials: 4})
	if err == nil {
		t.Fatal("shared Base.Fault must be rejected")
	}
	if _, err := algo.RunMany(g, a, algo.BatchOptions{
		Base:     algo.Options{Seed: 1},
		Trials:   4,
		NewFault: func(int) sim.FaultPlane { return &sim.Drop{P: 0.1} },
	}); err != nil {
		t.Fatal(err)
	}
}

// TestKPPRTSublinearOnCliques spot-checks the headline property: the
// kpprt message count on cliques grows far slower than m.
func TestKPPRTSublinearOnCliques(t *testing.T) {
	a, err := algo.New(algo.KPPRT, algo.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The gap widens with n (Theta(sqrt(n) log^{3/2} n) vs m = Theta(n^2)):
	// ~4x at n=64, ~16x at n=256.
	for _, c := range []struct{ n, factor int }{{64, 2}, {256, 8}} {
		g, err := graph.Clique(c.n, nil)
		if err != nil {
			t.Fatal(err)
		}
		out, err := a.Run(g, algo.Options{Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if out.Metrics.Messages*int64(c.factor) > int64(g.M()) {
			t.Fatalf("n=%d: %d messages vs m=%d — not sublinear", c.n, out.Metrics.Messages, g.M())
		}
	}
}
