// Package algotest is the cross-backend conformance suite: a reusable
// test harness asserting the invariants every registered election backend
// must satisfy on a shared set of graph families (cycle, torus, expander,
// clique). Backends run it from a normal Go test, supplying per-graph
// configuration (poorly connected graphs legitimately need wider sampling
// parameters); a future backend gets the whole battery for free. The
// battery is also delivery-plane-agnostic: ConformanceOn accepts a Runner,
// which the cluster transport (internal/cluster) uses to run the same
// invariants over loopback TCP.
//
// Invariants checked per (backend, graph):
//
//   - exactly one leader on every asserted seed (safety and liveness of
//     the election itself);
//   - seed determinism: an identical (graph, options) pair replays to an
//     identical outcome, including the message/bit accounting;
//   - anonymity: toggling Options.DebugFrom (which stamps sender indices
//     on envelopes) cannot change the run — a backend reading
//     Envelope.From would diverge here;
//   - message conservation under the perfect delivery plane: every
//     accepted send is delivered (Messages == Deliveries) and nothing is
//     budget- or fault-dropped.
package algotest

import (
	"math/rand"
	"testing"

	"wcle/internal/algo"
	"wcle/internal/graph"
)

// TestGraph is one conformance graph plus the backend configuration to
// use on it.
type TestGraph struct {
	Name string
	G    *graph.Graph
	Cfg  algo.Config
}

// Graphs returns the standard conformance families — cycle, torus,
// expander (random 8-regular), clique — each configured by cfgFor (which
// may return the zero Config for backend defaults).
func Graphs(t *testing.T, cfgFor func(name string, g *graph.Graph) algo.Config) []TestGraph {
	t.Helper()
	build := func(name string, g *graph.Graph, err error) TestGraph {
		if err != nil {
			t.Fatalf("building %s: %v", name, err)
		}
		return TestGraph{Name: name, G: g, Cfg: cfgFor(name, g)}
	}
	cyc, errC := graph.Cycle(12, nil)
	tor, errT := graph.Torus2D(4, 4, nil)
	exp, errE := graph.RandomRegular(32, 8, rand.New(rand.NewSource(3)))
	clq, errK := graph.Clique(16, nil)
	return []TestGraph{
		build("cycle12", cyc, errC),
		build("torus4x4", tor, errT),
		build("rr8-32", exp, errE),
		build("clique16", clq, errK),
	}
}

// Runner executes one election of the named, configured backend on a
// conformance graph. The default target builds the backend and runs it in
// process; alternative delivery planes (the cluster transport over
// loopback TCP) substitute their own and get the same invariant battery.
type Runner func(name string, cfg algo.Config, g *graph.Graph, opts algo.Options) (*algo.Outcome, error)

// Conformance runs the invariant battery for one backend across the
// standard graphs, in process. seeds are the asserted election seeds
// (deterministic: once green, always green).
func Conformance(t *testing.T, name string, cfgFor func(graphName string, g *graph.Graph) algo.Config, seeds []int64) {
	t.Helper()
	ConformanceOn(t, name, cfgFor, seeds, func(name string, cfg algo.Config, g *graph.Graph, opts algo.Options) (*algo.Outcome, error) {
		a, err := algo.New(name, cfg)
		if err != nil {
			return nil, err
		}
		return a.Run(g, opts)
	})
}

// ConformanceOn runs the invariant battery for one backend through an
// arbitrary delivery plane.
func ConformanceOn(t *testing.T, name string, cfgFor func(graphName string, g *graph.Graph) algo.Config, seeds []int64, run Runner) {
	t.Helper()
	for _, tg := range Graphs(t, cfgFor) {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			a, err := algo.New(name, tg.Cfg)
			if err != nil {
				t.Fatal(err)
			}
			if a.Name() != algo.Resolve(name) {
				t.Fatalf("backend reports name %q, registry says %q", a.Name(), name)
			}
			for _, seed := range seeds {
				opts := algo.Options{Seed: seed}
				out, err := run(name, tg.Cfg, tg.G, opts)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				assertOneLeader(t, seed, out)
				assertConservation(t, seed, out)

				replay, err := run(name, tg.Cfg, tg.G, opts)
				if err != nil {
					t.Fatalf("seed %d replay: %v", seed, err)
				}
				assertSameOutcome(t, seed, "replay", out, replay)

				debug, err := run(name, tg.Cfg, tg.G, algo.Options{Seed: seed, DebugFrom: true})
				if err != nil {
					t.Fatalf("seed %d debug: %v", seed, err)
				}
				assertSameOutcome(t, seed, "DebugFrom", out, debug)
			}
		})
	}
}

func assertOneLeader(t *testing.T, seed int64, out *algo.Outcome) {
	t.Helper()
	if len(out.Leaders) != 1 || !out.Success {
		t.Fatalf("seed %d: leaders = %v (success=%v), want exactly one", seed, out.Leaders, out.Success)
	}
	if len(out.LeaderIDs) != 1 || out.LeaderIDs[0] == 0 {
		t.Fatalf("seed %d: leader ids = %v, want one non-zero id", seed, out.LeaderIDs)
	}
	if out.LeaderRound < 0 || out.LeaderRound > out.Rounds {
		t.Fatalf("seed %d: leader round %d outside [0, %d]", seed, out.LeaderRound, out.Rounds)
	}
	if out.Contenders < 1 {
		t.Fatalf("seed %d: %d contenders with a leader", seed, out.Contenders)
	}
}

// assertConservation checks the perfect-plane accounting identity: every
// accepted send is eventually delivered, and nothing is dropped.
func assertConservation(t *testing.T, seed int64, out *algo.Outcome) {
	t.Helper()
	m := out.Metrics
	if m.Messages != m.Deliveries {
		t.Fatalf("seed %d: conservation broken: %d sends, %d deliveries", seed, m.Messages, m.Deliveries)
	}
	if m.Dropped != 0 || m.FaultDrops != 0 || m.Delayed != 0 {
		t.Fatalf("seed %d: perfect plane reported drops/delays: %+v", seed, m)
	}
	if m.Messages > 0 && m.Bits < m.Messages {
		t.Fatalf("seed %d: %d bits for %d messages", seed, m.Bits, m.Messages)
	}
}

func assertSameOutcome(t *testing.T, seed int64, what string, a, b *algo.Outcome) {
	t.Helper()
	same := len(a.Leaders) == len(b.Leaders) &&
		a.Success == b.Success &&
		a.Contenders == b.Contenders &&
		a.LeaderRound == b.LeaderRound &&
		a.Rounds == b.Rounds &&
		a.Metrics.Messages == b.Metrics.Messages &&
		a.Metrics.Bits == b.Metrics.Bits &&
		a.Metrics.Deliveries == b.Metrics.Deliveries
	for i := range a.Leaders {
		same = same && a.Leaders[i] == b.Leaders[i]
	}
	for i := range a.LeaderIDs {
		same = same && i < len(b.LeaderIDs) && a.LeaderIDs[i] == b.LeaderIDs[i]
	}
	if !same {
		t.Fatalf("seed %d: %s diverged:\n  a: %+v\n  b: %+v", seed, what, a, b)
	}
}
