package algotest

// The fault-conformance battery: the invariants every backend must keep
// when a delivery-plane adversary is attached. Elections may legitimately
// fail under faults (zero leaders after a partition is correct behavior),
// so the battery asserts what must survive regardless: determinism (same
// seed + same fault replays identically), anonymity (DebugFrom cannot
// change a run), internal consistency of the outcome, and the fault
// accounting identity. Fault cases are expressed as serve.FaultSpec — the
// wire form — so the same case runs in process and over a TCP cluster,
// and FaultParityOn can demand the two agree byte-for-byte.

import (
	"testing"

	"wcle/internal/algo"
	"wcle/internal/graph"
	"wcle/internal/serve"
)

// FaultCase is one adversary configuration of the battery.
type FaultCase struct {
	Name string
	Spec serve.FaultSpec
}

// FaultCases returns the standard adversaries: drop, delay, crash,
// partition, and a composition. Parameters are mild enough that
// well-connected graphs usually still elect, harsh enough that the fault
// counters must move.
func FaultCases() []FaultCase {
	return []FaultCase{
		{"drop5", serve.FaultSpec{Drop: 0.05}},
		{"delay2", serve.FaultSpec{DelayMax: 2}},
		{"crash20", serve.FaultSpec{CrashFrac: 0.2, CrashRound: 2}},
		{"partition25", serve.FaultSpec{PartitionFrac: 0.25, PartitionFrom: 1, PartitionTo: 12}},
		{"drop+delay", serve.FaultSpec{Drop: 0.03, DelayMax: 1}},
	}
}

// FaultGraphs returns the battery's graph set: the well-connected
// families (the paper's setting), where mild adversaries leave an
// election its conductance headroom. Sparse families (cycle) under drops
// are a different regime — round caps, not invariants.
func FaultGraphs(t *testing.T, cfgFor func(name string, g *graph.Graph) algo.Config) []TestGraph {
	t.Helper()
	all := Graphs(t, cfgFor)
	keep := all[:0]
	for _, tg := range all {
		if tg.Name == "rr8-32" || tg.Name == "clique16" {
			keep = append(keep, tg)
		}
	}
	return keep
}

// FaultRunner executes one election of the named, configured backend on a
// conformance graph under the given adversary. The in-process default
// instantiates fault.Plane(); the cluster transport ships the spec in the
// JobSpec instead.
type FaultRunner func(name string, cfg algo.Config, g *graph.Graph, opts algo.Options, fault serve.FaultSpec) (*algo.Outcome, error)

// InProcessFaultRunner is the reference FaultRunner: build the backend,
// attach the spec's plane, run in process.
func InProcessFaultRunner(name string, cfg algo.Config, g *graph.Graph, opts algo.Options, fault serve.FaultSpec) (*algo.Outcome, error) {
	a, err := algo.New(name, cfg)
	if err != nil {
		return nil, err
	}
	opts.Fault = fault.Plane()
	return a.Run(g, opts)
}

// FaultConformance runs the fault battery for one backend in process.
func FaultConformance(t *testing.T, name string, cfgFor func(graphName string, g *graph.Graph) algo.Config, seeds []int64) {
	t.Helper()
	FaultConformanceOn(t, name, cfgFor, seeds, InProcessFaultRunner)
}

// FaultConformanceOn runs the fault battery for one backend through an
// arbitrary delivery plane.
func FaultConformanceOn(t *testing.T, name string, cfgFor func(graphName string, g *graph.Graph) algo.Config, seeds []int64, run FaultRunner) {
	t.Helper()
	for _, tg := range FaultGraphs(t, cfgFor) {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			for _, fc := range FaultCases() {
				fc := fc
				t.Run(fc.Name, func(t *testing.T) {
					var drops, delayed int64
					for _, seed := range seeds {
						opts := algo.Options{Seed: seed}
						out, err := run(name, tg.Cfg, tg.G, opts, fc.Spec)
						if err != nil {
							t.Fatalf("seed %d: %v", seed, err)
						}
						assertFaultConsistency(t, seed, out)
						drops += out.Metrics.FaultDrops
						delayed += out.Metrics.Delayed

						replay, err := run(name, tg.Cfg, tg.G, opts, fc.Spec)
						if err != nil {
							t.Fatalf("seed %d replay: %v", seed, err)
						}
						assertSameFaultOutcome(t, seed, "replay", out, replay)

						debug, err := run(name, tg.Cfg, tg.G, algo.Options{Seed: seed, DebugFrom: true}, fc.Spec)
						if err != nil {
							t.Fatalf("seed %d debug: %v", seed, err)
						}
						assertSameFaultOutcome(t, seed, "DebugFrom", out, debug)
					}
					// The adversary must actually bite somewhere on the seed
					// set (fixed seeds: once green, always green). Short runs
					// can dodge a 5% drop rate at one seed, not at all of them.
					dropping := fc.Spec.Drop > 0 || fc.Spec.PartitionFrac > 0 || fc.Spec.CrashFrac > 0
					if dropping && drops == 0 {
						t.Fatalf("%s reported zero fault drops across seeds %v", fc.Name, seeds)
					}
					if fc.Spec.DelayMax > 0 && delayed == 0 {
						t.Fatalf("%s reported zero delayed sends across seeds %v", fc.Name, seeds)
					}
				})
			}
		})
	}
}

// FaultParityOn runs every battery case through two delivery planes and
// demands identical outcomes — the keystone determinism contract under
// faults (the in-process sim vs. the TCP cluster).
func FaultParityOn(t *testing.T, name string, cfgFor func(graphName string, g *graph.Graph) algo.Config, seeds []int64, ref, under FaultRunner) {
	t.Helper()
	for _, tg := range FaultGraphs(t, cfgFor) {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			for _, fc := range FaultCases() {
				fc := fc
				t.Run(fc.Name, func(t *testing.T) {
					for _, seed := range seeds {
						opts := algo.Options{Seed: seed}
						want, err := ref(name, tg.Cfg, tg.G, opts, fc.Spec)
						if err != nil {
							t.Fatalf("seed %d reference: %v", seed, err)
						}
						got, err := under(name, tg.Cfg, tg.G, opts, fc.Spec)
						if err != nil {
							t.Fatalf("seed %d: %v", seed, err)
						}
						assertSameFaultOutcome(t, seed, "plane parity", want, got)
					}
				})
			}
		})
	}
}

// assertFaultConsistency checks what must hold whatever the adversary
// did: the outcome is internally consistent and the accounting closes.
func assertFaultConsistency(t *testing.T, seed int64, out *algo.Outcome) {
	t.Helper()
	m := out.Metrics
	if out.Success != (len(out.Leaders) == 1) {
		t.Fatalf("seed %d: success=%v with %d leaders", seed, out.Success, len(out.Leaders))
	}
	// A successful election names its leader; multi-leader splits need
	// not (floodmax reports ids only for a unique leader).
	if out.Success && (len(out.LeaderIDs) != 1 || out.LeaderIDs[0] == 0) {
		t.Fatalf("seed %d: successful election with leader ids %v", seed, out.LeaderIDs)
	}
	if m.Dropped != 0 {
		t.Fatalf("seed %d: %d budget drops with no budget set", seed, m.Dropped)
	}
	// Accounting identity: every counted send was either delivered or
	// lost by the fault plane. (Delays reorder, never lose.)
	if m.Messages != m.Deliveries+m.FaultDrops {
		t.Fatalf("seed %d: accounting leak: %d sends, %d deliveries + %d fault drops",
			seed, m.Messages, m.Deliveries, m.FaultDrops)
	}
}

// assertSameFaultOutcome extends assertSameOutcome with the fault
// counters: a replay (or another delivery plane) must reproduce the
// adversary's interventions exactly, not just the election result.
func assertSameFaultOutcome(t *testing.T, seed int64, what string, a, b *algo.Outcome) {
	t.Helper()
	assertSameOutcome(t, seed, what, a, b)
	if a.Metrics.FaultDrops != b.Metrics.FaultDrops || a.Metrics.Delayed != b.Metrics.Delayed {
		t.Fatalf("seed %d: %s diverged on fault accounting: drops %d vs %d, delayed %d vs %d",
			seed, what, a.Metrics.FaultDrops, b.Metrics.FaultDrops, a.Metrics.Delayed, b.Metrics.Delayed)
	}
	if a.Metrics.Mutated != b.Metrics.Mutated {
		t.Fatalf("seed %d: %s diverged on mutation accounting: %d vs %d",
			seed, what, a.Metrics.Mutated, b.Metrics.Mutated)
	}
}
