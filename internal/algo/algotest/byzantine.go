package algotest

// The Byzantine-conformance battery: the invariants every backend must
// keep when an active adversary mutates messages in transit. Elections
// may legitimately fail under forgery — a split electorate, zero leaders,
// a round cap — so the battery asserts what must survive regardless:
//
//   - outcome discipline: an honest-majority run either elects exactly
//     one leader or detectably aborts (Success false, or a deterministic
//     error) — never a silent half-election;
//   - honest leadership on pinned-adversary cases: when the adversary set
//     is known by construction and the election succeeds, the leader is
//     an honest node;
//   - replay determinism at a fixed seed, mutation accounting included
//     (same seed, same forgeries, same fate);
//   - anonymity under forgery: DebugFrom stamps sender indices on
//     envelopes, and the adversary mutates only payload bytes — toggling
//     it cannot change a Byzantine run;
//   - the extended accounting identity: sends = deliveries + fault drops,
//     where destroyed forgeries count as fault drops.
//
// Cases are serve.FaultSpec values (the wire form), so the identical
// battery runs in process and over a TCP cluster, and ByzantineParityOn
// can demand the two agree byte-for-byte.

import (
	"testing"

	"wcle/internal/algo"
	"wcle/internal/engine"
	"wcle/internal/graph"
	"wcle/internal/serve"
)

// ByzantineCases returns the battery's adversary configurations for one
// graph: a sampled minority, a pinned two-node adversary set (the case
// whose honest set is known by construction), and a composition with an
// omission plane.
func ByzantineCases(g *graph.Graph) []FaultCase {
	return []FaultCase{
		{"byz15", serve.FaultSpec{Byz: 0.15}},
		{"byz-pinned", serve.FaultSpec{ByzNodes: PinnedAdversaries(g)}},
		{"byz15+drop5", serve.FaultSpec{Byz: 0.15, Drop: 0.05}},
	}
}

// PinnedAdversaries is the battery's explicit adversary set for a graph:
// two nodes, fixed relative positions, always a strict minority on the
// conformance families.
func PinnedAdversaries(g *graph.Graph) []int {
	n := g.N()
	if n < 4 {
		return []int{0}
	}
	return []int{1, n / 2}
}

// ByzantineConformance runs the Byzantine battery for one backend in
// process.
func ByzantineConformance(t *testing.T, name string, cfgFor func(graphName string, g *graph.Graph) algo.Config, seeds []int64) {
	t.Helper()
	ByzantineConformanceOn(t, name, cfgFor, seeds, InProcessFaultRunner)
}

// ByzantineConformanceOn runs the Byzantine battery for one backend
// through an arbitrary delivery plane.
func ByzantineConformanceOn(t *testing.T, name string, cfgFor func(graphName string, g *graph.Graph) algo.Config, seeds []int64, run FaultRunner) {
	t.Helper()
	for _, tg := range FaultGraphs(t, cfgFor) {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			for _, fc := range ByzantineCases(tg.G) {
				fc := fc
				t.Run(fc.Name, func(t *testing.T) {
					var mutated int64
					for _, seed := range seeds {
						opts := algo.Options{Seed: seed}
						out, err := run(name, tg.Cfg, tg.G, opts, fc.Spec)
						if err != nil {
							// A detectable abort is a legitimate Byzantine
							// outcome — but it must be the deterministic one:
							// the same seed aborts identically on replay.
							_, rerr := run(name, tg.Cfg, tg.G, opts, fc.Spec)
							if rerr == nil || rerr.Error() != err.Error() {
								t.Fatalf("seed %d: abort not deterministic: %v vs %v", seed, err, rerr)
							}
							continue
						}
						assertFaultConsistency(t, seed, out)
						assertHonestLeader(t, seed, out, fc.Spec.ByzNodes)
						mutated += out.Metrics.Mutated

						replay, err := run(name, tg.Cfg, tg.G, opts, fc.Spec)
						if err != nil {
							t.Fatalf("seed %d replay: %v", seed, err)
						}
						assertSameFaultOutcome(t, seed, "replay", out, replay)

						debug, err := run(name, tg.Cfg, tg.G, algo.Options{Seed: seed, DebugFrom: true}, fc.Spec)
						if err != nil {
							t.Fatalf("seed %d debug: %v", seed, err)
						}
						assertSameFaultOutcome(t, seed, "DebugFrom", out, debug)
					}
					// The adversary must actually forge somewhere on the seed
					// set (fixed seeds: once green, always green).
					if mutated == 0 {
						t.Fatalf("%s mutated nothing across seeds %v", fc.Name, seeds)
					}
				})
			}
		})
	}
}

// ByzantineParityOn runs every Byzantine battery case through two
// delivery planes and demands identical outcomes — the fault-parity
// contract extended to active adversaries (the in-process sim vs. the
// TCP cluster). Mutation happens at dispatch on the sender-hosting shard
// with sender-keyed randomness, so the forged bytes themselves cross the
// wire; this battery is the CI enforcement of that design.
func ByzantineParityOn(t *testing.T, name string, cfgFor func(graphName string, g *graph.Graph) algo.Config, seeds []int64, ref, under FaultRunner) {
	t.Helper()
	for _, tg := range FaultGraphs(t, cfgFor) {
		tg := tg
		t.Run(tg.Name, func(t *testing.T) {
			for _, fc := range ByzantineCases(tg.G) {
				fc := fc
				t.Run(fc.Name, func(t *testing.T) {
					for _, seed := range seeds {
						opts := algo.Options{Seed: seed}
						want, werr := ref(name, tg.Cfg, tg.G, opts, fc.Spec)
						got, gerr := under(name, tg.Cfg, tg.G, opts, fc.Spec)
						if (werr == nil) != (gerr == nil) {
							t.Fatalf("seed %d: planes disagree on failure: ref %v, under %v", seed, werr, gerr)
						}
						if werr != nil {
							continue // both aborted; parity of the abort is enough
						}
						assertSameFaultOutcome(t, seed, "byzantine plane parity", want, got)
					}
				})
			}
		})
	}
}

// ByzantineProtocolParityOn is the engine-level analogue of
// ByzantineParityOn: every Byzantine battery case through two delivery
// planes, demanding cell-identical engine results (outputs, per-node
// sends, mutation counters). With cfgFor returning Config.Defend it is
// also the wire-parity proof for the committee defense: the claim frames,
// the quorum decisions, and the vouch fast path must replay identically
// over TCP.
func ByzantineProtocolParityOn(t *testing.T, name string, cfgFor func(graphName string, g *graph.Graph) engine.Config, seeds []int64, ref, under ProtocolRunner) {
	t.Helper()
	for _, tg := range protocolFaultGraphs(t) {
		tg := tg
		cfg := cfgFor(tg.Name, tg.G)
		t.Run(tg.Name, func(t *testing.T) {
			for _, fc := range ByzantineCases(tg.G) {
				fc := fc
				t.Run(fc.Name, func(t *testing.T) {
					for _, seed := range seeds {
						want, err := ref(name, cfg, tg.G, seed, false, fc.Spec)
						if err != nil {
							t.Fatalf("seed %d reference: %v", seed, err)
						}
						got, err := under(name, cfg, tg.G, seed, false, fc.Spec)
						if err != nil {
							t.Fatalf("seed %d: %v", seed, err)
						}
						assertSameProtocolResult(t, seed, "byzantine plane parity", want, got)
					}
				})
			}
		})
	}
}

// assertHonestLeader enforces the pinned-case safety clause: a successful
// election under a known adversary set names an honest leader. (Sampled
// cases pass nil and skip the check — the set lives inside the plane.)
func assertHonestLeader(t *testing.T, seed int64, out *algo.Outcome, adversaries []int) {
	t.Helper()
	if !out.Success || len(adversaries) == 0 {
		return
	}
	for _, a := range adversaries {
		if out.Leaders[0] == a {
			t.Fatalf("seed %d: elected adversary %d as leader (adversaries %v)", seed, out.Leaders[0], adversaries)
		}
	}
}
