package algotest

// The protocol-generic battery: the invariants every engine-registered
// protocol (elections and non-elections alike) must satisfy, stated in
// engine-level terms — the per-node output matrix and per-node send
// counts. This is the generalized keystone contract: the same (protocol,
// graph, seed) must produce identical outputs and identical per-node
// message counts on every delivery plane, fault-plane adversaries
// included. ProtocolParityOn is how the cluster transport proves it over
// real TCP (internal/cluster's protocol conformance tests).

import (
	"testing"

	"wcle/internal/algo"
	"wcle/internal/engine"
	"wcle/internal/graph"
	"wcle/internal/serve"
)

// ProtocolRunner executes one run of the named, configured engine protocol
// on a graph under an adversary (the zero FaultSpec is perfect delivery).
// Runners must report per-node send counts (engine.Options.CountSends).
type ProtocolRunner func(name string, cfg engine.Config, g *graph.Graph, seed int64, debugFrom bool, fault serve.FaultSpec) (*engine.Result, error)

// InProcessProtocolRunner is the reference ProtocolRunner: build from the
// engine registry, run on the in-process sim.
func InProcessProtocolRunner(name string, cfg engine.Config, g *graph.Graph, seed int64, debugFrom bool, fault serve.FaultSpec) (*engine.Result, error) {
	p, err := engine.New(name, cfg)
	if err != nil {
		return nil, err
	}
	return engine.Run(p, g, engine.Options{
		Seed:       seed,
		DebugFrom:  debugFrom,
		CountSends: true,
		Fault:      fault.Plane(),
	})
}

// ProtocolConformance runs the protocol battery in process.
func ProtocolConformance(t *testing.T, name string, cfgFor func(graphName string, g *graph.Graph) engine.Config, seeds []int64) {
	t.Helper()
	ProtocolConformanceOn(t, name, cfgFor, seeds, InProcessProtocolRunner)
}

// ProtocolConformanceOn runs the protocol battery for one protocol through
// an arbitrary delivery plane: well-formed output matrix, seed-replay
// determinism, DebugFrom anonymity, and perfect-plane conservation.
func ProtocolConformanceOn(t *testing.T, name string, cfgFor func(graphName string, g *graph.Graph) engine.Config, seeds []int64, run ProtocolRunner) {
	t.Helper()
	for _, tg := range protocolGraphs(t) {
		tg := tg
		cfg := cfgFor(tg.Name, tg.G)
		t.Run(tg.Name, func(t *testing.T) {
			for _, seed := range seeds {
				res, err := run(name, cfg, tg.G, seed, false, serve.FaultSpec{})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				assertProtocolShape(t, seed, name, tg.G.N(), res)
				m := res.Metrics
				if m.Messages != m.Deliveries {
					t.Fatalf("seed %d: conservation broken: %d sends, %d deliveries", seed, m.Messages, m.Deliveries)
				}
				if m.Dropped != 0 || m.FaultDrops != 0 || m.Delayed != 0 {
					t.Fatalf("seed %d: perfect plane reported drops/delays: %+v", seed, m)
				}

				replay, err := run(name, cfg, tg.G, seed, false, serve.FaultSpec{})
				if err != nil {
					t.Fatalf("seed %d replay: %v", seed, err)
				}
				assertSameProtocolResult(t, seed, "replay", res, replay)

				debug, err := run(name, cfg, tg.G, seed, true, serve.FaultSpec{})
				if err != nil {
					t.Fatalf("seed %d debug: %v", seed, err)
				}
				assertSameProtocolResult(t, seed, "DebugFrom", res, debug)
			}
		})
	}
}

// ProtocolFaultConformanceOn runs every battery adversary through one
// delivery plane: whatever the adversary did, the run must replay
// identically, stay anonymous, and close its accounting.
func ProtocolFaultConformanceOn(t *testing.T, name string, cfgFor func(graphName string, g *graph.Graph) engine.Config, seeds []int64, run ProtocolRunner) {
	t.Helper()
	for _, tg := range protocolFaultGraphs(t) {
		tg := tg
		cfg := cfgFor(tg.Name, tg.G)
		t.Run(tg.Name, func(t *testing.T) {
			for _, fc := range FaultCases() {
				fc := fc
				t.Run(fc.Name, func(t *testing.T) {
					for _, seed := range seeds {
						res, err := run(name, cfg, tg.G, seed, false, fc.Spec)
						if err != nil {
							t.Fatalf("seed %d: %v", seed, err)
						}
						assertProtocolShape(t, seed, name, tg.G.N(), res)
						m := res.Metrics
						if m.Messages != m.Deliveries+m.FaultDrops {
							t.Fatalf("seed %d: accounting leak: %d sends, %d deliveries + %d fault drops",
								seed, m.Messages, m.Deliveries, m.FaultDrops)
						}

						replay, err := run(name, cfg, tg.G, seed, false, fc.Spec)
						if err != nil {
							t.Fatalf("seed %d replay: %v", seed, err)
						}
						assertSameProtocolResult(t, seed, "replay", res, replay)

						debug, err := run(name, cfg, tg.G, seed, true, fc.Spec)
						if err != nil {
							t.Fatalf("seed %d debug: %v", seed, err)
						}
						assertSameProtocolResult(t, seed, "DebugFrom", res, debug)
					}
				})
			}
		})
	}
}

// ProtocolParityOn runs every (graph, adversary, seed) cell through two
// delivery planes and demands byte-identical engine results — outputs,
// per-node send counts, metrics, and the adversary's own counters. This is
// the generalized keystone contract; the perfect plane rides along as the
// first adversary.
func ProtocolParityOn(t *testing.T, name string, cfgFor func(graphName string, g *graph.Graph) engine.Config, seeds []int64, ref, under ProtocolRunner) {
	t.Helper()
	cases := append([]FaultCase{{Name: "perfect", Spec: serve.FaultSpec{}}}, FaultCases()...)
	for _, tg := range protocolFaultGraphs(t) {
		tg := tg
		cfg := cfgFor(tg.Name, tg.G)
		t.Run(tg.Name, func(t *testing.T) {
			for _, fc := range cases {
				fc := fc
				t.Run(fc.Name, func(t *testing.T) {
					for _, seed := range seeds {
						want, err := ref(name, cfg, tg.G, seed, false, fc.Spec)
						if err != nil {
							t.Fatalf("seed %d reference: %v", seed, err)
						}
						got, err := under(name, cfg, tg.G, seed, false, fc.Spec)
						if err != nil {
							t.Fatalf("seed %d: %v", seed, err)
						}
						assertSameProtocolResult(t, seed, "plane parity", want, got)
					}
				})
			}
		})
	}
}

// protocolGraphs is the protocol battery's graph set — the conformance
// families without backend configuration (engine.Config rides separately).
func protocolGraphs(t *testing.T) []TestGraph {
	t.Helper()
	return Graphs(t, func(string, *graph.Graph) algo.Config { return algo.Config{} })
}

// protocolFaultGraphs mirrors FaultGraphs: the well-connected families.
func protocolFaultGraphs(t *testing.T) []TestGraph {
	t.Helper()
	keep := make([]TestGraph, 0, 2)
	for _, tg := range protocolGraphs(t) {
		if tg.Name == "rr8-32" || tg.Name == "clique16" {
			keep = append(keep, tg)
		}
	}
	return keep
}

// assertProtocolShape checks the result is well-formed: a full output
// matrix with rows matching the declared slots, and per-node send counts
// summing to the message total.
func assertProtocolShape(t *testing.T, seed int64, name string, n int, res *engine.Result) {
	t.Helper()
	if res.Protocol != name {
		t.Fatalf("seed %d: result names protocol %q, ran %q", seed, res.Protocol, name)
	}
	if len(res.Slots) == 0 {
		t.Fatalf("seed %d: protocol %q declares no output slots", seed, name)
	}
	if len(res.Outputs) != n {
		t.Fatalf("seed %d: %d output rows for %d nodes", seed, len(res.Outputs), n)
	}
	for v, o := range res.Outputs {
		if len(o) != len(res.Slots) {
			t.Fatalf("seed %d: node %d output %v does not match slots %v", seed, v, o, res.Slots)
		}
	}
	if len(res.PerNodeMessages) != n {
		t.Fatalf("seed %d: %d per-node counts for %d nodes", seed, len(res.PerNodeMessages), n)
	}
	var sum int64
	for _, c := range res.PerNodeMessages {
		if c < 0 {
			t.Fatalf("seed %d: negative per-node count in %v", seed, res.PerNodeMessages)
		}
		sum += c
	}
	if sum != res.Metrics.Messages {
		t.Fatalf("seed %d: per-node counts sum to %d, metrics say %d messages", seed, sum, res.Metrics.Messages)
	}
}

// assertSameProtocolResult demands two engine results be identical cell
// for cell: the output matrix, the per-node send counts, and the run
// accounting including the fault counters.
func assertSameProtocolResult(t *testing.T, seed int64, what string, a, b *engine.Result) {
	t.Helper()
	if a.Protocol != b.Protocol || a.Rounds != b.Rounds {
		t.Fatalf("seed %d: %s diverged: protocol %q/%d rounds vs %q/%d rounds",
			seed, what, a.Protocol, a.Rounds, b.Protocol, b.Rounds)
	}
	if len(a.Outputs) != len(b.Outputs) {
		t.Fatalf("seed %d: %s diverged: %d vs %d output rows", seed, what, len(a.Outputs), len(b.Outputs))
	}
	for v := range a.Outputs {
		av, bv := a.Outputs[v], b.Outputs[v]
		if len(av) != len(bv) {
			t.Fatalf("seed %d: %s diverged at node %d: %v vs %v", seed, what, v, av, bv)
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("seed %d: %s diverged at node %d: %v vs %v", seed, what, v, av, bv)
			}
		}
	}
	if len(a.PerNodeMessages) != len(b.PerNodeMessages) {
		t.Fatalf("seed %d: %s diverged: %d vs %d per-node counts",
			seed, what, len(a.PerNodeMessages), len(b.PerNodeMessages))
	}
	for v := range a.PerNodeMessages {
		if a.PerNodeMessages[v] != b.PerNodeMessages[v] {
			t.Fatalf("seed %d: %s diverged on node %d sends: %d vs %d",
				seed, what, v, a.PerNodeMessages[v], b.PerNodeMessages[v])
		}
	}
	am, bm := a.Metrics, b.Metrics
	if am.Messages != bm.Messages || am.Bits != bm.Bits || am.Deliveries != bm.Deliveries ||
		am.FaultDrops != bm.FaultDrops || am.Delayed != bm.Delayed || am.Mutated != bm.Mutated {
		t.Fatalf("seed %d: %s diverged on accounting:\n  a: %+v\n  b: %+v", seed, what, am, bm)
	}
}
