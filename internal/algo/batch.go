package algo

import (
	"errors"
	"time"

	"wcle/internal/graph"
	"wcle/internal/sim"
)

// BatchOptions parameterizes RunMany: many independent elections of one
// backend on one graph, sharded across a worker pool. It mirrors
// core.BatchOptions — including the seed-derivation contract (trial i runs
// at sim.DeriveSeed(Base.Seed, i)) — so switching a batch between
// backends never changes which seeds its trials see.
type BatchOptions struct {
	// Base is the per-run option template; Base.Seed is the master seed.
	// Base.Concurrent is ignored: batch elections always use the
	// sequential engine (one goroutine per shard; see sim.MultiRunner).
	Base Options
	// Trials is the number of elections.
	Trials int
	// Workers is the shard count (0 = runtime.NumCPU()).
	Workers int
	// NewFault, when non-nil, builds trial i's fault plane. Faulty batches
	// must use it: fault planes are stateful per run, so a single
	// Base.Fault instance would be shared across concurrent trials and
	// RunMany rejects it.
	NewFault func(trial int) sim.FaultPlane
	// CollectTrials retains the per-trial vectors in the result.
	CollectTrials bool
}

// BatchResult aggregates a RunMany batch, mirroring core.BatchResult.
type BatchResult struct {
	// Algorithm is the backend that ran the batch.
	Algorithm string
	Trials    int

	// Leader-count outcomes: exactly one, none, more than one.
	One, Zero, Multi int

	// Totals across trials.
	Messages   int64
	Bits       int64
	FaultDrops int64
	Delayed    int64
	Rounds     int64
	Contenders int

	// Wall-clock of the whole batch and the resulting throughput.
	Elapsed         time.Duration
	ElectionsPerSec float64

	// Shards is the per-shard aggregation from the worker pool.
	Shards []sim.ShardStats

	// Per-trial vectors, indexed by trial; populated only when
	// BatchOptions.CollectTrials is set. TrialOutcomes holds 0 (no
	// leader), 1 (unique leader), or 2 (multiple leaders).
	TrialOutcomes   []int8
	TrialRounds     []int32
	TrialMessages   []int64
	TrialContenders []int32
}

// RunMany executes opts.Trials independent elections of backend a on g
// across a sharded worker pool. Everything except the wall-clock fields of
// the result is deterministic in (g, a, opts.Base.Seed, opts.Trials). For
// the gilbertrs18 backend this is field-for-field the same computation as
// core.RunMany.
func RunMany(g *graph.Graph, a Algorithm, opts BatchOptions) (*BatchResult, error) {
	if opts.Trials <= 0 {
		return &BatchResult{Algorithm: a.Name()}, nil
	}
	if opts.Base.Fault != nil && opts.NewFault == nil {
		// Fault planes are stateful per run; one instance shared across
		// shard goroutines would race and break batch determinism.
		return nil, errors.New("algo: BatchOptions.Base.Fault would be shared across concurrent trials; supply NewFault instead")
	}
	outcomes := make([]int8, opts.Trials)
	rounds := make([]int32, opts.Trials)
	contenders := make([]int32, opts.Trials)
	mr := &sim.MultiRunner{Workers: opts.Workers}
	start := time.Now()
	metrics, shards, err := mr.RunBatch(opts.Trials, func(i int) (sim.Metrics, error) {
		o := opts.Base
		o.Seed = sim.DeriveSeed(opts.Base.Seed, uint64(i))
		o.Concurrent = false
		if opts.NewFault != nil {
			o.Fault = opts.NewFault(i)
		}
		res, err := a.Run(g, o)
		if err != nil {
			return sim.Metrics{}, err
		}
		switch len(res.Leaders) {
		case 0:
			outcomes[i] = 0
		case 1:
			outcomes[i] = 1
		default:
			outcomes[i] = 2
		}
		rounds[i] = int32(res.Rounds)
		contenders[i] = int32(res.Contenders)
		return res.Metrics, nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	out := &BatchResult{
		Algorithm: a.Name(),
		Trials:    opts.Trials,
		Elapsed:   elapsed,
		Shards:    shards,
	}
	if s := elapsed.Seconds(); s > 0 {
		out.ElectionsPerSec = float64(opts.Trials) / s
	}
	for i, m := range metrics {
		switch outcomes[i] {
		case 0:
			out.Zero++
		case 1:
			out.One++
		default:
			out.Multi++
		}
		out.Messages += m.Messages
		out.Bits += m.Bits
		out.FaultDrops += m.FaultDrops
		out.Delayed += m.Delayed
		out.Rounds += int64(rounds[i])
		out.Contenders += int(contenders[i])
	}
	if opts.CollectTrials {
		out.TrialOutcomes = outcomes
		out.TrialRounds = rounds
		out.TrialContenders = contenders
		out.TrialMessages = make([]int64, opts.Trials)
		for i, m := range metrics {
			out.TrialMessages[i] = m.Messages
		}
	}
	return out, nil
}
