package algo

// Wire codecs for the kpprt backend's messages, so its elections can cross
// shard boundaries in the cluster runtime (internal/cluster). The recorded
// return path crosses verbatim: a reply decoded on another shard must
// retrace exactly the ports the announcement recorded.

import (
	"encoding/binary"
	"fmt"

	"wcle/internal/protocol"
	"wcle/internal/sim"
	"wcle/internal/wire"
)

// Wire ids of the kpprt messages. Part of the wire format: never reuse.
const (
	wireKAnnounce = 5
	wireKReply    = 6
)

func init() {
	wire.Register(wireKAnnounce, wire.MsgCodec{
		Kind: kindAnnounce,
		Append: func(buf []byte, m sim.Message) ([]byte, error) {
			a, ok := m.(*kAnnounce)
			if !ok {
				return buf, fmt.Errorf("wire: kpprt announce codec got %T", m)
			}
			buf = binary.AppendUvarint(buf, uint64(a.id))
			buf = binary.AppendUvarint(buf, uint64(a.rounds))
			buf = binary.AppendUvarint(buf, uint64(a.bits))
			return appendPath(buf, a.path), nil
		},
		Decode: func(b []byte) (sim.Message, error) {
			id, b, err := wire.ReadUvarint(b)
			if err != nil {
				return nil, err
			}
			rounds, b, err := wire.ReadUvarint(b)
			if err != nil {
				return nil, err
			}
			bits, b, err := wire.ReadBits(b)
			if err != nil {
				return nil, err
			}
			path, b, err := decodePath(b)
			if err != nil {
				return nil, err
			}
			if len(b) != 0 {
				return nil, fmt.Errorf("%w: %d trailing bytes in kpprt announce", wire.ErrCorrupt, len(b))
			}
			return &kAnnounce{id: protocol.ID(id), rounds: int(rounds), path: path, bits: bits}, nil
		},
	})
	wire.Register(wireKReply, wire.MsgCodec{
		Kind: kindReply,
		Append: func(buf []byte, m sim.Message) ([]byte, error) {
			r, ok := m.(*kReply)
			if !ok {
				return buf, fmt.Errorf("wire: kpprt reply codec got %T", m)
			}
			win := byte(0)
			if r.win {
				win = 1
			}
			buf = append(buf, win)
			buf = binary.AppendUvarint(buf, uint64(r.bits))
			return appendPath(buf, r.path), nil
		},
		Decode: func(b []byte) (sim.Message, error) {
			if len(b) == 0 {
				return nil, fmt.Errorf("%w: kpprt reply truncated at verdict", wire.ErrCorrupt)
			}
			win := b[0]
			b = b[1:]
			if win > 1 {
				return nil, fmt.Errorf("%w: kpprt verdict byte %d", wire.ErrCorrupt, win)
			}
			bits, b, err := wire.ReadBits(b)
			if err != nil {
				return nil, err
			}
			path, b, err := decodePath(b)
			if err != nil {
				return nil, err
			}
			if len(b) != 0 {
				return nil, fmt.Errorf("%w: %d trailing bytes in kpprt reply", wire.ErrCorrupt, len(b))
			}
			return &kReply{win: win == 1, path: path, bits: bits}, nil
		},
	})
}

// appendPath encodes a return path, count-prefixed.
func appendPath(buf []byte, path []int32) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(path)))
	for _, p := range path {
		buf = binary.AppendUvarint(buf, uint64(uint32(p)))
	}
	return buf
}

// decodePath parses a return path. Count zero yields nil, matching a
// freshly launched walk.
func decodePath(b []byte) ([]int32, []byte, error) {
	n, b, err := wire.ReadCount(b)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, b, nil
	}
	path := make([]int32, n)
	for i := range path {
		var v uint64
		if v, b, err = wire.ReadUvarint(b); err != nil {
			return nil, nil, err
		}
		if v > 1<<31-1 {
			return nil, nil, fmt.Errorf("%w: path port %d overflows int32", wire.ErrCorrupt, v)
		}
		path[i] = int32(v)
	}
	return path, b, nil
}
