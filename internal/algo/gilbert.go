package algo

import (
	"fmt"
	"reflect"

	"wcle/internal/core"
	"wcle/internal/engine"
	"wcle/internal/graph"
)

// gilbert adapts internal/core (the paper's algorithm) to the
// ElectionProtocol contract. One type serves two registered backends: the
// guess-and-double election (GilbertRS18) and the known-mixing-time
// single-phase baseline of Kutten et al. (GilbertRS18Fixed), which pins
// core.Config.FixedWalkLen instead of guessing.
type gilbert struct {
	name string
	cfg  core.Config
	// fixedAuto resolves an unset FixedWalkLen to 4n at Init — the default
	// walk-length cap, here spent as the single phase's walk length.
	fixedAuto bool
}

// newGilbertRS18 builds the paper's algorithm from cfg.Core. Only an
// entirely zero Core section means core.DefaultConfig(); a partially
// filled one is used as-is, so core's "start from DefaultConfig" C1/C2
// validation still fails loudly instead of knobs being silently dropped.
func newGilbertRS18(cfg Config) (Algorithm, error) {
	c := cfg.Core
	if reflect.DeepEqual(c, core.Config{}) {
		c = core.DefaultConfig()
	}
	return adapter{gilbert{name: GilbertRS18, cfg: c}}, nil
}

// newGilbertRS18Fixed builds the known-tmix baseline: the same core
// machinery in FixedWalkLen mode. A caller-supplied Core.FixedWalkLen is
// the walk length; otherwise it resolves to 4n at Init (graphs mixing
// slower than that — cycles — need an explicit value, exactly as
// gilbertrs18 needs MaxWalkLen raised there).
func newGilbertRS18Fixed(cfg Config) (Algorithm, error) {
	c := cfg.Core
	if reflect.DeepEqual(c, core.Config{}) {
		c = core.DefaultConfig()
	}
	return adapter{gilbert{name: GilbertRS18Fixed, cfg: c, fixedAuto: c.FixedWalkLen <= 0}}, nil
}

func (a gilbert) Name() string { return a.name }

// Slots labels the engine-level output vector of core's nodes.
func (a gilbert) Slots() []string { return []string{"leader", "contender", "id"} }

// Init implements engine.Protocol.
func (a gilbert) Init(g *graph.Graph) (engine.Instance, error) {
	cfg := a.cfg
	if a.fixedAuto {
		cfg.FixedWalkLen = 4 * g.N()
	}
	return core.Build(g, cfg)
}

// Finish implements ElectionProtocol.
func (a gilbert) Finish(inst engine.Instance, eres *engine.Result, opts Options) (*Outcome, error) {
	ci, ok := inst.(*core.Instance)
	if !ok {
		return nil, fmt.Errorf("algo: %s: unexpected instance type %T", a.name, inst)
	}
	res := ci.Collect(eres.Metrics)
	return &Outcome{
		Algorithm:   a.name,
		Leaders:     res.Leaders,
		LeaderIDs:   res.LeaderIDs,
		Success:     res.Success,
		Explicit:    false,
		Contenders:  len(res.Contenders),
		LeaderRound: res.LeaderRound,
		Rounds:      res.Rounds,
		Metrics:     res.Metrics,
		Detail:      res,
	}, nil
}
