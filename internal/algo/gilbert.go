package algo

import (
	"reflect"

	"wcle/internal/core"
	"wcle/internal/graph"
)

// gilbert adapts internal/core (the paper's algorithm) to the backend
// contract.
type gilbert struct {
	cfg core.Config
}

// newGilbertRS18 builds the paper's algorithm from cfg.Core. Only an
// entirely zero Core section means core.DefaultConfig(); a partially
// filled one is used as-is, so core's "start from DefaultConfig" C1/C2
// validation still fails loudly instead of knobs being silently dropped.
func newGilbertRS18(cfg Config) (Algorithm, error) {
	c := cfg.Core
	if reflect.DeepEqual(c, core.Config{}) {
		c = core.DefaultConfig()
	}
	return gilbert{cfg: c}, nil
}

func (a gilbert) Name() string { return GilbertRS18 }

func (a gilbert) Run(g *graph.Graph, opts Options) (*Outcome, error) {
	res, err := core.Run(g, a.cfg, core.RunOptions{
		Seed:          opts.Seed,
		Budget:        opts.Budget,
		Concurrent:    opts.Concurrent,
		Observer:      opts.Observer,
		LeanMetrics:   opts.LeanMetrics,
		MaxRounds:     opts.MaxRounds,
		DebugFrom:     opts.DebugFrom,
		Fault:         opts.Fault,
		FaultObserver: opts.FaultObserver,
		Remote:        opts.Remote,
	})
	if err != nil {
		return nil, err
	}
	return &Outcome{
		Algorithm:   GilbertRS18,
		Leaders:     res.Leaders,
		LeaderIDs:   res.LeaderIDs,
		Success:     res.Success,
		Explicit:    false,
		Contenders:  len(res.Contenders),
		LeaderRound: res.LeaderRound,
		Rounds:      res.Rounds,
		Metrics:     res.Metrics,
		Detail:      res,
	}, nil
}
