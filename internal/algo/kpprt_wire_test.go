package algo

import (
	"math/rand"
	"reflect"
	"testing"

	"wcle/internal/protocol"
	"wcle/internal/sim"
	"wcle/internal/wire"
)

// TestKPPRTWireRoundTrip: randomized round-trip of the kpprt announcement
// and reply, including the recorded return path and the bit accounting.
func TestKPPRTWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	randPath := func() []int32 {
		k := rng.Intn(6)
		if k == 0 {
			return nil
		}
		p := make([]int32, k)
		for i := range p {
			p[i] = int32(rng.Intn(1 << 10))
		}
		return p
	}
	check := func(m sim.Message) {
		t.Helper()
		buf, err := wire.AppendMessage(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := wire.DecodeMessage(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip: got %#v, want %#v", got, m)
		}
		for cut := 0; cut < len(buf); cut++ {
			if _, err := wire.DecodeMessage(buf[:cut]); err == nil {
				t.Fatalf("truncation to %d/%d decoded cleanly", cut, len(buf))
			}
		}
	}
	for i := 0; i < 200; i++ {
		check(&kAnnounce{
			id:     protocol.RandomID(rng.Uint64, 512),
			rounds: rng.Intn(64),
			path:   randPath(),
			bits:   rng.Intn(4096),
		})
		check(&kReply{win: rng.Intn(2) == 0, path: randPath(), bits: rng.Intn(4096)})
	}
}
