package algo

import (
	"fmt"

	"wcle/internal/baseline"
	"wcle/internal/engine"
	"wcle/internal/graph"
	"wcle/internal/protocol"
)

// floodmax adapts internal/baseline's FloodMax to the ElectionProtocol
// contract.
type floodmax struct {
	horizon int
}

func newFloodMax(cfg Config) (Algorithm, error) {
	return adapter{floodmax{horizon: cfg.Horizon}}, nil
}

func (a floodmax) Name() string { return FloodMax }

// Slots labels the engine-level output vector of floodmax nodes.
func (a floodmax) Slots() []string { return []string{"leader", "max_seen"} }

// Init implements engine.Protocol.
func (a floodmax) Init(g *graph.Graph) (engine.Instance, error) {
	return baseline.Build(g, baseline.Config{Horizon: a.horizon})
}

// Finish implements ElectionProtocol.
func (a floodmax) Finish(inst engine.Instance, eres *engine.Result, opts Options) (*Outcome, error) {
	bi, ok := inst.(*baseline.Instance)
	if !ok {
		return nil, fmt.Errorf("algo: floodmax: unexpected instance type %T", inst)
	}
	res := bi.Collect(eres.Metrics, opts.Remote != nil)
	// Every node competes with its drawn id; a sharded run reports only
	// the locally hosted competitors, so the cluster merge sums back to n.
	contenders := len(eres.Outputs)
	if opts.Remote != nil {
		contenders = 0
		for v := 0; v < len(eres.Outputs); v++ {
			if opts.Remote.Local(v) {
				contenders++
			}
		}
	}
	out := &Outcome{
		Algorithm: FloodMax,
		Leaders:   res.Leaders,
		Success:   len(res.Leaders) == 1,
		// FloodMax is an explicit election only when every node converged
		// to the winning id (faults can break agreement).
		Explicit:    res.AllAgree,
		Contenders:  contenders,
		LeaderRound: -1,
		Rounds:      res.Metrics.FinalRound,
		Metrics:     res.Metrics,
		Detail:      res,
	}
	if len(res.Leaders) > 0 {
		// Leaders all decide at the horizon round.
		out.LeaderRound = res.Horizon
	}
	if len(res.Leaders) == 1 {
		// Under perfect delivery the unique leader holds the global max id.
		out.LeaderIDs = []protocol.ID{res.LeaderID}
	}
	return out, nil
}
