package algo

import (
	"wcle/internal/baseline"
	"wcle/internal/graph"
	"wcle/internal/protocol"
)

// floodmax adapts internal/baseline's FloodMax to the backend contract.
type floodmax struct {
	horizon int
}

func newFloodMax(cfg Config) (Algorithm, error) {
	return floodmax{horizon: cfg.Horizon}, nil
}

func (a floodmax) Name() string { return FloodMax }

func (a floodmax) Run(g *graph.Graph, opts Options) (*Outcome, error) {
	res, err := baseline.Run(g, baseline.Config{
		Seed:          opts.Seed,
		Horizon:       a.horizon,
		Budget:        opts.Budget,
		MaxRounds:     opts.MaxRounds,
		Concurrent:    opts.Concurrent,
		LeanMetrics:   opts.LeanMetrics,
		DebugFrom:     opts.DebugFrom,
		Observer:      opts.Observer,
		Fault:         opts.Fault,
		FaultObserver: opts.FaultObserver,
		Remote:        opts.Remote,
	})
	if err != nil {
		return nil, err
	}
	// Every node competes with its drawn id; a sharded run reports only
	// the locally hosted competitors, so the cluster merge sums back to n.
	contenders := g.N()
	if opts.Remote != nil {
		contenders = 0
		for v := 0; v < g.N(); v++ {
			if opts.Remote.Local(v) {
				contenders++
			}
		}
	}
	out := &Outcome{
		Algorithm: FloodMax,
		Leaders:   res.Leaders,
		Success:   len(res.Leaders) == 1,
		// FloodMax is an explicit election only when every node converged
		// to the winning id (faults can break agreement).
		Explicit:    res.AllAgree,
		Contenders:  contenders,
		LeaderRound: -1,
		Rounds:      res.Metrics.FinalRound,
		Metrics:     res.Metrics,
		Detail:      res,
	}
	if len(res.Leaders) > 0 {
		// Leaders all decide at the horizon round.
		out.LeaderRound = res.Horizon
	}
	if len(res.Leaders) == 1 {
		// Under perfect delivery the unique leader holds the global max id.
		out.LeaderIDs = []protocol.ID{res.LeaderID}
	}
	return out, nil
}
