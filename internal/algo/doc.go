// Package algo makes election protocols first-class pluggable backends: a
// small Algorithm interface, a named registry, and a generic sharded batch
// runner, so every surface of the repo (the wcle facade, cmd/electsim, the
// experiment harness, the electd service, the cluster runtime) compares
// protocols through one contract instead of hard-wiring the paper's
// algorithm.
//
// Since the engine extraction, Algorithm is a thin adapter over the
// generic protocol substrate of internal/engine: every built-in backend
// implements ElectionProtocol (engine.Protocol plus a Finish fold from the
// engine's per-node output report into an election Outcome), and is
// registered in BOTH registries — here under the election contract, and in
// engine's under the protocol contract, so protocol-generic layers (the
// cluster runtime, cmd/electsim -protocol, the conformance batteries, the
// E22 experiment) run elections without knowing they are elections.
// algo.Protocol unwraps an adapter; algo.RunWithReport returns the Outcome
// together with the engine report (per-node send counts — the currency of
// the keystone invariant).
//
// Four backends ship in the registry:
//
//   - gilbertrs18 — the paper's guess-and-double random-walk election
//     (internal/core): O(sqrt(n) log^{7/2} n · tmix) messages,
//     O(tmix log^2 n) rounds, no knowledge of tmix.
//   - gilbertrs18-fixed — the known-tmix single-phase baseline of Kutten
//     et al. [25]: the same machinery with FixedWalkLen pinned.
//   - floodmax — the Omega(m)-message flooding baseline
//     (internal/baseline): explicit election in Theta(n) rounds, the
//     general-graph regime the paper's bound is contrasted against.
//   - kpprt — a KPPRT-style sublinear randomized election (Kutten,
//     Pandurangan, Peleg, Robinson, Trehan, "Sublinear Bounds for
//     Randomized Leader Election"): candidate sampling plus referee
//     committees, ~O(sqrt(n) log^{3/2} n) messages on its home regime
//     (complete graphs, and diameter-two/expander graphs via short
//     referee-sampling walks — the scenario of Chatterjee–Pandurangan–
//     Robinson).
//
// Contract (see DESIGN.md sections 6 and 8 for the full discussion): a
// backend receives a port-numbered graph and backend-independent Options
// (seed, budget, fault plane, observers, LeanMetrics, DebugFrom) and must
// (1) be a pure function of (graph, options) — all randomness through the
// per-node sim streams, and send order within a Step deterministic (fault
// planes are sequence-sensitive), (2) respect the anonymous model — node
// identities are protocol-level random ids in payloads, never
// Envelope.From, and (3) leave scheduling to the sim planes — no backdoor
// communication between node processes. The algotest subpackage checks
// these invariants for every registered backend, and its Protocol*
// batteries check the generalized contract for every engine-registered
// protocol.
package algo
