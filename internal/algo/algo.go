package algo

import (
	"wcle/internal/graph"
	"wcle/internal/obs"
	"wcle/internal/protocol"
	"wcle/internal/sim"
)

// Options are the backend-independent knobs of one election run. They are
// the algorithm-agnostic subset of core.RunOptions: every backend maps
// them onto its own sim.Config the same way, so a fault plane or a budget
// means the same thing whichever protocol runs.
type Options struct {
	// Seed drives all randomness of the run deterministically.
	Seed int64
	// Budget, when positive, drops sends beyond the budget (counted in
	// Metrics.Dropped).
	Budget int64
	// MaxRounds overrides the backend's default round cap (0 = backend
	// default).
	MaxRounds int
	// Concurrent selects the goroutine-per-awake-node engine.
	Concurrent bool
	// LeanMetrics skips per-kind message accounting on the send hot path.
	LeanMetrics bool
	// DebugFrom stamps sender indices on delivered envelopes. Debugging
	// only: the conformance suite asserts no backend's outcome depends on
	// it (the model is anonymous).
	DebugFrom bool
	// Observer taps every accepted send.
	Observer sim.Observer
	// Fault, when non-nil, is the run's delivery-plane adversary.
	Fault sim.FaultPlane
	// FaultObserver receives every fault event of the run.
	FaultObserver sim.FaultObserver
	// Remote, when non-nil, hosts this run's shard of a distributed
	// election (sim.Config.Remote): every backend threads it into its
	// sim configuration unchanged, which is what makes the cluster
	// runtime backend-agnostic.
	Remote sim.RemotePlane
	// Tracer, when non-nil, records the run's spans and instants
	// (sim.Config.Tracer); strictly observational.
	Tracer *obs.Tracer
}

// Outcome is the backend-independent summary every algorithm reports.
// Backend-specific detail rides along in Detail.
type Outcome struct {
	// Algorithm is the registry name of the backend that produced this.
	Algorithm string
	// Leaders lists node indices that declared leadership. Success means
	// exactly one.
	Leaders   []int
	LeaderIDs []protocol.ID
	Success   bool
	// Explicit reports whether the election is explicit: every node learns
	// the leader's id (FloodMax), not just the leader itself (implicit
	// election, the paper's setting).
	Explicit bool
	// Contenders counts the nodes that actively competed: self-selected
	// contenders (gilbertrs18), sampled candidates (kpprt), or every node
	// (floodmax).
	Contenders int
	// LeaderRound is the round of the (first) self-election, -1 if none.
	LeaderRound int
	// Rounds is the simulated round at which all activity ceased.
	Rounds int
	// Metrics is the sim-level cost accounting of the run.
	Metrics sim.Metrics
	// Detail is the backend's native result (*core.Result,
	// *baseline.FloodMaxResult, *SublinearResult), for callers that want
	// more than the common summary.
	Detail interface{}
}

// Algorithm is one election protocol runnable on the sim delivery planes.
// Implementations must be pure functions of (graph, options): all
// randomness flows from Options.Seed through the per-node sim streams, so
// a run replays byte-identically. Instances are cheap, immutable
// configuration holders and safe for concurrent use; all per-run state
// lives inside Run.
type Algorithm interface {
	// Name returns the backend's registry name.
	Name() string
	// Run executes one election on g.
	Run(g *graph.Graph, opts Options) (*Outcome, error)
}
