// Package lowerbound instruments the paper's Section 4 and 5 lower-bound
// arguments so they can be measured empirically rather than only proved:
//
//   - a clique-communication-graph (CG) tracker that classifies every
//     message of a run on the Section 4.1 graph as intra- or inter-clique,
//     records per-clique message counts before the first inter-clique edge
//     is discovered (Lemma 18), builds the CG, identifies spontaneous
//     cliques, and checks the Disj event (Lemma 20);
//   - the port-probing process underlying Lemma 18 (messages over
//     uniformly random unused ports until an inter-clique port is hit);
//   - a bridge tracker for the Theorem 28 dumbbell experiments, counting
//     the traffic that crosses the two bridges joining the halves.
//
// The trackers are sim.Observer implementations: they watch a real run of
// any algorithm and report the quantities the lower-bound proofs reason
// about, which is how experiments E9-E12 turn impossibility arguments
// into tables.
package lowerbound
