package lowerbound

import (
	"math/rand"

	"wcle/internal/graph"
	"wcle/internal/sim"
)

// unionFind is a minimal disjoint-set structure over clique indices.
type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

// CGTracker observes a run on a LowerBound graph and maintains the
// clique-communication-graph statistics of Section 4.
type CGTracker struct {
	lb *graph.LowerBound

	// MsgsByClique counts messages sent by each clique's nodes.
	MsgsByClique []int64
	// FirstInterSend / FirstInterRecv record, per clique, the round of its
	// first inter-clique send/receive (-1 if never).
	FirstInterSend []int
	FirstInterRecv []int
	// MsgsBeforeInterSend snapshots a clique's send count just before its
	// first inter-clique message (the Lemma 18 quantity).
	MsgsBeforeInterSend []int64
	// InterMessages counts all messages crossing cliques.
	InterMessages int64
	// TotalMessages counts every observed message.
	TotalMessages int64

	edges map[[2]int]struct{}
	uf    *unionFind
}

var _ sim.Observer = (*CGTracker)(nil)

// NewCGTracker returns a tracker for runs on lb.
func NewCGTracker(lb *graph.LowerBound) *CGTracker {
	n := lb.NumCliques
	t := &CGTracker{
		lb:                  lb,
		MsgsByClique:        make([]int64, n),
		FirstInterSend:      make([]int, n),
		FirstInterRecv:      make([]int, n),
		MsgsBeforeInterSend: make([]int64, n),
		edges:               make(map[[2]int]struct{}),
		uf:                  newUnionFind(n),
	}
	for i := 0; i < n; i++ {
		t.FirstInterSend[i] = -1
		t.FirstInterRecv[i] = -1
	}
	return t
}

// OnSend implements sim.Observer.
func (t *CGTracker) OnSend(round int, from, fromPort, to, toPort int, m sim.Message) {
	cf, ct := t.lb.CliqueOf[from], t.lb.CliqueOf[to]
	t.TotalMessages++
	t.MsgsByClique[cf]++
	if cf == ct {
		return
	}
	t.InterMessages++
	if t.FirstInterSend[cf] == -1 {
		t.FirstInterSend[cf] = round
		t.MsgsBeforeInterSend[cf] = t.MsgsByClique[cf] - 1
	}
	if t.FirstInterRecv[ct] == -1 {
		t.FirstInterRecv[ct] = round
	}
	key := [2]int{cf, ct}
	if cf > ct {
		key = [2]int{ct, cf}
	}
	t.edges[key] = struct{}{}
	t.uf.union(cf, ct)
}

// CGEdges returns the number of distinct clique-communication-graph edges.
func (t *CGTracker) CGEdges() int { return len(t.edges) }

// Spontaneous reports whether clique c initiated inter-clique contact
// before (or without) hearing from any other clique — the paper's
// "spontaneous clique" surrogate observable in an execution.
func (t *CGTracker) Spontaneous(c int) bool {
	s := t.FirstInterSend[c]
	if s == -1 {
		return false
	}
	r := t.FirstInterRecv[c]
	return r == -1 || s <= r
}

// Components groups cliques into CG connected components (singletons
// included).
func (t *CGTracker) Components() [][]int {
	byRoot := make(map[int][]int)
	for c := 0; c < t.lb.NumCliques; c++ {
		r := t.uf.find(c)
		byRoot[r] = append(byRoot[r], c)
	}
	out := make([][]int, 0, len(byRoot))
	for c := 0; c < t.lb.NumCliques; c++ {
		if t.uf.find(c) == c {
			out = append(out, byRoot[c])
		}
	}
	return out
}

// DisjHolds checks the Lemma 20 event: every CG component contains at most
// one spontaneous clique, and every non-singleton component exactly one.
func (t *CGTracker) DisjHolds() bool {
	for _, comp := range t.Components() {
		spont := 0
		for _, c := range comp {
			if t.Spontaneous(c) {
				spont++
			}
		}
		if spont > 1 {
			return false
		}
		if len(comp) > 1 && spont != 1 {
			return false
		}
	}
	return true
}

// ComponentLeaderCounts maps each CG component to the number of leaders its
// cliques elected (the Y(C) variables of Section 4.4). leaders lists the
// node indices that raised the leader flag.
func (t *CGTracker) ComponentLeaderCounts(leaders []int) []int {
	leaderCliques := make(map[int]int)
	for _, v := range leaders {
		leaderCliques[t.lb.CliqueOf[v]]++
	}
	comps := t.Components()
	out := make([]int, len(comps))
	for i, comp := range comps {
		for _, c := range comp {
			out[i] += leaderCliques[c]
		}
	}
	return out
}

// ProbeFirstInterClique simulates the Lemma 18 process: a clique with
// totalPorts ports, interPorts of which lead outside, sends messages over
// uniformly random previously-unused ports; returns the number of messages
// sent up to and including the first inter-clique one. Sampling is without
// replacement, so the expectation is (totalPorts+1)/(interPorts+1).
func ProbeFirstInterClique(totalPorts, interPorts int, rng *rand.Rand) int {
	if interPorts <= 0 || totalPorts < interPorts {
		return 0
	}
	remaining := totalPorts
	inter := interPorts
	for sent := 1; ; sent++ {
		if rng.Intn(remaining) < inter {
			return sent
		}
		remaining--
		if remaining < inter {
			return totalPorts - interPorts + 1
		}
	}
}

// BridgeTracker observes runs on a dumbbell graph and records bridge
// crossings (the Theorem 28 "bridge crossing" problem).
type BridgeTracker struct {
	db *graph.Dumbbell

	// Crossings counts messages over either bridge edge.
	Crossings int64
	// FirstCrossRound is the round of the first crossing (-1 if none).
	FirstCrossRound int
	// MsgsBeforeCross counts all messages sent before the first crossing.
	MsgsBeforeCross int64
	// TotalMessages counts every observed message.
	TotalMessages int64
}

var _ sim.Observer = (*BridgeTracker)(nil)

// NewBridgeTracker returns a tracker for runs on db.
func NewBridgeTracker(db *graph.Dumbbell) *BridgeTracker {
	return &BridgeTracker{db: db, FirstCrossRound: -1}
}

// OnSend implements sim.Observer.
func (t *BridgeTracker) OnSend(round int, from, fromPort, to, toPort int, m sim.Message) {
	t.TotalMessages++
	if t.db.IsBridge(from, to) {
		t.Crossings++
		if t.FirstCrossRound == -1 {
			t.FirstCrossRound = round
			t.MsgsBeforeCross = t.TotalMessages - 1
		}
	}
}
