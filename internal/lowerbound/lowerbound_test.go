package lowerbound

import (
	"math"
	"math/rand"
	"testing"

	"wcle/internal/core"
	"wcle/internal/graph"
)

func testLB(t *testing.T, n int, alpha float64, seed int64) *graph.LowerBound {
	t.Helper()
	lb, err := graph.NewLowerBound(n, alpha, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return lb
}

type fakeMsg struct{}

func (fakeMsg) Bits() int    { return 8 }
func (fakeMsg) Kind() string { return "fake" }

func TestCGTrackerClassification(t *testing.T) {
	lb := testLB(t, 512, 1.0/196, 3)
	tr := NewCGTracker(lb)
	// Synthetic events: two intra-clique messages in clique 0, then an
	// inter-clique message from clique 0 to one of its super neighbors.
	c0 := lb.Cliques[0]
	tr.OnSend(1, c0[0], 0, c0[1], 0, fakeMsg{})
	tr.OnSend(2, c0[1], 0, c0[2], 0, fakeMsg{})
	if tr.InterMessages != 0 || tr.TotalMessages != 2 {
		t.Fatalf("intra counting wrong: %+v", tr)
	}
	// Find a real inter-clique edge from clique 0.
	var from, to int
	found := false
	for _, e := range lb.Edges() {
		if lb.InterClique(e.U, e.V) && lb.CliqueOf[e.U] == 0 {
			from, to = e.U, e.V
			found = true
			break
		}
		if lb.InterClique(e.U, e.V) && lb.CliqueOf[e.V] == 0 {
			from, to = e.V, e.U
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no inter-clique edge from clique 0")
	}
	tr.OnSend(5, from, 0, to, 0, fakeMsg{})
	if tr.InterMessages != 1 || tr.CGEdges() != 1 {
		t.Fatalf("inter counting wrong: inter=%d edges=%d", tr.InterMessages, tr.CGEdges())
	}
	if tr.MsgsBeforeInterSend[0] != 2 {
		t.Fatalf("msgs before inter = %d, want 2", tr.MsgsBeforeInterSend[0])
	}
	if !tr.Spontaneous(0) {
		t.Fatal("clique 0 should be spontaneous (sent before receiving)")
	}
	other := lb.CliqueOf[to]
	if tr.Spontaneous(other) {
		t.Fatal("receiver clique should not be spontaneous")
	}
	// Components: {0, other} merged, everything else singleton.
	comps := tr.Components()
	if len(comps) != lb.NumCliques-1 {
		t.Fatalf("components = %d, want %d", len(comps), lb.NumCliques-1)
	}
	if !tr.DisjHolds() {
		t.Fatal("Disj should hold for a single first contact")
	}
}

func TestCGTrackerDisjViolation(t *testing.T) {
	lb := testLB(t, 512, 1.0/196, 4)
	tr := NewCGTracker(lb)
	// Two cliques that both spontaneously contact each other violate Disj
	// (two spontaneous cliques in one component).
	var e graph.Edge
	for _, cand := range lb.Edges() {
		if lb.InterClique(cand.U, cand.V) {
			e = cand
			break
		}
	}
	tr.OnSend(1, e.U, 0, e.V, 0, fakeMsg{})
	tr.OnSend(1, e.V, 0, e.U, 0, fakeMsg{})
	if tr.DisjHolds() {
		t.Fatal("Disj should be violated by mutual spontaneous contact")
	}
}

func TestProbeExpectation(t *testing.T) {
	// Lemma 18 shape: with P total ports and 4 inter ports, the expected
	// number of messages before crossing is (P+1)/5 ~ Theta(P) = Theta(s^2)
	// = Theta(n^{2 eps}) = Theta(1/alpha).
	rng := rand.New(rand.NewSource(8))
	totalPorts := 30 * 29 // s = 30
	trials := 4000
	var sum float64
	for i := 0; i < trials; i++ {
		v := ProbeFirstInterClique(totalPorts, 4, rng)
		if v < 1 || v > totalPorts-4+1 {
			t.Fatalf("probe count %d out of range", v)
		}
		sum += float64(v)
	}
	mean := sum / float64(trials)
	want := float64(totalPorts+1) / 5
	if math.Abs(mean-want)/want > 0.08 {
		t.Fatalf("mean = %v, want ~%v", mean, want)
	}
}

func TestProbeDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if ProbeFirstInterClique(10, 0, rng) != 0 {
		t.Fatal("no inter ports should return 0")
	}
	if ProbeFirstInterClique(3, 4, rng) != 0 {
		t.Fatal("inter > total should return 0")
	}
	if got := ProbeFirstInterClique(4, 4, rng); got != 1 {
		t.Fatalf("all-inter should hit on first message, got %d", got)
	}
}

func TestBudgetedElectionOnLowerBoundGraph(t *testing.T) {
	// Lemma 19/20 shape: under a small message budget the CG stays sparse,
	// Disj holds, and the election cannot succeed globally.
	lb := testLB(t, 512, 1.0/196, 5)
	tr := NewCGTracker(lb)
	cfg := core.DefaultConfig()
	cfg.MaxWalkLen = 8
	res, err := core.Run(lb.Graph, cfg, core.RunOptions{
		Seed:     2,
		Budget:   2000,
		Observer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalMessages != res.Metrics.Messages {
		t.Fatalf("tracker saw %d, metrics %d", tr.TotalMessages, res.Metrics.Messages)
	}
	// s^2 ~ 1/alpha = 196 intra-edges-ish per clique; 2000 messages across
	// 24+ cliques discover few inter-clique edges.
	if tr.CGEdges() > lb.NumCliques {
		t.Fatalf("CG edges = %d, too dense for the budget", tr.CGEdges())
	}
	counts := tr.ComponentLeaderCounts(res.Leaders)
	var total int
	for _, c := range counts {
		total += c
	}
	if total != len(res.Leaders) {
		t.Fatalf("component leader counts %v don't add up to %d", counts, len(res.Leaders))
	}
}

func TestBridgeTrackerOnDumbbell(t *testing.T) {
	db, err := graph.NewDumbbell(24, 4, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	tr := NewBridgeTracker(db)
	cfg := core.DefaultConfig()
	cfg.AssumedN = db.Half // nodes believe the network is one half
	cfg.MaxWalkLen = 16
	res, err := core.Run(db.Graph, cfg, core.RunOptions{Seed: 3, Observer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalMessages != res.Metrics.Messages {
		t.Fatalf("tracker saw %d, metrics %d", tr.TotalMessages, res.Metrics.Messages)
	}
	if tr.Crossings > 0 && tr.FirstCrossRound < 0 {
		t.Fatal("first crossing round not recorded")
	}
	if tr.Crossings == 0 && tr.MsgsBeforeCross != 0 {
		t.Fatal("inconsistent crossing bookkeeping")
	}
	t.Logf("dumbbell assumed-n run: leaders=%d crossings=%d firstCross=%d msgs=%d",
		len(res.Leaders), tr.Crossings, tr.FirstCrossRound, res.Metrics.Messages)
}

// TestDumbbellTwoLeadersWithWrongN is the Theorem 28 headline: on a
// dumbbell of two cliques, when nodes believe n is one half's size and no
// information crosses the bridges before the first decision, the two halves
// elect independently — two leaders. We pin contenders away from the four
// bridge endpoints so phase-0 walks (length 1) cannot cross, which realizes
// the indistinguishability argument deterministically.
func TestDumbbellTwoLeadersWithWrongN(t *testing.T) {
	trials := 3
	for seed := int64(0); seed < int64(trials); seed++ {
		db, err := graph.NewDumbbellCliques(24, rand.New(rand.NewSource(100+seed)))
		if err != nil {
			t.Fatal(err)
		}
		var contenders []int
		bridge := map[int]bool{
			db.Bridges[0].U: true, db.Bridges[0].V: true,
			db.Bridges[1].U: true, db.Bridges[1].V: true,
		}
		for v := 0; v < db.N(); v++ {
			if !bridge[v] {
				contenders = append(contenders, v)
			}
		}
		cfg := core.DefaultConfig()
		cfg.AssumedN = db.Half
		cfg.ForcedContenders = contenders
		// Length-1 walks satisfy intersection on a clique but not
		// distinctness (half the lazy tokens rest on their origin); waiving
		// distinctness makes every contender stop in phase 0, whose
		// depth-1 trees cannot reach across a bridge.
		cfg.DisableDistinctness = true
		tr := NewBridgeTracker(db)
		res, err := core.Run(db.Graph, cfg, core.RunOptions{Seed: seed, Observer: tr})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Leaders) != 2 {
			t.Fatalf("seed %d: leaders = %v (crossings=%d), want one per side",
				seed, res.Leaders, tr.Crossings)
		}
		sides := map[int]bool{}
		for _, l := range res.Leaders {
			sides[db.SideOf[l]] = true
		}
		if len(sides) != 2 {
			t.Fatalf("seed %d: both leaders on the same side: %v", seed, res.Leaders)
		}
	}
}
