package lowerbound

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wcle/internal/graph"
)

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(6)
	uf.union(0, 1)
	uf.union(2, 3)
	uf.union(1, 2)
	if uf.find(0) != uf.find(3) {
		t.Fatal("0 and 3 should be connected")
	}
	if uf.find(4) == uf.find(0) || uf.find(4) != uf.find(4) {
		t.Fatal("4 should be a singleton")
	}
	if uf.find(5) == uf.find(4) {
		t.Fatal("singletons must be distinct")
	}
}

func TestComponentsPartition(t *testing.T) {
	lb := testLB(t, 512, 1.0/196, 9)
	tr := NewCGTracker(lb)
	// Link cliques 0-1 and 2-3 via synthetic inter-clique messages on real
	// edges (fall back to arbitrary representatives; the tracker only uses
	// clique membership of the endpoints).
	tr.OnSend(1, lb.Cliques[0][0], 0, lb.Cliques[1][0], 0, fakeMsg{})
	tr.OnSend(2, lb.Cliques[2][0], 0, lb.Cliques[3][0], 0, fakeMsg{})
	comps := tr.Components()
	// Partition: every clique appears exactly once.
	seen := make(map[int]bool)
	for _, comp := range comps {
		for _, c := range comp {
			if seen[c] {
				t.Fatalf("clique %d appears twice", c)
			}
			seen[c] = true
		}
	}
	if len(seen) != lb.NumCliques {
		t.Fatalf("partition covers %d cliques, want %d", len(seen), lb.NumCliques)
	}
	if len(comps) != lb.NumCliques-2 {
		t.Fatalf("components = %d, want %d", len(comps), lb.NumCliques-2)
	}
}

func TestComponentLeaderCountsMulti(t *testing.T) {
	lb := testLB(t, 512, 1.0/196, 10)
	tr := NewCGTracker(lb)
	tr.OnSend(1, lb.Cliques[0][0], 0, lb.Cliques[1][0], 0, fakeMsg{})
	// Leaders in cliques 0, 1 and 5: the merged component holds two.
	leaders := []int{lb.Cliques[0][1], lb.Cliques[1][2], lb.Cliques[5][0]}
	counts := tr.ComponentLeaderCounts(leaders)
	var two, one int
	for _, c := range counts {
		switch c {
		case 2:
			two++
		case 1:
			one++
		}
	}
	if two != 1 || one != 1 {
		t.Fatalf("component leader histogram wrong: %v", counts)
	}
}

// Property: ProbeFirstInterClique is always in [1, P-k+1] and its
// complementary CDF decreases (more inter ports -> earlier discovery in
// expectation).
func TestProbeMonotoneInInterPorts(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const total = 400
		trials := 200
		mean := func(k int) float64 {
			var s float64
			for i := 0; i < trials; i++ {
				s += float64(ProbeFirstInterClique(total, k, rng))
			}
			return s / float64(trials)
		}
		m4, m40 := mean(4), mean(40)
		return m40 < m4
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestBridgeTrackerNoCross(t *testing.T) {
	db, err := graph.NewDumbbellCliques(8, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	tr := NewBridgeTracker(db)
	// Intra-side traffic only.
	tr.OnSend(1, 0, 0, 2, 0, fakeMsg{})
	tr.OnSend(2, 9, 0, 10, 0, fakeMsg{})
	if tr.Crossings != 0 || tr.FirstCrossRound != -1 || tr.TotalMessages != 2 {
		t.Fatalf("tracker state: %+v", tr)
	}
	// Now a bridge message.
	tr.OnSend(5, db.Bridges[0].U, 0, db.Bridges[0].V, 0, fakeMsg{})
	if tr.Crossings != 1 || tr.FirstCrossRound != 5 || tr.MsgsBeforeCross != 2 {
		t.Fatalf("tracker state after cross: %+v", tr)
	}
}
