package obs

// Trace export and import: NDJSON (one Ev per line; the flight recorder's
// dump format and electsim -trace's stream format) and the Chrome
// trace-event JSON array that chrome://tracing and Perfetto load directly.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// WriteNDJSON writes events one JSON object per line.
func WriteNDJSON(w io.Writer, evs []Ev) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNDJSON parses an NDJSON trace stream; blank lines are skipped.
func ReadNDJSON(r io.Reader) ([]Ev, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	var out []Ev
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev Ev
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriterSink streams each emitted event as one NDJSON line (buffered).
// electsim -trace uses it; Flush before closing the underlying writer.
type WriterSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewWriterSink wraps w in a streaming NDJSON sink.
func NewWriterSink(w io.Writer) *WriterSink {
	bw := bufio.NewWriter(w)
	return &WriterSink{bw: bw, enc: json.NewEncoder(bw)}
}

var _ Sink = (*WriterSink)(nil)

// Emit implements Sink. The first write error sticks (see Err); later
// events are discarded.
func (s *WriterSink) Emit(ev Ev) {
	s.mu.Lock()
	if s.err == nil {
		s.err = s.enc.Encode(ev)
	}
	s.mu.Unlock()
}

// Flush drains the buffer and returns the first error seen.
func (s *WriterSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.bw.Flush()
	return s.err
}

// Err returns the sticky first error.
func (s *WriterSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// chromeEv is one trace-event object of the Chrome/Perfetto JSON format.
type chromeEv struct {
	Name  string           `json:"name"`
	Cat   string           `json:"cat,omitempty"`
	Ph    string           `json:"ph"`
	TS    float64          `json:"ts"` // microseconds
	Dur   float64          `json:"dur,omitempty"`
	PID   int              `json:"pid"`
	TID   int              `json:"tid"`
	Scope string           `json:"s,omitempty"`
	Args  map[string]int64 `json:"args,omitempty"`
}

// WriteChromeTrace converts events to the Chrome trace-event JSON array
// (complete "X" events for spans, "i" instants), loadable by Perfetto and
// chrome://tracing. Shards map to pids; categories map to per-pid tids
// with thread_name metadata, so each shard renders as one process with
// one lane per subsystem. Timestamps are rebased to the earliest event.
func WriteChromeTrace(w io.Writer, evs []Ev) error {
	var base int64
	for i, ev := range evs {
		if i == 0 || ev.TS < base {
			base = ev.TS
		}
	}
	// Stable category -> tid mapping across all shards.
	cats := map[string]int{}
	var catNames []string
	for _, ev := range evs {
		if _, ok := cats[ev.Cat]; !ok {
			cats[ev.Cat] = 0
			catNames = append(catNames, ev.Cat)
		}
	}
	sort.Strings(catNames)
	for i, c := range catNames {
		cats[c] = i
	}
	out := make([]json.RawMessage, 0, len(evs)+len(cats))
	add := func(ce chromeEv) error {
		b, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		out = append(out, b)
		return nil
	}
	seenPID := map[int]bool{}
	for _, ev := range evs {
		seenPID[ev.Shard] = true
	}
	for pid := range seenPID {
		for _, c := range catNames {
			nameArgs, _ := json.Marshal(struct {
				Name string `json:"name"`
			}{Name: c})
			meta, err := json.Marshal(struct {
				Name string          `json:"name"`
				Ph   string          `json:"ph"`
				PID  int             `json:"pid"`
				TID  int             `json:"tid"`
				Args json.RawMessage `json:"args"`
			}{Name: "thread_name", Ph: "M", PID: pid, TID: cats[c], Args: nameArgs})
			if err != nil {
				return err
			}
			out = append(out, meta)
		}
	}
	for _, ev := range evs {
		args := ev.Args
		if ev.Round >= 0 {
			args = make(map[string]int64, len(ev.Args)+1)
			for k, v := range ev.Args {
				args[k] = v
			}
			args["round"] = ev.Round
		}
		ce := chromeEv{
			Name: ev.Name,
			Cat:  ev.Cat,
			TS:   float64(ev.TS-base) / 1e3,
			PID:  ev.Shard,
			TID:  cats[ev.Cat],
			Args: args,
		}
		if ev.Dur > 0 {
			ce.Ph = "X"
			ce.Dur = float64(ev.Dur) / 1e3
		} else {
			ce.Ph = "i"
			ce.Scope = "t"
		}
		if err := add(ce); err != nil {
			return err
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	for i, b := range out {
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
