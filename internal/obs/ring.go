package obs

// The flight recorder: a bounded ring of the most recent events, always on
// in the cluster coordinator and every shard. Cheap enough to leave
// running (one mutex'd copy per event, fixed memory), and dumped as NDJSON
// on crash, re-election, or SIGQUIT — the artifact a dead shard leaves
// behind.

import (
	"io"
	"os"
	"sync"
)

// DefaultFlightCap bounds a Ring built with capacity <= 0.
const DefaultFlightCap = 4096

// Ring is a bounded ring-buffer Sink keeping the most recent events.
// Safe for concurrent use.
type Ring struct {
	mu      sync.Mutex
	buf     []Ev
	next    int
	full    bool
	dropped int64
}

// NewRing returns a ring keeping the last capacity events
// (DefaultFlightCap when capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultFlightCap
	}
	return &Ring{buf: make([]Ev, 0, capacity)}
}

var _ Sink = (*Ring)(nil)

// Emit implements Sink: the newest event overwrites the oldest once the
// ring is full (overwrites are counted as drops).
func (r *Ring) Emit(ev Ev) {
	r.mu.Lock()
	if !r.full && len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		if len(r.buf) == cap(r.buf) {
			r.full = true
		}
		r.mu.Unlock()
		return
	}
	r.full = true
	r.buf[r.next] = ev
	r.next = (r.next + 1) % cap(r.buf)
	r.dropped++
	r.mu.Unlock()
}

// Len reports how many events the ring currently holds.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Dropped reports how many events have been overwritten since creation.
func (r *Ring) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Snapshot copies the retained events out, oldest first.
func (r *Ring) Snapshot() []Ev {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Ev, 0, len(r.buf))
	if r.full && r.next > 0 {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
		return out
	}
	return append(out, r.buf...)
}

// WriteNDJSON dumps the retained events to w, oldest first.
func (r *Ring) WriteNDJSON(w io.Writer) error {
	return WriteNDJSON(w, r.Snapshot())
}

// DumpFile writes the retained events to path (truncating), via a rename
// so a reader never sees a half-written dump.
func (r *Ring) DumpFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := r.WriteNDJSON(f); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
