// Package obs is the observability spine: structured spans and instant
// events recorded by every runtime layer (sim rounds, cluster barriers,
// supervision epochs, fault planes), buffered in bounded flight-recorder
// rings or streamed as NDJSON, and exportable to Chrome trace-event JSON
// for Perfetto.
//
// The package is deliberately stdlib-only and imports nothing from the
// rest of the module, so the lowest layers (internal/sim) can depend on it
// without cycles. Tracing is strictly observational: a tracer only reads
// wall-clock time and never feeds it back into any scheduling decision,
// so a traced run stays byte-identical to an untraced one at the same
// seed — the keystone determinism contract holds with the recorder
// attached (enforced by test).
//
// A nil *Tracer is the disabled tracer: every method is a no-op behind a
// single nil check, which is what keeps the sim's send/step hot paths
// cheap when nobody is listening (the disabled-overhead benchmark in
// bench_test.go gates regressions).
package obs

import (
	"sync/atomic"
	"time"
)

// Ev is one trace record: a completed span (Dur > 0) or an instant event
// (Dur == 0). The NDJSON export writes one Ev per line.
type Ev struct {
	// TS is the event's wall-clock start in nanoseconds since the Unix
	// epoch. Observational only: no consumer may feed it back into
	// scheduling.
	TS int64 `json:"ts"`
	// Dur is the span's duration in nanoseconds; 0 marks an instant.
	Dur int64 `json:"dur,omitempty"`
	// Cat groups events by subsystem: "sim", "cluster", "epoch", "fault",
	// "kind", "job", ...
	Cat string `json:"cat"`
	// Name is the event within its category: "compute", "flush", "drain",
	// "elect", "death", ...
	Name string `json:"name"`
	// Shard is the recording shard (0 in-process / coordinator).
	Shard int `json:"shard"`
	// Round is the simulated round the event belongs to (-1 when the
	// event is not tied to a round: epochs, jobs).
	Round int64 `json:"round"`
	// Args carries small integer attributes (counts, node ids, epochs).
	Args map[string]int64 `json:"args,omitempty"`
}

// Sink receives finished events. Implementations must be safe for
// concurrent Emit calls: one tracer may be shared by the runner goroutine
// and a supervisor.
type Sink interface {
	Emit(Ev)
}

// Tracer stamps events with its shard id and hands them to its sink. The
// zero value is unusable; a nil *Tracer is the disabled tracer and every
// method on it is a cheap no-op.
type Tracer struct {
	shard   int
	sink    Sink
	emitted atomic.Int64
}

// New returns a tracer writing to sink. A nil sink yields a nil (disabled)
// tracer, so callers can thread an optional sink through unconditionally.
func New(sink Sink, shard int) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{shard: shard, sink: sink}
}

// Enabled reports whether events are being recorded. The hot-path guard:
// arg maps and counts should only be built when it returns true.
func (t *Tracer) Enabled() bool { return t != nil }

// Emitted returns how many events this tracer has recorded.
func (t *Tracer) Emitted() int64 {
	if t == nil {
		return 0
	}
	return t.emitted.Load()
}

// Shard returns the tracer's shard stamp.
func (t *Tracer) Shard() int {
	if t == nil {
		return 0
	}
	return t.shard
}

func (t *Tracer) emit(ev Ev) {
	ev.Shard = t.shard
	t.emitted.Add(1)
	t.sink.Emit(ev)
}

// Instant records a point event. round is -1 for events not tied to a
// simulated round; args may be nil.
func (t *Tracer) Instant(cat, name string, round int64, args map[string]int64) {
	if t == nil {
		return
	}
	t.emit(Ev{TS: time.Now().UnixNano(), Cat: cat, Name: name, Round: round, Args: args})
}

// Span is an in-flight timed region, created by Start and finished by End.
// The zero Span (from a disabled tracer) ignores every call.
type Span struct {
	t     *Tracer
	start time.Time
	cat   string
	name  string
	round int64
	args  map[string]int64
}

// Start opens a span. On a nil tracer it returns the inert zero Span
// without reading the clock.
func (t *Tracer) Start(cat, name string, round int64) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, start: time.Now(), cat: cat, name: name, round: round}
}

// Arg attaches one integer attribute to the span.
func (s *Span) Arg(k string, v int64) {
	if s.t == nil {
		return
	}
	if s.args == nil {
		s.args = make(map[string]int64, 4)
	}
	s.args[k] = v
}

// End closes the span and emits it. Idempotent: a second End is a no-op.
func (s *Span) End() {
	if s.t == nil {
		return
	}
	s.t.emit(Ev{
		TS:    s.start.UnixNano(),
		Dur:   int64(time.Since(s.start)),
		Cat:   s.cat,
		Name:  s.name,
		Round: s.round,
		Args:  s.args,
	})
	s.t = nil
}

// tee fans events out to several sinks.
type tee []Sink

func (t tee) Emit(ev Ev) {
	for _, s := range t {
		s.Emit(ev)
	}
}

// Tee combines sinks; nil members are elided. It returns nil when nothing
// remains (so New(Tee(), 0) is the disabled tracer) and the sink itself
// when exactly one remains.
func Tee(sinks ...Sink) Sink {
	var out tee
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
