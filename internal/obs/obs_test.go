package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// memSink collects events for assertions.
type memSink struct {
	mu  sync.Mutex
	evs []Ev
}

func (m *memSink) Emit(ev Ev) {
	m.mu.Lock()
	m.evs = append(m.evs, ev)
	m.mu.Unlock()
}

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Shard() != 0 || tr.Emitted() != 0 {
		t.Fatal("nil tracer accessors not zero")
	}
	tr.Instant("sim", "x", 1, nil)
	sp := tr.Start("sim", "compute", 3)
	sp.Arg("k", 1)
	sp.End()
	sp.End() // idempotent on zero span too

	if New(nil, 5) != nil {
		t.Fatal("New(nil sink) should return nil tracer")
	}
	if New(Tee(nil, nil), 5) != nil {
		t.Fatal("New(Tee of nils) should return nil tracer")
	}
}

func TestTracerEmitsStampedEvents(t *testing.T) {
	sink := &memSink{}
	tr := New(sink, 7)
	if !tr.Enabled() {
		t.Fatal("tracer should be enabled")
	}
	tr.Instant("fault", "crash", 12, map[string]int64{"node": 3})
	sp := tr.Start("sim", "compute", 12)
	sp.Arg("awake", 9)
	sp.End()
	sp.End() // second End must not double-emit

	if got := tr.Emitted(); got != 2 {
		t.Fatalf("emitted = %d, want 2", got)
	}
	if len(sink.evs) != 2 {
		t.Fatalf("sink has %d events, want 2", len(sink.evs))
	}
	in := sink.evs[0]
	if in.Shard != 7 || in.Cat != "fault" || in.Name != "crash" || in.Round != 12 || in.Dur != 0 {
		t.Fatalf("instant mis-stamped: %+v", in)
	}
	if in.Args["node"] != 3 {
		t.Fatalf("instant args lost: %+v", in.Args)
	}
	span := sink.evs[1]
	if span.Shard != 7 || span.Cat != "sim" || span.Name != "compute" || span.Round != 12 {
		t.Fatalf("span mis-stamped: %+v", span)
	}
	if span.Args["awake"] != 9 {
		t.Fatalf("span args lost: %+v", span.Args)
	}
	if span.Dur <= 0 {
		t.Fatalf("span duration not positive: %d", span.Dur)
	}
}

func TestTeeFansOutAndElidesNils(t *testing.T) {
	a, b := &memSink{}, &memSink{}
	if Tee() != nil {
		t.Fatal("empty Tee should be nil")
	}
	if got := Tee(nil, a, nil); got != Sink(a) {
		t.Fatal("single-sink Tee should return the sink itself")
	}
	tr := New(Tee(a, nil, b), 0)
	tr.Instant("x", "y", -1, nil)
	if len(a.evs) != 1 || len(b.evs) != 1 {
		t.Fatalf("tee fan-out: a=%d b=%d, want 1 each", len(a.evs), len(b.evs))
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(Ev{Round: int64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	snap := r.Snapshot()
	for i, ev := range snap {
		if want := int64(6 + i); ev.Round != want {
			t.Fatalf("snapshot[%d].Round = %d, want %d (oldest-first)", i, ev.Round, want)
		}
	}
}

func TestRingDefaultCap(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < DefaultFlightCap+10; i++ {
		r.Emit(Ev{Round: int64(i)})
	}
	if r.Len() != DefaultFlightCap {
		t.Fatalf("len = %d, want %d", r.Len(), DefaultFlightCap)
	}
	if r.Dropped() != 10 {
		t.Fatalf("dropped = %d, want 10", r.Dropped())
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Emit(Ev{Shard: g, Round: int64(i)})
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 64 {
		t.Fatalf("len = %d, want 64", r.Len())
	}
	if got := r.Dropped(); got != 8*200-64 {
		t.Fatalf("dropped = %d, want %d", got, 8*200-64)
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	evs := []Ev{
		{TS: 100, Dur: 50, Cat: "sim", Name: "compute", Shard: 1, Round: 3, Args: map[string]int64{"awake": 4}},
		{TS: 160, Cat: "fault", Name: "drop", Shard: 2, Round: 3},
		{TS: 200, Dur: 10, Cat: "cluster", Name: "drain", Shard: 1, Round: 4},
	}
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, evs); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Fatalf("NDJSON lines = %d, want 3", got)
	}
	back, err := ReadNDJSON(strings.NewReader(buf.String() + "\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(evs) {
		t.Fatalf("round trip length %d, want %d", len(back), len(evs))
	}
	for i := range evs {
		if back[i].TS != evs[i].TS || back[i].Dur != evs[i].Dur ||
			back[i].Cat != evs[i].Cat || back[i].Name != evs[i].Name ||
			back[i].Shard != evs[i].Shard || back[i].Round != evs[i].Round {
			t.Fatalf("round trip mismatch at %d: %+v vs %+v", i, back[i], evs[i])
		}
	}
	if back[0].Args["awake"] != 4 {
		t.Fatalf("args lost in round trip: %+v", back[0].Args)
	}
}

func TestReadNDJSONBadLine(t *testing.T) {
	_, err := ReadNDJSON(strings.NewReader("{\"cat\":\"sim\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 parse error, got %v", err)
	}
}

func TestWriterSinkStreams(t *testing.T) {
	var buf bytes.Buffer
	ws := NewWriterSink(&buf)
	tr := New(ws, 3)
	for i := 0; i < 5; i++ {
		tr.Instant("sim", "tick", int64(i), nil)
	}
	if err := ws.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := ws.Err(); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 5 {
		t.Fatalf("streamed %d events, want 5", len(back))
	}
	for i, ev := range back {
		if ev.Shard != 3 || ev.Round != int64(i) {
			t.Fatalf("streamed event %d wrong: %+v", i, ev)
		}
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	return 0, fmt.Errorf("disk full")
}

func TestWriterSinkStickyError(t *testing.T) {
	ws := NewWriterSink(&failWriter{})
	tr := New(ws, 0)
	// Overflow the bufio buffer so the write error surfaces.
	big := map[string]int64{}
	for i := 0; i < 64; i++ {
		big[strings.Repeat("k", 100)+fmt.Sprint(i)] = int64(i)
	}
	for i := 0; i < 200; i++ {
		tr.Instant("sim", "tick", int64(i), big)
	}
	if ws.Flush() == nil {
		t.Fatal("expected sticky error from failing writer")
	}
}

func TestDumpFile(t *testing.T) {
	r := NewRing(8)
	r.Emit(Ev{TS: 1, Cat: "sim", Name: "compute", Round: 0})
	r.Emit(Ev{TS: 2, Cat: "fault", Name: "crash", Round: 1})
	path := filepath.Join(t.TempDir(), "flight.ndjson")
	if err := r.DumpFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("tmp file left behind")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := ReadNDJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Name != "compute" || back[1].Name != "crash" {
		t.Fatalf("dump round trip wrong: %+v", back)
	}
}

func TestChromeTrace(t *testing.T) {
	evs := []Ev{
		{TS: 2_000_000, Dur: 500_000, Cat: "sim", Name: "compute", Shard: 0, Round: 1},
		{TS: 2_600_000, Cat: "fault", Name: "drop", Shard: 1, Round: 1},
		{TS: 1_000_000, Dur: 100_000, Cat: "cluster", Name: "drain", Shard: 1, Round: 0},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v", err)
	}
	var xCount, iCount, mCount int
	minTS := 1e18
	for _, e := range parsed {
		switch e["ph"] {
		case "X":
			xCount++
		case "i":
			iCount++
		case "M":
			mCount++
			continue
		}
		if ts, ok := e["ts"].(float64); ok && ts < minTS {
			minTS = ts
		}
	}
	if xCount != 2 || iCount != 1 {
		t.Fatalf("ph counts X=%d i=%d, want 2/1", xCount, iCount)
	}
	// 2 shards x 3 categories of thread_name metadata.
	if mCount != 6 {
		t.Fatalf("metadata events = %d, want 6", mCount)
	}
	if minTS != 0 {
		t.Fatalf("timestamps not rebased: min ts = %v", minTS)
	}
}
