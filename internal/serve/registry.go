package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"wcle/internal/graph"
	"wcle/internal/spectral"
)

// ErrSpecConflict is returned by Register when the name is already bound
// to a different spec (HTTP 409 at the wire).
var ErrSpecConflict = errors.New("serve: graph name already registered with a different spec")

// Registry is electd's graph store: named graph specs instantiated once,
// with a memoized spectral profile per graph. The election algorithm's
// cost is graph-dependent (O(tmix log^2 n) rounds), so the profile — the
// expensive part — is computed on first touch, deduplicated across
// concurrent first requests by a singleflight, and amortized over every
// later election on the same graph.
type Registry struct {
	mu     sync.RWMutex
	graphs map[string]*Registered

	profiles *flightCache
	// profileFn computes one graph's profile; tests swap it to count and
	// stall computations.
	profileFn func(g *graph.Graph) (*spectral.Profile, error)
	opts      spectral.ProfileOptions

	computes atomic.Int64
	hits     atomic.Int64
	misses   atomic.Int64
}

// Registered is one named graph.
type Registered struct {
	Name  string
	Spec  GraphSpec
	Graph *graph.Graph
}

// DefaultProfileWork bounds one profile computation in walk-step units
// (~ a few seconds of CPU) unless the caller overrides it. The service
// must stay live even when someone registers a badly-conditioned graph
// (a large cycle's tmix is Theta(n^2)): past the budget the profile
// resolves to a cached deterministic error, not an eternal computation.
const DefaultProfileWork = int64(1) << 31

// NewRegistry returns an empty registry whose profiles are computed at the
// given options (zero value = spectral defaults bounded by
// DefaultProfileWork).
func NewRegistry(opts spectral.ProfileOptions) *Registry {
	if opts.MaxWork == 0 {
		opts.MaxWork = DefaultProfileWork
	}
	r := &Registry{
		graphs:   make(map[string]*Registered),
		profiles: newFlightCache(),
		opts:     opts,
	}
	r.profileFn = func(g *graph.Graph) (*spectral.Profile, error) {
		return spectral.ComputeProfile(g, r.opts)
	}
	return r
}

// Register instantiates and stores spec under name. Re-registering the
// same name is idempotent when the spec is identical (so clients can
// blindly re-register on startup) and an error otherwise — a name's graph,
// and with it its cached profile, never changes once bound.
func (r *Registry) Register(name string, spec GraphSpec) (*Registered, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: graph name must be non-empty")
	}
	// Fast path and conflict check without building.
	if prev, ok := r.Get(name); ok {
		if specKey(prev.Spec) == specKey(spec) {
			return prev, nil
		}
		return nil, fmt.Errorf("%w: %q", ErrSpecConflict, name)
	}
	// Build outside the lock: an expensive generator (rr on a large n)
	// must not stall every Get — and with it all election traffic — for
	// the duration. Racing registrations of the same spec both build; the
	// loser's graph is garbage-collected.
	g, err := spec.Build()
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.graphs[name]; ok {
		if specKey(prev.Spec) == specKey(spec) {
			return prev, nil
		}
		return nil, fmt.Errorf("%w: %q", ErrSpecConflict, name)
	}
	reg := &Registered{Name: name, Spec: spec, Graph: g}
	r.graphs[name] = reg
	return reg, nil
}

// specKey is the identity of a spec for idempotent re-registration.
func specKey(s GraphSpec) string {
	return fmt.Sprintf("%s|%d|%d|%d|%d|%d|%d|%v",
		s.Family, s.N, s.D, s.Dim, s.Rows, s.Cols, s.Seed, s.Edges)
}

// Get returns the named graph.
func (r *Registry) Get(name string) (*Registered, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	g, ok := r.graphs[name]
	return g, ok
}

// Names lists the registered graph names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.graphs))
	for n := range r.graphs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Profile returns the named graph's spectral profile, computing it at most
// once per graph across all concurrent callers. The returned profile is
// shared and must not be mutated.
func (r *Registry) Profile(name string) (*spectral.Profile, error) {
	reg, ok := r.Get(name)
	if !ok {
		return nil, fmt.Errorf("serve: unknown graph %q", name)
	}
	val, err, hit := r.profiles.Do(name, func() (interface{}, error) {
		r.computes.Add(1)
		return r.profileFn(reg.Graph)
	})
	if hit {
		r.hits.Add(1)
	} else {
		r.misses.Add(1)
	}
	if err != nil {
		return nil, err
	}
	return val.(*spectral.Profile), nil
}

// CacheStats reports the profile cache counters: completed-entry hits,
// misses (computes plus waiters that joined an in-flight compute), and
// actual profile computations.
func (r *Registry) CacheStats() (hits, misses, computes int64) {
	return r.hits.Load(), r.misses.Load(), r.computes.Load()
}
