package serve

import (
	"sync"
	"sync/atomic"
	"testing"

	"wcle/internal/graph"
	"wcle/internal/spectral"
)

func TestRegistryRegister(t *testing.T) {
	r := NewRegistry(spectral.ProfileOptions{})
	spec := GraphSpec{Family: "clique", N: 8}
	reg, err := r.Register("k8", spec)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Graph.N() != 8 || reg.Graph.M() != 28 {
		t.Fatalf("clique sizes: n=%d m=%d", reg.Graph.N(), reg.Graph.M())
	}
	// Identical re-registration is idempotent and returns the same graph.
	again, err := r.Register("k8", spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.Graph != reg.Graph {
		t.Fatal("idempotent re-register must return the existing instance")
	}
	// A different spec under the same name conflicts.
	if _, err := r.Register("k8", GraphSpec{Family: "clique", N: 9}); err == nil {
		t.Fatal("conflicting spec not rejected")
	}
	if _, err := r.Register("bad", GraphSpec{Family: "nope", N: 8}); err == nil {
		t.Fatal("unknown family not rejected")
	}
	if _, err := r.Register("", spec); err == nil {
		t.Fatal("empty name not rejected")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "k8" {
		t.Fatalf("Names = %v", names)
	}
}

func TestGraphSpecExplicit(t *testing.T) {
	g, err := GraphSpec{Family: "explicit", Edges: [][2]int{{0, 1}, {1, 2}, {2, 0}}}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("triangle sizes: n=%d m=%d", g.N(), g.M())
	}
	if _, err := (GraphSpec{Family: "explicit"}).Build(); err == nil {
		t.Fatal("explicit graph without edges not rejected")
	}
	if _, err := (GraphSpec{Family: "explicit", Edges: [][2]int{{0, 0}}}).Build(); err == nil {
		t.Fatal("self-loop not rejected")
	}
}

// TestSpectralSingleflight is the cache-concurrency contract: many
// goroutines racing on a cold graph must trigger exactly one profile
// computation and all observe the identical cached value. Runs under the
// CI -race job.
func TestSpectralSingleflight(t *testing.T) {
	r := NewRegistry(spectral.ProfileOptions{})
	if _, err := r.Register("g", GraphSpec{Family: "clique", N: 8}); err != nil {
		t.Fatal(err)
	}
	var computes atomic.Int64
	gate := make(chan struct{})
	orig := r.profileFn
	r.profileFn = func(g *graph.Graph) (*spectral.Profile, error) {
		computes.Add(1)
		<-gate // hold the computation until every goroutine is racing
		return orig(g)
	}

	const goroutines = 64
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		profs   = make([]*spectral.Profile, 0, goroutines)
		started = make(chan struct{}, goroutines)
	)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			p, err := r.Profile("g")
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			profs = append(profs, p)
			mu.Unlock()
		}()
	}
	for i := 0; i < goroutines; i++ {
		<-started
	}
	close(gate)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("profile computed %d times, want exactly 1", got)
	}
	if len(profs) != goroutines {
		t.Fatalf("only %d/%d goroutines got a profile", len(profs), goroutines)
	}
	for _, p := range profs {
		if p != profs[0] {
			t.Fatal("goroutines observed different profile instances")
		}
	}
	if *profs[0] == (spectral.Profile{}) {
		t.Fatal("cached profile is empty")
	}
	hits, misses, computed := r.CacheStats()
	if computed != 1 || hits+misses != goroutines {
		t.Fatalf("cache stats hits=%d misses=%d computes=%d", hits, misses, computed)
	}

	// A later call is a pure hit: no new compute, same instance.
	p, err := r.Profile("g")
	if err != nil {
		t.Fatal(err)
	}
	if p != profs[0] || computes.Load() != 1 {
		t.Fatal("warm call recomputed or returned a different instance")
	}
	hits2, _, _ := r.CacheStats()
	if hits2 <= hits {
		t.Fatalf("warm call did not count as a hit (%d -> %d)", hits, hits2)
	}
}

func TestProfileUnknownGraph(t *testing.T) {
	r := NewRegistry(spectral.ProfileOptions{})
	if _, err := r.Profile("missing"); err == nil {
		t.Fatal("profile of unregistered graph not rejected")
	}
}

// A profile that fails (disconnected graph: the walk never mixes) is
// cached like a value: the error is deterministic, so recomputing it on
// every request would be pure waste.
func TestProfileErrorCached(t *testing.T) {
	r := NewRegistry(spectral.ProfileOptions{Tmax: 100})
	spec := GraphSpec{Family: "explicit", Edges: [][2]int{{0, 1}, {2, 3}}}
	if _, err := r.Register("disc", spec); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Profile("disc"); err == nil {
		t.Fatal("disconnected graph should fail to profile")
	}
	if _, err := r.Profile("disc"); err == nil {
		t.Fatal("cached failure should still be a failure")
	}
	_, _, computes := r.CacheStats()
	if computes != 1 {
		t.Fatalf("failed profile recomputed: %d computes", computes)
	}
}
