package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts
}

func doJSON(t *testing.T, method, url string, body interface{}, out interface{}) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s %s response %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, raw
}

func waitForJob(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		code, raw := doJSON(t, "GET", base+"/v1/elections/"+id, nil, &st)
		if code != http.StatusOK {
			t.Fatalf("job status %d: %s", code, raw)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return JobStatus{}
}

func promValue(t *testing.T, base, metric string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(raw), "\n") {
		var v float64
		if _, err := fmt.Sscanf(line, metric+" %f", &v); err == nil {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", metric, raw)
	return 0
}

// TestListProtocols: the protocol registry is discoverable over HTTP,
// election backends flagged apart from the dissemination substrates.
func TestListProtocols(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var infos []ProtocolInfo
	code, raw := doJSON(t, "GET", ts.URL+"/v1/protocols", nil, &infos)
	if code != http.StatusOK || len(infos) < 7 {
		t.Fatalf("list protocols: %d %s", code, raw)
	}
	byName := map[string]ProtocolInfo{}
	for _, info := range infos {
		byName[info.Name] = info
	}
	if p, ok := byName["pushpull"]; !ok || p.Election || len(p.Slots) == 0 {
		t.Fatalf("pushpull listing wrong: %+v", byName["pushpull"])
	}
	if p, ok := byName["gilbertrs18"]; !ok || !p.Election || len(p.Slots) == 0 {
		t.Fatalf("gilbertrs18 listing wrong: %+v", byName["gilbertrs18"])
	}
}

// TestEndToEndElection is the service smoke: register a clique over HTTP,
// submit a batch, poll to completion, check the unique leader and the
// summaries, and watch the spectral cache go from cold to hot in /metrics.
func TestEndToEndElection(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	base := ts.URL

	var info GraphInfo
	code, raw := doJSON(t, "POST", base+"/v1/graphs",
		RegisterRequest{Name: "k32", Spec: GraphSpec{Family: "clique", N: 32}}, &info)
	if code != http.StatusCreated || info.N != 32 {
		t.Fatalf("register: %d %s", code, raw)
	}

	submit := SubmitRequest{Seed: 7, Points: []PointSpec{{Graph: "k32", Trials: 6}}}
	var sub SubmitResponse
	code, raw = doJSON(t, "POST", base+"/v1/elections", submit, &sub)
	if code != http.StatusAccepted || sub.ID == "" {
		t.Fatalf("submit: %d %s", code, raw)
	}

	st := waitForJob(t, base, sub.ID)
	if st.State != StateDone {
		t.Fatalf("job failed: %+v", st)
	}
	if st.Result == nil || len(st.Result.Points) != 1 {
		t.Fatalf("missing result: %+v", st)
	}
	pt := st.Result.Points[0]
	if !pt.UniqueLeader || pt.One != 6 {
		t.Fatalf("no unique leader on a clique: %+v", pt)
	}
	if pt.Messages <= 0 || pt.Rounds <= 0 {
		t.Fatalf("empty totals: %+v", pt)
	}
	for _, key := range []string{"rounds", "messages", "contenders"} {
		agg, ok := pt.Summaries[key]
		if !ok || agg.N != 6 {
			t.Fatalf("summary %q missing or short: %+v", key, pt.Summaries)
		}
	}
	if pt.Spectral == nil || pt.Spectral.Tmix <= 0 {
		t.Fatalf("spectral profile not surfaced: %+v", pt)
	}
	if st.Timing == nil {
		t.Fatal("timing missing on a finished job")
	}

	// First job computed the profile once (a miss); a second job on the
	// same graph must hit the cache, observable in /metrics.
	if v := promValue(t, base, "electd_spectral_computes_total"); v != 1 {
		t.Fatalf("computes after first job = %v", v)
	}
	hitsBefore := promValue(t, base, "electd_spectral_cache_hits_total")
	code, raw = doJSON(t, "POST", base+"/v1/elections", submit, &sub)
	if code != http.StatusAccepted {
		t.Fatalf("second submit: %d %s", code, raw)
	}
	if st := waitForJob(t, base, sub.ID); st.State != StateDone {
		t.Fatalf("second job failed: %+v", st)
	}
	if v := promValue(t, base, "electd_spectral_computes_total"); v != 1 {
		t.Fatalf("second job recomputed the profile: computes = %v", v)
	}
	if v := promValue(t, base, "electd_spectral_cache_hits_total"); v <= hitsBefore {
		t.Fatalf("cache hit not observable: %v -> %v", hitsBefore, v)
	}
	if v := promValue(t, base, "electd_elections_served_total"); v != 12 {
		t.Fatalf("elections served = %v, want 12", v)
	}
	if v := promValue(t, base, "electd_jobs_done_total"); v != 2 {
		t.Fatalf("jobs done = %v, want 2", v)
	}

	// GET /v1/graphs/{name} serves the cached profile without recompute.
	code, raw = doJSON(t, "GET", base+"/v1/graphs/k32", nil, &info)
	if code != http.StatusOK || info.Spectral == nil {
		t.Fatalf("graph info: %d %s", code, raw)
	}
	if v := promValue(t, base, "electd_spectral_computes_total"); v != 1 {
		t.Fatalf("graph info recomputed the profile: %v", v)
	}
}

// TestDeterministicResults submits the identical request to two fresh
// server instances and requires byte-identical "result" objects — the
// service-level replay contract (wall clock lives in "timing", outside
// the comparison).
func TestDeterministicResults(t *testing.T) {
	req := SubmitRequest{Seed: 42, Points: []PointSpec{
		{Graph: "k16", Trials: 4},
		{Graph: "k16", Trials: 3, Resend: 1, Fault: FaultSpec{Drop: 0.05}},
	}}
	results := make([][]byte, 2)
	for i := range results {
		_, ts := newTestServer(t, Options{
			Graphs: map[string]GraphSpec{"k16": {Family: "clique", N: 16}},
		})
		var sub SubmitResponse
		code, raw := doJSON(t, "POST", ts.URL+"/v1/elections", req, &sub)
		if code != http.StatusAccepted {
			t.Fatalf("submit: %d %s", code, raw)
		}
		st := waitForJob(t, ts.URL, sub.ID)
		if st.State != StateDone {
			t.Fatalf("job failed: %+v", st)
		}
		b, err := json.Marshal(st.Result)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = b
	}
	if !bytes.Equal(results[0], results[1]) {
		t.Fatalf("results differ across runs:\n%s\n%s", results[0], results[1])
	}
}

// TestAlgorithmBackends exercises the per-point "algorithm" field: one job
// runs all three registered backends on the same clique, every point must
// elect a unique leader, echo its resolved backend, and show up in the
// per-backend /metrics counters. Naming the default explicitly must
// replay the exact same point as omitting it (the seed-key contract).
func TestAlgorithmBackends(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Graphs: map[string]GraphSpec{"k32": {Family: "clique", N: 32}},
	})
	base := ts.URL

	run := func(req SubmitRequest) []PointResult {
		t.Helper()
		var sub SubmitResponse
		code, raw := doJSON(t, "POST", base+"/v1/elections", req, &sub)
		if code != http.StatusAccepted {
			t.Fatalf("submit: %d %s", code, raw)
		}
		st := waitForJob(t, base, sub.ID)
		if st.State != StateDone {
			t.Fatalf("job failed: %+v", st)
		}
		return st.Result.Points
	}

	pts := run(SubmitRequest{Seed: 11, Points: []PointSpec{
		{Graph: "k32", Trials: 4},
		{Graph: "k32", Trials: 4, Algorithm: "floodmax"},
		{Graph: "k32", Trials: 4, Algorithm: "kpprt"},
	}})
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	wantAlgo := []string{"gilbertrs18", "floodmax", "kpprt"}
	for i, pt := range pts {
		if pt.Algorithm != wantAlgo[i] {
			t.Fatalf("point %d: algorithm %q, want %q", i, pt.Algorithm, wantAlgo[i])
		}
		// Safety is absolute for every backend; the zero-leader tail is
		// the gilbertrs18 algorithm's documented w.h.p. slack (Lemma 11).
		if pt.Multi != 0 || pt.One < 3 {
			t.Fatalf("point %d (%s): outcomes %+v", i, pt.Algorithm, pt)
		}
		if pt.Algorithm != "gilbertrs18" && !pt.UniqueLeader {
			t.Fatalf("point %d (%s): no unique leader: %+v", i, pt.Algorithm, pt)
		}
		if pt.Messages <= 0 {
			t.Fatalf("point %d (%s): empty totals: %+v", i, pt.Algorithm, pt)
		}
	}
	// FloodMax on a clique must pay Omega(m) while kpprt stays sublinear.
	if pts[1].Messages <= pts[2].Messages {
		t.Fatalf("floodmax (%d msgs) should dwarf kpprt (%d msgs)", pts[1].Messages, pts[2].Messages)
	}

	// Omitting the algorithm and naming the default explicitly must be
	// the same point: identical seed key, identical result bytes.
	implicit := run(SubmitRequest{Seed: 23, Points: []PointSpec{{Graph: "k32", Trials: 4}}})
	explicit := run(SubmitRequest{Seed: 23, Points: []PointSpec{
		{Graph: "k32", Trials: 4, Algorithm: "gilbertrs18"}}})
	b0, _ := json.Marshal(implicit[0])
	b1, _ := json.Marshal(explicit[0])
	if !bytes.Equal(b0, b1) {
		t.Fatalf("default-algorithm points diverged:\n%s\n%s", b0, b1)
	}

	for algoName, want := range map[string]float64{"gilbertrs18": 12, "floodmax": 4, "kpprt": 4} {
		metric := fmt.Sprintf("electd_elections_by_algorithm_total{algorithm=%q}", algoName)
		if v := promValue(t, base, metric); v != want {
			t.Fatalf("%s = %v, want %v", metric, v, want)
		}
	}

	// Unknown backends are client errors at submission, not queued work.
	code, raw := doJSON(t, "POST", base+"/v1/elections", SubmitRequest{
		Seed: 1, Points: []PointSpec{{Graph: "k32", Trials: 1, Algorithm: "paxos"}},
	}, nil)
	if code != http.StatusBadRequest || !strings.Contains(string(raw), "unknown algorithm") {
		t.Fatalf("unknown algorithm: %d %s", code, raw)
	}
}

// TestBackpressure fills the bounded queue and requires 429 with
// Retry-After. The worker is held on the first job by the test hook, so
// queue occupancy is deterministic, not a race.
func TestBackpressure(t *testing.T) {
	running := make(chan struct{}, 8)
	release := make(chan struct{})
	s, ts := newTestServer(t, Options{
		Workers:  1,
		QueueCap: 1,
		Graphs:   map[string]GraphSpec{"k8": {Family: "clique", N: 8}},
		testBeforeRun: func(j *Job) {
			running <- struct{}{}
			<-release
		},
	})
	defer close(release)

	submit := func() (int, []byte) {
		return doJSON(t, "POST", ts.URL+"/v1/elections",
			SubmitRequest{Seed: 1, Points: []PointSpec{{Graph: "k8", Trials: 1}}}, nil)
	}
	// Job 1 is picked up by the (held) worker: the queue is empty again.
	if code, raw := submit(); code != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", code, raw)
	}
	<-running
	// Job 2 occupies the single queue slot.
	if code, raw := submit(); code != http.StatusAccepted {
		t.Fatalf("second submit: %d %s", code, raw)
	}
	// Job 3 must bounce with backpressure.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/elections",
		strings.NewReader(`{"seed":1,"points":[{"graph":"k8","trials":1}]}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if v := promValue(t, ts.URL, "electd_jobs_rejected_total"); v != 1 {
		t.Fatalf("rejected counter = %v", v)
	}
	if v := promValue(t, ts.URL, "electd_queue_depth"); v != 1 {
		t.Fatalf("queue depth = %v", v)
	}
	// The deferred close releases the worker before the cleanup drain, so
	// both accepted jobs finish and the drain returns.
	_ = s
}

// TestValidationErrors exercises the 4xx surface.
func TestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Graphs: map[string]GraphSpec{"k8": {Family: "clique", N: 8}},
	})
	cases := []struct {
		body string
		want int
	}{
		{`{"seed":1,"points":[]}`, http.StatusBadRequest},
		{`{"seed":1,"points":[{"graph":"nope","trials":1}]}`, http.StatusBadRequest},
		{`{"seed":1,"points":[{"graph":"k8","trials":0}]}`, http.StatusBadRequest},
		{`{"seed":1,"points":[{"graph":"k8","trials":1,"fault":{"drop":1.5}}]}`, http.StatusBadRequest},
		{`{"seed":1,"bogus_field":true}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/elections", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("submit %q = %d, want %d", c.body, resp.StatusCode, c.want)
		}
	}
	// Unknown job and graph are 404s.
	for _, url := range []string{"/v1/elections/job-999999", "/v1/graphs/none"} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", url, resp.StatusCode)
		}
	}
	// Conflicting graph registration is a 409.
	code, _ := doJSON(t, "POST", ts.URL+"/v1/graphs",
		RegisterRequest{Name: "k8", Spec: GraphSpec{Family: "clique", N: 9}}, nil)
	if code != http.StatusConflict {
		t.Errorf("conflicting register = %d, want 409", code)
	}
}

// TestGracefulDrain: draining flips healthz to 503, rejects new
// submissions with 503, and finishes in-flight work.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Graphs: map[string]GraphSpec{"k8": {Family: "clique", N: 8}},
	})
	var sub SubmitResponse
	code, raw := doJSON(t, "POST", ts.URL+"/v1/elections",
		SubmitRequest{Seed: 3, Points: []PointSpec{{Graph: "k8", Trials: 2}}}, &sub)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, raw)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The in-flight job finished during the drain.
	st := waitForJob(t, ts.URL, sub.ID)
	if st.State != StateDone {
		t.Fatalf("in-flight job not finished by drain: %+v", st)
	}
	// New work is refused, and health reflects the drain.
	code, _ = doJSON(t, "POST", ts.URL+"/v1/elections",
		SubmitRequest{Seed: 3, Points: []PointSpec{{Graph: "k8", Trials: 1}}}, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit = %d, want 503", code)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain healthz = %d, want 503", resp.StatusCode)
	}
	// Drain is idempotent.
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestJobRetention: finished jobs beyond the retention cap are evicted
// oldest-first (404), so a long-running daemon's job map stays bounded.
func TestJobRetention(t *testing.T) {
	_, ts := newTestServer(t, Options{
		RetainJobs: 2,
		Graphs:     map[string]GraphSpec{"k8": {Family: "clique", N: 8}},
	})
	ids := make([]string, 4)
	for i := range ids {
		var sub SubmitResponse
		code, raw := doJSON(t, "POST", ts.URL+"/v1/elections",
			SubmitRequest{Seed: int64(i), Points: []PointSpec{{Graph: "k8", Trials: 1}}}, &sub)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, code, raw)
		}
		ids[i] = sub.ID
		if st := waitForJob(t, ts.URL, sub.ID); st.State != StateDone {
			t.Fatalf("job %d failed: %+v", i, st)
		}
	}
	// The two oldest are evicted, the two newest still queryable.
	for i, id := range ids {
		resp, err := http.Get(ts.URL + "/v1/elections/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		want := http.StatusOK
		if i < 2 {
			want = http.StatusNotFound
		}
		if resp.StatusCode != want {
			t.Errorf("job %d (%s) status = %d, want %d", i, id, resp.StatusCode, want)
		}
	}
}
