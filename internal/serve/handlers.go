package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"wcle/internal/algo"
	"wcle/internal/engine"
	"wcle/internal/obs"
	"wcle/internal/spectral"
)

// Options parameterizes NewServer.
type Options struct {
	// Scheduler sizing; see SchedulerOptions.
	Workers         int
	QueueCap        int
	ElectionWorkers int
	RetainJobs      int
	// Spectral bounds the registry's profile computations (zero value =
	// spectral defaults).
	Spectral spectral.ProfileOptions
	// Graphs pre-registers named graphs at construction (e.g. from a
	// daemon's -graphs file); construction fails if any spec is invalid.
	Graphs map[string]GraphSpec
	// Cluster, when non-nil, dispatches every election to a wire-level
	// cluster instead of the in-process engine (electd -cluster).
	Cluster ClusterElector
	// TraceSink, when non-nil, receives every trace event in addition to
	// the always-on flight recorder (electd -trace).
	TraceSink obs.Sink
	// FlightCap sizes the flight recorder (0 = obs.DefaultFlightCap).
	FlightCap int
	// testBeforeRun is the scheduler's test hook (see SchedulerOptions).
	testBeforeRun func(*Job)
}

// Server wires the registry, scheduler, and metrics behind an HTTP mux.
// It embeds no listener: cmd/electd (and the tests, via httptest) bring
// their own.
type Server struct {
	Registry *Registry
	Sched    *Scheduler
	Met      *Metrics
	// Flight is the always-on flight recorder; Tracer feeds it (and the
	// optional TraceSink) from every election the daemon runs.
	Flight *obs.Ring
	Tracer *obs.Tracer
	mux    *http.ServeMux
}

// NewServer builds the service stack.
func NewServer(opts Options) (*Server, error) {
	met := NewMetrics()
	reg := NewRegistry(opts.Spectral)
	for name, spec := range opts.Graphs {
		if _, err := reg.Register(name, spec); err != nil {
			return nil, fmt.Errorf("serve: pre-registering %q: %w", name, err)
		}
	}
	flight := obs.NewRing(opts.FlightCap)
	tracer := obs.New(obs.Tee(flight, opts.TraceSink), 0)
	met.TraceStats = func() (int64, int64) { return tracer.Emitted(), flight.Dropped() }
	s := &Server{
		Registry: reg,
		Sched: NewScheduler(reg, met, SchedulerOptions{
			Workers:         opts.Workers,
			QueueCap:        opts.QueueCap,
			ElectionWorkers: opts.ElectionWorkers,
			RetainJobs:      opts.RetainJobs,
			Cluster:         opts.Cluster,
			Tracer:          tracer,
			testBeforeRun:   opts.testBeforeRun,
		}),
		Met:    met,
		Flight: flight,
		Tracer: tracer,
		mux:    http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/graphs", s.handleRegisterGraph)
	s.mux.HandleFunc("GET /v1/graphs", s.handleListGraphs)
	s.mux.HandleFunc("GET /v1/graphs/{name}", s.handleGetGraph)
	s.mux.HandleFunc("GET /v1/protocols", s.handleListProtocols)
	s.mux.HandleFunc("POST /v1/elections", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/elections/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /flightz", s.handleFlightz)
	return s, nil
}

// handleFlightz streams the flight recorder's current contents as NDJSON —
// the last obs.DefaultFlightCap trace events of whatever the daemon ran,
// electtrace-readable.
func (s *Server) handleFlightz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = s.Flight.WriteNDJSON(w)
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops accepting elections and waits for in-flight jobs (bounded
// by ctx). The ops surface stays up so orchestration sees the drain.
func (s *Server) Drain(ctx context.Context) error { return s.Sched.Drain(ctx) }

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// maxBodyBytes caps request bodies (an explicit edge list within the
// MaxGraphEdges cap fits comfortably; nothing legitimate is larger).
const maxBodyBytes = 8 << 20

// decodeBody strictly decodes a JSON body (unknown fields are client
// errors: a misspelled knob silently ignored would elect with defaults),
// bounded so a huge body cannot balloon the daemon's memory.
func decodeBody(w http.ResponseWriter, r *http.Request, v interface{}) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: bad request body: %w", err)
	}
	return nil
}

func (s *Server) handleRegisterGraph(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	reg, err := s.Registry.Register(req.Name, req.Spec)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrSpecConflict) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, GraphInfo{
		Name: reg.Name, Spec: reg.Spec, N: reg.Graph.N(), M: reg.Graph.M(),
	})
}

func (s *Server) handleListGraphs(w http.ResponseWriter, r *http.Request) {
	names := s.Registry.Names()
	out := make([]GraphInfo, 0, len(names))
	for _, name := range names {
		reg, ok := s.Registry.Get(name)
		if !ok {
			continue
		}
		info := GraphInfo{Name: name, Spec: reg.Spec, N: reg.Graph.N(), M: reg.Graph.M()}
		// Only completed profiles are attached here; listing must never
		// trigger the expensive computation.
		if val, err, ok := s.Registry.profiles.Peek(name); ok && err == nil {
			info.Spectral = val.(*spectral.Profile)
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetGraph(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	reg, ok := s.Registry.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown graph %q", name))
		return
	}
	info := GraphInfo{Name: name, Spec: reg.Spec, N: reg.Graph.N(), M: reg.Graph.M()}
	// ?spectral=0 skips the profile (first touch on a big graph computes
	// it inline, which a latency-sensitive caller may not want to pay).
	if r.URL.Query().Get("spectral") != "0" {
		prof, err := s.Registry.Profile(name)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity,
				fmt.Errorf("serve: spectral profile of %q: %w", name, err))
			return
		}
		info.Spectral = prof
	}
	writeJSON(w, http.StatusOK, info)
}

// handleListProtocols reports the engine's protocol registry: everything
// runnable through the generic engine, election backends flagged. The
// slot labels come from a zero-config instantiation; a protocol whose
// builder rejects the zero Config still lists, just without slots.
func (s *Server) handleListProtocols(w http.ResponseWriter, r *http.Request) {
	names := engine.Names()
	out := make([]ProtocolInfo, 0, len(names))
	for _, name := range names {
		info := ProtocolInfo{Name: name, Election: algo.Known(name)}
		if p, err := engine.New(name, engine.Config{}); err == nil {
			info.Slots = p.Slots()
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.Sched.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Backpressure: the client should retry later, and says so.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	loc := "/v1/elections/" + job.ID
	w.Header().Set("Location", loc)
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: job.ID, State: job.State(), Location: loc})
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.Sched.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Sched.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	depth, capacity, running := s.Sched.QueueDepth()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.Met.WriteProm(w, s.Registry, depth, capacity, running)
}
