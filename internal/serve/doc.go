// Package serve is the election service layer behind cmd/electd: a
// long-running HTTP/JSON daemon that serves batch leader elections on top
// of the algo backend registry and its sharded batch engine
// (algo.RunMany), so one daemon compares every registered protocol —
// gilbertrs18, floodmax, kpprt — under identical seeds and graphs.
//
// It has three parts:
//
//   - Registry: named graph specs (a generator family with parameters, or
//     an explicit edge list) instantiated once, with a memoized spectral
//     profile per graph (tmix, lambda_2, Cheeger conductance bounds)
//     computed behind a singleflight so concurrent first requests pay for
//     one computation. The algorithm's cost is graph-dependent —
//     O(tmix log^2 n) rounds — so the profile is the expensive,
//     amortizable part, and it is surfaced in responses so callers can
//     predict a run's cost before paying for it.
//
//   - Scheduler: bounded-queue batch submission. POST /v1/elections
//     enqueues a job of points (graph x trials x algorithm x fault plane
//     x resend); each point runs as one algo.RunMany batch of its chosen
//     backend across the MultiRunner worker pool with seeds derived from
//     the job's master seed via the sim.SeedForKey contract, so a job's
//     "result" object is a deterministic, byte-identical function of
//     (registered graphs, request). A full queue rejects with 429
//     (backpressure); wall-clock observations are fenced into a separate
//     "timing" object.
//
//   - Ops surface: GET /healthz, GET /metrics (Prometheus text:
//     elections served, queue depth, spectral cache hit rate, p50/p99 job
//     latency), and graceful drain — on SIGTERM the daemon stops
//     accepting, finishes in-flight jobs, then exits.
package serve
