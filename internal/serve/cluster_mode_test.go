package serve_test

// Cluster-mode electd: the scheduler dispatches elections to a wire-level
// cluster and must produce byte-identical job results to the in-process
// engine for the same request — the determinism contract extended through
// the service layer.

import (
	"encoding/json"
	"testing"
	"time"

	"wcle/internal/cluster"
	"wcle/internal/serve"
)

// runJob submits a request and waits it out.
func runJob(t *testing.T, srv *serve.Server, req serve.SubmitRequest) serve.JobStatus {
	t.Helper()
	job, err := srv.Sched.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := job.Status()
		if st.State == serve.StateDone {
			return st
		}
		if st.State == serve.StateFailed {
			t.Fatalf("job failed: %s", st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return serve.JobStatus{}
}

func TestClusterModeMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full elections over loopback TCP; skipped in -short mode")
	}
	local, err := cluster.StartLocal(3)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	client, err := cluster.Dial(local.Coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	graphs := map[string]serve.GraphSpec{"g": {Family: "clique", N: 16, Seed: 3}}
	inproc, err := serve.NewServer(serve.Options{Graphs: graphs})
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := serve.NewServer(serve.Options{Graphs: graphs, Cluster: client})
	if err != nil {
		t.Fatal(err)
	}

	req := serve.SubmitRequest{Seed: 99, Points: []serve.PointSpec{
		{Graph: "g", Trials: 3, Algorithm: "kpprt"},
		{Graph: "g", Trials: 2},
	}}
	want := runJob(t, inproc, req)
	got := runJob(t, clustered, req)

	wantJSON, _ := json.Marshal(want.Result)
	gotJSON, _ := json.Marshal(got.Result)
	if string(wantJSON) != string(gotJSON) {
		t.Fatalf("cluster-mode job diverged from in-process:\n in-process: %s\n cluster:    %s", wantJSON, gotJSON)
	}
}

// TestClusterModeFaultsMatchInProcess: fault planes ride along on
// cluster dispatch (they are shard-safe), so a faulty job's result is
// byte-identical to the in-process engine too.
func TestClusterModeFaultsMatchInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("runs faulty elections over loopback TCP; skipped in -short mode")
	}
	local, err := cluster.StartLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	client, err := cluster.Dial(local.Coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	graphs := map[string]serve.GraphSpec{"g": {Family: "clique", N: 16, Seed: 1}}
	inproc, err := serve.NewServer(serve.Options{Graphs: graphs})
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := serve.NewServer(serve.Options{Graphs: graphs, Cluster: client})
	if err != nil {
		t.Fatal(err)
	}

	req := serve.SubmitRequest{Seed: 7, Points: []serve.PointSpec{
		{Graph: "g", Trials: 2, Resend: 2, Fault: serve.FaultSpec{Drop: 0.05, DelayMax: 2}},
		{Graph: "g", Trials: 2, Algorithm: "kpprt", Fault: serve.FaultSpec{CrashFrac: 0.2, CrashRound: 2}},
	}}
	want := runJob(t, inproc, req)
	got := runJob(t, clustered, req)

	wantJSON, _ := json.Marshal(want.Result)
	gotJSON, _ := json.Marshal(got.Result)
	if string(wantJSON) != string(gotJSON) {
		t.Fatalf("faulty cluster-mode job diverged from in-process:\n in-process: %s\n cluster:    %s", wantJSON, gotJSON)
	}
}
