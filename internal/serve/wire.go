package serve

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"wcle/internal/algo"
	"wcle/internal/graph"
	"wcle/internal/sim"
	"wcle/internal/spectral"
	"wcle/internal/stats"
)

// This file is the HTTP/JSON wire contract of electd. Everything under
// "result" in a job response is a pure function of (registered graphs,
// request, seed) — wall-clock observations live in the separate "timing"
// object so deterministic replays stay byte-identical.

// GraphSpec names a graph to instantiate: a generator family with its
// parameters, or an explicit edge list. Seed feeds the family's generator
// (only the randomized families consume it).
type GraphSpec struct {
	// Family is one of clique, cycle, path, hypercube, torus, rr
	// (random regular), or explicit.
	Family string `json:"family"`
	N      int    `json:"n,omitempty"`
	D      int    `json:"d,omitempty"`    // rr degree
	Dim    int    `json:"dim,omitempty"`  // hypercube dimension
	Rows   int    `json:"rows,omitempty"` // torus
	Cols   int    `json:"cols,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	// Edges is the explicit family's undirected edge list over nodes
	// [0, N); N defaults to 1 + the largest endpoint.
	Edges [][2]int `json:"edges,omitempty"`
}

// Service-side graph size caps: registration runs the generator inline on
// the request path, so a single spec must not be able to stall or OOM the
// daemon (elections are already capped via MaxPointsPerJob/MaxTrialsPerPoint).
const (
	MaxGraphNodes = 1 << 20
	MaxGraphEdges = 1 << 24
)

// sizeEstimate returns the node and edge counts the spec would build
// (exact for the deterministic families, exact-by-construction for rr).
func (s GraphSpec) sizeEstimate() (nodes, edges int64) {
	n := int64(s.N)
	switch s.Family {
	case "clique":
		return n, n * (n - 1) / 2
	case "cycle", "path":
		return n, n
	case "hypercube":
		if s.Dim < 0 || s.Dim > 62 {
			return math.MaxInt64, math.MaxInt64
		}
		h := int64(1) << s.Dim
		return h, h * int64(s.Dim) / 2
	case "torus":
		// Guard the factors before multiplying: Rows*Cols can overflow
		// int64 and wrap negative, sneaking past the caps.
		if s.Rows < 0 || s.Cols < 0 || s.Rows > MaxGraphNodes || s.Cols > MaxGraphNodes {
			return math.MaxInt64, math.MaxInt64
		}
		t := int64(s.Rows) * int64(s.Cols)
		return t, 2 * t
	case "rr":
		return n, n * int64(s.D) / 2
	case "explicit":
		return int64(s.explicitN()), int64(len(s.Edges))
	default:
		return 0, 0
	}
}

// explicitN is the node count of the explicit family: the declared N or
// 1 + the largest edge endpoint, whichever is larger. The single source
// of truth for both the size-cap estimate and the actual build.
func (s GraphSpec) explicitN() int {
	n := s.N
	for _, e := range s.Edges {
		for _, v := range e {
			if v+1 > n {
				n = v + 1
			}
		}
	}
	return n
}

// Build instantiates the spec. Deterministic in the spec: the registry
// builds each named graph exactly once, but rebuilding would yield the
// identical port-numbered graph.
func (s GraphSpec) Build() (*graph.Graph, error) {
	if nodes, edges := s.sizeEstimate(); nodes > MaxGraphNodes || edges > MaxGraphEdges {
		return nil, fmt.Errorf("serve: graph spec too large (~%d nodes, ~%d edges; caps are %d nodes, %d edges)",
			nodes, edges, MaxGraphNodes, MaxGraphEdges)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	switch s.Family {
	case "clique":
		return graph.Clique(s.N, rng)
	case "cycle":
		return graph.Cycle(s.N, rng)
	case "path":
		return graph.Path(s.N, rng)
	case "hypercube":
		return graph.Hypercube(s.Dim, rng)
	case "torus":
		return graph.Torus2D(s.Rows, s.Cols, rng)
	case "rr":
		return graph.RandomRegular(s.N, s.D, rng)
	case "explicit":
		if len(s.Edges) == 0 {
			return nil, errors.New("serve: explicit graph needs edges")
		}
		b := graph.NewBuilder(s.explicitN())
		for _, e := range s.Edges {
			if err := b.AddEdge(e[0], e[1]); err != nil {
				return nil, fmt.Errorf("serve: explicit edge (%d,%d): %w", e[0], e[1], err)
			}
		}
		return b.Build("explicit", rng)
	default:
		return nil, fmt.Errorf("serve: unknown graph family %q (want clique, cycle, path, hypercube, torus, rr, or explicit)", s.Family)
	}
}

// FaultSpec is the wire form of a delivery-plane adversary. Zero fields
// mean perfect delivery; combinations compose (drops and delays and
// crashes together).
type FaultSpec struct {
	// Drop loses each send independently with this probability.
	Drop float64 `json:"drop,omitempty"`
	// DelayMax adds a uniform extra delay in [0, DelayMax] rounds.
	DelayMax int `json:"delay_max,omitempty"`
	// CrashFrac crashes this node fraction at round CrashRound (default
	// round 1, the E15 convention: crashed from the start).
	CrashFrac  float64 `json:"crash_frac,omitempty"`
	CrashRound int     `json:"crash_round,omitempty"`
	// PartitionFrac cuts a sampled node fraction off from the rest during
	// rounds [PartitionFrom, PartitionTo); PartitionTo <= PartitionFrom
	// means the cut never heals (see sim.Partition).
	PartitionFrac float64 `json:"partition_frac,omitempty"`
	PartitionFrom int     `json:"partition_from,omitempty"`
	PartitionTo   int     `json:"partition_to,omitempty"`
	// Byz samples this node fraction as an active (Byzantine) adversary
	// whose every send is mutated in transit (sim.Byzantine).
	Byz float64 `json:"byz,omitempty"`
	// ByzNodes pins the adversary set explicitly and overrides Byz.
	ByzNodes []int `json:"byz_nodes,omitempty"`
}

// Byzantine reports whether the spec carries an active adversary — the
// one capability cluster sessions negotiate separately, since running it
// on a member that cannot mutate sends would silently diverge from sim.
func (f FaultSpec) Byzantine() bool {
	return f.Byz != 0 || len(f.ByzNodes) > 0
}

// IsZero reports perfect delivery.
func (f FaultSpec) IsZero() bool {
	return f.Drop == 0 && f.DelayMax == 0 && f.CrashFrac == 0 && f.PartitionFrac == 0 &&
		f.Byz == 0 && len(f.ByzNodes) == 0
}

// Validate rejects nonsense before a job is queued.
func (f FaultSpec) Validate() error {
	if f.Drop < 0 || f.Drop >= 1 {
		return fmt.Errorf("serve: fault drop %v out of [0,1)", f.Drop)
	}
	if f.DelayMax < 0 {
		return fmt.Errorf("serve: fault delay_max %d negative", f.DelayMax)
	}
	if f.CrashFrac < 0 || f.CrashFrac >= 1 {
		return fmt.Errorf("serve: fault crash_frac %v out of [0,1)", f.CrashFrac)
	}
	if f.CrashRound < 0 {
		return fmt.Errorf("serve: fault crash_round %d negative", f.CrashRound)
	}
	if f.PartitionFrac < 0 || f.PartitionFrac >= 1 {
		return fmt.Errorf("serve: fault partition_frac %v out of [0,1)", f.PartitionFrac)
	}
	if f.PartitionFrom < 0 || f.PartitionTo < 0 {
		return fmt.Errorf("serve: fault partition rounds [%d,%d) negative", f.PartitionFrom, f.PartitionTo)
	}
	if f.Byz < 0 || f.Byz >= 1 {
		return fmt.Errorf("serve: fault byz %v out of [0,1)", f.Byz)
	}
	for _, v := range f.ByzNodes {
		if v < 0 {
			return fmt.Errorf("serve: fault byz_nodes contains negative node %d", v)
		}
	}
	return nil
}

// Plane builds a fresh fault-plane instance (planes are stateful per run,
// so the scheduler calls this once per trial).
func (f FaultSpec) Plane() sim.FaultPlane {
	var planes []sim.FaultPlane
	if f.Drop > 0 {
		planes = append(planes, &sim.Drop{P: f.Drop})
	}
	if f.DelayMax > 0 {
		planes = append(planes, &sim.Delay{Max: f.DelayMax})
	}
	if f.CrashFrac > 0 {
		round := f.CrashRound
		if round <= 0 {
			round = 1
		}
		planes = append(planes, &sim.CrashSample{Frac: f.CrashFrac, Round: round})
	}
	if f.PartitionFrac > 0 {
		planes = append(planes, &sim.Partition{Frac: f.PartitionFrac, From: f.PartitionFrom, To: f.PartitionTo})
	}
	if f.Byz > 0 || len(f.ByzNodes) > 0 {
		planes = append(planes, &sim.Byzantine{Frac: f.Byz, Nodes: f.ByzNodes})
	}
	return sim.Compose(planes...)
}

// PointSpec is one (graph, configuration) cell of a batch-election job.
type PointSpec struct {
	// Graph names a registered graph.
	Graph string `json:"graph"`
	// Trials is the number of independent elections.
	Trials int `json:"trials"`
	// Algorithm names the election backend from the algo registry
	// (gilbertrs18, floodmax, kpprt, ...). Empty means the default
	// (gilbertrs18); validated at submission.
	Algorithm string `json:"algorithm,omitempty"`
	// Resend retransmits idempotent protocol messages (core.Config.Resend;
	// gilbertrs18 only, other backends ignore it).
	Resend int `json:"resend,omitempty"`
	// AssumedN overrides every node's belief of n (the Section 5 knob;
	// gilbertrs18 only).
	AssumedN int `json:"assumed_n,omitempty"`
	// Fault is the per-trial delivery-plane adversary.
	Fault FaultSpec `json:"fault,omitempty"`
}

// Key is the point's stable identity inside its job: the seed-derivation
// key, so a point's trials replay identically wherever the point sits in
// the request and whatever the worker count. The algorithm name enters
// the key only when it differs from the default, so requests predating
// the backend registry (and requests naming the default explicitly)
// replay the exact seeds they always had.
func (p PointSpec) Key() string {
	key := fmt.Sprintf("%s|t%d|r%d|a%d|f%.6g:%d:%.6g:%d",
		p.Graph, p.Trials, p.Resend, p.AssumedN,
		p.Fault.Drop, p.Fault.DelayMax, p.Fault.CrashFrac, p.Fault.CrashRound)
	if alg := algo.Resolve(p.Algorithm); alg != algo.DefaultName {
		key += "|" + alg
	}
	// The byzantine component enters the key only when set, so every
	// pre-existing request replays the exact seeds it always had.
	if p.Fault.Byz != 0 || len(p.Fault.ByzNodes) > 0 {
		key += fmt.Sprintf("|b%.6g:%v", p.Fault.Byz, p.Fault.ByzNodes)
	}
	return key
}

// SubmitRequest is the body of POST /v1/elections.
type SubmitRequest struct {
	// Seed is the job's master seed; per-point and per-trial seeds derive
	// from it via the experiments seed contract.
	Seed   int64       `json:"seed"`
	Points []PointSpec `json:"points"`
}

// Validate rejects malformed submissions with a client error before they
// consume a queue slot.
func (r SubmitRequest) Validate(reg *Registry) error {
	if len(r.Points) == 0 {
		return errors.New("serve: submission has no points")
	}
	if len(r.Points) > MaxPointsPerJob {
		return fmt.Errorf("serve: %d points exceeds the per-job cap %d", len(r.Points), MaxPointsPerJob)
	}
	for i, p := range r.Points {
		if p.Graph == "" {
			return fmt.Errorf("serve: point %d names no graph", i)
		}
		if _, ok := reg.Get(p.Graph); !ok {
			return fmt.Errorf("serve: point %d: unknown graph %q (register it via POST /v1/graphs)", i, p.Graph)
		}
		if p.Trials <= 0 || p.Trials > MaxTrialsPerPoint {
			return fmt.Errorf("serve: point %d: trials %d out of [1,%d]", i, p.Trials, MaxTrialsPerPoint)
		}
		if p.Algorithm != "" && !algo.Known(p.Algorithm) {
			return fmt.Errorf("serve: point %d: unknown algorithm %q (known: %v)", i, p.Algorithm, algo.Names())
		}
		if p.Resend < 0 || p.AssumedN < 0 {
			return fmt.Errorf("serve: point %d: negative knob", i)
		}
		if err := p.Fault.Validate(); err != nil {
			return fmt.Errorf("serve: point %d: %w", i, err)
		}
	}
	return nil
}

// Request-size guards: a single job is bounded so the queue depth bounds
// total admitted work.
const (
	MaxPointsPerJob   = 64
	MaxTrialsPerPoint = 10000
)

// AggWire is the JSON form of a stats.Aggregate summary.
type AggWire struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"`
	Median float64 `json:"median"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	CILo   float64 `json:"ci_lo"`
	CIHi   float64 `json:"ci_hi"`
}

func aggWire(a stats.Agg) AggWire {
	return AggWire{N: a.N, Mean: a.Mean, Std: a.Std, Median: a.Median,
		Min: a.Min, Max: a.Max, CILo: a.CILo, CIHi: a.CIHi}
}

// PointResult is one point's deterministic outcome.
type PointResult struct {
	Graph string `json:"graph"`
	// Algorithm is the resolved backend that ran the point.
	Algorithm string `json:"algorithm"`
	Trials    int    `json:"trials"`
	// Seed is the point's derived base seed (trial i runs at
	// sim.DeriveSeed(Seed, i)), reported so any point is replayable in
	// isolation.
	Seed int64 `json:"seed"`

	// Outcome counts: exactly one leader, none, more than one.
	One   int `json:"one"`
	Zero  int `json:"zero"`
	Multi int `json:"multi"`
	// UniqueLeader reports one == trials.
	UniqueLeader bool `json:"unique_leader"`

	// Batch totals.
	Messages   int64 `json:"messages"`
	Bits       int64 `json:"bits"`
	Rounds     int64 `json:"rounds"`
	FaultDrops int64 `json:"fault_drops,omitempty"`
	Contenders int   `json:"contenders"`

	// Summaries aggregates the per-trial distributions ("rounds",
	// "messages", "contenders") as stats.Aggregate records.
	Summaries map[string]AggWire `json:"summaries"`

	// Spectral is the registry's cached profile of the point's graph —
	// the quantities the paper's O(tmix log^2 n) cost bound is written in
	// terms of, surfaced so callers can predict cost before paying for a
	// run. Omitted (with SpectralError set) when the profile computation
	// failed, e.g. a walk that does not mix within the step budget.
	Spectral      *spectral.Profile `json:"spectral,omitempty"`
	SpectralError string            `json:"spectral_error,omitempty"`
}

// JobResult is the deterministic part of a finished job.
type JobResult struct {
	Seed   int64         `json:"seed"`
	Points []PointResult `json:"points"`
}

// JobTiming is the wall-clock part of a job response: everything here
// varies run to run and is deliberately fenced off from JobResult.
type JobTiming struct {
	QueuedMs        float64 `json:"queued_ms"`
	RunMs           float64 `json:"run_ms"`
	ElectionsPerSec float64 `json:"elections_per_sec"`
}

// JobStatus is the body of GET /v1/elections/{id}.
type JobStatus struct {
	ID     string     `json:"id"`
	State  string     `json:"state"` // queued | running | done | failed
	Result *JobResult `json:"result,omitempty"`
	Timing *JobTiming `json:"timing,omitempty"`
	Error  string     `json:"error,omitempty"`
}

// GraphInfo is the body of GET /v1/graphs/{name}.
type GraphInfo struct {
	Name     string            `json:"name"`
	Spec     GraphSpec         `json:"spec"`
	N        int               `json:"n"`
	M        int               `json:"m"`
	Spectral *spectral.Profile `json:"spectral,omitempty"`
}

// RegisterRequest is the body of POST /v1/graphs.
type RegisterRequest struct {
	Name string    `json:"name"`
	Spec GraphSpec `json:"spec"`
}

// SubmitResponse is the 202 body of POST /v1/elections.
type SubmitResponse struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Location string `json:"location"`
}

// ProtocolInfo describes one registered engine protocol: its name, the
// labels of the per-node output vector it produces, and whether it is an
// election backend (and so also accepted by POST /v1/elections).
type ProtocolInfo struct {
	Name     string   `json:"name"`
	Slots    []string `json:"slots,omitempty"`
	Election bool     `json:"election"`
}

// ErrorResponse is every non-2xx JSON body.
type ErrorResponse struct {
	Error string `json:"error"`
}
