package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"wcle/internal/algo"
	"wcle/internal/core"
	"wcle/internal/obs"
	"wcle/internal/sim"
	"wcle/internal/stats"
)

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Sentinel errors mapped to HTTP statuses by the handlers.
var (
	// ErrQueueFull is backpressure: the bounded queue is at capacity (429).
	ErrQueueFull = errors.New("serve: job queue is full")
	// ErrDraining means the scheduler no longer accepts work (503).
	ErrDraining = errors.New("serve: scheduler is draining")
)

// ClusterElector dispatches one election to a wire-level cluster instead
// of the in-process engine. internal/cluster's Client implements it;
// electd's -cluster flag plugs it in. The determinism contract is the
// same either way: identical (graph spec, algorithm, seed, fault) means
// an identical outcome, so a job's result does not depend on where it
// ran — fault planes included, since every FaultSpec plane is
// shard-safe.
type ClusterElector interface {
	// RunElection also reports the election's wire traffic, which the
	// metrics layer accumulates into the electd_cluster_* counters.
	RunElection(spec GraphSpec, algorithm string, seed int64, resend, assumedN int, fault FaultSpec) (*algo.Outcome, ClusterWire, error)
}

// ClusterWire is one cluster election's wire-traffic accounting, as
// reported by the ClusterElector (mirrors cluster.WireStats, which serve
// cannot import — cluster imports serve).
type ClusterWire struct {
	// Frames and Bytes count every frame the cluster sent for the
	// election, headers included.
	Frames int64
	Bytes  int64
	// Envelopes counts cross-shard protocol messages.
	Envelopes int64
	// Barriers counts round-barrier iterations; BarrierFrames the
	// ready/advance control frames of the legacy star (zero under
	// piggybacked advancement).
	Barriers      int64
	BarrierFrames int64
	// CompressedFrames counts data frames sent flate-compressed;
	// RawBytes/CompressedBytes are their payloads before and after.
	CompressedFrames int64
	RawBytes         int64
	CompressedBytes  int64
}

// Job is one submitted election batch moving through the scheduler.
type Job struct {
	ID  string
	Req SubmitRequest

	mu        sync.Mutex
	state     string
	result    *JobResult
	err       string
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// Status snapshots the job for the wire.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.ID, State: j.state, Result: j.result, Error: j.err}
	if j.state == StateDone || j.state == StateFailed {
		t := &JobTiming{
			QueuedMs: float64(j.started.Sub(j.submitted)) / float64(time.Millisecond),
			RunMs:    float64(j.finished.Sub(j.started)) / float64(time.Millisecond),
		}
		if s := j.finished.Sub(j.started).Seconds(); s > 0 && j.result != nil {
			var trials int
			for _, p := range j.result.Points {
				trials += p.Trials
			}
			t.ElectionsPerSec = float64(trials) / s
		}
		st.Timing = t
	}
	return st
}

// State returns the job's current state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Scheduler runs submitted jobs on a fixed worker pool behind a bounded
// queue. Submissions beyond the queue capacity are rejected immediately
// (backpressure) rather than buffered without bound; each accepted job's
// elections run through the algo backend registry (per-point "algorithm"
// field) and are sharded across algo.RunMany's MultiRunner pool with seeds
// derived from the job's master seed via the experiments contract, so a
// job's result is a deterministic function of (registry, request).
type Scheduler struct {
	reg *Registry
	met *Metrics

	// ElectionWorkers is the per-job MultiRunner shard count
	// (0 = runtime.NumCPU()).
	electionWorkers int

	// cluster, when non-nil, dispatches every election to a wire-level
	// cluster instead of running in process.
	cluster ClusterElector

	// tracer observes every in-process election (nil = disabled). It is
	// strictly observational, so traced results stay byte-identical.
	tracer *obs.Tracer

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []string // finished job ids, oldest first, for bounded retention
	retain   int
	queue    chan *Job
	closed   bool
	seq      int64

	running atomic.Int64
	wg      sync.WaitGroup

	testBeforeRun func(*Job)
}

// SchedulerOptions parameterizes NewScheduler.
type SchedulerOptions struct {
	// Workers is the number of concurrent jobs (0 = 1: jobs already
	// parallelize internally across the MultiRunner pool).
	Workers int
	// QueueCap bounds the number of queued-but-not-running jobs
	// (0 = 16). Submissions beyond it get ErrQueueFull.
	QueueCap int
	// ElectionWorkers is the per-job shard count (0 = runtime.NumCPU()).
	ElectionWorkers int
	// RetainJobs bounds how many finished jobs stay queryable (0 = 1024).
	// Older finished jobs are evicted oldest-first and their status
	// endpoint returns 404 — without a bound a long-running daemon's job
	// map would grow until OOM.
	RetainJobs int
	// Cluster, when non-nil, dispatches every election to a wire-level
	// cluster. Fault planes ride along: every FaultSpec plane is
	// shard-safe, so faulty cluster runs stay seed-deterministic.
	Cluster ClusterElector
	// Tracer, when non-nil, observes every in-process election.
	Tracer *obs.Tracer
	// testBeforeRun, when non-nil, runs on the worker goroutine before a
	// job executes; tests use it to hold workers busy deterministically.
	// Construction-time only, so workers never race a later mutation.
	testBeforeRun func(*Job)
}

// NewScheduler starts the worker pool.
func NewScheduler(reg *Registry, met *Metrics, opts SchedulerOptions) *Scheduler {
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	queueCap := opts.QueueCap
	if queueCap <= 0 {
		queueCap = 16
	}
	retain := opts.RetainJobs
	if retain <= 0 {
		retain = 1024
	}
	s := &Scheduler{
		reg:             reg,
		met:             met,
		electionWorkers: opts.ElectionWorkers,
		cluster:         opts.Cluster,
		tracer:          opts.Tracer,
		jobs:            make(map[string]*Job),
		retain:          retain,
		queue:           make(chan *Job, queueCap),
		testBeforeRun:   opts.testBeforeRun,
	}
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for job := range s.queue {
				s.run(job)
			}
		}()
	}
	return s
}

// Submit validates, enqueues, and returns the new job. ErrQueueFull is
// the backpressure signal; ErrDraining means shutdown has begun.
func (s *Scheduler) Submit(req SubmitRequest) (*Job, error) {
	if err := req.Validate(s.reg); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrDraining
	}
	s.seq++
	job := &Job{
		ID:        fmt.Sprintf("job-%06d", s.seq),
		Req:       req,
		state:     StateQueued,
		submitted: time.Now(),
	}
	select {
	case s.queue <- job:
	default:
		s.seq-- // the id was never exposed
		s.met.JobsRejected.Add(1)
		return nil, ErrQueueFull
	}
	s.jobs[job.ID] = job
	s.met.JobsSubmitted.Add(1)
	return job, nil
}

// Get returns a submitted job by id.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// QueueDepth returns (queued, capacity, running).
func (s *Scheduler) QueueDepth() (depth, capacity, running int) {
	return len(s.queue), cap(s.queue), int(s.running.Load())
}

// Draining reports whether Drain has begun.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Drain stops accepting submissions and waits for the queue to empty and
// in-flight jobs to finish, or for ctx to expire (whichever first). It is
// idempotent.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with jobs still running: %w", ctx.Err())
	}
}

// run executes one job on the calling worker goroutine.
func (s *Scheduler) run(job *Job) {
	if s.testBeforeRun != nil {
		s.testBeforeRun(job)
	}
	s.running.Add(1)
	defer s.running.Add(-1)
	job.mu.Lock()
	job.state = StateRunning
	job.started = time.Now()
	job.mu.Unlock()

	result, err := s.runPointsSafe(job.Req)

	job.mu.Lock()
	job.finished = time.Now()
	if err != nil {
		job.state = StateFailed
		job.err = err.Error()
		s.met.JobsFailed.Add(1)
	} else {
		job.state = StateDone
		job.result = result
		s.met.JobsDone.Add(1)
	}
	latency := job.finished.Sub(job.started)
	job.mu.Unlock()
	s.met.ObserveJobLatency(latency)
	s.retire(job.ID)
}

// retire records a finished job for bounded retention, evicting the
// oldest finished jobs beyond the cap so the daemon's job map stays O(1)
// memory however long it runs. Queued and running jobs are never evicted.
func (s *Scheduler) retire(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finished = append(s.finished, id)
	for len(s.finished) > s.retain {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// runPointsSafe confines a panic anywhere in a job's execution (engine,
// generator, profile) to that job: the daemon must fail the job and keep
// serving, not crash with every queued job lost.
func (s *Scheduler) runPointsSafe(req SubmitRequest) (res *JobResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("serve: job panicked: %v", r)
		}
	}()
	return s.runPoints(req)
}

// runPoints executes every point of the request in order. Points are
// sequential — each point already saturates the MultiRunner pool — and
// their seeds derive from (request seed, point index, point spec), never
// from scheduler state, so a replay is byte-identical.
func (s *Scheduler) runPoints(req SubmitRequest) (*JobResult, error) {
	out := &JobResult{Seed: req.Seed, Points: make([]PointResult, 0, len(req.Points))}
	for i, p := range req.Points {
		reg, ok := s.reg.Get(p.Graph)
		if !ok {
			// Validated at submission; the registry never unregisters, so
			// this is unreachable unless the request mutated.
			return nil, fmt.Errorf("serve: point %d: unknown graph %q", i, p.Graph)
		}
		baseSeed := sim.SeedForKey(req.Seed, fmt.Sprintf("electd|%d|%s", i, p.Key()))
		algName := algo.Resolve(p.Algorithm)
		pt0 := time.Now()
		if s.cluster != nil {
			pr, err := s.runPointCluster(i, p, algName, baseSeed, reg)
			if err != nil {
				return nil, err
			}
			s.met.ObserveAlgoLatency(algName, time.Since(pt0))
			s.attachProfile(&pr, p.Graph)
			out.Points = append(out.Points, pr)
			continue
		}
		cfg := core.DefaultConfig()
		cfg.Resend = p.Resend
		cfg.AssumedN = p.AssumedN
		backend, err := algo.New(algName, algo.Config{Core: cfg})
		if err != nil {
			// Validated at submission; the registry never unregisters.
			return nil, fmt.Errorf("serve: point %d: %w", i, err)
		}
		opts := algo.BatchOptions{
			Base:          algo.Options{Seed: baseSeed, LeanMetrics: true, Tracer: s.tracer},
			Trials:        p.Trials,
			Workers:       s.electionWorkers,
			CollectTrials: true,
		}
		if !p.Fault.IsZero() {
			fault := p.Fault
			opts.NewFault = func(int) sim.FaultPlane { return fault.Plane() }
		}
		batch, err := algo.RunMany(reg.Graph, backend, opts)
		if err != nil {
			return nil, fmt.Errorf("serve: point %d (%s, %s): %w", i, p.Graph, algName, err)
		}
		s.met.ElectionsServed.Add(int64(p.Trials))
		s.met.AddAlgoElections(algName, int64(p.Trials))
		s.met.ObserveAlgoLatency(algName, time.Since(pt0))
		pr := PointResult{
			Graph:        p.Graph,
			Algorithm:    algName,
			Trials:       p.Trials,
			Seed:         baseSeed,
			One:          batch.One,
			Zero:         batch.Zero,
			Multi:        batch.Multi,
			UniqueLeader: batch.One == batch.Trials,
			Messages:     batch.Messages,
			Bits:         batch.Bits,
			Rounds:       batch.Rounds,
			FaultDrops:   batch.FaultDrops,
			Contenders:   batch.Contenders,
			Summaries:    trialSummaries(batch),
		}
		s.attachProfile(&pr, p.Graph)
		out.Points = append(out.Points, pr)
	}
	return out, nil
}

// attachProfile adds the registry's cached spectral profile to a point
// result (or the cached error).
func (s *Scheduler) attachProfile(pr *PointResult, graph string) {
	if prof, err := s.reg.Profile(graph); err != nil {
		pr.SpectralError = err.Error()
	} else {
		pr.Spectral = prof
	}
}

// runPointCluster executes one point's trials on the wire-level cluster,
// one election per trial, with the exact per-trial seeds the in-process
// path derives — so a job's result is identical wherever it ran.
func (s *Scheduler) runPointCluster(i int, p PointSpec, algName string, baseSeed int64, reg *Registered) (PointResult, error) {
	pr := PointResult{
		Graph:     p.Graph,
		Algorithm: algName,
		Trials:    p.Trials,
		Seed:      baseSeed,
	}
	rounds := make([]int32, p.Trials)
	msgs := make([]int64, p.Trials)
	contenders := make([]int32, p.Trials)
	for t := 0; t < p.Trials; t++ {
		out, cw, err := s.cluster.RunElection(reg.Spec, algName, sim.DeriveSeed(baseSeed, uint64(t)), p.Resend, p.AssumedN, p.Fault)
		if err != nil {
			return pr, fmt.Errorf("serve: point %d trial %d on the cluster: %w", i, t, err)
		}
		s.met.AddClusterWire(cw)
		switch len(out.Leaders) {
		case 0:
			pr.Zero++
		case 1:
			pr.One++
		default:
			pr.Multi++
		}
		pr.Messages += out.Metrics.Messages
		pr.Bits += out.Metrics.Bits
		pr.Rounds += int64(out.Rounds)
		pr.FaultDrops += out.Metrics.FaultDrops
		pr.Contenders += out.Contenders
		rounds[t] = int32(out.Rounds)
		msgs[t] = out.Metrics.Messages
		contenders[t] = int32(out.Contenders)
	}
	pr.UniqueLeader = pr.One == pr.Trials
	pr.Summaries = trialSummaries(&algo.BatchResult{
		TrialRounds:     rounds,
		TrialMessages:   msgs,
		TrialContenders: contenders,
	})
	s.met.ElectionsServed.Add(int64(p.Trials))
	s.met.AddAlgoElections(algName, int64(p.Trials))
	return pr, nil
}

// trialSummaries aggregates the per-trial vectors of a collected batch.
func trialSummaries(b *algo.BatchResult) map[string]AggWire {
	series := map[string][]float64{
		"rounds":     int32Floats(b.TrialRounds),
		"messages":   int64Floats(b.TrialMessages),
		"contenders": int32Floats(b.TrialContenders),
	}
	out := make(map[string]AggWire, len(series))
	for name, xs := range series {
		a, err := stats.Aggregate(xs)
		if err != nil {
			continue
		}
		out[name] = aggWire(roundAgg(a))
	}
	return out
}

func int32Floats(xs []int32) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

func int64Floats(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// roundAgg normalizes an aggregate for the wire: float64 arithmetic on
// integral samples is deterministic, but rounding to 9 decimal places
// keeps the JSON stable against any future reordering of the summation
// while staying far below a measurement's meaningful precision.
func roundAgg(a stats.Agg) stats.Agg {
	r := func(x float64) float64 { return math.Round(x*1e9) / 1e9 }
	a.Mean, a.Std, a.Median = r(a.Mean), r(a.Std), r(a.Median)
	a.Min, a.Max, a.CILo, a.CIHi = r(a.Min), r(a.Max), r(a.CILo), r(a.CIHi)
	return a
}
