package serve

import (
	"errors"
	"sync"
)

// flightCache is a memoizing singleflight: the first caller of a key runs
// the compute function, concurrent callers of the same key block on that
// one in-flight computation instead of duplicating it, and the outcome
// (value or error — a failed profile is just as deterministic as a good
// one) is retained forever. The registry keys it by graph name, so the
// expensive spectral work is paid once per registered graph no matter how
// many requests race on first touch.
type flightCache struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	done chan struct{} // closed when val/err are set
	val  interface{}
	err  error
}

func newFlightCache() *flightCache {
	return &flightCache{m: make(map[string]*flight)}
}

// Do returns the cached outcome for key, computing it via fn exactly once
// across all callers. hit reports whether the outcome existed (completed)
// before this call — joiners of an in-flight computation count as misses,
// matching the intuition that they had to wait for a compute.
func (c *flightCache) Do(key string, fn func() (interface{}, error)) (val interface{}, err error, hit bool) {
	c.mu.Lock()
	if f, ok := c.m[key]; ok {
		select {
		case <-f.done:
			hit = true
		default:
		}
		c.mu.Unlock()
		<-f.done
		return f.val, f.err, hit
	}
	f := &flight{done: make(chan struct{})}
	c.m[key] = f
	c.mu.Unlock()

	// A panicking fn must still resolve the flight — otherwise every
	// later caller of the key would block on f.done forever. The panic
	// propagates to this caller; waiters see the error.
	finished := false
	defer func() {
		if !finished {
			f.val, f.err = nil, errors.New("serve: cached computation panicked")
		}
		close(f.done)
	}()
	f.val, f.err = fn()
	finished = true
	return f.val, f.err, false
}

// Peek returns the completed outcome for key without computing; ok is
// false when the key is absent or still in flight.
func (c *flightCache) Peek(key string) (interface{}, error, bool) {
	c.mu.Lock()
	f, found := c.m[key]
	c.mu.Unlock()
	if !found {
		return nil, nil, false
	}
	select {
	case <-f.done:
		return f.val, f.err, true
	default:
		return nil, nil, false
	}
}

// Len returns the number of keys (completed or in flight).
func (c *flightCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
