package serve

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestLatencyWindowWraparound drives more observations through the
// latency window than it holds and checks the quantiles are computed over
// the surviving (most recent) samples, not stale or zeroed slots.
func TestLatencyWindowWraparound(t *testing.T) {
	m := NewMetrics()
	// Fill the window with 1s samples, then wrap it completely with 2s
	// ones: after the wrap every slot must hold 2s.
	for i := 0; i < latencyWindowSize; i++ {
		m.ObserveJobLatency(time.Second)
	}
	for i := 0; i < latencyWindowSize; i++ {
		m.ObserveJobLatency(2 * time.Second)
	}
	p50, p99, n := m.latencyQuantiles()
	if n != latencyWindowSize {
		t.Fatalf("window size %d, want %d", n, latencyWindowSize)
	}
	if p50 != 2 || p99 != 2 {
		t.Fatalf("after a full wrap every sample is 2s; got p50=%v p99=%v", p50, p99)
	}

	// A partial wrap (half the window) leaves a half-and-half mix: the
	// median must sit between the two values, whichever slots survived.
	m2 := NewMetrics()
	for i := 0; i < latencyWindowSize; i++ {
		m2.ObserveJobLatency(time.Second)
	}
	for i := 0; i < latencyWindowSize/2; i++ {
		m2.ObserveJobLatency(3 * time.Second)
	}
	p50, p99, n = m2.latencyQuantiles()
	if n != latencyWindowSize {
		t.Fatalf("window size %d, want %d", n, latencyWindowSize)
	}
	if p50 < 1 || p50 > 3 {
		t.Fatalf("mixed-window p50 out of range: %v", p50)
	}
	if p99 != 3 {
		t.Fatalf("mixed-window p99 should see the new samples: %v", p99)
	}
}

// TestMetricsConcurrentObserve hammers every observe path from many
// goroutines (run with -race) and checks totals come out exact.
func TestMetricsConcurrentObserve(t *testing.T) {
	m := NewMetrics()
	const goroutines = 8
	const perG = 400
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("algo-%d", g%2)
			for i := 0; i < perG; i++ {
				m.ObserveJobLatency(time.Duration(i%7+1) * time.Millisecond)
				m.ObserveAlgoLatency(name, time.Duration(i%5+1)*time.Millisecond)
				m.AddAlgoElections(name, 1)
			}
		}(g)
	}
	wg.Wait()

	if _, _, n := m.latencyQuantiles(); n != latencyWindowSize {
		t.Fatalf("window should be full after %d observations, got %d", goroutines*perG, n)
	}
	names, counts := m.algoElections()
	var total int64
	for _, c := range counts {
		total += c
	}
	if len(names) != 2 || total != goroutines*perG {
		t.Fatalf("election counters lost updates: names=%v total=%d want %d", names, total, goroutines*perG)
	}

	var sb strings.Builder
	m.WriteProm(&sb, nil, 0, 0, 0)
	out := sb.String()
	wantCount := fmt.Sprintf("electd_point_latency_seconds_count{algorithm=\"algo-0\"} %d", goroutines/2*perG)
	if !strings.Contains(out, wantCount) {
		t.Fatalf("histogram lost observations; want %q in:\n%s", wantCount, out)
	}
	if !strings.Contains(out, "le=\"+Inf\"") {
		t.Fatalf("histogram missing +Inf bucket:\n%s", out)
	}
}

// TestHistogramBuckets checks the cumulative bucket math: a sample lands
// in every bucket at or above its bound, and only there.
func TestHistogramBuckets(t *testing.T) {
	m := NewMetrics()
	m.ObserveAlgoLatency("x", 2*time.Millisecond)  // bucket le=0.0025
	m.ObserveAlgoLatency("x", 40*time.Millisecond) // bucket le=0.05
	m.ObserveAlgoLatency("x", 200*time.Second)     // +Inf only
	var sb strings.Builder
	m.writeHistograms(&sb)
	out := sb.String()
	for _, want := range []string{
		`electd_point_latency_seconds_bucket{algorithm="x",le="0.001"} 0`,
		`electd_point_latency_seconds_bucket{algorithm="x",le="0.0025"} 1`,
		`electd_point_latency_seconds_bucket{algorithm="x",le="0.025"} 1`,
		`electd_point_latency_seconds_bucket{algorithm="x",le="0.05"} 2`,
		`electd_point_latency_seconds_bucket{algorithm="x",le="100"} 2`,
		`electd_point_latency_seconds_bucket{algorithm="x",le="+Inf"} 3`,
		`electd_point_latency_seconds_count{algorithm="x"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
