package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"wcle/internal/stats"
)

// Metrics is electd's ops surface: monotone counters for traffic and the
// spectral cache, gauges for the queue, and a bounded window of job
// latencies for p50/p99. Rendered as Prometheus-style text at /metrics.
type Metrics struct {
	start time.Time

	// Traffic counters.
	JobsSubmitted atomic.Int64
	JobsRejected  atomic.Int64 // queue-full 429s
	JobsDone      atomic.Int64
	JobsFailed    atomic.Int64
	// ElectionsServed counts completed election trials across all jobs.
	ElectionsServed atomic.Int64

	// Cluster wire-traffic counters, accumulated from every cluster-mode
	// election (zero when electd runs the in-process engine).
	ClusterFrames           atomic.Int64
	ClusterBytes            atomic.Int64
	ClusterEnvelopes        atomic.Int64
	ClusterBarriers         atomic.Int64
	ClusterBarrierFrames    atomic.Int64
	ClusterCompressedFrames atomic.Int64
	ClusterRawBytes         atomic.Int64
	ClusterCompressedBytes  atomic.Int64

	// electionsByAlgo counts completed election trials per backend (the
	// algo registry names). Bounded by the registry size.
	algoMu          sync.Mutex
	electionsByAlgo map[string]int64

	// latencyWindow keeps the most recent job wall-clock latencies
	// (seconds) for quantile estimation; bounded so /metrics stays O(1)
	// memory however long the daemon runs.
	latMu     sync.Mutex
	latencies []float64
	latNext   int

	// algoHist holds one latency histogram per backend/protocol (point
	// execution wall time). Bounded by the registry size.
	histMu   sync.Mutex
	algoHist map[string]*latencyHist

	// TraceStats, when set, reports the attached tracer's emitted-event
	// and flight-recorder drop totals at render time (electd wires it up
	// when tracing is enabled; nil renders zeros).
	TraceStats func() (emitted, dropped int64)
}

// latencyBounds are the histogram's upper bounds in seconds (plus an
// implicit +Inf): exponential, 1ms to ~100s, matching election wall times
// from quick sim points to big cluster jobs.
var latencyBounds = [...]float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100}

// latencyHist is one Prometheus-style cumulative histogram.
type latencyHist struct {
	counts [len(latencyBounds) + 1]int64 // per-bucket (last = +Inf)
	sum    float64
	total  int64
}

func (h *latencyHist) observe(s float64) {
	i := sort.SearchFloat64s(latencyBounds[:], s)
	h.counts[i]++
	h.sum += s
	h.total++
}

// ObserveAlgoLatency records one point's execution wall time under its
// backend/protocol name.
func (m *Metrics) ObserveAlgoLatency(name string, d time.Duration) {
	m.histMu.Lock()
	defer m.histMu.Unlock()
	if m.algoHist == nil {
		m.algoHist = make(map[string]*latencyHist)
	}
	h := m.algoHist[name]
	if h == nil {
		h = &latencyHist{}
		m.algoHist[name] = h
	}
	h.observe(d.Seconds())
}

// AddClusterWire accumulates one cluster election's wire traffic.
func (m *Metrics) AddClusterWire(w ClusterWire) {
	m.ClusterFrames.Add(w.Frames)
	m.ClusterBytes.Add(w.Bytes)
	m.ClusterEnvelopes.Add(w.Envelopes)
	m.ClusterBarriers.Add(w.Barriers)
	m.ClusterBarrierFrames.Add(w.BarrierFrames)
	m.ClusterCompressedFrames.Add(w.CompressedFrames)
	m.ClusterRawBytes.Add(w.RawBytes)
	m.ClusterCompressedBytes.Add(w.CompressedBytes)
}

// AddAlgoElections records n completed election trials for one backend.
func (m *Metrics) AddAlgoElections(name string, n int64) {
	m.algoMu.Lock()
	defer m.algoMu.Unlock()
	if m.electionsByAlgo == nil {
		m.electionsByAlgo = make(map[string]int64)
	}
	m.electionsByAlgo[name] += n
}

// algoElections snapshots the per-backend counters in sorted name order.
func (m *Metrics) algoElections() ([]string, []int64) {
	m.algoMu.Lock()
	defer m.algoMu.Unlock()
	names := make([]string, 0, len(m.electionsByAlgo))
	for name := range m.electionsByAlgo {
		names = append(names, name)
	}
	sort.Strings(names)
	counts := make([]int64, len(names))
	for i, name := range names {
		counts[i] = m.electionsByAlgo[name]
	}
	return names, counts
}

// latencyWindowSize bounds the latency sample.
const latencyWindowSize = 512

// NewMetrics returns a metrics sink anchored at now.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

// ObserveJobLatency records one finished job's wall-clock run time.
func (m *Metrics) ObserveJobLatency(d time.Duration) {
	m.latMu.Lock()
	defer m.latMu.Unlock()
	s := d.Seconds()
	if len(m.latencies) < latencyWindowSize {
		m.latencies = append(m.latencies, s)
	} else {
		m.latencies[m.latNext] = s
		m.latNext = (m.latNext + 1) % latencyWindowSize
	}
}

// latencyQuantiles returns (p50, p99, n) over the current window.
func (m *Metrics) latencyQuantiles() (p50, p99 float64, n int) {
	m.latMu.Lock()
	window := append([]float64(nil), m.latencies...)
	m.latMu.Unlock()
	if len(window) == 0 {
		return 0, 0, 0
	}
	qs, err := stats.Quantiles(window, 0.5, 0.99)
	if err != nil {
		return 0, 0, 0
	}
	return qs[0], qs[1], len(window)
}

// WriteProm renders the metrics in Prometheus exposition format. reg and
// queueDepth/queueCap are read at render time so the gauges are live.
func (m *Metrics) WriteProm(w io.Writer, reg *Registry, queueDepth, queueCap, running int) {
	p50, p99, n := m.latencyQuantiles()
	hits, misses, computes := int64(0), int64(0), int64(0)
	graphs := 0
	if reg != nil {
		hits, misses, computes = reg.CacheStats()
		graphs = len(reg.Names())
	}
	var hitRate float64
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	fmt.Fprintf(w, "# electd ops metrics\n")
	fmt.Fprintf(w, "electd_uptime_seconds %.3f\n", time.Since(m.start).Seconds())
	fmt.Fprintf(w, "electd_jobs_submitted_total %d\n", m.JobsSubmitted.Load())
	fmt.Fprintf(w, "electd_jobs_rejected_total %d\n", m.JobsRejected.Load())
	fmt.Fprintf(w, "electd_jobs_done_total %d\n", m.JobsDone.Load())
	fmt.Fprintf(w, "electd_jobs_failed_total %d\n", m.JobsFailed.Load())
	fmt.Fprintf(w, "electd_elections_served_total %d\n", m.ElectionsServed.Load())
	names, counts := m.algoElections()
	for i, name := range names {
		fmt.Fprintf(w, "electd_elections_by_algorithm_total{algorithm=%q} %d\n", name, counts[i])
	}
	fmt.Fprintf(w, "electd_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "electd_queue_capacity %d\n", queueCap)
	fmt.Fprintf(w, "electd_jobs_running %d\n", running)
	fmt.Fprintf(w, "electd_graphs_registered %d\n", graphs)
	fmt.Fprintf(w, "electd_spectral_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "electd_spectral_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "electd_spectral_computes_total %d\n", computes)
	fmt.Fprintf(w, "electd_spectral_cache_hit_rate %.6f\n", hitRate)
	fmt.Fprintf(w, "electd_job_latency_seconds_p50 %.6f\n", p50)
	fmt.Fprintf(w, "electd_job_latency_seconds_p99 %.6f\n", p99)
	fmt.Fprintf(w, "electd_job_latency_window_size %d\n", n)
	// Cluster-mode wire counters: always emitted (zero off-cluster) so
	// dashboards and smoke checks can assert on their presence.
	fmt.Fprintf(w, "electd_cluster_wire_frames_total %d\n", m.ClusterFrames.Load())
	fmt.Fprintf(w, "electd_cluster_wire_bytes_total %d\n", m.ClusterBytes.Load())
	fmt.Fprintf(w, "electd_cluster_envelopes_total %d\n", m.ClusterEnvelopes.Load())
	fmt.Fprintf(w, "electd_cluster_barriers_total %d\n", m.ClusterBarriers.Load())
	fmt.Fprintf(w, "electd_cluster_barrier_frames_total %d\n", m.ClusterBarrierFrames.Load())
	fmt.Fprintf(w, "electd_cluster_compressed_frames_total %d\n", m.ClusterCompressedFrames.Load())
	fmt.Fprintf(w, "electd_cluster_raw_bytes_total %d\n", m.ClusterRawBytes.Load())
	fmt.Fprintf(w, "electd_cluster_compressed_bytes_total %d\n", m.ClusterCompressedBytes.Load())
	// Tracer counters: always emitted (zero without a tracer) so smoke
	// checks can assert on their presence.
	var emitted, dropped int64
	if m.TraceStats != nil {
		emitted, dropped = m.TraceStats()
	}
	fmt.Fprintf(w, "electd_trace_events_total %d\n", emitted)
	fmt.Fprintf(w, "electd_trace_dropped_total %d\n", dropped)
	m.writeHistograms(w)
}

// writeHistograms renders the per-backend point-latency histograms in
// Prometheus exposition format (cumulative buckets, sum, count).
func (m *Metrics) writeHistograms(w io.Writer) {
	m.histMu.Lock()
	names := make([]string, 0, len(m.algoHist))
	for name := range m.algoHist {
		names = append(names, name)
	}
	sort.Strings(names)
	hists := make([]latencyHist, len(names))
	for i, name := range names {
		hists[i] = *m.algoHist[name]
	}
	m.histMu.Unlock()
	for i, name := range names {
		h := &hists[i]
		cum := int64(0)
		for b, bound := range latencyBounds {
			cum += h.counts[b]
			fmt.Fprintf(w, "electd_point_latency_seconds_bucket{algorithm=%q,le=%q} %d\n", name, trimFloat(bound), cum)
		}
		cum += h.counts[len(latencyBounds)]
		fmt.Fprintf(w, "electd_point_latency_seconds_bucket{algorithm=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "electd_point_latency_seconds_sum{algorithm=%q} %.6f\n", name, h.sum)
		fmt.Fprintf(w, "electd_point_latency_seconds_count{algorithm=%q} %d\n", name, h.total)
	}
}

// trimFloat renders a bucket bound the Prometheus way (no trailing
// zeros: "0.001", "2.5", "100").
func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
