package serve

import (
	"testing"
	"time"

	"wcle/internal/graph"
	"wcle/internal/spectral"
)

// A panic anywhere in a job's execution must fail that job, not kill the
// daemon (and with it every queued job).
func TestJobPanicConfined(t *testing.T) {
	reg := NewRegistry(spectral.ProfileOptions{})
	if _, err := reg.Register("k8", GraphSpec{Family: "clique", N: 8}); err != nil {
		t.Fatal(err)
	}
	reg.profileFn = func(g *graph.Graph) (*spectral.Profile, error) {
		panic("boom: injected profile panic")
	}
	s := NewScheduler(reg, NewMetrics(), SchedulerOptions{})
	job, err := s.Submit(SubmitRequest{Seed: 1, Points: []PointSpec{{Graph: "k8", Trials: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if st := job.State(); st == StateDone || st == StateFailed {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := job.Status()
	if st.State != StateFailed {
		t.Fatalf("panicking job state = %q, want failed", st.State)
	}
	if st.Error == "" {
		t.Fatal("failed job carries no error")
	}
	// The worker survived and the poisoned cache entry resolved to an
	// error rather than an eternally in-flight computation: a follow-up
	// job on the same graph completes, with the cached panic surfaced as
	// the point's SpectralError.
	job2, err := s.Submit(SubmitRequest{Seed: 2, Points: []PointSpec{{Graph: "k8", Trials: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	for time.Now().Before(deadline) {
		if st := job2.State(); st == StateDone || st == StateFailed {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st2 := job2.Status()
	if st2.State != StateDone {
		t.Fatalf("second job state = %q, want done (worker alive, cache not wedged)", st2.State)
	}
	if st2.Result.Points[0].SpectralError == "" {
		t.Fatal("cached panic not surfaced as the point's spectral error")
	}
}

// Oversized graph specs are rejected before any building happens.
func TestGraphSizeCaps(t *testing.T) {
	for _, spec := range []GraphSpec{
		{Family: "clique", N: 2000000000},
		{Family: "rr", N: MaxGraphNodes * 2, D: 8},
		{Family: "hypercube", Dim: 40},
		{Family: "torus", Rows: 1 << 16, Cols: 1 << 16},
		// Rows*Cols overflows int64; the guard must not be fooled by the
		// wrapped-negative product.
		{Family: "torus", Rows: 3037000500, Cols: 3037000500},
		{Family: "explicit", N: MaxGraphNodes * 2, Edges: [][2]int{{0, 1}}},
	} {
		if _, err := spec.Build(); err == nil {
			t.Errorf("oversized spec %+v not rejected", spec)
		}
	}
}

func TestFaultSpecValidate(t *testing.T) {
	if err := (FaultSpec{CrashRound: -5, CrashFrac: 0.2}).Validate(); err == nil {
		t.Fatal("negative crash_round not rejected")
	}
	if err := (FaultSpec{Drop: 0.5, DelayMax: 3, CrashFrac: 0.1, CrashRound: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
}
