package sim

import (
	"errors"
	"fmt"
	"testing"

	"wcle/internal/graph"
)

// testMsg is a trivial payload used by the engine tests.
type testMsg struct {
	val  int
	bits int
	kind string
}

func (m testMsg) Bits() int    { return m.bits }
func (m testMsg) Kind() string { return m.kind }

var _ Message = testMsg{}

// floodProc floods a token: node 0 starts, everyone forwards once.
type floodProc struct {
	node     int
	seen     bool
	seenAt   int
	started  bool
	isSource bool
}

func (p *floodProc) Step(ctx *Context, inbox []Envelope) error {
	if p.isSource && !p.started {
		p.started = true
		p.seen = true
		p.seenAt = ctx.Round()
		for port := 0; port < ctx.Degree(); port++ {
			if err := ctx.Send(port, testMsg{val: 1, bits: 8, kind: "flood"}); err != nil {
				return err
			}
		}
		return nil
	}
	if len(inbox) > 0 && !p.seen {
		p.seen = true
		p.seenAt = ctx.Round()
		for port := 0; port < ctx.Degree(); port++ {
			if err := ctx.Send(port, testMsg{val: 1, bits: 8, kind: "flood"}); err != nil {
				return err
			}
		}
	}
	return nil
}

func floodProcs(n int) []Process {
	procs := make([]Process, n)
	for i := range procs {
		procs[i] = &floodProc{node: i, isSource: i == 0}
	}
	return procs
}

func TestFloodReachesAllAtBFSDistance(t *testing.T) {
	g, err := graph.Hypercube(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	procs := floodProcs(g.N())
	m, err := Run(Config{Graph: g, Seed: 1}, procs)
	if err != nil {
		t.Fatal(err)
	}
	dist := graph.BFSDist(g, 0)
	for v, p := range procs {
		fp := p.(*floodProc)
		if !fp.seen {
			t.Fatalf("node %d never informed", v)
		}
		if fp.seenAt != dist[v] {
			t.Fatalf("node %d informed at %d, BFS distance %d", v, fp.seenAt, dist[v])
		}
	}
	// Every node sends on every port exactly once: messages = sum degrees.
	if m.Messages != int64(2*g.M()) {
		t.Fatalf("messages = %d, want %d", m.Messages, 2*g.M())
	}
	if m.Bits != 8*m.Messages {
		t.Fatalf("bits = %d, want %d", m.Bits, 8*m.Messages)
	}
	if m.ByKind["flood"] != m.Messages {
		t.Fatalf("ByKind accounting wrong: %v", m.ByKind)
	}
	if m.FinalRound < graph.Diameter(g) {
		t.Fatalf("final round %d below diameter", m.FinalRound)
	}
}

func TestCongestDoubleSendRejected(t *testing.T) {
	g, err := graph.Clique(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	procs := []Process{
		processFunc(func(ctx *Context, inbox []Envelope) error {
			if ctx.Round() != 0 {
				return nil
			}
			if err := ctx.Send(0, testMsg{bits: 1, kind: "x"}); err != nil {
				return err
			}
			return ctx.Send(0, testMsg{bits: 1, kind: "x"})
		}),
		nopProc{}, nopProc{},
	}
	_, err = Run(Config{Graph: g, Seed: 1}, procs)
	if !errors.Is(err, ErrCongest) {
		t.Fatalf("want ErrCongest, got %v", err)
	}
}

type nopProc struct{}

func (nopProc) Step(*Context, []Envelope) error { return nil }

type processFunc func(*Context, []Envelope) error

func (f processFunc) Step(ctx *Context, inbox []Envelope) error { return f(ctx, inbox) }

func TestCongestBitCap(t *testing.T) {
	g, err := graph.Clique(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	procs := []Process{
		processFunc(func(ctx *Context, inbox []Envelope) error {
			if ctx.Round() == 0 {
				return ctx.Send(0, testMsg{bits: 100, kind: "big"})
			}
			return nil
		}),
		nopProc{},
	}
	_, err = Run(Config{Graph: g, Seed: 1, MaxMessageBits: 64}, procs)
	if !errors.Is(err, ErrCongest) {
		t.Fatalf("want ErrCongest for oversized message, got %v", err)
	}
	// Same message under a roomier cap is fine.
	procs[0] = processFunc(func(ctx *Context, inbox []Envelope) error {
		if ctx.Round() == 0 {
			return ctx.Send(0, testMsg{bits: 100, kind: "big"})
		}
		return nil
	})
	if _, err := Run(Config{Graph: g, Seed: 1, MaxMessageBits: 128}, procs); err != nil {
		t.Fatalf("within cap should pass: %v", err)
	}
}

func TestInvalidPort(t *testing.T) {
	g, err := graph.Clique(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	procs := []Process{
		processFunc(func(ctx *Context, inbox []Envelope) error {
			return ctx.Send(5, testMsg{bits: 1, kind: "x"})
		}),
		nopProc{},
	}
	if _, err := Run(Config{Graph: g, Seed: 1}, procs); !errors.Is(err, ErrCongest) {
		t.Fatalf("want ErrCongest, got %v", err)
	}
}

// pingPong bounces a counter k times between two nodes.
type pingPong struct {
	limit int
	count int
	start bool
}

func (p *pingPong) Step(ctx *Context, inbox []Envelope) error {
	if p.start && ctx.Round() == 0 {
		return ctx.Send(0, testMsg{val: 1, bits: 4, kind: "ping"})
	}
	for _, env := range inbox {
		v := env.Payload.(testMsg).val
		p.count = v
		if v < p.limit {
			return ctx.Send(env.Port, testMsg{val: v + 1, bits: 4, kind: "ping"})
		}
	}
	return nil
}

func TestPingPongRounds(t *testing.T) {
	g, err := graph.Clique(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := &pingPong{limit: 10, start: true}
	b := &pingPong{limit: 10}
	m, err := Run(Config{Graph: g, Seed: 1}, []Process{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if m.Messages != 10 {
		t.Fatalf("messages = %d, want 10", m.Messages)
	}
	if m.FinalRound != 10 {
		t.Fatalf("final round = %d, want 10", m.FinalRound)
	}
	if a.count+b.count != 10+9 {
		t.Fatalf("counters: a=%d b=%d", a.count, b.count)
	}
}

// wakeProc verifies idle-round skipping: wakes itself far in the future.
type wakeProc struct {
	stepsAt []int
}

func (p *wakeProc) Step(ctx *Context, inbox []Envelope) error {
	p.stepsAt = append(p.stepsAt, ctx.Round())
	if ctx.Round() == 0 {
		ctx.WakeAt(1_000_000)
	}
	return nil
}

func TestIdleRoundSkipping(t *testing.T) {
	g, err := graph.Clique(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := &wakeProc{}
	m, err := Run(Config{Graph: g, Seed: 1}, []Process{p, nopProc{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.stepsAt) != 2 || p.stepsAt[1] != 1_000_000 {
		t.Fatalf("steps at %v", p.stepsAt)
	}
	// Only two busy rounds despite a million simulated rounds.
	if m.BusyRounds != 2 {
		t.Fatalf("busy rounds = %d, want 2", m.BusyRounds)
	}
	if m.FinalRound != 1_000_000 {
		t.Fatalf("final round = %d", m.FinalRound)
	}
}

func TestMaxRounds(t *testing.T) {
	g, err := graph.Clique(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Endless ping-pong.
	p := processFunc(func(ctx *Context, inbox []Envelope) error {
		if ctx.Round() == 0 && ctx.Node() == 0 {
			return ctx.Send(0, testMsg{bits: 1, kind: "p"})
		}
		for _, env := range inbox {
			if err := ctx.Send(env.Port, testMsg{bits: 1, kind: "p"}); err != nil {
				return err
			}
		}
		return nil
	})
	_, err = Run(Config{Graph: g, Seed: 1, MaxRounds: 100}, []Process{p, p})
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("want ErrMaxRounds, got %v", err)
	}
}

func TestMessageBudgetDrops(t *testing.T) {
	g, err := graph.Clique(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	procs := floodProcs(g.N())
	m, err := Run(Config{Graph: g, Seed: 1, MessageBudget: 5}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Messages != 5 {
		t.Fatalf("messages = %d, want exactly budget 5", m.Messages)
	}
	if m.Dropped == 0 {
		t.Fatal("expected drops beyond budget")
	}
}

// Determinism: identical seeds give identical metrics; different seeds give
// (eventually) different random behavior.
type randomWalker struct {
	hops  int
	limit int
	trail []int
}

func (p *randomWalker) Step(ctx *Context, inbox []Envelope) error {
	send := func() error {
		port := ctx.Rand().Intn(ctx.Degree())
		return ctx.Send(port, testMsg{bits: 4, kind: "walk"})
	}
	if ctx.Round() == 0 && ctx.Node() == 0 {
		return send()
	}
	for range inbox {
		p.hops++
		p.trail = append(p.trail, ctx.Node())
		if p.hops+ctx.Round() < p.limit {
			return send()
		}
	}
	return nil
}

func trailOf(procs []Process) []int {
	var out []int
	for _, p := range procs {
		out = append(out, p.(*randomWalker).trail...)
	}
	return out
}

func TestDeterministicReplay(t *testing.T) {
	g, err := graph.Hypercube(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() []Process {
		procs := make([]Process, g.N())
		for i := range procs {
			procs[i] = &randomWalker{limit: 50}
		}
		return procs
	}
	p1, p2, p3 := mk(), mk(), mk()
	m1, err := Run(Config{Graph: g, Seed: 77}, p1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Run(Config{Graph: g, Seed: 77}, p2)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := Run(Config{Graph: g, Seed: 78}, p3)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Messages != m2.Messages || m1.FinalRound != m2.FinalRound {
		t.Fatalf("same seed diverged: %+v vs %+v", m1, m2)
	}
	t1, t2, t3 := trailOf(p1), trailOf(p2), trailOf(p3)
	if fmt.Sprint(t1) != fmt.Sprint(t2) {
		t.Fatal("same seed produced different trails")
	}
	if fmt.Sprint(t1) == fmt.Sprint(t3) && m1.Messages == m3.Messages {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestConcurrentMatchesSequential(t *testing.T) {
	g, err := graph.Torus2D(4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() []Process {
		procs := make([]Process, g.N())
		for i := range procs {
			procs[i] = &randomWalker{limit: 80}
		}
		return procs
	}
	seq, par := mk(), mk()
	ms, err := Run(Config{Graph: g, Seed: 5}, seq)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := Run(Config{Graph: g, Seed: 5, Concurrent: true}, par)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Messages != mp.Messages || ms.FinalRound != mp.FinalRound || ms.Deliveries != mp.Deliveries {
		t.Fatalf("engines diverge: seq %+v vs par %+v", ms, mp)
	}
	if fmt.Sprint(trailOf(seq)) != fmt.Sprint(trailOf(par)) {
		t.Fatal("engines produced different trails")
	}
}

type recordingObserver struct {
	sends int
	kinds map[string]int
}

func (o *recordingObserver) OnSend(round int, from, fromPort, to, toPort int, m Message) {
	o.sends++
	if o.kinds == nil {
		o.kinds = map[string]int{}
	}
	o.kinds[m.Kind()]++
}

func TestObserverSeesEverySend(t *testing.T) {
	g, err := graph.Clique(6, nil)
	if err != nil {
		t.Fatal(err)
	}
	obs := &recordingObserver{}
	m, err := Run(Config{Graph: g, Seed: 1, Observer: obs}, floodProcs(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if int64(obs.sends) != m.Messages {
		t.Fatalf("observer saw %d sends, metrics %d", obs.sends, m.Messages)
	}
	if obs.kinds["flood"] != obs.sends {
		t.Fatalf("kinds: %v", obs.kinds)
	}
}

func TestRunnerValidation(t *testing.T) {
	if _, err := NewRunner(Config{}, nil); err == nil {
		t.Fatal("nil graph should fail")
	}
	g, err := graph.Clique(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRunner(Config{Graph: g}, make([]Process, 2)); err == nil {
		t.Fatal("process count mismatch should fail")
	}
}

func TestRunnerResume(t *testing.T) {
	g, err := graph.Clique(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	procs := floodProcs(g.N())
	r, err := NewRunner(Config{Graph: g, Seed: 1}, procs)
	if err != nil {
		t.Fatal(err)
	}
	r.WakeAll(0)
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if !r.Quiet() {
		t.Fatal("should be quiet after Run")
	}
	first := r.Metrics().Messages
	// Resume: wake node 1; flood already seen, so nothing new happens.
	r.Wake(1, r.Round()+1)
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Metrics().Messages != first {
		t.Fatal("resume should not resend")
	}
}

func TestDeriveSeedSpread(t *testing.T) {
	seen := map[int64]bool{}
	for i := uint64(0); i < 1000; i++ {
		s := DeriveSeed(42, i)
		if seen[s] {
			t.Fatalf("seed collision at idx %d", i)
		}
		seen[s] = true
	}
	if DeriveSeed(42, 7) != DeriveSeed(42, 7) {
		t.Fatal("DeriveSeed not deterministic")
	}
	if DeriveSeed(42, 7) == DeriveSeed(43, 7) {
		t.Fatal("master seed ignored")
	}
}

func TestEnvelopePortIsReceiverSide(t *testing.T) {
	// Build an asymmetric port graph: a path 0-1-2. Node 1 has two ports.
	b := graph.NewBuilder(3)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build("p3", nil)
	if err != nil {
		t.Fatal(err)
	}
	gotPort := -1
	procs := []Process{
		processFunc(func(ctx *Context, inbox []Envelope) error {
			if ctx.Round() == 0 {
				return ctx.Send(0, testMsg{bits: 1, kind: "x"})
			}
			return nil
		}),
		processFunc(func(ctx *Context, inbox []Envelope) error {
			for _, env := range inbox {
				gotPort = env.Port
			}
			return nil
		}),
		nopProc{},
	}
	if _, err := Run(Config{Graph: g, Seed: 1}, procs); err != nil {
		t.Fatal(err)
	}
	want := g.PortTo(1, 0)
	if gotPort != want {
		t.Fatalf("received on port %d, want %d", gotPort, want)
	}
}

// LeanMetrics must drop per-kind accounting while keeping every other
// counter identical to a regular run.
func TestLeanMetricsSkipsByKind(t *testing.T) {
	g, err := graph.Hypercube(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(Config{Graph: g, Seed: 1}, floodProcs(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	lean, err := Run(Config{Graph: g, Seed: 1, LeanMetrics: true}, floodProcs(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if len(lean.ByKind) != 0 {
		t.Fatalf("lean run recorded kinds: %v", lean.ByKind)
	}
	if lean.Messages != full.Messages || lean.Bits != full.Bits ||
		lean.FinalRound != full.FinalRound || lean.Deliveries != full.Deliveries {
		t.Fatalf("lean metrics diverged: %+v vs %+v", lean, full)
	}
}
