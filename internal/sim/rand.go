package sim

import (
	"hash/fnv"
	"math/rand"
)

// Rand is the per-node randomness source handed to processes. It aliases
// math/rand.Rand; every node gets an independent deterministic stream
// derived from the run seed and the node index.
type Rand = rand.Rand

// NewRand returns a deterministic Rand for the given seed.
func NewRand(seed int64) *Rand { return rand.New(rand.NewSource(seed)) }

// DeriveSeed mixes a master seed with a stream index through splitmix64 so
// that per-node streams are statistically independent even for adjacent
// indices. The same (master, idx) pair always yields the same seed, which
// is what makes whole runs replayable.
func DeriveSeed(master int64, idx uint64) int64 {
	z := uint64(master) ^ (idx+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// SeedForKey derives the deterministic seed of one unit of keyed work (a
// trial, a setup, a service job point): the key's FNV-1a hash indexes a
// DeriveSeed stream of the master seed. Every layer that derives seeds
// from stable string keys (the experiment harness's trials, electd's job
// points) goes through this one function so identical keys replay
// identically everywhere.
func SeedForKey(master int64, key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return DeriveSeed(master, h.Sum64())
}
