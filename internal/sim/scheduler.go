package sim

// This file is the scheduler layer of the delivery plane: it owns round
// advancement. The runner asks it for the next round with scheduled wakes
// and for the set of nodes due at that round; everything message-related
// lives in the transport layer (transport.go).

// roundHeap is a min-heap of round numbers. It satisfies heap.Interface so
// callers can drive it with container/heap, but the scheduler uses the
// non-boxing push/pop methods below: routing an int through `any` allocates
// for values outside the runtime's small-int cache, which on long schedules
// means one allocation per scheduled wake.
type roundHeap []int

func (h roundHeap) Len() int           { return len(h) }
func (h roundHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h roundHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }

// Push implements heap.Interface (container/heap appends then restores
// the invariant itself via Less/Swap).
func (h *roundHeap) Push(x any) { *h = append(*h, x.(int)) }

// Pop implements heap.Interface: remove and return the LAST element
// (container/heap has already swapped the minimum there).
func (h *roundHeap) Pop() any {
	old := *h
	n := len(old) - 1
	x := old[n]
	*h = old[:n]
	return x
}

// push inserts a round without boxing, reusing the backing slice's spare
// capacity left behind by earlier pops.
func (h *roundHeap) push(x int) {
	*h = append(*h, x)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent] <= s[i] {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

// pop removes and returns the minimum round. The backing slice is retained
// (truncated, not reallocated) so steady-state push/pop cycles allocate
// nothing.
func (h *roundHeap) pop() int {
	s := *h
	n := len(s) - 1
	min := s[0]
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s[l] < s[smallest] {
			smallest = l
		}
		if r < n && s[r] < s[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return min
}

// scheduler owns the wake timetable: which nodes must be stepped at which
// future rounds. Wake sets are recycled through a free list so an election
// that schedules millions of wakes reuses a handful of maps.
type scheduler struct {
	wakeSet map[int]map[int]struct{} // round -> nodes due
	rounds  roundHeap                // rounds present in wakeSet
	free    []map[int]struct{}       // recycled wake sets
}

func newScheduler() *scheduler {
	return &scheduler{wakeSet: make(map[int]map[int]struct{})}
}

// wake schedules node at round.
func (s *scheduler) wake(node, round int) {
	set, ok := s.wakeSet[round]
	if !ok {
		if n := len(s.free); n > 0 {
			set = s.free[n-1]
			s.free = s.free[:n-1]
		} else {
			set = make(map[int]struct{})
		}
		s.wakeSet[round] = set
		s.rounds.push(round)
	}
	set[node] = struct{}{}
}

// nextRound returns the earliest round with scheduled wakes, or -1.
func (s *scheduler) nextRound() int {
	if len(s.rounds) == 0 {
		return -1
	}
	return s.rounds[0]
}

// popDue removes and returns the wake set for round if it is the earliest
// scheduled one; nil otherwise. The caller must hand the set back through
// recycle once iterated.
func (s *scheduler) popDue(round int) map[int]struct{} {
	if len(s.rounds) == 0 || s.rounds[0] != round {
		return nil
	}
	s.rounds.pop()
	set := s.wakeSet[round]
	delete(s.wakeSet, round)
	return set
}

// recycle clears a set returned by popDue and returns it to the free list.
func (s *scheduler) recycle(set map[int]struct{}) {
	clear(set)
	s.free = append(s.free, set)
}

// pending reports whether any wakes are scheduled.
func (s *scheduler) pending() bool { return len(s.rounds) > 0 }
