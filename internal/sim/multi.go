package sim

import (
	"runtime"
	"sync"
	"time"
)

// This file is the sharded bulk-execution layer: many *independent*
// simulations spread across a small worker pool, each run on the
// sequential engine. For bulk workloads (experiment trials, Monte Carlo
// sweeps) this replaces the goroutine-per-awake-node mode, whose per-round
// spawn-and-barrier overhead is pure cost when whole runs are independent.

// ShardStats aggregates the runs one shard (worker) executed.
type ShardStats struct {
	Shard      int
	Runs       int
	Messages   int64
	Bits       int64
	Deliveries int64
	BusyRounds int64
	FaultDrops int64
	Elapsed    time.Duration
}

// MultiRunner executes a batch of independent simulations across a worker
// pool with per-shard metrics aggregation. Jobs are sharded round-robin:
// shard s runs jobs i with i % shards == s, so the job-to-shard assignment
// (and with it every job's execution environment) is deterministic in the
// batch size and worker count, and results are returned indexed by job —
// independent of scheduling order.
type MultiRunner struct {
	// Workers is the shard count (0 = runtime.NumCPU()).
	Workers int
}

// RunBatch executes jobs 0..n-1. fn runs one whole simulation (typically
// Config + processes + Run on the sequential engine) and returns its
// metrics; it is invoked on the owning shard's goroutine. The returned
// metrics are indexed by job. The first error by job index aborts that
// shard and is returned; other shards finish their current job and stop.
func (mr *MultiRunner) RunBatch(n int, fn func(job int) (Metrics, error)) ([]Metrics, []ShardStats, error) {
	if n <= 0 {
		return nil, nil, nil
	}
	shards := mr.Workers
	if shards <= 0 {
		shards = runtime.NumCPU()
	}
	if shards > n {
		shards = n
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		failed  = false
		errJob  int
		jobErr  error
		metrics = make([]Metrics, n)
		stats   = make([]ShardStats, shards)
	)
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			st := &stats[s]
			st.Shard = s
			start := time.Now()
			for i := s; i < n; i += shards {
				mu.Lock()
				stop := failed
				mu.Unlock()
				if stop {
					break
				}
				m, err := fn(i)
				if err != nil {
					mu.Lock()
					if !failed || i < errJob {
						failed, errJob, jobErr = true, i, err
					}
					mu.Unlock()
					break
				}
				metrics[i] = m
				st.Runs++
				st.Messages += m.Messages
				st.Bits += m.Bits
				st.Deliveries += m.Deliveries
				st.BusyRounds += m.BusyRounds
				st.FaultDrops += m.FaultDrops
			}
			st.Elapsed = time.Since(start)
		}(s)
	}
	wg.Wait()
	if failed {
		return metrics, stats, jobErr
	}
	return metrics, stats, nil
}
