package sim

// This file is the transport layer of the delivery plane: it buffers
// accepted sends and assembles per-destination inboxes.
//
// Every send without a Delay fault is due exactly one round after it was
// accepted, so the transport is double-buffered: the apply phase of round r
// writes envelopes straight into the next round's inbox buffers, and
// delivery at r+1 is a pointer swap — no per-message staging copy, no
// per-round map, no allocation in steady state. Sends a fault plane delays
// further take the slow path: flat per-round batches, merged into the
// inbox buffers (after the direct deliveries) when their round comes up.

// delivery is one delayed message with its destination.
type delivery struct {
	to  int
	env Envelope
}

// batch is the flat queue of one delayed delivery round, in accept order.
type batch struct {
	sends []delivery
}

type transport struct {
	cur     [][]Envelope // inboxes being delivered/stepped this round
	next    [][]Envelope // inboxes for the next round, filled by sends
	touched []int        // nodes with deliveries in cur, first-send order
	pend    []int        // nodes with deliveries in next, first-send order
	nextDue int          // round next's deliveries are due (-1 = none)
	nextCnt int

	late  map[int]*batch // delayed deliveries by round
	lateH roundHeap      // rounds present in late
	free  []*batch

	inFlight int
}

func newTransport(n int) *transport {
	return &transport{
		cur:     make([][]Envelope, n),
		next:    make([][]Envelope, n),
		nextDue: -1,
		late:    make(map[int]*batch),
	}
}

// send buffers env for delivery to node `to` at round `due`; `round` is the
// current round (due > round).
func (t *transport) send(round, due, to int, env Envelope) {
	t.inFlight++
	if due == round+1 {
		if t.nextDue == -1 {
			t.nextDue = due
		}
		if len(t.next[to]) == 0 {
			t.pend = append(t.pend, to)
		}
		t.next[to] = append(t.next[to], env)
		t.nextCnt++
		return
	}
	b, ok := t.late[due]
	if !ok {
		if n := len(t.free); n > 0 {
			b = t.free[n-1]
			t.free = t.free[:n-1]
		} else {
			b = &batch{}
		}
		t.late[due] = b
		t.lateH.push(due)
	}
	b.sends = append(b.sends, delivery{to: to, env: env})
}

// nextDueRound returns the earliest round with pending deliveries, or -1.
func (t *transport) nextDueRound() int {
	next := t.nextDue
	if len(t.lateH) > 0 && (next == -1 || t.lateH[0] < next) {
		next = t.lateH[0]
	}
	return next
}

// deliver assembles the given round's inboxes and returns the destinations
// with at least one delivery, in first-send order (direct deliveries before
// delayed ones). accept, when non-nil, can veto a destination (a crashed
// node); vetoed deliveries are dropped and counted in the returned drop
// count. The caller must call release after stepping the returned nodes.
func (t *transport) deliver(round int, accept func(to int) bool) (awake []int, dropped int) {
	if t.nextDue == round {
		t.cur, t.next = t.next, t.cur
		t.touched, t.pend = t.pend, t.touched
		t.nextDue = -1
		t.inFlight -= t.nextCnt
		t.nextCnt = 0
	}
	if len(t.lateH) > 0 && t.lateH[0] == round {
		t.lateH.pop()
		b := t.late[round]
		delete(t.late, round)
		for _, d := range b.sends {
			if len(t.cur[d.to]) == 0 {
				t.touched = append(t.touched, d.to)
			}
			t.cur[d.to] = append(t.cur[d.to], d.env)
		}
		t.inFlight -= len(b.sends)
		b.sends = b.sends[:0]
		t.free = append(t.free, b)
	}
	if accept != nil && len(t.touched) > 0 {
		kept := t.touched[:0]
		for _, v := range t.touched {
			if accept(v) {
				kept = append(kept, v)
				continue
			}
			dropped += len(t.cur[v])
			t.cur[v] = t.cur[v][:0]
		}
		t.touched = kept
	}
	return t.touched, dropped
}

// inbox returns the assembled inbox of node v for the delivered round.
func (t *transport) inbox(v int) []Envelope { return t.cur[v] }

// release recycles the inbox buffers assembled by the last deliver call.
func (t *transport) release() {
	for _, v := range t.touched {
		t.cur[v] = t.cur[v][:0]
	}
	t.touched = t.touched[:0]
}

// pending reports whether any messages are in flight.
func (t *transport) pending() bool { return t.inFlight > 0 }
