package sim

import (
	"errors"
	"testing"
	"testing/quick"

	"wcle/internal/graph"
)

// gossipAll floods counters until a hop budget is exhausted; used to stress
// the engine with all-to-all traffic.
type gossipAll struct {
	budget int
	sent   int
}

func (p *gossipAll) Step(ctx *Context, inbox []Envelope) error {
	if ctx.Round() >= p.budget {
		return nil
	}
	for port := 0; port < ctx.Degree(); port++ {
		if err := ctx.Send(port, testMsg{val: ctx.Round(), bits: 8, kind: "g"}); err != nil {
			return err
		}
		p.sent++
	}
	ctx.WakeAt(ctx.Round() + 1)
	return nil
}

func TestEngineStressAllToAll(t *testing.T) {
	g, err := graph.Clique(32, nil)
	if err != nil {
		t.Fatal(err)
	}
	rounds := 50
	procs := make([]Process, g.N())
	var nodes []*gossipAll
	for i := range procs {
		nd := &gossipAll{budget: rounds}
		nodes = append(nodes, nd)
		procs[i] = nd
	}
	m, err := Run(Config{Graph: g, Seed: 1}, procs)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(rounds * 2 * g.M()) // every edge direction, every round
	if m.Messages != want {
		t.Fatalf("messages = %d, want %d", m.Messages, want)
	}
	if m.Deliveries != want {
		t.Fatalf("deliveries = %d, want %d", m.Deliveries, want)
	}
	for i, nd := range nodes {
		if nd.sent != rounds*g.Degree(i) {
			t.Fatalf("node %d sent %d", i, nd.sent)
		}
	}
}

func TestWakeAtClampsToFuture(t *testing.T) {
	g, err := graph.Clique(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	var rounds []int
	p := processFunc(func(ctx *Context, inbox []Envelope) error {
		rounds = append(rounds, ctx.Round())
		if len(rounds) < 3 {
			ctx.WakeAt(ctx.Round() - 5) // past: must clamp to next round
		}
		return nil
	})
	if _, err := Run(Config{Graph: g, Seed: 1}, []Process{p, nopProc{}}); err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 3 || rounds[1] != 1 || rounds[2] != 2 {
		t.Fatalf("rounds = %v, want [0 1 2]", rounds)
	}
}

func TestMetricsCopyIsolated(t *testing.T) {
	g, err := graph.Clique(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Config{Graph: g, Seed: 1}, floodProcs(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	r.WakeAll(0)
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	m1 := r.Metrics()
	m1.ByKind["flood"] = -999
	m2 := r.Metrics()
	if m2.ByKind["flood"] == -999 {
		t.Fatal("Metrics() must return an isolated copy")
	}
}

func TestStepErrorAborts(t *testing.T) {
	g, err := graph.Clique(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	p := processFunc(func(ctx *Context, inbox []Envelope) error { return boom })
	_, err = Run(Config{Graph: g, Seed: 1}, []Process{p, nopProc{}})
	if !errors.Is(err, boom) {
		t.Fatalf("want wrapped boom, got %v", err)
	}
}

func TestStepErrorAbortsConcurrent(t *testing.T) {
	g, err := graph.Clique(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	procs := []Process{
		processFunc(func(ctx *Context, inbox []Envelope) error { return nil }),
		processFunc(func(ctx *Context, inbox []Envelope) error { return boom }),
		nopProc{}, nopProc{},
	}
	_, err = Run(Config{Graph: g, Seed: 1, Concurrent: true}, procs)
	if !errors.Is(err, boom) {
		t.Fatalf("want wrapped boom, got %v", err)
	}
}

// Property: for any seed, flood on a random regular graph informs everyone
// with exactly 2m messages under both engines, and the engines agree.
func TestEnginesAgreeProperty(t *testing.T) {
	prop := func(seed int64) bool {
		g, err := graph.RandomRegular(24, 4, NewRand(seed))
		if err != nil {
			return false
		}
		seq, err := Run(Config{Graph: g, Seed: seed}, floodProcs(g.N()))
		if err != nil {
			return false
		}
		par, err := Run(Config{Graph: g, Seed: seed, Concurrent: true}, floodProcs(g.N()))
		if err != nil {
			return false
		}
		return seq.Messages == par.Messages &&
			seq.FinalRound == par.FinalRound &&
			seq.Messages == int64(2*g.M())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestObserverOrderDeterministic(t *testing.T) {
	g, err := graph.Hypercube(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []int {
		var order []int
		obs := observerFunc(func(round int, from, fromPort, to, toPort int, m Message) {
			order = append(order, round*10000+from*100+to)
		})
		if _, err := Run(Config{Graph: g, Seed: 3, Observer: obs}, floodProcs(g.N())); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("observer event counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("observer order diverges at %d", i)
		}
	}
}

type observerFunc func(round int, from, fromPort, to, toPort int, m Message)

func (f observerFunc) OnSend(round int, from, fromPort, to, toPort int, m Message) {
	f(round, from, fromPort, to, toPort, m)
}

func TestZeroBudgetMeansUnlimited(t *testing.T) {
	g, err := graph.Clique(6, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(Config{Graph: g, Seed: 1, MessageBudget: 0}, floodProcs(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if m.Dropped != 0 || m.Messages != int64(2*g.M()) {
		t.Fatalf("budget 0 should be unlimited: %+v", m)
	}
}
