package sim

import "wcle/internal/graph"

// This file is the fault layer of the delivery plane: a pluggable adversary
// that decides the fate of every accepted send and the liveness of every
// node. All implementations are seed-deterministic: the runner resets the
// plane with a seed derived from the run seed and consults it in the same
// deterministic order under both execution modes, so a faulty run replays
// exactly like a perfect one does.
//
// The model is the crash/omission adversary of the randomized
// leader-election literature (Kutten et al., "Sublinear Bounds for
// Randomized Leader Election"): messages may be lost or delayed and nodes
// may crash, but surviving nodes follow the protocol.

// FaultPlane is the adversary interface of the delivery plane.
type FaultPlane interface {
	// Reset binds the plane to one run. It is called once before the first
	// round with a seed derived from the run seed; stateful planes
	// (sampled crash sets, drop coins) must derive all randomness from it.
	Reset(seed int64, g *graph.Graph)

	// Fate decides an accepted send's delivery: an extra delay in rounds
	// beyond the model's one-round latency, and whether the message is
	// delivered at all. It is invoked exactly once per accepted send, in
	// the engine's deterministic apply order.
	Fate(round, from, to int) (delay int, deliver bool)

	// Crashed reports whether node is crashed (permanently stopped) at
	// round. Crashed nodes are not stepped, and deliveries to them are
	// dropped. Crashed must be monotone in round for a fixed node.
	Crashed(node, round int) bool
}

// Perfect is the fault-free plane: every send is delivered after one round,
// no node crashes. A nil Config.Fault behaves identically (and skips the
// per-send interface calls entirely).
type Perfect struct{}

// Reset implements FaultPlane.
func (Perfect) Reset(int64, *graph.Graph) {}

// Fate implements FaultPlane.
func (Perfect) Fate(int, int, int) (int, bool) { return 0, true }

// Crashed implements FaultPlane.
func (Perfect) Crashed(int, int) bool { return false }

// Drop loses each send independently with probability P.
type Drop struct {
	P   float64
	rng *Rand
}

// Reset implements FaultPlane.
func (d *Drop) Reset(seed int64, _ *graph.Graph) { d.rng = NewRand(seed) }

// Fate implements FaultPlane.
func (d *Drop) Fate(int, int, int) (int, bool) { return 0, d.rng.Float64() >= d.P }

// Crashed implements FaultPlane.
func (d *Drop) Crashed(int, int) bool { return false }

// Delay adds an independent uniform extra delay in [0, Max] rounds to each
// send (on top of the model's one-round latency), reordering messages
// across rounds while never losing them.
type Delay struct {
	Max int
	rng *Rand
}

// Reset implements FaultPlane.
func (d *Delay) Reset(seed int64, _ *graph.Graph) { d.rng = NewRand(seed) }

// Fate implements FaultPlane.
func (d *Delay) Fate(int, int, int) (int, bool) {
	if d.Max <= 0 {
		return 0, true
	}
	return d.rng.Intn(d.Max + 1), true
}

// Crashed implements FaultPlane.
func (d *Delay) Crashed(int, int) bool { return false }

// Crash permanently stops nodes at explicitly scheduled rounds: node v
// crashes at round At[v] (inclusive) and never steps, sends, or receives
// again. Messages already in flight from v still arrive.
type Crash struct {
	At map[int]int
}

// Reset implements FaultPlane.
func (c *Crash) Reset(int64, *graph.Graph) {}

// Fate implements FaultPlane.
func (c *Crash) Fate(int, int, int) (int, bool) { return 0, true }

// Crashed implements FaultPlane.
func (c *Crash) Crashed(node, round int) bool {
	at, ok := c.At[node]
	return ok && round >= at
}

// CrashSample crashes a uniformly sampled fraction Frac of the nodes at
// round Round. The crash set is drawn deterministically from the Reset
// seed, so the same run seed always kills the same nodes.
type CrashSample struct {
	Frac  float64
	Round int
	at    map[int]struct{}
}

// Reset implements FaultPlane.
func (c *CrashSample) Reset(seed int64, g *graph.Graph) {
	n := g.N()
	k := int(c.Frac * float64(n))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	c.at = make(map[int]struct{}, k)
	for _, v := range NewRand(seed).Perm(n)[:k] {
		c.at[v] = struct{}{}
	}
}

// Fate implements FaultPlane.
func (c *CrashSample) Fate(int, int, int) (int, bool) { return 0, true }

// Crashed implements FaultPlane.
func (c *CrashSample) Crashed(node, round int) bool {
	if round < c.Round {
		return false
	}
	_, ok := c.at[node]
	return ok
}

// Compose chains fault planes: a send is delivered only if every plane
// delivers it, extra delays add up, and a node is crashed as soon as any
// plane crashes it. Nil and Perfect members are elided; composing zero or
// one effective plane returns the cheapest equivalent.
func Compose(planes ...FaultPlane) FaultPlane {
	var eff []FaultPlane
	for _, p := range planes {
		if p == nil {
			continue
		}
		if _, perfect := p.(Perfect); perfect {
			continue
		}
		eff = append(eff, p)
	}
	switch len(eff) {
	case 0:
		return nil
	case 1:
		return eff[0]
	}
	return &composite{planes: eff}
}

type composite struct {
	planes []FaultPlane
}

// Reset implements FaultPlane, deriving an independent sub-seed per member
// so the members' random streams never alias.
func (c *composite) Reset(seed int64, g *graph.Graph) {
	for i, p := range c.planes {
		p.Reset(DeriveSeed(seed, uint64(i)), g)
	}
}

// Fate implements FaultPlane. Every member is consulted even after one
// drops the send, so each plane's random stream advances identically
// whatever the other planes decide.
func (c *composite) Fate(round, from, to int) (int, bool) {
	delay, deliver := 0, true
	for _, p := range c.planes {
		d, ok := p.Fate(round, from, to)
		delay += d
		deliver = deliver && ok
	}
	return delay, deliver
}

// Crashed implements FaultPlane.
func (c *composite) Crashed(node, round int) bool {
	for _, p := range c.planes {
		if p.Crashed(node, round) {
			return true
		}
	}
	return false
}

// FaultKind labels a fault event.
type FaultKind uint8

// Fault event kinds.
const (
	FaultDrop  FaultKind = iota // a send was lost
	FaultDelay                  // a send was delayed beyond one round
	FaultCrash                  // a node was first observed crashed
)

// String returns the kind's name.
func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultCrash:
		return "crash"
	default:
		return "unknown"
	}
}

// FaultEvent is one fault-plane decision made observable.
type FaultEvent struct {
	Round int
	Kind  FaultKind
	Node  int // destination (drop/delay) or the crashed node
	From  int // sender for drop/delay, -1 for crash
	Delay int // extra rounds for delay events
}

// FaultObserver receives every fault event of a run (see trace.FaultLog).
type FaultObserver interface {
	OnFault(ev FaultEvent)
}
