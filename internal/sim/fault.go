package sim

import "wcle/internal/graph"

// This file is the fault layer of the delivery plane: a pluggable adversary
// that decides the fate of every accepted send and the liveness of every
// node. All implementations are seed-deterministic: the runner resets the
// plane with a seed derived from the run seed and consults it in the same
// deterministic order under both execution modes, so a faulty run replays
// exactly like a perfect one does. The built-in planes key their per-send
// randomness by sender (see ShardAware), which additionally makes a
// sharded cluster run byte-identical to the in-process one under the same
// fault configuration.
//
// The model is the crash/omission adversary of the randomized
// leader-election literature (Kutten et al., "Sublinear Bounds for
// Randomized Leader Election"): messages may be lost or delayed and nodes
// may crash, but surviving nodes follow the protocol.

// FaultPlane is the adversary interface of the delivery plane.
type FaultPlane interface {
	// Reset binds the plane to one run. It is called once before the first
	// round with a seed derived from the run seed; stateful planes
	// (sampled crash sets, drop coins) must derive all randomness from it.
	Reset(seed int64, g *graph.Graph)

	// Fate decides an accepted send's delivery: an extra delay in rounds
	// beyond the model's one-round latency, and whether the message is
	// delivered at all. It is invoked exactly once per accepted send, in
	// the engine's deterministic apply order.
	Fate(round, from, to int) (delay int, deliver bool)

	// Crashed reports whether node is crashed (permanently stopped) at
	// round. Crashed nodes are not stepped, and deliveries to them are
	// dropped. Crashed must be monotone in round for a fixed node.
	Crashed(node, round int) bool
}

// ShardAware is the optional capability that lets a fault plane run on a
// sharded (cluster) election. A plane is shard-safe when its decisions
// are invariant under node placement: Crashed must be a pure function of
// (Reset seed, node, round), and Fate's randomness must be keyed per
// sender — node v's k-th fate consult yields the same answer whichever
// process hosts v. The engine dispatches each node's sends in the same
// deterministic order on every plane (awake nodes in ascending order,
// staged sends in Send order), so per-sender streams make a sharded run's
// fate sequence byte-identical to the in-process one; a single global
// stream (ordered by the interleaved global send sequence) does not
// survive sharding, which is why validateRemote rejects planes that do
// not declare themselves safe.
type ShardAware interface {
	ShardSafe() bool
}

// shardSafe reports whether a plane may run on a sharded election.
func shardSafe(p FaultPlane) bool {
	if p == nil {
		return true
	}
	if sa, ok := p.(ShardAware); ok {
		return sa.ShardSafe()
	}
	return false
}

// senderRands is the per-sender randomness shared by the keyed planes: a
// lazily grown table of independent streams, one per sending node, each
// derived from (Reset seed, sender index).
type senderRands struct {
	seed int64
	rngs []*Rand
}

func (s *senderRands) reset(seed int64, g *graph.Graph) {
	s.seed = seed
	s.rngs = make([]*Rand, g.N())
}

// at returns sender from's stream, creating it on first use (a shard only
// ever consults the streams of the nodes it hosts).
func (s *senderRands) at(from int) *Rand {
	for from >= len(s.rngs) {
		s.rngs = append(s.rngs, nil)
	}
	if s.rngs[from] == nil {
		s.rngs[from] = NewRand(DeriveSeed(s.seed, uint64(from)))
	}
	return s.rngs[from]
}

// Perfect is the fault-free plane: every send is delivered after one round,
// no node crashes. A nil Config.Fault behaves identically (and skips the
// per-send interface calls entirely).
type Perfect struct{}

// Reset implements FaultPlane.
func (Perfect) Reset(int64, *graph.Graph) {}

// Fate implements FaultPlane.
func (Perfect) Fate(int, int, int) (int, bool) { return 0, true }

// Crashed implements FaultPlane.
func (Perfect) Crashed(int, int) bool { return false }

// ShardSafe implements ShardAware.
func (Perfect) ShardSafe() bool { return true }

// Drop loses each send independently with probability P. The drop coins
// are keyed per sender (one stream per sending node), so the plane is
// shard-safe: a cluster run drops exactly the sends the in-process sim
// drops for the same seed.
type Drop struct {
	P float64
	r senderRands
}

// Reset implements FaultPlane.
func (d *Drop) Reset(seed int64, g *graph.Graph) { d.r.reset(seed, g) }

// Fate implements FaultPlane.
func (d *Drop) Fate(_, from, _ int) (int, bool) { return 0, d.r.at(from).Float64() >= d.P }

// Crashed implements FaultPlane.
func (d *Drop) Crashed(int, int) bool { return false }

// ShardSafe implements ShardAware.
func (d *Drop) ShardSafe() bool { return true }

// Delay adds an independent uniform extra delay in [0, Max] rounds to each
// send (on top of the model's one-round latency), reordering messages
// across rounds while never losing them. Delays are keyed per sender, so
// the plane is shard-safe (see ShardAware).
type Delay struct {
	Max int
	r   senderRands
}

// Reset implements FaultPlane.
func (d *Delay) Reset(seed int64, g *graph.Graph) { d.r.reset(seed, g) }

// Fate implements FaultPlane.
func (d *Delay) Fate(_, from, _ int) (int, bool) {
	if d.Max <= 0 {
		return 0, true
	}
	return d.r.at(from).Intn(d.Max + 1), true
}

// Crashed implements FaultPlane.
func (d *Delay) Crashed(int, int) bool { return false }

// ShardSafe implements ShardAware.
func (d *Delay) ShardSafe() bool { return true }

// Crash permanently stops nodes at explicitly scheduled rounds: node v
// crashes at round At[v] (inclusive) and never steps, sends, or receives
// again. Messages already in flight from v still arrive.
type Crash struct {
	At map[int]int
}

// Reset implements FaultPlane.
func (c *Crash) Reset(int64, *graph.Graph) {}

// Fate implements FaultPlane.
func (c *Crash) Fate(int, int, int) (int, bool) { return 0, true }

// Crashed implements FaultPlane.
func (c *Crash) Crashed(node, round int) bool {
	at, ok := c.At[node]
	return ok && round >= at
}

// ShardSafe implements ShardAware: the crash schedule is explicit state,
// consulted identically wherever a node is hosted.
func (c *Crash) ShardSafe() bool { return true }

// CrashSample crashes a uniformly sampled fraction Frac of the nodes at
// round Round. The crash set is drawn deterministically from the Reset
// seed, so the same run seed always kills the same nodes.
type CrashSample struct {
	Frac  float64
	Round int
	at    map[int]struct{}
}

// Reset implements FaultPlane.
func (c *CrashSample) Reset(seed int64, g *graph.Graph) {
	n := g.N()
	k := int(c.Frac * float64(n))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	c.at = make(map[int]struct{}, k)
	for _, v := range NewRand(seed).Perm(n)[:k] {
		c.at[v] = struct{}{}
	}
}

// Fate implements FaultPlane.
func (c *CrashSample) Fate(int, int, int) (int, bool) { return 0, true }

// Crashed implements FaultPlane.
func (c *CrashSample) Crashed(node, round int) bool {
	if round < c.Round {
		return false
	}
	_, ok := c.at[node]
	return ok
}

// ShardSafe implements ShardAware: the crash set is a pure function of the
// Reset seed, so every shard samples the identical set.
func (c *CrashSample) ShardSafe() bool { return true }

// Partition splits the network into two sides for rounds [From, To): every
// send crossing the cut is dropped while the partition holds, and delivery
// heals completely at round To. Side membership is sampled at Reset — a
// uniform Frac of the nodes land on the minority side — so the same run
// seed always cuts the same edges. A zero To (or To <= From) means the
// partition never heals.
type Partition struct {
	// Frac is the fraction of nodes sampled onto the minority side.
	Frac float64
	// From and To bound the partitioned rounds: From <= round < To.
	From, To int
	minority map[int]struct{}
}

// Reset implements FaultPlane.
func (p *Partition) Reset(seed int64, g *graph.Graph) {
	n := g.N()
	k := int(p.Frac * float64(n))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	p.minority = make(map[int]struct{}, k)
	for _, v := range NewRand(seed).Perm(n)[:k] {
		p.minority[v] = struct{}{}
	}
}

// holds reports whether the partition is up at round.
func (p *Partition) holds(round int) bool {
	if round < p.From {
		return false
	}
	return p.To <= p.From || round < p.To
}

// Fate implements FaultPlane: cross-cut sends are lost while the
// partition holds.
func (p *Partition) Fate(round, from, to int) (int, bool) {
	if !p.holds(round) {
		return 0, true
	}
	_, fromMin := p.minority[from]
	_, toMin := p.minority[to]
	return 0, fromMin == toMin
}

// Crashed implements FaultPlane.
func (p *Partition) Crashed(int, int) bool { return false }

// ShardSafe implements ShardAware: side membership is a pure function of
// the Reset seed and Fate consults no per-send randomness.
func (p *Partition) ShardSafe() bool { return true }

// Compose chains fault planes: a send is delivered only if every plane
// delivers it, extra delays add up, and a node is crashed as soon as any
// plane crashes it. Nil and Perfect members are elided; composing zero or
// one effective plane returns the cheapest equivalent.
func Compose(planes ...FaultPlane) FaultPlane {
	var eff []FaultPlane
	for _, p := range planes {
		if p == nil {
			continue
		}
		if _, perfect := p.(Perfect); perfect {
			continue
		}
		eff = append(eff, p)
	}
	switch len(eff) {
	case 0:
		return nil
	case 1:
		return eff[0]
	}
	c := composite{planes: eff}
	var muts []Mutator
	for _, p := range eff {
		if mt, ok := p.(Mutator); ok {
			muts = append(muts, mt)
		}
	}
	if len(muts) > 0 {
		// Keep the Mutator capability visible through the composition;
		// omission-only compositions stay on the cheaper type.
		return &mutComposite{composite: c, muts: muts}
	}
	return &c
}

type composite struct {
	planes []FaultPlane
}

// Reset implements FaultPlane, deriving an independent sub-seed per member
// so the members' random streams never alias.
func (c *composite) Reset(seed int64, g *graph.Graph) {
	for i, p := range c.planes {
		p.Reset(DeriveSeed(seed, uint64(i)), g)
	}
}

// Fate implements FaultPlane. Every member is consulted even after one
// drops the send, so each plane's random stream advances identically
// whatever the other planes decide.
func (c *composite) Fate(round, from, to int) (int, bool) {
	delay, deliver := 0, true
	for _, p := range c.planes {
		d, ok := p.Fate(round, from, to)
		delay += d
		deliver = deliver && ok
	}
	return delay, deliver
}

// Crashed implements FaultPlane.
func (c *composite) Crashed(node, round int) bool {
	for _, p := range c.planes {
		if p.Crashed(node, round) {
			return true
		}
	}
	return false
}

// ShardSafe implements ShardAware: a composition is shard-safe exactly
// when every member is (each member keeps its own independent sub-seeded
// stream, so composition adds no cross-member ordering).
func (c *composite) ShardSafe() bool {
	for _, p := range c.planes {
		if !shardSafe(p) {
			return false
		}
	}
	return true
}

// FaultKind labels a fault event.
type FaultKind uint8

// Fault event kinds.
const (
	FaultDrop   FaultKind = iota // a send was lost
	FaultDelay                   // a send was delayed beyond one round
	FaultCrash                   // a node was first observed crashed
	FaultMutate                  // a send's payload was rewritten in transit
)

// String returns the kind's name.
func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultCrash:
		return "crash"
	case FaultMutate:
		return "mutate"
	default:
		return "unknown"
	}
}

// FaultEvent is one fault-plane decision made observable.
type FaultEvent struct {
	Round int
	Kind  FaultKind
	Node  int // destination (drop/delay) or the crashed node
	From  int // sender for drop/delay, -1 for crash
	Delay int // extra rounds for delay events
}

// FaultObserver receives every fault event of a run (see trace.FaultLog).
type FaultObserver interface {
	OnFault(ev FaultEvent)
}
