package sim

// This file is the distribution extension point of the delivery plane: a
// RemotePlane splits one synchronous-round simulation across processes.
// Each process runs an ordinary Runner over the full graph but hosts only
// a shard of its nodes; the plane carries cross-shard sends and realizes
// the round barrier. internal/cluster implements it over TCP.
//
// The contract that keeps a sharded run byte-identical to a single-process
// one: every shard steps the same global sequence of event rounds (the
// barrier agrees on min-next-event across shards, preserving the skip-idle
// -rounds optimization), a node's inbox holds the same port-sorted
// envelopes wherever its neighbors live, and all per-node randomness
// derives from (seed, node index) — so hosting a node on another process
// moves work, never outcomes.

import (
	"errors"
	"fmt"
)

// RemotePlane hosts a shard of a distributed run. Implementations carry
// envelopes between shards and drive the synchronous-round barrier. All
// methods are called from the Runner's goroutine only.
type RemotePlane interface {
	// Local reports whether this shard hosts node v. The Runner steps
	// (and wakes) only local nodes; sends to non-local destinations go
	// through Send.
	Local(v int) bool

	// Send ships one accepted send to the shard hosting `to`, for
	// delivery at round `due`. Called during the current round's
	// dispatch, before Barrier(round, ...).
	Send(round, due, to int, env Envelope) error

	// Barrier completes the current round: it delivers every envelope any
	// peer sent this round (invoking inject for each), reports this
	// shard's earliest pending event round as computed BEFORE the
	// injections (-1 = locally quiescent before receiving), and blocks
	// until the cluster agrees on the global next event round, which it
	// returns. The pre-receive convention lets the plane piggyback the
	// contribution on the outgoing data frames themselves: the plane
	// accounts for in-flight envelopes on the sender side (it saw every
	// due round this shard shipped), so min over shards of
	// min(localNext, own sent dues) equals the post-receive global
	// minimum the old flush-then-advance handshake computed.
	//
	// A returned -1 means every shard is quiescent and nothing was sent:
	// the run is over. The first call of a run happens at the initial
	// round before anything is stepped and exchanges no envelopes; it
	// still participates so every shard runs the same barrier sequence.
	Barrier(round, localNext int, inject func(due, to int, env Envelope) error) (int, error)
}

// errRemote wraps configuration errors of remote runs.
var errRemote = errors.New("sim: remote plane")

// validateRemote rejects configurations the distributed engine cannot
// honor deterministically. Fault planes are admitted when they declare
// themselves shard-safe (see ShardAware): the built-in adversaries key
// their randomness per sender and decide crashes as pure functions of the
// Reset seed, so each shard reproduces exactly the fate sequence of the
// in-process run for the nodes it hosts. A plane without that declaration
// may consume one global stream ordered by the interleaved send sequence,
// which a sharded run cannot reproduce — rejected. The message budget is
// a single global counter ordered the same way, so it stays rejected.
func validateRemote(cfg Config) error {
	if cfg.Fault != nil && !shardSafe(cfg.Fault) {
		return fmt.Errorf("%w: fault plane %T is not shard-safe (its random stream is ordered by the global send sequence; see sim.ShardAware)", errRemote, cfg.Fault)
	}
	if cfg.MessageBudget > 0 {
		return fmt.Errorf("%w: MessageBudget is not supported on a sharded run (the budget counter is ordered by the global send sequence)", errRemote)
	}
	return nil
}

// inject delivers one envelope received from a peer shard into the local
// transport.
func (r *Runner) inject(due, to int, env Envelope) error {
	if !r.cfg.Remote.Local(to) {
		return fmt.Errorf("%w: received an envelope for node %d, which this shard does not host", errRemote, to)
	}
	if due <= r.round {
		return fmt.Errorf("%w: received an envelope due at round %d while at round %d", errRemote, due, r.round)
	}
	r.tr.send(r.round, due, to, env)
	return nil
}

// runRemote is the distributed Run loop: one barrier iteration per global
// event round. Its structure — report the pre-receive local next event,
// barrier (exchange envelopes, adopt the global minimum), step — is
// identical on every shard, so the barrier sequence is too.
func (r *Runner) runRemote() error {
	plane := r.cfg.Remote
	for {
		localNext := -1
		if !r.Quiet() {
			localNext = r.nextEventRound()
		}
		quiesceSp := r.cfg.Tracer.Start("sim", "quiesce", int64(r.round))
		next, err := plane.Barrier(r.round, localNext, r.inject)
		quiesceSp.Arg("next", int64(next))
		quiesceSp.End()
		if err != nil {
			return err
		}
		if next < 0 {
			return nil
		}
		if next < r.round || (localNext >= 0 && next > localNext) {
			return fmt.Errorf("%w: barrier advanced to round %d (at %d, local next %d)", errRemote, next, r.round, localNext)
		}
		if next > r.cfg.MaxRounds {
			return fmt.Errorf("%w (%d), %d messages so far", ErrMaxRounds, r.cfg.MaxRounds, r.metrics.Messages)
		}
		r.round = next
		if err := r.stepRound(); err != nil {
			return err
		}
	}
}
