package sim

import (
	"container/heap"
	"fmt"
	"testing"

	"wcle/internal/graph"
)

// faultCases enumerates one representative plane per fault family (plus
// composition). Each entry builds a fresh plane: planes are stateful per
// run and must not be shared across engines.
var faultCases = []struct {
	name string
	mk   func() FaultPlane
}{
	{"perfect-nil", func() FaultPlane { return nil }},
	{"perfect", func() FaultPlane { return Perfect{} }},
	{"drop", func() FaultPlane { return &Drop{P: 0.2} }},
	{"delay", func() FaultPlane { return &Delay{Max: 3} }},
	{"crash", func() FaultPlane { return &Crash{At: map[int]int{1: 4, 5: 0}} }},
	{"crash-sample", func() FaultPlane { return &CrashSample{Frac: 0.25, Round: 3} }},
	{"partition", func() FaultPlane { return &Partition{Frac: 0.3, From: 1, To: 5} }},
	{"composite", func() FaultPlane { return Compose(&Drop{P: 0.1}, &Delay{Max: 2}) }},
}

// TestEnginesAgreeUnderFaultPlanes is the equivalence contract of the
// refactored delivery plane: for every fault plane, the sequential engine,
// the goroutine-per-node engine, and a MultiRunner shard must produce
// identical metrics and identical process trajectories.
func TestEnginesAgreeUnderFaultPlanes(t *testing.T) {
	g, err := graph.Torus2D(4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() []Process {
		procs := make([]Process, g.N())
		for i := range procs {
			procs[i] = &randomWalker{limit: 80}
		}
		return procs
	}
	for _, fc := range faultCases {
		t.Run(fc.name, func(t *testing.T) {
			seqP, concP, multiP := mk(), mk(), mk()
			seq, err := Run(Config{Graph: g, Seed: 9, Fault: fc.mk()}, seqP)
			if err != nil {
				t.Fatal(err)
			}
			conc, err := Run(Config{Graph: g, Seed: 9, Fault: fc.mk(), Concurrent: true}, concP)
			if err != nil {
				t.Fatal(err)
			}
			mr := &MultiRunner{Workers: 1}
			batch, _, err := mr.RunBatch(1, func(int) (Metrics, error) {
				return Run(Config{Graph: g, Seed: 9, Fault: fc.mk()}, multiP)
			})
			if err != nil {
				t.Fatal(err)
			}
			multi := batch[0]
			for name, m := range map[string]Metrics{"concurrent": conc, "multirunner": multi} {
				if m.Messages != seq.Messages || m.Deliveries != seq.Deliveries ||
					m.FaultDrops != seq.FaultDrops || m.Delayed != seq.Delayed ||
					m.FinalRound != seq.FinalRound || m.BusyRounds != seq.BusyRounds {
					t.Fatalf("%s engine diverges under %s:\nseq   %+v\nother %+v", name, fc.name, seq, m)
				}
			}
			if fmt.Sprint(trailOf(seqP)) != fmt.Sprint(trailOf(concP)) ||
				fmt.Sprint(trailOf(seqP)) != fmt.Sprint(trailOf(multiP)) {
				t.Fatalf("engines produced different trails under %s", fc.name)
			}
		})
	}
}

// A full drop plane loses every message: the flood never spreads, but every
// accepted send still counts toward message complexity.
func TestDropPlaneLosesMessages(t *testing.T) {
	g, err := graph.Clique(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	procs := floodProcs(g.N())
	m, err := Run(Config{Graph: g, Seed: 1, Fault: &Drop{P: 1.0}}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Messages != int64(g.Degree(0)) {
		t.Fatalf("messages = %d, want the source's %d sends", m.Messages, g.Degree(0))
	}
	if m.FaultDrops != m.Messages || m.Deliveries != 0 {
		t.Fatalf("all sends must be lost: %+v", m)
	}
	for v := 1; v < g.N(); v++ {
		if procs[v].(*floodProc).seen {
			t.Fatalf("node %d informed despite full drop", v)
		}
	}
}

// A delay plane reorders but never loses: the flood still reaches everyone,
// no earlier than their BFS distance, and every send is delivered.
func TestDelayPlaneDeliversEverything(t *testing.T) {
	g, err := graph.Hypercube(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	procs := floodProcs(g.N())
	m, err := Run(Config{Graph: g, Seed: 3, Fault: &Delay{Max: 4}}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Deliveries != m.Messages {
		t.Fatalf("deliveries %d != messages %d under delay-only plane", m.Deliveries, m.Messages)
	}
	if m.Delayed == 0 {
		t.Fatal("Delay{Max:4} delayed nothing (suspicious)")
	}
	dist := graph.BFSDist(g, 0)
	for v, p := range procs {
		fp := p.(*floodProc)
		if !fp.seen {
			t.Fatalf("node %d never informed under delay-only plane", v)
		}
		if fp.seenAt < dist[v] {
			t.Fatalf("node %d informed at %d, before BFS distance %d", v, fp.seenAt, dist[v])
		}
	}
}

// Crashed nodes neither step nor receive; the rest of the network keeps
// running.
func TestCrashStopsNode(t *testing.T) {
	g, err := graph.Clique(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	procs := floodProcs(g.N())
	m, err := Run(Config{Graph: g, Seed: 1, Fault: &Crash{At: map[int]int{2: 0}}}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if procs[2].(*floodProc).seen {
		t.Fatal("crashed node was stepped")
	}
	for _, v := range []int{1, 3} {
		if !procs[v].(*floodProc).seen {
			t.Fatalf("healthy node %d not informed", v)
		}
	}
	// The source's send to node 2 (and the other survivors' forwards to
	// it) are lost at delivery.
	if m.FaultDrops != 3 {
		t.Fatalf("fault drops = %d, want 3 (one per neighbor of the dead node)", m.FaultDrops)
	}
}

// CrashSample kills the same nodes for the same seed, and different ones
// for a different seed (w.h.p. for a quarter of a 64-clique).
func TestCrashSampleSeedDeterministic(t *testing.T) {
	g, err := graph.Clique(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) (Metrics, []bool) {
		procs := floodProcs(g.N())
		m, err := Run(Config{Graph: g, Seed: seed, Fault: &CrashSample{Frac: 0.25, Round: 0}}, procs)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, len(procs))
		for v, p := range procs {
			seen[v] = p.(*floodProc).seen
		}
		return m, seen
	}
	a, aSeen := run(5)
	b, bSeen := run(5)
	_, cSeen := run(6)
	if a.FaultDrops != b.FaultDrops || a.Messages != b.Messages || a.Deliveries != b.Deliveries {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if fmt.Sprint(aSeen) != fmt.Sprint(bSeen) {
		t.Fatal("same seed crashed different nodes")
	}
	if fmt.Sprint(aSeen) == fmt.Sprint(cSeen) {
		t.Fatal("different seeds crashed identical node sets (suspicious)")
	}
}

// The fault observer sees every drop and delay the metrics count, and one
// crash event per dead node.
func TestFaultObserverCounts(t *testing.T) {
	g, err := graph.Clique(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	obs := &countingFaultObserver{}
	m, err := Run(Config{
		Graph: g, Seed: 2,
		Fault:         Compose(&Drop{P: 0.3}, &Delay{Max: 2}, &Crash{At: map[int]int{3: 0, 6: 1}}),
		FaultObserver: obs,
	}, floodProcs(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if obs.crashes != 2 {
		t.Fatalf("crash events = %d, want 2", obs.crashes)
	}
	if obs.delays != m.Delayed {
		t.Fatalf("delay events = %d, metrics %d", obs.delays, m.Delayed)
	}
	// In-transit drop events; crash-delivery drops are only in the metrics.
	if obs.drops > m.FaultDrops || obs.drops == 0 {
		t.Fatalf("drop events = %d, metrics %d", obs.drops, m.FaultDrops)
	}
}

type countingFaultObserver struct {
	drops, delays, crashes int64
}

func (o *countingFaultObserver) OnFault(ev FaultEvent) {
	switch ev.Kind {
	case FaultDrop:
		o.drops++
	case FaultDelay:
		o.delays++
	case FaultCrash:
		o.crashes++
	}
}

// Compose elides nil and Perfect planes and unwraps single members.
func TestComposeElision(t *testing.T) {
	if Compose() != nil || Compose(nil, Perfect{}) != nil {
		t.Fatal("empty composition must be nil (perfect)")
	}
	d := &Drop{P: 0.5}
	if Compose(nil, d, Perfect{}) != FaultPlane(d) {
		t.Fatal("single effective plane must be returned unwrapped")
	}
	c := Compose(&Drop{P: 0.5}, &Delay{Max: 1})
	if _, ok := c.(*composite); !ok {
		t.Fatalf("two planes must compose, got %T", c)
	}
}

// The anonymous model must not leak sender identities unless explicitly
// asked to (Config.DebugFrom).
func TestEnvelopeFromGatedByDebugFrom(t *testing.T) {
	g, err := graph.Clique(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	run := func(debug bool) int {
		from := -2
		procs := []Process{
			processFunc(func(ctx *Context, inbox []Envelope) error {
				if ctx.Round() == 0 {
					return ctx.Send(0, testMsg{bits: 1, kind: "x"})
				}
				return nil
			}),
			processFunc(func(ctx *Context, inbox []Envelope) error {
				for _, env := range inbox {
					from = env.From
				}
				return nil
			}),
		}
		if _, err := Run(Config{Graph: g, Seed: 1, DebugFrom: debug}, procs); err != nil {
			t.Fatal(err)
		}
		return from
	}
	if got := run(false); got != -1 {
		t.Fatalf("default run leaked From = %d, want -1", got)
	}
	if got := run(true); got != 0 {
		t.Fatalf("DebugFrom run got From = %d, want sender 0", got)
	}
}

// The wake heap works both through its non-boxing methods and as a
// container/heap.Interface, and reuses its backing array across pops.
func TestRoundHeap(t *testing.T) {
	var h roundHeap
	for _, r := range []int{500, 3, 1000000, 42, 7} {
		h.push(r)
	}
	heap.Push(&h, 1) // the boxing-compat path
	want := []int{1, 3, 7, 42, 500, 1000000}
	for i, w := range want[:3] {
		if got := h.pop(); got != w {
			t.Fatalf("pop %d = %d, want %d", i, got, w)
		}
	}
	if got := heap.Pop(&h).(int); got != 42 {
		t.Fatalf("heap.Pop = %d, want 42", got)
	}
	before := cap(h)
	h.push(10)
	if cap(h) != before {
		t.Fatal("push after pop reallocated the backing array")
	}
	if h.pop() != 10 || h.pop() != 500 || h.pop() != 1000000 || h.Len() != 0 {
		t.Fatal("heap order wrong after reuse")
	}
}

// A partition that holds forever stops the flood at the cut; the same
// partition healing at round To lets it through afterwards, losing nothing
// once healed.
func TestPartitionBlocksThenHeals(t *testing.T) {
	g, err := graph.Clique(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Never heals (To <= From): minority nodes stay uninformed.
	procs := floodProcs(g.N())
	p := &Partition{Frac: 0.25, From: 0}
	if _, err := Run(Config{Graph: g, Seed: 11, Fault: p}, procs); err != nil {
		t.Fatal(err)
	}
	if len(p.minority) != 4 {
		t.Fatalf("minority size = %d, want 4", len(p.minority))
	}
	_, srcMinority := p.minority[0]
	informed := 0
	for v, pr := range procs {
		if pr.(*floodProc).seen {
			informed++
			if _, min := p.minority[v]; min != srcMinority {
				t.Fatalf("node %d informed across an unhealed cut", v)
			}
		}
	}
	if srcMinority && informed != 4 || !srcMinority && informed != 12 {
		t.Fatalf("informed = %d with source on minority=%v", informed, srcMinority)
	}
	// Heals after round 0: the flood is single-shot, so the heal must
	// come before the informed side forwards. Everyone ends up informed
	// and only the partitioned round drops anything.
	procs = floodProcs(g.N())
	m, err := Run(Config{Graph: g, Seed: 11, Fault: &Partition{Frac: 0.25, From: 0, To: 1}}, procs)
	if err != nil {
		t.Fatal(err)
	}
	for v, pr := range procs {
		if !pr.(*floodProc).seen {
			t.Fatalf("node %d never informed after heal", v)
		}
	}
	if m.FaultDrops == 0 {
		t.Fatal("the partition window dropped nothing (suspicious)")
	}
}

// A sender's fate stream must depend only on (seed, sender): consulting
// Drop for interleaved senders yields the same answers as consulting it
// for each sender alone. This is the invariant that makes the plane
// shard-safe — a shard hosting only some senders replays their fates.
func TestFaultFatesKeyedPerSender(t *testing.T) {
	g, err := graph.Clique(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	consult := func(senders []int) map[int][]bool {
		d := &Drop{P: 0.5}
		d.Reset(42, g)
		got := make(map[int][]bool)
		for _, from := range senders {
			_, ok := d.Fate(0, from, 0)
			got[from] = append(got[from], ok)
		}
		return got
	}
	interleaved := consult([]int{0, 1, 0, 2, 1, 0, 2, 1, 0})
	for from, want := range map[int]int{0: 4, 1: 3, 2: 2} {
		solo := consult([]int{from, from, from, from})
		if fmt.Sprint(interleaved[from]) != fmt.Sprint(solo[from][:want]) {
			t.Fatalf("sender %d's fates depend on interleaving: %v vs %v",
				from, interleaved[from], solo[from][:want])
		}
	}
}

// The remote gate admits exactly the shard-safe planes and still rejects
// message budgets.
func TestValidateRemoteShardSafety(t *testing.T) {
	for _, fc := range faultCases {
		if err := validateRemote(Config{Fault: fc.mk()}); err != nil {
			t.Errorf("shard-safe plane %s rejected: %v", fc.name, err)
		}
	}
	if err := validateRemote(Config{Fault: unsafePlane{}}); err == nil {
		t.Error("plane without ShardAware must be rejected on sharded runs")
	}
	if err := validateRemote(Config{Fault: Compose(&Drop{P: 0.1}, unsafePlane{})}); err == nil {
		t.Error("composition containing an unsafe member must be rejected")
	}
	if err := validateRemote(Config{MessageBudget: 10}); err == nil {
		t.Error("message budgets must stay rejected on sharded runs")
	}
}

// unsafePlane implements FaultPlane without declaring shard safety.
type unsafePlane struct{}

func (unsafePlane) Reset(int64, *graph.Graph)      {}
func (unsafePlane) Fate(int, int, int) (int, bool) { return 0, true }
func (unsafePlane) Crashed(int, int) bool          { return false }

// Out-of-range crash fractions clamp instead of panicking.
func TestCrashSampleFracClamped(t *testing.T) {
	g, err := graph.Clique(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{-0.5, 1.5} {
		m, err := Run(Config{Graph: g, Seed: 1, Fault: &CrashSample{Frac: frac, Round: 0}}, floodProcs(g.N()))
		if err != nil {
			t.Fatalf("frac %v: %v", frac, err)
		}
		if frac < 0 && m.Deliveries == 0 {
			t.Fatal("negative fraction must crash nobody")
		}
		if frac > 1 && m.Messages != 0 {
			t.Fatalf("fraction > 1 must crash everyone, got %d messages", m.Messages)
		}
	}
}
