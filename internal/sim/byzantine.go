package sim

import (
	"fmt"
	"sort"

	"wcle/internal/graph"
)

// This file is the active-adversary extension of the fault plane: a
// seed-sampled set of Byzantine nodes whose every send is adversarially
// mutated in transit. Omission planes (fault.go) decide whether a send
// arrives; a Mutator additionally decides what arrives. Mutations operate
// on the message's canonical wire encoding (the internal/wire codec,
// injected through RegisterMutator so sim never imports wire), which is
// what makes the adversary identical on the in-process sim and the
// sharded TCP cluster: both mutate the same bytes with the same
// sender-keyed randomness, in the same deterministic dispatch order.

// Mutator is the optional fault-plane capability of an active (Byzantine)
// adversary: Mutate may rewrite a send's payload in transit. It is
// consulted once per accepted send, in the engine's deterministic apply
// order, before the omission Fate. The result contract avoids comparing
// Message interface values (payload types need not be comparable):
//
//	out == nil, deliver == true   the send passes untouched
//	out != nil, deliver == true   out is delivered in place of m
//	deliver == false              the send is destroyed (a mutation that
//	                              no longer decodes): a fault drop
type Mutator interface {
	FaultPlane
	Mutate(round, from, to int, m Message) (out Message, deliver bool)
}

// MutateFunc is the wire-injected mutation codec: encode m canonically,
// mutate bytes with rng, decode totally. It follows the Mutator result
// contract: (nil, true) untouched, (m', true) forged, (nil, false)
// destroyed.
type MutateFunc func(rng *Rand, m Message) (Message, bool)

// mutateMessage is the registered mutation codec (see RegisterMutator).
var mutateMessage MutateFunc

// RegisterMutator installs the byte-level mutation codec the Byzantine
// plane applies to adversarial sends. internal/wire registers its
// canonical-encoding mutator from init(); importing any package that
// registers wire codecs (algo, baseline, engine, protocol) links it in.
func RegisterMutator(f MutateFunc) { mutateMessage = f }

// byzSetStream and byzMutStream are the DeriveSeed sub-streams of the
// adversary-set sample and the per-sender mutation randomness.
const (
	byzSetStream = 0xB1
	byzMutStream = 0xB2
)

// Byzantine is the active adversary: a sampled (or pinned) set of nodes
// whose every send is mutated in transit — equivocation (different
// neighbors of one adversarial sender receive independently perturbed
// payloads), forgery (random spans of the encoded payload, where ids and
// rounds live, are overwritten), and bit corruption. Mutations that no
// longer decode destroy the message (a fault drop). Only payload bytes
// are touched — never the envelope's port or sender stamp — so the
// model's anonymity (Envelope.From == -1 without DebugFrom) is preserved
// structurally under forgery.
//
// Mutation randomness is keyed per sender (senderRands), and the
// adversary set is a pure function of the Reset seed, so the plane is
// shard-safe: a sharded cluster run mutates exactly the bytes the
// in-process sim mutates at the same seed.
type Byzantine struct {
	// Frac is the node fraction sampled into the adversary set.
	Frac float64
	// Nodes, when non-empty, pins the adversary set explicitly and
	// overrides Frac. Tests and experiments use it to know the honest
	// set by construction.
	Nodes []int

	adv map[int]struct{}
	r   senderRands
}

// Reset implements FaultPlane: sample (or adopt) the adversary set and
// key the per-sender mutation streams.
func (b *Byzantine) Reset(seed int64, g *graph.Graph) {
	b.r.reset(DeriveSeed(seed, byzMutStream), g)
	if len(b.Nodes) > 0 {
		b.adv = make(map[int]struct{}, len(b.Nodes))
		for _, v := range b.Nodes {
			b.adv[v] = struct{}{}
		}
		return
	}
	n := g.N()
	k := int(b.Frac * float64(n))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	b.adv = make(map[int]struct{}, k)
	for _, v := range NewRand(DeriveSeed(seed, byzSetStream)).Perm(n)[:k] {
		b.adv[v] = struct{}{}
	}
}

// Fate implements FaultPlane: the adversary never omits on its own (it
// composes with Drop/Delay/Crash for that).
func (b *Byzantine) Fate(int, int, int) (int, bool) { return 0, true }

// Crashed implements FaultPlane: adversarial nodes stay up — lying is
// their failure mode.
func (b *Byzantine) Crashed(int, int) bool { return false }

// ShardSafe implements ShardAware: the adversary set is a pure function
// of the Reset seed and mutation randomness is sender-keyed.
func (b *Byzantine) ShardSafe() bool { return true }

// Adversaries returns the adversary set in ascending order (valid after
// Reset). Experiments use it to check an elected leader is honest.
func (b *Byzantine) Adversaries() []int {
	out := make([]int, 0, len(b.adv))
	for v := range b.adv {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// IsAdversary reports whether node v is in the adversary set (valid
// after Reset).
func (b *Byzantine) IsAdversary(v int) bool {
	_, ok := b.adv[v]
	return ok
}

// Mutate implements Mutator: sends from honest nodes pass untouched;
// every send from an adversary is mutated through the registered codec.
// Each send draws fresh per-sender randomness, so one adversarial node's
// simultaneous sends to different neighbors carry independently mutated
// payloads — equivocation falls out of the stream, not a special case.
func (b *Byzantine) Mutate(round, from, to int, m Message) (Message, bool) {
	if _, bad := b.adv[from]; !bad {
		return nil, true
	}
	if mutateMessage == nil {
		panic("sim: Byzantine plane needs the wire mutation codec; import wcle/internal/wire (or a package that registers wire codecs)")
	}
	return mutateMessage(b.r.at(from), m)
}

// SampleAdversaries returns the adversary set a Byzantine{Frac: frac}
// plane would sample at the given Reset seed, without building the plane —
// the honest-set oracle for tests that ship the fraction over the wire.
func SampleAdversaries(seed int64, n int, frac float64) []int {
	k := int(frac * float64(n))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	out := append([]int(nil), NewRand(DeriveSeed(seed, byzSetStream)).Perm(n)[:k]...)
	sort.Ints(out)
	return out
}

// mutComposite is the composite returned by Compose when at least one
// member is a Mutator: Fate/Crashed behave like composite, and Mutate
// chains the mutator members in order. Every mutator is consulted even
// after one destroys the send, so each member's random stream advances
// identically whatever the others decide (the Fate convention).
type mutComposite struct {
	composite
	muts []Mutator
}

// Mutate implements Mutator, threading the (possibly rewritten) payload
// through each member in order.
func (c *mutComposite) Mutate(round, from, to int, m Message) (Message, bool) {
	var cur Message // nil: original m still untouched
	alive := true
	for _, mt := range c.muts {
		in := m
		if alive && cur != nil {
			in = cur
		}
		out, ok := mt.Mutate(round, from, to, in)
		if !alive {
			continue // consulted for stream advance only
		}
		if !ok {
			alive, cur = false, nil
			continue
		}
		if out != nil {
			cur = out
		}
	}
	return cur, alive
}

// String renders the plane for error messages.
func (b *Byzantine) String() string {
	if len(b.Nodes) > 0 {
		return fmt.Sprintf("byzantine(nodes=%v)", b.Nodes)
	}
	return fmt.Sprintf("byzantine(frac=%g)", b.Frac)
}
