// Package sim is a synchronous message-passing simulator for the paper's
// computing model (Section 1): an anonymous port-numbered network running in
// lockstep rounds under the CONGEST discipline. In every round each node may
// send at most one message per incident edge per direction, and each message
// is validated against a configurable bit cap (O(log n) in CONGEST mode,
// O(log^3 n) in the paper's Lemma 12 large-message mode).
//
// The engine is event driven: rounds in which no node is awake are skipped
// in O(1), so simulated time follows the paper's round schedule while CPU
// cost tracks delivered messages. Two execution modes share identical
// semantics and are equivalence-tested: a deterministic sequential loop and
// a goroutine-per-awake-node barrier-synchronized mode.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"sync"

	"wcle/internal/graph"
)

// Message is a protocol payload. Bits reports the message size for CONGEST
// accounting; Kind labels the message class for per-kind metrics.
type Message interface {
	Bits() int
	Kind() string
}

// Envelope is a delivered message. Port is the receiving port at the
// destination node. From identifies the sender for observers and debugging
// only; protocols in the anonymous model must not read it.
type Envelope struct {
	Port    int
	From    int
	Payload Message
}

// Process is the per-node protocol logic. Step is invoked whenever the node
// is awake: at any round where it has incoming messages or a scheduled
// wake-up. The inbox is sorted by receiving port and contains at most one
// envelope per port. Step must not retain the inbox slice.
type Process interface {
	Step(ctx *Context, inbox []Envelope) error
}

// Observer receives a callback for every accepted send. Used by the trace
// recorder and the lower-bound clique-communication-graph tracker.
type Observer interface {
	OnSend(round int, from, fromPort, to, toPort int, m Message)
}

// Config parameterizes a run.
type Config struct {
	Graph *graph.Graph

	// Seed derives all per-node randomness deterministically.
	Seed int64

	// MaxRounds aborts the run (with an error) if simulated time exceeds
	// it. 0 means DefaultMaxRounds.
	MaxRounds int

	// MaxMessageBits, when positive, rejects any message whose Bits()
	// exceed it (a protocol bug under the chosen model).
	MaxMessageBits int

	// MessageBudget, when positive, silently drops sends beyond the budget
	// (counted in Metrics.Dropped). This models the lower-bound experiments
	// where an algorithm is only allowed a fixed message budget.
	MessageBudget int64

	// Concurrent selects the goroutine-per-awake-node execution mode.
	Concurrent bool

	// LeanMetrics drops the per-kind accounting from the send hot path:
	// Metrics.ByKind stays empty and deliver() does no map writes or
	// Kind() string work per message. The experiment harness enables it
	// for bulk trial runs; per-kind counts remain available as an opt-in
	// observer (trace.KindCounter).
	LeanMetrics bool

	// Observer, when non-nil, is invoked for every accepted send.
	Observer Observer
}

// DefaultMaxRounds bounds runaway protocols.
const DefaultMaxRounds = 50_000_000

// Metrics aggregates the model-level costs of a run. Messages and Bits
// count accepted sends (the paper's message complexity); Dropped counts
// sends suppressed by the message budget.
type Metrics struct {
	Messages   int64
	Bits       int64
	Dropped    int64
	Deliveries int64
	BusyRounds int64
	FinalRound int
	ByKind     map[string]int64
}

// ErrCongest is returned by Context.Send on a CONGEST violation: two sends
// on the same port in one round, an oversized message, or an invalid port.
var ErrCongest = errors.New("sim: CONGEST violation")

// ErrMaxRounds is returned by Runner.Run when MaxRounds is exceeded.
var ErrMaxRounds = errors.New("sim: exceeded MaxRounds")

// sendRec is a buffered send applied at the end of the round.
type sendRec struct {
	from, fromPort int
	payload        Message
}

// Context is the per-node handle passed to Step. It is only valid during
// the Step invocation (except for the stable accessors Node/N/Degree/Rand).
type Context struct {
	r    *Runner
	node int
	rng  *Rand

	round    int
	sentPort []bool
	out      []sendRec
	wakes    []int
}

// Node returns this node's index (used for instrumentation; the protocol
// identities of the paper are the random ids chosen by the protocol).
func (c *Context) Node() int { return c.node }

// N returns the network size, which nodes know in the paper's model.
func (c *Context) N() int { return c.r.g.N() }

// Degree returns this node's degree (its number of ports).
func (c *Context) Degree() int { return c.r.g.Degree(c.node) }

// Round returns the current round.
func (c *Context) Round() int { return c.round }

// Rand returns this node's private deterministic randomness source.
func (c *Context) Rand() *Rand { return c.rng }

// Send transmits m on the given port this round. At most one send per port
// per round is allowed; m must respect the configured bit cap. Sends beyond
// the configured message budget are silently dropped (and counted).
func (c *Context) Send(port int, m Message) error {
	if port < 0 || port >= c.Degree() {
		return fmt.Errorf("%w: node %d port %d out of range [0,%d)", ErrCongest, c.node, port, c.Degree())
	}
	if c.sentPort[port] {
		return fmt.Errorf("%w: node %d sent twice on port %d in round %d", ErrCongest, c.node, port, c.round)
	}
	if c.r.cfg.MaxMessageBits > 0 && m.Bits() > c.r.cfg.MaxMessageBits {
		return fmt.Errorf("%w: node %d message kind %q of %d bits exceeds cap %d",
			ErrCongest, c.node, m.Kind(), m.Bits(), c.r.cfg.MaxMessageBits)
	}
	c.sentPort[port] = true
	c.out = append(c.out, sendRec{from: c.node, fromPort: port, payload: m})
	return nil
}

// WakeAt schedules this node to be stepped at the given future round.
func (c *Context) WakeAt(round int) {
	if round <= c.round {
		round = c.round + 1
	}
	c.wakes = append(c.wakes, round)
}

// roundHeap is a min-heap of round numbers.
type roundHeap []int

func (h roundHeap) Len() int            { return len(h) }
func (h roundHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h roundHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *roundHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *roundHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Runner executes processes on a graph. Create with NewRunner; a Runner can
// be resumed (Wake + Run) after quiescence, which the explicit-election and
// lower-bound experiments use for phased protocols.
type Runner struct {
	cfg   Config
	g     *graph.Graph
	procs []Process
	ctxs  []*Context

	round         int
	deliveryRound int                // round at which pending messages are due
	inboxes       map[int][]Envelope // inboxes being delivered this round
	pending       map[int][]Envelope // node -> inbox for the next round
	wakeSet       map[int]map[int]struct{}
	wakeH         roundHeap

	metrics Metrics
	stepErr error
}

// NewRunner validates the configuration and prepares a run. procs must have
// one Process per graph node.
func NewRunner(cfg Config, procs []Process) (*Runner, error) {
	if cfg.Graph == nil {
		return nil, errors.New("sim: Config.Graph is required")
	}
	if len(procs) != cfg.Graph.N() {
		return nil, fmt.Errorf("sim: %d processes for %d nodes", len(procs), cfg.Graph.N())
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	r := &Runner{
		cfg:     cfg,
		g:       cfg.Graph,
		procs:   procs,
		ctxs:    make([]*Context, cfg.Graph.N()),
		pending: make(map[int][]Envelope),
		wakeSet: make(map[int]map[int]struct{}),
		metrics: Metrics{ByKind: make(map[string]int64)},
	}
	for v := range r.ctxs {
		r.ctxs[v] = &Context{
			r:        r,
			node:     v,
			rng:      NewRand(DeriveSeed(cfg.Seed, uint64(v))),
			sentPort: make([]bool, cfg.Graph.Degree(v)),
		}
	}
	return r, nil
}

// Wake schedules node to step at the given round (must be >= current round).
func (r *Runner) Wake(node, round int) {
	if round < r.round {
		round = r.round
	}
	r.addWake(node, round)
}

// WakeAll schedules every node at the given round.
func (r *Runner) WakeAll(round int) {
	for v := 0; v < r.g.N(); v++ {
		r.Wake(v, round)
	}
}

func (r *Runner) addWake(node, round int) {
	set, ok := r.wakeSet[round]
	if !ok {
		set = make(map[int]struct{})
		r.wakeSet[round] = set
		heap.Push(&r.wakeH, round)
	}
	set[node] = struct{}{}
}

// Round returns the current simulated round.
func (r *Runner) Round() int { return r.round }

// Metrics returns a copy of the accumulated metrics.
func (r *Runner) Metrics() Metrics {
	m := r.metrics
	m.ByKind = make(map[string]int64, len(r.metrics.ByKind))
	for k, v := range r.metrics.ByKind {
		m.ByKind[k] = v
	}
	return m
}

// Quiet reports whether no messages are in flight and no wakes are pending.
func (r *Runner) Quiet() bool { return len(r.pending) == 0 && r.wakeH.Len() == 0 }

// Run advances rounds until quiescence (no pending messages, no pending
// wakes) or until MaxRounds, whichever comes first.
func (r *Runner) Run() error {
	for !r.Quiet() {
		next := r.nextEventRound()
		if next > r.cfg.MaxRounds {
			return fmt.Errorf("%w (%d), %d messages so far", ErrMaxRounds, r.cfg.MaxRounds, r.metrics.Messages)
		}
		r.round = next
		if err := r.stepRound(); err != nil {
			return err
		}
	}
	return nil
}

func (r *Runner) nextEventRound() int {
	next := -1
	if len(r.pending) > 0 {
		// Pending messages always deliver exactly one round after they were
		// sent; deliveryRound tracks it.
		next = r.deliveryRound
	}
	if r.wakeH.Len() > 0 {
		if w := r.wakeH[0]; next == -1 || w < next {
			next = w
		}
	}
	if next < r.round {
		next = r.round
	}
	return next
}

func (r *Runner) stepRound() error {
	// Collect awake nodes: those with deliveries due now plus scheduled wakes.
	awake := make([]int, 0, len(r.pending)+8)
	if len(r.pending) > 0 && r.deliveryRound == r.round {
		r.inboxes = r.pending
		r.pending = make(map[int][]Envelope)
		for v := range r.inboxes {
			awake = append(awake, v)
		}
	} else {
		r.inboxes = nil
	}
	if r.wakeH.Len() > 0 && r.wakeH[0] == r.round {
		heap.Pop(&r.wakeH)
		set := r.wakeSet[r.round]
		delete(r.wakeSet, r.round)
		for v := range set {
			if r.inboxes == nil {
				awake = append(awake, v)
			} else if _, has := r.inboxes[v]; !has {
				awake = append(awake, v)
			}
		}
	}
	if len(awake) == 0 {
		return nil
	}
	sort.Ints(awake)
	r.metrics.BusyRounds++
	if r.round > r.metrics.FinalRound {
		r.metrics.FinalRound = r.round
	}

	if r.cfg.Concurrent && len(awake) > 1 {
		r.stepNodesConcurrent(awake)
	} else {
		for _, v := range awake {
			r.stepNode(v)
			if r.stepErr != nil {
				break
			}
		}
	}
	if r.stepErr != nil {
		return r.stepErr
	}

	// Apply buffered sends and wakes deterministically in node order.
	for _, v := range awake {
		ctx := r.ctxs[v]
		for _, s := range ctx.out {
			r.deliver(s)
		}
		ctx.out = ctx.out[:0]
		for _, w := range ctx.wakes {
			r.addWake(v, w)
		}
		ctx.wakes = ctx.wakes[:0]
	}
	if len(r.pending) > 0 {
		r.deliveryRound = r.round + 1
	}
	return nil
}

func (r *Runner) stepNode(v int) {
	ctx := r.ctxs[v]
	ctx.round = r.round
	for p := range ctx.sentPort {
		ctx.sentPort[p] = false
	}
	var inbox []Envelope
	if r.inboxes != nil {
		inbox = r.inboxes[v]
		sort.Slice(inbox, func(i, j int) bool { return inbox[i].Port < inbox[j].Port })
		r.metrics.Deliveries += int64(len(inbox))
	}
	if err := r.procs[v].Step(ctx, inbox); err != nil {
		if r.stepErr == nil {
			r.stepErr = fmt.Errorf("sim: node %d at round %d: %w", v, r.round, err)
		}
	}
}

// stepNodesConcurrent runs the awake nodes' Steps in parallel. Nodes only
// interact through buffered sends (applied after the barrier), so the
// outcome is identical to the sequential order; metrics for deliveries are
// accounted before the fan-out to keep counters race-free.
func (r *Runner) stepNodesConcurrent(awake []int) {
	type res struct {
		node int
		err  error
	}
	// Pre-sort inboxes and count deliveries serially (cheap) so Step
	// goroutines never touch shared metrics.
	inboxes := make([][]Envelope, len(awake))
	for i, v := range awake {
		if r.inboxes != nil {
			in := r.inboxes[v]
			sort.Slice(in, func(a, b int) bool { return in[a].Port < in[b].Port })
			inboxes[i] = in
			r.metrics.Deliveries += int64(len(in))
		}
	}
	var wg sync.WaitGroup
	errs := make([]res, len(awake))
	for i, v := range awake {
		wg.Add(1)
		go func(i, v int) {
			defer wg.Done()
			ctx := r.ctxs[v]
			ctx.round = r.round
			for p := range ctx.sentPort {
				ctx.sentPort[p] = false
			}
			errs[i] = res{node: v, err: r.procs[v].Step(ctx, inboxes[i])}
		}(i, v)
	}
	wg.Wait()
	for _, e := range errs {
		if e.err != nil {
			r.stepErr = fmt.Errorf("sim: node %d at round %d: %w", e.node, r.round, e.err)
			return
		}
	}
}

func (r *Runner) deliver(s sendRec) {
	if r.cfg.MessageBudget > 0 && r.metrics.Messages >= r.cfg.MessageBudget {
		r.metrics.Dropped++
		return
	}
	to := r.g.NeighborAt(s.from, s.fromPort)
	toPort := r.g.BackPort(s.from, s.fromPort)
	r.metrics.Messages++
	r.metrics.Bits += int64(s.payload.Bits())
	if !r.cfg.LeanMetrics {
		r.metrics.ByKind[s.payload.Kind()]++
	}
	if r.cfg.Observer != nil {
		r.cfg.Observer.OnSend(r.round, s.from, s.fromPort, to, toPort, s.payload)
	}
	r.pending[to] = append(r.pending[to], Envelope{Port: toPort, From: s.from, Payload: s.payload})
}

// Run is the one-shot convenience wrapper: wake every node at round 0 and
// run to quiescence.
func Run(cfg Config, procs []Process) (Metrics, error) {
	r, err := NewRunner(cfg, procs)
	if err != nil {
		return Metrics{}, err
	}
	r.WakeAll(0)
	if err := r.Run(); err != nil {
		return r.Metrics(), err
	}
	return r.Metrics(), nil
}
