// Package sim is a synchronous message-passing simulator for the paper's
// computing model (Section 1): an anonymous port-numbered network running in
// lockstep rounds under the CONGEST discipline. In every round each node may
// send at most one message per incident edge per direction, and each message
// is validated against a configurable bit cap (O(log n) in CONGEST mode,
// O(log^3 n) in the paper's Lemma 12 large-message mode).
//
// The engine is composed of three layers (the delivery plane):
//
//   - a scheduler (scheduler.go) owning round advancement and the wake
//     heap, so rounds in which no node is awake are skipped in O(1);
//   - a transport (transport.go) buffering accepted sends double-buffered
//     straight into the next round's inboxes (flat per-round batches for
//     fault-delayed sends) and delivering by pointer swap;
//   - a fault plane (fault.go), a pluggable adversary deciding the fate of
//     every send (Perfect, Drop, Delay) and the liveness of every node
//     (Crash, CrashSample), all seed-deterministic.
//
// Two execution modes share identical semantics and are equivalence-tested
// under every fault plane: a deterministic sequential loop and a
// goroutine-per-awake-node barrier-synchronized mode. For bulk independent
// runs, MultiRunner (multi.go) shards whole simulations across a worker
// pool instead.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"wcle/internal/graph"
	"wcle/internal/obs"
)

// Message is a protocol payload. Bits reports the message size for CONGEST
// accounting; Kind labels the message class for per-kind metrics.
type Message interface {
	Bits() int
	Kind() string
}

// Envelope is a delivered message. Port is the receiving port at the
// destination node. From identifies the sender for observers and debugging
// only; the model is anonymous, so From is -1 unless Config.DebugFrom is
// set.
type Envelope struct {
	Port    int
	From    int
	Payload Message
}

// Process is the per-node protocol logic. Step is invoked whenever the node
// is awake: at any round where it has incoming messages or a scheduled
// wake-up. The inbox is sorted by receiving port and contains at most one
// envelope per port. Step must not retain the inbox slice.
type Process interface {
	Step(ctx *Context, inbox []Envelope) error
}

// Observer receives a callback for every accepted send. Used by the trace
// recorder and the lower-bound clique-communication-graph tracker. Sends
// later lost by the fault plane are still observed: the sender paid for
// them, and message complexity counts them.
type Observer interface {
	OnSend(round int, from, fromPort, to, toPort int, m Message)
}

// Config parameterizes a run.
type Config struct {
	Graph *graph.Graph

	// Seed derives all per-node randomness (and the fault plane's)
	// deterministically.
	Seed int64

	// MaxRounds aborts the run (with an error) if simulated time exceeds
	// it. 0 means DefaultMaxRounds.
	MaxRounds int

	// MaxMessageBits, when positive, rejects any message whose Bits()
	// exceed it (a protocol bug under the chosen model).
	MaxMessageBits int

	// MessageBudget, when positive, silently drops sends beyond the budget
	// (counted in Metrics.Dropped). This models the lower-bound experiments
	// where an algorithm is only allowed a fixed message budget.
	MessageBudget int64

	// Concurrent selects the goroutine-per-awake-node execution mode.
	Concurrent bool

	// LeanMetrics drops the per-kind accounting from the send hot path:
	// Metrics.ByKind stays empty and the transport does no map writes or
	// Kind() string work per message. The experiment harness enables it
	// for bulk trial runs; per-kind counts remain available as an opt-in
	// observer (trace.KindCounter).
	LeanMetrics bool

	// DebugFrom stamps the sender's node index on delivered envelopes.
	// Default runs keep Envelope.From == -1: the model is anonymous, and
	// a protocol must not be able to read sender identities by accident.
	DebugFrom bool

	// Fault, when non-nil, is the adversary of the run. nil means Perfect
	// delivery (and skips the per-send fault calls entirely).
	Fault FaultPlane

	// Remote, when non-nil, makes this Runner host one shard of a
	// distributed run (see remote.go): only nodes the plane reports as
	// Local are woken and stepped, cross-shard sends travel through the
	// plane, and round advancement goes through its barrier. Fault
	// planes must be shard-safe (see ShardAware); message budgets are
	// rejected on sharded runs.
	Remote RemotePlane

	// Observer, when non-nil, is invoked for every accepted send.
	Observer Observer

	// FaultObserver, when non-nil, is invoked for every fault event
	// (drops, delays, crashes).
	FaultObserver FaultObserver

	// Tracer, when non-nil, records per-busy-round compute/flush spans,
	// fault instants, and (on sharded runs) quiesce-barrier spans.
	// Strictly observational: it reads the wall clock but never feeds
	// timing back into scheduling, so a traced run stays byte-identical
	// to an untraced one at the same seed.
	Tracer *obs.Tracer
}

// DefaultMaxRounds bounds runaway protocols.
const DefaultMaxRounds = 50_000_000

// faultSeedStream is the DeriveSeed stream index of the fault plane's
// randomness, far outside the per-node index range.
const faultSeedStream = ^uint64(0) - 0x5EED

// Metrics aggregates the model-level costs of a run. Messages and Bits
// count accepted sends (the paper's message complexity); Dropped counts
// sends suppressed by the message budget; FaultDrops and Delayed count the
// fault plane's interventions (sends it lost — including deliveries to
// crashed nodes — and sends it delayed beyond one round); Mutated counts
// sends an active adversary rewrote in transit (mutations that destroyed
// the message are additionally counted in FaultDrops, preserving
// Messages == Deliveries + FaultDrops at quiescence).
type Metrics struct {
	Messages   int64
	Bits       int64
	Dropped    int64
	FaultDrops int64
	Delayed    int64
	Mutated    int64
	Deliveries int64
	BusyRounds int64
	FinalRound int
	ByKind     map[string]int64
}

// ErrCongest is returned by Context.Send on a CONGEST violation: two sends
// on the same port in one round, an oversized message, or an invalid port.
var ErrCongest = errors.New("sim: CONGEST violation")

// ErrMaxRounds is returned by Runner.Run when MaxRounds is exceeded.
var ErrMaxRounds = errors.New("sim: exceeded MaxRounds")

// stagedSend is a send buffered in the sender's context until the end of
// the round, when the runner moves it into the transport's flat queue.
type stagedSend struct {
	port    int
	payload Message
}

// Context is the per-node handle passed to Step. It is only valid during
// the Step invocation (except for the stable accessors Node/N/Degree/Rand).
type Context struct {
	r    *Runner
	node int
	rng  *Rand

	round    int
	sentPort []bool
	out      []stagedSend
	wakes    []int

	capSend func(port int, m Message) error
	capWake func(round int)
}

// Node returns this node's index (used for instrumentation; the protocol
// identities of the paper are the random ids chosen by the protocol).
func (c *Context) Node() int { return c.node }

// N returns the network size, which nodes know in the paper's model.
func (c *Context) N() int { return c.r.g.N() }

// Degree returns this node's degree (its number of ports).
func (c *Context) Degree() int { return c.r.g.Degree(c.node) }

// Round returns the current round.
func (c *Context) Round() int { return c.round }

// Rand returns this node's private deterministic randomness source.
func (c *Context) Rand() *Rand { return c.rng }

// Send transmits m on the given port this round. At most one send per port
// per round is allowed; m must respect the configured bit cap. Sends beyond
// the configured message budget are silently dropped (and counted).
func (c *Context) Send(port int, m Message) error {
	if port < 0 || port >= c.Degree() {
		return fmt.Errorf("%w: node %d port %d out of range [0,%d)", ErrCongest, c.node, port, c.Degree())
	}
	if c.capSend != nil {
		// Captured sends are logical: the capturing wrapper owns the
		// physical frames (and their CONGEST accounting) itself.
		return c.capSend(port, m)
	}
	if c.sentPort[port] {
		return fmt.Errorf("%w: node %d sent twice on port %d in round %d", ErrCongest, c.node, port, c.round)
	}
	if c.r.cfg.MaxMessageBits > 0 && m.Bits() > c.r.cfg.MaxMessageBits {
		return fmt.Errorf("%w: node %d message kind %q of %d bits exceeds cap %d",
			ErrCongest, c.node, m.Kind(), m.Bits(), c.r.cfg.MaxMessageBits)
	}
	c.sentPort[port] = true
	c.out = append(c.out, stagedSend{port: port, payload: m})
	return nil
}

// WakeAt schedules this node to be stepped at the given future round.
func (c *Context) WakeAt(round int) {
	if round <= c.round {
		round = c.round + 1
	}
	if c.capWake != nil {
		c.capWake(round)
		return
	}
	c.wakes = append(c.wakes, round)
}

// Capture reroutes this context's Send and WakeAt calls to the given
// hooks until the returned restore function runs. A protocol wrapper
// (engine's committee validation) installs it around the inner
// protocol's Step so inner sends become logical intents the wrapper
// re-transmits under its own framing: captured sends skip the per-port
// CONGEST bookkeeping and the bit cap (the wrapper enforces both on the
// frames it actually emits), captured wakes arrive pre-clamped to a
// strictly future round. Either hook may be nil to leave that path
// un-captured. Captures nest; restore must run before Step returns.
func (c *Context) Capture(onSend func(port int, m Message) error, onWake func(round int)) (restore func()) {
	prevSend, prevWake := c.capSend, c.capWake
	if onSend != nil {
		c.capSend = onSend
	}
	if onWake != nil {
		c.capWake = onWake
	}
	return func() { c.capSend, c.capWake = prevSend, prevWake }
}

// Runner executes processes on a graph, composing the scheduler, transport
// and fault layers. Create with NewRunner; a Runner can be resumed
// (Wake + Run) after quiescence, which the explicit-election and
// lower-bound experiments use for phased protocols.
type Runner struct {
	cfg   Config
	g     *graph.Graph
	procs []Process
	ctxs  []*Context

	round int
	sched *scheduler
	tr    *transport
	fault FaultPlane
	mut   Mutator // r.fault's Mutator capability, cached off the hot path

	awake      []int  // reused per-round scratch
	crashNoted []bool // fault events emitted once per crashed node

	metrics Metrics
	stepErr error
}

// NewRunner validates the configuration and prepares a run. procs must have
// one Process per graph node.
func NewRunner(cfg Config, procs []Process) (*Runner, error) {
	if cfg.Graph == nil {
		return nil, errors.New("sim: Config.Graph is required")
	}
	if len(procs) != cfg.Graph.N() {
		return nil, fmt.Errorf("sim: %d processes for %d nodes", len(procs), cfg.Graph.N())
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	if cfg.Remote != nil {
		if err := validateRemote(cfg); err != nil {
			return nil, err
		}
	}
	r := &Runner{
		cfg:     cfg,
		g:       cfg.Graph,
		procs:   procs,
		ctxs:    make([]*Context, cfg.Graph.N()),
		sched:   newScheduler(),
		tr:      newTransport(cfg.Graph.N()),
		fault:   cfg.Fault,
		metrics: Metrics{ByKind: make(map[string]int64)},
	}
	if _, perfect := r.fault.(Perfect); perfect {
		r.fault = nil // same semantics, no per-send interface calls
	}
	if r.fault != nil {
		r.fault.Reset(DeriveSeed(cfg.Seed, faultSeedStream), r.g)
		r.crashNoted = make([]bool, cfg.Graph.N())
		if mt, ok := r.fault.(Mutator); ok {
			r.mut = mt
		}
	}
	for v := range r.ctxs {
		r.ctxs[v] = &Context{
			r:        r,
			node:     v,
			rng:      NewRand(DeriveSeed(cfg.Seed, uint64(v))),
			sentPort: make([]bool, cfg.Graph.Degree(v)),
		}
	}
	return r, nil
}

// Wake schedules node to step at the given round (must be >= current
// round). On a sharded run, wakes for nodes this shard does not host are
// ignored: their hosting shard schedules them.
func (r *Runner) Wake(node, round int) {
	if r.cfg.Remote != nil && !r.cfg.Remote.Local(node) {
		return
	}
	if round < r.round {
		round = r.round
	}
	r.sched.wake(node, round)
}

// WakeAll schedules every node at the given round.
func (r *Runner) WakeAll(round int) {
	for v := 0; v < r.g.N(); v++ {
		r.Wake(v, round)
	}
}

// Round returns the current simulated round.
func (r *Runner) Round() int { return r.round }

// Metrics returns a copy of the accumulated metrics.
func (r *Runner) Metrics() Metrics {
	m := r.metrics
	m.ByKind = make(map[string]int64, len(r.metrics.ByKind))
	for k, v := range r.metrics.ByKind {
		m.ByKind[k] = v
	}
	return m
}

// Quiet reports whether no messages are in flight and no wakes are pending.
func (r *Runner) Quiet() bool { return !r.tr.pending() && !r.sched.pending() }

// Run advances rounds until quiescence (no pending messages, no pending
// wakes) or until MaxRounds, whichever comes first. On a sharded run,
// quiescence is global: the run ends when every shard's barrier agrees
// nothing is pending anywhere.
func (r *Runner) Run() error {
	if r.cfg.Remote != nil {
		return r.runRemote()
	}
	for !r.Quiet() {
		next := r.nextEventRound()
		if next > r.cfg.MaxRounds {
			return fmt.Errorf("%w (%d), %d messages so far", ErrMaxRounds, r.cfg.MaxRounds, r.metrics.Messages)
		}
		r.round = next
		if err := r.stepRound(); err != nil {
			return err
		}
	}
	return nil
}

// nextEventRound asks the transport and the scheduler for their earliest
// events and returns the sooner, clamped to the current round.
func (r *Runner) nextEventRound() int {
	next := r.tr.nextDueRound()
	if w := r.sched.nextRound(); w >= 0 && (next == -1 || w < next) {
		next = w
	}
	if next < r.round {
		next = r.round
	}
	return next
}

// noteCrash emits the once-per-node crash event.
func (r *Runner) noteCrash(v int) {
	if r.crashNoted[v] {
		return
	}
	r.crashNoted[v] = true
	r.observeFault(FaultEvent{Round: r.round, Kind: FaultCrash, Node: v, From: -1})
}

// observeFault fans one fault event out to the configured observer and, as
// an instant event, to the tracer. Fault events are rare relative to sends,
// so the two nil checks per event are off the hot path.
func (r *Runner) observeFault(ev FaultEvent) {
	if r.cfg.FaultObserver != nil {
		r.cfg.FaultObserver.OnFault(ev)
	}
	if tr := r.cfg.Tracer; tr.Enabled() {
		args := map[string]int64{"node": int64(ev.Node), "from": int64(ev.From)}
		if ev.Delay > 0 {
			args["delay"] = int64(ev.Delay)
		}
		tr.Instant("fault", ev.Kind.String(), int64(ev.Round), args)
	}
}

// acceptDelivery is the transport's destination filter: deliveries to
// crashed nodes are dropped (counted in Metrics.FaultDrops; the node's
// FaultCrash event already marks it dead, so no per-message drop events
// are emitted for them).
func (r *Runner) acceptDelivery(to int) bool {
	if !r.fault.Crashed(to, r.round) {
		return true
	}
	r.noteCrash(to)
	return false
}

func (r *Runner) stepRound() error {
	// Collect awake nodes: those with deliveries due now plus scheduled
	// wakes (minus crashed nodes).
	var accept func(int) bool
	if r.fault != nil {
		accept = r.acceptDelivery
	}
	delivered, crashDrops := r.tr.deliver(r.round, accept)
	r.metrics.FaultDrops += int64(crashDrops)
	awake := append(r.awake[:0], delivered...)
	if set := r.sched.popDue(r.round); set != nil {
		for v := range set {
			if r.fault != nil && r.fault.Crashed(v, r.round) {
				r.noteCrash(v)
				continue
			}
			if len(r.tr.inbox(v)) == 0 {
				awake = append(awake, v)
			}
		}
		r.sched.recycle(set)
	}
	r.awake = awake
	if len(awake) == 0 {
		r.tr.release()
		return nil
	}
	sort.Ints(awake)
	r.metrics.BusyRounds++
	if r.round > r.metrics.FinalRound {
		r.metrics.FinalRound = r.round
	}

	computeSp := r.cfg.Tracer.Start("sim", "compute", int64(r.round))
	computeSp.Arg("awake", int64(len(awake)))
	if r.cfg.Concurrent && len(awake) > 1 {
		r.stepNodesConcurrent(awake)
	} else {
		for _, v := range awake {
			r.stepNode(v)
			if r.stepErr != nil {
				break
			}
		}
	}
	computeSp.End()
	r.tr.release()
	if r.stepErr != nil {
		return r.stepErr
	}

	// Move buffered sends into the transport and wakes into the scheduler
	// deterministically in node order; the fault plane rules on each send
	// here, so its random stream advances identically in both execution
	// modes.
	flushSp := r.cfg.Tracer.Start("sim", "flush", int64(r.round))
	msgsBefore := r.metrics.Messages
	for _, v := range awake {
		ctx := r.ctxs[v]
		for _, s := range ctx.out {
			r.dispatch(v, s.port, s.payload)
		}
		ctx.out = ctx.out[:0]
		for _, w := range ctx.wakes {
			r.sched.wake(v, w)
		}
		ctx.wakes = ctx.wakes[:0]
	}
	flushSp.Arg("sends", r.metrics.Messages-msgsBefore)
	flushSp.End()
	// A remote send may have failed during dispatch (stepErr is also how
	// the plane surfaces a broken connection mid-round).
	return r.stepErr
}

func (r *Runner) stepNode(v int) {
	ctx := r.ctxs[v]
	ctx.round = r.round
	for p := range ctx.sentPort {
		ctx.sentPort[p] = false
	}
	inbox := r.tr.inbox(v)
	if len(inbox) > 0 {
		sortByPort(inbox)
		r.metrics.Deliveries += int64(len(inbox))
	}
	if err := r.procs[v].Step(ctx, inbox); err != nil {
		if r.stepErr == nil {
			r.stepErr = fmt.Errorf("sim: node %d at round %d: %w", v, r.round, err)
		}
	}
}

// sortByPort orders an inbox by receiving port. Ports are unique within a
// round (one send per edge per direction), so insertion sort is exact and
// avoids sort.Slice's closure allocation on the hot path.
func sortByPort(inbox []Envelope) {
	for i := 1; i < len(inbox); i++ {
		for j := i; j > 0 && inbox[j].Port < inbox[j-1].Port; j-- {
			inbox[j], inbox[j-1] = inbox[j-1], inbox[j]
		}
	}
}

// stepNodesConcurrent runs the awake nodes' Steps in parallel. Nodes only
// interact through buffered sends (applied after the barrier), so the
// outcome is identical to the sequential order; metrics for deliveries are
// accounted before the fan-out to keep counters race-free.
func (r *Runner) stepNodesConcurrent(awake []int) {
	type res struct {
		node int
		err  error
	}
	// Pre-sort inboxes and count deliveries serially (cheap) so Step
	// goroutines never touch shared state.
	inboxes := make([][]Envelope, len(awake))
	for i, v := range awake {
		if in := r.tr.inbox(v); len(in) > 0 {
			sortByPort(in)
			inboxes[i] = in
			r.metrics.Deliveries += int64(len(in))
		}
	}
	var wg sync.WaitGroup
	errs := make([]res, len(awake))
	for i, v := range awake {
		wg.Add(1)
		go func(i, v int) {
			defer wg.Done()
			ctx := r.ctxs[v]
			ctx.round = r.round
			for p := range ctx.sentPort {
				ctx.sentPort[p] = false
			}
			errs[i] = res{node: v, err: r.procs[v].Step(ctx, inboxes[i])}
		}(i, v)
	}
	wg.Wait()
	for _, e := range errs {
		if e.err != nil {
			r.stepErr = fmt.Errorf("sim: node %d at round %d: %w", e.node, r.round, e.err)
			return
		}
	}
}

// dispatch accounts one staged send and hands it to the fault plane and the
// transport. Budget drops suppress the send entirely; fault drops lose a
// sent (and counted) message in transit.
func (r *Runner) dispatch(from, fromPort int, payload Message) {
	if r.cfg.MessageBudget > 0 && r.metrics.Messages >= r.cfg.MessageBudget {
		r.metrics.Dropped++
		return
	}
	to := r.g.NeighborAt(from, fromPort)
	toPort := r.g.BackPort(from, fromPort)
	r.metrics.Messages++
	r.metrics.Bits += int64(payload.Bits())
	if !r.cfg.LeanMetrics {
		r.metrics.ByKind[payload.Kind()]++
	}
	if r.cfg.Observer != nil {
		r.cfg.Observer.OnSend(r.round, from, fromPort, to, toPort, payload)
	}
	// The active adversary rewrites the payload after the send is accounted
	// (the sender paid message complexity for the original) and before the
	// omission Fate; a mutation that destroyed the message is a fault drop.
	if r.mut != nil {
		forged, deliver := r.mut.Mutate(r.round, from, to, payload)
		if !deliver {
			r.metrics.Mutated++
			r.metrics.FaultDrops++
			r.observeFault(FaultEvent{Round: r.round, Kind: FaultMutate, Node: to, From: from})
			return
		}
		if forged != nil {
			r.metrics.Mutated++
			r.observeFault(FaultEvent{Round: r.round, Kind: FaultMutate, Node: to, From: from})
			payload = forged
		}
	}
	due := r.round + 1
	if r.fault != nil {
		delay, deliver := r.fault.Fate(r.round, from, to)
		if !deliver {
			r.metrics.FaultDrops++
			r.observeFault(FaultEvent{Round: r.round, Kind: FaultDrop, Node: to, From: from})
			return
		}
		if delay > 0 {
			r.metrics.Delayed++
			r.observeFault(FaultEvent{Round: r.round, Kind: FaultDelay, Node: to, From: from, Delay: delay})
			due += delay
		}
	}
	sender := -1
	if r.cfg.DebugFrom {
		sender = from
	}
	env := Envelope{Port: toPort, From: sender, Payload: payload}
	if r.cfg.Remote != nil && !r.cfg.Remote.Local(to) {
		if err := r.cfg.Remote.Send(r.round, due, to, env); err != nil && r.stepErr == nil {
			r.stepErr = fmt.Errorf("sim: remote send from node %d at round %d: %w", from, r.round, err)
		}
		return
	}
	r.tr.send(r.round, due, to, env)
}

// Run is the one-shot convenience wrapper: wake every node at round 0 and
// run to quiescence.
func Run(cfg Config, procs []Process) (Metrics, error) {
	r, err := NewRunner(cfg, procs)
	if err != nil {
		return Metrics{}, err
	}
	r.WakeAll(0)
	if err := r.Run(); err != nil {
		return r.Metrics(), err
	}
	m := r.Metrics()
	// End-of-run message-kind breakdown, one instant per kind in sorted
	// order so trace files are deterministic for a deterministic run.
	if tr := cfg.Tracer; tr.Enabled() && len(m.ByKind) > 0 {
		kinds := make([]string, 0, len(m.ByKind))
		for k := range m.ByKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			tr.Instant("kind", k, -1, map[string]int64{"count": m.ByKind[k]})
		}
	}
	return m, nil
}
