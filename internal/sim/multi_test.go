package sim

import (
	"errors"
	"testing"

	"wcle/internal/graph"
)

// RunBatch returns metrics indexed by job and per-shard aggregates that
// add up, whatever the worker count.
func TestMultiRunnerShardingAndStats(t *testing.T) {
	g, err := graph.Clique(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	runJob := func(i int) (Metrics, error) {
		return Run(Config{Graph: g, Seed: int64(i)}, floodProcs(g.N()))
	}
	const jobs = 7
	want, err := runJob(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		mr := &MultiRunner{Workers: workers}
		metrics, stats, err := mr.RunBatch(jobs, runJob)
		if err != nil {
			t.Fatal(err)
		}
		if len(metrics) != jobs || len(stats) != workers {
			t.Fatalf("got %d metrics, %d shards", len(metrics), len(stats))
		}
		var runs int
		var messages int64
		for s, st := range stats {
			if st.Shard != s {
				t.Fatalf("shard %d labeled %d", s, st.Shard)
			}
			runs += st.Runs
			messages += st.Messages
		}
		if runs != jobs {
			t.Fatalf("shard runs sum to %d, want %d", runs, jobs)
		}
		var total int64
		for i, m := range metrics {
			if m.Messages != want.Messages {
				t.Fatalf("job %d messages %d, want %d (flood is seed-independent)", i, m.Messages, want.Messages)
			}
			total += m.Messages
		}
		if messages != total {
			t.Fatalf("shard message totals %d != job totals %d", messages, total)
		}
	}
}

// A failing job surfaces its error; the batch does not hang.
func TestMultiRunnerError(t *testing.T) {
	boom := errors.New("boom")
	mr := &MultiRunner{Workers: 2}
	_, _, err := mr.RunBatch(5, func(i int) (Metrics, error) {
		if i == 3 {
			return Metrics{}, boom
		}
		return Metrics{}, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if _, _, err := mr.RunBatch(0, nil); err != nil {
		t.Fatalf("empty batch should be a no-op, got %v", err)
	}
}
