package sim

import (
	"testing"

	"wcle/internal/graph"
)

// The sim package cannot import wire (wire imports sim), so the sim-side
// Byzantine tests register a deterministic stand-in mutation codec: one
// rng draw per adversarial send deciding destroyed / untouched / forged
// (forged redelivers the original value, which exercises the accounting
// without needing byte codecs). The real byte-level codec is tested from
// internal/wire (FuzzByzantineMutate) and end-to-end from internal/engine
// and the algotest battery.
func init() {
	RegisterMutator(func(rng *Rand, m Message) (Message, bool) {
		switch rng.Intn(3) {
		case 0:
			return nil, false // destroyed
		case 1:
			return nil, true // untouched
		default:
			return m, true // forged
		}
	})
	// The engine-equivalence contract must hold for the active adversary
	// exactly like the omission planes.
	faultCases = append(faultCases,
		struct {
			name string
			mk   func() FaultPlane
		}{"byzantine", func() FaultPlane { return &Byzantine{Frac: 0.4} }},
		struct {
			name string
			mk   func() FaultPlane
		}{"byzantine-composite", func() FaultPlane {
			return Compose(&Drop{P: 0.1}, &Byzantine{Frac: 0.3}, &Delay{Max: 2})
		}},
	)
}

func TestByzantineSampleDeterministic(t *testing.T) {
	g, err := graph.Clique(20, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := &Byzantine{Frac: 0.25}
	a.Reset(42, g)
	first := a.Adversaries()
	if len(first) != 5 {
		t.Fatalf("sampled %d adversaries, want 5", len(first))
	}
	b := &Byzantine{Frac: 0.25}
	b.Reset(42, g)
	second := b.Adversaries()
	if len(first) != len(second) {
		t.Fatalf("resample size diverged: %v vs %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("resample diverged: %v vs %v", first, second)
		}
	}
	// The oracle used by tests that only know (seed, n, frac) must agree
	// with the plane's own sample. The plane is reset with the derived
	// fault-stream seed by the runner, so compare at the raw seed level.
	oracle := SampleAdversaries(42, g.N(), 0.25)
	for i := range first {
		if first[i] != oracle[i] {
			t.Fatalf("SampleAdversaries oracle %v disagrees with plane %v", oracle, first)
		}
	}
	c := &Byzantine{Frac: 0.25}
	c.Reset(43, g)
	same := true
	third := c.Adversaries()
	for i := range first {
		if first[i] != third[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds sampled the identical set %v", first)
	}
}

func TestByzantinePinnedNodes(t *testing.T) {
	g, err := graph.Cycle(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := &Byzantine{Frac: 0.9, Nodes: []int{6, 2}}
	a.Reset(7, g)
	got := a.Adversaries()
	if len(got) != 2 || got[0] != 2 || got[1] != 6 {
		t.Fatalf("pinned set = %v, want [2 6]", got)
	}
	if !a.IsAdversary(2) || !a.IsAdversary(6) || a.IsAdversary(0) {
		t.Fatal("IsAdversary disagrees with pinned set")
	}
	if a.Crashed(2, 100) {
		t.Fatal("adversaries must not crash")
	}
	if d, ok := a.Fate(0, 2, 3); d != 0 || !ok {
		t.Fatal("the byzantine plane must not omit on its own")
	}
}

func TestByzantineFracClamped(t *testing.T) {
	g, err := graph.Clique(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for frac, want := range map[float64]int{-1: 0, 0: 0, 2: 4, 1: 4} {
		a := &Byzantine{Frac: frac}
		a.Reset(1, g)
		if got := len(a.Adversaries()); got != want {
			t.Fatalf("frac %g sampled %d adversaries, want %d", frac, got, want)
		}
	}
}

// TestByzantineAccounting holds the active adversary to the accounting
// identity of the fault layer: accepted sends either deliver or count as
// fault drops, and every mutation event is mirrored in Metrics.Mutated
// and the fault observer stream.
func TestByzantineAccounting(t *testing.T) {
	g, err := graph.Clique(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := &countObserver{}
	m, err := Run(Config{
		Graph:         g,
		Seed:          3,
		Fault:         &Byzantine{Frac: 0.5},
		FaultObserver: counts,
	}, floodProcs(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if m.Mutated == 0 {
		t.Fatal("a half-byzantine clique flood mutated nothing")
	}
	if m.Messages != m.Deliveries+m.FaultDrops {
		t.Fatalf("accounting identity broken: %+v", m)
	}
	if counts.kinds[FaultMutate] != m.Mutated {
		t.Fatalf("observer saw %d mutate events, metrics say %d", counts.kinds[FaultMutate], m.Mutated)
	}
	// A mutation that destroys the message is a FaultMutate event but a
	// FaultDrops metric: the plane never omission-drops on its own.
	if counts.kinds[FaultDrop] != 0 {
		t.Fatalf("byzantine plane emitted %d omission-drop events", counts.kinds[FaultDrop])
	}
	if m.FaultDrops > m.Mutated {
		t.Fatalf("destroyed sends (%d) exceed mutations (%d)", m.FaultDrops, m.Mutated)
	}
}

type countObserver struct {
	kinds map[FaultKind]int64
}

func (c *countObserver) OnFault(ev FaultEvent) {
	if c.kinds == nil {
		c.kinds = make(map[FaultKind]int64)
	}
	c.kinds[ev.Kind]++
}

// TestComposeKeepsMutatorCapability: a composition with an active member
// must still type-assert as a Mutator (the runner's cache), and one
// without must stay on the plain composite.
func TestComposeKeepsMutatorCapability(t *testing.T) {
	active := Compose(&Drop{P: 0.1}, &Byzantine{Frac: 0.2})
	if _, ok := active.(Mutator); !ok {
		t.Fatalf("composed plane %T lost the Mutator capability", active)
	}
	if sa, ok := active.(ShardAware); !ok || !sa.ShardSafe() {
		t.Fatalf("composed byzantine plane %T must stay shard-safe", active)
	}
	passive := Compose(&Drop{P: 0.1}, &Delay{Max: 1})
	if _, ok := passive.(Mutator); ok {
		t.Fatalf("omission-only composition %T must not claim the Mutator capability", passive)
	}
	solo := Compose(nil, &Byzantine{Frac: 0.2}, Perfect{})
	if _, ok := solo.(*Byzantine); !ok {
		t.Fatalf("single-member composition returned %T, want *Byzantine", solo)
	}
}

// scriptedMutator forges/destroys by script, for chaining semantics.
type scriptedMutator struct {
	Perfect
	f func(m Message) (Message, bool)
}

func (s *scriptedMutator) Reset(int64, *graph.Graph) {}
func (s *scriptedMutator) Mutate(_, _, _ int, m Message) (Message, bool) {
	return s.f(m)
}

func TestMutatorCompositionChains(t *testing.T) {
	forge := func(kind string) *scriptedMutator {
		return &scriptedMutator{f: func(Message) (Message, bool) {
			return testMsg{kind: kind, bits: 1}, true
		}}
	}
	pass := &scriptedMutator{f: func(Message) (Message, bool) { return nil, true }}
	kill := &scriptedMutator{f: func(Message) (Message, bool) { return nil, false }}

	in := testMsg{kind: "orig", bits: 1}
	cases := []struct {
		name    string
		plane   FaultPlane
		want    string // delivered kind, "" for destroyed
		deliver bool
	}{
		{"pass-pass", Compose(pass, &scriptedMutator{f: pass.f}, &Drop{P: 0}), "orig", true},
		{"forge-last-wins", Compose(forge("a"), forge("b")), "b", true},
		{"forge-then-pass", Compose(forge("a"), &scriptedMutator{f: pass.f}), "a", true},
		{"killed", Compose(forge("a"), kill), "", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mt, ok := tc.plane.(Mutator)
			if !ok {
				t.Fatalf("%T is not a Mutator", tc.plane)
			}
			out, deliver := mt.Mutate(0, 0, 1, in)
			if deliver != tc.deliver {
				t.Fatalf("deliver = %v, want %v", deliver, tc.deliver)
			}
			if !deliver {
				return
			}
			got := "orig"
			if out != nil {
				got = out.Kind()
			}
			if got != tc.want {
				t.Fatalf("delivered kind %q, want %q", got, tc.want)
			}
		})
	}
}
