package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestLowerBoundConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 2048
	alpha := 1.0 / 256
	lb, err := NewLowerBound(n, alpha, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := lb.Validate(); err != nil {
		t.Fatal(err)
	}
	if !Connected(lb.Graph) {
		t.Fatal("lower-bound graph must be connected")
	}
	// Figure 2 structure: uniform degree s-1 everywhere.
	if d, ok := IsRegular(lb.Graph); !ok || d != lb.CliqueSize-1 {
		t.Fatalf("degree = %d regular=%v, want uniform %d", d, ok, lb.CliqueSize-1)
	}
	// Figure 1 structure: the super graph is 4-regular and connected.
	if d, ok := IsRegular(lb.Super); !ok || d != 4 {
		t.Fatalf("super graph should be 4-regular, got %d (%v)", d, ok)
	}
	if !Connected(lb.Super) {
		t.Fatal("super graph must be connected")
	}
	if lb.Super.N() != lb.NumCliques {
		t.Fatalf("super N = %d, want %d", lb.Super.N(), lb.NumCliques)
	}
	// Node count = N*s = Theta(n).
	if lb.N() != lb.NumCliques*lb.CliqueSize {
		t.Fatalf("N = %d, want %d", lb.N(), lb.NumCliques*lb.CliqueSize)
	}
	if lb.N() < n/2 || lb.N() > 2*n {
		t.Fatalf("realized size %d too far from target %d", lb.N(), n)
	}
	// Epsilon consistency: s ~ n^eps.
	wantS := math.Pow(float64(n), lb.Epsilon)
	if float64(lb.CliqueSize) < wantS/2 || float64(lb.CliqueSize) > 2*wantS {
		t.Fatalf("clique size %d vs n^eps %v", lb.CliqueSize, wantS)
	}
	// Exactly 4 inter-clique edges per clique, and they match super edges.
	interPerClique := make([]int, lb.NumCliques)
	var totalInter int
	for _, e := range lb.Edges() {
		if lb.InterClique(e.U, e.V) {
			interPerClique[lb.CliqueOf[e.U]]++
			interPerClique[lb.CliqueOf[e.V]]++
			totalInter++
		}
	}
	if totalInter != lb.Super.M() {
		t.Fatalf("inter-clique edges %d != super edges %d", totalInter, lb.Super.M())
	}
	for c, k := range interPerClique {
		if k != 4 {
			t.Fatalf("clique %d has %d inter-clique edges, want 4", c, k)
		}
	}
	// Each clique contributes exactly 4 external nodes, all distinct.
	for c, ext := range lb.External {
		if len(ext) != 4 {
			t.Fatalf("clique %d externals = %d", c, len(ext))
		}
		seen := map[int]bool{}
		for _, v := range ext {
			if lb.CliqueOf[v] != c {
				t.Fatalf("external %d not in clique %d", v, c)
			}
			if seen[v] {
				t.Fatalf("duplicate external %d", v)
			}
			seen[v] = true
		}
	}
}

func TestLowerBoundCliqueCutConductance(t *testing.T) {
	// Lemma 16 intuition check: the cut isolating one clique has
	// cut-conductance ~ 4/(s*(s-1)) = Theta(alpha); the conductance of the
	// whole graph is at most that.
	rng := rand.New(rand.NewSource(13))
	lb, err := NewLowerBound(1024, 1.0/196, rng)
	if err != nil {
		t.Fatal(err)
	}
	inSet := make([]bool, lb.N())
	for _, v := range lb.Cliques[0] {
		inSet[v] = true
	}
	phi := CutConductance(lb.Graph, inSet)
	s := float64(lb.CliqueSize)
	want := 4.0 / (s * (s - 1))
	if math.Abs(phi-want) > 1e-9 {
		t.Fatalf("clique cut conductance = %v, want %v", phi, want)
	}
}

func TestLowerBoundArgumentValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewLowerBound(8, 1.0/200, rng); err == nil {
		t.Fatal("tiny n should fail")
	}
	if _, err := NewLowerBound(1024, 1.0/100, rng); err == nil {
		t.Fatal("alpha >= 1/144 should fail")
	}
	if _, err := NewLowerBound(1024, 1e-9, rng); err == nil {
		t.Fatal("alpha <= 1/n^2 should fail")
	}
	if _, err := NewLowerBound(1024, 1.0/200, nil); err == nil {
		t.Fatal("nil rng should fail")
	}
	// alpha so small that fewer than 5 cliques fit.
	if _, err := NewLowerBound(100, 1.0/2048, rng); err == nil {
		t.Fatal("too few cliques should fail")
	}
}

func TestDumbbell(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	db, err := NewDumbbell(32, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	if !Connected(db.Graph) {
		t.Fatal("dumbbell must be connected")
	}
	if db.N() != 64 {
		t.Fatalf("N = %d, want 64", db.N())
	}
	// Degree preserved: every node still has degree d.
	if d, ok := IsRegular(db.Graph); !ok || d != 4 {
		t.Fatalf("dumbbell should stay 4-regular, got %d (%v)", d, ok)
	}
	// Exactly the two bridge edges cross sides.
	var crossing int
	for _, e := range db.Edges() {
		if db.SideOf[e.U] != db.SideOf[e.V] {
			crossing++
			if !db.IsBridge(e.U, e.V) {
				t.Fatalf("crossing edge %v not marked as bridge", e)
			}
		}
	}
	if crossing != 2 {
		t.Fatalf("crossing edges = %d, want 2", crossing)
	}
	if db.IsBridge(0, 1) && db.SideOf[0] == db.SideOf[1] {
		t.Fatal("IsBridge misreports an intra-side edge")
	}
}

func TestDumbbellErrors(t *testing.T) {
	if _, err := NewDumbbell(32, 4, nil); err == nil {
		t.Fatal("nil rng should fail")
	}
	if _, err := NewDumbbell(4, 4, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("half too small should fail")
	}
}
