package graph

// BFSDist returns the BFS distance (in hops) from src to every node;
// unreachable nodes get -1.
func BFSDist(g *Graph, src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.N() {
		return dist
	}
	dist[src] = 0
	queue := make([]int, 0, g.N())
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for p := 0; p < g.Degree(u); p++ {
			v := g.NeighborAt(u, p)
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Connected reports whether g is connected. The empty graph and the
// single-node graph are connected.
func Connected(g *Graph) bool {
	if g.N() <= 1 {
		return true
	}
	dist := BFSDist(g, 0)
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// Eccentricity returns the maximum BFS distance from src, or -1 if some
// node is unreachable.
func Eccentricity(g *Graph, src int) int {
	ecc := 0
	for _, d := range BFSDist(g, src) {
		if d == -1 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the exact diameter by running BFS from every node, or
// -1 if g is disconnected. O(n*m); fine for the simulation sizes used here.
func Diameter(g *Graph) int {
	diam := 0
	for u := 0; u < g.N(); u++ {
		e := Eccentricity(g, u)
		if e == -1 {
			return -1
		}
		if e > diam {
			diam = e
		}
	}
	return diam
}

// MinMaxDegree returns the minimum and maximum degree.
func MinMaxDegree(g *Graph) (min, max int) {
	if g.N() == 0 {
		return 0, 0
	}
	min, max = g.Degree(0), g.Degree(0)
	for u := 1; u < g.N(); u++ {
		d := g.Degree(u)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	return min, max
}

// IsRegular reports whether every node has the same degree and returns it.
func IsRegular(g *Graph) (int, bool) {
	min, max := MinMaxDegree(g)
	return min, min == max
}

// CutEdges returns the number of edges crossing the cut (set, complement),
// where inSet[v] marks membership. Used by the exact conductance routines
// and the lower-bound construction tests.
func CutEdges(g *Graph, inSet []bool) int {
	var cut int
	for u := 0; u < g.N(); u++ {
		if !inSet[u] {
			continue
		}
		for p := 0; p < g.Degree(u); p++ {
			if !inSet[g.NeighborAt(u, p)] {
				cut++
			}
		}
	}
	return cut
}

// CutConductance returns |E(S, V\S)| / min(Vol(S), Vol(V\S)) for the cut
// given by inSet, the paper's phi_K. Returns 0 for trivial cuts.
func CutConductance(g *Graph, inSet []bool) float64 {
	var volS int
	for u := 0; u < g.N(); u++ {
		if inSet[u] {
			volS += g.Degree(u)
		}
	}
	volC := 2*g.M() - volS
	minVol := volS
	if volC < minVol {
		minVol = volC
	}
	if minVol == 0 {
		return 0
	}
	return float64(CutEdges(g, inSet)) / float64(minVol)
}
