package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHypercubeStructure(t *testing.T) {
	g, err := Hypercube(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Neighbors differ in exactly one bit.
	for u := 0; u < g.N(); u++ {
		for p := 0; p < g.Degree(u); p++ {
			v := g.NeighborAt(u, p)
			x := u ^ v
			if x == 0 || x&(x-1) != 0 {
				t.Fatalf("nodes %d and %d differ in %b bits", u, v, x)
			}
		}
	}
	// Distance equals Hamming distance.
	dist := BFSDist(g, 0)
	for v, d := range dist {
		pop := 0
		for x := v; x > 0; x >>= 1 {
			pop += x & 1
		}
		if d != pop {
			t.Fatalf("dist(0,%d) = %d, Hamming %d", v, d, pop)
		}
	}
}

func TestTorusStructure(t *testing.T) {
	rows, cols := 5, 7
	g, err := Torus2D(rows, cols, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := IsRegular(g); !ok || d != 4 {
		t.Fatalf("torus degree = %d (%v)", d, ok)
	}
	// Diameter of a torus is floor(rows/2) + floor(cols/2).
	want := rows/2 + cols/2
	if got := Diameter(g); got != want {
		t.Fatalf("diameter = %d, want %d", got, want)
	}
}

func TestCliqueDiameterOne(t *testing.T) {
	g, err := Clique(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if Diameter(g) != 1 {
		t.Fatal("clique diameter must be 1")
	}
	if g.M() != 45 {
		t.Fatalf("M = %d", g.M())
	}
}

func TestBarbellBridge(t *testing.T) {
	g, err := Barbell(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one edge crosses the two cliques.
	var crossing int
	for _, e := range g.Edges() {
		if (e.U < 5) != (e.V < 5) {
			crossing++
		}
	}
	if crossing != 1 {
		t.Fatalf("crossing edges = %d, want 1", crossing)
	}
}

func TestDumbbellCliquesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db, err := NewDumbbellCliques(8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	if !Connected(db.Graph) {
		t.Fatal("must be connected")
	}
	if d, ok := IsRegular(db.Graph); !ok || d != 7 {
		t.Fatalf("degree = %d (%v), want uniform 7", d, ok)
	}
	var crossing int
	for _, e := range db.Edges() {
		if db.SideOf[e.U] != db.SideOf[e.V] {
			crossing++
			if !db.IsBridge(e.U, e.V) {
				t.Fatalf("crossing edge %v not a bridge", e)
			}
		}
	}
	if crossing != 2 {
		t.Fatalf("crossing = %d, want 2", crossing)
	}
	if _, err := NewDumbbellCliques(2, rng); err == nil {
		t.Fatal("too-small cliques should fail")
	}
	if _, err := NewDumbbellCliques(8, nil); err == nil {
		t.Fatal("nil rng should fail")
	}
}

// Property: BFS distances satisfy the triangle inequality along edges:
// |d(u) - d(v)| <= 1 for every edge (u,v).
func TestBFSLipschitzProperty(t *testing.T) {
	prop := func(seed int64) bool {
		g, err := RandomRegular(20, 4, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		dist := BFSDist(g, 0)
		for _, e := range g.Edges() {
			d := dist[e.U] - dist[e.V]
			if d < -1 || d > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: for any cut vector, CutConductance is within [0, 1] on regular
// graphs and symmetric under complement.
func TestCutConductanceSymmetry(t *testing.T) {
	g, err := Hypercube(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(mask uint16) bool {
		inSet := make([]bool, g.N())
		comp := make([]bool, g.N())
		for v := 0; v < g.N(); v++ {
			inSet[v] = mask&(1<<v) != 0
			comp[v] = !inSet[v]
		}
		a := CutConductance(g, inSet)
		b := CutConductance(g, comp)
		return a == b && a >= 0 && a <= float64(g.N())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLowerBoundDeterministicBySeed(t *testing.T) {
	mk := func(seed int64) *LowerBound {
		lb, err := NewLowerBound(512, 1.0/196, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		return lb
	}
	a, b := mk(9), mk(9)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("edge counts differ for identical seeds")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	c := mk(10)
	if len(c.Edges()) == len(ea) {
		same := true
		ec := c.Edges()
		for i := range ea {
			if ea[i] != ec[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds gave identical graphs")
		}
	}
}

func TestVolumeMatchesCutDenominator(t *testing.T) {
	g, err := Barbell(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	inSet := make([]bool, g.N())
	var side []int
	for v := 0; v < 4; v++ {
		inSet[v] = true
		side = append(side, v)
	}
	phi := CutConductance(g, inSet)
	want := float64(CutEdges(g, inSet)) / float64(g.Volume(side))
	if phi != want {
		t.Fatalf("phi = %v, want %v", phi, want)
	}
}
