package graph

import (
	"fmt"
	"math/rand"
)

// Clique returns the complete graph K_n. Cliques have constant conductance
// and mixing time O(1); the paper's Theorem 13 specializes on them to the
// sublinear bound of Kutten et al. [25].
func Clique(n int, rng *rand.Rand) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: clique needs n >= 2, got %d", n)
	}
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if err := b.AddEdge(u, v); err != nil {
				return nil, err
			}
		}
	}
	return b.Build(fmt.Sprintf("clique-%d", n), rng)
}

// Cycle returns the n-cycle, the canonical poorly connected graph
// (conductance Theta(1/n), mixing time Theta(n^2 log n) for the lazy walk).
func Cycle(n int, rng *rand.Rand) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: cycle needs n >= 3, got %d", n)
	}
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		if err := b.AddEdge(u, (u+1)%n); err != nil {
			return nil, err
		}
	}
	return b.Build(fmt.Sprintf("cycle-%d", n), rng)
}

// Path returns the path on n nodes.
func Path(n int, rng *rand.Rand) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: path needs n >= 2, got %d", n)
	}
	b := NewBuilder(n)
	for u := 0; u+1 < n; u++ {
		if err := b.AddEdge(u, u+1); err != nil {
			return nil, err
		}
	}
	return b.Build(fmt.Sprintf("path-%d", n), rng)
}

// Hypercube returns the d-dimensional hypercube on n = 2^d nodes. Per the
// paper's introduction, hypercubes have mixing time O(log n log log n).
func Hypercube(dim int, rng *rand.Rand) (*Graph, error) {
	if dim < 1 || dim > 24 {
		return nil, fmt.Errorf("graph: hypercube dimension %d out of range [1,24]", dim)
	}
	n := 1 << dim
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for bit := 0; bit < dim; bit++ {
			v := u ^ (1 << bit)
			if u < v {
				if err := b.AddEdge(u, v); err != nil {
					return nil, err
				}
			}
		}
	}
	return b.Build(fmt.Sprintf("hypercube-%d", dim), rng)
}

// Torus2D returns the rows x cols wraparound grid (each node has degree 4
// when both dimensions exceed 2). Mixing time Theta(n) for a square torus.
func Torus2D(rows, cols int, rng *rand.Rand) (*Graph, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("graph: torus needs rows,cols >= 3, got %dx%d", rows, cols)
	}
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if err := b.AddEdge(id(r, c), id((r+1)%rows, c)); err != nil {
				return nil, err
			}
			if err := b.AddEdge(id(r, c), id(r, (c+1)%cols)); err != nil {
				return nil, err
			}
		}
	}
	return b.Build(fmt.Sprintf("torus-%dx%d", rows, cols), rng)
}

// maxRegularAttempts bounds configuration-model retries before giving up.
const maxRegularAttempts = 200

// RandomRegular returns a uniformly-ish random simple connected d-regular
// graph on n nodes via the configuration model with rejection (as in
// Bollobas [8], which the paper's lower-bound construction cites). For
// constant d >= 3 these graphs are expanders with constant conductance with
// high probability. n*d must be even and d < n.
func RandomRegular(n, d int, rng *rand.Rand) (*Graph, error) {
	if rng == nil {
		return nil, fmt.Errorf("graph: RandomRegular requires an rng")
	}
	if d < 1 || d >= n {
		return nil, fmt.Errorf("graph: regular degree %d out of range [1,%d)", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: n*d must be even, got n=%d d=%d", n, d)
	}
	for attempt := 0; attempt < maxRegularAttempts; attempt++ {
		g, ok, err := tryConfigurationModel(n, d, rng)
		if err != nil {
			return nil, err
		}
		if ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: failed to sample a simple connected %d-regular graph on %d nodes after %d attempts",
		d, n, maxRegularAttempts)
}

// tryConfigurationModel performs one pairing attempt using stub matching
// with local re-draws: two uniformly random remaining stubs are paired; a
// pair that would create a self-loop or multi-edge is put back and redrawn.
// If the remaining stubs get stuck (all pairs conflict), the attempt fails
// and the caller restarts. This is the standard practical sampler for
// simple regular graphs; unlike full rejection it stays feasible for d
// beyond ~sqrt(log n).
func tryConfigurationModel(n, d int, rng *rand.Rand) (*Graph, bool, error) {
	stubs := make([]int, 0, n*d)
	for u := 0; u < n; u++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, u)
		}
	}
	b := NewBuilder(n)
	const maxLocalTries = 200
	for len(stubs) > 0 {
		ok := false
		for try := 0; try < maxLocalTries; try++ {
			i := rng.Intn(len(stubs))
			j := rng.Intn(len(stubs))
			if i == j {
				continue
			}
			u, v := stubs[i], stubs[j]
			if u == v || b.HasEdge(u, v) {
				continue
			}
			if err := b.AddEdge(u, v); err != nil {
				return nil, false, err
			}
			// Remove the two matched stubs (order-independent removal).
			if i < j {
				i, j = j, i
			}
			stubs[i] = stubs[len(stubs)-1]
			stubs = stubs[:len(stubs)-1]
			stubs[j] = stubs[len(stubs)-1]
			stubs = stubs[:len(stubs)-1]
			ok = true
			break
		}
		if !ok {
			return nil, false, nil // stuck: restart the whole attempt
		}
	}
	g, err := b.Build(fmt.Sprintf("random-%dregular-%d", d, n), rng)
	if err != nil {
		return nil, false, err
	}
	if !Connected(g) {
		return nil, false, nil
	}
	return g, true, nil
}

// Barbell returns two cliques of size k joined by a single edge — a simple
// low-conductance family (phi = Theta(1/k^2)) useful as a stress test
// distinct from the paper's Section 4.1 construction.
func Barbell(k int, rng *rand.Rand) (*Graph, error) {
	if k < 3 {
		return nil, fmt.Errorf("graph: barbell needs clique size >= 3, got %d", k)
	}
	b := NewBuilder(2 * k)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			if err := b.AddEdge(u, v); err != nil {
				return nil, err
			}
			if err := b.AddEdge(k+u, k+v); err != nil {
				return nil, err
			}
		}
	}
	if err := b.AddEdge(0, k); err != nil {
		return nil, err
	}
	return b.Build(fmt.Sprintf("barbell-%d", k), rng)
}
