// Package graph implements the communication substrate of the paper: simple
// undirected graphs with explicit port numbering. Each node u with degree d
// has ports 0..d-1 (the paper numbers them 1..d; we use 0-based ports
// throughout and document it). Port assignments on the two endpoints of an
// edge are independent — node u may reach v via port i while v reaches u via
// port j != i — exactly the paper's (asymmetric) port numbering model.
//
// The package also provides the graph families used in the evaluation:
// cliques, cycles, paths, hypercubes, tori, random regular graphs
// (expanders), the dumbbell graphs of Section 5, and the lower-bound
// clique-of-cliques construction of Section 4.1 (Figures 1 and 2).
package graph

import (
	"errors"
	"fmt"
	"math/rand"
)

// portEntry describes one port of a node: the neighbor it connects to and
// the port index at that neighbor which leads back.
type portEntry struct {
	node     int
	backPort int
}

// Graph is an immutable simple undirected graph with port numbering.
// The zero value is an empty graph with no nodes.
type Graph struct {
	name string
	m    int
	adj  [][]portEntry
}

// Builder accumulates edges and produces an immutable Graph. Builders are
// not safe for concurrent use.
type Builder struct {
	n     int
	adj   [][]int
	seen  map[[2]int]struct{}
	valid bool
}

// NewBuilder returns a Builder for a graph with n nodes (0..n-1).
func NewBuilder(n int) *Builder {
	if n < 0 {
		n = 0
	}
	return &Builder{
		n:     n,
		adj:   make([][]int, n),
		seen:  make(map[[2]int]struct{}, n*2),
		valid: true,
	}
}

func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// AddEdge adds the undirected edge {u, v}. Self-loops and duplicate edges
// are rejected (the paper's graphs are simple).
func (b *Builder) AddEdge(u, v int) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at node %d", u)
	}
	k := edgeKey(u, v)
	if _, dup := b.seen[k]; dup {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	b.seen[k] = struct{}{}
	b.adj[u] = append(b.adj[u], v)
	b.adj[v] = append(b.adj[v], u)
	return nil
}

// HasEdge reports whether the edge {u, v} has been added.
func (b *Builder) HasEdge(u, v int) bool {
	_, ok := b.seen[edgeKey(u, v)]
	return ok
}

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.seen) }

// Build finalizes the graph. If rng is non-nil, each node's neighbor list is
// independently shuffled so that port numbers carry no structural
// information (the model's arbitrary port assignment; required by the
// lower-bound experiments). With a nil rng, ports follow insertion order,
// which keeps small hand-built test graphs predictable.
func (b *Builder) Build(name string, rng *rand.Rand) (*Graph, error) {
	if !b.valid {
		return nil, errors.New("graph: builder already consumed")
	}
	b.valid = false
	g := &Graph{name: name, m: len(b.seen), adj: make([][]portEntry, b.n)}
	if rng != nil {
		for u := range b.adj {
			rng.Shuffle(len(b.adj[u]), func(i, j int) {
				b.adj[u][i], b.adj[u][j] = b.adj[u][j], b.adj[u][i]
			})
		}
	}
	// portAt[u][v] = port index at u leading to v. Built from the (possibly
	// shuffled) neighbor order.
	portAt := make([]map[int]int, b.n)
	for u := range b.adj {
		portAt[u] = make(map[int]int, len(b.adj[u]))
		for p, v := range b.adj[u] {
			portAt[u][v] = p
		}
	}
	for u := range b.adj {
		g.adj[u] = make([]portEntry, len(b.adj[u]))
		for p, v := range b.adj[u] {
			back, ok := portAt[v][u]
			if !ok {
				return nil, fmt.Errorf("graph: internal error, missing back edge %d->%d", v, u)
			}
			g.adj[u][p] = portEntry{node: v, backPort: back}
		}
	}
	return g, nil
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Name returns the descriptive name given at build time.
func (g *Graph) Name() string { return g.name }

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// NeighborAt returns the neighbor reached from u via port p (0-based).
func (g *Graph) NeighborAt(u, p int) int { return g.adj[u][p].node }

// BackPort returns the port at the neighbor g.NeighborAt(u,p) which leads
// back to u. Messages sent by u on port p arrive at the neighbor tagged with
// this port.
func (g *Graph) BackPort(u, p int) int { return g.adj[u][p].backPort }

// PortTo returns the port at u that leads to v, or -1 if {u,v} is not an
// edge. It is a linear scan and intended for tests and setup, not hot paths.
func (g *Graph) PortTo(u, v int) int {
	for p, e := range g.adj[u] {
		if e.node == v {
			return p
		}
	}
	return -1
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool { return g.PortTo(u, v) >= 0 }

// Neighbors returns a fresh slice of u's neighbors in port order.
func (g *Graph) Neighbors(u int) []int {
	out := make([]int, len(g.adj[u]))
	for p, e := range g.adj[u] {
		out[p] = e.node
	}
	return out
}

// Edge is an undirected edge with U < V.
type Edge struct{ U, V int }

// Edges returns all edges, each once, with U < V, in ascending order of U.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := range g.adj {
		for _, e := range g.adj[u] {
			if u < e.node {
				out = append(out, Edge{U: u, V: e.node})
			}
		}
	}
	return out
}

// Validate checks the structural invariants of the port numbering: back
// ports round-trip, no self loops, no duplicate neighbors, and the edge
// count matches the handshake sum. Generators call this in tests.
func (g *Graph) Validate() error {
	var degSum int
	for u := range g.adj {
		seen := make(map[int]struct{}, len(g.adj[u]))
		degSum += len(g.adj[u])
		for p, e := range g.adj[u] {
			if e.node == u {
				return fmt.Errorf("graph: self-loop at node %d port %d", u, p)
			}
			if e.node < 0 || e.node >= len(g.adj) {
				return fmt.Errorf("graph: node %d port %d points out of range (%d)", u, p, e.node)
			}
			if _, dup := seen[e.node]; dup {
				return fmt.Errorf("graph: duplicate edge %d-%d", u, e.node)
			}
			seen[e.node] = struct{}{}
			if e.backPort < 0 || e.backPort >= len(g.adj[e.node]) {
				return fmt.Errorf("graph: back port %d out of range at node %d", e.backPort, e.node)
			}
			back := g.adj[e.node][e.backPort]
			if back.node != u || back.backPort != p {
				return fmt.Errorf("graph: port mapping not involutive at %d port %d", u, p)
			}
		}
	}
	if degSum != 2*g.m {
		return fmt.Errorf("graph: handshake violation, degree sum %d != 2m %d", degSum, 2*g.m)
	}
	return nil
}

// Volume returns the sum of degrees of the given node set (the paper's
// Vol(U)). A nil set means all nodes.
func (g *Graph) Volume(set []int) int {
	if set == nil {
		return 2 * g.m
	}
	var v int
	for _, u := range set {
		v += len(g.adj[u])
	}
	return v
}
