package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustBuild(t *testing.T, b *Builder, name string, rng *rand.Rand) *Graph {
	t.Helper()
	g, err := b.Build(name, rng)
	if err != nil {
		t.Fatalf("Build(%s): %v", name, err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate(%s): %v", name, err)
	}
	return g
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if !b.HasEdge(1, 0) {
		t.Fatal("HasEdge should be orientation-free")
	}
	if b.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", b.NumEdges())
	}
	g := mustBuild(t, b, "tiny", nil)
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(0), g.Degree(1))
	}
	if g.Name() != "tiny" {
		t.Fatalf("Name = %q", g.Name())
	}
}

func TestBuilderRejects(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := b.AddEdge(0, 3); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if err := b.AddEdge(-1, 0); err == nil {
		t.Fatal("negative accepted")
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 0); err == nil {
		t.Fatal("duplicate (reversed) accepted")
	}
}

func TestBuilderSingleUse(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build("a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build("b", nil); err == nil {
		t.Fatal("second Build should fail")
	}
}

func TestPortInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder(6)
	edges := [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}}
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := mustBuild(t, b, "ports", rng)
	for u := 0; u < g.N(); u++ {
		for p := 0; p < g.Degree(u); p++ {
			v := g.NeighborAt(u, p)
			q := g.BackPort(u, p)
			if g.NeighborAt(v, q) != u {
				t.Fatalf("back port broken at %d:%d", u, p)
			}
			if g.PortTo(u, v) != p {
				t.Fatalf("PortTo inconsistent at %d->%d", u, v)
			}
		}
	}
	if g.PortTo(0, 3) != -1 {
		t.Fatal("PortTo for non-edge should be -1")
	}
	if g.HasEdge(0, 3) {
		t.Fatal("HasEdge(0,3) should be false")
	}
}

func TestEdgesListing(t *testing.T) {
	g, err := Cycle(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	es := g.Edges()
	if len(es) != 5 {
		t.Fatalf("len(Edges) = %d, want 5", len(es))
	}
	for _, e := range es {
		if e.U >= e.V {
			t.Fatalf("edge %v not normalized", e)
		}
	}
}

func TestVolume(t *testing.T) {
	g, err := Clique(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Volume(nil) != 2*g.M() {
		t.Fatal("full volume should be 2m")
	}
	if g.Volume([]int{0, 1}) != 6 {
		t.Fatalf("Volume({0,1}) = %d, want 6", g.Volume([]int{0, 1}))
	}
}

func TestGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []struct {
		name     string
		make     func() (*Graph, error)
		wantN    int
		wantM    int
		wantReg  int // -1 = not regular
		wantDiam int // -1 = skip
	}{
		{"clique8", func() (*Graph, error) { return Clique(8, rng) }, 8, 28, 7, 1},
		{"cycle9", func() (*Graph, error) { return Cycle(9, rng) }, 9, 9, 2, 4},
		{"path5", func() (*Graph, error) { return Path(5, rng) }, 5, 4, -1, 4},
		{"hc3", func() (*Graph, error) { return Hypercube(3, rng) }, 8, 12, 3, 3},
		{"torus4x5", func() (*Graph, error) { return Torus2D(4, 5, rng) }, 20, 40, 4, 4},
		{"barbell4", func() (*Graph, error) { return Barbell(4, rng) }, 8, 13, -1, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g, err := c.make()
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			if g.N() != c.wantN || g.M() != c.wantM {
				t.Fatalf("N=%d M=%d, want %d %d", g.N(), g.M(), c.wantN, c.wantM)
			}
			if !Connected(g) {
				t.Fatal("not connected")
			}
			if c.wantReg >= 0 {
				if d, ok := IsRegular(g); !ok || d != c.wantReg {
					t.Fatalf("regularity: d=%d ok=%v, want %d", d, ok, c.wantReg)
				}
			}
			if c.wantDiam >= 0 {
				if d := Diameter(g); d != c.wantDiam {
					t.Fatalf("Diameter = %d, want %d", d, c.wantDiam)
				}
			}
		})
	}
}

func TestGeneratorErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Clique(1, nil); err == nil {
		t.Fatal("Clique(1) should fail")
	}
	if _, err := Cycle(2, nil); err == nil {
		t.Fatal("Cycle(2) should fail")
	}
	if _, err := Path(1, nil); err == nil {
		t.Fatal("Path(1) should fail")
	}
	if _, err := Hypercube(0, nil); err == nil {
		t.Fatal("Hypercube(0) should fail")
	}
	if _, err := Torus2D(2, 5, nil); err == nil {
		t.Fatal("Torus2D(2,5) should fail")
	}
	if _, err := RandomRegular(10, 3, nil); err == nil {
		t.Fatal("RandomRegular without rng should fail")
	}
	if _, err := RandomRegular(9, 3, rng); err == nil {
		t.Fatal("odd n*d should fail")
	}
	if _, err := RandomRegular(4, 4, rng); err == nil {
		t.Fatal("d >= n should fail")
	}
	if _, err := Barbell(2, nil); err == nil {
		t.Fatal("Barbell(2) should fail")
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, d := range []int{3, 4, 8} {
		g, err := RandomRegular(64, d, rng)
		if err != nil {
			t.Fatalf("RandomRegular(64,%d): %v", d, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if deg, ok := IsRegular(g); !ok || deg != d {
			t.Fatalf("not %d-regular", d)
		}
		if !Connected(g) {
			t.Fatal("not connected")
		}
		if g.M() != 64*d/2 {
			t.Fatalf("M = %d, want %d", g.M(), 64*d/2)
		}
	}
}

func TestRandomRegularDeterministic(t *testing.T) {
	g1, err := RandomRegular(32, 4, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := RandomRegular(32, 4, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatal("edge counts differ across identical seeds")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
}

func TestBFSAndDiameter(t *testing.T) {
	g, err := Path(6, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := BFSDist(g, 0)
	for i, want := range []int{0, 1, 2, 3, 4, 5} {
		if d[i] != want {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], want)
		}
	}
	if Eccentricity(g, 2) != 3 {
		t.Fatalf("Eccentricity(path,2) = %d", Eccentricity(g, 2))
	}
	if Diameter(g) != 5 {
		t.Fatalf("Diameter(path6) = %d", Diameter(g))
	}
}

func TestDisconnected(t *testing.T) {
	b := NewBuilder(4)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	g := mustBuild(t, b, "disc", nil)
	if Connected(g) {
		t.Fatal("should be disconnected")
	}
	if Diameter(g) != -1 {
		t.Fatal("Diameter of disconnected graph should be -1")
	}
	if Eccentricity(g, 0) != -1 {
		t.Fatal("Eccentricity should be -1 when unreachable")
	}
}

func TestCutConductanceClique(t *testing.T) {
	g, err := Clique(6, nil)
	if err != nil {
		t.Fatal(err)
	}
	inSet := make([]bool, 6)
	inSet[0], inSet[1], inSet[2] = true, true, true
	// K6 half cut: 9 crossing edges, each side volume 15.
	if c := CutEdges(g, inSet); c != 9 {
		t.Fatalf("CutEdges = %d, want 9", c)
	}
	got := CutConductance(g, inSet)
	want := 9.0 / 15.0
	if got < want-1e-12 || got > want+1e-12 {
		t.Fatalf("CutConductance = %v, want %v", got, want)
	}
	// Trivial cut.
	if CutConductance(g, make([]bool, 6)) != 0 {
		t.Fatal("empty cut should give 0")
	}
}

// Property: every generated random regular graph satisfies the handshake
// lemma and valid port involution, across seeds and parameters.
func TestRandomRegularProperty(t *testing.T) {
	prop := func(seed int64, nRaw, dRaw uint8) bool {
		n := 8 + int(nRaw)%40
		d := 3 + int(dRaw)%3
		if n*d%2 != 0 {
			n++
		}
		g, err := RandomRegular(n, d, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		return g.Validate() == nil && Connected(g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: port shuffling preserves the edge set.
func TestPortShufflePreservesEdges(t *testing.T) {
	base, err := Hypercube(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	shuffled, err := Hypercube(4, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := base.Edges(), shuffled.Edges()
	if len(e1) != len(e2) {
		t.Fatal("edge count changed by shuffling")
	}
	set := make(map[Edge]bool, len(e1))
	for _, e := range e1 {
		set[e] = true
	}
	for _, e := range e2 {
		if !set[e] {
			t.Fatalf("edge %v not in original", e)
		}
	}
}
