package graph

import "fmt"

// Induced builds the subgraph of g induced by the given node set,
// renumbered 0..len(members)-1 in member order. Members must be strictly
// ascending, in range, and non-empty — induced node i is original node
// members[i], so a sorted member list keeps relabeled indices order-
// compatible with the originals. Ports follow g's edge order
// deterministically (nil-rng Build), so every caller that induces the
// same member set over the same graph gets an identical graph — the
// property cluster re-elections after membership loss rely on.
func Induced(g *Graph, members []int) (*Graph, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("graph: induced subgraph of %q over zero members", g.Name())
	}
	idx := make(map[int]int, len(members))
	for i, v := range members {
		if v < 0 || v >= g.N() {
			return nil, fmt.Errorf("graph: induced member %d out of range [0,%d)", v, g.N())
		}
		if i > 0 && v <= members[i-1] {
			return nil, fmt.Errorf("graph: induced members must be strictly ascending, got %d after %d", v, members[i-1])
		}
		idx[v] = i
	}
	b := NewBuilder(len(members))
	for _, e := range g.Edges() {
		u, okU := idx[e.U]
		v, okV := idx[e.V]
		if !okU || !okV {
			continue
		}
		if err := b.AddEdge(u, v); err != nil {
			return nil, err
		}
	}
	return b.Build(fmt.Sprintf("%s/induced%d", g.Name(), len(members)), nil)
}
