package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// LowerBound is the Section 4.1 construction (Figures 1 and 2): a random
// 4-regular "super-node" graph GS on N = n^(1-eps) super-nodes, where each
// super-node is expanded into a clique of s ~ n^eps nodes. Four nodes per
// clique carry one inter-clique edge each ("external-edged nodes"); two
// disjoint intra-clique edges between the four external nodes are removed so
// every node has uniform degree s-1. The resulting graph has conductance
// Theta(alpha) with alpha = n^(-2 eps) (Lemma 16).
type LowerBound struct {
	*Graph

	// Alpha is the requested conductance scale; Epsilon = log(1/Alpha)/(2 log n).
	Alpha   float64
	Epsilon float64

	// CliqueSize s and NumCliques N; the realized node count is s*N (the
	// paper's Theta(n)).
	CliqueSize int
	NumCliques int

	// CliqueOf maps node -> clique index; Cliques lists members per clique.
	CliqueOf []int
	Cliques  [][]int

	// External lists, per clique, the four nodes carrying inter-clique edges.
	External [][]int

	// Super is the 4-regular super-node graph GS the construction started
	// from (Figure 1).
	Super *Graph
}

// InterClique reports whether the edge {u,v} crosses cliques.
func (lb *LowerBound) InterClique(u, v int) bool {
	return lb.CliqueOf[u] != lb.CliqueOf[v]
}

// NewLowerBound builds the construction targeting roughly n nodes and
// conductance Theta(alpha). Valid range per Theorem 15: 1/n^2 < alpha <
// 1/144 (the paper writes 1/12^2). The realized graph has
// NumCliques*CliqueSize nodes, which may differ slightly from n due to
// integer rounding; the realized values are exposed on the result.
func NewLowerBound(n int, alpha float64, rng *rand.Rand) (*LowerBound, error) {
	if rng == nil {
		return nil, fmt.Errorf("graph: NewLowerBound requires an rng")
	}
	if n < 16 {
		return nil, fmt.Errorf("graph: lower-bound construction needs n >= 16, got %d", n)
	}
	nf := float64(n)
	if alpha <= 1/(nf*nf) || alpha >= 1.0/144 {
		return nil, fmt.Errorf("graph: alpha %v out of range (1/n^2, 1/144) for n=%d", alpha, n)
	}
	eps := math.Log(1/alpha) / (2 * math.Log(nf))
	s := int(math.Round(math.Pow(nf, eps))) // clique size ~ n^eps
	if s < 6 {
		// Four external nodes plus two disjoint removed edges need >= 6
		// nodes to keep every clique connected and degrees uniform.
		s = 6
	}
	numCliques := n / s
	if numCliques < 5 {
		return nil, fmt.Errorf("graph: alpha %v too small for n=%d (only %d cliques; need >= 5)", alpha, n, numCliques)
	}
	super, err := RandomRegular(numCliques, 4, rng)
	if err != nil {
		return nil, fmt.Errorf("graph: super-node graph: %w", err)
	}

	total := numCliques * s
	b := NewBuilder(total)
	lb := &LowerBound{
		Alpha:      alpha,
		Epsilon:    eps,
		CliqueSize: s,
		NumCliques: numCliques,
		CliqueOf:   make([]int, total),
		Cliques:    make([][]int, numCliques),
		External:   make([][]int, numCliques),
		Super:      super,
	}
	node := func(clique, i int) int { return clique*s + i }
	for c := 0; c < numCliques; c++ {
		members := make([]int, s)
		for i := 0; i < s; i++ {
			v := node(c, i)
			members[i] = v
			lb.CliqueOf[v] = c
		}
		lb.Cliques[c] = members
		// Choose the 4 external-edged nodes uniformly at random within the
		// clique, as the construction prescribes ("a (previously unchosen)
		// node chosen randomly from the clique").
		perm := rng.Perm(s)
		ext := []int{node(c, perm[0]), node(c, perm[1]), node(c, perm[2]), node(c, perm[3])}
		lb.External[c] = ext
		// Full clique edges except the two removed intra-clique edges
		// between external pairs (perm[0],perm[1]) and (perm[2],perm[3]).
		removed := map[[2]int]struct{}{
			edgeKey(ext[0], ext[1]): {},
			edgeKey(ext[2], ext[3]): {},
		}
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				u, v := node(c, i), node(c, j)
				if _, skip := removed[edgeKey(u, v)]; skip {
					continue
				}
				if err := b.AddEdge(u, v); err != nil {
					return nil, err
				}
			}
		}
	}
	// Inter-clique edges: for each super edge (c1, c2), connect the next
	// unused external node of c1 to the next unused external node of c2.
	used := make([]int, numCliques)
	for _, e := range super.Edges() {
		u := lb.External[e.U][used[e.U]]
		v := lb.External[e.V][used[e.V]]
		used[e.U]++
		used[e.V]++
		if err := b.AddEdge(u, v); err != nil {
			return nil, err
		}
	}
	for c, k := range used {
		if k != 4 {
			return nil, fmt.Errorf("graph: clique %d used %d external slots, want 4", c, k)
		}
	}
	g, err := b.Build(fmt.Sprintf("lowerbound-n%d-a%.2g", total, alpha), rng)
	if err != nil {
		return nil, err
	}
	lb.Graph = g
	return lb, nil
}

// Dumbbell is the Section 5 construction: two "open graphs" (a graph with
// one edge removed, leaving two open ports each) joined by two bridge
// edges. Used by the Theorem 28 experiments on the necessity of knowing n.
type Dumbbell struct {
	*Graph

	// SideOf maps node -> 0 (left) or 1 (right).
	SideOf []int
	// Bridges are the two connecting edges.
	Bridges [2]Edge
	// Half is the number of nodes on each side.
	Half int
}

// IsBridge reports whether {u,v} is one of the two bridge edges.
func (db *Dumbbell) IsBridge(u, v int) bool {
	e := Edge{U: u, V: v}
	if u > v {
		e = Edge{U: v, V: u}
	}
	return e == db.Bridges[0] || e == db.Bridges[1]
}

// NewDumbbellCliques builds the dumbbell from two cliques K_half: one edge
// is removed from each clique and the four freed endpoints are joined by
// the two bridge edges, so every node keeps degree half-1. Dense sides make
// bridge crossings rare relative to intra-side traffic — the regime where
// Theorem 28's indistinguishability argument bites hardest.
func NewDumbbellCliques(half int, rng *rand.Rand) (*Dumbbell, error) {
	if rng == nil {
		return nil, fmt.Errorf("graph: NewDumbbellCliques requires an rng")
	}
	if half < 4 {
		return nil, fmt.Errorf("graph: dumbbell clique size %d too small (need >= 4)", half)
	}
	b := NewBuilder(2 * half)
	// Open edge {0,1} on the left clique and {half, half+1} on the right.
	for side := 0; side < 2; side++ {
		off := side * half
		for i := 0; i < half; i++ {
			for j := i + 1; j < half; j++ {
				if i == 0 && j == 1 {
					continue // the opened edge
				}
				if err := b.AddEdge(off+i, off+j); err != nil {
					return nil, err
				}
			}
		}
	}
	b1 := Edge{U: 0, V: half}
	b2 := Edge{U: 1, V: half + 1}
	if err := b.AddEdge(b1.U, b1.V); err != nil {
		return nil, err
	}
	if err := b.AddEdge(b2.U, b2.V); err != nil {
		return nil, err
	}
	g, err := b.Build(fmt.Sprintf("dumbbell-cliques-%dx2", half), rng)
	if err != nil {
		return nil, err
	}
	db := &Dumbbell{Graph: g, SideOf: make([]int, 2*half), Half: half, Bridges: [2]Edge{b1, b2}}
	for v := half; v < 2*half; v++ {
		db.SideOf[v] = 1
	}
	return db, nil
}

// NewDumbbell builds Dumbbell(G'[e'], G”[e”]) from two independent random
// d-regular graphs on half nodes each: it removes one edge from each side
// and joins the four freed endpoints with two bridge edges, exactly as in
// the paper ("a dumbbell graph is composed of two open graphs plus two
// connecting edges"). Both sides keep degree d everywhere.
func NewDumbbell(half, d int, rng *rand.Rand) (*Dumbbell, error) {
	if rng == nil {
		return nil, fmt.Errorf("graph: NewDumbbell requires an rng")
	}
	if half < d+2 {
		return nil, fmt.Errorf("graph: dumbbell half size %d too small for degree %d", half, d)
	}
	left, err := RandomRegular(half, d, rng)
	if err != nil {
		return nil, fmt.Errorf("graph: dumbbell left half: %w", err)
	}
	right, err := RandomRegular(half, d, rng)
	if err != nil {
		return nil, fmt.Errorf("graph: dumbbell right half: %w", err)
	}
	// Pick one edge per side to open. The graphs are connected and regular
	// with d >= 3 in practice, so removing one edge keeps them connected
	// with overwhelming probability; we verify and retry a few times.
	for attempt := 0; attempt < 50; attempt++ {
		le := left.Edges()[rng.Intn(left.M())]
		re := right.Edges()[rng.Intn(right.M())]
		b := NewBuilder(2 * half)
		for _, e := range left.Edges() {
			if e == le {
				continue
			}
			if err := b.AddEdge(e.U, e.V); err != nil {
				return nil, err
			}
		}
		for _, e := range right.Edges() {
			if e == re {
				continue
			}
			if err := b.AddEdge(half+e.U, half+e.V); err != nil {
				return nil, err
			}
		}
		// Bridges per the paper: (v', v'') and (w', w'').
		b1 := Edge{U: le.U, V: half + re.U}
		b2 := Edge{U: le.V, V: half + re.V}
		if err := b.AddEdge(b1.U, b1.V); err != nil {
			return nil, err
		}
		if err := b.AddEdge(b2.U, b2.V); err != nil {
			return nil, err
		}
		g, err := b.Build(fmt.Sprintf("dumbbell-%dx2-%dreg", half, d), rng)
		if err != nil {
			return nil, err
		}
		if !Connected(g) {
			continue
		}
		db := &Dumbbell{Graph: g, SideOf: make([]int, 2*half), Half: half, Bridges: [2]Edge{b1, b2}}
		for v := half; v < 2*half; v++ {
			db.SideOf[v] = 1
		}
		return db, nil
	}
	return nil, fmt.Errorf("graph: could not build a connected dumbbell (half=%d, d=%d)", half, d)
}
