package experiments

import (
	"math"
	"math/rand"

	"wcle/internal/baseline"
	"wcle/internal/broadcast"
	"wcle/internal/core"
	"wcle/internal/protocol"
	"wcle/internal/stats"
)

// E3ContenderConcentration reproduces Lemma 1: the contender count
// concentrates in [3/4 c1 log n, 5/4 c1 log n]. Sampling only; no network
// needed (the algorithm's first coin flip).
func (s *Suite) E3ContenderConcentration() (*Table, error) {
	sizes := []int{256, 1024, 4096, 16384}
	trials := 400
	if s.Quick {
		sizes = []int{256, 1024}
		trials = 150
	}
	t := &Table{
		ID:      "E3",
		Title:   "Lemma 1: contender count concentration in [3/4 c1 ln n, 5/4 c1 ln n]",
		Columns: []string{"n", "E[X] = c1 ln n", "band", "mean X", "P[X in band]", "95% CI"},
	}
	cfg := core.DefaultConfig()
	rng := rand.New(rand.NewSource(s.Seed + 3))
	for _, n := range sizes {
		p, err := core.ResolveParams(n, cfg)
		if err != nil {
			return nil, err
		}
		mu := cfg.C1 * p.LogN
		lo, hi := 0.75*mu, 1.25*mu
		inBand := 0
		var sum float64
		for i := 0; i < trials; i++ {
			x := 0
			for v := 0; v < n; v++ {
				if rng.Float64() < p.ContenderProb {
					x++
				}
			}
			sum += float64(x)
			if float64(x) >= lo && float64(x) <= hi {
				inBand++
			}
		}
		ciLo, ciHi, err := stats.BinomialCI(inBand, trials, 1.96)
		if err != nil {
			return nil, err
		}
		t.AddRow(d(n), f1(mu), "["+f1(lo)+", "+f1(hi)+"]",
			f1(sum/float64(trials)), f3(float64(inBand)/float64(trials)),
			"["+f3(ciLo)+", "+f3(ciHi)+"]")
	}
	t.AddNote("Lemma 1 is a Chernoff bound: the in-band probability must increase toward 1 as n grows (with c1=%.0f).", cfg.C1)
	return t, nil
}

// E4UniqueLeader reproduces Lemma 11: exactly one leader w.h.p., and the
// safety half (never more than one) as a hard invariant.
func (s *Suite) E4UniqueLeader() (*Table, error) {
	trials := 10
	if s.Quick {
		trials = 3
	}
	cases := []struct {
		family string
		n      int
	}{
		{"clique", 64},
		{"hypercube", 64},
		{"rr8", 128},
	}
	t := &Table{
		ID:      "E4",
		Title:   "Lemma 11: unique leader w.h.p. (and never more than one)",
		Columns: []string{"family", "n", "trials", "exactly one", "zero", "multi", "mean contenders"},
	}
	for _, c := range cases {
		var one, zero, multi int
		var contSum float64
		for i := 0; i < trials; i++ {
			g, err := buildFamily(c.family, c.n, s.Seed+int64(i))
			if err != nil {
				return nil, err
			}
			res, err := core.Run(g, core.DefaultConfig(), core.RunOptions{Seed: s.Seed + 100 + int64(i)})
			if err != nil {
				return nil, err
			}
			switch len(res.Leaders) {
			case 0:
				zero++
			case 1:
				one++
			default:
				multi++
			}
			contSum += float64(len(res.Contenders))
		}
		t.AddRow(c.family, d(c.n), d(trials), d(one), d(zero), d(multi), f1(contSum/float64(trials)))
	}
	t.AddNote("multi must be 0 in every row: with the FINAL-latch and inactive-exchange clarifications on (the defaults), at-most-one-leader held in every run we ever executed. Zero-leader runs are the finite-n tail Lemma 1 bounds (see E14's c1 sweep).")
	return t, nil
}

// E7Explicit reproduces Corollary 14 and the comparison against the
// Omega(m) flooding regime of [24]: explicit election = implicit election +
// push-pull broadcast of the leader id.
func (s *Suite) E7Explicit() (*Table, error) {
	sizes := []int{128, 256, 512}
	if s.Quick {
		sizes = []int{64, 128}
	}
	t := &Table{
		ID:    "E7",
		Title: "Corollary 14: explicit election (implicit + push-pull) vs the Omega(m) FloodMax baseline",
		Columns: []string{"n", "m", "implicit msgs", "broadcast msgs", "bcast rounds",
			"explicit total", "floodmax msgs"},
	}
	var ns, explicitMsgs, floodMsgs []float64
	for _, n := range sizes {
		g, err := buildFamily("rr8", n, s.Seed+5)
		if err != nil {
			return nil, err
		}
		res, err := core.Run(g, core.DefaultConfig(), core.RunOptions{Seed: s.Seed + 17})
		if err != nil {
			return nil, err
		}
		source := 0
		var rumor uint64 = 12345
		if len(res.Leaders) > 0 {
			source = res.Leaders[0]
			rumor = uint64(res.LeaderIDs[0])
		}
		// First pass finds the completion round; the second is truncated
		// there, so its message count is the cost to full coverage.
		probe, err := broadcast.PushPull(g, source, protocol.ID(rumor), s.Seed+23, 40*g.N(), false)
		if err != nil {
			return nil, err
		}
		horizon := probe.CompletionRound
		if horizon <= 0 {
			horizon = 40 * g.N()
		}
		bc, err := broadcast.PushPull(g, source, protocol.ID(rumor), s.Seed+23, horizon, false)
		if err != nil {
			return nil, err
		}
		flood, err := baseline.FloodMax(g, s.Seed+29, 0)
		if err != nil {
			return nil, err
		}
		explicit := res.Metrics.Messages + bc.Metrics.Messages
		t.AddRow(d(n), d(g.M()), d64(res.Metrics.Messages), d64(bc.Metrics.Messages),
			d(bc.Metrics.FinalRound), d64(explicit), d64(flood.Metrics.Messages))
		ns = append(ns, float64(n))
		explicitMsgs = append(explicitMsgs, float64(explicit))
		floodMsgs = append(floodMsgs, float64(flood.Metrics.Messages))
	}
	if len(ns) >= 2 {
		fe, err1 := stats.LogLogFit(ns, explicitMsgs)
		ff, err2 := stats.LogLogFit(ns, floodMsgs)
		if err1 == nil && err2 == nil {
			t.AddNote("fitted growth: explicit ~ n^%.2f, floodmax ~ n^%.2f. The paper's win is asymptotic: at laptop scales the polylog constants dominate and FloodMax is cheaper in absolute terms; the smaller fitted exponent is the Theorem 13 shape. Extrapolated crossover: n ~ %.1g.",
				fe.Slope, ff.Slope, crossover(fe, ff))
		}
	}
	t.AddNote("Corollary 14's claim that election time dominates broadcast time shows in 'bcast rounds' being tiny next to the election schedule (E2).")
	return t, nil
}

// crossover solves a1 + b1 x = a2 + b2 x in log space and returns e^x.
func crossover(f1, f2 stats.Fit) float64 {
	if f1.Slope == f2.Slope {
		return math.Inf(1)
	}
	return math.Exp((f2.Intercept - f1.Intercept) / (f1.Slope - f2.Slope))
}

// E14Ablations quantifies the design choices: the inactive-exchange
// clarification, the distinctness property, winner piggybacking, and the
// "sufficiently large c1" requirement.
func (s *Suite) E14Ablations() (*Table, error) {
	trials := 6
	n := 96
	if s.Quick {
		trials = 2
	}
	variants := []struct {
		name string
		mod  func(*core.Config)
	}{
		{"default", func(*core.Config) {}},
		{"no-inactive-exchange", func(c *core.Config) { c.DisableInactiveExchange = true }},
		{"no-distinctness", func(c *core.Config) { c.DisableDistinctness = true }},
		{"no-piggyback", func(c *core.Config) { c.DisablePiggyback = true }},
		{"c1=2", func(c *core.Config) { c.C1 = 2 }},
		{"c1=10", func(c *core.Config) { c.C1 = 10 }},
	}
	t := &Table{
		ID:      "E14",
		Title:   "Ablations: correctness clarifications and the c1 constant (rr8, n=96)",
		Columns: []string{"variant", "trials", "one leader", "zero", "multi", "failed contenders", "mean msgs"},
	}
	for _, v := range variants {
		var one, zero, multi, failed int
		var msgs float64
		for i := 0; i < trials; i++ {
			g, err := buildFamily("rr8", n, s.Seed+int64(3*i))
			if err != nil {
				return nil, err
			}
			cfg := core.DefaultConfig()
			v.mod(&cfg)
			res, err := core.Run(g, cfg, core.RunOptions{Seed: s.Seed + 300 + int64(i)})
			if err != nil {
				return nil, err
			}
			switch len(res.Leaders) {
			case 0:
				zero++
			case 1:
				one++
			default:
				multi++
			}
			failed += len(res.Failed)
			msgs += float64(res.Metrics.Messages)
		}
		t.AddRow(v.name, d(trials), d(one), d(zero), d(multi), d(failed), f1(msgs/float64(trials)))
	}
	t.AddNote("c1=2 exposes the 'sufficiently large constant' requirement of Lemma 1: the intersection threshold becomes unreachable in some runs (failed contenders, zero leaders). no-inactive-exchange reproduces the paper-literal reading whose Claim 9/10 relay chain can break; multi > 0 there is the gap made visible (it may need many trials to materialize).")
	return t, nil
}
