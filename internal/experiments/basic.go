package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"wcle/internal/baseline"
	"wcle/internal/broadcast"
	"wcle/internal/core"
	"wcle/internal/protocol"
	"wcle/internal/sim"
	"wcle/internal/stats"
)

// e3Spec reproduces Lemma 1: the contender count concentrates in
// [3/4 c1 log n, 5/4 c1 log n]. Sampling only; no network needed (the
// algorithm's first coin flip). One trial = one sampled contender count.
func e3Spec() Spec {
	return Spec{
		ID:    "E3",
		Name:  "contender-concentration",
		Title: "Lemma 1: contender count concentration in [3/4 c1 ln n, 5/4 c1 ln n]",
		Claim: "Lemma 1 (Chernoff concentration of the contender count)",
		Preamble: "Everything downstream (both stopping thresholds) assumes the contender count lands in [3/4 c1 ln n, 5/4 c1 ln n] — a Chernoff bound, so the in-band probability should climb toward 1 as n grows. " +
			"This experiment samples only the algorithm's first coin flip; no network is needed.",
		FullTrials:  400,
		QuickTrials: 150,
		Points: func(cfg SuiteConfig) []Point {
			sizes := []int{256, 1024, 4096, 16384}
			if cfg.Quick {
				sizes = []int{256, 1024}
			}
			var out []Point
			for _, n := range cfg.capSizes(sizes) {
				out = append(out, Point{Key: fmt.Sprintf("n-%d", n), N: n})
			}
			return out
		},
		Trial: func(cfg SuiteConfig, pt Point, setup interface{}, seed int64) (Metrics, error) {
			c := core.DefaultConfig()
			p, err := core.ResolveParams(pt.N, c)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(seed))
			x := 0
			for v := 0; v < pt.N; v++ {
				if rng.Float64() < p.ContenderProb {
					x++
				}
			}
			mu := c.C1 * p.LogN
			inBand := b2f(float64(x) >= 0.75*mu && float64(x) <= 1.25*mu)
			return Metrics{"x": float64(x), "in_band": inBand}, nil
		},
		Render: renderE3,
	}
}

func renderE3(cfg SuiteConfig, data []PointData) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Lemma 1: contender count concentration in [3/4 c1 ln n, 5/4 c1 ln n]",
		Columns: []string{"n", "E[X] = c1 ln n", "band", "mean X", "P[X in band]", "95% CI"},
	}
	c := core.DefaultConfig()
	for _, pd := range data {
		p, err := core.ResolveParams(pd.Point.N, c)
		if err != nil {
			return nil, err
		}
		mu := c.C1 * p.LogN
		lo, hi := 0.75*mu, 1.25*mu
		trials := len(pd.Trials)
		inBand := pd.Count("in_band")
		ciLo, ciHi, err := stats.BinomialCI(inBand, trials, 1.96)
		if err != nil {
			return nil, err
		}
		t.AddRow(d(pd.Point.N), f1(mu), "["+f1(lo)+", "+f1(hi)+"]",
			f1(pd.Mean("x")), f3(float64(inBand)/float64(trials)),
			"["+f3(ciLo)+", "+f3(ciHi)+"]")
	}
	t.AddNote("Lemma 1 is a Chernoff bound: the in-band probability must increase toward 1 as n grows (with c1=%.0f).", c.C1)
	t.Plot = ASCIIPlot("P[X in band] vs n", "n", "P[in band]", true, false,
		familySeries(data, func(pd PointData) float64 {
			return pd.Sum("in_band") / float64(len(pd.Trials))
		}))
	return t, nil
}

// e4Spec reproduces Lemma 11: exactly one leader w.h.p., and the safety
// half (never more than one) as a hard invariant.
func e4Spec() Spec {
	return Spec{
		ID:    "E4",
		Name:  "unique-leader",
		Title: "Lemma 11: unique leader w.h.p. (and never more than one)",
		Claim: "Lemma 11 (exactly one leader w.h.p.; at most one always)",
		Preamble: "The correctness claim itself. Lemma 11 promises exactly one leader with high probability; the safety half (never more than one) should hold in every single run, " +
			"while zero-leader runs are the finite-n probability tail and must stay rare. Expect the multi column to be identically 0.",
		FullTrials:  10,
		QuickTrials: 3,
		Points: func(cfg SuiteConfig) []Point {
			cases := []Point{
				{Key: "clique-64", Family: "clique", N: 64},
				{Key: "hypercube-64", Family: "hypercube", N: 64},
				{Key: "rr8-128", Family: "rr8", N: 128},
			}
			var out []Point
			for _, pt := range cases {
				if cfg.MaxN > 0 && pt.N > cfg.MaxN {
					continue
				}
				out = append(out, pt)
			}
			return out
		},
		Trial: func(cfg SuiteConfig, pt Point, setup interface{}, seed int64) (Metrics, error) {
			g, err := buildFamily(pt.Family, pt.N, sim.DeriveSeed(seed, 0xA))
			if err != nil {
				return nil, err
			}
			res, err := core.Run(g, core.DefaultConfig(),
				core.RunOptions{Seed: sim.DeriveSeed(seed, 0xB), LeanMetrics: true})
			if err != nil {
				return nil, err
			}
			return Metrics{
				"one":        b2f(len(res.Leaders) == 1),
				"zero":       b2f(len(res.Leaders) == 0),
				"multi":      b2f(len(res.Leaders) > 1),
				"contenders": float64(len(res.Contenders)),
			}, nil
		},
		Render: renderE4,
	}
}

func renderE4(cfg SuiteConfig, data []PointData) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Lemma 11: unique leader w.h.p. (and never more than one)",
		Columns: []string{"family", "n", "trials", "exactly one", "zero", "multi", "mean contenders"},
	}
	for _, pd := range data {
		t.AddRow(pd.Point.Family, d(pd.Point.N), d(len(pd.Trials)),
			d(pd.Count("one")), d(pd.Count("zero")), d(pd.Count("multi")),
			f1(pd.Mean("contenders")))
	}
	t.AddNote("multi must be 0 in every row: with the FINAL-latch and inactive-exchange clarifications on (the defaults), at-most-one-leader held in every run we ever executed. Zero-leader runs are the finite-n tail Lemma 1 bounds (see E14's c1 sweep).")
	return t, nil
}

// e7Spec reproduces Corollary 14 and the comparison against the Omega(m)
// flooding regime of [24]: explicit election = implicit election +
// push-pull broadcast of the leader id.
func e7Spec() Spec {
	return Spec{
		ID:    "E7",
		Name:  "explicit-election",
		Title: "Corollary 14: explicit election (implicit + push-pull) vs the Omega(m) FloodMax baseline",
		Claim: "Corollary 14 (explicit election) vs the Omega(m) flooding regime of [24]",
		Preamble: "Corollary 14 upgrades the implicit election to an explicit one (every node learns the leader's id) by appending a push-pull broadcast, at no asymptotic cost. " +
			"Expected shapes on expanders: explicit total ~ the E1 message bound plus Theta(n log log n) gossip, versus FloodMax's Omega(m) flooding — the fitted exponents separate even where absolute counts favor FloodMax at small n.",
		FullTrials:  3,
		QuickTrials: 1,
		Points: func(cfg SuiteConfig) []Point {
			sizes := []int{128, 256, 512}
			if cfg.Quick {
				sizes = []int{64, 128}
			}
			var out []Point
			for _, n := range cfg.capSizes(sizes) {
				out = append(out, Point{Key: fmt.Sprintf("rr8-%d", n), Family: "rr8", N: n})
			}
			return out
		},
		Trial: func(cfg SuiteConfig, pt Point, setup interface{}, seed int64) (Metrics, error) {
			g, err := buildFamily("rr8", pt.N, sim.DeriveSeed(seed, 0xA))
			if err != nil {
				return nil, err
			}
			res, err := core.Run(g, core.DefaultConfig(),
				core.RunOptions{Seed: sim.DeriveSeed(seed, 0xB), LeanMetrics: true})
			if err != nil {
				return nil, err
			}
			source := 0
			var rumor uint64 = 12345
			if len(res.Leaders) > 0 {
				source = res.Leaders[0]
				rumor = uint64(res.LeaderIDs[0])
			}
			// First pass finds the completion round; the second is truncated
			// there, so its message count is the cost to full coverage.
			bcSeed := sim.DeriveSeed(seed, 0xC)
			probe, err := broadcast.PushPull(g, source, protocol.ID(rumor), bcSeed, 40*g.N(), false)
			if err != nil {
				return nil, err
			}
			horizon := probe.CompletionRound
			if horizon <= 0 {
				horizon = 40 * g.N()
			}
			bc, err := broadcast.PushPull(g, source, protocol.ID(rumor), bcSeed, horizon, false)
			if err != nil {
				return nil, err
			}
			flood, err := baseline.FloodMax(g, sim.DeriveSeed(seed, 0xD), 0)
			if err != nil {
				return nil, err
			}
			return Metrics{
				"m":          float64(g.M()),
				"impl_msgs":  float64(res.Metrics.Messages),
				"bc_msgs":    float64(bc.Metrics.Messages),
				"bc_rounds":  float64(bc.Metrics.FinalRound),
				"explicit":   float64(res.Metrics.Messages + bc.Metrics.Messages),
				"flood_msgs": float64(flood.Metrics.Messages),
			}, nil
		},
		Render: renderE7,
	}
}

func renderE7(cfg SuiteConfig, data []PointData) (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "Corollary 14: explicit election (implicit + push-pull) vs the Omega(m) FloodMax baseline",
		Columns: []string{"n", "m", "implicit msgs", "broadcast msgs", "bcast rounds",
			"explicit total", "floodmax msgs"},
	}
	var ns, explicitMsgs, floodMsgs []float64
	for _, pd := range data {
		implMed, bcMed := pd.Median("impl_msgs"), pd.Median("bc_msgs")
		// Sum the medians (not the median of per-trial sums) so the row
		// stays internally consistent: explicit = implicit + broadcast.
		explicit := implMed + bcMed
		flood := pd.Median("flood_msgs")
		t.AddRow(d(pd.Point.N), d(int(pd.First("m"))),
			d64(int64(implMed)), d64(int64(bcMed)),
			d(int(pd.Median("bc_rounds"))), d64(int64(explicit)), d64(int64(flood)))
		ns = append(ns, float64(pd.Point.N))
		explicitMsgs = append(explicitMsgs, explicit)
		floodMsgs = append(floodMsgs, flood)
	}
	if len(ns) >= 2 {
		fe, err1 := stats.LogLogFit(ns, explicitMsgs)
		ff, err2 := stats.LogLogFit(ns, floodMsgs)
		if err1 == nil && err2 == nil {
			t.AddNote("fitted growth: explicit ~ n^%.2f, floodmax ~ n^%.2f. The paper's win is asymptotic: at laptop scales the polylog constants dominate and FloodMax is cheaper in absolute terms; the smaller fitted exponent is the Theorem 13 shape. Extrapolated crossover: n ~ %.1g.",
				fe.Slope, ff.Slope, crossover(fe, ff))
		}
	}
	t.AddNote("Corollary 14's claim that election time dominates broadcast time shows in 'bcast rounds' being tiny next to the election schedule (E2).")
	t.Plot = ASCIIPlot("explicit vs floodmax messages", "n", "messages", true, true, []Series{
		{Name: "explicit", Mark: 'o', Xs: ns, Ys: explicitMsgs},
		{Name: "floodmax", Mark: 'x', Xs: ns, Ys: floodMsgs},
	})
	return t, nil
}

// crossover solves a1 + b1 x = a2 + b2 x in log space and returns e^x.
func crossover(f1, f2 stats.Fit) float64 {
	if f1.Slope == f2.Slope {
		return math.Inf(1)
	}
	return math.Exp((f2.Intercept - f1.Intercept) / (f1.Slope - f2.Slope))
}

// e14Variants are the ablation variants, in render order.
var e14Variants = []struct {
	name string
	mod  func(*core.Config)
}{
	{"default", func(*core.Config) {}},
	{"no-inactive-exchange", func(c *core.Config) { c.DisableInactiveExchange = true }},
	{"no-distinctness", func(c *core.Config) { c.DisableDistinctness = true }},
	{"no-piggyback", func(c *core.Config) { c.DisablePiggyback = true }},
	{"c1=2", func(c *core.Config) { c.C1 = 2 }},
	{"c1=10", func(c *core.Config) { c.C1 = 10 }},
}

// e14Spec quantifies the design choices: the inactive-exchange
// clarification, the distinctness property, winner piggybacking, and the
// "sufficiently large c1" requirement.
func e14Spec() Spec {
	return Spec{
		ID:    "E14",
		Name:  "ablations",
		Title: "Ablations: correctness clarifications and the c1 constant (rr8, n=96)",
		Claim: "Design ablations (Claims 9/10 relay chain, Lemma 1's constant)",
		Preamble: "Each row switches off one realization choice the paper's proofs lean on — the inactive-exchange relay of Claims 9/10, the distinctness property, winner piggybacking — or moves the \"sufficiently large\" c1 constant. " +
			"Expected shape: defaults elect one leader; c1=2 starves the intersection threshold (zero leaders appear); the paper-literal no-inactive-exchange variant is where multiple leaders can in principle arise.",
		FullTrials:  6,
		QuickTrials: 2,
		Points: func(cfg SuiteConfig) []Point {
			if cfg.MaxN > 0 && cfg.MaxN < 96 {
				return nil
			}
			var out []Point
			for _, v := range e14Variants {
				out = append(out, Point{Key: v.name, Label: v.name, Family: "rr8", N: 96})
			}
			return out
		},
		Trial: func(cfg SuiteConfig, pt Point, setup interface{}, seed int64) (Metrics, error) {
			g, err := buildFamily("rr8", pt.N, sim.DeriveSeed(seed, 0xA))
			if err != nil {
				return nil, err
			}
			c := core.DefaultConfig()
			found := false
			for _, v := range e14Variants {
				if v.name == pt.Label {
					v.mod(&c)
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("experiments: unknown ablation variant %q", pt.Label)
			}
			res, err := core.Run(g, c,
				core.RunOptions{Seed: sim.DeriveSeed(seed, 0xB), LeanMetrics: true})
			if err != nil {
				return nil, err
			}
			return Metrics{
				"one":    b2f(len(res.Leaders) == 1),
				"zero":   b2f(len(res.Leaders) == 0),
				"multi":  b2f(len(res.Leaders) > 1),
				"failed": float64(len(res.Failed)),
				"msgs":   float64(res.Metrics.Messages),
			}, nil
		},
		Render: renderE14,
	}
}

func renderE14(cfg SuiteConfig, data []PointData) (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "Ablations: correctness clarifications and the c1 constant (rr8, n=96)",
		Columns: []string{"variant", "trials", "one leader", "zero", "multi", "failed contenders", "mean msgs"},
	}
	for _, pd := range data {
		t.AddRow(pd.Point.Label, d(len(pd.Trials)),
			d(pd.Count("one")), d(pd.Count("zero")), d(pd.Count("multi")),
			d(pd.Count("failed")), f1(pd.Mean("msgs")))
	}
	t.AddNote("c1=2 exposes the 'sufficiently large constant' requirement of Lemma 1: the intersection threshold becomes unreachable in some runs (failed contenders, zero leaders). no-inactive-exchange reproduces the paper-literal reading whose Claim 9/10 relay chain can break; multi > 0 there is the gap made visible (it may need many trials to materialize).")
	return t, nil
}
