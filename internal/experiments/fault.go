package experiments

import (
	"fmt"
	"sync"
	"time"

	"wcle/internal/core"
	"wcle/internal/sim"
)

// This file holds the delivery-plane experiments: E15 probes the
// algorithm's resilience when the clean synchronous model of Theorem 13 is
// violated (lossy, delayed, or crash-prone delivery — the regimes of
// Kutten et al.'s sublinear-election line of work), and E16 benchmarks the
// sharded MultiRunner bulk-election path against the engine's
// goroutine-per-node concurrency.

// e15Faults enumerates the fault scenarios, in render order. Each builds a
// fresh fault plane per trial (planes are stateful per run). Crashes
// happen at round 1: the crashed fraction is dead from the start, so the
// survivors must elect among themselves.
var e15Faults = []struct {
	name   string
	resend int
	mk     func() sim.FaultPlane
}{
	{"perfect", 0, func() sim.FaultPlane { return nil }},
	{"drop-1%", 0, func() sim.FaultPlane { return &sim.Drop{P: 0.01} }},
	{"drop-5%", 0, func() sim.FaultPlane { return &sim.Drop{P: 0.05} }},
	{"drop-10%", 0, func() sim.FaultPlane { return &sim.Drop{P: 0.10} }},
	{"drop-10%+resend2", 2, func() sim.FaultPlane { return &sim.Drop{P: 0.10} }},
	{"delay-3", 0, func() sim.FaultPlane { return &sim.Delay{Max: 3} }},
	{"crash-10%", 0, func() sim.FaultPlane { return &sim.CrashSample{Frac: 0.10, Round: 1} }},
	{"crash-25%", 0, func() sim.FaultPlane { return &sim.CrashSample{Frac: 0.25, Round: 1} }},
}

// e15N returns the network size of the resilience sweep for a regime.
func e15N(cfg SuiteConfig) int {
	if cfg.Quick {
		return 64
	}
	return 96
}

// e15Elections is the per-trial batch size (one harness unit runs a whole
// MultiRunner batch; see the tentpole wiring note in DESIGN.md 3.1).
func e15Elections(cfg SuiteConfig) int {
	if cfg.Quick {
		return 6
	}
	return 10
}

// e15Spec sweeps leader uniqueness and cost against drop rate, delivery
// delay, and crash fraction on the rr8 expander.
func e15Spec() Spec {
	return Spec{
		ID:    "E15",
		Name:  "fault-resilience",
		Title: "Fault resilience: leader uniqueness vs drop rate, delay, and crash fraction (rr8)",
		Claim: "Robustness beyond Theorem 13's clean synchronous model (cf. Kutten et al.)",
		Preamble: "Theorem 13 assumes perfect synchronous delivery; this sweep injects seed-deterministic drops, delays, and crashes to measure what actually degrades. " +
			"Expected shape: safety holds everywhere (multi stays 0 — losing control floods suppresses elections rather than doubling them) while liveness decays with the drop rate; delays should be nearly free because the staged schedule absorbs reordering.",
		FullTrials:  2,
		QuickTrials: 1,
		Points: func(cfg SuiteConfig) []Point {
			if cfg.MaxN > 0 && cfg.MaxN < e15N(cfg) {
				return nil
			}
			var out []Point
			for _, f := range e15Faults {
				out = append(out, Point{Key: f.name, Label: f.name, Family: "rr8", N: e15N(cfg)})
			}
			return out
		},
		Trial: func(cfg SuiteConfig, pt Point, setup interface{}, seed int64) (Metrics, error) {
			g, err := buildFamily("rr8", pt.N, sim.DeriveSeed(seed, 0xA))
			if err != nil {
				return nil, err
			}
			var fault func() sim.FaultPlane
			resend := 0
			found := false
			for _, f := range e15Faults {
				if f.name == pt.Label {
					fault, resend, found = f.mk, f.resend, true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("experiments: unknown fault scenario %q", pt.Label)
			}
			c := core.DefaultConfig()
			c.Resend = resend
			batch, err := core.RunMany(g, c, core.BatchOptions{
				Base:     core.RunOptions{Seed: sim.DeriveSeed(seed, 0xB), LeanMetrics: true},
				Trials:   e15Elections(cfg),
				NewFault: func(int) sim.FaultPlane { return fault() },
			})
			if err != nil {
				return nil, err
			}
			k := float64(batch.Trials)
			return Metrics{
				"elections":   k,
				"one":         float64(batch.One),
				"zero":        float64(batch.Zero),
				"multi":       float64(batch.Multi),
				"msgs":        float64(batch.Messages) / k,
				"fault_drops": float64(batch.FaultDrops) / k,
				"delayed":     float64(batch.Delayed) / k,
			}, nil
		},
		Render: renderE15,
	}
}

func renderE15(cfg SuiteConfig, data []PointData) (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   fmt.Sprintf("Fault resilience: leader uniqueness vs drop rate, delay, and crash fraction (rr8, n=%d)", e15N(cfg)),
		Columns: []string{"fault", "elections", "one leader", "zero", "multi", "mean msgs", "mean lost/delayed sends"},
	}
	for _, pd := range data {
		t.AddRow(pd.Point.Label,
			d(pd.Count("elections")), d(pd.Count("one")), d(pd.Count("zero")), d(pd.Count("multi")),
			f1(pd.Mean("msgs")),
			f1(pd.Mean("fault_drops"))+" / "+f1(pd.Mean("delayed")))
	}
	t.AddNote("The paper's guarantees assume perfect synchronous delivery; this sweep measures degradation outside that model. In every scenario we measured, safety held (multi = 0): losing or delaying winner/FINAL floods suppresses elections rather than doubling them (not a theorem — a second leader needs a stopped contender that missed both the max id and the winner flood — but the measured rate is zero). Liveness is what degrades: drops lose walk tokens and X1 deltas, which are additive state, so the distinctness/intersection thresholds go unmet and the zero-leader rate climbs with the drop rate.")
	t.AddNote("resend2 retransmits each idempotent control message twice (core.Config.Resend). It protects the control plane (id floods, FINAL, winner) but cannot restore the additive plane — duplicating a token batch or an X1 delta would corrupt counts, so they go out once — and the liveness loss at heavy drop rates persists at ~3x the message cost: the honest conclusion is that drop-resilience needs acknowledgments, not blind redundancy. Delay keeps every message (reordering only); the staged schedule absorbs almost all of it, with the rare failure being a walk token arriving after its phase's decision round (a stale drop). Crashes happen at round 1; the survivors keep n set to the original size, so thresholds are conservatively high (a crash-robust n-estimate is the open problem the paper leaves).")
	return t, nil
}

// e16Sizes returns the throughput grid for a regime.
func e16Sizes(cfg SuiteConfig) []int {
	sizes := []int{32, 64, 128}
	if cfg.Quick {
		sizes = []int{32, 64}
	}
	return cfg.capSizes(sizes)
}

// e16Elections is the per-point batch size.
const e16Elections = 12

// e16Spec measures bulk-election throughput: the sharded MultiRunner
// (sequential engine per election, one goroutine per shard) against the
// engine's goroutine-per-awake-node mode with all elections in flight —
// the only concurrent bulk path that existed before the MultiRunner.
//
// E16 reports wall-clock throughput, so its metrics are the one deliberate
// exception to the suite's byte-identical determinism contract (DESIGN.md
// 3.3): reruns reproduce the speedup, not the exact numbers.
func e16Spec() Spec {
	return Spec{
		ID:    "E16",
		Name:  "throughput",
		Title: "Bulk-election throughput: sharded MultiRunner vs goroutine-per-node concurrency (rr8)",
		Claim: "Engine scalability (ROADMAP hardware-speed goal); no paper claim",
		Preamble: "An engine benchmark, not a paper claim: bulk independent elections sharded across a worker pool (one sequential engine per shard) versus the goroutine-per-awake-node mode with every election in flight. " +
			"Expected shape: the sharded path wins by avoiding per-round spawn-and-barrier overhead; the measured speedup is hardware-dependent (wall-clock — the suite's one exception to byte-identical determinism).",
		FullTrials:  2,
		QuickTrials: 1,
		Points: func(cfg SuiteConfig) []Point {
			var out []Point
			for _, n := range e16Sizes(cfg) {
				out = append(out, Point{Key: fmt.Sprintf("rr8-%d", n), Family: "rr8", N: n})
			}
			return out
		},
		Trial: func(cfg SuiteConfig, pt Point, setup interface{}, seed int64) (Metrics, error) {
			g, err := buildFamily("rr8", pt.N, sim.DeriveSeed(seed, 0xA))
			if err != nil {
				return nil, err
			}
			c := core.DefaultConfig()
			master := sim.DeriveSeed(seed, 0xB)

			// Sharded: MultiRunner, sequential engine per election.
			batch, err := core.RunMany(g, c, core.BatchOptions{
				Base:   core.RunOptions{Seed: master, LeanMetrics: true},
				Trials: e16Elections,
			})
			if err != nil {
				return nil, err
			}

			// Per-node-goroutine mode: the same elections, every one on the
			// concurrent engine, all in flight at once.
			var (
				wg       sync.WaitGroup
				mu       sync.Mutex
				firstErr error
				one      int
			)
			start := time.Now()
			for i := 0; i < e16Elections; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					res, err := core.Run(g, c, core.RunOptions{
						Seed:        sim.DeriveSeed(master, uint64(i)),
						Concurrent:  true,
						LeanMetrics: true,
					})
					mu.Lock()
					defer mu.Unlock()
					if err != nil && firstErr == nil {
						firstErr = err
					}
					if err == nil && len(res.Leaders) == 1 {
						one++
					}
				}(i)
			}
			wg.Wait()
			perNode := time.Since(start)
			if firstErr != nil {
				return nil, firstErr
			}
			if one != batch.One {
				return nil, fmt.Errorf("experiments: engine modes disagree: %d vs %d unique-leader runs", batch.One, one)
			}
			perNodeEPS := float64(e16Elections) / perNode.Seconds()
			return Metrics{
				"elections":   e16Elections,
				"eps_sharded": batch.ElectionsPerSec,
				"eps_pernode": perNodeEPS,
				"speedup":     batch.ElectionsPerSec / perNodeEPS,
				"msgs":        float64(batch.Messages) / e16Elections,
			}, nil
		},
		Render: renderE16,
	}
}

func renderE16(cfg SuiteConfig, data []PointData) (*Table, error) {
	t := &Table{
		ID:      "E16",
		Title:   "Bulk-election throughput: sharded MultiRunner vs goroutine-per-node concurrency (rr8)",
		Columns: []string{"n", "elections/point", "sharded elect/s", "per-node-goroutine elect/s", "speedup", "mean msgs"},
	}
	for _, pd := range data {
		t.AddRow(d(pd.Point.N), d(int(pd.First("elections"))),
			f2(pd.Median("eps_sharded")), f2(pd.Median("eps_pernode")),
			f2(pd.Median("speedup"))+"x", f1(pd.Mean("msgs")))
	}
	t.AddNote("Both modes run identical elections (the trial cross-checks their unique-leader counts). The per-node-goroutine mode spawns one goroutine per awake node per busy round — pure scheduling overhead for independent bulk trials; the MultiRunner runs one sequential-engine election per shard slot instead. Wall-clock metrics are the suite's one exception to the byte-identical determinism contract (DESIGN.md 3.3).")
	return t, nil
}
