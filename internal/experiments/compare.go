package experiments

import (
	"fmt"
	"math"

	"wcle/internal/algo"
	"wcle/internal/graph"
	"wcle/internal/sim"
)

// This file holds the backend head-to-head experiments: E17 measures
// message complexity and E18 round complexity for every registered
// election backend on one graph family, through the same algo registry
// every other surface (facade, electsim, electd) uses. Cliques are the
// comparison family: they are the KPPRT home regime (direct referee
// sampling), the densest case for FloodMax's Omega(m), and a
// constant-tmix case for GilbertRS18 — so the three asymptotics separate
// cleanly in n.

// e17Sizes returns the clique sizes of the comparison grid for a regime.
func e17Sizes(cfg SuiteConfig) []int {
	sizes := []int{64, 128, 256, 512}
	if cfg.Quick {
		sizes = []int{32, 64}
	}
	return cfg.capSizes(sizes)
}

// e17Backends enumerates the compared backends in render order, with the
// metric prefix each one reports under.
var e17Backends = []struct {
	name   string
	prefix string
}{
	{algo.GilbertRS18, "g"},
	{algo.FloodMax, "f"},
	{algo.KPPRT, "k"},
}

// e17Spec runs the three registered backends on the clique grid. E18 is a
// view over the same trials.
func e17Spec() Spec {
	return Spec{
		ID:    "E17",
		Name:  "backend-messages",
		Title: "Backend head-to-head (messages): GilbertRS18 vs FloodMax vs KPPRT on cliques",
		Claim: "Theorem 13 and Kutten et al. vs the Omega(m) flooding regime, through the algo registry",
		Preamble: "Every backend of the `internal/algo` registry runs the same elections on the same cliques with the same derived seeds. " +
			"Expected asymptotics in n: FloodMax floods Omega(m) = Omega(n^2) messages; GilbertRS18 pays O(sqrt(n) log^{7/2} n * tmix) with tmix = O(1) on cliques; " +
			"KPPRT's candidate sampling + referee committees pay O(sqrt(n) log^{3/2} n). The fitted exponents and the msgs/m columns make the separation visible at laptop scales.",
		FullTrials:  3,
		QuickTrials: 1,
		Points: func(cfg SuiteConfig) []Point {
			var out []Point
			for _, n := range e17Sizes(cfg) {
				out = append(out, Point{Key: fmt.Sprintf("clique-%d", n), Family: "clique", N: n})
			}
			return out
		},
		Setup: func(cfg SuiteConfig, pt Point, seed int64) (interface{}, error) {
			return buildFamily("clique", pt.N, seed)
		},
		Trial: func(cfg SuiteConfig, pt Point, setup interface{}, seed int64) (Metrics, error) {
			g := setup.(*graph.Graph)
			m := Metrics{"m": float64(g.M())}
			for i, b := range e17Backends {
				a, err := algo.New(b.name, algo.Config{})
				if err != nil {
					return nil, err
				}
				out, err := a.Run(g, algo.Options{
					Seed:        sim.DeriveSeed(seed, uint64(0xA1+i)),
					LeanMetrics: true,
				})
				if err != nil {
					return nil, fmt.Errorf("%s: %w", b.name, err)
				}
				leaderRound := float64(out.Rounds)
				if out.LeaderRound >= 0 {
					leaderRound = float64(out.LeaderRound)
				}
				m[b.prefix+"_msgs"] = float64(out.Metrics.Messages)
				m[b.prefix+"_bits"] = float64(out.Metrics.Bits)
				m[b.prefix+"_rounds"] = float64(out.Rounds)
				m[b.prefix+"_leader_round"] = leaderRound
				m[b.prefix+"_success"] = b2f(out.Success)
			}
			return m, nil
		},
		Render: renderE17,
	}
}

func renderE17(cfg SuiteConfig, data []PointData) (*Table, error) {
	t := &Table{
		ID:    "E17",
		Title: "Backend head-to-head (messages): GilbertRS18 vs FloodMax vs KPPRT on cliques",
		Columns: []string{"n", "m", "gilbertrs18 msgs", "floodmax msgs", "kpprt msgs",
			"gilbert/m", "floodmax/m", "kpprt/m", "elected g+f+k"},
	}
	for _, pd := range data {
		m := pd.First("m")
		g, f, k := pd.Median("g_msgs"), pd.Median("f_msgs"), pd.Median("k_msgs")
		t.AddRow(d(pd.Point.N), d(int(m)),
			d64(int64(g)), d64(int64(f)), d64(int64(k)),
			f2(g/m), f2(f/m), g3(k/m),
			fmt.Sprintf("%d+%d+%d/%d", pd.Count("g_success"), pd.Count("f_success"),
				pd.Count("k_success"), len(pd.Trials)))
	}
	for _, b := range e17Backends {
		b := b
		slope, err := fitExponent(data, "clique", func(pd PointData) float64 {
			return pd.Median(b.prefix + "_msgs")
		})
		if err != nil {
			return nil, err
		}
		t.AddNote("%s: fitted messages ~ n^%.2f.", b.name, slope)
	}
	t.AddNote("m = n(n-1)/2 grows as n^2. FloodMax must track it (every node floods every improvement). KPPRT's fitted exponent sits near 0.8-0.9 at these sizes — the asymptotic sqrt(n) plus the log^{3/2} n factor, which decays slowly — and the kpprt/m column collapsing by an order of magnitude across the sweep is the sublinearity claim made visible. GilbertRS18 is also sublinear in m but pays its walk machinery's larger polylog factors.")
	t.Plot = ASCIIPlot("median messages vs n (per backend)", "n", "messages", true, true,
		backendSeries(data, "_msgs"))
	return t, nil
}

// backendSeries builds one plot series per backend from the E17 grid.
func backendSeries(data []PointData, suffix string) []Series {
	out := make([]Series, 0, len(e17Backends))
	for i, b := range e17Backends {
		s := Series{Name: b.name, Mark: seriesMarks[i%len(seriesMarks)]}
		for _, pd := range data {
			v := pd.Median(b.prefix + suffix)
			if math.IsNaN(v) {
				continue
			}
			s.Xs = append(s.Xs, float64(pd.Point.N))
			s.Ys = append(s.Ys, v)
		}
		out = append(out, s)
	}
	return out
}

// e18Spec renders the round-complexity view of the E17 grid.
func e18Spec() Spec {
	return Spec{
		ID:    "E18",
		Name:  "backend-rounds",
		Title: "Backend head-to-head (rounds): GilbertRS18 vs FloodMax vs KPPRT on cliques",
		Claim: "Round-complexity separation: O(tmix log^2 n) vs Theta(n) vs O(1) decision schedules",
		Preamble: "The round-complexity view of the E17 trials. FloodMax cannot decide before its horizon (n rounds: without knowing the diameter it must assume the worst); " +
			"GilbertRS18 needs O(tmix log^2 n) rounds of staged walk phases; KPPRT's referees answer after a constant decision window, so its total round count is flat in n on cliques.",
		DataFrom: "E17",
		Render:   renderE18,
	}
}

func renderE18(cfg SuiteConfig, data []PointData) (*Table, error) {
	t := &Table{
		ID:    "E18",
		Title: "Backend head-to-head (rounds): GilbertRS18 vs FloodMax vs KPPRT on cliques",
		Columns: []string{"n", "gilbertrs18 rounds", "floodmax rounds", "kpprt rounds",
			"gilbert leader round", "kpprt leader round"},
	}
	for _, pd := range data {
		t.AddRow(d(pd.Point.N),
			d64(int64(pd.Median("g_rounds"))), d64(int64(pd.Median("f_rounds"))),
			d64(int64(pd.Median("k_rounds"))),
			d64(int64(pd.Median("g_leader_round"))), d64(int64(pd.Median("k_leader_round"))))
	}
	t.AddNote("FloodMax rounds equal its horizon (n). KPPRT's count stays constant: announcements land in one hop on a clique and referees decide at a fixed window. GilbertRS18 grows with its log^2 n schedule despite tmix = O(1) on cliques.")
	t.Plot = ASCIIPlot("median rounds vs n (per backend)", "n", "rounds", true, true,
		backendSeries(data, "_rounds"))
	return t, nil
}
