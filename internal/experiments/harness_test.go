package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testCfg is a cheap configuration: E3 and E9 are pure sampling (no
// simulator rounds), capped at n=256 with few trials. E9 additionally
// exercises the per-point Setup cache.
func testCfg() SuiteConfig {
	return SuiteConfig{Seed: 7, Quick: true, Trials: 12, MaxN: 256}
}

// TestSeedDerivationDeterministic: the same configuration yields
// byte-identical canonical JSON regardless of worker count — the harness's
// core determinism contract (per-trial seeds derive from the unit key, not
// from scheduling).
func TestSeedDerivationDeterministic(t *testing.T) {
	var outs [][]byte
	for _, workers := range []int{1, 4} {
		h := &Harness{Config: testCfg(), Workers: workers}
		res, err := h.Run([]string{"E3", "E9"})
		if err != nil {
			t.Fatal(err)
		}
		b, err := res.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, b)
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatalf("results differ between -workers 1 and -workers 4:\n%s\nvs\n%s", outs[0], outs[1])
	}
	// And a different seed must actually change the measurements.
	cfg := testCfg()
	cfg.Seed = 8
	h := &Harness{Config: cfg, Workers: 4}
	res, err := h.Run([]string{"E3", "E9"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(outs[0], b) {
		t.Fatal("different seeds produced identical results")
	}
}

func TestUnitKeyAndTrialSeed(t *testing.T) {
	k := UnitKey("E1", "rr8-64", 2)
	if k != "E1|rr8-64|2" {
		t.Fatalf("unit key = %q", k)
	}
	if trialSeed(1, k) == trialSeed(1, UnitKey("E1", "rr8-64", 3)) {
		t.Fatal("adjacent trials must get distinct seeds")
	}
	if trialSeed(1, k) == trialSeed(2, k) {
		t.Fatal("different master seeds must differ")
	}
	if trialSeed(1, k) != trialSeed(1, "E1|rr8-64|2") {
		t.Fatal("seed derivation must be stable")
	}
}

// TestResumeFromCheckpoint: interrupting a suite and resuming from its
// checkpoint yields exactly the results of an uninterrupted run, and the
// resumed run re-executes only the missing units.
func TestResumeFromCheckpoint(t *testing.T) {
	cfg := testCfg()
	full, err := (&Harness{Config: cfg, Workers: 2}).Run([]string{"E3"})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := full.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}

	// Simulate an interrupted run: a checkpoint holding roughly half the
	// units.
	partial := NewResults(cfg)
	kept := 0
	for _, k := range sortedPointKeys(full) {
		if kept%2 == 0 {
			partial.Units[k] = full.Units[k]
		}
		kept++
	}
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "checkpoint.json")
	b, err := partial.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, b, 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, err := (&Harness{Config: cfg, Workers: 2, CheckpointPath: ckpt, CheckpointEvery: 3}).Run([]string{"E3"})
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := resumed.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatal("resumed results differ from uninterrupted run")
	}
	// The final checkpoint on disk holds the complete results too.
	onDisk, err := LoadResults(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	diskJSON, err := onDisk.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, diskJSON) {
		t.Fatal("checkpoint on disk differs from full results")
	}
}

// A checkpoint written under a different configuration must be refused,
// not silently mixed in.
func TestCheckpointConfigMismatchRefused(t *testing.T) {
	cfg := testCfg()
	other := cfg
	other.Seed = 999
	stale := NewResults(other)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "checkpoint.json")
	b, err := stale.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = (&Harness{Config: cfg, CheckpointPath: ckpt}).Run([]string{"E3"})
	if err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("mismatched checkpoint not refused: %v", err)
	}
}

// A run that completes fully leaves no pending units on a second Run: the
// harness short-circuits entirely from the checkpoint.
func TestCheckpointShortCircuit(t *testing.T) {
	cfg := testCfg()
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "checkpoint.json")
	if _, err := (&Harness{Config: cfg, CheckpointPath: ckpt}).Run([]string{"E3"}); err != nil {
		t.Fatal(err)
	}
	ran := 0
	h := &Harness{Config: cfg, CheckpointPath: ckpt,
		Progress: func(format string, args ...interface{}) {
			if strings.Contains(format, "units pending") && len(args) > 0 {
				ran = args[0].(int)
			}
		}}
	if _, err := h.Run([]string{"E3"}); err != nil {
		t.Fatal(err)
	}
	if ran != 0 {
		t.Fatalf("second run re-executed %d units", ran)
	}
}

// TestDataForViews: a view experiment (E2 over E1's grid) renders from the
// data experiment's units, and DataFor fails cleanly when data is missing.
func TestDataForViews(t *testing.T) {
	e2, _ := Get("E2")
	cfg := SuiteConfig{Seed: 3, Quick: true, Trials: 1, MaxN: 32}
	if _, err := DataFor(e2, cfg, NewResults(cfg)); err == nil {
		t.Fatal("DataFor with empty results should fail")
	}
	res, err := (&Harness{Config: cfg}).Run([]string{"E2"})
	if err != nil {
		t.Fatal(err)
	}
	// The view scheduled its data experiment's units under the E1 id.
	for k := range res.Units {
		if !strings.HasPrefix(k, "E1|") {
			t.Fatalf("unexpected unit %q", k)
		}
	}
	data, err := DataFor(e2, cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e2.Render(cfg, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("E2 rendered no rows")
	}
}

// Selecting E1 and E2 together must not duplicate the shared grid units.
func TestSharedDataScheduledOnce(t *testing.T) {
	cfg := SuiteConfig{Seed: 3, Quick: true, Trials: 1, MaxN: 32}
	total := -1
	h := &Harness{Config: cfg,
		Progress: func(format string, args ...interface{}) {
			if strings.Contains(format, "units pending") && len(args) > 1 {
				total = args[1].(int)
			}
		}}
	if _, err := h.Run([]string{"E1", "E2", "E5", "E13"}); err != nil {
		t.Fatal(err)
	}
	e1, _ := Get("E1")
	want := len(e1.Points(cfg)) * cfg.trialsFor(e1)
	if total != want {
		t.Fatalf("scheduled %d units, want %d (shared grid must dedupe)", total, want)
	}
}

func TestHarnessUnknownExperiment(t *testing.T) {
	if _, err := (&Harness{Config: testCfg()}).Run([]string{"E99"}); err == nil {
		t.Fatal("unknown experiment should fail")
	}
	if _, err := RunOne(testCfg(), "E99"); err == nil {
		t.Fatal("RunOne unknown experiment should fail")
	}
}
