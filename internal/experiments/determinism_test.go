package experiments

import (
	"bytes"
	"os"
	"testing"
)

// fixtureIDs are the experiments the determinism fixture spans: everything
// that predates the delivery-plane refactor (E15/E16 are excluded — E15 is
// new in the same PR and E16 reports wall-clock).
var fixtureIDs = []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7",
	"E8", "E9", "E10", "E11", "E12", "E13", "E14"}

// TestPerfectPlaneFixture enforces the determinism contract across engine
// refactors (DESIGN.md 3.3): the raw results JSON of E1–E14 under the
// Perfect fault plane, quick regime, MaxN 128, seed 42, must stay
// byte-identical to the committed fixture. The fixture records the
// behavior of the pre-delivery-plane engine (PR 1): that engine was
// verified byte-identical to the current one on both the full regime (all
// 1867 E1–E14 units) and this quick configuration before the fixture was
// committed. Any change to walk stepping, delivery order, per-node
// seeding, or metric accounting shows up here.
//
// Regenerate (only when a semantic change is intended and documented):
//
//	go run ./cmd/benchsuite -experiments E1,...,E14 -quick -n 128 -seed 42 \
//	    -json internal/experiments/testdata/perfect_quick128.json -render /dev/null
func TestPerfectPlaneFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("re-runs the capped quick suite (~10 s); skipped in -short mode")
	}
	want, err := os.ReadFile("testdata/perfect_quick128.json")
	if err != nil {
		t.Fatal(err)
	}
	cfg := SuiteConfig{Seed: 42, Quick: true, MaxN: 128}
	res, err := (&Harness{Config: cfg}).Run(fixtureIDs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("raw results JSON diverged from the pre-refactor fixture: the determinism contract is broken (see test comment)")
	}
}
