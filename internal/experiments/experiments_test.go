package experiments

import (
	"strings"
	"testing"
)

func TestTableMarkdown(t *testing.T) {
	tab := &Table{ID: "EX", Title: "demo", Columns: []string{"a", "b"}}
	tab.AddRow("1", "2")
	tab.AddNote("note %d", 7)
	tab.Plot = "fake plot\n"
	md := tab.Markdown()
	for _, want := range []string{"### EX — demo", "| a | b |", "| 1 | 2 |", "> note 7",
		"```text\nfake plot\n```"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestAllSpecsRegistered(t *testing.T) {
	specs := All()
	if len(specs) != 23 {
		t.Fatalf("got %d specs, want 23", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.ID] {
			t.Fatalf("duplicate id %s", s.ID)
		}
		seen[s.ID] = true
		if s.Render == nil || s.Name == "" || s.Title == "" || s.Claim == "" {
			t.Fatalf("spec %s incomplete", s.ID)
		}
		if s.DataFrom == "" {
			if s.Points == nil || s.Trial == nil || s.FullTrials <= 0 || s.QuickTrials <= 0 {
				t.Fatalf("data spec %s incomplete", s.ID)
			}
		} else {
			data, ok := Get(s.DataFrom)
			if !ok || data.DataFrom != "" {
				t.Fatalf("%s: DataFrom %q must name a data-owning spec", s.ID, s.DataFrom)
			}
		}
	}
	if _, ok := Get("E1"); !ok {
		t.Fatal("Get(E1) failed")
	}
	if _, ok := Get("E99"); ok {
		t.Fatal("Get(E99) should fail")
	}
	if len(IDs()) != 23 {
		t.Fatal("IDs() wrong length")
	}
}

func TestResolve(t *testing.T) {
	all, err := Resolve(nil)
	if err != nil || len(all) != 23 {
		t.Fatalf("Resolve(nil) = %d specs, err %v", len(all), err)
	}
	some, err := Resolve([]string{"E7", "E1", "E7", " E3 "})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, s := range some {
		ids = append(ids, s.ID)
	}
	// Registry order, deduplicated.
	if len(ids) != 3 || ids[0] != "E1" || ids[1] != "E3" || ids[2] != "E7" {
		t.Fatalf("Resolve order/dedup wrong: %v", ids)
	}
	if _, err := Resolve([]string{"E99"}); err == nil {
		t.Fatal("unknown id should fail")
	}
}

func TestBuildFamilyErrors(t *testing.T) {
	if _, err := buildFamily("nope", 16, 1); err == nil {
		t.Fatal("unknown family should fail")
	}
	if _, err := buildFamily("hypercube", 48, 1); err == nil {
		t.Fatal("non-power-of-two hypercube should fail")
	}
}

func TestPointKeysUniqueAndStable(t *testing.T) {
	for _, cfg := range []SuiteConfig{{Seed: 1, Quick: true}, {Seed: 1}} {
		for _, s := range All() {
			if s.DataFrom != "" {
				continue
			}
			seen := map[string]bool{}
			for _, pt := range s.Points(cfg) {
				if pt.Key == "" || seen[pt.Key] {
					t.Fatalf("%s: point key %q empty or duplicated", s.ID, pt.Key)
				}
				seen[pt.Key] = true
			}
			if len(seen) == 0 {
				t.Fatalf("%s has no points", s.ID)
			}
		}
	}
}

func TestMaxNCapsPoints(t *testing.T) {
	cfg := SuiteConfig{Seed: 1, Quick: true, MaxN: 40}
	for _, s := range All() {
		if s.DataFrom != "" {
			continue
		}
		for _, pt := range s.Points(cfg) {
			if pt.N > cfg.MaxN {
				t.Fatalf("%s: MaxN not applied: point %+v", s.ID, pt)
			}
		}
	}
	if cfg.lbSize() != 40 {
		t.Fatalf("lbSize not capped: %d", cfg.lbSize())
	}
}

// TestQuickSuite exercises every experiment end to end in the quick regime
// on the parallel harness. This is the integration test of the whole
// reproduction pipeline.
func TestQuickSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("quick suite still takes tens of seconds; skipped in -short mode")
	}
	cfg := SuiteConfig{Seed: 42, Quick: true}
	h := &Harness{Config: cfg, Progress: t.Logf}
	res, err := h.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range All() {
		s := s
		t.Run(s.ID, func(t *testing.T) {
			data, err := DataFor(s, cfg, res)
			if err != nil {
				t.Fatal(err)
			}
			tab, err := s.Render(cfg, data)
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", s.ID)
			}
			if len(tab.Columns) == 0 || tab.ID != s.ID {
				t.Fatalf("%s table malformed: %+v", s.ID, tab)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("%s row width %d != %d columns", s.ID, len(row), len(tab.Columns))
				}
			}
			md := tab.Markdown()
			if !strings.Contains(md, s.ID) {
				t.Fatalf("%s markdown missing id", s.ID)
			}
		})
	}
	var sb strings.Builder
	if err := RenderSuite(&sb, cfg, nil, res, "test"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "### E20") {
		t.Fatal("rendered suite missing last experiment")
	}
}

func TestResolveBlankOnlyIDsRejected(t *testing.T) {
	for _, ids := range [][]string{{""}, {",", " "}, {"", " "}} {
		if _, err := Resolve(ids); err == nil {
			t.Fatalf("Resolve(%q) should fail, not silently select nothing", ids)
		}
	}
}
