package experiments

import (
	"strings"
	"testing"
)

func TestTableMarkdown(t *testing.T) {
	tab := &Table{ID: "EX", Title: "demo", Columns: []string{"a", "b"}}
	tab.AddRow("1", "2")
	tab.AddNote("note %d", 7)
	md := tab.Markdown()
	for _, want := range []string{"### EX — demo", "| a | b |", "| 1 | 2 |", "> note 7"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestAllRunnersRegistered(t *testing.T) {
	runners := All()
	if len(runners) != 14 {
		t.Fatalf("got %d runners, want 14", len(runners))
	}
	seen := map[string]bool{}
	for _, r := range runners {
		if seen[r.ID] {
			t.Fatalf("duplicate id %s", r.ID)
		}
		seen[r.ID] = true
		if r.Run == nil || r.Name == "" {
			t.Fatalf("runner %s incomplete", r.ID)
		}
	}
	if _, ok := Get("E1"); !ok {
		t.Fatal("Get(E1) failed")
	}
	if _, ok := Get("E99"); ok {
		t.Fatal("Get(E99) should fail")
	}
	if len(IDs()) != 14 {
		t.Fatal("IDs() wrong length")
	}
}

func TestBuildFamilyErrors(t *testing.T) {
	if _, err := buildFamily("nope", 16, 1); err == nil {
		t.Fatal("unknown family should fail")
	}
	if _, err := buildFamily("hypercube", 48, 1); err == nil {
		t.Fatal("non-power-of-two hypercube should fail")
	}
}

// TestQuickSuite exercises every experiment end to end in the quick regime.
// This is the integration test of the whole reproduction pipeline.
func TestQuickSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("quick suite still takes tens of seconds; skipped in -short mode")
	}
	s := NewSuite(42, true)
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tab, err := r.Run(s)
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", r.ID)
			}
			if len(tab.Columns) == 0 || tab.ID != r.ID {
				t.Fatalf("%s table malformed: %+v", r.ID, tab)
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("%s row width %d != %d columns", r.ID, len(row), len(tab.Columns))
				}
			}
			md := tab.Markdown()
			if !strings.Contains(md, r.ID) {
				t.Fatalf("%s markdown missing id", r.ID)
			}
		})
	}
}
