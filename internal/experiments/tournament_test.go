package experiments

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// TestTournamentFixture is the golden drift test for the E23 adversary
// tournament: the raw results JSON of the quick regime at seed 42 must
// stay byte-identical to the committed fixture. E23 exercises every layer
// the Byzantine plane touches — seed-sampled adversary sets, wire-level
// mutation, the committee defense's claim/quorum/vouch machinery, and the
// deterministic-abort discipline — so any change to mutation stepping,
// adversary sampling, claim framing, or quorum accounting shows up here
// as a byte diff before it shows up as a silently different table.
//
// Regenerate (only when a semantic change is intended and documented):
//
//	go run ./cmd/benchsuite -experiments E23 -quick -seed 42 \
//	    -json internal/experiments/testdata/tournament_quick.json -render /dev/null
func TestTournamentFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("re-runs the E23 quick regime (~2 s per plane sweep); skipped in -short mode")
	}
	want, err := os.ReadFile("testdata/tournament_quick.json")
	if err != nil {
		t.Fatal(err)
	}
	cfg := SuiteConfig{Seed: 42, Quick: true}
	res, err := (&Harness{Config: cfg}).Run([]string{"E23"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("E23 raw results JSON diverged from the committed fixture: the Byzantine determinism contract is broken (see test comment)")
	}
}

// TestTournamentRender locks the rendered shape of the E23 table: the
// full backend × family grid is present, the abort label renders, and
// every cell of a non-abort column carries the ok/trials · msgs form.
func TestTournamentRender(t *testing.T) {
	if testing.Short() {
		t.Skip("re-runs the E23 quick regime; skipped in -short mode")
	}
	cfg := SuiteConfig{Seed: 42, Quick: true}
	tab, err := RunOne(cfg, "E23")
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "E23" {
		t.Fatalf("rendered table %q, want E23", tab.ID)
	}
	wantRows := len(e23Backends) * len(e23Families)
	if len(tab.Rows) != wantRows {
		t.Fatalf("table has %d rows, want %d (backends × families)", len(tab.Rows), wantRows)
	}
	wantCols := 3 + len(e23Scenarios())
	for _, row := range tab.Rows {
		if len(row) != wantCols {
			t.Fatalf("row %v has %d cells, want %d", row, len(row), wantCols)
		}
		for _, cell := range row[3:] {
			if cell != "abort" && !strings.Contains(cell, "/") {
				t.Fatalf("cell %q is neither an ok/trials count nor an abort", cell)
			}
		}
	}
	md := tab.Markdown()
	for _, needle := range []string{"byz15+defend", "| cycle |", "gilbertrs18"} {
		if !strings.Contains(md, needle) {
			t.Fatalf("rendered table missing %q:\n%s", needle, md)
		}
	}
}
