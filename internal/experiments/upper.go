package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"wcle/internal/core"
	"wcle/internal/graph"
	"wcle/internal/protocol"
	"wcle/internal/sim"
	"wcle/internal/spectral"
	"wcle/internal/stats"
)

// famSizes is one upper-bound family's size sweep.
type famSizes struct {
	family string
	sizes  []int
}

// gridFamilies returns the upper-bound graph families and sizes for the
// regime. The grid is measured once (experiment E1) and rendered by
// E1/E2/E5/E13.
func gridFamilies(cfg SuiteConfig) []famSizes {
	var fams []famSizes
	if cfg.Quick {
		fams = []famSizes{
			{"clique", []int{32, 64}},
			{"hypercube", []int{32, 64}},
			{"rr8", []int{64, 128}},
		}
	} else {
		fams = []famSizes{
			{"clique", []int{64, 128, 256}},
			{"hypercube", []int{64, 128, 256}},
			{"rr8", []int{64, 128, 256, 512, 1024}},
			// Tori mix in Theta(n) — a genuinely different tmix growth that
			// exercises Theorem 13's tmix-dependence, not just its
			// n-dependence.
			{"torus", []int{64, 144, 256}},
		}
	}
	out := make([]famSizes, 0, len(fams))
	for _, f := range fams {
		if sizes := cfg.capSizes(f.sizes); len(sizes) > 0 {
			out = append(out, famSizes{f.family, sizes})
		}
	}
	return out
}

// gridPoints enumerates the grid's measurement points.
func gridPoints(cfg SuiteConfig) []Point {
	var out []Point
	for _, fam := range gridFamilies(cfg) {
		for _, n := range fam.sizes {
			out = append(out, Point{
				Key:    fmt.Sprintf("%s-%d", fam.family, n),
				Family: fam.family,
				N:      n,
			})
		}
	}
	return out
}

// buildFamily constructs one graph of a family at size n.
func buildFamily(family string, n int, seed int64) (*graph.Graph, error) {
	switch family {
	case "clique":
		return graph.Clique(n, rand.New(rand.NewSource(seed)))
	case "hypercube":
		dim := 0
		for 1<<dim < n {
			dim++
		}
		if 1<<dim != n {
			return nil, fmt.Errorf("experiments: hypercube size %d not a power of two", n)
		}
		return graph.Hypercube(dim, rand.New(rand.NewSource(seed)))
	case "rr8":
		return graph.RandomRegular(n, 8, rand.New(rand.NewSource(seed)))
	case "cycle":
		return graph.Cycle(n, rand.New(rand.NewSource(seed)))
	case "torus":
		side := int(math.Round(math.Sqrt(float64(n))))
		return graph.Torus2D(side, side, rand.New(rand.NewSource(seed)))
	default:
		return nil, fmt.Errorf("experiments: unknown family %q", family)
	}
}

// measuredTmix returns the sampled mixing time (exact on vertex-transitive
// families).
func measuredTmix(g *graph.Graph) (int, error) {
	starts := []int{0}
	if g.N() > 3 {
		starts = append(starts, g.N()/3, 2*g.N()/3)
	}
	return spectral.MixingTimeSampled(g, spectral.DefaultEps(g.N()), 40_000_000, starts)
}

// gridSetup holds the per-point state shared by a point's trials: the
// graph and its measured mixing time (both expensive, computed once).
type gridSetup struct {
	g    *graph.Graph
	tmix int
}

func gridSetupFn(cfg SuiteConfig, pt Point, seed int64) (interface{}, error) {
	g, err := buildFamily(pt.Family, pt.N, seed)
	if err != nil {
		return nil, err
	}
	tmix, err := measuredTmix(g)
	if err != nil {
		return nil, err
	}
	return &gridSetup{g: g, tmix: tmix}, nil
}

// gridTrial runs one election of the paper's algorithm on the point's
// graph — and, on the rr8 expander series, one run of the known-tmix
// baseline of [25] (fixed walk length 2*tmix) for E13's comparison.
func gridTrial(cfg SuiteConfig, pt Point, setup interface{}, seed int64) (Metrics, error) {
	gs := setup.(*gridSetup)
	res, err := core.Run(gs.g, core.DefaultConfig(),
		core.RunOptions{Seed: seed, LeanMetrics: true})
	if err != nil {
		return nil, err
	}
	leaderRound := float64(res.Rounds)
	if res.LeaderRound >= 0 {
		leaderRound = float64(res.LeaderRound)
	}
	m := Metrics{
		"m":            float64(gs.g.M()),
		"tmix":         float64(gs.tmix),
		"msgs":         float64(res.Metrics.Messages),
		"bits":         float64(res.Metrics.Bits),
		"rounds":       float64(res.Rounds),
		"leader_round": leaderRound,
		"success":      b2f(res.Success),
		"contenders":   float64(len(res.Contenders)),
		"phases":       float64(res.PhasesUsed),
	}
	if len(res.Stopped) > 0 {
		tus := make([]float64, 0, len(res.Stopped))
		for _, v := range res.Stopped {
			tus = append(tus, float64(res.FinalTu[v]))
		}
		med, err := stats.Quantile(tus, 0.5)
		if err != nil {
			return nil, err
		}
		m["tu_med"] = med
	}
	if pt.Family == "rr8" {
		cfgB := core.DefaultConfig()
		cfgB.FixedWalkLen = 2 * gs.tmix
		base, err := core.Run(gs.g, cfgB,
			core.RunOptions{Seed: sim.DeriveSeed(seed, 1), LeanMetrics: true})
		if err != nil {
			return nil, err
		}
		baseRound := float64(base.Rounds)
		if base.LeaderRound >= 0 {
			baseRound = float64(base.LeaderRound)
		}
		m["base_msgs"] = float64(base.Metrics.Messages)
		m["base_rounds"] = baseRound
		m["base_success"] = b2f(base.Success)
	}
	return m, nil
}

// thm13Messages is the Theorem 13 message reference sqrt(n) ln^{7/2} n tmix.
func thm13Messages(n, tmix int) float64 {
	ln := math.Log(float64(n))
	return math.Sqrt(float64(n)) * math.Pow(ln, 3.5) * float64(tmix)
}

// thm13Time is the Theorem 13 time reference tmix ln^2 n.
func thm13Time(n, tmix int) float64 {
	ln := math.Log(float64(n))
	return float64(tmix) * ln * ln
}

// fitExponent fits y ~ n^b for one family's series of points.
func fitExponent(data []PointData, family string, y func(PointData) float64) (float64, error) {
	var xs, ys []float64
	for _, pd := range data {
		if pd.Point.Family != family {
			continue
		}
		v := y(pd)
		if math.IsNaN(v) {
			continue
		}
		xs = append(xs, float64(pd.Point.N))
		ys = append(ys, v)
	}
	if len(xs) < 2 {
		return math.NaN(), nil
	}
	f, err := stats.LogLogFit(xs, ys)
	if err != nil {
		return 0, err
	}
	return f.Slope, nil
}

// e1Spec measures the upper-bound grid and renders Theorem 13's message
// bound. E2/E5/E13 are views over the same data.
func e1Spec() Spec {
	return Spec{
		ID:    "E1",
		Name:  "message-scaling",
		Title: "Theorem 13 (messages): CONGEST messages vs sqrt(n) ln^{7/2} n * tmix",
		Claim: "Theorem 13 (message complexity O(sqrt(n) log^{7/2} n * tmix))",
		Preamble: "The headline upper bound. Theorem 13 says the algorithm elects with O(sqrt(n) log^{7/2} n * tmix) messages — sublinear in the edge count m on well-connected graphs. " +
			"This grid runs the full algorithm across four families whose mixing times grow differently (cliques and hypercubes mix in O(log n)-ish time, tori in Theta(n)); the msgs/ref column divides the measured count by the theorem's reference, so a bounded (non-growing) ratio within a family is the claimed shape, and the fitted per-family exponent of the normalized series should stay at or below the theorem's 0.5.",
		FullTrials:  3,
		QuickTrials: 1,
		Points:      gridPoints,
		Setup:       gridSetupFn,
		Trial:       gridTrial,
		Render:      renderE1,
	}
}

func renderE1(cfg SuiteConfig, data []PointData) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Theorem 13 (messages): CONGEST messages vs sqrt(n) ln^{7/2} n * tmix",
		Columns: []string{"family", "n", "m", "tmix", "median messages", "msgs/ref",
			"msgs/m", "elected"},
	}
	for _, pd := range data {
		tmix := int(pd.First("tmix"))
		mEdges := pd.First("m")
		ref := thm13Messages(pd.Point.N, tmix)
		med := pd.Median("msgs")
		t.AddRow(pd.Point.Family, d(pd.Point.N), d(int(mEdges)), d(tmix),
			d64(int64(med)), f3(med/ref), f1(med/mEdges),
			elected(pd.Count("success"), len(pd.Trials)))
	}
	for _, fam := range gridFamilies(cfg) {
		// Theorem 13 predicts messages/(ln^{7/2} n * tmix) ~ sqrt(n), i.e.
		// a fitted exponent near 0.5 for the normalized series.
		b, err := fitExponent(data, fam.family, func(pd PointData) float64 {
			ln := math.Log(float64(pd.Point.N))
			return pd.Median("msgs") / (math.Pow(ln, 3.5) * pd.First("tmix"))
		})
		if err != nil {
			return nil, err
		}
		t.AddNote("%s: fitted msgs/(ln^{7/2} n * tmix) ~ n^%.2f. Theorem 13 is an upper bound: exponent <= 0.5 confirms it (0.5 would be tight; lower means the per-edge filtering beats the paper's worst-case congestion log, which its O~ absorbs).", fam.family, b)
	}
	t.AddNote("msgs/ref bounded (non-growing) across n within a family is the Theorem 13 shape; absolute constants are implementation-specific. msgs/m falls as graphs get denser — the sublinearity claim is against m.")
	t.Plot = ASCIIPlot("median CONGEST messages vs n", "n", "messages", true, true,
		familySeries(data, func(pd PointData) float64 { return pd.Median("msgs") }))
	return t, nil
}

// e2Spec renders Theorem 13's time bound from the E1 grid.
func e2Spec() Spec {
	return Spec{
		ID:    "E2",
		Name:  "time-scaling",
		Title: "Theorem 13 (time): rounds to election vs tmix ln^2 n",
		Claim: "Theorem 13 (round complexity O(tmix log^2 n))",
		Preamble: "The time half of Theorem 13: a leader emerges within O(tmix log^2 n) rounds. A view over the E1 grid's trials — no elections of its own — " +
			"dividing the measured leader round by tmix ln^2 n; a bounded ratio per family is the claim, with step jumps of up to 2x expected because guess-and-double quantizes the stopping phase.",
		DataFrom: "E1",
		Render:   renderE2,
	}
}

func renderE2(cfg SuiteConfig, data []PointData) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "Theorem 13 (time): rounds to election vs tmix ln^2 n",
		Columns: []string{"family", "n", "tmix", "median leader round", "rounds/ref"},
	}
	for _, pd := range data {
		tmix := int(pd.First("tmix"))
		med := pd.Median("leader_round")
		t.AddRow(pd.Point.Family, d(pd.Point.N), d(tmix), d64(int64(med)),
			f1(med/thm13Time(pd.Point.N, tmix)))
	}
	t.AddNote("rounds/ref bounded across n within a family reproduces the O(tmix log^2 n) time shape; the constant includes the schedule multiplier TMult = (25/16) c1, and jumps by up to 2x between rows because guess-and-double quantizes the stopping phase.")
	t.Plot = ASCIIPlot("median leader round vs n", "n", "rounds", true, true,
		familySeries(data, func(pd PointData) float64 { return pd.Median("leader_round") }))
	return t, nil
}

// e5Spec renders the guess-and-double walk lengths from the E1 grid.
func e5Spec() Spec {
	return Spec{
		ID:    "E5",
		Name:  "guess-and-double",
		Title: "Lemmas 3/6: final guess-and-double walk length vs measured tmix",
		Claim: "Lemmas 3/6 (guess-and-double settles at Theta(tmix))",
		Preamble: "The paper's central trick is electing without knowing tmix: contenders double a walk-length guess until the stopping properties hold, and Lemmas 3/6 promise they settle at Theta(tmix). " +
			"Another view over the E1 grid: the final guess tu, divided by the independently measured tmix, should be a bounded constant (at most 2x overshoot by doubling) across families whose tmix differs by orders of magnitude.",
		DataFrom: "E1",
		Render:   renderE5,
	}
}

func renderE5(cfg SuiteConfig, data []PointData) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Lemmas 3/6: final guess-and-double walk length vs measured tmix",
		Columns: []string{"family", "n", "tmix", "median final tu", "tu/tmix", "phases"},
	}
	for _, pd := range data {
		tmix := pd.First("tmix")
		phases := 0
		if a, ok := pd.Agg("phases"); ok {
			phases = int(a.Max)
		}
		med := pd.Median("tu_med")
		if math.IsNaN(med) {
			t.AddRow(pd.Point.Family, d(pd.Point.N), d(int(tmix)), "-", "-", d(phases))
			continue
		}
		t.AddRow(pd.Point.Family, d(pd.Point.N), d(int(tmix)), f1(med), f2(med/tmix), d(phases))
	}
	t.AddNote("Lemma 3 guarantees stopping once tu >= c3 tmix; guess-and-double overshoots by at most 2x. Contenders often stop below tmix because the properties only need near-uniform proxy spread, not full mixing (the paper's criteria are sufficient, not necessary). 'median final tu' is the median over trials of each trial's median stopped-contender walk length.")
	return t, nil
}

// e13Spec renders the known-tmix baseline comparison from the E1 grid
// (the baseline runs ride along on the grid's rr8 trials).
func e13Spec() Spec {
	return Spec{
		ID:    "E13",
		Name:  "known-tmix-baseline",
		Title: "Known-tmix baseline [25] vs guess-and-double (price of not knowing tmix)",
		Claim: "Kutten et al. [25] comparison (the assumption the paper removes)",
		Preamble: "Kutten et al. [25] elect with similar complexity but assume every node knows tmix; the paper removes that assumption, paying (in the worst case) a constant factor. " +
			"The E1 expander trials carry a paired baseline run with the walk length fixed at 2*tmix; the message ratio measures the actual price of not knowing tmix — expected O(1), and in practice below 1 because adaptive stopping quits before full mixing.",
		DataFrom: "E1",
		Render:   renderE13,
	}
}

func renderE13(cfg SuiteConfig, data []PointData) (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "Known-tmix baseline [25] vs guess-and-double (price of not knowing tmix)",
		Columns: []string{"n", "tmix", "ours msgs", "[25] msgs", "msg ratio", "ours rounds", "[25] rounds", "both elect"},
	}
	for _, pd := range data {
		if pd.Point.Family != "rr8" {
			continue
		}
		ourMsgs := pd.Median("msgs")
		baseMsgs := pd.Median("base_msgs")
		t.AddRow(d(pd.Point.N), d(int(pd.First("tmix"))),
			d64(int64(ourMsgs)), d64(int64(baseMsgs)), f2(ourMsgs/baseMsgs),
			d64(int64(pd.Median("leader_round"))), d64(int64(pd.Median("base_rounds"))),
			fmt.Sprintf("%d+%d/%d", pd.Count("success"), pd.Count("base_success"), len(pd.Trials)))
	}
	t.AddNote("The baseline assumes tmix is known network-wide (the assumption the paper removes) and walks the full 2*tmix. Measured msg ratios below 1 show guess-and-double actually beats the oracle here: the stopping properties are satisfied before full mixing (see E5), so the adaptive algorithm quits with shorter walks while the oracle pays 2*tmix regardless. The paper's worst-case constant-factor overhead is an upper bound; adaptivity wins on these families.")
	return t, nil
}

// e6Spec compares the two message-size regimes of Lemma 12.
func e6Spec() Spec {
	return Spec{
		ID:    "E6",
		Name:  "message-modes",
		Title: "Lemma 12: CONGEST (O(log n)-bit) vs large (O(log^3 n)-bit) message mode",
		Claim: "Lemma 12 (large-message mode trades message count for size)",
		Preamble: "Lemma 12 offers a trade: allow O(log^3 n)-bit messages and the message count drops by a log^2 n factor, because whole id sets travel in one message instead of O(log n)-bit chunks. " +
			"Both modes run on identical expander elections with identical seeds; expect the message ratio to grow with n (toward log^2 n) while the bit totals stay comparable.",
		FullTrials:  2,
		QuickTrials: 1,
		Points: func(cfg SuiteConfig) []Point {
			sizes := []int{64, 128, 256}
			if cfg.Quick {
				sizes = []int{64, 128}
			}
			var out []Point
			for _, n := range cfg.capSizes(sizes) {
				out = append(out, Point{Key: fmt.Sprintf("rr8-%d", n), Family: "rr8", N: n})
			}
			return out
		},
		Trial: func(cfg SuiteConfig, pt Point, setup interface{}, seed int64) (Metrics, error) {
			g, err := buildFamily("rr8", pt.N, sim.DeriveSeed(seed, 0xA))
			if err != nil {
				return nil, err
			}
			runSeed := sim.DeriveSeed(seed, 0xB)
			resC, err := core.Run(g, core.DefaultConfig(),
				core.RunOptions{Seed: runSeed, LeanMetrics: true})
			if err != nil {
				return nil, err
			}
			cfgL := core.DefaultConfig()
			cfgL.Mode = protocol.ModeLarge
			resL, err := core.Run(g, cfgL,
				core.RunOptions{Seed: runSeed, LeanMetrics: true})
			if err != nil {
				return nil, err
			}
			return Metrics{
				"c_msgs": float64(resC.Metrics.Messages),
				"l_msgs": float64(resL.Metrics.Messages),
				"c_bits": float64(resC.Metrics.Bits),
				"l_bits": float64(resL.Metrics.Bits),
			}, nil
		},
		Render: renderE6,
	}
}

func renderE6(cfg SuiteConfig, data []PointData) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Lemma 12: CONGEST (O(log n)-bit) vs large (O(log^3 n)-bit) message mode",
		Columns: []string{"n", "congest msgs", "large msgs", "msg ratio", "ln^2 n", "congest bits", "large bits"},
	}
	for _, pd := range data {
		ln := math.Log(float64(pd.Point.N))
		cm, lm := pd.Median("c_msgs"), pd.Median("l_msgs")
		t.AddRow(d(pd.Point.N), d64(int64(cm)), d64(int64(lm)), f2(cm/lm),
			f1(ln*ln), d64(int64(pd.Median("c_bits"))), d64(int64(pd.Median("l_bits"))))
	}
	t.AddNote("Lemma 12 predicts a log^2 n gap between the modes' message counts; the measured ratio grows with n but is damped because much of the traffic (tokens, deltas) is already O(log n)-sized in both modes.")
	return t, nil
}
