package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"wcle/internal/core"
	"wcle/internal/graph"
	"wcle/internal/protocol"
	"wcle/internal/spectral"
	"wcle/internal/stats"
)

// ubRecord is one upper-bound measurement point (several trials of the same
// family and size), shared across E1/E2/E5/E13.
type ubRecord struct {
	family string
	n      int
	m      int
	tmix   int
	trials []*core.Result
}

// medianOf extracts the median of a per-trial scalar.
func (r ubRecord) medianOf(f func(*core.Result) float64) float64 {
	vals := make([]float64, 0, len(r.trials))
	for _, res := range r.trials {
		vals = append(vals, f(res))
	}
	med, err := stats.Quantile(vals, 0.5)
	if err != nil {
		return math.NaN()
	}
	return med
}

// successCount counts trials that elected exactly one leader.
func (r ubRecord) successCount() int {
	var k int
	for _, res := range r.trials {
		if res.Success {
			k++
		}
	}
	return k
}

// families returns the upper-bound graph families and sizes for the suite's
// regime.
func (s *Suite) families() []struct {
	family string
	sizes  []int
} {
	if s.Quick {
		return []struct {
			family string
			sizes  []int
		}{
			{"clique", []int{32, 64}},
			{"hypercube", []int{32, 64}},
			{"rr8", []int{64, 128}},
		}
	}
	return []struct {
		family string
		sizes  []int
	}{
		{"clique", []int{64, 128, 256}},
		{"hypercube", []int{64, 128, 256}},
		{"rr8", []int{64, 128, 256, 512, 1024}},
		// Tori mix in Theta(n) — a genuinely different tmix growth that
		// exercises Theorem 13's tmix-dependence, not just its n-dependence.
		{"torus", []int{64, 144, 256}},
	}
}

// buildFamily constructs one graph of a family at size n.
func buildFamily(family string, n int, seed int64) (*graph.Graph, error) {
	switch family {
	case "clique":
		return graph.Clique(n, rand.New(rand.NewSource(seed)))
	case "hypercube":
		dim := 0
		for 1<<dim < n {
			dim++
		}
		if 1<<dim != n {
			return nil, fmt.Errorf("experiments: hypercube size %d not a power of two", n)
		}
		return graph.Hypercube(dim, rand.New(rand.NewSource(seed)))
	case "rr8":
		return graph.RandomRegular(n, 8, rand.New(rand.NewSource(seed)))
	case "torus":
		side := int(math.Round(math.Sqrt(float64(n))))
		return graph.Torus2D(side, side, rand.New(rand.NewSource(seed)))
	default:
		return nil, fmt.Errorf("experiments: unknown family %q", family)
	}
}

// measuredTmix returns the sampled mixing time (exact on vertex-transitive
// families).
func measuredTmix(g *graph.Graph) (int, error) {
	starts := []int{0}
	if g.N() > 3 {
		starts = append(starts, g.N()/3, 2*g.N()/3)
	}
	return spectral.MixingTimeSampled(g, spectral.DefaultEps(g.N()), 40_000_000, starts)
}

// ubTrials is the number of election runs per measurement point (medians
// damp the phase-count quantization of guess-and-double).
func (s *Suite) ubTrials() int {
	if s.Quick {
		return 1
	}
	return 3
}

// upperBoundData runs the algorithm ubTrials times per (family, n) and
// caches the records for every upper-bound table.
func (s *Suite) upperBoundData() ([]ubRecord, error) {
	if v, ok := s.cache["ub"]; ok {
		return v.([]ubRecord), nil
	}
	var out []ubRecord
	for _, fam := range s.families() {
		for _, n := range fam.sizes {
			g, err := buildFamily(fam.family, n, s.Seed)
			if err != nil {
				return nil, err
			}
			tmix, err := measuredTmix(g)
			if err != nil {
				return nil, err
			}
			rec := ubRecord{family: fam.family, n: n, m: g.M(), tmix: tmix}
			for i := 0; i < s.ubTrials(); i++ {
				res, err := core.Run(g, core.DefaultConfig(),
					core.RunOptions{Seed: s.Seed + int64(n) + int64(1000*i)})
				if err != nil {
					return nil, err
				}
				rec.trials = append(rec.trials, res)
			}
			out = append(out, rec)
		}
	}
	s.cache["ub"] = out
	return out, nil
}

// thm13Messages is the Theorem 13 message reference sqrt(n) ln^{7/2} n tmix.
func thm13Messages(n, tmix int) float64 {
	ln := math.Log(float64(n))
	return math.Sqrt(float64(n)) * math.Pow(ln, 3.5) * float64(tmix)
}

// thm13Time is the Theorem 13 time reference tmix ln^2 n.
func thm13Time(n, tmix int) float64 {
	ln := math.Log(float64(n))
	return float64(tmix) * ln * ln
}

// fitExponent fits y ~ n^b for one family's series.
func fitExponent(recs []ubRecord, family string, y func(ubRecord) float64) (float64, error) {
	var xs, ys []float64
	for _, r := range recs {
		if r.family != family {
			continue
		}
		xs = append(xs, float64(r.n))
		ys = append(ys, y(r))
	}
	if len(xs) < 2 {
		return math.NaN(), nil
	}
	f, err := stats.LogLogFit(xs, ys)
	if err != nil {
		return 0, err
	}
	return f.Slope, nil
}

// E1MessageScaling reproduces Theorem 13's message bound
// O(sqrt(n) log^{7/2} n * tmix): per family, measured CONGEST messages and
// their ratio to the reference, plus fitted growth exponents.
func (s *Suite) E1MessageScaling() (*Table, error) {
	recs, err := s.upperBoundData()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "E1",
		Title: "Theorem 13 (messages): CONGEST messages vs sqrt(n) ln^{7/2} n * tmix",
		Columns: []string{"family", "n", "m", "tmix", "median messages", "msgs/ref",
			"msgs/m", "elected"},
	}
	msgs := func(res *core.Result) float64 { return float64(res.Metrics.Messages) }
	for _, r := range recs {
		ref := thm13Messages(r.n, r.tmix)
		med := r.medianOf(msgs)
		t.AddRow(r.family, d(r.n), d(r.m), d(r.tmix),
			d64(int64(med)), f3(med/ref), f1(med/float64(r.m)),
			fmt.Sprintf("%d/%d", r.successCount(), len(r.trials)))
	}
	for _, fam := range s.families() {
		// Theorem 13 predicts messages/(ln^{7/2} n * tmix) ~ sqrt(n), i.e.
		// a fitted exponent near 0.5 for the normalized series.
		b, err := fitExponent(recs, fam.family, func(r ubRecord) float64 {
			ln := math.Log(float64(r.n))
			return r.medianOf(msgs) / (math.Pow(ln, 3.5) * float64(r.tmix))
		})
		if err != nil {
			return nil, err
		}
		t.AddNote("%s: fitted msgs/(ln^{7/2} n * tmix) ~ n^%.2f. Theorem 13 is an upper bound: exponent <= 0.5 confirms it (0.5 would be tight; lower means the per-edge filtering beats the paper's worst-case congestion log, which its O~ absorbs).", fam.family, b)
	}
	t.AddNote("msgs/ref bounded (non-growing) across n within a family is the Theorem 13 shape; absolute constants are implementation-specific. msgs/m falls as graphs get denser — the sublinearity claim is against m.")
	return t, nil
}

// E2TimeScaling reproduces Theorem 13's time bound O(tmix log^2 n).
func (s *Suite) E2TimeScaling() (*Table, error) {
	recs, err := s.upperBoundData()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E2",
		Title:   "Theorem 13 (time): rounds to election vs tmix ln^2 n",
		Columns: []string{"family", "n", "tmix", "median leader round", "rounds/ref"},
	}
	for _, r := range recs {
		med := r.medianOf(func(res *core.Result) float64 {
			if res.LeaderRound >= 0 {
				return float64(res.LeaderRound)
			}
			return float64(res.Rounds)
		})
		t.AddRow(r.family, d(r.n), d(r.tmix), d64(int64(med)), f1(med/thm13Time(r.n, r.tmix)))
	}
	t.AddNote("rounds/ref bounded across n within a family reproduces the O(tmix log^2 n) time shape; the constant includes the schedule multiplier TMult = (25/16) c1, and jumps by up to 2x between rows because guess-and-double quantizes the stopping phase.")
	return t, nil
}

// E5GuessDouble reproduces Lemmas 3/6: the guess-and-double walk length
// settles at Theta(tmix).
func (s *Suite) E5GuessDouble() (*Table, error) {
	recs, err := s.upperBoundData()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E5",
		Title:   "Lemmas 3/6: final guess-and-double walk length vs measured tmix",
		Columns: []string{"family", "n", "tmix", "median final tu", "tu/tmix", "phases"},
	}
	for _, r := range recs {
		var tus []float64
		phases := 0
		for _, res := range r.trials {
			for _, v := range res.Stopped {
				tus = append(tus, float64(res.FinalTu[v]))
			}
			if res.PhasesUsed > phases {
				phases = res.PhasesUsed
			}
		}
		if len(tus) == 0 {
			t.AddRow(r.family, d(r.n), d(r.tmix), "-", "-", d(phases))
			continue
		}
		med, err := stats.Quantile(tus, 0.5)
		if err != nil {
			return nil, err
		}
		t.AddRow(r.family, d(r.n), d(r.tmix), f1(med), f2(med/float64(r.tmix)), d(phases))
	}
	t.AddNote("Lemma 3 guarantees stopping once tu >= c3 tmix; guess-and-double overshoots by at most 2x. Contenders often stop below tmix because the properties only need near-uniform proxy spread, not full mixing (the paper's criteria are sufficient, not necessary).")
	return t, nil
}

// E6MessageModes reproduces Lemma 12's two regimes: O(log n)-bit CONGEST
// messages vs O(log^3 n)-bit messages.
func (s *Suite) E6MessageModes() (*Table, error) {
	sizes := []int{64, 128, 256}
	if s.Quick {
		sizes = []int{64, 128}
	}
	t := &Table{
		ID:      "E6",
		Title:   "Lemma 12: CONGEST (O(log n)-bit) vs large (O(log^3 n)-bit) message mode",
		Columns: []string{"n", "congest msgs", "large msgs", "msg ratio", "ln^2 n", "congest bits", "large bits"},
	}
	for _, n := range sizes {
		g, err := buildFamily("rr8", n, s.Seed+7)
		if err != nil {
			return nil, err
		}
		cfgC := core.DefaultConfig()
		resC, err := core.Run(g, cfgC, core.RunOptions{Seed: s.Seed + 11})
		if err != nil {
			return nil, err
		}
		cfgL := core.DefaultConfig()
		cfgL.Mode = protocol.ModeLarge
		resL, err := core.Run(g, cfgL, core.RunOptions{Seed: s.Seed + 11})
		if err != nil {
			return nil, err
		}
		ln := math.Log(float64(n))
		t.AddRow(d(n), d64(resC.Metrics.Messages), d64(resL.Metrics.Messages),
			f2(float64(resC.Metrics.Messages)/float64(resL.Metrics.Messages)),
			f1(ln*ln), d64(resC.Metrics.Bits), d64(resL.Metrics.Bits))
	}
	t.AddNote("Lemma 12 predicts a log^2 n gap between the modes' message counts; the measured ratio grows with n but is damped because much of the traffic (tokens, deltas) is already O(log n)-sized in both modes.")
	return t, nil
}

// E13KnownTmix compares the paper's tmix-oblivious algorithm to the Kutten
// et al. [25] baseline that knows tmix (single phase of length 2 tmix).
func (s *Suite) E13KnownTmix() (*Table, error) {
	recs, err := s.upperBoundData()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E13",
		Title:   "Known-tmix baseline [25] vs guess-and-double (price of not knowing tmix)",
		Columns: []string{"n", "tmix", "ours msgs", "[25] msgs", "msg ratio", "ours rounds", "[25] rounds", "both elect"},
	}
	for _, r := range recs {
		if r.family != "rr8" {
			continue
		}
		g, err := buildFamily("rr8", r.n, s.Seed)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig()
		cfg.FixedWalkLen = 2 * r.tmix
		var baseMsgs, baseRounds []float64
		baseSuccess := 0
		for i := 0; i < len(r.trials); i++ {
			base, err := core.Run(g, cfg, core.RunOptions{Seed: s.Seed + int64(r.n) + int64(1000*i)})
			if err != nil {
				return nil, err
			}
			baseMsgs = append(baseMsgs, float64(base.Metrics.Messages))
			baseRounds = append(baseRounds, float64(base.LeaderRound))
			if base.Success {
				baseSuccess++
			}
		}
		bm, err := stats.Quantile(baseMsgs, 0.5)
		if err != nil {
			return nil, err
		}
		br, err := stats.Quantile(baseRounds, 0.5)
		if err != nil {
			return nil, err
		}
		ourMsgs := r.medianOf(func(res *core.Result) float64 { return float64(res.Metrics.Messages) })
		ourRounds := r.medianOf(func(res *core.Result) float64 { return float64(res.LeaderRound) })
		t.AddRow(d(r.n), d(r.tmix),
			d64(int64(ourMsgs)), d64(int64(bm)), f2(ourMsgs/bm),
			d64(int64(ourRounds)), d64(int64(br)),
			fmt.Sprintf("%d+%d/%d", r.successCount(), baseSuccess, len(r.trials)))
	}
	t.AddNote("The baseline assumes tmix is known network-wide (the assumption the paper removes) and walks the full 2*tmix. Measured msg ratios below 1 show guess-and-double actually beats the oracle here: the stopping properties are satisfied before full mixing (see E5), so the adaptive algorithm quits with shorter walks while the oracle pays 2*tmix regardless. The paper's worst-case constant-factor overhead is an upper bound; adaptivity wins on these families.")
	return t, nil
}
