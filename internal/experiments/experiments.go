// Package experiments defines the reproduction suite: one runner per
// experiment E1..E14 of DESIGN.md, each regenerating the measurements that
// stand in for the paper's quantitative claims (the paper is a theory paper
// with no empirical tables; every theorem/lemma/corollary with a complexity
// statement becomes a table here, plus the Figure 1/2 construction checks).
//
// Runners return Tables that cmd/benchsuite renders to Markdown (the
// contents of EXPERIMENTS.md) and that bench_test.go exposes as testing.B
// benchmarks.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a free-form note rendered under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Markdown renders the table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	sb.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		sb.WriteString("\n> " + n + "\n")
	}
	sb.WriteString("\n")
	return sb.String()
}

// Suite runs experiments with a shared seed and size regime.
type Suite struct {
	// Seed drives every run in the suite deterministically.
	Seed int64
	// Quick shrinks sizes and trial counts for CI/tests; the full regime is
	// what EXPERIMENTS.md records.
	Quick bool

	cache map[string]interface{}
}

// NewSuite returns a Suite.
func NewSuite(seed int64, quick bool) *Suite {
	return &Suite{Seed: seed, Quick: quick, cache: make(map[string]interface{})}
}

// Runner is a named experiment.
type Runner struct {
	ID   string
	Name string
	Run  func(s *Suite) (*Table, error)
}

// All returns every experiment runner in order.
func All() []Runner {
	return []Runner{
		{"E1", "message-scaling", (*Suite).E1MessageScaling},
		{"E2", "time-scaling", (*Suite).E2TimeScaling},
		{"E3", "contender-concentration", (*Suite).E3ContenderConcentration},
		{"E4", "unique-leader", (*Suite).E4UniqueLeader},
		{"E5", "guess-and-double", (*Suite).E5GuessDouble},
		{"E6", "message-modes", (*Suite).E6MessageModes},
		{"E7", "explicit-election", (*Suite).E7Explicit},
		{"E8", "lower-bound-graph", (*Suite).E8LowerBoundGraph},
		{"E9", "inter-clique-discovery", (*Suite).E9InterCliqueDiscovery},
		{"E10", "budgeted-election", (*Suite).E10BudgetedElection},
		{"E11", "broadcast-spanning-tree", (*Suite).E11BroadcastST},
		{"E12", "dumbbell-knowledge-of-n", (*Suite).E12Dumbbell},
		{"E13", "known-tmix-baseline", (*Suite).E13KnownTmix},
		{"E14", "ablations", (*Suite).E14Ablations},
	}
}

// Get runs a single experiment by id.
func Get(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// IDs lists all experiment ids.
func IDs() []string {
	var out []string
	for _, r := range All() {
		out = append(out, r.ID)
	}
	sort.Strings(out)
	return out
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func g3(v float64) string { return fmt.Sprintf("%.3g", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }
func d64(v int64) string  { return fmt.Sprintf("%d", v) }
