// Package experiments defines the reproduction suite: one Spec per
// experiment E1..E23 of DESIGN.md, each regenerating the measurements that
// stand in for the paper's quantitative claims (the paper is a theory paper
// with no empirical tables; every theorem/lemma/corollary with a complexity
// statement becomes a table here, plus the Figure 1/2 construction checks,
// the fault-resilience sweep E15, the engine throughput benchmark E16, the
// E17/E18 algorithm-backend head-to-head grids over the algo registry, the
// E19 wire-level cluster measurement over loopback TCP, the E20
// supervised-failover measurement of crash recovery on that cluster, the
// E21 barrier-mode ablation, the E22 protocol-registry determinism
// sweep over every engine-registered protocol, and the E23 adversary
// tournament — backend × graph family × adversary, undefended and under
// committee-sampled validation).
//
// A Spec decomposes an experiment into measurement Points (a graph family
// and size, a conductance scale, an ablation variant, ...) and independent
// Trials per point. The parallel harness in harness.go fans trials out
// across a worker pool with deterministic per-trial seeds, streams them
// into per-point aggregation (internal/stats), and checkpoints raw trial
// metrics as JSON so interrupted suites resume. Render turns aggregated
// points back into the Tables that cmd/benchsuite writes to EXPERIMENTS.md
// and that bench_test.go exposes as testing.B benchmarks.
//
// Several experiments are different views of one shared measurement grid:
// E2, E5, and E13 set DataFrom = "E1" and render the E1 upper-bound grid's
// trial data instead of re-running elections of their own.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Table is one experiment's rendered output.
type Table struct {
	ID    string
	Title string
	// Preamble, when non-empty, is the narrative paragraph rendered
	// between the heading and the table: what paper claim the experiment
	// checks and what asymptotic shape to expect. RenderSuite fills it
	// from the spec.
	Preamble string
	Columns  []string
	Rows     [][]string
	Notes    []string
	// Plot, when non-empty, is an ASCII trend plot rendered as a fenced
	// code block under the table.
	Plot string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a free-form note rendered under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Markdown renders the table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	if t.Preamble != "" {
		sb.WriteString(t.Preamble + "\n\n")
	}
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	sb.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		sb.WriteString("\n> " + n + "\n")
	}
	if t.Plot != "" {
		sb.WriteString("\n```text\n" + strings.TrimRight(t.Plot, "\n") + "\n```\n")
	}
	sb.WriteString("\n")
	return sb.String()
}

// Metrics is the scalar measurement vector one trial produces, keyed by
// metric name. Values must be finite; 0/1 encodes booleans.
type Metrics map[string]float64

// SuiteConfig parameterizes one suite run. The zero value plus a seed is
// the full regime.
type SuiteConfig struct {
	// Seed drives every trial in the suite deterministically.
	Seed int64
	// Quick shrinks sizes and trial counts for CI/tests; the full regime
	// is what EXPERIMENTS.md records.
	Quick bool
	// Trials, when positive, overrides every spec's per-point trial count.
	Trials int
	// MaxN, when positive, drops measurement points whose graph size
	// exceeds it (and caps the lower-bound construction size).
	MaxN int
}

// trialsFor resolves the per-point trial count for a spec.
func (c SuiteConfig) trialsFor(s Spec) int {
	if c.Trials > 0 {
		return c.Trials
	}
	if c.Quick {
		return s.QuickTrials
	}
	return s.FullTrials
}

// capSizes filters a size list by MaxN.
func (c SuiteConfig) capSizes(sizes []int) []int {
	if c.MaxN <= 0 {
		return sizes
	}
	out := make([]int, 0, len(sizes))
	for _, n := range sizes {
		if n <= c.MaxN {
			out = append(out, n)
		}
	}
	return out
}

// lbSize is the lower-bound construction size for the regime.
func (c SuiteConfig) lbSize() int {
	n := 1024
	if c.Quick {
		n = 512
	}
	if c.MaxN > 0 && c.MaxN < n {
		n = c.MaxN
	}
	return n
}

// Point is one measurement point of an experiment. Key must be unique
// within the experiment and stable across runs (it keys checkpoint
// entries); the remaining fields carry whatever parameters the spec's
// Trial understands.
type Point struct {
	Key    string
	Family string
	N      int
	Alpha  float64
	Label  string
	Mult   int
}

// Spec is one registry-driven experiment.
type Spec struct {
	ID    string
	Name  string
	Title string
	// Claim names the paper statement the experiment exercises.
	Claim string
	// Preamble is the narrative paragraph rendered ahead of the table:
	// what claim the experiment checks and the expected asymptotic shape.
	Preamble string

	// DataFrom, when set, makes this experiment a pure view: it renders
	// the named experiment's trial data and contributes no trials itself.
	DataFrom string

	// FullTrials/QuickTrials are the per-point trial counts of the two
	// regimes (ignored when DataFrom is set).
	FullTrials  int
	QuickTrials int

	// Points enumerates the measurement points for a regime.
	Points func(cfg SuiteConfig) []Point
	// Setup, optional, runs once per point (cached by the harness, seeded
	// deterministically from the point key) and hands its result to every
	// trial of that point. Expensive point-level work (graph construction,
	// mixing-time measurement) lives here.
	Setup func(cfg SuiteConfig, pt Point, seed int64) (interface{}, error)
	// Trial runs one independent trial and returns its metrics. seed is
	// derived deterministically from (suite seed, experiment, point,
	// trial index) and is the only randomness the trial may use.
	Trial func(cfg SuiteConfig, pt Point, setup interface{}, seed int64) (Metrics, error)
	// Render turns the aggregated per-point trial data into the table.
	Render func(cfg SuiteConfig, data []PointData) (*Table, error)
}

// DataID returns the id of the experiment whose trial data this spec
// renders (itself unless DataFrom is set).
func (s Spec) DataID() string {
	if s.DataFrom != "" {
		return s.DataFrom
	}
	return s.ID
}

// All returns every experiment spec in E1..E23 order.
func All() []Spec {
	return []Spec{
		e1Spec(), e2Spec(), e3Spec(), e4Spec(), e5Spec(), e6Spec(), e7Spec(),
		e8Spec(), e9Spec(), e10Spec(), e11Spec(), e12Spec(), e13Spec(), e14Spec(),
		e15Spec(), e16Spec(), e17Spec(), e18Spec(), e19Spec(), e20Spec(), e21Spec(),
		e22Spec(), e23Spec(),
	}
}

// Get returns a single experiment spec by id.
func Get(id string) (Spec, bool) {
	for _, s := range All() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// IDs lists all experiment ids (sorted lexicographically).
func IDs() []string {
	var out []string
	for _, s := range All() {
		out = append(out, s.ID)
	}
	sort.Strings(out)
	return out
}

// Resolve maps a list of experiment ids to specs, preserving registry
// order and deduplicating. nil or empty selects every experiment.
func Resolve(ids []string) ([]Spec, error) {
	if len(ids) == 0 {
		return All(), nil
	}
	want := make(map[string]bool, len(ids))
	for _, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if _, ok := Get(id); !ok {
			return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
		}
		want[id] = true
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("experiments: no experiment ids in %q (known: %v)", strings.Join(ids, ","), IDs())
	}
	var out []Spec
	for _, s := range All() {
		if want[s.ID] {
			out = append(out, s)
		}
	}
	return out, nil
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func g3(v float64) string { return fmt.Sprintf("%.3g", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }
func d64(v int64) string  { return fmt.Sprintf("%d", v) }
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
